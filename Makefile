GO ?= go

.PHONY: build test test-short vet fmt-check bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The fast gate CI runs on every push: race-enabled, with the slow
# experiment-suite tests skipped via testing.Short.
test-short:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench runs the engine microbenchmarks and writes both the raw output
# (BENCH_engine.txt) and a machine-readable BENCH_engine.json, seeding
# the performance trajectory across PRs.
# No pipe here: a panicking benchmark must fail the target, and `go
# test | tee` would hide its exit status under sh (no pipefail).
bench:
	$(GO) test ./internal/congest -run '^$$' -bench BenchmarkEngine -benchmem -count 1 > BENCH_engine.txt
	@cat BENCH_engine.txt
	$(GO) run ./cmd/benchjson < BENCH_engine.txt > BENCH_engine.json
	@echo "wrote BENCH_engine.json"

ci: fmt-check vet build test-short
