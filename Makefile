GO ?= go

.PHONY: build test test-short test-chaos fuzz-smoke vet fmt-check docs-check bench bench-service bench-gate ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The fast gate CI runs on every push: race-enabled, with the slow
# experiment-suite tests skipped via testing.Short. -shuffle=on
# randomizes test (and package-level subtest) execution order so
# order-dependent tests fail here before they flake anywhere else; the
# shuffle seed is printed on failure for local reproduction.
test-short:
	$(GO) test -race -short -shuffle=on ./...

# fuzz-smoke runs each fuzz target for a short bounded burst — long
# enough to exercise the mutator on the seed corpus, short enough for
# every CI push. The full targets can run indefinitely with a larger
# -fuzztime.
fuzz-smoke:
	$(GO) test ./internal/service -run '^$$' -fuzz FuzzCanonicalRequest -fuzztime 30s
	$(GO) test . -run '^$$' -fuzz FuzzSpans -fuzztime 30s

# test-chaos compiles the fault-injection sites live (-tags chaos) and
# runs the chaos suite plus the service tests under the race detector:
# injected panics/stalls at the engine round barrier, worker, cancel,
# drain, and admission paths must never kill the process, break a
# drain, or corrupt the content-addressed cache.
test-chaos:
	$(GO) test -race -count=1 -tags chaos ./internal/chaos/... ./internal/service/... ./internal/gateway/...

vet:
	$(GO) vet ./...

# docs-check keeps the documentation layer honest: every relative link
# in README/ROADMAP/docs must resolve (including #heading anchors into
# markdown files), and every exported identifier in the serving surface
# (package distmincut, internal/service) must carry a doc comment.
docs-check:
	$(GO) run ./cmd/docscheck

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench runs the engine microbenchmarks and writes both the raw output
# (BENCH_engine.txt) and a machine-readable BENCH_engine.json, seeding
# the performance trajectory across PRs. The regular workloads run 3x
# and benchjson keeps each benchmark's fastest run (co-tenant noise
# only ever slows a run down); the million-scale workloads run
# separately at one iteration each (they exist to prove the scale, not
# to average, and they report the setup-ns/round-ns split so the gate
# can watch round time alone). BenchmarkPipelineMillion is the full
# MinCut pipeline at 250k nodes / 1M edges — a scale proof (~600M
# CONGEST messages; ~30 min on a 1-core box, scaling with cores), kept
# out of the regression gate by the benchjson -match default.
# BenchmarkApproxMillion and BenchmarkBracketMillion are the serving
# tiers at the same scale: the (1+ε) tier under the default τ policy
# and the sampled-connectivity bracket tier. The BenchmarkEngineStep*
# rows are the compiled step-machine twins of the exchange workloads
# (BenchmarkEngineMillionStep* at the million scale); benchjson's
# default -match gates the step expander rows alongside the goroutine
# ones.
# No pipe here: a panicking benchmark must fail the target, and `go
# test | tee` would hide its exit status under sh (no pipefail).
bench: bench-service
	$(GO) test ./internal/congest -run '^$$' -bench 'BenchmarkEngine(Path|Expander|Community|Step)' -benchmem -count 3 > BENCH_engine.txt
	$(GO) test ./internal/congest -run '^$$' -bench BenchmarkEngineMillion -benchmem -benchtime 1x -count 1 >> BENCH_engine.txt
	$(GO) test . -run '^$$' -bench 'Benchmark(Pipeline|Approx|Bracket)Million' -benchmem -benchtime 1x -count 1 -timeout 150m >> BENCH_engine.txt
	@cat BENCH_engine.txt
	$(GO) run ./cmd/benchjson < BENCH_engine.txt > BENCH_engine.json
	@echo "wrote BENCH_engine.json"

# bench-service runs a short closed-loop load against a self-hosted
# in-process mincutd (cmd/loadgen with no -addr) and renders the
# latency/throughput/cache report as BENCH_service.json. The corpus
# wraps around the canned harness request mix, so the run exercises the
# content-addressed cache exactly as repeat production traffic would.
# The second line is the open-loop arrival-rate run (-rate): latency is
# measured from scheduled arrival, so queue wait near saturation lands
# in the p95/p99 columns instead of being absorbed by closed-loop
# self-throttling. The queue depth (256) exceeds the request count, so
# the run never sheds load and the target cannot fail on 503 churn.
bench-service:
	$(GO) run ./cmd/loadgen -conc 8 -requests 128 -corpus quick -bench > BENCH_service.txt
	$(GO) run ./cmd/loadgen -rate 600 -requests 128 -corpus quick -timeout 2m -bench >> BENCH_service.txt
	@cat BENCH_service.txt
	$(GO) run ./cmd/benchjson < BENCH_service.txt > BENCH_service.json
	@echo "wrote BENCH_service.json"

# bench-gate re-runs the benchmarks and fails if ns/op or allocs/op on
# the expander benchmarks regressed more than 20% against the baseline
# committed at HEAD (snapshotted from git, since `make bench` rewrites
# the working-tree BENCH_engine.json). Only meaningful on the machine
# the committed baseline was measured on; CI instead re-benchmarks the
# base ref on the same runner (see .github/workflows/ci.yml).
bench-gate:
	git show HEAD:BENCH_engine.json > BENCH_engine.baseline.json; \
		$(MAKE) bench; status=$$?; \
		if [ $$status -eq 0 ]; then \
			$(GO) run ./cmd/benchjson -compare BENCH_engine.baseline.json BENCH_engine.json; status=$$?; \
		fi; \
		rm -f BENCH_engine.baseline.json; exit $$status

ci: fmt-check vet build test-short docs-check
