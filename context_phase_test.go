package distmincut

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
)

// TestCancelAtEachPhaseBoundary cancels the exact pipeline inside each
// of its phases — BFS, first MST, packing orchestration (a later
// tree's MST), respect sweep, and the doubling certification tail —
// and asserts the contract the service relies on: the error maps to
// ctx.Err() (context.Canceled, never a raw runtime sentinel), and the
// engine is left clean (a warm rerun on the same engine completes and
// matches a fresh engine's stats bit for bit).
//
// Phase targets are derived from a reference run's marks: packing
// emits begin:/end: marks for every mst and respect span from node 0,
// BFS is everything before the first mark, and the certification tail
// has its own begin:certify/end:certify span.
func TestCancelAtEachPhaseBoundary(t *testing.T) {
	g := graph.PlantedCut(48, 48, 3, 0.4, 5)
	opts := func() *Options { return &Options{Seed: 2} }

	ref, err := MinCut(g, opts())
	if err != nil {
		t.Fatal(err)
	}
	marks := ref.Stats.Marks
	if len(marks) == 0 {
		t.Fatal("reference run recorded no phase marks")
	}
	var firstMST, endFirstMST, laterMST, firstRespect, endRespect int
	var beginCertify, endCertify int
	for _, m := range marks {
		switch m.Label {
		case "begin:mst":
			if firstMST == 0 {
				firstMST = m.Round
			} else if laterMST == 0 && endRespect > 0 {
				// First MST of a later packing iteration: the packing
				// orchestration is interleaving trees by now.
				laterMST = m.Round
			}
		case "end:mst":
			if endFirstMST == 0 {
				endFirstMST = m.Round
			}
		case "begin:respect":
			if firstRespect == 0 {
				firstRespect = m.Round
			}
		case "end:respect":
			if beginCertify == 0 {
				endRespect = m.Round
			}
		case "begin:certify":
			beginCertify = m.Round
		case "end:certify":
			endCertify = m.Round
		}
	}
	phases := []struct {
		name   string
		target int
	}{
		{"bfs", firstMST / 2},
		{"mst", (firstMST + endFirstMST) / 2},
		{"packing", laterMST},
		{"respect", (firstRespect + endRespect) / 2},
		{"certification", (beginCertify + endCertify) / 2},
	}

	eng := congest.NewEngine(congest.Options{})
	defer eng.Close()
	for _, ph := range phases {
		t.Run(ph.name, func(t *testing.T) {
			if ph.target < 1 || ph.target >= ref.Rounds {
				t.Skipf("phase window too narrow (target %d of %d rounds)", ph.target, ref.Rounds)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			pg := &congest.Progress{}
			o := opts()
			o.Engine = eng
			o.Progress = pg
			errCh := make(chan error, 1)
			go func() {
				_, err := MinCutContext(ctx, g, o)
				errCh <- err
			}()
			deadline := time.Now().Add(time.Minute)
			for pg.Round() < ph.target {
				if time.Now().After(deadline) {
					t.Fatalf("run never reached round %d", ph.target)
				}
				runtime.Gosched()
			}
			cancel()
			select {
			case err := <-errCh:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cancel in %s: err = %v, want context.Canceled", ph.name, err)
				}
				if errors.Is(err, congest.ErrInterrupted) {
					t.Fatalf("raw runtime sentinel leaked through: %v", err)
				}
			case <-time.After(time.Minute):
				t.Fatalf("cancel in %s: run did not return", ph.name)
			}

			// Clean engine state: the same warm engine reruns to
			// completion and matches the fresh reference bit for bit.
			res, err := MinCutContext(context.Background(), g, &Options{Seed: 2, Engine: eng})
			if err != nil {
				t.Fatalf("warm rerun after %s abort: %v", ph.name, err)
			}
			if res.Value != ref.Value || res.Rounds != ref.Rounds || res.Messages != ref.Messages {
				t.Fatalf("warm rerun after %s abort diverged: value/rounds/messages %d/%d/%d, want %d/%d/%d",
					ph.name, res.Value, res.Rounds, res.Messages, ref.Value, ref.Rounds, ref.Messages)
			}
		})
	}
}

// TestDeadlineOptionMapsToBudgetError pins the library-level deadline
// contract the service's StateDeadline classification depends on:
// Options.Deadline (and a context deadline) surface as an error
// matching congest.ErrBudgetExceeded or context.DeadlineExceeded,
// never as a bare interrupt.
func TestDeadlineOptionMapsToBudgetError(t *testing.T) {
	g := graph.PlantedCut(64, 64, 3, 0.3, 7)
	_, err := MinCut(g, &Options{Deadline: time.Now().Add(10 * time.Millisecond)})
	if err == nil {
		t.Skip("machine fast enough to finish inside the deadline")
	}
	if !errors.Is(err, congest.ErrBudgetExceeded) {
		t.Fatalf("Options.Deadline: err = %v, want ErrBudgetExceeded", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = MinCutContext(ctx, g, nil)
	if err == nil {
		t.Skip("machine fast enough to finish inside the deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, congest.ErrBudgetExceeded) {
		t.Fatalf("ctx deadline: err = %v, want DeadlineExceeded or ErrBudgetExceeded", err)
	}
}
