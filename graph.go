package distmincut

import "distmincut/internal/graph"

// Graph re-exports the weighted-graph substrate so library consumers
// can build inputs without reaching into internal packages. All methods
// of the underlying type (AddEdge, Validate, CutWeight, ...) are
// available through the alias.
type Graph = graph.Graph

// NodeID re-exports the node identifier type.
type NodeID = graph.NodeID

// NewGraph returns an empty graph on n nodes (IDs 0..n-1). Add edges
// with AddEdge and pass the graph to MinCut / ApproxMinCut /
// OneRespectingCut; call SortAdjacency after construction for
// deterministic port numbering.
func NewGraph(n int) *Graph { return graph.New(n) }
