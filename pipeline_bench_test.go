package distmincut_test

import (
	"runtime"
	"sync"
	"testing"

	"distmincut"
	"distmincut/internal/congest"
	"distmincut/internal/graph"
)

// BenchmarkPipelineMillion runs the paper's full exact pipeline —
// BFS overlay, distributed MST, greedy tree packing, 1-respecting
// cuts, doubling certification, side marking, and cut evaluation —
// at the engine's headline scale: 250k nodes and a million edges.
//
// The instance is two 125k-node 8-regular expanders joined by a single
// bridge, so λ = 1 with the bridge as the unique minimum cut. The
// bridge belongs to every spanning tree, so the first packed tree
// always 1-respects the minimum cut and a single-tree τ policy already
// certifies exactness at the first doubling guess — the benchmark
// exercises every pipeline stage exactly once instead of paying E7's
// safety-margin tree count, which is what makes full MinCut tractable
// as a repeatable scale proof. The run rides a reusable engine and
// reports the setup-ns/round-ns split alongside protocol complexity.
var pipelineGraph struct {
	once sync.Once
	g    *graph.Graph
}

// bridgedExpanders builds two half-node deg-regular random expanders
// joined by one unit-weight bridge: n = 2*half nodes, half*deg+1
// edges, planted minimum cut λ = 1.
func bridgedExpanders(half, deg int, seed int64) *graph.Graph {
	g := graph.New(2 * half)
	for side := 0; side < 2; side++ {
		sub := graph.RandomRegular(half, deg, seed+int64(side))
		off := graph.NodeID(side * half)
		for _, e := range sub.Edges() {
			g.MustAddEdge(e.U+off, e.V+off, e.W)
		}
	}
	g.MustAddEdge(0, graph.NodeID(half), 1)
	g.SortAdjacency()
	return g
}

// BenchmarkApproxMillion runs the (1+ε) serving tier on the same
// million-edge topology — with the DEFAULT τ policy, no benchmark-only
// shortcut. This is the scale proof for the sampling reduction's
// multi-level packing: λ = 1 ≤ κ, so level 0's capped exact search
// resolves the cut exactly, and PracticalTau's λ=1 single-tree
// schedule plus ExactDoubling's early-stop certification keep the
// packing O(1) trees instead of Θ(ln n) full trees.
func BenchmarkApproxMillion(b *testing.B) {
	pipelineGraph.once.Do(func() {
		pipelineGraph.g = bridgedExpanders(125_000, 8, 9)
	})
	g := pipelineGraph.g
	eng := congest.NewEngine(congest.Options{})
	defer eng.Close()
	opts := &distmincut.Options{
		Workers: runtime.GOMAXPROCS(0),
		Engine:  eng,
	}
	b.ResetTimer()
	var rounds, messages, setup int64
	for i := 0; i < b.N; i++ {
		res, err := distmincut.ApproxMinCut(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Value != 1 || !res.Exact {
			b.Fatalf("cut = %d (exact %v), want exact 1", res.Value, res.Exact)
		}
		rounds = int64(res.Rounds)
		messages = res.Messages
		setup += res.Stats.SetupNanos
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(messages), "messages")
	b.ReportMetric(float64(setup)/float64(b.N), "setup-ns")
	b.ReportMetric((float64(b.Elapsed().Nanoseconds())-float64(setup))/float64(b.N), "round-ns")
}

// BenchmarkBracketMillion runs the bracket serving tier at the same
// scale. The planted bridge disconnects the very first sampled
// skeleton, so the whole protocol is a BFS overlay, a couple of
// degree convergecasts, and a handful of short sampled floods — the
// few-rounds front tier the service serves ahead of the two packing
// tiers.
func BenchmarkBracketMillion(b *testing.B) {
	pipelineGraph.once.Do(func() {
		pipelineGraph.g = bridgedExpanders(125_000, 8, 9)
	})
	g := pipelineGraph.g
	eng := congest.NewEngine(congest.Options{})
	defer eng.Close()
	opts := &distmincut.Options{
		Workers: runtime.GOMAXPROCS(0),
		Engine:  eng,
	}
	b.ResetTimer()
	var rounds, messages, setup int64
	for i := 0; i < b.N; i++ {
		res, err := distmincut.BracketMinCut(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Lo > 1 || res.Hi < 1 {
			b.Fatalf("bracket [%d, %d] misses λ = 1", res.Lo, res.Hi)
		}
		rounds = int64(res.Rounds)
		messages = res.Messages
		setup += res.Stats.SetupNanos
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(messages), "messages")
	b.ReportMetric(float64(setup)/float64(b.N), "setup-ns")
	b.ReportMetric((float64(b.Elapsed().Nanoseconds())-float64(setup))/float64(b.N), "round-ns")
}

func BenchmarkPipelineMillion(b *testing.B) {
	pipelineGraph.once.Do(func() {
		pipelineGraph.g = bridgedExpanders(125_000, 8, 9)
	})
	g := pipelineGraph.g
	eng := congest.NewEngine(congest.Options{})
	defer eng.Close()
	opts := &distmincut.Options{
		Workers: runtime.GOMAXPROCS(0),
		Engine:  eng,
		// One tree per guess: the planted bridge is in every spanning
		// tree, so tree 1 certifies λ = 1 (see the benchmark comment).
		TauPolicy: func(lambda int64, n int) int { return 1 },
	}
	b.ResetTimer()
	var rounds, messages, setup int64
	for i := 0; i < b.N; i++ {
		res, err := distmincut.MinCut(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Value != 1 || !res.Exact {
			b.Fatalf("cut = %d (exact %v), want exact 1", res.Value, res.Exact)
		}
		rounds = int64(res.Rounds)
		messages = res.Messages
		setup += res.Stats.SetupNanos
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(messages), "messages")
	b.ReportMetric(float64(setup)/float64(b.N), "setup-ns")
	b.ReportMetric((float64(b.Elapsed().Nanoseconds())-float64(setup))/float64(b.N), "round-ns")
}
