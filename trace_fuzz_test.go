package distmincut

import (
	"testing"

	"distmincut/internal/congest"
)

// FuzzSpans decodes arbitrary bytes into a round-monotone mark stream —
// shuffled begin:/end: labels, plain marks, unmatched ends, truncated
// phases — and checks that the span parser never panics and always
// produces a well-formed tree: every span's end is at or after its
// start on all three axes, and children nest inside their parents. The
// engine guarantees marks arrive round-ordered (they are recorded under
// its mutex as rounds advance); everything else about the stream is
// adversarial, which is exactly what an aborted or buggy protocol run
// can hand the parser.
func FuzzSpans(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x21, 0x45, 0x81})             // nested begin/end pairs
	f.Add([]byte{0x01, 0x05, 0x09})                   // ends with no begins
	f.Add([]byte{0x20, 0x60, 0xa0})                   // begins never closed
	f.Add([]byte{0x00, 0x02, 0x21, 0x47, 0x83})       // plain marks interleaved
	f.Add([]byte{0xff, 0x7f, 0x3f, 0x1f, 0x0f})       // big round jumps
	f.Add([]byte{0x00, 0x24, 0x25, 0x01, 0x48, 0x49}) // sibling phases
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			return
		}
		labels := []string{"bfs", "pack", "mst", "level:1", "respect"}
		stats := &congest.Stats{}
		round, delivered := 0, int64(0)
		for _, b := range data {
			round += int(b >> 5)         // monotone round clock
			delivered += int64(b>>4) * 3 // monotone message counter
			name := labels[int(b>>2)%len(labels)]
			var label string
			switch {
			case b&2 != 0:
				label = name // plain mark, no begin:/end: prefix
			case b&1 == 0:
				label = "begin:" + name
			default:
				label = "end:" + name
			}
			stats.Marks = append(stats.Marks, congest.Mark{
				Label:     label,
				Round:     round,
				Delivered: delivered,
				Nanos:     int64(round)*1000 + int64(len(stats.Marks)),
			})
		}
		stats.Rounds = round
		stats.Delivered = delivered
		spans := Spans(stats)
		var walk func(s *Span, loRound, hiRound int)
		walk = func(s *Span, loRound, hiRound int) {
			if s.EndRound < s.StartRound {
				t.Fatalf("span %q ends before it starts: [%d, %d]", s.Name, s.StartRound, s.EndRound)
			}
			if s.EndMessages < s.StartMessages {
				t.Fatalf("span %q message count runs backwards: [%d, %d]", s.Name, s.StartMessages, s.EndMessages)
			}
			if s.EndNanos < s.StartNanos {
				t.Fatalf("span %q wall clock runs backwards: [%d, %d]", s.Name, s.StartNanos, s.EndNanos)
			}
			if s.StartRound < loRound || s.EndRound > hiRound {
				t.Fatalf("span %q [%d, %d] escapes its parent [%d, %d]", s.Name, s.StartRound, s.EndRound, loRound, hiRound)
			}
			for _, c := range s.Children {
				walk(c, s.StartRound, s.EndRound)
			}
		}
		for _, s := range spans {
			walk(s, 0, stats.Rounds)
		}
	})
}
