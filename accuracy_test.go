package distmincut_test

import (
	"math"
	"testing"

	"distmincut"
	"distmincut/internal/baseline"
	"distmincut/internal/graph"
	"distmincut/internal/verify"
)

// accuracyFamilies returns the four planted-cut generator families the
// tier guarantees are asserted against: each instance has a minimum
// cut known by construction, double-checked against Stoer–Wagner
// before any tier runs. Seeds are fixed — the tiers' sampling is
// deterministic in (seed, graph), so these are exact regression tests,
// not flaky statistical ones.
func accuracyFamilies(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"planted":    graph.PlantedCut(24, 24, 3, 0.4, 11),
		"cliquepath": graph.CliquePath(3, 6, 2),
		"torus":      graph.Torus(6, 6),
		"hypercube":  graph.Hypercube(4),
	}
}

func exactLambda(t *testing.T, name string, g *graph.Graph) int64 {
	t.Helper()
	want, _, err := baseline.StoerWagner(g)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return want
}

// TestApproxTierWithinEpsilon asserts the (1+ε) serving tier's
// contract on every family: the returned value is a real cut (so
// ≥ λ) and at most (1+ε)·λ.
func TestApproxTierWithinEpsilon(t *testing.T) {
	for name, g := range accuracyFamilies(t) {
		t.Run(name, func(t *testing.T) {
			lambda := exactLambda(t, name, g)
			for _, eps := range []float64{0.25, 0.5, 0.9} {
				res, err := distmincut.ApproxMinCut(g, &distmincut.Options{Epsilon: eps, Seed: 7})
				if err != nil {
					t.Fatalf("eps=%g: %v", eps, err)
				}
				if res.Value < lambda {
					t.Fatalf("eps=%g: approx value %d below λ=%d — not a real cut", eps, res.Value, lambda)
				}
				bound := int64(math.Ceil((1 + eps) * float64(lambda)))
				if res.Value > bound {
					t.Fatalf("eps=%g: approx value %d exceeds (1+ε)λ = %d (λ=%d)", eps, res.Value, bound, lambda)
				}
				// The marked side must be a real cut of the reported weight.
				w, err := verify.CutSides(g, res.Side)
				if err != nil {
					t.Fatalf("eps=%g: side invalid: %v", eps, err)
				}
				if w != res.Value {
					t.Fatalf("eps=%g: side weighs %d, reported %d", eps, w, res.Value)
				}
			}
		})
	}
}

// TestBracketTierContainsLambda asserts the bracket tier's contract on
// every family: λ ∈ [Lo, Hi], the witness side is a real cut of the
// reported weight, and the bracket is genuinely two-sided (Lo ≥ 1,
// Hi ≤ the minimum weighted degree).
func TestBracketTierContainsLambda(t *testing.T) {
	for name, g := range accuracyFamilies(t) {
		t.Run(name, func(t *testing.T) {
			lambda := exactLambda(t, name, g)
			for _, seed := range []int64{1, 7, 42} {
				res, err := distmincut.BracketMinCut(g, &distmincut.Options{Seed: seed})
				if err != nil {
					t.Fatalf("seed=%d: %v", seed, err)
				}
				if res.Lo < 1 || res.Lo > res.Hi {
					t.Fatalf("seed=%d: malformed bracket [%d, %d]", seed, res.Lo, res.Hi)
				}
				if lambda < res.Lo || lambda > res.Hi {
					t.Fatalf("seed=%d: λ=%d outside bracket [%d, %d] (level %d)",
						seed, lambda, res.Lo, res.Hi, res.Level)
				}
				if res.Value < lambda {
					t.Fatalf("seed=%d: witness value %d below λ=%d", seed, res.Value, lambda)
				}
				w, err := verify.CutSides(g, res.Side)
				if err != nil {
					t.Fatalf("seed=%d: witness side invalid: %v", seed, err)
				}
				if w != res.Value {
					t.Fatalf("seed=%d: witness side weighs %d, reported %d", seed, w, res.Value)
				}
			}
		})
	}
}
