// Package mst implements minimum spanning trees with respect to
// load-based edge keys — the engine of Thorup's greedy tree packing —
// both sequentially (Kruskal, the reference) and distributedly in the
// CONGEST model, in the two-part Kutten–Peleg style:
//
//   - Part 1 ("controlled Borůvka"): grow MST fragments with a size cap
//     s (≈√n). Unsaturated fragments propose along their minimum
//     outgoing edge with coin-flip symmetry breaking; heads and
//     saturated fragments accept, so merge structures are depth-one
//     stars and fragment trees stay subtrees of the MST. Terminates
//     w.h.p. in O(log n) iterations with at most n/s fragments.
//   - Part 2 ("pipelined Borůvka"): the at most √n remaining fragments
//     are merged logically. Each iteration, every physical fragment
//     convergecasts its minimum outgoing edge w.r.t. *logical* fragment
//     IDs, the candidates are upcast over the BFS tree to node 0, which
//     runs the merge locally and floods the new logical IDs and chosen
//     MST edges back. O(log n) iterations of O(√n + D) rounds.
//
// The byproduct is exactly what the paper's Section 2 consumes
// (footnote 1): a partition of the MST into O(√n) fragments of O(√n)
// size (hence diameter), with the fragment tree known to every node.
package mst

import (
	"distmincut/internal/graph"
)

// Key orders edges for MST computation. The primary criterion is the
// relative load load/weight (Thorup's packing key: a weight-w edge
// stands for w parallel unit edges, load spread across them); ties
// break by weight, then by endpoint pair, so keys are globally unique
// and the MST is unique — which lets tests compare the distributed
// tree edge-for-edge against Kruskal.
type Key struct {
	Load int64
	W    int64
	UV   int64 // packed endpoints, see PackUV
}

// PackUV packs an edge's canonical endpoints into one word (each ID
// fits in 31 bits; n is far below 2^31 in any simulated workload).
func PackUV(u, v graph.NodeID) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<31 | int64(v)
}

// UnpackUV reverses PackUV.
func UnpackUV(p int64) (graph.NodeID, graph.NodeID) {
	return graph.NodeID(p >> 31), graph.NodeID(p & ((1 << 31) - 1))
}

// Less reports whether k orders strictly before o. Load ratios are
// compared by cross-multiplication; weights must stay below 2^31 so
// products cannot overflow (graph generators guarantee this).
func (k Key) Less(o Key) bool {
	l, r := k.Load*o.W, o.Load*k.W
	if l != r {
		return l < r
	}
	if k.W != o.W {
		return k.W < o.W
	}
	return k.UV < o.UV
}

// KeyOf builds the key of edge e under the given load.
func KeyOf(e graph.Edge, load int64) Key {
	return Key{Load: load, W: e.W, UV: PackUV(e.U, e.V)}
}

// unionFind is a standard disjoint-set forest with path halving.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// union merges the sets of a and b; returns false if already joined.
func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	u.parent[rb] = ra
	return true
}
