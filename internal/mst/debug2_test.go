package mst

import (
	"sync"
	"testing"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
	"distmincut/internal/proto"
)

// TestDebugWeightedMismatch localizes where a non-MST edge enters the
// distributed tree on the failing weighted workload.
func TestDebugWeightedMismatch(t *testing.T) {
	g := graph.GNP(50, 0.2, 9)
	loads := make([]int64, g.M())
	for i := range loads {
		loads[i] = int64(i % 5)
	}
	var mu sync.Mutex
	results := make([]*Result, g.N())
	_, err := congest.Run(g, congest.Options{Seed: 13}, func(nd *congest.Node) {
		bfs := proto.BuildBFS(nd, 0, 1)
		local := make(map[int]int64)
		for p := 0; p < nd.Degree(); p++ {
			local[nd.EdgeID(p)] = loads[nd.EdgeID(p)]
		}
		res := Run(nd, bfs, local, 0, 100)
		mu.Lock()
		results[nd.ID()] = res
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Kruskal(g, loads)
	if err != nil {
		t.Fatal(err)
	}
	wantSet := make(map[int64]bool, len(want))
	for _, id := range want {
		e := g.Edge(id)
		wantSet[PackUV(e.U, e.V)] = true
	}
	for v, r := range results {
		if r.ParentPort < 0 {
			continue
		}
		peer := g.Adj(graph.NodeID(v))[r.ParentPort].Peer
		uv := PackUV(graph.NodeID(v), peer)
		if !wantSet[uv] {
			// Is it an inter-fragment edge or a fragment-internal edge?
			inter := false
			for _, ie := range r.InterEdges {
				if PackUV(ie.U, ie.V) == uv {
					inter = true
				}
			}
			t.Errorf("node %d parent edge {%d,%d} not in MST; interEdge=%v fragParentPort=%d frag=%d peerFrag=%d",
				v, v, peer, inter, r.FragParentPort, r.FragID, results[peer].FragID)
		}
	}
}
