package mst

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
	"distmincut/internal/proto"
	"distmincut/internal/tree"
)

func TestKeyOrderingUnique(t *testing.T) {
	f := func(l1, l2 uint16, w1, w2 uint16, uv1, uv2 uint32) bool {
		a := Key{Load: int64(l1), W: int64(w1) + 1, UV: int64(uv1)}
		b := Key{Load: int64(l2), W: int64(w2) + 1, UV: int64(uv2)}
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		// Total order: exactly one direction.
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPackUnpackUV(t *testing.T) {
	f := func(a, b uint32) bool {
		u := graph.NodeID(a % (1 << 30))
		v := graph.NodeID(b % (1 << 30))
		if u == v {
			return true
		}
		x, y := UnpackUV(PackUV(u, v))
		if u > v {
			u, v = v, u
		}
		return x == u && y == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKruskalPlainMST(t *testing.T) {
	// Weighted square with diagonal: MST must pick the three lightest.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 3, 5)
	g.MustAddEdge(3, 0, 4)
	g.MustAddEdge(0, 2, 3)
	g.SortAdjacency()
	ids, err := Kruskal(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, id := range ids {
		total += g.Edge(id).W
	}
	// Sorted edges: 1,2,3,4,5; the weight-3 diagonal closes a cycle, so
	// the MST is 1+2+4.
	if total != 1+2+4 {
		t.Fatalf("MST weight %d, want 7", total)
	}
}

func TestKruskalRespectsLoads(t *testing.T) {
	// Unit triangle: with a load on edge {0,1}, the MST must avoid it.
	g := graph.New(3)
	e01 := g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 1)
	g.SortAdjacency()
	loads := make([]int64, 3)
	loads[e01] = 5
	ids, err := Kruskal(g, loads)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if id == e01 {
			t.Fatal("loaded edge chosen despite alternatives")
		}
	}
}

func TestKruskalDisconnected(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	if _, err := Kruskal(g, nil); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

// collectDistributed runs the distributed MST and returns per-node
// results.
func collectDistributed(t *testing.T, g *graph.Graph, loads []int64, seed int64) []*Result {
	t.Helper()
	var mu sync.Mutex
	results := make([]*Result, g.N())
	stats, err := congest.Run(g, congest.Options{Seed: seed}, func(nd *congest.Node) {
		bfs := proto.BuildBFS(nd, 0, 1)
		var local map[int]int64
		if loads != nil {
			local = make(map[int]int64)
			for p := 0; p < nd.Degree(); p++ {
				local[nd.EdgeID(p)] = loads[nd.EdgeID(p)]
			}
		}
		res := Run(nd, bfs, local, 0, 100)
		mu.Lock()
		results[nd.ID()] = res
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Leftover != 0 {
		t.Fatalf("MST left %d unconsumed messages", stats.Leftover)
	}
	return results
}

// treeEdgesOf extracts the set of chosen edge UV pairs from per-node
// parent ports.
func treeEdgesOf(g *graph.Graph, results []*Result) map[int64]bool {
	set := make(map[int64]bool)
	for v, r := range results {
		if r.ParentPort >= 0 {
			peer := g.Adj(graph.NodeID(v))[r.ParentPort].Peer
			set[PackUV(graph.NodeID(v), peer)] = true
		}
	}
	return set
}

func checkAgainstKruskal(t *testing.T, g *graph.Graph, loads []int64, seed int64) []*Result {
	t.Helper()
	results := collectDistributed(t, g, loads, seed)
	want, err := Kruskal(g, loads)
	if err != nil {
		t.Fatal(err)
	}
	wantSet := make(map[int64]bool, len(want))
	for _, id := range want {
		e := g.Edge(id)
		wantSet[PackUV(e.U, e.V)] = true
	}
	got := treeEdgesOf(g, results)
	if len(got) != len(wantSet) {
		t.Fatalf("distributed tree has %d edges, Kruskal %d", len(got), len(wantSet))
	}
	for uv := range got {
		if !wantSet[uv] {
			u, v := UnpackUV(uv)
			t.Fatalf("distributed tree contains non-MST edge {%d,%d}", u, v)
		}
	}
	// Orientation must form a tree rooted at 0.
	parent := make([]graph.NodeID, g.N())
	for v, r := range results {
		if v == 0 {
			if r.ParentPort != -1 {
				t.Fatal("node 0 has a parent")
			}
			parent[0] = -1
			continue
		}
		if r.ParentPort < 0 {
			t.Fatalf("node %d has no parent", v)
		}
		parent[v] = g.Adj(graph.NodeID(v))[r.ParentPort].Peer
	}
	if _, err := tree.New(0, parent, nil); err != nil {
		t.Fatalf("orientation is not a tree: %v", err)
	}
	// Child ports must mirror parent ports.
	childCount := 0
	for v, r := range results {
		for _, c := range r.ChildPorts {
			peer := g.Adj(graph.NodeID(v))[c].Peer
			if parent[peer] != graph.NodeID(v) {
				t.Fatalf("node %d lists %d as child, but its parent is %d", v, peer, parent[peer])
			}
			childCount++
		}
	}
	if childCount != g.N()-1 {
		t.Fatalf("total child links %d, want %d", childCount, g.N()-1)
	}
	return results
}

func TestDistributedMSTMatchesKruskal(t *testing.T) {
	workloads := map[string]*graph.Graph{
		"cycle":       graph.Cycle(24),
		"grid":        graph.Grid(6, 6),
		"gnp-sparse":  graph.GNP(60, 0.08, 3),
		"gnp-dense":   graph.GNP(40, 0.35, 4),
		"weighted":    graph.AssignWeights(graph.GNP(50, 0.15, 5), 1, 40, 6),
		"clique":      graph.Complete(16),
		"star":        graph.Star(20),
		"path":        graph.Path(30),
		"tiny":        graph.Path(2),
		"single":      graph.Path(1),
		"torus":       graph.Torus(5, 5),
		"cliquepath":  graph.CliquePath(4, 6, 2),
		"weightedbig": graph.AssignWeights(graph.GNP(80, 0.1, 7), 1, 1000, 8),
	}
	for name, g := range workloads {
		t.Run(name, func(t *testing.T) {
			checkAgainstKruskal(t, g, nil, 11)
		})
	}
}

func TestDistributedMSTWithLoads(t *testing.T) {
	g := graph.GNP(50, 0.2, 9)
	loads := make([]int64, g.M())
	for i := range loads {
		loads[i] = int64(i % 5)
	}
	checkAgainstKruskal(t, g, loads, 13)
}

func TestDistributedMSTSeedsAgree(t *testing.T) {
	// Different engine seeds change Part-1 coin flips but the MST is
	// unique, so the tree must be identical.
	g := graph.GNP(45, 0.15, 21)
	a := treeEdgesOf(g, collectDistributed(t, g, nil, 1))
	b := treeEdgesOf(g, collectDistributed(t, g, nil, 99))
	if len(a) != len(b) {
		t.Fatalf("different seeds gave different tree sizes %d vs %d", len(a), len(b))
	}
	for uv := range a {
		if !b[uv] {
			t.Fatal("different seeds gave different trees")
		}
	}
}

func TestFragmentProperties(t *testing.T) {
	g := graph.GNP(120, 0.08, 17)
	results := collectDistributed(t, g, nil, 5)
	cap := SizeCap(g.N())

	// Group nodes by fragment.
	frags := make(map[int64][]graph.NodeID)
	for v, r := range results {
		frags[r.FragID] = append(frags[r.FragID], graph.NodeID(v))
	}
	// Count: every fragment saturated => at most n/cap fragments (+1 slack
	// for the single-fragment case).
	if len(frags) > g.N()/cap+1 {
		t.Fatalf("%d fragments exceed n/√n bound %d", len(frags), g.N()/cap+1)
	}
	for id, members := range frags {
		if len(frags) > 1 && len(members) < cap {
			t.Fatalf("fragment %d has %d members, below cap %d", id, len(members), cap)
		}
	}
	// Fragment-internal ports must form connected subtrees of the MST:
	// each fragment has exactly |members|-1 internal parent links and
	// every internal parent is in the same fragment.
	for id, members := range frags {
		links := 0
		for _, v := range members {
			r := results[v]
			if r.FragParentPort >= 0 {
				peer := g.Adj(v)[r.FragParentPort].Peer
				if results[peer].FragID != id {
					t.Fatalf("node %d frag parent %d in different fragment", v, peer)
				}
				links++
			} else if r.FragRootID != v {
				t.Fatalf("node %d is fragment root but FragRootID says %d", v, r.FragRootID)
			}
		}
		if links != len(members)-1 {
			t.Fatalf("fragment %d has %d internal links for %d members", id, links, len(members))
		}
	}
	// Every node agrees on the inter-edge list and root fragment.
	ref := results[0]
	for v := 1; v < g.N(); v++ {
		r := results[v]
		if r.RootFrag != ref.RootFrag || len(r.InterEdges) != len(ref.InterEdges) {
			t.Fatalf("node %d disagrees on fragment tree", v)
		}
		for i := range r.InterEdges {
			if r.InterEdges[i] != ref.InterEdges[i] {
				t.Fatalf("node %d inter-edge %d differs", v, i)
			}
		}
	}
	if len(ref.InterEdges) != len(frags)-1 {
		t.Fatalf("%d inter-edges for %d fragments", len(ref.InterEdges), len(frags))
	}
	// Fragment internal roots: the fragment root of the root fragment is
	// node 0; every other fragment's root is the attachment node.
	if results[0].FragParentPort != -1 {
		t.Fatal("node 0 must be its fragment's internal root")
	}
}

// Property: on random weighted graphs the distributed MST equals
// Kruskal. Smaller and quicker than the table-driven cases, but with
// random shapes.
func TestDistributedMSTProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%30) + 2
		g := graph.AssignWeights(graph.GNP(n, 0.25, seed), 1, 9, seed+1)
		results := collectDistributed(t, g, nil, seed+2)
		want, err := Kruskal(g, nil)
		if err != nil {
			return false
		}
		wantSet := make(map[int64]bool, len(want))
		for _, id := range want {
			e := g.Edge(id)
			wantSet[PackUV(e.U, e.V)] = true
		}
		got := treeEdgesOf(g, results)
		if len(got) != len(wantSet) {
			return false
		}
		for uv := range got {
			if !wantSet[uv] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestTreePortsSorted(t *testing.T) {
	g := graph.Grid(4, 4)
	results := collectDistributed(t, g, nil, 2)
	for v, r := range results {
		ports := r.TreePorts()
		if !sort.IntsAreSorted(ports) {
			t.Fatalf("node %d tree ports unsorted: %v", v, ports)
		}
		want := len(r.ChildPorts)
		if r.ParentPort >= 0 {
			want++
		}
		if len(ports) != want {
			t.Fatalf("node %d TreePorts length %d, want %d", v, len(ports), want)
		}
	}
}
