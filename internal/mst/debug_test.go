package mst

import (
	"fmt"
	"testing"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
	"distmincut/internal/proto"
)

// TestDebugDeadlockTrace is a diagnostic for protocol hangs: it records
// a phase mark per node and dumps the last mark of every node when the
// run errors. Kept in the suite as cheap insurance — it fails only if
// the pipeline deadlocks.
func TestDebugDeadlockTrace(t *testing.T) {
	g := graph.Cycle(24)
	stats, err := congest.Run(g, congest.Options{Seed: 11}, func(nd *congest.Node) {
		bfs := proto.BuildBFS(nd, 0, 1)
		nd.Mark(fmt.Sprintf("bfs-done:%d", nd.ID()))
		r := &runner{nd: nd, bfs: bfs, cap: SizeCap(nd.N()), tag: 100}
		st := r.part1x(t)
		nd.Mark(fmt.Sprintf("part1-done:%d frag=%d", nd.ID(), st.fragID))
		inter := r.part2(st)
		nd.Mark(fmt.Sprintf("part2-done:%d inter=%d", nd.ID(), len(inter)))
		r.root(st, inter)
		nd.Mark(fmt.Sprintf("root-done:%d", nd.ID()))
	})
	if err != nil {
		last := map[graph.NodeID]string{}
		for _, m := range stats.Marks {
			last[m.Node] = fmt.Sprintf("%s @r%d", m.Label, m.Round)
		}
		for v := 0; v < g.N(); v++ {
			t.Logf("node %2d: %s", v, last[graph.NodeID(v)])
		}
		t.Fatal(err)
	}
}

// part1x is part1 with per-iteration marks.
func (r *runner) part1x(t *testing.T) *p1state {
	nd := r.nd
	st := &p1state{fragID: int64(nd.ID()), parentPort: -1}
	for iter := 0; ; iter++ {
		if iter > 40 {
			panic("too many iterations")
		}
		tag := r.tag + uint32(iter)*16
		ov := st.overlay()
		nd.Mark(fmt.Sprintf("it%d-a-conv frag=%d par=%d ch=%v", iter, st.fragID, st.parentPort, st.childPorts))
		size, _ := proto.Converge(nd, ov, tag+0, 1, proto.Sum)
		var ctl int64
		if ov.Root {
			ctl = b2i(size >= int64(r.cap)) | b2i(nd.Rand().Intn(2) == 1)<<1
		}
		nd.Mark(fmt.Sprintf("it%d-b-bcast", iter))
		ctl = proto.Broadcast(nd, ov, tag+1, ctl)
		saturated := ctl&1 != 0
		coinTail := ctl&2 != 0
		unsat := int64(0)
		if ov.Root && !saturated {
			unsat = 1
		}
		nd.Mark(fmt.Sprintf("it%d-c-global", iter))
		if proto.ConvergeBroadcast(nd, r.bfs, tag+2, unsat, proto.Sum) == 0 {
			return st
		}
		nd.Mark(fmt.Sprintf("it%d-d-exchange", iter))
		nd.SendAll(congest.Message{Kind: kindFragEx, Tag: tag + 4, A: st.fragID})
		peerFrag := make([]int64, nd.Degree())
		for i := 0; i < nd.Degree(); i++ {
			p, m := nd.Recv(congest.MatchKindTag(kindFragEx, tag+4))
			peerFrag[p] = m.A
		}
		cand, candPort := noneItem, -1
		for p := 0; p < nd.Degree(); p++ {
			if peerFrag[p] == st.fragID {
				continue
			}
			it := proto.Item{A: r.load(p), B: nd.EdgeWeight(p), C: PackUV(nd.ID(), nd.Peer(p)), D: peerFrag[p]}
			if isNone(cand) || betterCand(cand, it) == it {
				cand, candPort = it, p
			}
		}
		proposing := false
		var moeUV int64
		if !saturated {
			nd.Mark(fmt.Sprintf("it%d-e-moeconv", iter))
			moe, _ := proto.ConvergeItem(nd, ov, tag+5, cand, betterCand)
			var dec proto.Item
			if ov.Root {
				dec = proto.Item{A: b2i(coinTail && !isNone(moe)), B: moe.C}
			}
			nd.Mark(fmt.Sprintf("it%d-f-decbcast", iter))
			dec = proto.BroadcastItem(nd, ov, tag+6, dec)
			proposing = dec.A == 1
			moeUV = dec.B
		}
		nd.Mark(fmt.Sprintf("it%d-g-propose proposing=%v", iter, proposing))
		myProposePort := -1
		for p := 0; p < nd.Degree(); p++ {
			if proposing && p == candPort && cand.C == moeUV {
				myProposePort = p
				nd.Send(p, congest.Message{Kind: kindPropose, Tag: tag + 7, A: st.fragID})
			} else {
				nd.Send(p, congest.Message{Kind: kindNoPropose, Tag: tag + 7})
			}
		}
		accept := saturated || !coinTail
		var acceptedPorts []int
		for i := 0; i < nd.Degree(); i++ {
			p, m := nd.Recv(func(_ int, m congest.Message) bool {
				return m.Tag == tag+7 && (m.Kind == kindPropose || m.Kind == kindNoPropose)
			})
			if m.Kind != kindPropose {
				continue
			}
			if accept {
				nd.Send(p, congest.Message{Kind: kindAccept, Tag: tag + 8, A: st.fragID})
				acceptedPorts = append(acceptedPorts, p)
			} else {
				nd.Send(p, congest.Message{Kind: kindReject, Tag: tag + 8})
			}
		}
		nd.Mark(fmt.Sprintf("it%d-h-reply myport=%d", iter, myProposePort))
		if proposing {
			merged, newFrag := false, int64(0)
			if myProposePort >= 0 {
				_, m := nd.Recv(func(p int, m congest.Message) bool {
					return p == myProposePort && m.Tag == tag+8 && (m.Kind == kindAccept || m.Kind == kindReject)
				})
				if m.Kind == kindAccept {
					merged, newFrag = true, m.A
				}
			}
			nd.Mark(fmt.Sprintf("it%d-i-wave merged=%v", iter, merged))
			r.outcomeWave(st, myProposePort, merged, newFrag, tag+9)
		}
		if len(acceptedPorts) > 0 {
			st.childPorts = append(st.childPorts, acceptedPorts...)
			for i := 1; i < len(st.childPorts); i++ {
				for j := i; j > 0 && st.childPorts[j] < st.childPorts[j-1]; j-- {
					st.childPorts[j], st.childPorts[j-1] = st.childPorts[j-1], st.childPorts[j]
				}
			}
		}
	}
}
