package mst

import (
	"fmt"
	"math"
	"sort"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
	"distmincut/internal/proto"
)

// Message kinds (0x30 range).
const (
	kindFragEx    uint8 = 0x30 + iota // fragment-ID exchange: A=fragID, B=logicalID
	kindPropose                       // merge proposal over the MOE edge
	kindNoPropose                     // explicit "no proposal" so accounting closes
	kindAccept                        // proposal accepted: A = acceptor fragment ID
	kindReject                        // proposal rejected
	kindWave                          // intra-fragment outcome wave: A=1 reorient, B=new frag ID
)

// InterEdge is one MST edge between two Part-1 fragments. After Run,
// every node holds the identical sorted list of all inter-fragment
// edges — the fragment tree T_F of the paper's Step 1.
type InterEdge struct {
	U, V         graph.NodeID
	FragU, FragV int64
}

// Result is one node's local output of the distributed MST+rooting.
type Result struct {
	// ParentPort/ChildPorts orient the MST rooted at node 0 (ParentPort
	// is -1 at node 0).
	ParentPort int
	ChildPorts []int
	// FragID identifies this node's Part-1 fragment; FragRootID is the
	// fragment's internal root (the attachment node nearest the global
	// root, the paper's r_i).
	FragID     int64
	FragRootID graph.NodeID
	// FragParentPort/FragChildPorts orient the fragment-internal
	// subtree (FragParentPort is -1 at the fragment root).
	FragParentPort int
	FragChildPorts []int
	// InterEdges is the full inter-fragment edge list, identical at
	// every node; RootFrag is the fragment containing node 0.
	InterEdges []InterEdge
	RootFrag   int64
	// FragParent maps each fragment to its parent fragment in the
	// rooted fragment forest (component roots map to -1). Identical at
	// every node.
	FragParent map[int64]int64
	// AllFrags is the census of every fragment ID, identical at every
	// node. Connected reports whether the (possibly reweighted) graph
	// was connected; if false, the result is a rooted spanning forest
	// and ParentPort is -1 at each component's root.
	AllFrags  []int64
	Connected bool
}

// TreePorts returns all ports of this node that carry MST edges.
func (r *Result) TreePorts() []int {
	ports := append([]int(nil), r.ChildPorts...)
	if r.ParentPort >= 0 {
		ports = append(ports, r.ParentPort)
	}
	sort.Ints(ports)
	return ports
}

// SizeCap returns the paper's fragment size threshold √n.
func SizeCap(n int) int {
	c := int(math.Ceil(math.Sqrt(float64(n))))
	if c < 1 {
		c = 1
	}
	return c
}

// Run executes the full distributed MST pipeline on one node: Part 1
// (controlled Borůvka up to the size cap), Part 2 (root-coordinated
// Borůvka over the fragment graph), and the Õ(√n + D) rooting of the
// resulting tree at node 0. bfs must be a BFS overlay rooted at node 0.
// loads maps incident edge IDs to packing loads (may be nil). tagBase
// reserves the tag range [tagBase, tagBase+8192) for this invocation.
func Run(nd *congest.Node, bfs *proto.Overlay, loads map[int]int64, sizeCap int, tagBase uint32) *Result {
	return RunWeighted(nd, bfs, loads, nil, sizeCap, tagBase)
}

// RunWeighted is Run with a per-port weight override: weight(p) <= 0
// means the edge at port p is absent (used by Karger-sampled skeleton
// graphs, which may be disconnected — the result is then a rooted
// spanning forest with Connected = false). A nil weight uses the
// underlying edge weights.
func RunWeighted(nd *congest.Node, bfs *proto.Overlay, loads map[int]int64, weight func(p int) int64, sizeCap int, tagBase uint32) *Result {
	r := &runner{nd: nd, bfs: bfs, loads: loads, weight: weight, cap: sizeCap, tag: tagBase}
	if r.cap < 1 {
		r.cap = SizeCap(nd.N())
	}
	mark := nd.ID() == 0 // node 0 records the part spans for observability
	if mark {
		nd.Mark("begin:mst:part1")
	}
	st := r.part1()
	if mark {
		nd.Mark("end:mst:part1")
		nd.Mark("begin:mst:part2")
	}
	inter := r.part2(st)
	if mark {
		nd.Mark("end:mst:part2")
		nd.Mark("begin:mst:root")
	}
	res := r.root(st, inter)
	if mark {
		nd.Mark("end:mst:root")
	}
	return res
}

// TagSpan is the tag range reserved by one Run invocation.
const TagSpan = 8192

// runner bundles per-node state for one MST invocation.
type runner struct {
	nd     *congest.Node
	bfs    *proto.Overlay
	loads  map[int]int64
	weight func(p int) int64
	cap    int
	tag    uint32

	// Per-iteration receive scratch, reused so the Borůvka loops do
	// not allocate per iteration (the packing loop runs this code once
	// per tree on every node; at the million scale these were a top
	// allocation source).
	peerFrag []int64
	peerPhys []int64
}

func (r *runner) load(port int) int64 {
	if r.loads == nil {
		return 0
	}
	return r.loads[r.nd.EdgeID(port)]
}

// w returns the effective weight of the edge at port p; <= 0 means the
// edge is absent from the (sampled) graph.
func (r *runner) w(port int) int64 {
	if r.weight == nil {
		return r.nd.EdgeWeight(port)
	}
	return r.weight(port)
}

// keyItem encodes an MOE candidate as a 4-word item:
// A=load, B=weight, C=packed endpoints, D=packed target (logical<<31|phys).
var noneItem = proto.Item{A: math.MaxInt64}

func isNone(it proto.Item) bool { return it.A == math.MaxInt64 }

func betterCand(a, b proto.Item) proto.Item {
	if isNone(a) {
		return b
	}
	if isNone(b) {
		return a
	}
	ka := Key{Load: a.A, W: a.B, UV: a.C}
	kb := Key{Load: b.A, W: b.B, UV: b.C}
	if kb.Less(ka) {
		return b
	}
	return a
}

// p1state is the node's fragment-local view during Part 1.
type p1state struct {
	fragID     int64
	parentPort int
	childPorts []int
}

func (s *p1state) overlay() *proto.Overlay {
	return proto.NewOverlay(s.parentPort, s.childPorts, 0)
}

func (s *p1state) ports() []int {
	ports := append([]int(nil), s.childPorts...)
	if s.parentPort >= 0 {
		ports = append(ports, s.parentPort)
	}
	sort.Ints(ports)
	return ports
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// part1 grows MST fragments until every fragment has at least cap
// nodes (or spans the graph). Merge structures are depth-one stars:
// unsaturated tail fragments propose along their minimum outgoing
// edge; saturated fragments and unsaturated heads accept.
//
// Each iteration costs exactly two fragment-tree waves: one batched
// convergecast (size and minimum outgoing edge ride the same wave via
// ConvergeItemVec) and one broadcast (control bits and the winning edge
// packed into a single item). The earlier four sequential waves per
// iteration — size up, control down, MOE up, decision down — were the
// dominant per-iteration round cost at large fragment heights; batching
// halves it without changing any decision (the root sees size and MOE
// together and computes exactly what the split waves computed).
func (r *runner) part1() *p1state {
	nd := r.nd
	st := &p1state{fragID: int64(nd.ID()), parentPort: -1}
	maxIter := 60 + 14*bitlen(nd.N())
	if maxIter*16 >= 4096 {
		maxIter = 4096/16 - 1 // keep part-1 tags below the part-2 range
	}
	// One fragment-exchange matcher for every iteration: the tag
	// advances through the captured variable (stable while the node is
	// parked), so the receive loop does not allocate a closure per
	// message.
	var exTag uint32
	matchEx := func(_ int, m congest.Message) bool {
		return m.Kind == kindFragEx && m.Tag == exTag
	}
	if r.peerFrag == nil {
		r.peerFrag = make([]int64, nd.Degree())
	}
	for iter := 0; ; iter++ {
		if iter > maxIter {
			panic(fmt.Sprintf("mst: part 1 did not converge after %d iterations", iter))
		}
		tag := r.tag + uint32(iter)*16
		ov := st.overlay()

		// Exchange fragment IDs with all neighbors (tag+0).
		exTag = tag
		nd.SendAll(congest.Message{Kind: kindFragEx, Tag: tag, A: st.fragID})
		peerFrag := r.peerFrag
		for i := 0; i < nd.Degree(); i++ {
			p, m := nd.Recv(matchEx)
			peerFrag[p] = m.A
		}

		// Local minimum outgoing edge. Absent edges (weight <= 0 under
		// a sampled view) are never candidates.
		cand, candPort := noneItem, -1
		for p := 0; p < nd.Degree(); p++ {
			if peerFrag[p] == st.fragID || r.w(p) <= 0 {
				continue
			}
			it := proto.Item{
				A: r.load(p),
				B: r.w(p),
				C: PackUV(nd.ID(), nd.Peer(p)),
				D: peerFrag[p],
			}
			if isNone(cand) || betterCand(cand, it) == it {
				cand, candPort = it, p
			}
		}

		// One batched wave up the fragment tree (tags tag+1, tag+2):
		// slot 0 sums the fragment size, slot 1 carries the fragment's
		// minimum outgoing edge.
		up, _ := proto.ConvergeItemVec(nd, ov, tag+1,
			[]proto.Item{{A: 1}, cand},
			func(slot int, a, b proto.Item) proto.Item {
				if slot == 0 {
					return proto.Item{A: a.A + b.A}
				}
				return betterCand(a, b)
			})

		// The root now holds size and MOE together: saturation, the
		// merge coin, and the proposal decision come out of one place.
		// Global termination (tags tag+3, tag+4, over the BFS tree): a
		// fragment blocks completion only if it is unsaturated AND
		// still has an outgoing edge. Isolated small fragments
		// (possible under sampled views) stop growing.
		var ctl, rootMoeUV int64
		unsat := int64(0)
		if ov.Root {
			size, moe := up[0].A, up[1]
			saturated := size >= int64(r.cap)
			coinTail := nd.Rand().Intn(2) == 1
			ctl = b2i(saturated) | b2i(coinTail)<<1 | b2i(coinTail && !saturated && !isNone(moe))<<2
			rootMoeUV = moe.C
			if !saturated && !isNone(moe) {
				unsat = 1
			}
		}
		if proto.ConvergeBroadcast(nd, r.bfs, tag+3, unsat, proto.Sum) == 0 {
			return st
		}

		// One wave down the fragment tree (tag+5): control bits and the
		// winning MOE endpoints share a single item.
		dec := proto.BroadcastItem(nd, ov, tag+5, proto.Item{A: ctl, B: rootMoeUV})
		saturated := dec.A&1 != 0
		coinTail := dec.A&2 != 0
		proposing := dec.A&4 != 0
		moeUV := dec.B

		// One PROPOSE/NOPROPOSE per port, then one reply per PROPOSE.
		myProposePort := -1
		for p := 0; p < nd.Degree(); p++ {
			if proposing && p == candPort && cand.C == moeUV {
				myProposePort = p
				nd.Send(p, congest.Message{Kind: kindPropose, Tag: tag + 6, A: st.fragID})
			} else {
				nd.Send(p, congest.Message{Kind: kindNoPropose, Tag: tag + 6})
			}
		}
		accept := saturated || !coinTail
		var acceptedPorts []int
		for i := 0; i < nd.Degree(); i++ {
			p, m := nd.Recv(func(_ int, m congest.Message) bool {
				return m.Tag == tag+6 && (m.Kind == kindPropose || m.Kind == kindNoPropose)
			})
			if m.Kind != kindPropose {
				continue
			}
			if accept {
				nd.Send(p, congest.Message{Kind: kindAccept, Tag: tag + 7, A: st.fragID})
				acceptedPorts = append(acceptedPorts, p)
			} else {
				nd.Send(p, congest.Message{Kind: kindReject, Tag: tag + 7})
			}
		}

		// Proposer learns the outcome; the whole proposing fragment
		// then runs the outcome wave (reorient toward the proposer and
		// adopt the acceptor's fragment ID, or keep everything).
		if proposing {
			merged, newFrag := false, int64(0)
			if myProposePort >= 0 {
				_, m := nd.Recv(func(p int, m congest.Message) bool {
					return p == myProposePort && m.Tag == tag+7 &&
						(m.Kind == kindAccept || m.Kind == kindReject)
				})
				if m.Kind == kindAccept {
					merged, newFrag = true, m.A
				}
			}
			r.outcomeWave(st, myProposePort, merged, newFrag, tag+8)
		}
		if len(acceptedPorts) > 0 {
			st.childPorts = append(st.childPorts, acceptedPorts...)
			sort.Ints(st.childPorts)
		}
	}
}

// outcomeWave floods the proposal outcome through the proposer's old
// fragment tree. On acceptance every fragment node re-roots toward the
// proposer and adopts the new fragment ID; on rejection the wave is a
// pure notification. Exactly one message crosses each fragment edge.
func (r *runner) outcomeWave(st *p1state, proposePort int, merged bool, newFrag int64, tag uint32) {
	nd := r.nd
	oldPorts := st.ports()
	if proposePort >= 0 {
		// Initiator (the proposing node).
		for _, p := range oldPorts {
			nd.Send(p, congest.Message{Kind: kindWave, Tag: tag, A: b2i(merged), B: newFrag})
		}
		if merged {
			st.fragID = newFrag
			st.parentPort = proposePort
			st.childPorts = oldPorts
		}
		return
	}
	from, m := nd.Recv(func(p int, m congest.Message) bool {
		if m.Kind != kindWave || m.Tag != tag {
			return false
		}
		// oldPorts is sorted (st.ports); binary search keeps predicate
		// evaluation O(log k) even at high-degree fragment heads, where
		// many wave messages can be buffered at once.
		i := sort.SearchInts(oldPorts, p)
		return i < len(oldPorts) && oldPorts[i] == p
	})
	for _, p := range oldPorts {
		if p != from {
			nd.Send(p, m)
		}
	}
	if m.A == 1 {
		st.fragID = m.B
		st.parentPort = from
		st.childPorts = st.childPorts[:0]
		for _, p := range oldPorts {
			if p != from {
				st.childPorts = append(st.childPorts, p)
			}
		}
		sort.Ints(st.childPorts)
	}
}

// part2 merges the O(√n) Part-1 fragments into the MST using logical
// fragment IDs coordinated at the BFS root. It returns the accumulated
// inter-fragment MST edges (identical at every node).
func (r *runner) part2(st *p1state) []InterEdge {
	nd := r.nd
	fragOv := st.overlay()
	physID := st.fragID
	logical := physID
	var inter []InterEdge
	maxIter := 4 + 2*bitlen(nd.N())
	base := r.tag + 4096 // disjoint from part 1 tags (checked in part1)
	var exTag uint32
	matchEx := func(_ int, m congest.Message) bool {
		return m.Kind == kindFragEx && m.Tag == exTag
	}
	if r.peerFrag == nil {
		r.peerFrag = make([]int64, nd.Degree())
	}
	if r.peerPhys == nil {
		r.peerPhys = make([]int64, nd.Degree())
	}
	for iter := 0; ; iter++ {
		if iter > maxIter {
			panic(fmt.Sprintf("mst: part 2 did not converge after %d iterations", iter))
		}
		tag := base + uint32(iter)*8

		// Exchange (logical, phys) with all neighbors.
		exTag = tag
		nd.SendAll(congest.Message{Kind: kindFragEx, Tag: tag, A: logical, B: physID})
		peerLogical, peerPhys := r.peerFrag, r.peerPhys
		for i := 0; i < nd.Degree(); i++ {
			p, m := nd.Recv(matchEx)
			peerLogical[p], peerPhys[p] = m.A, m.B
		}

		// Fragment MOE w.r.t. logical IDs. The packed endpoints are
		// canonical (for key uniqueness and mutual-MOE dedup at the
		// root), so a swap flag records whether the canonical U is the
		// far endpoint — the root needs (U,V) aligned with
		// (FragU,FragV) when it emits inter-fragment edges. The flag
		// rides in D's sign (bitwise NOT of the 62-bit pack), keeping
		// the word within the runtime's ±2^62 payload budget
		// (congest.PayloadLimit).
		cand := noneItem
		for p := 0; p < nd.Degree(); p++ {
			if peerLogical[p] == logical || r.w(p) <= 0 {
				continue
			}
			d := peerLogical[p]<<31 | peerPhys[p]
			if nd.ID() > nd.Peer(p) {
				d = ^d
			}
			it := proto.Item{
				A: r.load(p),
				B: r.w(p),
				C: PackUV(nd.ID(), nd.Peer(p)),
				D: d,
			}
			if isNone(cand) || betterCand(cand, it) == it {
				cand = it
			}
		}
		moe, _ := proto.ConvergeItem(nd, fragOv, tag+1, cand, betterCand)

		// Physical-fragment roots upcast their candidate to the BFS
		// root as one packed item: A = load<<31|weight, B = packed
		// endpoints, C = packed (myLogical, myPhys), D = packed
		// (targetLogical, targetPhys) with the swap flag in the sign.
		// Loads and weights stay below 2^31 in every workload, so the
		// packing is lossless.
		var mine []proto.Item
		if fragOv.Root && !isNone(moe) {
			mine = []proto.Item{{
				A: moe.A<<31 | moe.B,
				B: moe.C,
				C: logical<<31 | physID,
				D: moe.D,
			}}
		}
		gathered := proto.Gather(nd, r.bfs, tag+2, mine)

		// The BFS root (node 0) runs the Borůvka merge locally.
		var flood []proto.Item
		if r.bfs.Root {
			flood = mergeAtRoot(gathered, iter)
		}
		out := proto.Flood(nd, r.bfs, tag+4, flood)

		done := false
		for _, it := range out {
			switch it.A {
			case 3: // logical remap: B -> C
				if it.B == logical {
					logical = it.C
				}
			case 4: // chosen MST edge: B=u, C=v, D=physU<<31|physV
				u, v := graph.NodeID(it.B), graph.NodeID(it.C)
				inter = append(inter, InterEdge{U: u, V: v, FragU: it.D >> 31, FragV: it.D & ((1 << 31) - 1)})
			case 5: // done flag
				done = it.B == 1
			}
		}
		if done {
			return inter
		}
	}
}

// debugMerge, when set by tests, prints the root's Part-2 decisions.
var debugMerge = false

// cand2 is a reassembled Part-2 candidate at the BFS root.
type cand2 struct {
	key                       Key
	u, v                      graph.NodeID
	myLogical, myPhys         int64
	targetLogical, targetPhys int64
}

// mergeAtRoot unpacks the gathered candidates, picks each logical
// fragment's best, unions along chosen edges, and emits the remap,
// chosen-edge, and done items to flood.
func mergeAtRoot(items []proto.Item, iter int) []proto.Item {
	if debugMerge {
		fmt.Printf("root: === iter %d: %d candidates ===\n", iter, len(items))
	}
	best := make(map[int64]cand2) // per myLogical
	for _, it := range items {
		uv := it.B
		u, v := UnpackUV(uv)
		d := it.D
		if d < 0 {
			d = ^d
			u, v = v, u // align u with the proposing fragment
		}
		c := cand2{
			key:           Key{Load: it.A >> 31, W: it.A & ((1 << 31) - 1), UV: uv},
			u:             u,
			v:             v,
			myLogical:     it.C >> 31,
			myPhys:        it.C & ((1 << 31) - 1),
			targetLogical: d >> 31,
			targetPhys:    d & ((1 << 31) - 1),
		}
		if cur, ok := best[c.myLogical]; !ok || c.key.Less(cur.key) {
			best[c.myLogical] = c
		}
	}
	if debugMerge {
		for l, c := range best {
			fmt.Printf("root: logical %d best {%d,%d} key=%+v targetLogical=%d myPhys=%d targetPhys=%d\n",
				l, c.u, c.v, c.key, c.targetLogical, c.myPhys, c.targetPhys)
		}
	}
	if len(best) == 0 {
		return []proto.Item{{A: 5, B: 1}}
	}
	// Union along chosen edges (dedup mutual MOEs by packed edge).
	parent := make(map[int64]int64)
	var find func(x int64) int64
	find = func(x int64) int64 {
		if p, ok := parent[x]; ok && p != x {
			r := find(p)
			parent[x] = r
			return r
		}
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		return parent[x]
	}
	chosen := make(map[int64]cand2)
	for _, c := range best {
		chosen[c.key.UV] = c
		find(c.myLogical)
		find(c.targetLogical)
	}
	for _, c := range chosen {
		ra, rb := find(c.myLogical), find(c.targetLogical)
		if ra != rb {
			parent[rb] = ra
		}
	}
	// Canonical representative: minimum logical ID per component.
	rep := make(map[int64]int64)
	for l := range parent {
		r := find(l)
		if cur, ok := rep[r]; !ok || l < cur {
			rep[r] = l
		}
	}
	var flood []proto.Item
	var logicals []int64
	for l := range parent {
		logicals = append(logicals, l)
	}
	sort.Slice(logicals, func(i, j int) bool { return logicals[i] < logicals[j] })
	for _, l := range logicals {
		flood = append(flood, proto.Item{A: 3, B: l, C: rep[find(l)]})
	}
	var uvs []int64
	for uv := range chosen {
		uvs = append(uvs, uv)
	}
	sort.Slice(uvs, func(i, j int) bool { return uvs[i] < uvs[j] })
	for _, uv := range uvs {
		c := chosen[uv]
		flood = append(flood, proto.Item{A: 4, B: int64(c.u), C: int64(c.v), D: c.myPhys<<31 | c.targetPhys})
	}
	flood = append(flood, proto.Item{A: 5, B: 0})
	return flood
}

// root orients the MST (or spanning forest, under a sampled view) in
// Õ(√n + D): the fragment forest is known to every node (InterEdges +
// census), so orientation between fragments is a local computation, and
// each fragment re-roots internally at its attachment node with one
// O(√n)-round adopt wave. Node 0 roots its component; every other
// component is rooted at its minimum fragment ID.
func (r *runner) root(st *p1state, inter []InterEdge) *Result {
	nd := r.nd
	base := r.tag + TagSpan - 16
	myPhys := st.fragID

	// Fragment census: roots contribute their ID (tags base, base+1).
	var mine []proto.Item
	if st.parentPort < 0 {
		mine = []proto.Item{{A: myPhys}}
	}
	censusItems := proto.AllGather(nd, r.bfs, base, mine)
	allFrags := make([]int64, 0, len(censusItems))
	for _, it := range censusItems {
		allFrags = append(allFrags, it.A)
	}

	// Node 0 (the BFS root) announces its fragment.
	rootFrag := proto.Broadcast(nd, r.bfs, base+2, myPhys)

	// Locally orient the fragment forest.
	fragParent, attach := orientForest(inter, allFrags, rootFrag)
	components := 0
	for _, p := range fragParent {
		if p == -1 {
			components++
		}
	}

	// Re-root my fragment at its attachment node; component-root
	// fragments re-root at node 0 (root component) or at the node whose
	// ID equals the fragment ID (its Part-1 root, a member by
	// construction).
	var internalRoot graph.NodeID
	switch {
	case myPhys == rootFrag:
		internalRoot = 0
	case fragParent[myPhys] == -1:
		internalRoot = graph.NodeID(myPhys)
	default:
		internalRoot = attach[myPhys].inner
	}
	wave := proto.AdoptWave(nd, st.ports(), nd.ID() == internalRoot, base+4)

	res := &Result{
		FragID:         myPhys,
		FragRootID:     internalRoot,
		FragParentPort: wave.ParentPort,
		FragChildPorts: append([]int(nil), wave.ChildPorts...),
		InterEdges:     inter,
		RootFrag:       rootFrag,
		FragParent:     fragParent,
		AllFrags:       allFrags,
		Connected:      components == 1,
	}

	// Assemble the global tree ports.
	res.ParentPort = wave.ParentPort
	if nd.ID() == internalRoot {
		if fragParent[myPhys] == -1 {
			res.ParentPort = -1
		} else {
			res.ParentPort = nd.PortTo(attach[myPhys].outer)
		}
	}
	res.ChildPorts = append([]int(nil), wave.ChildPorts...)
	for _, ie := range inter {
		// If I am the parent-side endpoint of an inter-fragment edge, the
		// child fragment hangs off me.
		if fragParent[ie.FragU] == ie.FragV && ie.V == nd.ID() {
			res.ChildPorts = append(res.ChildPorts, nd.PortTo(ie.U))
		}
		if fragParent[ie.FragV] == ie.FragU && ie.U == nd.ID() {
			res.ChildPorts = append(res.ChildPorts, nd.PortTo(ie.V))
		}
	}
	sort.Ints(res.ChildPorts)
	return res
}

// attachment records, for a fragment, its node incident to the parent
// fragment (inner) and the peer endpoint in the parent (outer).
type attachment struct {
	inner graph.NodeID
	outer graph.NodeID
}

// orientForest builds parent pointers for the fragment forest: node 0's
// component is rooted at rootFrag, every other component at its minimum
// fragment ID. Pure local computation on globally known data.
func orientForest(inter []InterEdge, allFrags []int64, rootFrag int64) (map[int64]int64, map[int64]attachment) {
	adj := make(map[int64][]InterEdge)
	for _, ie := range inter {
		adj[ie.FragU] = append(adj[ie.FragU], ie)
		adj[ie.FragV] = append(adj[ie.FragV], ie)
	}
	fragParent := make(map[int64]int64, len(allFrags))
	attach := make(map[int64]attachment)
	seen := make(map[int64]bool, len(allFrags))

	orient := func(root int64) {
		fragParent[root] = -1
		seen[root] = true
		queue := []int64{root}
		for len(queue) > 0 {
			f := queue[0]
			queue = queue[1:]
			for _, ie := range adj[f] {
				child, childInner, childOuter := ie.FragV, ie.V, ie.U
				if ie.FragV == f {
					child, childInner, childOuter = ie.FragU, ie.U, ie.V
				}
				if seen[child] {
					continue
				}
				seen[child] = true
				fragParent[child] = f
				attach[child] = attachment{inner: childInner, outer: childOuter}
				queue = append(queue, child)
			}
		}
	}
	orient(rootFrag)
	// Remaining components, smallest fragment ID first (allFrags is
	// sorted by the AllGather).
	for _, f := range allFrags {
		if !seen[f] {
			orient(f)
		}
	}
	return fragParent, attach
}

// bitlen returns the number of bits of n (≈ log2 n + 1).
func bitlen(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}
