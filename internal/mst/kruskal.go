package mst

import (
	"fmt"
	"sort"

	"distmincut/internal/graph"
	"distmincut/internal/tree"
)

// Kruskal computes the unique MST of g under load-based keys
// sequentially and returns the set of chosen edge IDs. loads[i] is the
// packing load of edge i (all zeros for a plain minimum-weight spanning
// tree). This is the reference the distributed algorithm is verified
// against, and the engine of the sequential packing used in tests.
func Kruskal(g *graph.Graph, loads []int64) ([]int, error) {
	if loads == nil {
		loads = make([]int64, g.M())
	}
	if len(loads) != g.M() {
		return nil, fmt.Errorf("mst: %d loads for %d edges", len(loads), g.M())
	}
	order := make([]int, g.M())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := g.Edge(order[a]), g.Edge(order[b])
		return KeyOf(ea, loads[ea.ID]).Less(KeyOf(eb, loads[eb.ID]))
	})
	uf := newUnionFind(g.N())
	chosen := make([]int, 0, g.N()-1)
	for _, id := range order {
		e := g.Edge(id)
		if uf.union(int(e.U), int(e.V)) {
			chosen = append(chosen, id)
		}
	}
	if len(chosen) != g.N()-1 {
		return nil, fmt.Errorf("mst: graph disconnected (%d tree edges for %d nodes)", len(chosen), g.N())
	}
	sort.Ints(chosen)
	return chosen, nil
}

// TreeOf roots the spanning tree given by edge IDs at root and returns
// it as a tree.Tree.
func TreeOf(g *graph.Graph, edgeIDs []int, root graph.NodeID) (*tree.Tree, error) {
	sub := graph.New(g.N())
	orig := make(map[int64]int, len(edgeIDs))
	for _, id := range edgeIDs {
		e := g.Edge(id)
		sub.MustAddEdge(e.U, e.V, e.W)
		orig[PackUV(e.U, e.V)] = id
	}
	sub.SortAdjacency()
	t, err := tree.FromGraphTree(sub, root)
	if err != nil {
		return nil, err
	}
	// Re-express parent edges in g's edge IDs.
	parent := make([]graph.NodeID, g.N())
	parentEdge := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		parent[v] = t.Parent(graph.NodeID(v))
		parentEdge[v] = -1
		if parent[v] >= 0 {
			parentEdge[v] = orig[PackUV(graph.NodeID(v), parent[v])]
		}
	}
	return tree.New(root, parent, parentEdge)
}
