package mst

import (
	"sync"
	"testing"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
	"distmincut/internal/proto"
)

// TestRunWeightedForest: a weight view that splits the graph must
// yield a consistent rooted spanning FOREST with Connected=false —
// the regime Karger-sampled skeletons can put the pipeline in.
func TestRunWeightedForest(t *testing.T) {
	// Two cliques joined by a single bridge; the view erases the bridge.
	g := graph.Barbell(8, 0)
	var bridgeID int
	found := false
	for _, e := range g.Edges() {
		if (e.U < 8) != (e.V < 8) {
			bridgeID = e.ID
			found = true
		}
	}
	if !found {
		t.Fatal("no bridge in barbell")
	}
	var mu sync.Mutex
	results := make([]*Result, g.N())
	stats, err := congest.Run(g, congest.Options{Seed: 3}, func(nd *congest.Node) {
		bfs := proto.BuildBFS(nd, 0, 1)
		weight := func(p int) int64 {
			if nd.EdgeID(p) == bridgeID {
				return 0
			}
			return nd.EdgeWeight(p)
		}
		res := RunWeighted(nd, bfs, nil, weight, 0, 100)
		mu.Lock()
		results[nd.ID()] = res
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Leftover != 0 {
		t.Fatalf("forest run left %d messages", stats.Leftover)
	}
	roots := 0
	for v, r := range results {
		if r.Connected {
			t.Fatalf("node %d believes the view is connected", v)
		}
		if r.ParentPort == -1 {
			roots++
			continue
		}
		// Parent edges must never use the erased bridge.
		peer := g.Adj(graph.NodeID(v))[r.ParentPort].Peer
		if (graph.NodeID(v) < 8) != (peer < 8) {
			t.Fatalf("node %d parent crosses the erased bridge", v)
		}
	}
	if roots != 2 {
		t.Fatalf("forest has %d roots, want 2 (one per component)", roots)
	}
	// Tree links per component: 7 each.
	links := 0
	for _, r := range results {
		links += len(r.ChildPorts)
	}
	if links != g.N()-2 {
		t.Fatalf("forest has %d child links, want %d", links, g.N()-2)
	}
	// All nodes agree on the census.
	for v := 1; v < g.N(); v++ {
		if len(results[v].AllFrags) != len(results[0].AllFrags) {
			t.Fatalf("census disagreement at node %d", v)
		}
	}
}

// TestRunWeightedReweightedMST: a weight view that reverses edge
// preference must change the chosen tree accordingly (checked against
// Kruskal on the reweighted graph).
func TestRunWeightedReweightedMST(t *testing.T) {
	g := graph.AssignWeights(graph.GNP(40, 0.2, 5), 1, 100, 6)
	// View: invert weights (101 - w), keeping them positive.
	view := make([]int64, g.M())
	for i, e := range g.Edges() {
		view[i] = 101 - e.W
	}
	var mu sync.Mutex
	gotSet := map[int64]bool{}
	_, err := congest.Run(g, congest.Options{Seed: 7}, func(nd *congest.Node) {
		bfs := proto.BuildBFS(nd, 0, 1)
		res := RunWeighted(nd, bfs, nil, func(p int) int64 { return view[nd.EdgeID(p)] }, 0, 100)
		mu.Lock()
		defer mu.Unlock()
		if res.ParentPort >= 0 {
			gotSet[PackUV(nd.ID(), nd.Peer(res.ParentPort))] = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := g.Reweight(view)
	h.SortAdjacency()
	want, err := Kruskal(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSet) != len(want) {
		t.Fatalf("tree sizes differ: %d vs %d", len(gotSet), len(want))
	}
	for _, id := range want {
		e := h.Edge(id)
		if !gotSet[PackUV(e.U, e.V)] {
			t.Fatalf("reweighted MST edge {%d,%d} missing from distributed tree", e.U, e.V)
		}
	}
}
