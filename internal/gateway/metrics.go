package gateway

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"distmincut/internal/service"
)

// upstreamBounds are the bucket upper bounds (seconds) of the
// per-replica upstream latency histogram: sub-millisecond local
// round-trips up through the attempt-timeout neighborhood; +Inf is
// implicit.
var upstreamBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60,
}

// gwHistogram mirrors the service's lock-free fixed-bound histogram:
// every forwarded attempt costs one atomic bucket increment plus two
// atomic adds, so metrics never contend on the proxy path.
type gwHistogram struct {
	counts []atomic.Int64 // len(upstreamBounds)+1; last is +Inf
	sumNs  atomic.Int64
	count  atomic.Int64
}

func newGwHistogram() *gwHistogram {
	return &gwHistogram{counts: make([]atomic.Int64, len(upstreamBounds)+1)}
}

func (h *gwHistogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(upstreamBounds) && sec > upstreamBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(d.Nanoseconds())
	h.count.Add(1)
}

func (h *gwHistogram) snapshot() service.HistogramSnapshot {
	s := service.HistogramSnapshot{
		Bounds:     upstreamBounds,
		Counts:     make([]int64, len(h.counts)),
		SumSeconds: float64(h.sumNs.Load()) / 1e9,
		Count:      h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// metrics is the gateway's live counter set. Gateway-wide counters are
// plain atomics; per-replica counters live in a map fixed at
// construction (reads never lock).
type metrics struct {
	start      time.Time
	jobsRouted atomic.Int64
	jobsFailed atomic.Int64
	jobsShed   atomic.Int64
	hedges     atomic.Int64
	hedgeWins  atomic.Int64
	reps       map[string]*replicaMetrics
}

// replicaMetrics is one replica's counter set.
type replicaMetrics struct {
	requests       atomic.Int64
	failures       atomic.Int64
	retries        atomic.Int64
	ejections      atomic.Int64
	reinstatements atomic.Int64
	replays        atomic.Int64
	latency        *gwHistogram
}

func newMetrics(names []string) *metrics {
	m := &metrics{start: time.Now(), reps: make(map[string]*replicaMetrics, len(names))}
	for _, n := range names {
		m.reps[n] = &replicaMetrics{latency: newGwHistogram()}
	}
	return m
}

// rep returns the named replica's counters. Replica names are fixed at
// construction, so a miss is a programming error; returning a throwaway
// set keeps the proxy path panic-free regardless.
func (m *metrics) rep(name string) *replicaMetrics {
	if rm, ok := m.reps[name]; ok {
		return rm
	}
	return &replicaMetrics{latency: newGwHistogram()}
}

// Metrics is the gateway's point-in-time metrics snapshot, served as
// JSON at /metrics?format=json and rendered as the mincutgw_*
// Prometheus families by WritePrometheus. JobsFailed counts
// submissions that failed at every routable replica — the value a
// chaos run asserts stays zero while replicas are being killed and
// rolled under it.
type Metrics struct {
	// UptimeSec is seconds since the gateway started.
	UptimeSec float64 `json:"uptime_seconds"`
	// Replicas is the configured replica count (the ring size).
	Replicas int `json:"replicas"`
	// HealthyReplicas counts replicas currently accepting new routes.
	HealthyReplicas int `json:"healthy_replicas"`
	// TrackedJobs is the number of in-flight jobs the gateway can
	// replay off a draining or dead replica.
	TrackedJobs int `json:"tracked_jobs"`
	// JobsRouted counts submissions accepted by some replica (cache
	// hits included).
	JobsRouted int64 `json:"jobs_routed"`
	// JobsFailed counts submissions that failed at every candidate
	// replica and surfaced to the client as 502.
	JobsFailed int64 `json:"jobs_failed"`
	// JobsShed counts submissions turned away with 503 because no
	// replica was accepting work (all draining, saturated, or down).
	JobsShed int64 `json:"jobs_shed"`
	// Hedges counts hedge requests launched for slow result fetches.
	Hedges int64 `json:"hedges"`
	// HedgeWins counts hedge requests that beat the primary fetch.
	HedgeWins int64 `json:"hedge_wins"`
	// PerReplica holds each replica's health state and counters, in
	// configuration order.
	PerReplica []ReplicaMetrics `json:"per_replica"`
	// Build is the gateway binary's build identity.
	Build service.BuildInfo `json:"build"`
}

// ReplicaMetrics is one replica's health state and counters inside a
// Metrics snapshot.
type ReplicaMetrics struct {
	// Name is the replica's gateway-side name (the job-ID prefix).
	Name string `json:"name"`
	// State is the health state: healthy, saturated, draining, or down.
	State string `json:"state"`
	// Reason explains a not-ready state when the replica reported one.
	Reason string `json:"reason,omitempty"`
	// Up is false only in state down (ejected).
	Up bool `json:"up"`
	// Requests counts forwarded upstream attempts (all endpoints).
	Requests int64 `json:"requests"`
	// Failures counts attempts that ended in a transport error or 5xx.
	Failures int64 `json:"failures"`
	// Retries counts submit attempts re-routed here after another
	// replica failed.
	Retries int64 `json:"retries"`
	// Ejections counts transitions into state down.
	Ejections int64 `json:"ejections"`
	// Reinstatements counts recoveries out of state down.
	Reinstatements int64 `json:"reinstatements"`
	// Replays counts tracked jobs replayed off this replica while it
	// drained or was ejected.
	Replays int64 `json:"replays"`
	// UpstreamLatency is the attempt latency histogram for this replica.
	UpstreamLatency service.HistogramSnapshot `json:"upstream_latency"`
}

// Metrics returns the gateway's current snapshot.
func (g *Gateway) Metrics() Metrics {
	m := Metrics{
		UptimeSec:  time.Since(g.m.start).Seconds(),
		Replicas:   len(g.reps),
		JobsRouted: g.m.jobsRouted.Load(),
		JobsFailed: g.m.jobsFailed.Load(),
		JobsShed:   g.m.jobsShed.Load(),
		Hedges:     g.m.hedges.Load(),
		HedgeWins:  g.m.hedgeWins.Load(),
		Build:      service.ReadBuild(),
	}
	g.mu.Lock()
	m.TrackedJobs = len(g.tracked)
	g.mu.Unlock()
	for _, rep := range g.reps {
		rep.mu.Lock()
		state, reason := rep.state, rep.reason
		rep.mu.Unlock()
		if state == stateHealthy {
			m.HealthyReplicas++
		}
		rm := g.m.rep(rep.name)
		m.PerReplica = append(m.PerReplica, ReplicaMetrics{
			Name:            rep.name,
			State:           state.String(),
			Reason:          reason,
			Up:              state != stateDown,
			Requests:        rm.requests.Load(),
			Failures:        rm.failures.Load(),
			Retries:         rm.retries.Load(),
			Ejections:       rm.ejections.Load(),
			Reinstatements:  rm.reinstatements.Load(),
			Replays:         rm.replays.Load(),
			UpstreamLatency: rm.latency.snapshot(),
		})
	}
	return m
}

func gwF64(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
func gwI64(v int64) string   { return strconv.FormatInt(v, 10) }

// gwEscape escapes a label value per the exposition format.
func gwEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WritePrometheus renders a gateway Metrics snapshot in the Prometheus
// text exposition format (version 0.0.4), under the mincutgw_ prefix.
// Per-replica counters carry a replica label; the upstream latency
// histogram renders the conventional cumulative le-labeled form per
// replica. The output passes cmd/metricslint, and CI holds it to that.
func WritePrometheus(w io.Writer, m Metrics) error {
	var b strings.Builder
	scalar := func(name, typ, help, val string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", name, help, name, typ, name, val)
	}
	scalar("mincutgw_uptime_seconds", "gauge", "Seconds since the gateway started.", gwF64(m.UptimeSec))
	scalar("mincutgw_replicas", "gauge", "Configured replica count (the ring size).", gwI64(int64(m.Replicas)))
	scalar("mincutgw_healthy_replicas", "gauge", "Replicas currently accepting new routes.", gwI64(int64(m.HealthyReplicas)))
	scalar("mincutgw_tracked_jobs", "gauge", "In-flight jobs the gateway can replay off a lost replica.", gwI64(int64(m.TrackedJobs)))
	scalar("mincutgw_jobs_routed_total", "counter", "Submissions accepted by some replica.", gwI64(m.JobsRouted))
	scalar("mincutgw_jobs_failed_total", "counter", "Submissions that failed at every candidate replica (HTTP 502).", gwI64(m.JobsFailed))
	scalar("mincutgw_jobs_shed_total", "counter", "Submissions turned away with no replica accepting work (HTTP 503).", gwI64(m.JobsShed))
	scalar("mincutgw_hedges_total", "counter", "Hedge requests launched for slow result fetches.", gwI64(m.Hedges))
	scalar("mincutgw_hedge_wins_total", "counter", "Hedge requests that returned first.", gwI64(m.HedgeWins))

	perRep := []struct {
		name, typ, help string
		val             func(r ReplicaMetrics) string
	}{
		{"mincutgw_replica_up", "gauge", "1 while the replica is not ejected (healthy, saturated, or draining).",
			func(r ReplicaMetrics) string {
				if r.Up {
					return "1"
				}
				return "0"
			}},
		{"mincutgw_requests_total", "counter", "Upstream attempts forwarded to the replica.",
			func(r ReplicaMetrics) string { return gwI64(r.Requests) }},
		{"mincutgw_failures_total", "counter", "Upstream attempts that ended in a transport error or 5xx.",
			func(r ReplicaMetrics) string { return gwI64(r.Failures) }},
		{"mincutgw_retries_total", "counter", "Submit attempts re-routed to the replica after another failed.",
			func(r ReplicaMetrics) string { return gwI64(r.Retries) }},
		{"mincutgw_ejections_total", "counter", "Health-prober ejections of the replica.",
			func(r ReplicaMetrics) string { return gwI64(r.Ejections) }},
		{"mincutgw_reinstatements_total", "counter", "Recoveries of the replica out of the ejected state.",
			func(r ReplicaMetrics) string { return gwI64(r.Reinstatements) }},
		{"mincutgw_replays_total", "counter", "Tracked jobs replayed off the replica while draining or down.",
			func(r ReplicaMetrics) string { return gwI64(r.Replays) }},
	}
	for _, fam := range perRep {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", fam.name, fam.help, fam.name, fam.typ)
		for _, r := range m.PerReplica {
			fmt.Fprintf(&b, "%s{replica=%q} %s\n", fam.name, gwEscape(r.Name), fam.val(r))
		}
	}

	const hist = "mincutgw_upstream_latency_seconds"
	fmt.Fprintf(&b, "# HELP %s Latency of forwarded upstream attempts, per replica.\n# TYPE %s histogram\n", hist, hist)
	for _, r := range m.PerReplica {
		h := r.UpstreamLatency
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{replica=%q,le=%q} %s\n", hist, gwEscape(r.Name), gwF64(bound), gwI64(cum))
		}
		cum += h.Counts[len(h.Bounds)]
		fmt.Fprintf(&b, "%s_bucket{replica=%q,le=\"+Inf\"} %s\n", hist, gwEscape(r.Name), gwI64(cum))
		fmt.Fprintf(&b, "%s_sum{replica=%q} %s\n", hist, gwEscape(r.Name), gwF64(h.SumSeconds))
		fmt.Fprintf(&b, "%s_count{replica=%q} %s\n", hist, gwEscape(r.Name), gwI64(h.Count))
	}

	const bi = "mincutgw_build_info"
	fmt.Fprintf(&b, "# HELP %s Build identity of the running gateway (constant 1).\n# TYPE %s gauge\n", bi, bi)
	fmt.Fprintf(&b, "%s{version=%q,commit=%q,goversion=%q} 1\n",
		bi, gwEscape(m.Build.Version), gwEscape(m.Build.Commit), gwEscape(m.Build.GoVersion))

	_, err := io.WriteString(w, b.String())
	return err
}
