package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"distmincut/internal/service"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newReplicaServer boots one in-process mincutd replica.
func newReplicaServer(t *testing.T, name string, opts service.Options) (*service.Service, *httptest.Server) {
	t.Helper()
	if opts.PoolSize == 0 {
		opts.PoolSize = 2
	}
	opts.Replica = name
	if opts.Logger == nil {
		opts.Logger = quietLogger()
	}
	svc := service.New(opts)
	ts := httptest.NewServer(service.NewAPI(svc).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	return svc, ts
}

// newTestGateway builds a gateway plus its HTTP front. The default
// options disable the background prober (negative interval) so tests
// drive the health state machine deterministically with CheckNow.
func newTestGateway(t *testing.T, opts Options) (*Gateway, *httptest.Server) {
	t.Helper()
	if opts.HealthInterval == 0 {
		opts.HealthInterval = -1
	}
	if opts.Logger == nil {
		opts.Logger = quietLogger()
	}
	g, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		ts.Close()
		g.Close()
	})
	return g, ts
}

func specBody(seed int) string {
	return fmt.Sprintf(`{"graph":{"family":"planted","n1":16,"n2":16,"k":2,"in_p":0.5,"seed":%d},"tier":"exact"}`, seed)
}

func specKey(t *testing.T, body string) string {
	t.Helper()
	var req service.JobRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	_, key, err := service.CanonicalRequest(req, service.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// seedOwnedBy scans seeds until one's canonical key routes to replica
// idx on g's ring.
func seedOwnedBy(t *testing.T, g *Gateway, idx int) int {
	t.Helper()
	for seed := 1; seed < 10000; seed++ {
		if g.ring.owner(specKey(t, specBody(seed))) == idx {
			return seed
		}
	}
	t.Fatal("no seed found routing to replica", idx)
	return 0
}

// gwView is the loose job-view shape the tests read back through the
// gateway.
type gwView struct {
	JobID   string          `json:"job_id"`
	Key     string          `json:"key"`
	State   string          `json:"state"`
	Replica string          `json:"replica"`
	Error   string          `json:"error"`
	Result  json.RawMessage `json:"result"`
}

func gwSubmit(t *testing.T, url, body string) (int, gwView) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v gwView
	data, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(data, &v)
	return resp.StatusCode, v
}

// gwPollDone polls a job through the gateway until done, retrying
// transport errors and 502s (a replica mid-failover answers that way
// until the prober replays its jobs).
func gwPollDone(t *testing.T, url, id string, timeout time.Duration) gwView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var v gwView
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err == nil {
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			_ = json.Unmarshal(data, &v)
			switch {
			case resp.StatusCode == http.StatusOK && v.State == string(service.StateDone):
				return v
			case resp.StatusCode == http.StatusOK &&
				(v.State == string(service.StateFailed) || v.State == string(service.StateCanceled)):
				t.Fatalf("job %s reached %s: %s", id, v.State, v.Error)
			case resp.StatusCode == http.StatusNotFound:
				t.Fatalf("job %s vanished", id)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not done within %v (last state %q, err %v)", id, timeout, v.State, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func gwFetchResult(t *testing.T, url, key string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url + "/v1/results/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func threeReplicas(t *testing.T, opts service.Options) ([]*service.Service, []*httptest.Server, []Replica) {
	t.Helper()
	var svcs []*service.Service
	var tss []*httptest.Server
	var reps []Replica
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("r%d", i)
		svc, ts := newReplicaServer(t, name, opts)
		svcs = append(svcs, svc)
		tss = append(tss, ts)
		reps = append(reps, Replica{Name: name, BaseURL: ts.URL})
	}
	return svcs, tss, reps
}

func TestGatewayStickyRoutingAndCoalescing(t *testing.T) {
	_, _, reps := threeReplicas(t, service.Options{})
	_, gws := newTestGateway(t, Options{Replicas: reps})

	body := specBody(42)
	status, first := gwSubmit(t, gws.URL, body)
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("submit: status %d", status)
	}
	if first.JobID == "" || !strings.Contains(first.JobID, ".") {
		t.Fatalf("job ID %q not gateway-namespaced", first.JobID)
	}
	prefix := first.JobID[:strings.LastIndex(first.JobID, ".")]
	if first.Replica != prefix {
		t.Errorf("view replica %q != routed replica %q", first.Replica, prefix)
	}
	done := gwPollDone(t, gws.URL, first.JobID, 30*time.Second)
	if len(done.Result) == 0 {
		t.Fatal("done view has no result")
	}

	// The same spec resubmitted must land on the same replica and come
	// straight back from its cache.
	status2, second := gwSubmit(t, gws.URL, body)
	if status2 != http.StatusOK {
		t.Fatalf("resubmit: status %d, want 200 (cache hit)", status2)
	}
	if got := second.JobID[:strings.LastIndex(second.JobID, ".")]; got != prefix {
		t.Errorf("resubmission routed to %q, want sticky %q", got, prefix)
	}

	// The result is served through the gateway byte-identically to the
	// replica's canonical bytes.
	rc, viaGW := gwFetchResult(t, gws.URL, first.Key)
	if rc != http.StatusOK {
		t.Fatalf("result fetch: status %d", rc)
	}
	if !bytes.Equal(viaGW, []byte(done.Result)) {
		t.Error("result via gateway differs from job view result")
	}
}

func TestGatewayBadSpecRejectedWithoutUpstream(t *testing.T) {
	_, _, reps := threeReplicas(t, service.Options{})
	g, gws := newTestGateway(t, Options{Replicas: reps})

	status, _ := gwSubmit(t, gws.URL, `{"graph":{"family":"planted","n1":16,"n2":16,"k":2,"in_p":0.5,"seed":1},"tier":"nope"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("bad tier: status %d, want 400", status)
	}
	for _, rm := range g.Metrics().PerReplica {
		if rm.Requests != 0 {
			t.Errorf("replica %s saw %d requests for a spec the gateway should reject itself", rm.Name, rm.Requests)
		}
	}
}

func TestGatewayFailoverOnDeadReplica(t *testing.T) {
	_, tss, reps := threeReplicas(t, service.Options{})
	g, gws := newTestGateway(t, Options{
		Replicas:       reps,
		AttemptTimeout: 5 * time.Second,
	})

	// Kill a replica without telling the prober (it never runs in this
	// test): the gateway discovers the loss on the submit path.
	const dead = 1
	seed := seedOwnedBy(t, g, dead)
	tss[dead].Close()

	status, view := gwSubmit(t, gws.URL, specBody(seed))
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("submit owned by dead replica: status %d", status)
	}
	if strings.HasPrefix(view.JobID, "r1.") {
		t.Fatalf("job %q routed to the dead replica", view.JobID)
	}
	gwPollDone(t, gws.URL, view.JobID, 30*time.Second)

	m := g.Metrics()
	if m.JobsFailed != 0 {
		t.Errorf("jobs_failed = %d, want 0 (failover should absorb the loss)", m.JobsFailed)
	}
	var retries, failures int64
	for _, rm := range m.PerReplica {
		retries += rm.Retries
		failures += rm.Failures
	}
	if failures == 0 {
		t.Error("expected at least one recorded upstream failure")
	}
	if retries == 0 {
		t.Error("expected at least one recorded retry")
	}
}

func TestGatewayBlackholeFailsOverWithinBudget(t *testing.T) {
	// Replica 0 is a black hole: it accepts connections and never
	// answers. The per-attempt timeout must cut it off and fail over.
	hole := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server notices the client abandoning
		// the request and cancels the context.
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	t.Cleanup(hole.Close)
	_, ts := newReplicaServer(t, "good", service.Options{})
	g, gws := newTestGateway(t, Options{
		Replicas:       []Replica{{Name: "hole", BaseURL: hole.URL}, {Name: "good", BaseURL: ts.URL}},
		AttemptTimeout: 100 * time.Millisecond,
		Budget:         5 * time.Second,
	})

	seed := seedOwnedBy(t, g, 0) // owned by the black hole
	start := time.Now()
	status, view := gwSubmit(t, gws.URL, specBody(seed))
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("submit: status %d", status)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("failover took %v; the attempt timeout should bound it near 100ms", elapsed)
	}
	if !strings.HasPrefix(view.JobID, "good.") {
		t.Fatalf("job %q not routed to the live replica", view.JobID)
	}
	gwPollDone(t, gws.URL, view.JobID, 30*time.Second)
}

func TestGatewayEjectAndReinstate(t *testing.T) {
	// One replica on a hand-rolled listener so it can die and come back
	// on the same address.
	svc := service.New(service.Options{PoolSize: 1, Replica: "r0", Logger: quietLogger()})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	handler := service.NewAPI(svc).Handler()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := &http.Server{Handler: handler}
	go func() { _ = srv.Serve(ln) }()

	g, gws := newTestGateway(t, Options{
		Replicas:      []Replica{{Name: "r0", BaseURL: "http://" + addr}},
		EjectAfter:    2,
		ReinstateBase: time.Millisecond,
		HealthTimeout: time.Second,
	})

	g.CheckNow()
	if m := g.Metrics(); m.HealthyReplicas != 1 {
		t.Fatalf("live replica probed as unhealthy: %+v", m.PerReplica)
	}

	// Kill it: two consecutive probe failures must eject.
	_ = srv.Close()
	g.CheckNow()
	g.CheckNow()
	m := g.Metrics()
	if m.HealthyReplicas != 0 || m.PerReplica[0].State != "down" {
		t.Fatalf("dead replica not ejected: %+v", m.PerReplica[0])
	}
	if m.PerReplica[0].Ejections != 1 {
		t.Errorf("ejections = %d, want 1", m.PerReplica[0].Ejections)
	}
	if status, _ := gwSubmit(t, gws.URL, specBody(7)); status != http.StatusServiceUnavailable {
		t.Errorf("submit with every replica down: status %d, want 503", status)
	}

	// Resurrect on the same address; after the backoff the next sweep
	// reinstates it.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := &http.Server{Handler: handler}
	go func() { _ = srv2.Serve(ln2) }()
	t.Cleanup(func() { _ = srv2.Close() })

	deadline := time.Now().Add(5 * time.Second)
	for g.Metrics().HealthyReplicas == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replica never reinstated")
		}
		time.Sleep(2 * time.Millisecond)
		g.CheckNow()
	}
	m = g.Metrics()
	if m.PerReplica[0].Reinstatements != 1 {
		t.Errorf("reinstatements = %d, want 1", m.PerReplica[0].Reinstatements)
	}
	status, view := gwSubmit(t, gws.URL, specBody(7))
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("submit after reinstatement: status %d", status)
	}
	gwPollDone(t, gws.URL, view.JobID, 30*time.Second)
}

func TestGatewayHedgedResultFetch(t *testing.T) {
	// Two replicas, both holding the result; the key's owner is slowed
	// on its results endpoint, so the hedge must win.
	svcA, tsA := newReplicaServer(t, "a", service.Options{})
	svcB, tsB := newReplicaServer(t, "b", service.Options{})

	const resultDelay = 600 * time.Millisecond
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/results/") {
			time.Sleep(resultDelay)
		}
		// Re-proxy to the real replica by rewriting the host.
		req, _ := http.NewRequestWithContext(r.Context(), r.Method, tsA.URL+r.URL.Path, r.Body)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	t.Cleanup(slow.Close)

	g, gws := newTestGateway(t, Options{
		Replicas:   []Replica{{Name: "a", BaseURL: slow.URL}, {Name: "b", BaseURL: tsB.URL}},
		HedgeAfter: 25 * time.Millisecond,
	})

	seed := seedOwnedBy(t, g, 0) // owner is the slowed replica
	body := specBody(seed)
	key := specKey(t, body)

	// Compute the result on both replicas directly so either can serve
	// the fetch.
	var want []byte
	for _, svc := range []*service.Service{svcA, svcB} {
		var req service.JobRequest
		_ = json.Unmarshal([]byte(body), &req)
		view, err := svc.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			v, ok := svc.Job(view.ID)
			if !ok {
				t.Fatal("job vanished")
			}
			if v.State == service.StateDone {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job stuck in %s", v.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
		data, ok := svc.ResultByKey(key)
		if !ok {
			t.Fatal("no result bytes on replica")
		}
		want = data
	}

	start := time.Now()
	rc, got := gwFetchResult(t, gws.URL, key)
	elapsed := time.Since(start)
	if rc != http.StatusOK {
		t.Fatalf("hedged fetch: status %d", rc)
	}
	if !bytes.Equal(got, want) {
		t.Error("hedged fetch returned different bytes")
	}
	if elapsed >= resultDelay {
		t.Errorf("fetch took %v; the hedge should answer well before the %v primary", elapsed, resultDelay)
	}
	m := g.Metrics()
	if m.Hedges != 1 || m.HedgeWins != 1 {
		t.Errorf("hedges = %d, hedge_wins = %d, want 1 and 1", m.Hedges, m.HedgeWins)
	}
}

func TestGatewayKillReplicaUnderLoad(t *testing.T) {
	// The PR's core invariant: kill a replica mid-run under live load
	// and every job still completes through the gateway, each result
	// byte-identical to a fresh single-instance computation.
	_, tss, reps := threeReplicas(t, service.Options{})
	g, gws := newTestGateway(t, Options{
		Replicas:       reps,
		HealthInterval: 20 * time.Millisecond, // real prober: ejection must happen on its own
		EjectAfter:     2,
		ReinstateBase:  time.Hour, // the killed replica stays dead
		AttemptTimeout: 2 * time.Second,
		Budget:         10 * time.Second,
	})

	const jobs = 12
	ids := make([]string, jobs)
	keys := make([]string, jobs)
	bodies := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		bodies[i] = specBody(1000 + i)
		status, view := gwSubmit(t, gws.URL, bodies[i])
		if status != http.StatusAccepted && status != http.StatusOK {
			t.Fatalf("submit %d: status %d", i, status)
		}
		ids[i], keys[i] = view.JobID, view.Key
	}

	// SIGKILL equivalent: the server drops every connection and stops
	// answering. Tracked jobs it held get replayed once the prober
	// ejects it.
	tss[1].CloseClientConnections()
	tss[1].Close()

	for i := 0; i < jobs; i++ {
		gwPollDone(t, gws.URL, ids[i], 60*time.Second)
	}

	// Reference run: a fresh single instance computes every spec.
	ref := service.New(service.Options{PoolSize: 2, Logger: quietLogger()})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = ref.Shutdown(ctx)
	})
	for i := 0; i < jobs; i++ {
		var req service.JobRequest
		_ = json.Unmarshal([]byte(bodies[i]), &req)
		view, err := ref.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			v, ok := ref.Job(view.ID)
			if !ok {
				t.Fatal("reference job vanished")
			}
			if v.State == service.StateDone {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("reference job stuck in %s", v.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
		want, ok := ref.ResultByKey(keys[i])
		if !ok {
			t.Fatalf("reference run has no result for %s", keys[i])
		}
		rc, got := gwFetchResult(t, gws.URL, keys[i])
		if rc != http.StatusOK {
			t.Fatalf("result %d via gateway: status %d", i, rc)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("result %d differs from the single-instance bytes", i)
		}
	}

	m := g.Metrics()
	if m.JobsFailed != 0 {
		t.Errorf("jobs_failed = %d, want 0", m.JobsFailed)
	}
	var ejections int64
	for _, rm := range m.PerReplica {
		ejections += rm.Ejections
	}
	if ejections == 0 {
		t.Error("the killed replica was never ejected")
	}
}

func TestGatewayHealthAndMetricsEndpoints(t *testing.T) {
	_, _, reps := threeReplicas(t, service.Options{})
	g, gws := newTestGateway(t, Options{Replicas: reps})
	g.CheckNow()

	resp, err := http.Get(gws.URL + "/healthz?check=ready")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Ready     bool `json:"ready"`
		Healthy   int  `json:"healthy"`
		Upstreams []struct {
			Name  string `json:"name"`
			State string `json:"state"`
		} `json:"upstreams"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !health.Ready || health.Healthy != 3 {
		t.Fatalf("healthz = %d %+v, want 200 with 3 healthy", resp.StatusCode, health)
	}

	resp, err = http.Get(gws.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"# TYPE mincutgw_jobs_failed_total counter",
		"# TYPE mincutgw_upstream_latency_seconds histogram",
		`mincutgw_replica_up{replica="r0"} 1`,
		`mincutgw_upstream_latency_seconds_bucket{replica="r2",le="+Inf"}`,
		"mincutgw_build_info{",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}

	resp, err = http.Get(gws.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil || m.Replicas != 3 || len(m.PerReplica) != 3 {
		t.Fatalf("JSON metrics decode: %v, %+v", err, m)
	}
}
