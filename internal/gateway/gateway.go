// Package gateway is mincutd's scale-out front tier: an HTTP proxy
// that routes each submission by its canonical spec hash — the same
// content address the replicas cache results under — to a
// consistent-hash ring of mincutd replicas. Sticky spec routing means
// repeat submissions of one spec land on one replica and coalesce or
// cache-hit there, exactly as on a single instance.
//
// The gateway is safe to retry through because the backend is
// deterministic and content-addressed: any replica computes
// byte-identical canonical result bytes for a given spec, so
// re-routing a failed submission, hedging a slow result fetch, or
// replaying a queued job off a dying replica can never surface a
// different answer. Fault handling is built on that property:
//
//   - Active health checks against /healthz?check=ready classify each
//     replica healthy, saturated (live, queue full), draining (live,
//     shutting down), or down (ejected after consecutive transport
//     failures, probed back in on exponential backoff).
//   - Submissions run under a wall-clock budget with bounded retries:
//     a connection failure or 5xx re-routes to the next replica on the
//     ring.
//   - Result fetches optionally hedge: when the owner is slow, a
//     second fetch races it on the next replica and the first 200
//     wins.
//   - Rolling restarts drain cleanly: when a replica turns draining
//     the gateway stops routing new work to it, lets its running jobs
//     finish, and replays its queued-but-unstarted jobs elsewhere;
//     when a replica is ejected outright, every non-terminal job it
//     held is replayed.
//
// Job IDs crossing the gateway are namespaced <replica>.<localID>
// (e.g. "r0.j12"), so polls route statelessly even when the gateway's
// in-memory job tracking has evicted an entry.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"distmincut/internal/chaos"
	"distmincut/internal/service"
)

// Replica names one mincutd instance behind the gateway.
type Replica struct {
	// Name is the replica's gateway-side identity: the prefix of every
	// job ID the gateway hands out for jobs it routed there. Must be
	// unique, non-empty, and dot-free.
	Name string
	// BaseURL is the replica's service root, e.g. "http://127.0.0.1:8371".
	BaseURL string
}

// Options configures a Gateway. The zero value of every field but
// Replicas is usable; defaults are applied by New.
type Options struct {
	// Replicas is the backend set, in ring order. Required.
	Replicas []Replica
	// VirtualNodes is the ring points per replica (default 64).
	VirtualNodes int
	// HealthInterval is the background health-probe period (default
	// 500ms). Negative disables the background prober entirely; tests
	// drive the state machine synchronously with CheckNow.
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe (default 1s).
	HealthTimeout time.Duration
	// EjectAfter is the consecutive probe transport failures that eject
	// a replica (default 2).
	EjectAfter int
	// ReinstateBase is the first re-probe delay after an ejection
	// (default 1s); it doubles per failed re-probe up to ReinstateMax
	// (default 30s).
	ReinstateBase time.Duration
	// ReinstateMax caps the ejection re-probe backoff (default 30s).
	ReinstateMax time.Duration
	// Retries caps upstream submit attempts per client request
	// (default 3: the primary plus two failovers).
	Retries int
	// AttemptTimeout bounds one upstream attempt (default 15s).
	AttemptTimeout time.Duration
	// Budget bounds one client request wall-clock across all its
	// attempts (default 30s).
	Budget time.Duration
	// HedgeAfter launches a second result fetch on the next replica
	// when the primary has not answered within it (default 0 = off).
	HedgeAfter time.Duration
	// Limits are the graph limits used to canonicalize submissions for
	// routing; they should match the replicas' -max-nodes/-max-edges so
	// the gateway derives the same cache key the replica will.
	Limits service.Limits
	// MaxBody bounds the submit request body (service.DefaultMaxBody
	// if 0).
	MaxBody int64
	// TrackedJobs caps the in-flight jobs retained for replay, evicted
	// FIFO (default 8192).
	TrackedJobs int
	// Logger receives gateway logs (default slog.Default()).
	Logger *slog.Logger
}

// withDefaults fills zero-valued options.
func (o Options) withDefaults() Options {
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = 64
	}
	if o.HealthInterval == 0 {
		o.HealthInterval = 500 * time.Millisecond
	}
	if o.HealthTimeout <= 0 {
		o.HealthTimeout = time.Second
	}
	if o.EjectAfter <= 0 {
		o.EjectAfter = 2
	}
	if o.ReinstateBase <= 0 {
		o.ReinstateBase = time.Second
	}
	if o.ReinstateMax <= 0 {
		o.ReinstateMax = 30 * time.Second
	}
	if o.Retries <= 0 {
		o.Retries = 3
	}
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 15 * time.Second
	}
	if o.Budget <= 0 {
		o.Budget = 30 * time.Second
	}
	if o.TrackedJobs <= 0 {
		o.TrackedJobs = 8192
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// trackedJob is one in-flight job the gateway can replay: the original
// request bytes plus where the job currently lives. Mutable fields
// (replica, localID, lastState) are guarded by Gateway.mu.
type trackedJob struct {
	id        string // gateway-visible ID, <replica>.<localID> at submit
	key       string // canonical spec content address
	body      []byte // original submit body, replayed verbatim
	replica   string // replica currently holding the job
	localID   string // job ID on that replica
	lastState string // last state seen by a poll or replay
}

// Gateway routes mincutd's HTTP API across a replica ring. Create one
// with New, mount Handler, and Close it on shutdown.
type Gateway struct {
	opts   Options
	ring   *ring
	reps   []*replica
	client *http.Client
	log    *slog.Logger
	m      *metrics

	mu      sync.Mutex
	tracked map[string]*trackedJob
	order   []string // tracked IDs in admission order, for FIFO eviction

	proberStop chan struct{}
	proberDone chan struct{}
}

// New builds a Gateway over opts.Replicas and, unless
// opts.HealthInterval is negative, starts its background health
// prober. Replicas start healthy and are reclassified by the first
// probe sweep.
func New(opts Options) (*Gateway, error) {
	opts = opts.withDefaults()
	if len(opts.Replicas) == 0 {
		return nil, errors.New("gateway: no replicas configured")
	}
	names := make([]string, 0, len(opts.Replicas))
	seen := make(map[string]bool, len(opts.Replicas))
	reps := make([]*replica, 0, len(opts.Replicas))
	for _, r := range opts.Replicas {
		if r.Name == "" || strings.Contains(r.Name, ".") {
			return nil, fmt.Errorf("gateway: bad replica name %q (must be non-empty and dot-free)", r.Name)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("gateway: duplicate replica name %q", r.Name)
		}
		seen[r.Name] = true
		if r.BaseURL == "" {
			return nil, fmt.Errorf("gateway: replica %q has no base URL", r.Name)
		}
		names = append(names, r.Name)
		reps = append(reps, &replica{name: r.Name, base: strings.TrimRight(r.BaseURL, "/")})
	}
	g := &Gateway{
		opts:    opts,
		ring:    newRing(len(reps), opts.VirtualNodes),
		reps:    reps,
		client:  &http.Client{},
		log:     opts.Logger,
		m:       newMetrics(names),
		tracked: make(map[string]*trackedJob),
	}
	if opts.HealthInterval > 0 {
		g.proberStop = make(chan struct{})
		g.proberDone = make(chan struct{})
		go g.prober()
	}
	return g, nil
}

// Close stops the background health prober and releases idle upstream
// connections. It does not touch the replicas.
func (g *Gateway) Close() {
	if g.proberStop != nil {
		close(g.proberStop)
		<-g.proberDone
		g.proberStop = nil
	}
	g.client.CloseIdleConnections()
}

// byName returns the named replica, or nil.
func (g *Gateway) byName(name string) *replica {
	for _, rep := range g.reps {
		if rep.name == name {
			return rep
		}
	}
	return nil
}

// submitCandidates returns the replicas accepting new work, in ring
// order from key's owner.
func (g *Gateway) submitCandidates(key string) []*replica {
	return g.candidates(key, func(r *replica) bool { return r.routable() })
}

// readCandidates returns the replicas that can serve reads (everything
// not ejected), in ring order from key's owner. Saturated and draining
// replicas still answer polls and result fetches.
func (g *Gateway) readCandidates(key string) []*replica {
	return g.candidates(key, func(r *replica) bool { return r.alive() })
}

func (g *Gateway) candidates(key string, ok func(*replica) bool) []*replica {
	seq := g.ring.sequence(key)
	out := make([]*replica, 0, len(seq))
	for _, i := range seq {
		if ok(g.reps[i]) {
			out = append(out, g.reps[i])
		}
	}
	return out
}

// Handler returns the gateway's route table — the same surface as one
// mincutd replica, plus gateway-level /healthz and /metrics.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", g.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", g.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", g.handleTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", g.handleCancel)
	mux.HandleFunc("GET /v1/results/{key}", g.handleResult)
	mux.HandleFunc("GET /healthz", g.handleHealth)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	return mux
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// passthrough relays an upstream response, copying the headers that
// carry client-facing semantics.
func passthrough(w http.ResponseWriter, status int, hdr http.Header, body []byte) {
	for _, k := range []string{"Content-Type", "Retry-After", "Cache-Control"} {
		if hdr != nil {
			if v := hdr.Get(k); v != "" {
				w.Header().Set(k, v)
			}
		}
	}
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// viewFields pulls the two job-view fields the gateway routes on.
func viewFields(body []byte) (id, state string) {
	var v struct {
		JobID string `json:"job_id"`
		State string `json:"state"`
	}
	_ = json.Unmarshal(body, &v)
	return v.JobID, v.State
}

// rewriteJobID replaces the top-level job_id of a job-view body with
// the gateway-namespaced ID. The body is decoded one level deep into
// raw messages, so every other field — the nested canonical result
// bytes above all — passes through byte-identical.
func rewriteJobID(body []byte, gwID string) []byte {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		return body
	}
	if _, ok := m["job_id"]; !ok {
		return body
	}
	q, err := json.Marshal(gwID)
	if err != nil {
		return body
	}
	m["job_id"] = q
	out, err := json.Marshal(m)
	if err != nil {
		return body
	}
	return out
}

// terminalState reports whether a job state is final.
func terminalState(s string) bool {
	switch service.State(s) {
	case service.StateDone, service.StateFailed, service.StateCanceled, service.StateDeadline:
		return true
	}
	return false
}

// forward performs one upstream attempt: per-attempt timeout under the
// caller's context, request/failure counters, and the latency
// histogram. The response body is fully read so the connection is
// reusable and the caller can rewrite it.
func (g *Gateway) forward(ctx context.Context, rep *replica, method, path string, body []byte) (int, []byte, http.Header, error) {
	chaos.Inject(chaos.SiteGatewayForward)
	actx, cancel := context.WithTimeout(ctx, g.opts.AttemptTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, rep.base+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rm := g.m.rep(rep.name)
	rm.requests.Add(1)
	start := time.Now()
	resp, err := g.client.Do(req)
	rm.latency.observe(time.Since(start))
	if err != nil {
		rm.failures.Add(1)
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		rm.failures.Add(1)
		return 0, nil, nil, err
	}
	if resp.StatusCode >= 500 {
		rm.failures.Add(1)
	}
	return resp.StatusCode, data, resp.Header, nil
}

func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	maxBody := g.opts.MaxBody
	if maxBody <= 0 {
		maxBody = service.DefaultMaxBody
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, apiError{Error: "request body exceeds limit"})
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request: " + err.Error()})
		return
	}
	var req service.JobRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request: " + err.Error()})
		return
	}
	// The canonical key is the routing key: the same hash the replica
	// caches the result under, so identical specs stick to one replica
	// and coalesce there. Invalid specs are rejected here without
	// spending an upstream round-trip.
	_, key, err := service.CanonicalRequest(req, g.opts.Limits)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), g.opts.Budget)
	defer cancel()

	cands := g.submitCandidates(key)
	if len(cands) == 0 {
		g.m.jobsShed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "gateway: no replica accepting submissions"})
		return
	}
	if len(cands) > g.opts.Retries {
		cands = cands[:g.opts.Retries]
	}
	sawOverload := false
	for i, rep := range cands {
		if i > 0 {
			g.m.rep(rep.name).retries.Add(1)
		}
		status, body, hdr, err := g.forward(ctx, rep, http.MethodPost, "/v1/jobs", raw)
		if err != nil {
			g.log.Warn("submit attempt failed", "replica", rep.name, "err", err)
			if ctx.Err() != nil {
				break // budget exhausted; don't start another attempt
			}
			continue
		}
		switch {
		case status == http.StatusOK || status == http.StatusAccepted:
			g.finishSubmit(w, rep, key, raw, status, body)
			return
		case status == http.StatusServiceUnavailable:
			// The replica is draining or its queue is full: overload,
			// not failure. Another replica may still take the job.
			sawOverload = true
			continue
		case status >= 500:
			g.log.Warn("submit attempt failed", "replica", rep.name, "status", status)
			continue
		default:
			// 4xx (bad spec, admission 429, body too large) is an
			// authoritative answer about the request itself; every
			// replica would agree, so relay it as-is.
			passthrough(w, status, hdr, body)
			return
		}
	}
	if sawOverload {
		g.m.jobsShed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "gateway: all replicas overloaded"})
		return
	}
	g.m.jobsFailed.Add(1)
	writeJSON(w, http.StatusBadGateway, apiError{Error: "gateway: no replica reachable"})
}

// finishSubmit namespaces the accepted job's ID, tracks it for replay
// if it is still in flight, and relays the replica's response.
func (g *Gateway) finishSubmit(w http.ResponseWriter, rep *replica, key string, reqBody []byte, status int, body []byte) {
	localID, state := viewFields(body)
	if localID == "" {
		passthrough(w, status, nil, body)
		return
	}
	gwID := rep.name + "." + localID
	if !terminalState(state) {
		g.track(&trackedJob{
			id: gwID, key: key, body: reqBody,
			replica: rep.name, localID: localID, lastState: state,
		})
	}
	g.m.jobsRouted.Add(1)
	passthrough(w, status, nil, rewriteJobID(body, gwID))
}

// track records an in-flight job for replay, evicting the oldest
// entries past the retention cap. Re-submissions of a spec coalesce on
// the replica into the same local ID, hence the same gateway ID; the
// first record wins.
func (g *Gateway) track(tj *trackedJob) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, exists := g.tracked[tj.id]; exists {
		return
	}
	g.tracked[tj.id] = tj
	g.order = append(g.order, tj.id)
	for len(g.order) > g.opts.TrackedJobs {
		old := g.order[0]
		g.order = g.order[1:]
		delete(g.tracked, old)
	}
}

// noteState folds a state observed by a poll into the tracked record,
// dropping the record once the job is terminal.
func (g *Gateway) noteState(gwID, state string) {
	if state == "" {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if tj, ok := g.tracked[gwID]; ok {
		tj.lastState = state
		if terminalState(state) {
			delete(g.tracked, gwID)
		}
	}
}

// untrack drops a job record (cancel path).
func (g *Gateway) untrack(gwID string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.tracked, gwID)
}

// resolve maps a gateway job ID to the replica currently holding it.
// The tracked map is authoritative (it follows replays); an untracked
// ID falls back to its <replica>.<localID> spelling, cut at the last
// dot because local IDs are dot-free.
func (g *Gateway) resolve(gwID string) (*replica, string) {
	g.mu.Lock()
	if tj, ok := g.tracked[gwID]; ok {
		name, localID := tj.replica, tj.localID
		g.mu.Unlock()
		return g.byName(name), localID
	}
	g.mu.Unlock()
	i := strings.LastIndex(gwID, ".")
	if i <= 0 || i == len(gwID)-1 {
		return nil, ""
	}
	return g.byName(gwID[:i]), gwID[i+1:]
}

func (g *Gateway) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ctx, cancel := context.WithTimeout(r.Context(), g.opts.Budget)
	defer cancel()
	for attempt := 0; ; attempt++ {
		rep, localID := g.resolve(id)
		if rep == nil {
			writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
			return
		}
		status, body, hdr, err := g.forward(ctx, rep, http.MethodGet, "/v1/jobs/"+localID, nil)
		if err != nil {
			writeJSON(w, http.StatusBadGateway, apiError{Error: "gateway: replica " + rep.name + " unavailable"})
			return
		}
		if status == http.StatusOK {
			_, state := viewFields(body)
			// A canceled view can be the replay path's own cleanup: a
			// poll that resolved the old binding just before a replay
			// rebound the job can land on the stale copy after its
			// cleanup DELETE. The rebind strictly precedes that DELETE,
			// so re-resolving now yields the new home — when it does,
			// re-poll there instead of surfacing the internal cancel.
			if state == string(service.StateCanceled) && attempt == 0 {
				if cur, curLocal := g.resolve(id); cur != rep || curLocal != localID {
					continue
				}
			}
			g.noteState(id, state)
			passthrough(w, status, hdr, rewriteJobID(body, id))
			return
		}
		passthrough(w, status, hdr, body)
		return
	}
}

func (g *Gateway) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rep, localID := g.resolve(id)
	if rep == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.opts.Budget)
	defer cancel()
	status, body, hdr, err := g.forward(ctx, rep, http.MethodDelete, "/v1/jobs/"+localID, nil)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, apiError{Error: "gateway: replica " + rep.name + " unavailable"})
		return
	}
	if status == http.StatusOK {
		g.untrack(id)
		passthrough(w, status, hdr, rewriteJobID(body, id))
		return
	}
	passthrough(w, status, hdr, body)
}

func (g *Gateway) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rep, localID := g.resolve(id)
	if rep == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.opts.Budget)
	defer cancel()
	status, body, hdr, err := g.forward(ctx, rep, http.MethodGet, "/v1/jobs/"+localID+"/trace", nil)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, apiError{Error: "gateway: replica " + rep.name + " unavailable"})
		return
	}
	passthrough(w, status, hdr, body)
}

// fetchRes is one result-fetch attempt's outcome.
type fetchRes struct {
	status int
	header http.Header
	body   []byte
	err    error
	hedged bool
}

func (g *Gateway) fetchResult(ctx context.Context, rep *replica, key string, hedged bool) fetchRes {
	status, body, hdr, err := g.forward(ctx, rep, http.MethodGet, "/v1/results/"+key, nil)
	return fetchRes{status: status, header: hdr, body: body, err: err, hedged: hedged}
}

// hedgedFetch races the primary fetch against a hedge launched on the
// backup after HedgeAfter. It returns the winning 200 if either
// produced one, the last definitive non-200 otherwise, and how many
// replicas it consumed from the candidate list.
func (g *Gateway) hedgedFetch(ctx context.Context, primary, backup *replica, key string) (winner, fallback *fetchRes, tried int) {
	ch := make(chan fetchRes, 2) // buffered: a losing fetch must not leak its goroutine
	go func() { ch <- g.fetchResult(ctx, primary, key, false) }()
	timer := time.NewTimer(g.opts.HedgeAfter)
	defer timer.Stop()
	launched := 1
	for got := 0; got < launched; {
		select {
		case <-timer.C:
			g.m.hedges.Add(1)
			go func() { ch <- g.fetchResult(ctx, backup, key, true) }()
			launched = 2
		case res := <-ch:
			got++
			if res.err == nil && res.status == http.StatusOK {
				if res.hedged {
					g.m.hedgeWins.Add(1)
				}
				r := res
				return &r, nil, launched
			}
			if res.err == nil && fallback == nil {
				r := res
				fallback = &r
			}
		}
	}
	return nil, fallback, launched
}

// handleResult serves a content-addressed result from any live replica
// holding it. Results are immutable and byte-identical across
// replicas, which is what makes hedging safe: whichever fetch answers
// first answers correctly.
func (g *Gateway) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	ctx, cancel := context.WithTimeout(r.Context(), g.opts.Budget)
	defer cancel()
	cands := g.readCandidates(key)
	if len(cands) == 0 {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "gateway: no replica reachable"})
		return
	}
	var fallback *fetchRes
	rest := cands
	if g.opts.HedgeAfter > 0 && len(cands) >= 2 {
		var winner *fetchRes
		var tried int
		winner, fallback, tried = g.hedgedFetch(ctx, cands[0], cands[1], key)
		if winner != nil {
			passthrough(w, winner.status, winner.header, winner.body)
			return
		}
		rest = cands[tried:]
	}
	for _, rep := range rest {
		res := g.fetchResult(ctx, rep, key, false)
		if res.err != nil {
			continue
		}
		if res.status == http.StatusOK {
			passthrough(w, res.status, res.header, res.body)
			return
		}
		fallback = &res
	}
	if fallback != nil {
		passthrough(w, fallback.status, fallback.header, fallback.body)
		return
	}
	writeJSON(w, http.StatusBadGateway, apiError{Error: "gateway: no replica reachable"})
}

// handleHealth reports the gateway's own liveness plus each replica's
// health state. Plain GET always answers 200 while the gateway serves;
// with ?check=ready it answers 503 when no replica is accepting new
// submissions.
func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	type upstream struct {
		Name   string `json:"name"`
		State  string `json:"state"`
		Reason string `json:"reason,omitempty"`
	}
	ups := make([]upstream, 0, len(g.reps))
	healthy := 0
	for _, rep := range g.reps {
		rep.mu.Lock()
		st, reason := rep.state, rep.reason
		rep.mu.Unlock()
		if st == stateHealthy {
			healthy++
		}
		ups = append(ups, upstream{Name: rep.name, State: st.String(), Reason: reason})
	}
	b := service.ReadBuild()
	body := map[string]any{
		"status":    "ok",
		"ready":     healthy > 0,
		"replicas":  len(g.reps),
		"healthy":   healthy,
		"upstreams": ups,
		"version":   b.Version,
		"commit":    b.Commit,
		"go":        b.GoVersion,
	}
	status := http.StatusOK
	if healthy == 0 && r.URL.Query().Get("check") == "ready" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := g.Metrics()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, m)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = WritePrometheus(w, m)
}

// jobsOn snapshots the tracked jobs currently living on one replica.
func (g *Gateway) jobsOn(name string) []*trackedJob {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []*trackedJob
	for _, tj := range g.tracked {
		if tj.replica == name {
			out = append(out, tj)
		}
	}
	return out
}

// replayDraining moves queued-but-unstarted jobs off a draining
// replica. Each tracked job is re-polled on the drainer: a running (or
// refining) job is left to finish there — the drain waits for it — but
// a queued job is resubmitted to the next healthy replica and canceled
// on the drainer so the drain completes sooner. Either way the client
// keeps polling the same gateway job ID.
func (g *Gateway) replayDraining(from *replica) {
	for _, tj := range g.jobsOn(from.name) {
		g.mu.Lock()
		localID := tj.localID
		g.mu.Unlock()
		ctx, cancel := context.WithTimeout(context.Background(), g.opts.AttemptTimeout)
		status, body, _, err := g.forward(ctx, from, http.MethodGet, "/v1/jobs/"+localID, nil)
		cancel()
		if err != nil || status != http.StatusOK {
			// Unreachable mid-drain: treat like a dead replica for this
			// job and replay it unconditionally.
			g.replay(tj, from, false)
			continue
		}
		_, state := viewFields(body)
		if state == string(service.StateQueued) {
			g.replay(tj, from, true)
		} else {
			g.noteState(tj.id, state)
		}
	}
}

// replayDown replays every non-terminal tracked job off an ejected
// replica. There is nothing to poll — the replica is unreachable — so
// jobs are resubmitted wholesale; determinism makes the duplicate
// computation harmless and the results byte-identical.
func (g *Gateway) replayDown(from *replica) {
	for _, tj := range g.jobsOn(from.name) {
		g.mu.Lock()
		terminal := terminalState(tj.lastState)
		g.mu.Unlock()
		if !terminal {
			g.replay(tj, from, false)
		}
	}
}

// replay resubmits one tracked job's original body to the first
// healthy replica past from, rebinding the gateway job ID to the new
// home. cancelOld additionally cancels the stale copy on from (drain
// politeness; an ejected replica is unreachable anyway).
func (g *Gateway) replay(tj *trackedJob, from *replica, cancelOld bool) {
	chaos.Inject(chaos.SiteGatewayReplay)
	g.mu.Lock()
	body, key, oldLocal := tj.body, tj.key, tj.localID
	g.mu.Unlock()
	for _, rep := range g.submitCandidates(key) {
		if rep == from {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), g.opts.AttemptTimeout)
		status, respBody, _, err := g.forward(ctx, rep, http.MethodPost, "/v1/jobs", body)
		cancel()
		if err != nil || (status != http.StatusOK && status != http.StatusAccepted) {
			continue
		}
		localID, state := viewFields(respBody)
		if localID == "" {
			continue
		}
		g.mu.Lock()
		tj.replica, tj.localID, tj.lastState = rep.name, localID, state
		if terminalState(state) {
			delete(g.tracked, tj.id)
		}
		g.mu.Unlock()
		g.m.rep(from.name).replays.Add(1)
		g.log.Info("job replayed", "job", tj.id, "from", from.name, "to", rep.name, "state", state)
		if cancelOld {
			ctx, cancel := context.WithTimeout(context.Background(), g.opts.AttemptTimeout)
			_, _, _, _ = g.forward(ctx, from, http.MethodDelete, "/v1/jobs/"+oldLocal, nil)
			cancel()
		}
		return
	}
	g.log.Warn("no healthy replica to replay job", "job", tj.id, "from", from.name)
}
