//go:build chaos

package gateway

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"distmincut/internal/chaos"
	"distmincut/internal/service"
)

// TestGatewayDrainReplaysQueuedJobs is the deterministic rolling-
// restart proof: replica A's single worker is pinned inside a chaos
// hook, jobs queue up behind it through the gateway, and when A begins
// draining the gateway must replay exactly the queued jobs to B — the
// pinned job keeps running on A — with zero client-visible loss.
func TestGatewayDrainReplaysQueuedJobs(t *testing.T) {
	defer chaos.Reset()
	release := make(chan struct{})
	var pinned atomic.Bool
	chaos.Arm(chaos.SiteWorkerExecute, func() {
		// Pin only the first execution (A's lone worker); everything
		// after — above all B's replayed runs — passes through.
		if pinned.CompareAndSwap(false, true) {
			<-release
		}
	})

	svcA, tsA := newReplicaServer(t, "a", service.Options{PoolSize: 1, QueueDepth: 64})
	_, tsB := newReplicaServer(t, "b", service.Options{PoolSize: 2})
	g, gws := newTestGateway(t, Options{
		Replicas: []Replica{{Name: "a", BaseURL: tsA.URL}, {Name: "b", BaseURL: tsB.URL}},
	})

	// Occupy A's worker with a job submitted around the gateway, so the
	// gateway's tracked set holds only the queued jobs that follow.
	var blockReq service.JobRequest
	_ = json.Unmarshal([]byte(specBody(99999)), &blockReq)
	if _, err := svcA.Submit(blockReq); err != nil {
		t.Fatal(err)
	}

	const queued = 4
	ids := make([]string, queued)
	for i := 0; i < queued; i++ {
		seed := seedOwnedBy(t, g, 0) + i*10000 // distinct specs, all owned by A
		for g.ring.owner(specKey(t, specBody(seed))) != 0 {
			seed++
		}
		status, view := gwSubmit(t, gws.URL, specBody(seed))
		if status != http.StatusAccepted {
			t.Fatalf("submit %d: status %d, want 202 (queued behind the pinned worker)", i, status)
		}
		ids[i] = view.JobID
	}

	// Rolling restart begins: A flips to draining, the next probe sweep
	// observes it and replays A's queued jobs onto B.
	svcA.BeginDrain()
	g.CheckNow()

	m := g.Metrics()
	var replays int64
	for _, rm := range m.PerReplica {
		if rm.Name == "a" {
			replays = rm.Replays
		}
	}
	if replays != queued {
		t.Errorf("replays off a = %d, want %d (every queued job, nothing else)", replays, queued)
	}

	// Unpin A's worker so its running job (and the drain) can finish.
	close(release)

	for _, id := range ids {
		view := gwPollDone(t, gws.URL, id, 30*time.Second)
		if view.Replica != "b" {
			t.Errorf("job %s finished on %q, want the replay target b", id, view.Replica)
		}
		if len(view.Result) == 0 {
			t.Errorf("job %s done without result bytes", id)
		}
	}
	if got := g.Metrics().JobsFailed; got != 0 {
		t.Errorf("jobs_failed = %d, want 0 across the drain", got)
	}
}

// TestGatewayPollNeverSurfacesReplayCancel pins the poll/replay race:
// a poll that resolves a job's old binding just before a replay
// rebinds it can reach the old replica after the replay's cleanup
// DELETE and read the canceled stale copy. The gateway must notice the
// binding moved and re-poll the new home instead of surfacing its own
// internal cancel to the client. The interleaving is forced exactly:
// the forward chaos site fires after the poll resolves the old binding
// and before the upstream request, and the hook performs the replay's
// rebind + cleanup at that moment.
func TestGatewayPollNeverSurfacesReplayCancel(t *testing.T) {
	defer chaos.Reset()
	release := make(chan struct{})
	defer close(release)
	var pinned atomic.Bool
	chaos.Arm(chaos.SiteWorkerExecute, func() {
		if pinned.CompareAndSwap(false, true) {
			<-release
		}
	})

	svcA, tsA := newReplicaServer(t, "a", service.Options{PoolSize: 1, QueueDepth: 64})
	_, tsB := newReplicaServer(t, "b", service.Options{PoolSize: 2})
	g, gws := newTestGateway(t, Options{
		Replicas: []Replica{{Name: "a", BaseURL: tsA.URL}, {Name: "b", BaseURL: tsB.URL}},
	})

	// Pin A's lone worker so the job submitted through the gateway
	// stays queued on A (replayable, cancelable).
	var blockReq service.JobRequest
	_ = json.Unmarshal([]byte(specBody(99999)), &blockReq)
	if _, err := svcA.Submit(blockReq); err != nil {
		t.Fatal(err)
	}

	seed := seedOwnedBy(t, g, 0)
	status, view := gwSubmit(t, gws.URL, specBody(seed))
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202 (queued behind the pinned worker)", status)
	}
	gwID := view.JobID
	oldLocal := strings.TrimPrefix(gwID, "a.")

	// The replay target: the same spec computed to completion on B.
	bView, err := http.Post(tsB.URL+"/v1/jobs", "application/json", strings.NewReader(specBody(seed)))
	if err != nil {
		t.Fatal(err)
	}
	var bv struct {
		JobID string `json:"job_id"`
	}
	if err := json.NewDecoder(bView.Body).Decode(&bv); err != nil {
		t.Fatal(err)
	}
	bView.Body.Close()
	gwPollDone(t, tsB.URL, bv.JobID, 30*time.Second)

	// Mid-poll, after the old binding is resolved: rebind to B and
	// cancel the stale copy on A — exactly what replay() does.
	var raced atomic.Bool
	chaos.Arm(chaos.SiteGatewayForward, func() {
		if !raced.CompareAndSwap(false, true) {
			return
		}
		g.mu.Lock()
		tj := g.tracked[gwID]
		tj.replica, tj.localID = "b", bv.JobID
		g.mu.Unlock()
		del, _ := http.NewRequest(http.MethodDelete, tsA.URL+"/v1/jobs/"+oldLocal, nil)
		resp, err := http.DefaultClient.Do(del)
		if err != nil {
			t.Errorf("cancel stale copy: %v", err)
			return
		}
		resp.Body.Close()
	})

	resp, err := http.Get(gws.URL + "/v1/jobs/" + gwID)
	if err != nil {
		t.Fatal(err)
	}
	var out service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("poll status %d, want 200", resp.StatusCode)
	}
	if out.State == service.StateCanceled {
		t.Fatalf("client saw the replay's internal cancel for job %s", gwID)
	}
	if out.State != service.StateDone {
		t.Fatalf("poll state %s, want done from the rebound replica", out.State)
	}
	if out.ID != gwID {
		t.Fatalf("poll returned job ID %q, want the stable gateway ID %q", out.ID, gwID)
	}
}

// TestGatewayForwardStallInjection stalls every upstream attempt at
// the gateway's forward fault site and asserts requests still complete
// — the stall costs latency, never correctness — and that the site
// actually fired.
func TestGatewayForwardStallInjection(t *testing.T) {
	defer chaos.Reset()
	chaos.Arm(chaos.SiteGatewayForward, func() { time.Sleep(20 * time.Millisecond) })

	_, ts := newReplicaServer(t, "r0", service.Options{})
	_, gws := newTestGateway(t, Options{
		Replicas: []Replica{{Name: "r0", BaseURL: ts.URL}},
	})

	status, view := gwSubmit(t, gws.URL, specBody(3))
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("submit under stall: status %d", status)
	}
	if !strings.HasPrefix(view.JobID, "r0.") {
		t.Fatalf("unexpected job ID %q", view.JobID)
	}
	gwPollDone(t, gws.URL, view.JobID, 30*time.Second)
	if chaos.Fired(chaos.SiteGatewayForward) == 0 {
		t.Error("gateway.forward site never fired")
	}
}

// TestGatewayProbeStallInjection stalls health probes and asserts the
// sweep still classifies a live replica correctly afterwards.
func TestGatewayProbeStallInjection(t *testing.T) {
	defer chaos.Reset()
	chaos.Arm(chaos.SiteGatewayProbe, func() { time.Sleep(10 * time.Millisecond) })

	_, ts := newReplicaServer(t, "r0", service.Options{})
	g, _ := newTestGateway(t, Options{
		Replicas: []Replica{{Name: "r0", BaseURL: ts.URL}},
	})
	g.CheckNow()
	if m := g.Metrics(); m.HealthyReplicas != 1 {
		t.Fatalf("stalled probe misclassified a live replica: %+v", m.PerReplica)
	}
	if chaos.Fired(chaos.SiteGatewayProbe) == 0 {
		t.Error("gateway.probe site never fired")
	}
}

// TestGatewayDrainSiteStillFires pins the existing service.drain site:
// the staged BeginDrain/Shutdown split must keep firing it exactly as
// the one-shot Shutdown did.
func TestGatewayDrainSiteStillFires(t *testing.T) {
	defer chaos.Reset()
	chaos.Arm(chaos.SiteDrain, func() {})

	svc := service.New(service.Options{PoolSize: 1, Logger: quietLogger()})
	svc.BeginDrain()
	if chaos.Fired(chaos.SiteDrain) != 1 {
		t.Fatalf("service.drain fired %d times after BeginDrain, want 1", chaos.Fired(chaos.SiteDrain))
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if chaos.Fired(chaos.SiteDrain) != 1 {
		t.Fatalf("service.drain fired %d times after Shutdown, want still 1 (idempotent drain)", chaos.Fired(chaos.SiteDrain))
	}
}
