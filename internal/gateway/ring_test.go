package gateway

import (
	"fmt"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	a := newRing(5, 64)
	b := newRing(5, 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		sa, sb := a.sequence(key), b.sequence(key)
		if len(sa) != len(sb) {
			t.Fatalf("sequence lengths differ for %q: %d vs %d", key, len(sa), len(sb))
		}
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("rings disagree for %q at %d: %v vs %v", key, j, sa, sb)
			}
		}
	}
}

func TestRingSequenceIsPermutation(t *testing.T) {
	r := newRing(7, 32)
	for i := 0; i < 50; i++ {
		seq := r.sequence(fmt.Sprintf("k%d", i))
		if len(seq) != 7 {
			t.Fatalf("sequence has %d entries, want 7: %v", len(seq), seq)
		}
		seen := make(map[int]bool)
		for _, idx := range seq {
			if idx < 0 || idx >= 7 {
				t.Fatalf("out-of-range replica index %d", idx)
			}
			if seen[idx] {
				t.Fatalf("replica %d repeated in %v", idx, seq)
			}
			seen[idx] = true
		}
	}
}

func TestRingBalance(t *testing.T) {
	const replicas, keys = 5, 10000
	r := newRing(replicas, 64)
	counts := make([]int, replicas)
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("spec-%d", i))]++
	}
	// With 64 vnodes each replica should land near keys/replicas; the
	// assertion is loose (half to double the fair share) so the test
	// pins gross imbalance, not the exact hash layout.
	fair := keys / replicas
	for i, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("replica %d owns %d of %d keys (fair share %d)", i, c, keys, fair)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := newRing(0, 64).sequence("x"); len(got) != 0 {
		t.Fatalf("empty ring returned %v", got)
	}
	one := newRing(1, 64)
	if got := one.sequence("x"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single-replica ring returned %v", got)
	}
}
