package gateway

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"distmincut/internal/chaos"
)

// replicaState classifies one replica for routing. The prober is the
// only writer; handlers read it to pick candidates.
type replicaState int

const (
	// stateHealthy: ready — accepts new submissions.
	stateHealthy replicaState = iota
	// stateSaturated: alive but its queue is at 100% fill. No new
	// routes, but it still serves polls, results, and its own queue.
	stateSaturated
	// stateDraining: alive and shutting down. No new routes; running
	// jobs finish there, queued jobs are replayed elsewhere.
	stateDraining
	// stateDown: ejected after consecutive probe transport failures.
	// Skipped entirely; re-probed on exponential backoff.
	stateDown
)

func (s replicaState) String() string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateSaturated:
		return "saturated"
	case stateDraining:
		return "draining"
	default:
		return "down"
	}
}

// replica is one backend's identity plus its prober-owned health
// state.
type replica struct {
	name string
	base string // base URL, no trailing slash

	mu        sync.Mutex
	state     replicaState
	reason    string        // replica-reported readiness reason, if any
	fails     int           // consecutive probe transport failures
	backoff   time.Duration // current ejection re-probe delay
	nextProbe time.Time     // earliest re-probe while down
}

// routable reports whether new submissions may be sent here.
func (r *replica) routable() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state == stateHealthy
}

// alive reports whether reads (polls, results, traces) may be sent
// here: everything short of ejected.
func (r *replica) alive() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state != stateDown
}

// prober is the background health loop: one sweep every
// HealthInterval until Close.
func (g *Gateway) prober() {
	defer close(g.proberDone)
	t := time.NewTicker(g.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-g.proberStop:
			return
		case <-t.C:
			g.CheckNow()
		}
	}
}

// CheckNow sweeps one synchronous health probe over every replica,
// applying ejections, reinstatements, and drain replays inline. The
// background prober calls it on its tick; tests call it directly to
// drive the health state machine deterministically.
func (g *Gateway) CheckNow() {
	now := time.Now()
	for _, rep := range g.reps {
		g.probeOne(rep, now)
	}
}

// probeOne health-checks a single replica against its readiness
// endpoint and folds the answer into the routing state.
func (g *Gateway) probeOne(rep *replica, now time.Time) {
	rep.mu.Lock()
	if rep.state == stateDown && now.Before(rep.nextProbe) {
		rep.mu.Unlock()
		return
	}
	rep.mu.Unlock()

	chaos.Inject(chaos.SiteGatewayProbe)
	ctx, cancel := context.WithTimeout(context.Background(), g.opts.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base+"/healthz?check=ready", nil)
	if err != nil {
		g.probeFailed(rep)
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.probeFailed(rep)
		return
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	switch resp.StatusCode {
	case http.StatusOK:
		g.markHealthy(rep)
	case http.StatusServiceUnavailable:
		var hb struct {
			Ready  bool   `json:"ready"`
			Reason string `json:"reason"`
		}
		_ = json.Unmarshal(data, &hb)
		g.markUnready(rep, hb.Reason)
	default:
		// A liveness endpoint answering anything else is not a mincutd
		// replica in a known state; treat it as a failed probe.
		g.probeFailed(rep)
	}
}

// markHealthy records a ready probe: the replica (re)joins the
// routable set and its failure accounting resets.
func (g *Gateway) markHealthy(rep *replica) {
	rep.mu.Lock()
	wasDown := rep.state == stateDown
	changed := rep.state != stateHealthy
	rep.state = stateHealthy
	rep.reason = ""
	rep.fails = 0
	rep.backoff = 0
	rep.mu.Unlock()
	if wasDown {
		g.m.rep(rep.name).reinstatements.Add(1)
	}
	if changed {
		g.log.Info("replica healthy", "replica", rep.name)
	}
}

// markUnready records an alive-but-not-ready probe (HTTP 503 from the
// readiness check): the replica leaves the routable set but keeps
// serving reads. A reason of "draining" marks a rolling restart and
// triggers the queued-job replay once, on the transition.
func (g *Gateway) markUnready(rep *replica, reason string) {
	newState := stateSaturated
	if reason == "draining" {
		newState = stateDraining
	}
	rep.mu.Lock()
	wasDown := rep.state == stateDown
	prev := rep.state
	rep.state = newState
	rep.reason = reason
	rep.fails = 0
	rep.backoff = 0
	rep.mu.Unlock()
	if wasDown {
		g.m.rep(rep.name).reinstatements.Add(1)
	}
	if newState == stateDraining && prev != stateDraining {
		g.log.Info("replica draining, replaying its queued jobs", "replica", rep.name)
		g.replayDraining(rep)
	} else if prev != newState {
		g.log.Info("replica not ready", "replica", rep.name, "reason", reason)
	}
}

// probeFailed records a probe transport failure. EjectAfter
// consecutive failures eject the replica (its in-flight jobs are
// replayed); while down, each further failure doubles the re-probe
// backoff up to ReinstateMax.
func (g *Gateway) probeFailed(rep *replica) {
	eject := false
	rep.mu.Lock()
	if rep.state == stateDown {
		rep.backoff *= 2
		if rep.backoff > g.opts.ReinstateMax {
			rep.backoff = g.opts.ReinstateMax
		}
		rep.nextProbe = time.Now().Add(rep.backoff)
	} else {
		rep.fails++
		if rep.fails >= g.opts.EjectAfter {
			rep.state = stateDown
			rep.reason = "unreachable"
			rep.backoff = g.opts.ReinstateBase
			rep.nextProbe = time.Now().Add(rep.backoff)
			eject = true
		}
	}
	rep.mu.Unlock()
	if eject {
		g.m.rep(rep.name).ejections.Add(1)
		g.log.Warn("replica ejected", "replica", rep.name, "after_failures", g.opts.EjectAfter)
		g.replayDown(rep)
	}
}
