package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over replica indices. Each replica
// owns vnodes points on a 64-bit circle; a key routes to the replica
// owning the first point at or after the key's hash. Consistency is
// the property the gateway leans on: adding or removing one replica
// remaps only the keys that replica owned, so a rolling restart never
// reshuffles the whole cache-locality assignment.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // replica count
}

// ringPoint is one virtual node: a position on the circle and the
// index of the replica that owns it.
type ringPoint struct {
	hash uint64
	idx  int
}

// hash64 maps a string onto the circle. SHA-256 truncated to 64 bits:
// routing runs once per request, so a cryptographic hash's uniformity
// (good virtual-node balance, no engineered collisions from uploaded
// specs) is worth its nanoseconds.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds the ring for n replicas with vnodes points each.
// Points hash the replica *index*, not its URL, so the assignment is a
// pure function of (position in the -replicas list, vnodes) — two
// gateways configured with the same ordered replica list route
// identically, which is what lets a restarted or scaled-out front tier
// keep the same key→replica map.
func newRing(n, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, n*vnodes), n: n}
	for i := 0; i < n; i++ {
		for v := 0; v < vnodes; v++ {
			h := hash64("replica-" + strconv.Itoa(i) + "#" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].idx < r.points[b].idx
	})
	return r
}

// sequence returns every replica index in ring-successor order from
// key's position: element 0 is the key's owner, element 1 the replica
// a failed attempt falls over to, and so on. The walk visits each
// replica once.
func (r *ring) sequence(key string) []int {
	out := make([]int, 0, r.n)
	if r.n == 0 {
		return out
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, r.n)
	for i := 0; len(out) < r.n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			out = append(out, p.idx)
		}
	}
	return out
}

// owner returns the key's primary replica index.
func (r *ring) owner(key string) int {
	seq := r.sequence(key)
	if len(seq) == 0 {
		return -1
	}
	return seq[0]
}
