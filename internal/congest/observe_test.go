package congest

import (
	"testing"

	"distmincut/internal/graph"
)

// collectObserver retains every round record it sees (copying the
// shard slice, as the Observer contract requires).
type collectObserver struct {
	recs []RoundRecord
}

func (c *collectObserver) ObserveRound(r RoundRecord) {
	cp := r
	cp.ShardNanos = append([]int64(nil), r.ShardNanos...)
	c.recs = append(c.recs, cp)
}

// TestObserverRecordsSumToStats: one record per round, per-round
// deliveries sum to the run total, cumulative totals are monotone, and
// the final record agrees with Stats.
func TestObserverRecordsSumToStats(t *testing.T) {
	g := graph.PlantedCut(16, 16, 3, 0.4, 5)
	obs := &collectObserver{}
	st, err := Run(g, Options{Seed: 1, Observer: obs}, chatterProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.recs) != st.Rounds {
		t.Fatalf("observer saw %d rounds, stats say %d", len(obs.recs), st.Rounds)
	}
	var sum int64
	prevTotal := int64(0)
	for i, r := range obs.recs {
		if r.Round != i+1 {
			t.Fatalf("record %d has round %d, want %d", i, r.Round, i+1)
		}
		if r.Delivered < 0 {
			t.Fatalf("round %d negative delivered %d", r.Round, r.Delivered)
		}
		sum += r.Delivered
		if r.TotalDelivered != sum {
			t.Fatalf("round %d cumulative %d, want %d", r.Round, r.TotalDelivered, sum)
		}
		if r.TotalDelivered < prevTotal {
			t.Fatalf("round %d cumulative went backwards", r.Round)
		}
		prevTotal = r.TotalDelivered
		if r.Nanos <= 0 {
			t.Fatalf("round %d has no wall timestamp", r.Round)
		}
	}
	if sum != st.Delivered {
		t.Fatalf("per-round deliveries sum to %d, stats delivered %d", sum, st.Delivered)
	}
	last := obs.recs[len(obs.recs)-1]
	if last.DirtyNodes != st.DirtyNodes {
		t.Fatalf("final dirty nodes %d, stats %d", last.DirtyNodes, st.DirtyNodes)
	}
}

// TestObserverShardNanos: with sharded delivery enabled, the record
// carries one duration per shard.
func TestObserverShardNanos(t *testing.T) {
	g := graph.RandomRegular(64, 6, 3)
	obs := &collectObserver{}
	_, err := Run(g, Options{Seed: 1, DeliveryShards: 4, Observer: obs}, chatterProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.recs) == 0 {
		t.Fatal("no records")
	}
	for _, r := range obs.recs {
		if len(r.ShardNanos) != 4 {
			t.Fatalf("round %d has %d shard durations, want 4", r.Round, len(r.ShardNanos))
		}
	}
}

// TestObserverDoesNotPerturbRun: the deterministic portion of Stats is
// bit-identical with and without an observer attached.
func TestObserverDoesNotPerturbRun(t *testing.T) {
	for name, g := range determinismFamilies() {
		base, err := Run(g, Options{Seed: 7}, chatterProgram)
		if err != nil {
			t.Fatal(err)
		}
		obs, err := Run(g, Options{Seed: 7, Observer: NewFlightRecorder(0)}, chatterProgram)
		if err != nil {
			t.Fatal(err)
		}
		if keyOf(base) != keyOf(obs) {
			t.Fatalf("%s: observed run diverged: %+v vs %+v", name, keyOf(base), keyOf(obs))
		}
	}
}

// TestFlightRecorderRing: the recorder keeps exactly the last K
// records, oldest first, and Reset empties it.
func TestFlightRecorderRing(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 1; i <= 10; i++ {
		fr.ObserveRound(RoundRecord{Round: i, Delivered: int64(i), ShardNanos: []int64{int64(i)}})
	}
	tail := fr.Tail()
	if len(tail) != 4 {
		t.Fatalf("tail length %d, want 4", len(tail))
	}
	for i, r := range tail {
		want := 7 + i
		if r.Round != want {
			t.Fatalf("tail[%d].Round = %d, want %d", i, r.Round, want)
		}
		if len(r.ShardNanos) != 1 || r.ShardNanos[0] != int64(want) {
			t.Fatalf("tail[%d] shard nanos not copied per slot", i)
		}
	}
	// The returned tail must be a fresh copy: recording more rounds
	// cannot mutate it.
	fr.ObserveRound(RoundRecord{Round: 11})
	if tail[0].Round != 7 {
		t.Fatal("Tail aliases the ring")
	}
	fr.Reset()
	if got := fr.Tail(); len(got) != 0 {
		t.Fatalf("tail after reset has %d records", len(got))
	}
}

// TestFlightRecorderDefaultSize: k <= 0 takes DefaultFlightRounds.
func TestFlightRecorderDefaultSize(t *testing.T) {
	fr := NewFlightRecorder(0)
	for i := 1; i <= DefaultFlightRounds+5; i++ {
		fr.ObserveRound(RoundRecord{Round: i})
	}
	tail := fr.Tail()
	if len(tail) != DefaultFlightRounds {
		t.Fatalf("default ring holds %d, want %d", len(tail), DefaultFlightRounds)
	}
	if tail[0].Round != 6 {
		t.Fatalf("oldest retained round %d, want 6", tail[0].Round)
	}
}

// TestFlightRecorderEndToEnd: armed as the engine observer, the
// recorder's tail covers the run's final rounds in order.
func TestFlightRecorderEndToEnd(t *testing.T) {
	g := graph.Path(48)
	fr := NewFlightRecorder(8)
	st, err := Run(g, Options{Seed: 3, Observer: fr}, chatterProgram)
	if err != nil {
		t.Fatal(err)
	}
	tail := fr.Tail()
	if len(tail) == 0 {
		t.Fatal("empty tail after run")
	}
	if last := tail[len(tail)-1]; last.Round != st.Rounds {
		t.Fatalf("tail ends at round %d, stats ran %d", last.Round, st.Rounds)
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].Round != tail[i-1].Round+1 {
			t.Fatalf("tail rounds not consecutive at %d", i)
		}
	}
}

// TestDirtyNodesSparseWake: a program where most nodes go to sleep
// immediately must report far fewer dirty nodes than n — the
// dirty-sender teardown walk is what makes warm reuse cheap, and
// DirtyNodes is its observable witness.
func TestDirtyNodesSparseWake(t *testing.T) {
	g := graph.Path(256)
	// Only the two path endpoints send (one unread message each to
	// their interior neighbor); everyone else returns untouched. The
	// teardown walk must find the leftover via the two dirty senders.
	st, err := Run(g, Options{Seed: 1}, func(nd *Node) {
		if nd.Degree() != 1 {
			return
		}
		nd.SendAll(Message{Kind: 9})
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.DirtyNodes > 4 {
		t.Fatalf("%d dirty nodes for 2 senders", st.DirtyNodes)
	}
	if st.Sent != 2 || st.Delivered != 2 {
		t.Fatalf("sent %d delivered %d, want 2/2", st.Sent, st.Delivered)
	}
	if st.Leftover != 2 {
		t.Fatalf("leftover %d, want 2 (unread messages at interior peers)", st.Leftover)
	}
}

// TestWarmReuseAccountingAfterSparseRuns: repeated warm runs over the
// same engine keep per-run Sent/Delivered accounting exact even though
// teardown only walks dirty senders.
func TestWarmReuseAccountingAfterSparseRuns(t *testing.T) {
	g := graph.PlantedCut(24, 24, 3, 0.3, 9)
	eng := NewEngine(Options{Seed: 5})
	defer eng.Close()
	var first statsKey
	for i := 0; i < 4; i++ {
		st, err := eng.Run(g, chatterProgram)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = keyOf(st)
			continue
		}
		if keyOf(st) != first {
			t.Fatalf("warm run %d diverged: %+v vs %+v", i, keyOf(st), first)
		}
	}
}
