package congest

import (
	"math/bits"
	"sync"
)

// queue is a FIFO of messages backed by a power-of-two ring buffer with
// amortized O(1) push/pop and support for removing an element at an
// arbitrary index (selective receive). Initial rings are carved out of
// one per-engine message slab (see Engine.msgSlab) so the queue
// metadata stays a dense 40-byte array that delivery can keep
// cache-resident; queues that outgrow their slab ring switch to buffers
// from a shared size-class pool, and large drained buffers return to
// the pool instead of pinning memory for the rest of the run.
type queue struct {
	buf  []Message // power-of-two capacity; nil when empty and released
	head int
	n    int
}

func (q *queue) len() int { return q.n }

func (q *queue) push(p *bufPool, m Message) {
	if q.n == len(q.buf) {
		q.grow(p)
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = m
	q.n++
}

// at returns the i-th element in FIFO order without removing it.
func (q *queue) at(i int) Message { return q.buf[(q.head+i)&(len(q.buf)-1)] }

// pop removes and returns the head.
func (q *queue) pop(p *bufPool) (Message, bool) {
	if q.n == 0 {
		return Message{}, false
	}
	m := q.buf[q.head]
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	q.maybeRelease(p)
	return m, true
}

// removeAt removes the i-th element in FIFO order, preserving the order
// of the rest by shifting whichever side of the ring is shorter.
func (q *queue) removeAt(p *bufPool, i int) Message {
	mask := len(q.buf) - 1
	m := q.buf[(q.head+i)&mask]
	if i < q.n-1-i {
		// Shift the head side forward.
		for j := i; j > 0; j-- {
			q.buf[(q.head+j)&mask] = q.buf[(q.head+j-1)&mask]
		}
		q.head = (q.head + 1) & mask
	} else {
		// Shift the tail side back.
		for j := i; j < q.n-1; j++ {
			q.buf[(q.head+j)&mask] = q.buf[(q.head+j+1)&mask]
		}
	}
	q.n--
	q.maybeRelease(p)
	return m
}

func (q *queue) grow(p *bufPool) {
	q.growTo(p, len(q.buf)+1)
}

// growTo replaces the ring with one of power-of-two capacity >= need,
// preserving FIFO order. Growth jumps straight to the smallest pooled
// class, so leaving a slab ring costs no intermediate allocations.
func (q *queue) growTo(p *bufPool, need int) {
	newCap := 2 * len(q.buf)
	if newCap < minPoolCap {
		newCap = minPoolCap
	}
	for newCap < need {
		newCap *= 2
	}
	nb := p.get(newCap)
	mask := len(q.buf) - 1
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&mask]
	}
	if q.buf != nil {
		p.put(q.buf)
	}
	q.buf = nb
	q.head = 0
}

// moveTo transfers the k oldest messages from q's head to dst's tail in
// FIFO order using bulk copies of contiguous ring spans (at most three
// copy calls: the source span and the destination free space each wrap
// at most once) instead of k pop/push round trips. It is the vectorized
// delivery primitive for Unbounded and other multi-message rounds.
func (q *queue) moveTo(p *bufPool, dst *queue, k int) {
	if k > q.n {
		k = q.n
	}
	if k == 0 {
		return
	}
	if dst.n+k > len(dst.buf) {
		dst.growTo(p, dst.n+k)
	}
	mask, dmask := len(q.buf)-1, len(dst.buf)-1
	for k > 0 {
		chunk := k
		if c := len(q.buf) - q.head; c < chunk {
			chunk = c // contiguous span at the source head
		}
		t := (dst.head + dst.n) & dmask
		if c := len(dst.buf) - t; c < chunk {
			chunk = c // contiguous free space at the destination tail
		}
		copy(dst.buf[t:t+chunk], q.buf[q.head:q.head+chunk])
		q.head = (q.head + chunk) & mask
		q.n -= chunk
		dst.n += chunk
		k -= chunk
	}
	q.maybeRelease(p)
}

// maybeRelease returns a fully drained buffer to the pool when it is
// large enough to be worth sharing; small rings are kept so steady
// chatter on an edge never touches the pool.
func (q *queue) maybeRelease(p *bufPool) {
	if q.n == 0 && len(q.buf) >= releaseCap {
		p.put(q.buf)
		q.buf = nil
		q.head = 0
	}
}

const (
	// slabOutCap and slabInCap are the ring capacities carved out of the
	// per-engine message slab for send and receive queues respectively;
	// both must be powers of two. Send queues get room for the staged
	// pipelines protocols build up front; receive queues get the one or
	// two in-flight messages a round leaves behind, which keeps the
	// randomly-addressed receive-ring region of the slab small enough to
	// stay cache-resident during delivery.
	slabOutCap = 8
	slabInCap  = 2
	// minPoolCap is the smallest pooled ring; must be a power of two
	// larger than slabOutCap so slab carves never enter the pool.
	minPoolCap = 16
	// releaseCap is the smallest capacity eagerly returned to the pool
	// when a queue drains.
	releaseCap = 256
	// maxPooledCap bounds what the pool retains; larger rings are
	// allocated and collected directly.
	maxPooledCap = 1 << 18
)

// bufPool holds message ring buffers in power-of-two size classes.
// Message contains no pointers, so recycled buffers need no zeroing and
// never retain garbage. A single process-wide pool (msgBufPool) is
// shared by every engine so repeated runs reuse each other's buffers.
// Rings below minPoolCap are silently rejected by put: they are slab
// carves (see Engine.msgSlab) that must never circulate through the
// pool while whole slabs are recycled.
type bufPool struct {
	classes [15]sync.Pool // capacities minPoolCap..maxPooledCap
}

var msgBufPool bufPool

func classFor(capacity int) int {
	return bits.Len(uint(capacity)) - 5 // 16 -> 0, 32 -> 1, ...
}

func (bp *bufPool) get(capacity int) []Message {
	if capacity > maxPooledCap {
		return make([]Message, capacity)
	}
	if v := bp.classes[classFor(capacity)].Get(); v != nil {
		return v.([]Message)
	}
	return make([]Message, capacity)
}

func (bp *bufPool) put(buf []Message) {
	c := cap(buf)
	if c < minPoolCap || c > maxPooledCap || c&(c-1) != 0 {
		return
	}
	bp.classes[classFor(c)].Put(buf[:c]) //nolint:staticcheck // slice headers are an acceptable pool cost
}
