package congest

// queue is a FIFO of messages with amortized O(1) push/pop and support
// for removing an element at an arbitrary index (selective receive).
type queue struct {
	buf  []Message
	head int
}

func (q *queue) push(m Message) { q.buf = append(q.buf, m) }

func (q *queue) len() int { return len(q.buf) - q.head }

// at returns the i-th element in FIFO order without removing it.
func (q *queue) at(i int) Message { return q.buf[q.head+i] }

// pop removes and returns the head.
func (q *queue) pop() (Message, bool) {
	if q.len() == 0 {
		return Message{}, false
	}
	m := q.buf[q.head]
	q.head++
	q.maybeCompact()
	return m, true
}

// removeAt removes the i-th element in FIFO order, preserving the order
// of the rest.
func (q *queue) removeAt(i int) Message {
	idx := q.head + i
	m := q.buf[idx]
	copy(q.buf[idx:], q.buf[idx+1:])
	q.buf = q.buf[:len(q.buf)-1]
	q.maybeCompact()
	return m
}

func (q *queue) maybeCompact() {
	if q.head > 64 && q.head*2 > len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
}
