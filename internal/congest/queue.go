package congest

import (
	"math/bits"
	"sync"
)

// queue is a FIFO of messages backed by a power-of-two ring buffer with
// amortized O(1) push/pop and support for removing an element at an
// arbitrary index (selective receive). Backing arrays come from a
// shared size-class pool so per-edge queues stop allocating once the
// process has warmed up, and large drained buffers return to the pool
// instead of pinning memory for the rest of the run.
type queue struct {
	buf  []Message // power-of-two capacity; nil when empty and released
	head int
	n    int
}

func (q *queue) len() int { return q.n }

func (q *queue) push(p *bufPool, m Message) {
	if q.n == len(q.buf) {
		q.grow(p)
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = m
	q.n++
}

// at returns the i-th element in FIFO order without removing it.
func (q *queue) at(i int) Message { return q.buf[(q.head+i)&(len(q.buf)-1)] }

// pop removes and returns the head.
func (q *queue) pop(p *bufPool) (Message, bool) {
	if q.n == 0 {
		return Message{}, false
	}
	m := q.buf[q.head]
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	q.maybeRelease(p)
	return m, true
}

// removeAt removes the i-th element in FIFO order, preserving the order
// of the rest by shifting whichever side of the ring is shorter.
func (q *queue) removeAt(p *bufPool, i int) Message {
	mask := len(q.buf) - 1
	m := q.buf[(q.head+i)&mask]
	if i < q.n-1-i {
		// Shift the head side forward.
		for j := i; j > 0; j-- {
			q.buf[(q.head+j)&mask] = q.buf[(q.head+j-1)&mask]
		}
		q.head = (q.head + 1) & mask
	} else {
		// Shift the tail side back.
		for j := i; j < q.n-1; j++ {
			q.buf[(q.head+j)&mask] = q.buf[(q.head+j+1)&mask]
		}
	}
	q.n--
	q.maybeRelease(p)
	return m
}

func (q *queue) grow(p *bufPool) {
	newCap := 2 * len(q.buf)
	if newCap < minQueueCap {
		newCap = minQueueCap
	}
	nb := p.get(newCap)
	mask := len(q.buf) - 1
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&mask]
	}
	if q.buf != nil {
		p.put(q.buf)
	}
	q.buf = nb
	q.head = 0
}

// maybeRelease returns a fully drained buffer to the pool when it is
// large enough to be worth sharing; small rings are kept so steady
// chatter on an edge never touches the pool.
func (q *queue) maybeRelease(p *bufPool) {
	if q.n == 0 && len(q.buf) >= releaseCap {
		p.put(q.buf)
		q.buf = nil
		q.head = 0
	}
}

const (
	// minQueueCap is the smallest ring allocated; must be a power of two.
	minQueueCap = 8
	// releaseCap is the smallest capacity eagerly returned to the pool
	// when a queue drains.
	releaseCap = 256
	// maxPooledCap bounds what the pool retains; larger rings are
	// allocated and collected directly.
	maxPooledCap = 1 << 18
)

// bufPool holds message ring buffers in power-of-two size classes.
// Message contains no pointers, so recycled buffers need no zeroing and
// never retain garbage. A single process-wide pool (msgBufPool) is
// shared by every engine so repeated runs reuse each other's buffers.
type bufPool struct {
	classes [16]sync.Pool // capacities minQueueCap..maxPooledCap
}

var msgBufPool bufPool

func classFor(capacity int) int {
	return bits.Len(uint(capacity)) - 4 // 8 -> 0, 16 -> 1, ...
}

func (bp *bufPool) get(capacity int) []Message {
	if capacity > maxPooledCap {
		return make([]Message, capacity)
	}
	if v := bp.classes[classFor(capacity)].Get(); v != nil {
		return v.([]Message)
	}
	return make([]Message, capacity)
}

func (bp *bufPool) put(buf []Message) {
	c := cap(buf)
	if c < minQueueCap || c > maxPooledCap || c&(c-1) != 0 {
		return
	}
	bp.classes[classFor(c)].Put(buf[:c]) //nolint:staticcheck // slice headers are an acceptable pool cost
}
