package congest

import (
	"testing"

	"distmincut/internal/graph"
)

// Observer contract on the step path: the compiled execution mode must
// feed observers the exact same per-round records as the goroutine
// mode, and a nil observer must keep the step loop free of observation
// overhead.

// TestStepObserverRecordsSumToStats: the step path delivers one record
// per round whose per-round deliveries sum to the run total, with the
// final record agreeing with Stats — the same contract the goroutine
// path is held to in TestObserverRecordsSumToStats.
func TestStepObserverRecordsSumToStats(t *testing.T) {
	g := graph.PlantedCut(16, 16, 3, 0.4, 5)
	obs := &collectObserver{}
	st, err := Run(g, Options{Seed: 1, Observer: obs}, &stepChatter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.recs) != st.Rounds {
		t.Fatalf("observer saw %d rounds, stats say %d", len(obs.recs), st.Rounds)
	}
	var sum int64
	for i, r := range obs.recs {
		if r.Round != i+1 {
			t.Fatalf("record %d has round %d, want %d", i, r.Round, i+1)
		}
		sum += r.Delivered
		if r.TotalDelivered != sum {
			t.Fatalf("round %d cumulative %d, want %d", r.Round, r.TotalDelivered, sum)
		}
	}
	if sum != st.Delivered {
		t.Fatalf("per-round deliveries sum to %d, stats delivered %d", sum, st.Delivered)
	}
	if last := obs.recs[len(obs.recs)-1]; last.DirtyNodes != st.DirtyNodes {
		t.Fatalf("final dirty nodes %d, stats %d", last.DirtyNodes, st.DirtyNodes)
	}
}

// deterministicRecord is the portion of a RoundRecord that must be
// bit-identical across execution paths (everything but clock readings).
type deterministicRecord struct {
	Round          int
	Delivered      int64
	TotalDelivered int64
	Woken          int
	DirtyNodes     int
}

func deterministicTail(recs []RoundRecord) []deterministicRecord {
	out := make([]deterministicRecord, len(recs))
	for i, r := range recs {
		out[i] = deterministicRecord{r.Round, r.Delivered, r.TotalDelivered, r.Woken, r.DirtyNodes}
	}
	return out
}

// TestStepObserverParity: the full record stream seen by an observer
// must agree between the goroutine and step paths on every
// deterministic field, round by round.
func TestStepObserverParity(t *testing.T) {
	g := graph.RandomRegular(64, 6, 11)
	opts := Options{Seed: 42}
	gObs, sObs := &collectObserver{}, &collectObserver{}
	o1 := opts
	o1.Observer = gObs
	if _, err := Run(g, o1, phasedProgram); err != nil {
		t.Fatal(err)
	}
	o2 := opts
	o2.Observer = sObs
	if _, err := Run(g, o2, &stepPhased{}); err != nil {
		t.Fatal(err)
	}
	gt, st := deterministicTail(gObs.recs), deterministicTail(sObs.recs)
	if len(gt) != len(st) {
		t.Fatalf("goroutine path produced %d records, step path %d", len(gt), len(st))
	}
	for i := range gt {
		if gt[i] != st[i] {
			t.Fatalf("record %d diverged: goroutine %+v, step %+v", i, gt[i], st[i])
		}
	}
}

// TestStepFlightRecorderTailParity: a FlightRecorder armed on each path
// retains the same final rounds, so post-mortem tails from step runs
// read exactly like goroutine ones.
func TestStepFlightRecorderTailParity(t *testing.T) {
	g := graph.RandomRegular(64, 6, 11)
	gRec, sRec := NewFlightRecorder(8), NewFlightRecorder(8)
	o1 := Options{Seed: 42, Observer: gRec}
	if _, err := Run(g, o1, chatterProgram); err != nil {
		t.Fatal(err)
	}
	o2 := Options{Seed: 42, Observer: sRec}
	if _, err := Run(g, o2, &stepChatter{}); err != nil {
		t.Fatal(err)
	}
	gt, st := deterministicTail(gRec.Tail()), deterministicTail(sRec.Tail())
	if len(gt) == 0 || len(gt) != len(st) {
		t.Fatalf("tail lengths: goroutine %d, step %d", len(gt), len(st))
	}
	for i := range gt {
		if gt[i] != st[i] {
			t.Fatalf("tail record %d diverged: goroutine %+v, step %+v", i, gt[i], st[i])
		}
	}
}

// TestStepNilObserverWarmRunAllocs: with no observer, a warm engine
// re-running a step program must allocate only the returned Stats —
// the step loop itself (dispatch, park bookkeeping, wake scan) is
// allocation-free, which is the point of compiling programs to state
// machines.
func TestStepNilObserverWarmRunAllocs(t *testing.T) {
	g := graph.RandomRegular(128, 6, 9)
	eng := NewEngine(Options{Seed: 7, DeliveryShards: -1})
	defer eng.Close()
	prog := newStepExchange(4)
	if _, err := eng.Run(g, prog); err != nil {
		t.Fatal(err) // cold run: slabs and program state allocate here
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := eng.Run(g, prog); err != nil {
			t.Fatal(err)
		}
	})
	// One allocation for the returned *Stats; a tiny slack for the
	// runtime's occasional map/stack bookkeeping.
	if avg > 3 {
		t.Fatalf("warm nil-observer step run allocated %.1f times, want <= 3", avg)
	}
	t.Logf("warm step run allocations: %.1f", avg)
}
