package congest

import "sync"

// RoundRecord is one per-round observation delivered to an Observer at
// the round barrier, after the round's messages were delivered and the
// next wake set was computed. All counters describe the run so far from
// the coordinator's point of view; nothing in a RoundRecord affects the
// simulation.
type RoundRecord struct {
	// Round is the round number that just completed delivery.
	Round int
	// Delivered is the number of messages delivered in this round;
	// TotalDelivered the cumulative count for the run.
	Delivered      int64
	TotalDelivered int64
	// Woken is the number of node activations scheduled for the next
	// dispatch (satisfied Recv predicates plus due sleepers).
	Woken int
	// DirtyNodes is the cumulative number of nodes that have sent at
	// least one message this run — the size of the dirty set the warm
	// teardown and reset walks are proportional to.
	DirtyNodes int
	// Nanos is wall time in nanoseconds since Run was entered (engine
	// setup included), sampled at the round barrier. Subtracting two
	// consecutive records' Nanos gives the wall cost of a round.
	Nanos int64
	// DeliveryNanos is the wall time the round's delivery phase took,
	// as seen by the coordinator (fan-out and merge included).
	DeliveryNanos int64
	// ShardNanos holds each delivery shard's self-measured delivery
	// time for the round; serial runs have exactly one entry. The slice
	// aliases an engine-owned scratch buffer that is overwritten every
	// round — observers that retain records must copy it.
	ShardNanos []int64
}

// Observer receives one RoundRecord per simulated round (see
// Options.Observer). ObserveRound is called on the coordinator
// goroutine between rounds, while every node is parked, so
// implementations may read the record without synchronization but block
// the simulation for as long as they run. A nil Observer costs one
// predictable branch per round and nothing else.
type Observer interface {
	ObserveRound(RoundRecord)
}

// FlightRecorder is an Observer retaining the last K rounds in a fixed
// ring — a post-mortem buffer for deadline and budget aborts: when a
// run is killed mid-flight, Tail returns where its final rounds went.
// The ring's record slots and their ShardNanos backing arrays are
// allocated once and reused, so steady-state recording does not
// allocate. Tail and Reset are safe to call concurrently with the
// recording run.
type FlightRecorder struct {
	mu      sync.Mutex
	recs    []RoundRecord
	shardNs [][]int64 // per-slot backing for the retained ShardNanos copies
	next    int
	count   int
}

// DefaultFlightRounds is the ring size NewFlightRecorder(0) resolves
// to: enough tail to see a stall pattern, small enough to be free.
const DefaultFlightRounds = 64

// NewFlightRecorder returns a recorder keeping the last k rounds; k <=
// 0 resolves to DefaultFlightRounds.
func NewFlightRecorder(k int) *FlightRecorder {
	if k <= 0 {
		k = DefaultFlightRounds
	}
	return &FlightRecorder{
		recs:    make([]RoundRecord, k),
		shardNs: make([][]int64, k),
	}
}

// ObserveRound records rec, evicting the oldest retained round once the
// ring is full. The record's ShardNanos is copied into the slot's own
// backing array, so the engine's scratch buffer is never retained.
func (f *FlightRecorder) ObserveRound(rec RoundRecord) {
	f.mu.Lock()
	slot := f.next
	buf := append(f.shardNs[slot][:0], rec.ShardNanos...)
	f.shardNs[slot] = buf
	rec.ShardNanos = buf
	f.recs[slot] = rec
	f.next = (f.next + 1) % len(f.recs)
	if f.count < len(f.recs) {
		f.count++
	}
	f.mu.Unlock()
}

// Tail returns the retained rounds, oldest first. The returned slice
// and its ShardNanos are fresh copies, safe to hold across further
// recording.
func (f *FlightRecorder) Tail() []RoundRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]RoundRecord, 0, f.count)
	start := f.next - f.count
	if start < 0 {
		start += len(f.recs)
	}
	for i := 0; i < f.count; i++ {
		rec := f.recs[(start+i)%len(f.recs)]
		rec.ShardNanos = append([]int64(nil), rec.ShardNanos...)
		out = append(out, rec)
	}
	return out
}

// Reset empties the ring (the backing arrays are kept for reuse), so
// one recorder can be re-armed across successive runs.
func (f *FlightRecorder) Reset() {
	f.mu.Lock()
	f.next, f.count = 0, 0
	f.mu.Unlock()
}
