package congest

import (
	"fmt"
	"math/rand"

	"distmincut/internal/graph"
)

type nodePhase int

const (
	// phaseIdle (the zero value) marks a node whose goroutine has not
	// been spawned yet: activation starts the program lazily, so nodes
	// never scheduled — and, before round 0, all nodes — hold no stack.
	phaseIdle nodePhase = iota
	phaseRunning
	phaseRecv
	phaseSleep
	phaseDone
)

// Node is the per-processor handle passed to the node program. All
// methods must be called only from that node's goroutine.
type Node struct {
	id  graph.NodeID
	eng *Engine
	adj []graph.Half
	rng *rand.Rand // created lazily on first Rand call; reseeded per run

	// rngGen is the engine run the RNG was last seeded for; comparing
	// it to the engine's run counter reseeds lazily, so reused engines
	// stay bit-identical to fresh ones without an O(n) reseed pass.
	rngGen uint32

	// spawnGen is the engine run this node's goroutine was last spawned
	// for: activate spawns when it trails the engine's run counter and
	// wakes otherwise. Generation-numbering the spawn decision (instead
	// of resetting every node's phase between runs) is what lets a warm
	// engine's teardown walk only the dirty nodes.
	spawnGen uint32

	outQ []queue // staged sends, one FIFO per port; head transmitted each round
	inQ  []queue // received but not yet consumed, one FIFO per port

	phase    nodePhase
	match    MatchFunc // valid while phase == phaseRecv
	wakeAt   int       // valid while phase == phaseSleep
	parkGen  int       // incremented on every park; invalidates stale sleeper heap entries
	wakeCh   chan struct{}
	panicVal any

	// Match hint: when the scheduler wakes this node from Recv, it has
	// already found the first matching message (lowest port, FIFO within
	// a port) while evaluating the wake predicate; it records that
	// position here so the woken Recv consumes it directly instead of
	// rescanning every port. hintPort is -1 whenever no hint is pending.
	hintPort int32
	hintIdx  int32

	nonEmptyOut int   // number of ports with staged messages (node-local view)
	outDirty    bool  // registered in the engine's sender set
	everDirty   bool  // sent at least once this run (on the engine's dirty-node list)
	sent        int64 // messages staged by this node (summed into Stats.Sent)
}

// ID returns this node's unique identifier.
func (nd *Node) ID() graph.NodeID { return nd.id }

// N returns the number of nodes in the network.
func (nd *Node) N() int { return len(nd.eng.nodes) }

// Degree returns the number of incident edges (ports).
func (nd *Node) Degree() int { return len(nd.adj) }

// Peer returns the ID of the neighbor across port p.
func (nd *Node) Peer(p int) graph.NodeID { return nd.adj[p].Peer }

// EdgeWeight returns the weight of the edge at port p.
func (nd *Node) EdgeWeight(p int) int64 { return nd.adj[p].W }

// EdgeID returns the graph edge ID of the edge at port p.
func (nd *Node) EdgeID(p int) int { return nd.adj[p].EdgeID }

// PortTo returns the port leading to neighbor v, or -1 if v is not a
// neighbor.
func (nd *Node) PortTo(v graph.NodeID) int {
	for p, h := range nd.adj {
		if h.Peer == v {
			return p
		}
	}
	return -1
}

// Rand returns this node's private deterministic RNG. It is seeded from
// Options.Seed and the node ID on first use in each run, so programs
// that never draw randomness pay nothing for it and reused engines draw
// the same stream as fresh ones.
func (nd *Node) Rand() *rand.Rand {
	if e := nd.eng; nd.rng == nil || nd.rngGen != e.runGen {
		seed := e.opts.Seed*1_000_003 + int64(nd.id)
		if nd.rng == nil {
			nd.rng = rand.New(rand.NewSource(seed))
		} else {
			nd.rng.Seed(seed)
		}
		nd.rngGen = e.runGen
	}
	return nd.rng
}

// Round returns the current global round number.
func (nd *Node) Round() int { return nd.eng.round }

// Send stages a message on port p. The runtime transmits the head of
// each port's FIFO once per round, so k messages staged on one port
// arrive over k consecutive rounds (pipelining with its true round
// cost). Sends become visible to the network from the next round after
// the node parks.
func (nd *Node) Send(p int, m Message) {
	if p < 0 || p >= len(nd.adj) {
		panic(fmt.Sprintf("congest: node %d Send on invalid port %d (degree %d)", nd.id, p, len(nd.adj)))
	}
	if nd.eng.opts.CheckPayload {
		nd.checkPayload(p, m)
	}
	if !nd.outDirty {
		nd.outDirty = true
		nd.eng.addSender(nd)
	}
	q := &nd.outQ[p]
	if q.n == 0 {
		nd.nonEmptyOut++
	}
	if q.n < len(q.buf) { // inlined push fast path
		q.buf[(q.head+q.n)&(len(q.buf)-1)] = m
		q.n++
	} else {
		q.push(&msgBufPool, m)
	}
	nd.sent++
}

// checkPayload enforces Options.CheckPayload: every payload word must
// lie within [-PayloadLimit, PayloadLimit] or be one of the two exact
// extreme sentinels (math.MaxInt64 / math.MinInt64, which protocols use
// as "∞ / none" markers). Out of line so the Send fast path stays
// small.
func (nd *Node) checkPayload(p int, m Message) {
	const maxInt64 = int64(^uint64(0) >> 1)
	for i, w := range [PayloadWords]int64{m.A, m.B, m.C, m.D} {
		if (w > PayloadLimit || w < -PayloadLimit) && w != maxInt64 && w != -maxInt64-1 {
			panic(fmt.Sprintf(
				"congest: node %d Send on port %d: payload word %c = %d exceeds ±2^62 (kind %d tag %d) — packing overflow?",
				nd.id, p, 'A'+i, w, m.Kind, m.Tag))
		}
	}
}

// SendAll stages the same message on every port.
func (nd *Node) SendAll(m Message) {
	for p := range nd.adj {
		nd.Send(p, m)
	}
}

// TryRecv consumes and returns the first buffered message (lowest port,
// FIFO within a port) matching match, without blocking.
func (nd *Node) TryRecv(match MatchFunc) (int, Message, bool) {
	for p := range nd.inQ {
		q := &nd.inQ[p]
		n := q.n
		if n == 0 {
			continue
		}
		mask := len(q.buf) - 1
		for i := 0; i < n; i++ {
			if match(p, q.buf[(q.head+i)&mask]) {
				return p, q.removeAt(&msgBufPool, i), true
			}
		}
	}
	return 0, Message{}, false
}

// StepRecv is TryRecv for step programs, consuming the scheduler's
// match hint when one is pending: a node woken from ParkRecv has
// already had its first matching message located (lowest port, FIFO
// within a port) by the wake predicate, so its Step can consume it
// directly instead of rescanning every port — the exact counterpart of
// the blocking Recv's post-wake hint path. The hint is revalidated
// against match before use, so calling StepRecv with a different
// predicate than the one parked on is safe (it falls back to a scan).
func (nd *Node) StepRecv(match MatchFunc) (int, Message, bool) {
	if p := int(nd.hintPort); p >= 0 {
		i := int(nd.hintIdx)
		nd.hintPort = -1
		q := &nd.inQ[p]
		if i < q.n && match(p, q.at(i)) {
			return p, q.removeAt(&msgBufPool, i), true
		}
	}
	return nd.TryRecv(match)
}

// Recv blocks until a message matching match is available, then
// consumes and returns it. Non-matching messages stay buffered for
// later Recv calls (selective receive). Blocking is only possible on
// the goroutine path: calling Recv from a step program panics (use
// StepRecv + ParkRecv instead).
func (nd *Node) Recv(match MatchFunc) (int, Message) {
	if p, m, ok := nd.TryRecv(match); ok {
		return p, m
	}
	nd.match = match
	nd.park(phaseRecv)
	// The scheduler woke this node because the predicate held; it left
	// the match position as a hint, saving the post-wake rescan. The
	// hint is revalidated cheaply before use.
	if p := int(nd.hintPort); p >= 0 {
		i := int(nd.hintIdx)
		nd.hintPort = -1
		q := &nd.inQ[p]
		if i < q.n && match(p, q.at(i)) {
			return p, q.removeAt(&msgBufPool, i)
		}
	}
	p, m, ok := nd.TryRecv(match)
	if !ok {
		panic(fmt.Sprintf("congest: node %d woken from Recv with no matching message", nd.id))
	}
	return p, m
}

// RecvKindTag is Recv with a MatchKindTag predicate.
func (nd *Node) RecvKindTag(kind uint8, tag uint32) (int, Message) {
	return nd.Recv(MatchKindTag(kind, tag))
}

// Sleep parks the node for the given number of rounds (at least one).
// It is the mechanism for "wait out" protocol phases with known bounds.
func (nd *Node) Sleep(rounds int) {
	if rounds < 1 {
		rounds = 1
	}
	nd.wakeAt = nd.eng.round + rounds
	nd.park(phaseSleep)
}

// Mark records a named timestamp (current round) in the run's stats.
// Typically called by one designated node at phase boundaries.
func (nd *Node) Mark(label string) {
	nd.eng.mark(label, nd.id)
}

// park hands control back to the scheduler and blocks until woken. The
// node's wake channel is created here, on its first park ever, so
// programs that run to completion without parking never allocate one;
// the channel is cached in the engine's wake slab and reused by every
// later run.
func (nd *Node) park(ph nodePhase) {
	if nd.eng.stepProg != nil {
		panic(fmt.Sprintf(
			"congest: node %d called blocking Recv/Sleep from a step program; return ParkRecv/ParkSleep instead", nd.id))
	}
	if nd.wakeCh == nil {
		e := nd.eng
		if ch := e.wakeChs[nd.id]; ch != nil {
			nd.wakeCh = ch
		} else {
			ch = make(chan struct{}, 1)
			e.wakeChs[nd.id] = ch
			nd.wakeCh = ch
		}
	}
	nd.parkGen++
	nd.phase = ph
	nd.eng.notifyPark(nd)
	<-nd.wakeCh
	if nd.eng.aborted.Load() {
		panic(errAborted)
	}
}

// errAborted is the sentinel panic value used to unwind node goroutines
// when the engine aborts (another node panicked or limits exceeded).
var errAborted = &abortSentinel{}

type abortSentinel struct{}

func (*abortSentinel) Error() string { return "congest: run aborted" }
