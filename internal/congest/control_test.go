package congest

import (
	"errors"
	"strings"
	"testing"
	"time"

	"distmincut/internal/graph"
)

// pingPong is a two-node program exchanging one message per round for
// the given number of iterations.
func pingPong(iters int) func(*Node) {
	return func(nd *Node) {
		for i := 0; i < iters; i++ {
			nd.Send(0, Message{Kind: 1, Tag: uint32(i)})
			nd.Recv(MatchKindTag(1, uint32(i)))
		}
	}
}

func TestInterruptPreClosed(t *testing.T) {
	ch := make(chan struct{})
	close(ch)
	g := graph.Path(2)
	stats, err := Run(g, Options{Interrupt: ch}, pingPong(1_000_000))
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if stats == nil {
		t.Fatal("want partial stats on interrupt")
	}
	if stats.Rounds > 2 {
		t.Fatalf("pre-closed interrupt should abort at the first round boundary, ran %d rounds", stats.Rounds)
	}
}

func TestInterruptMidRun(t *testing.T) {
	ch := make(chan struct{})
	pg := &Progress{}
	g := graph.Path(2)
	done := make(chan struct{})
	var stats *Stats
	var err error
	go func() {
		defer close(done)
		stats, err = Run(g, Options{Interrupt: ch, Progress: pg}, pingPong(5_000_000))
	}()
	// Wait until the run has visibly progressed, then interrupt it.
	deadline := time.Now().Add(10 * time.Second)
	for pg.Round() < 100 {
		if time.Now().After(deadline) {
			t.Fatal("run never reached round 100")
		}
		time.Sleep(time.Millisecond)
	}
	close(ch)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("interrupted run did not return")
	}
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if stats.Rounds < 100 {
		t.Fatalf("interrupt fired after round 100 but stats report %d rounds", stats.Rounds)
	}
	if stats.Rounds >= 5_000_000 {
		t.Fatal("run was not actually interrupted")
	}
}

func TestProgressGaugeMatchesStats(t *testing.T) {
	pg := &Progress{}
	g := graph.Cycle(16)
	stats, err := Run(g, Options{Progress: pg}, func(nd *Node) {
		for i := 0; i < 50; i++ {
			nd.SendAll(Message{Kind: 1, Tag: uint32(i)})
			for k := 0; k < nd.Degree(); k++ {
				nd.Recv(MatchKindTag(1, uint32(i)))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := pg.Round(); got != stats.Rounds {
		t.Errorf("Progress.Round = %d, Stats.Rounds = %d", got, stats.Rounds)
	}
	if got := pg.Delivered(); got != stats.Delivered {
		t.Errorf("Progress.Delivered = %d, Stats.Delivered = %d", got, stats.Delivered)
	}
	if stats.Rounds == 0 || stats.Delivered == 0 {
		t.Fatalf("degenerate run: %v", stats)
	}
}

func TestCheckPayloadOverflowFailsLoudly(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, Options{CheckPayload: true}, func(nd *Node) {
		if nd.ID() == 0 {
			nd.Send(0, Message{Kind: 1, A: PayloadLimit + 1})
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}
	if pe.Node != 0 {
		t.Errorf("panic attributed to node %d, want 0", pe.Node)
	}
	if msg, ok := pe.Value.(string); !ok || !strings.Contains(msg, "packing overflow") {
		t.Errorf("panic value %v does not name the payload guard", pe.Value)
	}
}

func TestCheckPayloadNegativeOverflow(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, Options{CheckPayload: true}, func(nd *Node) {
		if nd.ID() == 0 {
			nd.Send(0, Message{Kind: 1, D: -PayloadLimit - 1})
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}
}

func TestCheckPayloadAllowsLegitimateTraffic(t *testing.T) {
	g := graph.Cycle(8)
	stats, err := Run(g, Options{CheckPayload: true}, func(nd *Node) {
		nd.SendAll(Message{Kind: 1, A: -1, B: PayloadLimit, C: -PayloadLimit})
		for i := 0; i < nd.Degree(); i++ {
			nd.Recv(MatchKind(1))
		}
	})
	if err != nil {
		t.Fatalf("in-range payloads must pass the guard: %v", err)
	}
	if stats.Leftover != 0 {
		t.Fatalf("leftover %d", stats.Leftover)
	}
}
