package congest

import (
	"runtime"
	"sync"
	"testing"

	"distmincut/internal/graph"
)

// BenchmarkEngine* quantify raw scheduler cost on the generator
// families used throughout the experiment suite: paths (long diameter,
// low degree), random-regular expanders (the paper's hard instances),
// and planted-community graphs. Each iteration simulates one full run;
// allocations per op are dominated by the engine's per-round
// bookkeeping, which is what the round-synchronous scheduler is meant
// to eliminate.

const benchKind uint8 = 0x42

// exchangeProgram makes every node trade `rounds` messages with every
// neighbor — the densest uniform load the model admits, exercising
// deliver, matching, and wake-up on every node every round. All sends
// are staged up front (the per-edge FIFOs pipeline them at one per
// round) and the program allocates only one match closure per node, so
// measured allocations are the engine's, not the workload's.
func exchangeProgram(rounds int) func(*Node) {
	return func(nd *Node) {
		match := MatchKind(benchKind)
		for r := 0; r < rounds; r++ {
			nd.SendAll(Message{Kind: benchKind, Tag: uint32(r)})
		}
		for i := rounds * nd.Degree(); i > 0; i-- {
			nd.Recv(match)
		}
	}
}

// pingPongProgram keeps only nodes a and b active: they bounce a token
// for the given number of hops while every other node exits
// immediately. On large graphs this isolates the engine's per-round
// overhead that is independent of traffic volume.
func pingPongProgram(a, b graph.NodeID, hops int) func(*Node) {
	return func(nd *Node) {
		if nd.ID() != a && nd.ID() != b {
			return
		}
		peer := b
		if nd.ID() == b {
			peer = a
		}
		p := nd.PortTo(peer)
		match := MatchKind(benchKind)
		for i := 0; i < hops; i++ {
			if nd.ID() == a {
				nd.Send(p, Message{Kind: benchKind})
				nd.Recv(match)
			} else {
				nd.Recv(match)
				nd.Send(p, Message{Kind: benchKind})
			}
		}
	}
}

// stepExchange is the compiled twin of exchangeProgram: identical
// sends, identical receive predicate, identical park points, with the
// per-node cursor in a state slab instead of a goroutine stack. The
// benchmark pair (BenchmarkEngineExpanderExchange vs
// BenchmarkEngineStepExpanderExchange) is the headline comparison of
// the two execution paths on the same workload, and the differential
// suite asserts their Stats are bit-identical.
type stepExchange struct {
	rounds int
	match  MatchFunc // one shared predicate; same semantics as the per-node closures
	st     []stepExchangeState
}

type stepExchangeState struct {
	started   bool
	remaining int32
}

func newStepExchange(rounds int) *stepExchange {
	return &stepExchange{rounds: rounds, match: MatchKind(benchKind)}
}

func (p *stepExchange) InitRun(n int) {
	if cap(p.st) < n {
		p.st = make([]stepExchangeState, n)
	} else {
		p.st = p.st[:n]
		for i := range p.st {
			p.st[i] = stepExchangeState{}
		}
	}
}

func (p *stepExchange) Step(nd *Node) Park {
	st := &p.st[nd.ID()]
	if !st.started {
		st.started = true
		for r := 0; r < p.rounds; r++ {
			nd.SendAll(Message{Kind: benchKind, Tag: uint32(r)})
		}
		st.remaining = int32(p.rounds * nd.Degree())
	}
	for st.remaining > 0 {
		if _, _, ok := nd.StepRecv(p.match); !ok {
			return ParkRecv(p.match)
		}
		st.remaining--
	}
	return ParkDone()
}

func benchRun(b *testing.B, g *graph.Graph, opts Options, program Program) {
	b.Helper()
	b.ReportAllocs()
	var delivered int64
	for i := 0; i < b.N; i++ {
		stats, err := Run(g, opts, program)
		if err != nil {
			b.Fatal(err)
		}
		delivered = stats.Delivered
	}
	if delivered > 0 {
		b.ReportMetric(float64(delivered)*float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
	}
}

// benchRunSplit drives a reusable engine and splits the wall time into
// the setup-ns and round-ns metrics (per op): setup is the engine's own
// Stats.SetupNanos measurement, round-ns everything else. The split
// lets the regression gate watch steady-state round cost without the
// co-tenant noise of slab allocation and kernel page zeroing that
// dominates cold setups at the million scale (see the PR 3 addendum in
// CHANGES.md).
func benchRunSplit(b *testing.B, g *graph.Graph, opts Options, program Program) {
	b.Helper()
	b.ReportAllocs()
	eng := NewEngine(opts)
	defer eng.Close()
	var delivered, setupTotal int64
	for i := 0; i < b.N; i++ {
		stats, err := eng.Run(g, program)
		if err != nil {
			b.Fatal(err)
		}
		delivered = stats.Delivered
		setupTotal += stats.SetupNanos
	}
	b.ReportMetric(float64(setupTotal)/float64(b.N), "setup-ns")
	b.ReportMetric((float64(b.Elapsed().Nanoseconds())-float64(setupTotal))/float64(b.N), "round-ns")
	if delivered > 0 {
		b.ReportMetric(float64(delivered)*float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
	}
}

// Graphs are built once per process: generator cost (especially the
// configuration-model expander) must not pollute engine timings.
var benchGraphs struct {
	once      sync.Once
	path      *graph.Graph
	expander  *graph.Graph
	community *graph.Graph
}

func benchSetup() {
	benchGraphs.once.Do(func() {
		benchGraphs.path = graph.Path(4096)
		benchGraphs.expander = graph.RandomRegular(10_000, 8, 1)
		benchGraphs.community = graph.PlantedCut(512, 512, 8, 0.02, 1)
	})
}

// The serial benchmarks pin DeliveryShards to -1 (explicit serial):
// Options zero now resolves to one shard per CPU, and the regression
// gate needs these workloads to measure the same configuration on
// every runner and against every baseline. The sharded configuration
// is measured by the *Shards variants.

func BenchmarkEnginePathExchange(b *testing.B) {
	benchSetup()
	benchRun(b, benchGraphs.path, Options{DeliveryShards: -1}, exchangeProgram(8))
}

func BenchmarkEngineExpanderExchange(b *testing.B) {
	benchSetup()
	benchRun(b, benchGraphs.expander, Options{DeliveryShards: -1}, exchangeProgram(8))
}

func BenchmarkEngineCommunityExchange(b *testing.B) {
	benchSetup()
	benchRun(b, benchGraphs.community, Options{DeliveryShards: -1}, exchangeProgram(8))
}

// BenchmarkEngineStep* run the same exchange workloads through the
// compiled step path — no goroutines, no park/wake channels, one
// direct call per activation. The Stats of each pair are bit-identical
// (asserted by the differential determinism suite); only the execution
// cost differs. StepExpanderExchange vs ExpanderExchange is the
// headline msgs/s comparison.

func BenchmarkEngineStepPathExchange(b *testing.B) {
	benchSetup()
	benchRun(b, benchGraphs.path, Options{DeliveryShards: -1}, newStepExchange(8))
}

func BenchmarkEngineStepExpanderExchange(b *testing.B) {
	benchSetup()
	benchRun(b, benchGraphs.expander, Options{DeliveryShards: -1}, newStepExchange(8))
}

func BenchmarkEngineStepCommunityExchange(b *testing.B) {
	benchSetup()
	benchRun(b, benchGraphs.community, Options{DeliveryShards: -1}, newStepExchange(8))
}

// BenchmarkEngineStepExpanderShards adds shard-parallel stepping on top
// of sharded delivery: activations and delivery both fan out over
// GOMAXPROCS delivery-shard workers.
func BenchmarkEngineStepExpanderShards(b *testing.B) {
	benchSetup()
	benchRun(b, benchGraphs.expander, Options{DeliveryShards: runtime.GOMAXPROCS(0)}, newStepExchange(8))
}

// BenchmarkEngineExpanderSparse: two nodes chatting on a 10k-node
// expander. The old scheduler paid O(n) per round to find them; the
// sender registry makes this proportional to actual traffic.
func BenchmarkEngineExpanderSparse(b *testing.B) {
	benchSetup()
	g := benchGraphs.expander
	peer := g.Adj(0)[0].Peer
	benchRun(b, g, Options{DeliveryShards: -1}, pingPongProgram(0, peer, 256))
}

// BenchmarkEngineExpanderWorkers runs the dense exchange in lane mode,
// bounding concurrently runnable node programs by GOMAXPROCS.
func BenchmarkEngineExpanderWorkers(b *testing.B) {
	benchSetup()
	benchRun(b, benchGraphs.expander,
		Options{Workers: runtime.GOMAXPROCS(0), DeliveryShards: -1}, exchangeProgram(8))
}

// BenchmarkEngineExpanderShards runs the dense exchange with the
// delivery phase partitioned over GOMAXPROCS shards.
func BenchmarkEngineExpanderShards(b *testing.B) {
	benchSetup()
	benchRun(b, benchGraphs.expander, Options{DeliveryShards: runtime.GOMAXPROCS(0)}, exchangeProgram(8))
}

// Million-scale workloads: graphs the seed engine could not simulate at
// interactive speed (the pre-rewrite scheduler scanned all n nodes per
// round and allocated per edge). Graph generation is excluded from
// timings via ResetTimer; graphs build once per process. All three run
// on reusable engines and report the setup-ns/round-ns split, so the
// regression gate can watch steady-state round cost while the
// kernel-bound setup tax (now paid once per engine, not once per run)
// is tracked separately.
var millionGraphs struct {
	once     sync.Once
	path     *graph.Graph // 2^20 nodes, ~1M edges, diameter n-1
	expander *graph.Graph // 250k nodes x 8-regular = 1M edges
}

func millionSetup(b *testing.B) {
	b.Helper()
	millionGraphs.once.Do(func() {
		millionGraphs.path = graph.Path(1 << 20)
		millionGraphs.expander = graph.RandomRegular(250_000, 8, 1)
	})
	b.ResetTimer()
}

// BenchmarkEngineMillionPathReuse is the engine-reuse headline: one
// warm engine runs the sparse million-node ping-pong twice per
// iteration, and the cold (first ever) and warm (second) setup times
// are reported side by side. Before lazy activation and slab retention
// the first run paid 7-25 s of goroutine stacks and page zeroing; the
// warm run's setup is the dirty-region reset only. Runs first so the
// slabs it releases seed the pools for the other million workloads.
func BenchmarkEngineMillionPathReuse(b *testing.B) {
	millionSetup(b)
	g := millionGraphs.path
	program := pingPongProgram(0, g.Adj(0)[0].Peer, 64)
	eng := NewEngine(Options{Workers: runtime.GOMAXPROCS(0)})
	defer eng.Close()
	var cold, warm int64
	for i := 0; i < b.N; i++ {
		s1, err := eng.Run(g, program)
		if err != nil {
			b.Fatal(err)
		}
		s2, err := eng.Run(g, program)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			cold, warm = s1.SetupNanos, s2.SetupNanos
		}
	}
	b.ReportMetric(float64(cold), "setup-cold-ns")
	b.ReportMetric(float64(warm), "setup-warm-ns")
}

// BenchmarkEngineMillionExpanderExchange: a full exchange round on a
// million-edge 8-regular expander — 2M messages delivered per run with
// every node active, the headline scaling workload.
func BenchmarkEngineMillionExpanderExchange(b *testing.B) {
	millionSetup(b)
	benchRunSplit(b, millionGraphs.expander,
		Options{Workers: runtime.GOMAXPROCS(0), DeliveryShards: runtime.GOMAXPROCS(0)},
		exchangeProgram(1))
}

// BenchmarkEngineMillionStepExpanderExchange is the step-path twin of
// BenchmarkEngineMillionExpanderExchange: 2M messages per run on the
// million-edge expander with every node active, driven as
// shard-parallel state-machine sweeps instead of 250k goroutines.
func BenchmarkEngineMillionStepExpanderExchange(b *testing.B) {
	millionSetup(b)
	benchRunSplit(b, millionGraphs.expander,
		Options{DeliveryShards: runtime.GOMAXPROCS(0)},
		newStepExchange(1))
}

// BenchmarkEngineMillionPathSparse: two adjacent nodes chatting on a
// million-node path — the per-run cost floor for million-node
// simulations. With lazy node activation the 2^20 immediate-exit
// programs recycle a handful of goroutine stacks instead of faulting
// in one per node, and setup-ns isolates what per-run setup remains.
func BenchmarkEngineMillionPathSparse(b *testing.B) {
	millionSetup(b)
	g := millionGraphs.path
	benchRunSplit(b, g, Options{Workers: runtime.GOMAXPROCS(0)},
		pingPongProgram(0, g.Adj(0)[0].Peer, 64))
}
