package congest

import (
	"runtime"
	"sync"
	"testing"

	"distmincut/internal/graph"
)

// BenchmarkEngine* quantify raw scheduler cost on the generator
// families used throughout the experiment suite: paths (long diameter,
// low degree), random-regular expanders (the paper's hard instances),
// and planted-community graphs. Each iteration simulates one full run;
// allocations per op are dominated by the engine's per-round
// bookkeeping, which is what the round-synchronous scheduler is meant
// to eliminate.

const benchKind uint8 = 0x42

// exchangeProgram makes every node trade `rounds` messages with every
// neighbor — the densest uniform load the model admits, exercising
// deliver, matching, and wake-up on every node every round. All sends
// are staged up front (the per-edge FIFOs pipeline them at one per
// round) and the program allocates only one match closure per node, so
// measured allocations are the engine's, not the workload's.
func exchangeProgram(rounds int) func(*Node) {
	return func(nd *Node) {
		match := MatchKind(benchKind)
		for r := 0; r < rounds; r++ {
			nd.SendAll(Message{Kind: benchKind, Tag: uint32(r)})
		}
		for i := rounds * nd.Degree(); i > 0; i-- {
			nd.Recv(match)
		}
	}
}

// pingPongProgram keeps only nodes a and b active: they bounce a token
// for the given number of hops while every other node exits
// immediately. On large graphs this isolates the engine's per-round
// overhead that is independent of traffic volume.
func pingPongProgram(a, b graph.NodeID, hops int) func(*Node) {
	return func(nd *Node) {
		if nd.ID() != a && nd.ID() != b {
			return
		}
		peer := b
		if nd.ID() == b {
			peer = a
		}
		p := nd.PortTo(peer)
		match := MatchKind(benchKind)
		for i := 0; i < hops; i++ {
			if nd.ID() == a {
				nd.Send(p, Message{Kind: benchKind})
				nd.Recv(match)
			} else {
				nd.Recv(match)
				nd.Send(p, Message{Kind: benchKind})
			}
		}
	}
}

func benchRun(b *testing.B, g *graph.Graph, opts Options, program func(*Node)) {
	b.Helper()
	b.ReportAllocs()
	var delivered int64
	for i := 0; i < b.N; i++ {
		stats, err := Run(g, opts, program)
		if err != nil {
			b.Fatal(err)
		}
		delivered = stats.Delivered
	}
	if delivered > 0 {
		b.ReportMetric(float64(delivered)*float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
	}
}

// Graphs are built once per process: generator cost (especially the
// configuration-model expander) must not pollute engine timings.
var benchGraphs struct {
	once      sync.Once
	path      *graph.Graph
	expander  *graph.Graph
	community *graph.Graph
}

func benchSetup() {
	benchGraphs.once.Do(func() {
		benchGraphs.path = graph.Path(4096)
		benchGraphs.expander = graph.RandomRegular(10_000, 8, 1)
		benchGraphs.community = graph.PlantedCut(512, 512, 8, 0.02, 1)
	})
}

func BenchmarkEnginePathExchange(b *testing.B) {
	benchSetup()
	benchRun(b, benchGraphs.path, Options{}, exchangeProgram(8))
}

func BenchmarkEngineExpanderExchange(b *testing.B) {
	benchSetup()
	benchRun(b, benchGraphs.expander, Options{}, exchangeProgram(8))
}

func BenchmarkEngineCommunityExchange(b *testing.B) {
	benchSetup()
	benchRun(b, benchGraphs.community, Options{}, exchangeProgram(8))
}

// BenchmarkEngineExpanderSparse: two nodes chatting on a 10k-node
// expander. The old scheduler paid O(n) per round to find them; the
// sender registry makes this proportional to actual traffic.
func BenchmarkEngineExpanderSparse(b *testing.B) {
	benchSetup()
	g := benchGraphs.expander
	peer := g.Adj(0)[0].Peer
	benchRun(b, g, Options{}, pingPongProgram(0, peer, 256))
}

// BenchmarkEngineExpanderWorkers runs the dense exchange in lane mode,
// bounding concurrently runnable node programs by GOMAXPROCS.
func BenchmarkEngineExpanderWorkers(b *testing.B) {
	benchSetup()
	benchRun(b, benchGraphs.expander, Options{Workers: runtime.GOMAXPROCS(0)}, exchangeProgram(8))
}

// BenchmarkEngineExpanderShards runs the dense exchange with the
// delivery phase partitioned over GOMAXPROCS shards.
func BenchmarkEngineExpanderShards(b *testing.B) {
	benchSetup()
	benchRun(b, benchGraphs.expander, Options{DeliveryShards: runtime.GOMAXPROCS(0)}, exchangeProgram(8))
}

// Million-scale workloads: graphs the seed engine could not simulate at
// interactive speed (the pre-rewrite scheduler scanned all n nodes per
// round and allocated per edge). Graph generation is excluded from
// timings via ResetTimer; graphs build once per process.
var millionGraphs struct {
	once     sync.Once
	path     *graph.Graph // 2^20 nodes, ~1M edges, diameter n-1
	expander *graph.Graph // 250k nodes x 8-regular = 1M edges
}

func millionSetup(b *testing.B) {
	b.Helper()
	millionGraphs.once.Do(func() {
		millionGraphs.path = graph.Path(1 << 20)
		millionGraphs.expander = graph.RandomRegular(250_000, 8, 1)
	})
	b.ResetTimer()
}

// BenchmarkEngineMillionExpanderExchange: a full exchange round on a
// million-edge 8-regular expander — 2M messages delivered per run with
// every node active, the headline scaling workload.
func BenchmarkEngineMillionExpanderExchange(b *testing.B) {
	millionSetup(b)
	benchRun(b, millionGraphs.expander,
		Options{Workers: runtime.GOMAXPROCS(0), DeliveryShards: runtime.GOMAXPROCS(0)},
		exchangeProgram(1))
}

// BenchmarkEngineMillionPathSparse: two adjacent nodes chatting on a
// million-node path. Dominated by engine setup and teardown at n = 2^20
// (goroutine, slab, and kernel page-zeroing churn) — the per-run cost
// floor for million-node simulations. Runs after the expander workload
// so its transient multi-GB footprint cannot distort that measurement.
func BenchmarkEngineMillionPathSparse(b *testing.B) {
	millionSetup(b)
	g := millionGraphs.path
	benchRun(b, g, Options{Workers: runtime.GOMAXPROCS(0)},
		pingPongProgram(0, g.Adj(0)[0].Peer, 64))
}
