package congest

import (
	"runtime/debug"

	"distmincut/internal/graph"
)

// Program is what an engine executes on every node: either a blocking
// goroutine program (a func(*Node) that calls Recv/Sleep and holds its
// state on its own stack) or a compiled StepProgram (an explicit
// round-driven state machine the engine drives as tight shard-parallel
// loops, with no goroutines or channels on the hot path). Run dispatches
// on the dynamic type; any other type fails the run with an error.
//
// Both execution paths share the same coordinator — sender registry,
// delivery (serial or sharded), receive matching, wake-set construction,
// sleepers, budgets, and abort handling — so a step program that parks
// at the same points with the same predicates and sends as its blocking
// twin produces bit-identical Stats and marks (the guarantee the
// differential determinism suite enforces for every dual-implementation
// protocol in this repository).
type Program any

// StepProgram is the compiled form of a node program: instead of
// blocking in Recv or Sleep, each activation is an explicit step that
// returns how it ended (a Park). The engine runs activations as plain
// function calls on the coordinator — or fanned out over the delivery
// shards — so the per-activation cost is a call into a state slab
// instead of a goroutine wake/park handshake.
//
// Contract:
//   - InitRun is called once per Run, after engine setup and before the
//     first activation, with the graph's node count. Implementations
//     (re)allocate their per-node state slabs here; reusing a slab whose
//     capacity suffices keeps warm runs allocation-free.
//   - Step runs one activation of nd. The first call per node is its
//     initial activation (round 0); each later call means the node's
//     previous Park was satisfied — its Recv predicate matched a
//     buffered message (consume it via Node.StepRecv) or its sleep
//     expired. Step may use every non-blocking Node method (Send,
//     SendAll, StepRecv, TryRecv, Mark, Rand, Round, ...); calling the
//     blocking Recv or Sleep from a step program panics (surfacing as a
//     *PanicError), since there is no goroutine to park.
//   - Step must be safe for concurrent calls on distinct nodes: the
//     engine steps different nodes from different shard workers.
//     Per-node state indexed by nd.ID() satisfies this; shared state
//     must be read-only during the run.
//
// A StepProgram must reproduce its blocking twin's activation structure
// exactly — same sends, same park predicates, same park points — for
// the two execution paths to produce identical Stats. The Recv pattern
// translates mechanically: a blocking nd.Recv(match) becomes "consume
// with StepRecv(match) if present, else return ParkRecv(match) and
// resume here on the next Step".
type StepProgram interface {
	InitRun(n int)
	Step(nd *Node) Park
}

// Park describes how a step-program activation ended: the program
// exited (ParkDone), parked waiting for a matching message (ParkRecv),
// or parked for a number of rounds (ParkSleep). The zero value is
// ParkDone.
type Park struct {
	status stepStatus
	match  MatchFunc
	rounds int
}

type stepStatus uint8

const (
	stepDone stepStatus = iota
	stepRecv
	stepSleep
)

// ParkDone ends the node's program: it will not be activated again this
// run (mirrors the blocking program returning).
func ParkDone() Park { return Park{} }

// ParkRecv parks the node until a buffered or newly delivered message
// satisfies match, exactly like a blocking Recv that found nothing
// buffered. The next Step call should consume the message via
// Node.StepRecv with the same predicate.
func ParkRecv(match MatchFunc) Park { return Park{status: stepRecv, match: match} }

// ParkSleep parks the node for the given number of rounds (at least
// one), exactly like the blocking Node.Sleep.
func ParkSleep(rounds int) Park { return Park{status: stepSleep, rounds: rounds} }

// Done reports whether the park ends the program (useful to program
// combinators that chain sub-machines, e.g. StepSeq).
func (p Park) Done() bool { return p.status == stepDone }

// StepSeq chains step programs sequentially: each node runs the
// sub-programs in order, entering sub-program i+1 within the same
// activation its i-th one finishes — exactly how a blocking program
// falls through from one protocol phase into the next without parking.
// Sub-programs pass results through their own concrete state (e.g. a
// StepBFS exposes the overlays the next collective reads); nodes
// advance independently, with no global synchronization between
// sub-programs.
type StepSeq struct {
	subs []StepProgram
	idx  []int32
}

// NewStepSeq returns the sequential composition of subs.
func NewStepSeq(subs ...StepProgram) *StepSeq {
	return &StepSeq{subs: subs}
}

// InitRun initializes every sub-program and resets the per-node phase
// cursors.
func (s *StepSeq) InitRun(n int) {
	for _, sub := range s.subs {
		sub.InitRun(n)
	}
	if cap(s.idx) < n {
		s.idx = make([]int32, n)
	} else {
		s.idx = s.idx[:n]
		for i := range s.idx {
			s.idx[i] = 0
		}
	}
}

// Step advances nd's current sub-program, falling through to the next
// one whenever it finishes inside this activation.
func (s *StepSeq) Step(nd *Node) Park {
	i := s.idx[nd.ID()]
	for int(i) < len(s.subs) {
		park := s.subs[i].Step(nd)
		if !park.Done() {
			return park
		}
		i++
		s.idx[nd.ID()] = i
	}
	return ParkDone()
}

// parallelStepMin is the wake-count threshold below which step dispatch
// stays on the coordinator even when shards exist (fanning out a
// handful of activations costs more than running them inline).
const parallelStepMin = 64

// dispatchStep runs one activation of every node in wake by calling the
// step program directly — the step-mode counterpart of dispatch. Small
// wakes run inline on the coordinator; large ones are split into
// contiguous chunks over the delivery-shard workers, each stepping its
// chunk sequentially and collecting sleep/done notifications into a
// shard-local list the coordinator merges in shard order. Chunk
// boundaries never affect Stats: activations touch only their own
// node's state and stage sends through the same lock-free registry the
// goroutine path uses.
func (e *Engine) dispatchStep(wake []*Node) {
	if len(wake) == 0 {
		return
	}
	if len(e.shards) > 1 && len(wake) >= parallelStepMin {
		e.curWake = wake
		per := (len(wake) + len(e.shards) - 1) / len(e.shards)
		for i, sh := range e.shards {
			sh.stepLo = i * per
			if sh.stepLo > len(wake) {
				sh.stepLo = len(wake)
			}
			sh.stepHi = sh.stepLo + per
			if sh.stepHi > len(wake) {
				sh.stepHi = len(wake)
			}
			sh.taskCh <- taskStep
		}
		for range e.shards {
			<-e.shardDone
		}
		for _, sh := range e.shards {
			e.notified = append(e.notified, sh.stepNotified...)
			sh.stepNotified = sh.stepNotified[:0]
		}
		return
	}
	for _, nd := range wake {
		e.stepNode(nd, &e.notified)
	}
}

// stepRange steps this shard's chunk of the current wake list.
func (sh *deliveryShard) stepRange() {
	e := sh.eng
	for _, nd := range e.curWake[sh.stepLo:sh.stepHi] {
		e.stepNode(nd, &sh.stepNotified)
	}
}

// stepNode runs one activation of nd and applies its Park — the
// step-mode equivalent of the goroutine path's wake + park handshake.
// Park bookkeeping mirrors Node.park exactly (parkGen increments on
// every park; sleep and done notifications queue for the coordinator;
// Recv parks need no attention), so the shared coordinator sees the
// same node states in both modes.
func (e *Engine) stepNode(nd *Node, notified *[]*Node) {
	park := e.safeStep(nd)
	switch park.status {
	case stepRecv:
		if park.match == nil {
			nd.panicVal = &PanicError{Node: nd.id, Value: "step program returned ParkRecv with a nil match"}
			nd.phase = phaseDone
			*notified = append(*notified, nd)
			return
		}
		nd.match = park.match
		nd.parkGen++
		nd.phase = phaseRecv
	case stepSleep:
		r := park.rounds
		if r < 1 {
			r = 1
		}
		nd.wakeAt = e.round + r
		nd.parkGen++
		nd.phase = phaseSleep
		*notified = append(*notified, nd)
	default: // stepDone
		nd.phase = phaseDone
		*notified = append(*notified, nd)
	}
}

// safeStep calls the step program with the same panic barrier the
// goroutine path gives node programs: a panic fails the node (becoming
// the run's *PanicError) instead of the process, and the node is
// treated as done so the round can finish before the abort.
func (e *Engine) safeStep(nd *Node) (park Park) {
	defer func() {
		if r := recover(); r != nil {
			nd.panicVal = &PanicError{Node: nd.id, Value: r, Stack: string(debug.Stack())}
			park = Park{}
		}
	}()
	return e.stepProg.Step(nd)
}

// FixedOverlaySlab is a trivial helper for step programs that need
// per-node precomputed data keyed by node ID; exported packages build
// richer sources (e.g. proto.StepBFS) on the same shape.
type FixedOverlaySlab[T any] struct{ Slab []T }

// At returns the slab entry for id.
func (f FixedOverlaySlab[T]) At(id graph.NodeID) T { return f.Slab[id] }
