package congest

import (
	"fmt"
	"strings"
	"sync/atomic"

	"distmincut/internal/graph"
)

// Progress is a gauge a running simulation updates at every round
// boundary (see Options.Progress). All methods are safe to call from
// any goroutine while the run is in flight; values are monotone and
// settle at the run's final Stats when it ends.
type Progress struct {
	round     atomic.Int64
	delivered atomic.Int64
}

// Round returns the round number most recently completed.
func (p *Progress) Round() int { return int(p.round.Load()) }

// Delivered returns the cumulative messages delivered so far.
func (p *Progress) Delivered() int64 { return p.delivered.Load() }

// Mark is a named round timestamp recorded by a node program, used by
// the experiment harness and the span parser in package distmincut to
// attribute rounds, messages, and wall time to pipeline phases.
type Mark struct {
	Label string
	Round int
	Node  graph.NodeID
	// Delivered is the run's cumulative delivered-message count when
	// the mark was recorded; the delta between an end: and begin: mark
	// is the phase's message cost.
	Delivered int64
	// Nanos is wall time in nanoseconds from Run entry (engine setup
	// included) to the mark. Unlike the round and message fields it is
	// a clock reading, not part of the deterministic accounting.
	Nanos int64
}

// Stats summarizes one simulation run.
type Stats struct {
	// Rounds is the index of the last round in which a message was
	// delivered or a sleeping node was due — the CONGEST time
	// complexity of the run.
	Rounds int
	// Sent counts messages staged by node programs; Delivered counts
	// messages actually transmitted (equal unless the run aborted).
	Sent      int64
	Delivered int64
	// Wakeups counts node activations; the simulator's work is
	// proportional to this plus Delivered, independent of idle rounds.
	Wakeups int64
	// Leftover counts messages delivered but never consumed by a Recv.
	// Protocols in this repository are expected to drain their traffic;
	// tests assert Leftover == 0.
	Leftover int64
	// DirtyNodes counts the nodes that sent at least one message — the
	// size of the dirty set that bounds the warm engine's per-run
	// teardown and queue-reset walks.
	DirtyNodes int
	// Marks are the phase timestamps recorded via Node.Mark.
	Marks []Mark
	// SetupNanos is the wall time this run spent in per-run engine
	// setup (slab acquisition, queue carving, node initialization —
	// everything before the first node activation). It is a wall-clock
	// measurement, not part of the deterministic accounting above: a
	// warm reused engine reports near-zero here, a cold one the full
	// allocation cost. Benchmarks surface it as the setup-ns metric.
	SetupNanos int64
}

// MessageBits returns the total bits transmitted, charging each message
// its full fixed-format size (kind byte + tag + payload words).
func (s *Stats) MessageBits() int64 {
	const bitsPerMessage = 8 + 32 + 64*PayloadWords
	return s.Delivered * bitsPerMessage
}

// PhaseRounds extracts, for consecutive marks with the same label
// prefix "begin:"/"end:", the round span of each phase. Unpaired marks
// are ignored.
func (s *Stats) PhaseRounds() map[string]int {
	begin := map[string]int{}
	spans := map[string]int{}
	for _, m := range s.Marks {
		switch {
		case strings.HasPrefix(m.Label, "begin:"):
			begin[m.Label[len("begin:"):]] = m.Round
		case strings.HasPrefix(m.Label, "end:"):
			name := m.Label[len("end:"):]
			if b, ok := begin[name]; ok {
				spans[name] += m.Round - b
				delete(begin, name)
			}
		}
	}
	return spans
}

// String renders a one-line summary.
func (s *Stats) String() string {
	return fmt.Sprintf("rounds=%d sent=%d delivered=%d wakeups=%d leftover=%d",
		s.Rounds, s.Sent, s.Delivered, s.Wakeups, s.Leftover)
}
