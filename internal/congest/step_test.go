package congest

import (
	"errors"
	"strings"
	"testing"

	"distmincut/internal/graph"
)

// stepPingPong is the step form of the two-node token bounce in
// TestPingPongRounds: node 0 sends the token and awaits its return k
// times; node 1 echoes whatever arrives.
type stepPingPong struct {
	k  int
	st []stepPingPongState
}

type stepPingPongState struct {
	started bool
	i       int
	match   MatchFunc
}

func (p *stepPingPong) InitRun(n int) {
	if cap(p.st) < n {
		p.st = make([]stepPingPongState, n)
	} else {
		p.st = p.st[:n]
		for i := range p.st {
			p.st[i] = stepPingPongState{}
		}
	}
}

func (p *stepPingPong) Step(nd *Node) Park {
	st := &p.st[nd.ID()]
	if !st.started {
		st.started = true
		st.match = MatchKindTag(kindToken, 0)
	}
	for st.i < p.k {
		if nd.ID() == 0 {
			// Each iteration: send, then await the echo.
			_, m, ok := nd.StepRecv(st.match)
			if !ok {
				nd.Send(0, Message{Kind: kindToken, A: int64(st.i)})
				return ParkRecv(st.match)
			}
			if m.A != int64(st.i) {
				panic("token payload corrupted")
			}
			st.i++
		} else {
			_, m, ok := nd.StepRecv(st.match)
			if !ok {
				return ParkRecv(st.match)
			}
			nd.Send(0, m)
			st.i++
		}
	}
	return ParkDone()
}

// TestStepPingPongRounds mirrors TestPingPongRounds on the step path:
// same token bounce, same exact 2k-round accounting.
func TestStepPingPongRounds(t *testing.T) {
	g := graph.Path(2)
	const k = 7
	stats, err := Run(g, Options{}, &stepPingPong{k: k})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 2*k {
		t.Fatalf("step ping-pong rounds = %d, want %d", stats.Rounds, 2*k)
	}
	if stats.Leftover != 0 {
		t.Fatalf("leftover = %d, want 0", stats.Leftover)
	}
}

// stepFuncProgram adapts per-node step closures for small tests: state
// lives in the closure environment keyed by node ID.
type stepFuncProgram struct {
	init func(n int)
	step func(nd *Node) Park
}

func (p *stepFuncProgram) InitRun(n int) {
	if p.init != nil {
		p.init(n)
	}
}
func (p *stepFuncProgram) Step(nd *Node) Park { return p.step(nd) }

// TestStepSleepFastForward: all nodes sleep with no traffic in flight;
// the engine must fast-forward the round clock to the wake deadline
// exactly as it does for blocking sleepers.
func TestStepSleepFastForward(t *testing.T) {
	g := graph.Path(3)
	var slept []bool
	prog := &stepFuncProgram{
		init: func(n int) { slept = make([]bool, n) },
		step: func(nd *Node) Park {
			if !slept[nd.ID()] {
				slept[nd.ID()] = true
				return ParkSleep(100)
			}
			return ParkDone()
		},
	}
	stats, err := Run(g, Options{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 100 {
		t.Fatalf("rounds = %d, want 100 (fast-forward)", stats.Rounds)
	}
	if stats.Wakeups != int64(g.N()) {
		t.Fatalf("wakeups = %d, want %d", stats.Wakeups, g.N())
	}
}

// TestStepDeadlock: step nodes parked in Recv with nothing in flight
// must trip the same ErrDeadlock as blocking ones.
func TestStepDeadlock(t *testing.T) {
	g := graph.Path(2)
	prog := &stepFuncProgram{
		step: func(nd *Node) Park { return ParkRecv(MatchAny) },
	}
	_, err := Run(g, Options{}, prog)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

// TestStepPanic: a panic inside Step must surface as a *PanicError
// naming the node, like a panic in a blocking program.
func TestStepPanic(t *testing.T) {
	g := graph.Path(4)
	prog := &stepFuncProgram{
		step: func(nd *Node) Park {
			if nd.ID() == 2 {
				panic("step boom")
			}
			return ParkDone()
		},
	}
	_, err := Run(g, Options{}, prog)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Node != 2 || pe.Value != "step boom" {
		t.Fatalf("panic error = %+v", pe)
	}
}

// TestStepNilMatchPark: returning ParkRecv(nil) is a program bug the
// engine must fail loudly (as a PanicError), not crash on.
func TestStepNilMatchPark(t *testing.T) {
	g := graph.Path(2)
	prog := &stepFuncProgram{
		step: func(nd *Node) Park {
			nd.SendAll(Message{Kind: kindData})
			return ParkRecv(nil)
		},
	}
	_, err := Run(g, Options{}, prog)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if !strings.Contains(pe.Error(), "nil match") {
		t.Fatalf("error %q does not mention the nil match", pe.Error())
	}
}

// TestStepBlockingCallPanics: calling the blocking Recv from a step
// program must fail the run with a descriptive PanicError instead of
// deadlocking the coordinator.
func TestStepBlockingCallPanics(t *testing.T) {
	g := graph.Path(2)
	prog := &stepFuncProgram{
		step: func(nd *Node) Park {
			nd.Recv(MatchAny) // illegal: no goroutine to park
			return ParkDone()
		},
	}
	_, err := Run(g, Options{}, prog)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if !strings.Contains(pe.Error(), "step program") {
		t.Fatalf("error %q does not mention step programs", pe.Error())
	}
}

// TestStepUnknownProgramType: Run must reject program values that are
// neither blocking functions nor StepPrograms.
func TestStepUnknownProgramType(t *testing.T) {
	g := graph.Path(2)
	if _, err := Run(g, Options{}, 42); err == nil {
		t.Fatal("Run accepted an int as a program")
	}
	e := NewEngine(Options{})
	defer e.Close()
	if _, err := e.Run(g, nil); err == nil {
		t.Fatal("Run accepted a nil program")
	}
	// The engine must remain usable after the rejection.
	if _, err := e.Run(g, &stepPingPong{k: 1}); err != nil {
		t.Fatalf("engine unusable after rejected program: %v", err)
	}
}

// TestStepSeqChaining: a StepSeq must enter the next sub-program within
// the same activation the previous one finishes — two no-send phases
// chained over three nodes complete in zero rounds, and phase results
// flow through program state.
func TestStepSeqChaining(t *testing.T) {
	g := graph.Path(3)
	var order [][]int
	mk := func(tag int) *stepFuncProgram {
		return &stepFuncProgram{
			init: func(n int) {
				if tag == 0 {
					order = make([][]int, n)
				}
			},
			step: func(nd *Node) Park {
				order[nd.ID()] = append(order[nd.ID()], tag)
				return ParkDone()
			},
		}
	}
	stats, err := Run(g, Options{}, NewStepSeq(mk(0), mk(1), mk(2)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 0 {
		t.Fatalf("rounds = %d, want 0 (all phases chain in the initial activation)", stats.Rounds)
	}
	for id, got := range order {
		if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
			t.Fatalf("node %d phase order = %v, want [0 1 2]", id, got)
		}
	}
}

// TestStepSeqAcrossRounds: sub-programs that park still hand off
// correctly — a sleep phase followed by an exchange phase.
func TestStepSeqAcrossRounds(t *testing.T) {
	g := graph.Complete(4)
	sleeper := &stepFuncProgram{}
	var slept []bool
	sleeper.init = func(n int) { slept = make([]bool, n) }
	sleeper.step = func(nd *Node) Park {
		if !slept[nd.ID()] {
			slept[nd.ID()] = true
			return ParkSleep(3)
		}
		return ParkDone()
	}
	stats, err := Run(g, Options{}, NewStepSeq(sleeper, newStepExchange(2)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Leftover != 0 {
		t.Fatalf("leftover = %d, want 0", stats.Leftover)
	}
	if stats.Rounds < 3+2 {
		t.Fatalf("rounds = %d, want >= 5 (3 sleep + 2 exchange)", stats.Rounds)
	}
	wantMsgs := int64(g.N() * (g.N() - 1) * 2)
	if stats.Delivered != wantMsgs {
		t.Fatalf("delivered = %d, want %d", stats.Delivered, wantMsgs)
	}
}

// TestStepShardedMatchesSerial: the sharded step dispatch (contiguous
// wake chunks over the delivery-shard workers) must produce the same
// Stats as serial step dispatch. Uses a graph large enough to clear
// parallelStepMin so the fan-out path actually runs.
func TestStepShardedMatchesSerial(t *testing.T) {
	g := graph.RandomRegular(256, 6, 7)
	serial, err := Run(g, Options{Seed: 3, DeliveryShards: -1}, newStepExchange(4))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Run(g, Options{Seed: 3, DeliveryShards: 4}, newStepExchange(4))
	if err != nil {
		t.Fatal(err)
	}
	if keyOf(serial) != keyOf(sharded) {
		t.Fatalf("sharded step stats %+v != serial step stats %+v", keyOf(sharded), keyOf(serial))
	}
	if serial.Delivered == 0 {
		t.Fatal("exchange delivered nothing")
	}
}
