package congest

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"distmincut/internal/graph"
)

const (
	kindToken uint8 = iota + 1
	kindFlood
	kindData
)

// TestPingPongRounds: two nodes bounce a token k times; the run must
// take exactly 2k rounds (one round per hop).
func TestPingPongRounds(t *testing.T) {
	g := graph.Path(2)
	const k = 7
	stats, err := Run(g, Options{}, func(nd *Node) {
		for i := 0; i < k; i++ {
			if nd.ID() == 0 {
				nd.Send(0, Message{Kind: kindToken, A: int64(i)})
				_, m := nd.RecvKindTag(kindToken, 0)
				if m.A != int64(i) {
					panic("token payload corrupted")
				}
			} else {
				_, m := nd.RecvKindTag(kindToken, 0)
				nd.Send(0, m)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 2*k {
		t.Fatalf("ping-pong rounds = %d, want %d", stats.Rounds, 2*k)
	}
	if stats.Leftover != 0 {
		t.Fatalf("leftover = %d, want 0", stats.Leftover)
	}
}

// TestFloodFillRounds: a token floods from node 0; every node learns it
// at a round equal to its BFS distance.
func TestFloodFillRounds(t *testing.T) {
	g := graph.Grid(5, 8)
	dist, _ := graph.BFS(g, 0)
	got := make([]int, g.N())
	stats, err := Run(g, Options{}, func(nd *Node) {
		if nd.ID() == 0 {
			nd.SendAll(Message{Kind: kindFlood})
			got[0] = 0
			return
		}
		nd.Recv(MatchKind(kindFlood))
		got[nd.ID()] = nd.Round()
		nd.SendAll(Message{Kind: kindFlood})
		// Absorb floods from remaining neighbors so nothing is left over.
		for i := 0; i < nd.Degree()-1; i++ {
			nd.Recv(MatchKind(kindFlood))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range got {
		if got[v] != dist[v] {
			t.Fatalf("node %d flooded at round %d, BFS distance %d", v, got[v], dist[v])
		}
	}
	ecc := 0
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	// Last delivery happens one round after the farthest node re-floods.
	if stats.Rounds < ecc || stats.Rounds > ecc+1 {
		t.Fatalf("flood rounds = %d, eccentricity = %d", stats.Rounds, ecc)
	}
}

// TestPipeliningCharge: sending k messages over one edge must take
// exactly k rounds — the per-edge FIFO models CONGEST bandwidth.
func TestPipeliningCharge(t *testing.T) {
	g := graph.Path(2)
	const k = 25
	stats, err := Run(g, Options{}, func(nd *Node) {
		if nd.ID() == 0 {
			for i := 0; i < k; i++ {
				nd.Send(0, Message{Kind: kindData, A: int64(i)})
			}
			return
		}
		for i := 0; i < k; i++ {
			_, m := nd.Recv(MatchKind(kindData))
			if m.A != int64(i) {
				panic("FIFO order violated")
			}
			if nd.Round() != i+1 {
				panic("pipelining round charge wrong")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != k {
		t.Fatalf("pipelined transfer rounds = %d, want %d", stats.Rounds, k)
	}
}

// TestUnboundedDelivery: with Options.Unbounded the same transfer takes
// one round (LOCAL-model ablation).
func TestUnboundedDelivery(t *testing.T) {
	g := graph.Path(2)
	const k = 25
	stats, err := Run(g, Options{Unbounded: true}, func(nd *Node) {
		if nd.ID() == 0 {
			for i := 0; i < k; i++ {
				nd.Send(0, Message{Kind: kindData, A: int64(i)})
			}
			return
		}
		for i := 0; i < k; i++ {
			nd.Recv(MatchKind(kindData))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 1 {
		t.Fatalf("unbounded transfer rounds = %d, want 1", stats.Rounds)
	}
}

// TestSleepFastForward: idle sleeping must advance the round counter
// without per-round work, and Sleep must wake at the exact round.
func TestSleepFastForward(t *testing.T) {
	g := graph.Path(3)
	const target = 1000
	stats, err := Run(g, Options{}, func(nd *Node) {
		nd.Sleep(target)
		if nd.Round() != target {
			panic("woke at wrong round")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != target {
		t.Fatalf("rounds = %d, want %d", stats.Rounds, target)
	}
	if stats.Wakeups > 10 {
		t.Fatalf("fast-forward did %d wakeups; idle rounds were not skipped", stats.Wakeups)
	}
}

// TestSelectiveReceive: messages of a later kind must not disturb a
// Recv waiting for an earlier kind, and stay buffered for later.
func TestSelectiveReceive(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, Options{}, func(nd *Node) {
		if nd.ID() == 0 {
			nd.Send(0, Message{Kind: kindData, A: 99}) // arrives first
			nd.Send(0, Message{Kind: kindToken, A: 1}) // arrives second
			return
		}
		_, m := nd.Recv(MatchKind(kindToken)) // waits past the data msg
		if m.A != 1 {
			panic("wrong token")
		}
		_, m2 := nd.Recv(MatchKind(kindData))
		if m2.A != 99 {
			panic("buffered data lost")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, Options{}, func(nd *Node) {
		nd.Recv(MatchKind(kindToken)) // nobody ever sends
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestPanicPropagation(t *testing.T) {
	g := graph.Cycle(4)
	_, err := Run(g, Options{}, func(nd *Node) {
		if nd.ID() == 2 {
			panic("boom")
		}
		nd.Recv(MatchKind(kindToken))
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if pe.Node != 2 || !strings.Contains(pe.Error(), "boom") {
		t.Fatalf("wrong panic attribution: %v", pe)
	}
}

func TestMaxRoundsAborts(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, Options{MaxRounds: 10}, func(nd *Node) {
		for {
			if nd.ID() == 0 {
				nd.Send(0, Message{Kind: kindToken})
				nd.RecvKindTag(kindToken, 0)
			} else {
				nd.RecvKindTag(kindToken, 0)
				nd.Send(0, Message{Kind: kindToken})
			}
		}
	})
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded match", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if be.RoundLimit != 10 || !be.Deadline.IsZero() {
		t.Fatalf("BudgetError = %+v, want RoundLimit=10, zero Deadline", be)
	}
	if be.Rounds <= 10 {
		t.Fatalf("BudgetError.Rounds = %d, want > 10", be.Rounds)
	}
}

func TestDeadlineAborts(t *testing.T) {
	g := graph.Path(2)
	ping := func(nd *Node) {
		for {
			if nd.ID() == 0 {
				nd.Send(0, Message{Kind: kindToken})
				nd.RecvKindTag(kindToken, 0)
			} else {
				nd.RecvKindTag(kindToken, 0)
				nd.Send(0, Message{Kind: kindToken})
			}
		}
	}
	deadline := time.Now().Add(20 * time.Millisecond)
	stats, err := Run(g, Options{Deadline: deadline}, ping)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, must not match ErrMaxRounds on a wall-clock trip", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if !be.Deadline.Equal(deadline) || be.RoundLimit != 0 {
		t.Fatalf("BudgetError = %+v, want Deadline=%v, RoundLimit=0", be, deadline)
	}
	if be.Rounds <= 0 || be.Messages <= 0 {
		t.Fatalf("BudgetError = %+v, want partial progress recorded", be)
	}
	if stats == nil || stats.Rounds != be.Rounds {
		t.Fatalf("partial stats = %+v, want Rounds=%d", stats, be.Rounds)
	}

	// An already-expired deadline aborts at the first boundary, and the
	// engine stays reusable: a warm rerun without the deadline matches a
	// fresh bounded run.
	e := NewEngine(Options{Deadline: time.Now().Add(-time.Second)})
	if _, err := e.Run(g, ping); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("expired deadline: err = %v, want ErrBudgetExceeded", err)
	}
	bounded := func(nd *Node) {
		for i := 0; i < 5; i++ {
			if nd.ID() == 0 {
				nd.Send(0, Message{Kind: kindToken})
				nd.RecvKindTag(kindToken, 0)
			} else {
				nd.RecvKindTag(kindToken, 0)
				nd.Send(0, Message{Kind: kindToken})
			}
		}
	}
	e.SetOptions(Options{})
	warm, err := e.Run(g, bounded)
	if err != nil {
		t.Fatalf("warm rerun after deadline abort: %v", err)
	}
	e.Close()
	fresh, err := Run(g, Options{}, bounded)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Rounds != fresh.Rounds || warm.Delivered != fresh.Delivered {
		t.Fatalf("warm stats %+v != fresh %+v after deadline abort", warm, fresh)
	}
}

// TestDeterminism: identical runs produce identical stats, including on
// graphs where many nodes are active simultaneously with RNG use.
func TestDeterminism(t *testing.T) {
	g := graph.GNP(40, 0.2, 3)
	run := func() *Stats {
		stats, err := Run(g, Options{Seed: 5}, func(nd *Node) {
			// Send a random number of data messages to every neighbor,
			// then an end marker; consume until every port delivered
			// its marker. Terminates regardless of scheduling.
			reps := 2 + nd.Rand().Intn(3)
			for i := 0; i < reps; i++ {
				nd.SendAll(Message{Kind: kindData, Tag: uint32(i), A: int64(nd.ID())})
			}
			nd.SendAll(Message{Kind: kindToken})
			for markers := 0; markers < nd.Degree(); {
				_, m := nd.Recv(MatchAny)
				if m.Kind == kindToken {
					markers++
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds || a.Sent != b.Sent || a.Delivered != b.Delivered || a.Wakeups != b.Wakeups {
		t.Fatalf("non-deterministic runs: %v vs %v", a, b)
	}
}

// TestMarkPhases: phase accounting via begin:/end: marks.
func TestMarkPhases(t *testing.T) {
	g := graph.Path(2)
	stats, err := Run(g, Options{}, func(nd *Node) {
		if nd.ID() != 0 {
			nd.RecvKindTag(kindData, 0)
			return
		}
		nd.Mark("begin:xfer")
		nd.Send(0, Message{Kind: kindData})
		nd.Sleep(5)
		nd.Mark("end:xfer")
	})
	if err != nil {
		t.Fatal(err)
	}
	spans := stats.PhaseRounds()
	if spans["xfer"] != 5 {
		t.Fatalf("phase span = %d, want 5", spans["xfer"])
	}
}

// Property test: queue preserves FIFO order under interleaved push/pop
// and removeAt of matching elements.
func TestQueueProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		var q queue
		var pool bufPool
		var model []Message
		next := int64(0)
		for _, op := range ops {
			switch op % 3 {
			case 0:
				m := Message{A: next}
				next++
				q.push(&pool, m)
				model = append(model, m)
			case 1:
				gm, gok := q.pop(&pool)
				if len(model) == 0 {
					if gok {
						return false
					}
					continue
				}
				wm := model[0]
				model = model[1:]
				if !gok || gm != wm {
					return false
				}
			case 2:
				if q.len() == 0 {
					continue
				}
				i := int(op) % q.len()
				gm := q.removeAt(&pool, i)
				wm := model[i]
				model = append(model[:i], model[i+1:]...)
				if gm != wm {
					return false
				}
			}
		}
		if q.len() != len(model) {
			return false
		}
		for i := range model {
			if q.at(i) != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestWeightsAndTopologyVisible: node programs see neighbor IDs, edge
// weights, and edge IDs consistent with the input graph.
func TestWeightsAndTopologyVisible(t *testing.T) {
	g := graph.AssignWeights(graph.Cycle(6), 2, 9, 4)
	_, err := Run(g, Options{}, func(nd *Node) {
		for p := 0; p < nd.Degree(); p++ {
			e := g.Edge(nd.EdgeID(p))
			if e.Other(nd.ID()) != nd.Peer(p) || e.W != nd.EdgeWeight(p) {
				panic("topology view inconsistent")
			}
			if nd.PortTo(nd.Peer(p)) != p {
				panic("PortTo inconsistent")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
