package congest

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"distmincut/internal/graph"
)

// statsKey is the deterministic portion of Stats: every field except
// Marks, whose intra-round interleaving is scheduling-dependent.
type statsKey struct {
	rounds                   int
	sent, delivered, wakeups int64
	leftover                 int64
}

func keyOf(s *Stats) statsKey {
	return statsKey{s.Rounds, s.Sent, s.Delivered, s.Wakeups, s.Leftover}
}

// chatterProgram is a randomized, RNG-driven workload: every node sends
// a random number of messages to each neighbor followed by an end
// marker, and consumes traffic until every port delivered its marker.
// It terminates under any scheduling and exercises Send, selective
// Recv, Sleep, and the sender registry together.
func chatterProgram(nd *Node) {
	const (
		kData  uint8 = 3
		kClose uint8 = 4
	)
	reps := 1 + nd.Rand().Intn(4)
	for i := 0; i < reps; i++ {
		nd.SendAll(Message{Kind: kData, Tag: uint32(i), A: int64(nd.ID())})
	}
	if nd.Rand().Intn(2) == 0 {
		nd.Sleep(1 + nd.Rand().Intn(3))
	}
	nd.SendAll(Message{Kind: kClose})
	for markers := 0; markers < nd.Degree(); {
		_, m := nd.Recv(MatchAny)
		if m.Kind == kClose {
			markers++
		}
	}
}

// determinismFamilies are the generator families the scheduler is
// checked on: path (long diameter), expander (the paper's hard
// instances), planted communities, and a dense clique.
func determinismFamilies() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":      graph.Path(64),
		"expander":  graph.RandomRegular(64, 6, 11),
		"community": graph.PlantedCut(24, 24, 4, 0.2, 11),
		"complete":  graph.Complete(16),
	}
}

// TestDeterminismAcrossModes: for the same seed, every execution mode —
// goroutine-per-node, lane mode (several widths), sharded delivery
// (several shard counts), and their combinations — must produce
// bit-identical Stats on every generator family.
func TestDeterminismAcrossModes(t *testing.T) {
	gp := runtime.GOMAXPROCS(0)
	modes := []struct {
		name            string
		workers, shards int
	}{
		{"serial", 0, 0},
		{"serial-again", 0, 0},
		{"workers-1", 1, 0},
		{"workers-2", 2, 0},
		{"workers-gomaxprocs", gp, 0},
		{"shards-2", 0, 2},
		{"shards-3", 0, 3},
		{"shards-gomaxprocs", 0, gp},
		{"workers-2-shards-2", 2, 2},
		{"workers-gomaxprocs-shards-4", gp, 4},
	}
	for name, g := range determinismFamilies() {
		t.Run(name, func(t *testing.T) {
			var want statsKey
			for i, m := range modes {
				stats, err := Run(g, Options{Seed: 42, Workers: m.workers, DeliveryShards: m.shards}, chatterProgram)
				if err != nil {
					t.Fatalf("%s: %v", m.name, err)
				}
				got := keyOf(stats)
				if i == 0 {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("%s stats diverged: got %+v, want %+v", m.name, got, want)
				}
			}
			if want.leftover != 0 {
				t.Fatalf("workload left %d unconsumed messages", want.leftover)
			}
		})
	}
}

// TestReusedEngineDeterminism: a reused engine must produce
// bit-identical Stats to a fresh engine, on every generator family and
// execution mode — across repeat runs on the same graph (the warm
// dirty-region reset path) and across runs that interleave different
// graphs on one engine (the slab-reuse-with-rebuild path).
func TestReusedEngineDeterminism(t *testing.T) {
	gp := runtime.GOMAXPROCS(0)
	modes := []struct {
		name            string
		workers, shards int
	}{
		{"serial", 0, -1},
		{"workers-2", 2, -1},
		{"shards-2", 0, 2},
		{"workers-gomaxprocs-shards-gomaxprocs", gp, gp},
	}
	families := determinismFamilies()
	for _, m := range modes {
		opts := Options{Seed: 42, Workers: m.workers, DeliveryShards: m.shards}
		t.Run(m.name, func(t *testing.T) {
			// Fresh-engine baselines.
			want := map[string]statsKey{}
			for name, g := range families {
				stats, err := Run(g, opts, chatterProgram)
				if err != nil {
					t.Fatalf("%s fresh: %v", name, err)
				}
				want[name] = keyOf(stats)
			}
			// One engine, three consecutive runs per family: run 2 and 3
			// exercise the warm same-graph path.
			for name, g := range families {
				eng := NewEngine(opts)
				for i := 0; i < 3; i++ {
					stats, err := eng.Run(g, chatterProgram)
					if err != nil {
						t.Fatalf("%s reuse run %d: %v", name, i, err)
					}
					if got := keyOf(stats); got != want[name] {
						t.Fatalf("%s reuse run %d diverged: got %+v, want %+v", name, i, got, want[name])
					}
				}
				eng.Close()
			}
			// One engine across every family, twice over: each switch
			// rebuilds port tables while keeping whatever slabs fit.
			eng := NewEngine(opts)
			defer eng.Close()
			order := []string{"path", "expander", "community", "complete"}
			for round := 0; round < 2; round++ {
				for _, name := range order {
					stats, err := eng.Run(families[name], chatterProgram)
					if err != nil {
						t.Fatalf("%s cross-graph round %d: %v", name, round, err)
					}
					if got := keyOf(stats); got != want[name] {
						t.Fatalf("%s cross-graph round %d diverged: got %+v, want %+v", name, round, got, want[name])
					}
				}
			}
		})
	}
}

// TestReusedEngineAfterAbort: an aborted run (deadlock, panic) must not
// poison the engine — the next Run recarves everything and behaves like
// a fresh engine.
func TestReusedEngineAfterAbort(t *testing.T) {
	g := graph.RandomRegular(64, 6, 11)
	fresh, err := Run(g, Options{Seed: 42}, chatterProgram)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(Options{Seed: 42})
	defer eng.Close()
	// Deadlock abort: every node parks in Recv with no traffic.
	if _, err := eng.Run(g, func(nd *Node) { nd.Recv(MatchKind(kindToken)) }); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	stats, err := eng.Run(g, chatterProgram)
	if err != nil {
		t.Fatal(err)
	}
	if keyOf(stats) != keyOf(fresh) {
		t.Fatalf("post-abort run diverged: got %+v, want %+v", keyOf(stats), keyOf(fresh))
	}
	// Panic abort mid-traffic leaves staged messages behind; the next
	// run must still match.
	if _, err := eng.Run(g, func(nd *Node) {
		nd.SendAll(Message{Kind: kindData})
		if nd.ID() == 3 {
			panic("boom")
		}
		for i := 0; i < nd.Degree(); i++ {
			nd.Recv(MatchKind(kindData))
		}
	}); err == nil {
		t.Fatal("expected panic error")
	}
	stats, err = eng.Run(g, chatterProgram)
	if err != nil {
		t.Fatal(err)
	}
	if keyOf(stats) != keyOf(fresh) {
		t.Fatalf("post-panic run diverged: got %+v, want %+v", keyOf(stats), keyOf(fresh))
	}
}

// TestWarmRunRetainsSlabs (whitebox): a second Run on the same graph
// must reuse the exact backing arrays of the first — the structural
// guarantee behind the near-zero warm setup-ns — and report a setup
// measurement.
func TestWarmRunRetainsSlabs(t *testing.T) {
	g := graph.RandomRegular(512, 6, 5)
	eng := NewEngine(Options{Seed: 7})
	defer eng.Close()
	if _, err := eng.Run(g, chatterProgram); err != nil {
		t.Fatal(err)
	}
	q0, m0, n0, w0 := &eng.qSlab[0], &eng.msgSlab[0], &eng.nodeSlab[0], &eng.wakeChs[0]
	stats, err := eng.Run(g, chatterProgram)
	if err != nil {
		t.Fatal(err)
	}
	if &eng.qSlab[0] != q0 || &eng.msgSlab[0] != m0 || &eng.nodeSlab[0] != n0 || &eng.wakeChs[0] != w0 {
		t.Fatal("warm run replaced a retained slab")
	}
	if stats.SetupNanos <= 0 {
		t.Fatalf("SetupNanos = %d, want > 0", stats.SetupNanos)
	}
	t.Logf("warm setup: %d ns", stats.SetupNanos)
}

// TestDeterminismUnbounded: the span-copy delivery of Unbounded mode
// must stay bit-identical across serial, sharded, and lane execution.
func TestDeterminismUnbounded(t *testing.T) {
	for name, g := range determinismFamilies() {
		t.Run(name, func(t *testing.T) {
			var want statsKey
			modes := []Options{
				{Seed: 7, Unbounded: true},
				{Seed: 7, Unbounded: true, DeliveryShards: 3},
				{Seed: 7, Unbounded: true, Workers: 2, DeliveryShards: 2},
			}
			for i, opts := range modes {
				stats, err := Run(g, opts, chatterProgram)
				if err != nil {
					t.Fatalf("mode %d: %v", i, err)
				}
				got := keyOf(stats)
				if i == 0 {
					want = got
				} else if got != want {
					t.Fatalf("mode %d stats diverged: got %+v, want %+v", i, got, want)
				}
			}
		})
	}
}

// TestShardsEdgeCases: sharded delivery must preserve the engine's
// error paths, not just the happy path.

func TestShardsPanicPropagation(t *testing.T) {
	g := graph.Cycle(6)
	_, err := Run(g, Options{DeliveryShards: 3}, func(nd *Node) {
		if nd.ID() == 4 {
			panic("boom")
		}
		nd.Recv(MatchKind(kindToken))
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Node != 4 {
		t.Fatalf("err = %v, want PanicError from node 4", err)
	}
}

func TestShardsDeadlockDetection(t *testing.T) {
	g := graph.Path(5)
	_, err := Run(g, Options{DeliveryShards: 2}, func(nd *Node) {
		nd.Recv(MatchKind(kindToken))
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestShardsMoreThanNodes(t *testing.T) {
	g := graph.Path(2)
	stats, err := Run(g, Options{DeliveryShards: 16}, func(nd *Node) {
		if nd.ID() == 0 {
			nd.Send(0, Message{Kind: kindToken})
		} else {
			nd.RecvKindTag(kindToken, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1", stats.Delivered)
	}
}

// TestDeterminismAcrossSeeds: different seeds must actually change the
// run (guards against the RNG being ignored), while each seed stays
// self-consistent.
func TestDeterminismAcrossSeeds(t *testing.T) {
	g := graph.RandomRegular(48, 4, 7)
	a1, err := Run(g, Options{Seed: 1}, chatterProgram)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Run(g, Options{Seed: 1}, chatterProgram)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, Options{Seed: 2}, chatterProgram)
	if err != nil {
		t.Fatal(err)
	}
	if keyOf(a1) != keyOf(a2) {
		t.Fatalf("same seed diverged: %v vs %v", a1, a2)
	}
	if a1.Sent == b.Sent && a1.Rounds == b.Rounds {
		t.Fatalf("seeds 1 and 2 produced identical traffic (%v); RNG not applied", a1)
	}
}

// Worker-pool mode must preserve every engine edge case, not just the
// happy path.

func TestWorkersPingPong(t *testing.T) {
	g := graph.Path(2)
	const k = 7
	stats, err := Run(g, Options{Workers: 1}, func(nd *Node) {
		for i := 0; i < k; i++ {
			if nd.ID() == 0 {
				nd.Send(0, Message{Kind: kindToken, A: int64(i)})
				nd.RecvKindTag(kindToken, 0)
			} else {
				_, m := nd.RecvKindTag(kindToken, 0)
				nd.Send(0, m)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 2*k {
		t.Fatalf("rounds = %d, want %d", stats.Rounds, 2*k)
	}
}

func TestWorkersPanicPropagation(t *testing.T) {
	g := graph.Cycle(4)
	_, err := Run(g, Options{Workers: 2}, func(nd *Node) {
		if nd.ID() == 2 {
			panic("boom")
		}
		nd.Recv(MatchKind(kindToken))
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Node != 2 {
		t.Fatalf("err = %v, want PanicError from node 2", err)
	}
}

func TestWorkersDeadlockDetection(t *testing.T) {
	g := graph.Path(3)
	_, err := Run(g, Options{Workers: 2}, func(nd *Node) {
		nd.Recv(MatchKind(kindToken))
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestWorkersMaxRounds(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, Options{MaxRounds: 10, Workers: 1}, func(nd *Node) {
		for {
			if nd.ID() == 0 {
				nd.Send(0, Message{Kind: kindToken})
				nd.RecvKindTag(kindToken, 0)
			} else {
				nd.RecvKindTag(kindToken, 0)
				nd.Send(0, Message{Kind: kindToken})
			}
		}
	})
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}

func TestWorkersSleepFastForward(t *testing.T) {
	g := graph.Path(3)
	const target = 1000
	stats, err := Run(g, Options{Workers: 2}, func(nd *Node) {
		nd.Sleep(target)
		if nd.Round() != target {
			panic("woke at wrong round")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != target {
		t.Fatalf("rounds = %d, want %d", stats.Rounds, target)
	}
}

// TestWorkersBoundConcurrency: with Workers: 1 no two node programs may
// ever execute simultaneously.
func TestWorkersBoundConcurrency(t *testing.T) {
	g := graph.Complete(8)
	var cur, peak atomic.Int32
	_, err := Run(g, Options{Workers: 1}, func(nd *Node) {
		for r := 0; r < 3; r++ {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			nd.SendAll(Message{Kind: kindData, Tag: uint32(r)})
			cur.Add(-1)
			for i := 0; i < nd.Degree(); i++ {
				nd.Recv(MatchKindTag(kindData, uint32(r)))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p != 1 {
		t.Fatalf("observed %d concurrently running programs with Workers=1", p)
	}
}

// ---------------------------------------------------------------------
// Differential determinism: the compiled step path vs the goroutine
// path. For every program ported to step form, the two executions must
// be bit-identical — same Stats, same marks — on every generator family
// and execution mode. The protocol-level half of this layer (BFS and
// the step collectives vs their blocking twins) lives in
// internal/proto/step_diff_test.go.

// stepChatter is the step twin of chatterProgram: the same RNG draws in
// the same order, the same sends, the same park points. Any divergence
// in scheduling between the two paths shows up as a Stats mismatch.
type stepChatter struct {
	st []stepChatterState
}

type stepChatterState struct {
	pc      int
	markers int
}

func (c *stepChatter) InitRun(n int) {
	if cap(c.st) < n {
		c.st = make([]stepChatterState, n)
	} else {
		c.st = c.st[:n]
		for i := range c.st {
			c.st[i] = stepChatterState{}
		}
	}
}

func (c *stepChatter) Step(nd *Node) Park {
	const (
		kData  uint8 = 3
		kClose uint8 = 4
	)
	st := &c.st[nd.ID()]
	for {
		switch st.pc {
		case 0:
			reps := 1 + nd.Rand().Intn(4)
			for i := 0; i < reps; i++ {
				nd.SendAll(Message{Kind: kData, Tag: uint32(i), A: int64(nd.ID())})
			}
			st.pc = 1
			if nd.Rand().Intn(2) == 0 {
				return ParkSleep(1 + nd.Rand().Intn(3))
			}
		case 1:
			nd.SendAll(Message{Kind: kClose})
			st.pc = 2
		case 2:
			for st.markers < nd.Degree() {
				_, m, ok := nd.StepRecv(MatchAny)
				if !ok {
					return ParkRecv(MatchAny)
				}
				if m.Kind == kClose {
					st.markers++
				}
			}
			return ParkDone()
		}
	}
}

// phasedProgram is a two-phase exchange whose phase boundaries node 0
// records as begin:/end: marks, with a sleep separating the phases — a
// miniature of how the pipeline instruments its steps.
func phasedProgram(nd *Node) {
	if nd.ID() == 0 {
		nd.Mark("begin:exchange")
	}
	nd.SendAll(Message{Kind: kindData})
	for i := 0; i < nd.Degree(); i++ {
		nd.Recv(MatchKind(kindData))
	}
	if nd.ID() == 0 {
		nd.Mark("end:exchange")
	}
	nd.Sleep(2)
	if nd.ID() == 0 {
		nd.Mark("begin:echo")
	}
	nd.SendAll(Message{Kind: kindToken})
	for i := 0; i < nd.Degree(); i++ {
		nd.Recv(MatchKind(kindToken))
	}
	if nd.ID() == 0 {
		nd.Mark("end:echo")
	}
}

// stepPhased is phasedProgram in step form: same sends, same marks at
// the same points, same park structure.
type stepPhased struct {
	st []stepPhasedState
}

type stepPhasedState struct {
	pc  int
	got int
}

func (c *stepPhased) InitRun(n int) {
	if cap(c.st) < n {
		c.st = make([]stepPhasedState, n)
	} else {
		c.st = c.st[:n]
		for i := range c.st {
			c.st[i] = stepPhasedState{}
		}
	}
}

func (c *stepPhased) Step(nd *Node) Park {
	st := &c.st[nd.ID()]
	for {
		switch st.pc {
		case 0:
			if nd.ID() == 0 {
				nd.Mark("begin:exchange")
			}
			nd.SendAll(Message{Kind: kindData})
			st.pc = 1
		case 1:
			for st.got < nd.Degree() {
				if _, _, ok := nd.StepRecv(MatchKind(kindData)); !ok {
					return ParkRecv(MatchKind(kindData))
				}
				st.got++
			}
			if nd.ID() == 0 {
				nd.Mark("end:exchange")
			}
			st.pc = 2
			return ParkSleep(2)
		case 2:
			if nd.ID() == 0 {
				nd.Mark("begin:echo")
			}
			nd.SendAll(Message{Kind: kindToken})
			st.got = 0
			st.pc = 3
		case 3:
			for st.got < nd.Degree() {
				if _, _, ok := nd.StepRecv(MatchKind(kindToken)); !ok {
					return ParkRecv(MatchKind(kindToken))
				}
				st.got++
			}
			if nd.ID() == 0 {
				nd.Mark("end:echo")
			}
			return ParkDone()
		}
	}
}

// fullKey extends statsKey with the dirty-node count and the normalized
// mark stream (label, round, node, delivered — everything but the
// wall-clock field).
type fullKey struct {
	statsKey
	dirty int
	marks string
}

func fullKeyOf(t *testing.T, s *Stats) fullKey {
	t.Helper()
	var b []byte
	for _, m := range s.Marks {
		b = append(b, []byte(m.Label)...)
		b = append(b, '@')
		b = appendInts(b, m.Round, int(m.Node), int(m.Delivered))
	}
	return fullKey{statsKey: keyOf(s), dirty: s.DirtyNodes, marks: string(b)}
}

func appendInts(b []byte, vals ...int) []byte {
	for _, v := range vals {
		if v < 0 {
			b = append(b, '-')
			v = -v
		}
		var tmp [20]byte
		i := len(tmp)
		for {
			i--
			tmp[i] = byte('0' + v%10)
			v /= 10
			if v == 0 {
				break
			}
		}
		b = append(b, tmp[i:]...)
		b = append(b, ';')
	}
	return b
}

// stepDiffModes are the execution configurations the two paths are
// compared under.
func stepDiffModes() map[string]Options {
	return map[string]Options{
		"serial":    {Seed: 42, DeliveryShards: -1},
		"workers-2": {Seed: 42, Workers: 2, DeliveryShards: -1},
		"shards-3":  {Seed: 42, DeliveryShards: 3},
	}
}

// TestStepDifferentialChatter: the RNG-driven chatter workload must be
// bit-identical between the goroutine and step paths on every family
// and mode — including the per-node RNG draw sequence, sleeps, and the
// selective-receive drain.
func TestStepDifferentialChatter(t *testing.T) {
	for fam, g := range determinismFamilies() {
		for mode, opts := range stepDiffModes() {
			t.Run(fam+"/"+mode, func(t *testing.T) {
				bs, err := Run(g, opts, chatterProgram)
				if err != nil {
					t.Fatalf("goroutine path: %v", err)
				}
				ss, err := Run(g, opts, &stepChatter{})
				if err != nil {
					t.Fatalf("step path: %v", err)
				}
				if got, want := fullKeyOf(t, ss), fullKeyOf(t, bs); got != want {
					t.Fatalf("step path diverged: got %+v, want %+v", got, want)
				}
			})
		}
	}
}

// TestStepDifferentialMarks: the phased, mark-recording workload must
// produce the identical mark stream — labels, rounds, delivered counts
// — on both paths.
func TestStepDifferentialMarks(t *testing.T) {
	for fam, g := range determinismFamilies() {
		for mode, opts := range stepDiffModes() {
			t.Run(fam+"/"+mode, func(t *testing.T) {
				bs, err := Run(g, opts, phasedProgram)
				if err != nil {
					t.Fatalf("goroutine path: %v", err)
				}
				ss, err := Run(g, opts, &stepPhased{})
				if err != nil {
					t.Fatalf("step path: %v", err)
				}
				if bs.Marks == nil || len(bs.Marks) != 4 {
					t.Fatalf("expected 4 marks, got %v", bs.Marks)
				}
				if got, want := fullKeyOf(t, ss), fullKeyOf(t, bs); got != want {
					t.Fatalf("step path diverged: got %+v, want %+v", got, want)
				}
			})
		}
	}
}

// TestStepWarmEngineAlternatingModes: one retained engine alternating
// goroutine and step programs run-over-run must reproduce the fresh
// fingerprints every time — neither path's warm-state shortcuts
// (phase staleness, wake-channel slabs, program state slabs) may leak
// into the other.
func TestStepWarmEngineAlternatingModes(t *testing.T) {
	g := graph.RandomRegular(64, 6, 11)
	opts := Options{Seed: 42}
	bs, err := Run(g, opts, chatterProgram)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := Run(g, opts, &stepChatter{})
	if err != nil {
		t.Fatal(err)
	}
	want := fullKeyOf(t, bs)
	if got := fullKeyOf(t, ss); got != want {
		t.Fatalf("fresh step run diverged: got %+v, want %+v", got, want)
	}
	eng := NewEngine(opts)
	defer eng.Close()
	step := &stepChatter{}
	for rep := 0; rep < 6; rep++ {
		var stats *Stats
		var err error
		if rep%2 == 0 {
			stats, err = eng.Run(g, chatterProgram)
		} else {
			stats, err = eng.Run(g, step)
		}
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if got := fullKeyOf(t, stats); got != want {
			t.Fatalf("rep %d diverged: got %+v, want %+v", rep, got, want)
		}
	}
}

// TestStepReusedEngineAfterAbort: aborted step runs (deadlock, panic
// mid-traffic) must not poison a retained engine for either path.
func TestStepReusedEngineAfterAbort(t *testing.T) {
	g := graph.RandomRegular(64, 6, 11)
	opts := Options{Seed: 42}
	fresh, err := Run(g, opts, chatterProgram)
	if err != nil {
		t.Fatal(err)
	}
	want := fullKeyOf(t, fresh)
	eng := NewEngine(opts)
	defer eng.Close()
	// Step deadlock: every node parks in Recv with no traffic.
	deadlock := &stepFuncProgram{step: func(nd *Node) Park { return ParkRecv(MatchAny) }}
	if _, err := eng.Run(g, deadlock); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	stats, err := eng.Run(g, chatterProgram)
	if err != nil {
		t.Fatal(err)
	}
	if got := fullKeyOf(t, stats); got != want {
		t.Fatalf("goroutine run after step deadlock diverged: got %+v, want %+v", got, want)
	}
	// Step panic mid-traffic leaves staged messages behind; a step rerun
	// must still match.
	bomber := &stepFuncProgram{step: func(nd *Node) Park {
		nd.SendAll(Message{Kind: kindData})
		if nd.ID() == 3 {
			panic("step boom")
		}
		return ParkRecv(MatchKind(kindData))
	}}
	if _, err := eng.Run(g, bomber); err == nil {
		t.Fatal("expected panic error")
	}
	stats, err = eng.Run(g, &stepChatter{})
	if err != nil {
		t.Fatal(err)
	}
	if got := fullKeyOf(t, stats); got != want {
		t.Fatalf("step run after step panic diverged: got %+v, want %+v", got, want)
	}
}
