package congest

import (
	"errors"
	"testing"

	"distmincut/internal/graph"
)

func TestSingleNodeProgram(t *testing.T) {
	g := graph.Path(1)
	stats, err := Run(g, Options{}, func(nd *Node) {
		if nd.Degree() != 0 || nd.N() != 1 {
			panic("bad topology view")
		}
		nd.Sleep(3)
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", stats.Rounds)
	}
}

func TestInvalidPortPanicsAsError(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, Options{}, func(nd *Node) {
		nd.Send(5, Message{})
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}
}

func TestSendAllReachesEveryNeighbor(t *testing.T) {
	g := graph.Star(6)
	stats, err := Run(g, Options{}, func(nd *Node) {
		const kind = 9
		if nd.ID() == 0 {
			nd.SendAll(Message{Kind: kind, A: 7})
			for i := 0; i < nd.Degree(); i++ {
				nd.Recv(MatchKind(kind))
			}
			return
		}
		_, m := nd.Recv(MatchKind(kind))
		if m.A != 7 {
			panic("payload lost")
		}
		nd.Send(0, Message{Kind: kind, A: m.A})
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != 10 {
		t.Fatalf("delivered %d messages, want 10", stats.Delivered)
	}
}

func TestTryRecvEmpty(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, Options{}, func(nd *Node) {
		if _, _, ok := nd.TryRecv(MatchAny); ok {
			panic("TryRecv found a message in an empty inbox")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccessors(t *testing.T) {
	s := &Stats{Rounds: 2, Sent: 5, Delivered: 5, Wakeups: 3, Leftover: 1}
	if s.MessageBits() != 5*(8+32+64*PayloadWords) {
		t.Fatalf("MessageBits = %d", s.MessageBits())
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestLeftoverAccounting(t *testing.T) {
	g := graph.Path(2)
	stats, err := Run(g, Options{}, func(nd *Node) {
		if nd.ID() == 0 {
			nd.Send(0, Message{Kind: 1})
			nd.Send(0, Message{Kind: 2})
		} else {
			nd.Recv(MatchKind(1)) // kind 2 never consumed
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Leftover != 1 {
		t.Fatalf("leftover = %d, want 1", stats.Leftover)
	}
}

// TestMessageOrderWithinPort: FIFO per port even with selective
// receive consuming other kinds in between.
func TestMessageOrderWithinPort(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, Options{}, func(nd *Node) {
		if nd.ID() == 0 {
			for i := 0; i < 5; i++ {
				nd.Send(0, Message{Kind: 1, A: int64(i)})
				nd.Send(0, Message{Kind: 2, A: int64(i)})
			}
			return
		}
		// Consume kind-2 first, then kind-1: both must be in order.
		for i := 0; i < 5; i++ {
			_, m := nd.Recv(MatchKind(2))
			if m.A != int64(i) {
				panic("kind-2 out of order")
			}
		}
		for i := 0; i < 5; i++ {
			_, m := nd.Recv(MatchKind(1))
			if m.A != int64(i) {
				panic("kind-1 out of order")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestManyConcurrentSleepers: heap-based wake ordering under many
// staggered deadlines.
func TestManyConcurrentSleepers(t *testing.T) {
	g := graph.Complete(10)
	stats, err := Run(g, Options{}, func(nd *Node) {
		for k := 0; k < 3; k++ {
			nd.Sleep(int(nd.ID())%4 + 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds == 0 || stats.Rounds > 12 {
		t.Fatalf("rounds = %d, want in (0, 12]", stats.Rounds)
	}
}
