package congest

import (
	"testing"
)

// fillWrapped returns a queue whose ring is wrapped: head sits at
// offset within the backing array and n live messages (values
// base..base+n-1 in A) span the wrap point.
func fillWrapped(t *testing.T, capacity, offset, n int, base int64) *queue {
	t.Helper()
	q := &queue{}
	q.growTo(&msgBufPool, capacity)
	if len(q.buf) < capacity {
		t.Fatalf("growTo(%d) gave cap %d", capacity, len(q.buf))
	}
	// Advance head to offset by pushing and popping placeholders.
	for i := 0; i < offset; i++ {
		q.push(&msgBufPool, Message{A: -1})
		q.pop(&msgBufPool)
	}
	for i := 0; i < n; i++ {
		q.push(&msgBufPool, Message{A: base + int64(i)})
	}
	if q.head != offset&(len(q.buf)-1) || q.n != n {
		t.Fatalf("setup: head=%d n=%d, want head=%d n=%d", q.head, q.n, offset, n)
	}
	return q
}

func drainValues(q *queue) []int64 {
	var out []int64
	for {
		m, ok := q.pop(&msgBufPool)
		if !ok {
			return out
		}
		out = append(out, m.A)
	}
}

// TestQueueMoveToWraparound: moveTo must preserve FIFO order for every
// combination of source span wrap, destination free-space wrap, and
// destination growth, including moves that drain the source exactly.
func TestQueueMoveToWraparound(t *testing.T) {
	cases := []struct {
		name                 string
		srcCap, srcOff, srcN int
		dstCap, dstOff, dstN int
		k                    int
	}{
		{"no-wrap", 16, 0, 10, 16, 0, 2, 5},
		{"src-wraps", 16, 12, 10, 32, 0, 0, 10},
		{"dst-wraps", 16, 0, 8, 16, 13, 4, 8},
		{"both-wrap", 16, 14, 12, 16, 15, 3, 12},
		{"dst-grows", 16, 9, 14, 16, 5, 10, 14},
		{"drain-exact", 16, 15, 16, 64, 0, 0, 16},
		{"partial", 16, 7, 12, 16, 2, 1, 5},
		{"k-exceeds-n", 16, 3, 4, 16, 0, 0, 99},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := fillWrapped(t, tc.srcCap, tc.srcOff, tc.srcN, 100)
			dst := fillWrapped(t, tc.dstCap, tc.dstOff, tc.dstN, 500)

			moved := tc.k
			if moved > tc.srcN {
				moved = tc.srcN
			}
			src.moveTo(&msgBufPool, dst, tc.k)

			if src.n != tc.srcN-moved {
				t.Fatalf("src.n = %d, want %d", src.n, tc.srcN-moved)
			}
			if dst.n != tc.dstN+moved {
				t.Fatalf("dst.n = %d, want %d", dst.n, tc.dstN+moved)
			}
			// Destination: its own prior contents first, then the moved
			// span, all in FIFO order.
			got := drainValues(dst)
			for i, v := range got {
				var want int64
				if i < tc.dstN {
					want = 500 + int64(i)
				} else {
					want = 100 + int64(i-tc.dstN)
				}
				if v != want {
					t.Fatalf("dst[%d] = %d, want %d (full: %v)", i, v, want, got)
				}
			}
			// Source: the tail that stayed behind.
			rest := drainValues(src)
			for i, v := range rest {
				if want := 100 + int64(moved+i); v != want {
					t.Fatalf("src[%d] = %d, want %d (full: %v)", i, v, want, rest)
				}
			}
		})
	}
}

// TestQueueMoveToIntoSlabRing: moving into a small slab-carved ring
// must grow it through the pool without losing messages.
func TestQueueMoveToIntoSlabRing(t *testing.T) {
	backing := make([]Message, slabInCap)
	dst := &queue{buf: backing[:slabInCap:slabInCap]}
	dst.push(&msgBufPool, Message{A: 500})

	src := fillWrapped(t, 16, 11, 9, 100)
	src.moveTo(&msgBufPool, dst, 9)

	got := drainValues(dst)
	want := []int64{500, 100, 101, 102, 103, 104, 105, 106, 107, 108}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// The slab carve must not have been handed to the pool: growTo
	// replaced it, and put rejects sub-minPoolCap rings.
	if cap(backing) != slabInCap {
		t.Fatalf("slab backing mutated")
	}
}
