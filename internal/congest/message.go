// Package congest simulates the synchronous CONGEST message-passing
// model [Pel00]: n nodes with unique IDs, communication in synchronous
// rounds where each node may send one O(log n)-bit message per incident
// edge per round.
//
// # Execution model
//
// Node programs are ordinary blocking Go code. A node stages outgoing
// messages with Send (one per-port FIFO each; the runtime transmits the
// head of every FIFO each round, so multi-message transfers are
// automatically pipelined and pay their true round cost), then blocks in
// Recv or Sleep. A round-synchronous scheduler advances the global round
// only when every node is parked, delivers the head of every staged edge
// queue, and wakes exactly the nodes whose receive predicate is now
// satisfied or whose sleep deadline passed. Rounds with no traffic and
// no due wake-ups are fast-forwarded, and delivery walks a registry of
// nodes with staged traffic rather than all n nodes, so simulation cost
// is proportional to messages moved plus nodes woken — not n x rounds.
//
// The scheduler's round loop reuses per-engine scratch buffers (an
// epoch-stamped receiver array, a wake list, per-shard sender
// registries) and slab-allocates every queue and its initial ring, so
// steady-state simulation does not allocate. Each node program runs on
// its own goroutine (it holds the program's stack between rounds);
// with Options.Workers > 0, each round releases that many wake permits
// and parking nodes chain them forward, so only Workers programs are
// runnable at once, which keeps very large graphs from thrashing the
// Go scheduler.
//
// # Compiled step programs
//
// The engine has a second execution mode for programs written as
// explicit state machines: a value implementing StepProgram (instead
// of a func(*Node)) is run by calling Step on each activated node and
// acting on the returned Park — no goroutine, channel, or stack per
// node. Run dispatches on the program's dynamic type, and both modes
// share the same coordinator, sender registry, queues, wake-set
// construction, observer hook, and warm-engine lifecycle, so a step
// program that parks at the same points with the same predicates and
// sends as a blocking program produces bit-identical Stats and marks.
// That equivalence is enforced by the differential suites in
// determinism_test.go (engine workloads) and
// internal/proto/step_diff_test.go (BFS and the step collectives vs
// their blocking twins). Large wake sets are stepped shard-parallel:
// the wake list is split into contiguous chunks over the delivery-
// shard workers, which is safe because Step touches only its own
// node's state and program slabs are indexed by node ID. Step programs
// use StepRecv (TryRecv plus the scheduler's match hint) and return
// ParkRecv/ParkSleep/ParkDone; calling the blocking Recv or Sleep from
// a step program panics. NewStepSeq chains step programs sequentially,
// entering the next within the activation the previous one finishes —
// the step analogue of a blocking program calling two protocols
// back-to-back.
//
// # Engine reuse and lazy activation
//
// An Engine is a long-lived, reusable object: NewEngine(opts) creates
// one and (*Engine).Run(g, program) executes a simulation on it. The
// engine retains its slabs (node structs, queue headers, message
// rings, wake channels) and flat port tables between runs: a warm run
// on the same graph resets only the dirty region — the queues the
// previous run's senders touched, located through the sender registry
// and the reverse port table — instead of re-zeroing everything, and a
// run on a different graph rebuilds the port tables while reusing
// every slab whose capacity fits. Stats.SetupNanos reports what setup
// remains. Close releases the slabs to process-wide pools; the
// package-level Run is the one-shot NewEngine + Run + Close.
//
// Node goroutines start lazily: a node's goroutine is spawned at its
// first activation, and its wake channel is created at its first
// park. Every node is activated once (round 0), so the win is
// concurrency-shaped: in lane mode (Options.Workers > 0) activations
// are chained, so a program that exits without parking frees its
// goroutine before the next spawns and the runtime recycles the
// stack — a million-node sparse workload keeps ~Workers stacks live
// instead of faulting in one per node — while wake channels are lazy
// in every mode (only nodes that actually park ever allocate one).
// Reuse never leaks state: per-node RNGs reseed lazily per run, and a
// reused engine's Stats are bit-identical to a fresh engine's for the
// same graph, options, and seed.
//
// # Sharded delivery
//
// The delivery phase moves the head (or, in Unbounded mode, the whole
// ring span, with bulk copies) of every staged edge queue. With
// Options.DeliveryShards >= 2 the sender registry is partitioned by
// node-ID range over that many worker goroutines, each delivering its
// senders and stamping receivers into its own epoch-numbered array;
// the coordinator then merges per-shard delivered counts and receiver
// sets in shard order and fans the receive-predicate evaluation back
// out over the same workers. Sharding is safe because delivery is
// order-independent: each (sender, port) pair feeds exactly one
// per-port FIFO at its peer, so no two shards ever write the same
// queue, and the merged receiver set is deduplicated before wake-up.
//
// # Determinism
//
// Woken goroutines run concurrently but touch only their own node
// state; message delivery and round advancement happen while all nodes
// are parked, and each (sender, port) pair feeds its own per-port FIFO
// at the receiver, so queue contents are independent of delivery
// iteration order. Per-node RNGs are seeded from Options.Seed and the
// node ID. Two runs with the same graph, options, and program produce
// identical Stats (rounds, sent, delivered, wakeups, leftover) — and so
// do runs that differ only in Options.Workers or
// Options.DeliveryShards, in any combination. The one scheduling-
// dependent quantity is the interleaving of Marks recorded by different
// nodes within the same round.
//
// # Model fidelity
//
// Messages are a fixed struct of one kind byte, one 32-bit tag, and four
// 64-bit words — O(log n) bits for every workload in this repository
// (IDs < n, weights and aggregates polynomially bounded). Nodes know
// their own ID, their neighbors' IDs, incident edge weights (the
// paper's KT1-style assumption: "initially knows the weights of edges
// incident to it"), and n. Unbounded local computation per round is
// free, as in CONGEST.
package congest

// Message is the unit of communication: a kind (protocol opcode), a tag
// (protocol instance / epoch, so that consecutive uses of a primitive
// never confuse each other's traffic), and four payload words. Total
// size is O(log n) bits in every use in this repository.
type Message struct {
	Kind uint8
	Tag  uint32
	A    int64
	B    int64
	C    int64
	D    int64
}

// PayloadWords is the number of int64 payload words per message, used
// for bit accounting in Stats.
const PayloadWords = 4

// PayloadLimit bounds the magnitude of each payload word when
// Options.CheckPayload is set. The repository's packing convention is
// at most two 31-bit fields per word (IDs < n ≤ 2^31, weights and loads
// < 2^31 per distmincut.MaxWeight), optionally with one flag carried in
// the sign — so every legitimate word has magnitude at most 2^62. A
// word beyond that almost always means a protocol's packing arithmetic
// overflowed, which the guard turns into an immediate, attributed
// failure instead of a silently wrong cut. The two exact extremes
// math.MaxInt64 and math.MinInt64 are exempt: protocols use them as
// "∞ / none" sentinels (an O(1)-bit symbol, not a counted quantity).
const PayloadLimit = int64(1) << 62

// MatchFunc decides whether a buffered or newly delivered message
// satisfies a pending Recv. It must be a pure function of its arguments:
// the coordinator evaluates it while the owning node is parked.
type MatchFunc func(port int, m Message) bool

// MatchAny accepts every message.
func MatchAny(int, Message) bool { return true }

// MatchKind accepts messages with the given kind.
func MatchKind(kind uint8) MatchFunc {
	return func(_ int, m Message) bool { return m.Kind == kind }
}

// MatchKindTag accepts messages with the given kind and tag.
func MatchKindTag(kind uint8, tag uint32) MatchFunc {
	return func(_ int, m Message) bool { return m.Kind == kind && m.Tag == tag }
}

// MatchPort accepts any message arriving on the given port.
func MatchPort(port int) MatchFunc {
	return func(p int, _ Message) bool { return p == port }
}

// MatchKindTagPort accepts messages with the given kind and tag on one
// specific port.
func MatchKindTagPort(kind uint8, tag uint32, port int) MatchFunc {
	return func(p int, m Message) bool { return p == port && m.Kind == kind && m.Tag == tag }
}
