// Package congest simulates the synchronous CONGEST message-passing
// model [Pel00]: n nodes with unique IDs, one goroutine per node,
// communication in synchronous rounds where each node may send one
// O(log n)-bit message per incident edge per round.
//
// # Execution model
//
// Node programs are ordinary blocking Go code. A node stages outgoing
// messages with Send (one per-port FIFO each; the runtime transmits the
// head of each FIFO every round, so multi-message transfers are
// automatically pipelined and pay their true round cost), then blocks in
// Recv or Sleep. A coordinator advances the global round only when every
// node is parked, delivers the head of every non-empty edge queue,
// and wakes exactly the nodes whose receive predicate is now satisfied
// or whose sleep deadline passed. Rounds with no traffic and no due
// wake-ups are fast-forwarded, so simulation cost is proportional to
// message count, not n x rounds.
//
// # Determinism
//
// Woken goroutines run concurrently but touch only their own node
// state; message delivery and round advancement happen while all nodes
// are parked. Per-node RNGs are seeded from Options.Seed and the node
// ID. Two runs with the same graph, options, and program are identical.
//
// # Model fidelity
//
// Messages are a fixed struct of one kind byte, one 32-bit tag, and four
// 64-bit words — O(log n) bits for every workload in this repository
// (IDs < n, weights and aggregates polynomially bounded). Nodes know
// their own ID, their neighbors' IDs, incident edge weights (the
// paper's KT1-style assumption: "initially knows the weights of edges
// incident to it"), and n. Unbounded local computation per round is
// free, as in CONGEST.
package congest

// Message is the unit of communication: a kind (protocol opcode), a tag
// (protocol instance / epoch, so that consecutive uses of a primitive
// never confuse each other's traffic), and four payload words. Total
// size is O(log n) bits in every use in this repository.
type Message struct {
	Kind uint8
	Tag  uint32
	A    int64
	B    int64
	C    int64
	D    int64
}

// PayloadWords is the number of int64 payload words per message, used
// for bit accounting in Stats.
const PayloadWords = 4

// MatchFunc decides whether a buffered or newly delivered message
// satisfies a pending Recv. It must be a pure function of its arguments:
// the coordinator evaluates it while the owning node is parked.
type MatchFunc func(port int, m Message) bool

// MatchAny accepts every message.
func MatchAny(int, Message) bool { return true }

// MatchKind accepts messages with the given kind.
func MatchKind(kind uint8) MatchFunc {
	return func(_ int, m Message) bool { return m.Kind == kind }
}

// MatchKindTag accepts messages with the given kind and tag.
func MatchKindTag(kind uint8, tag uint32) MatchFunc {
	return func(_ int, m Message) bool { return m.Kind == kind && m.Tag == tag }
}

// MatchPort accepts any message arriving on the given port.
func MatchPort(port int) MatchFunc {
	return func(p int, _ Message) bool { return p == port }
}

// MatchKindTagPort accepts messages with the given kind and tag on one
// specific port.
func MatchKindTagPort(kind uint8, tag uint32, port int) MatchFunc {
	return func(p int, m Message) bool { return p == port && m.Kind == kind && m.Tag == tag }
}
