package congest

import (
	"container/heap"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"distmincut/internal/chaos"
	"distmincut/internal/graph"
)

// Options configures a simulation run.
type Options struct {
	// Seed derives every node's private RNG. Runs with equal seeds are
	// bit-identical. Zero means seed 1.
	Seed int64
	// MaxRounds aborts runs that exceed this many rounds (safety net
	// against protocol bugs). Zero means DefaultMaxRounds.
	MaxRounds int
	// Unbounded, if set, delivers the entire per-edge send queue each
	// round instead of one message, i.e. a LOCAL-model network with
	// unbounded bandwidth. Used only by the pipelining ablation (E9).
	Unbounded bool
	// Workers, when positive, bounds how many node programs execute
	// concurrently: scheduled nodes are multiplexed over this many
	// execution lanes instead of all being made runnable at once, so
	// huge graphs stop thrashing the Go scheduler with n simultaneously
	// runnable goroutines. Zero (the default) wakes every scheduled
	// node at once. Stats are identical in both modes for a given seed.
	Workers int
	// DeliveryShards partitions the sender registry by node-ID range
	// into that many shards and runs the delivery and receive-matching
	// phases on that many worker goroutines. Delivery order is
	// order-independent (each (sender, port) pair feeds its own
	// per-port FIFO at the peer; see the package docs), so Stats are
	// bit-identical to serial delivery for a given seed and shard
	// count.
	//
	// Zero (the default) picks the measured default: one shard per
	// available CPU (GOMAXPROCS), which degrades to serial delivery on
	// a single-CPU machine — sharding only buys anything when shards
	// run on distinct cores (see the "Delivery shard default" note in
	// README.md). A negative value (or 1) forces serial delivery on
	// the coordinator goroutine.
	DeliveryShards int
	// Interrupt, when non-nil, makes the run abort with ErrInterrupted
	// as soon as the channel is closed (or receives a value). The
	// coordinator polls it once per round boundary, while every node is
	// parked, so the abort is clean: all node goroutines unwind and the
	// partial Stats are returned alongside the error. This is the
	// mechanism behind the context-cancellable distmincut entry points.
	Interrupt <-chan struct{}
	// Deadline, when non-zero, aborts the run with a *BudgetError
	// (matching ErrBudgetExceeded) at the first round boundary past the
	// wall-clock instant. Like Interrupt, the check runs while every
	// node is parked, so the abort is clean: all node goroutines unwind
	// and the partial Stats are returned alongside the error. Combined
	// with MaxRounds this is the engine-level watchdog behind service
	// job deadlines.
	Deadline time.Time
	// Progress, when non-nil, is updated at every round boundary with
	// the current round number and cumulative delivered-message count,
	// so concurrent observers (e.g. a job-status endpoint) can sample a
	// running simulation without synchronizing with it.
	Progress *Progress
	// CheckPayload, when set, makes Send fail loudly (a panic that
	// surfaces as a PanicError from Run) whenever a staged message
	// carries a payload word outside [-PayloadLimit, PayloadLimit].
	// Messages are nominally O(log n) bits, but the words are int64 and
	// several protocols pack multiple quantities into one word; a value
	// near the int64 range almost always means a packing overflowed.
	// Off by default (it adds a branch to the Send fast path).
	CheckPayload bool
	// Observer, when non-nil, receives one RoundRecord per simulated
	// round at the round barrier (see Observer and RoundRecord). The
	// record carries the round's delivered-message count, the next wake
	// set's size, the cumulative dirty-node count, and wall-clock
	// delivery timings (total and per shard). When Observer is nil —
	// the default — the engine skips all timing work and the round
	// barrier pays exactly one nil check: the disabled path adds no
	// allocations and no clock reads.
	Observer Observer
}

// normalize fills Options defaults. DeliveryShards resolves its
// measured default here, so an Engine's shard count is a pure function
// of its (normalized) options.
func normalize(opts Options) Options {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = DefaultMaxRounds
	}
	if opts.Workers < 0 {
		opts.Workers = 0
	}
	if opts.DeliveryShards == 0 {
		opts.DeliveryShards = runtime.GOMAXPROCS(0)
	}
	if opts.DeliveryShards < 2 {
		opts.DeliveryShards = 1
	}
	return opts
}

// DefaultMaxRounds is the default safety cap on simulated rounds.
const DefaultMaxRounds = 20_000_000

// ErrDeadlock is returned when every node is parked in Recv, nothing is
// in flight, and no sleep deadline is pending.
var ErrDeadlock = errors.New("congest: deadlock")

// ErrMaxRounds is returned when the round cap is exceeded. Budget
// aborts surface as *BudgetError; errors.Is(err, ErrMaxRounds) keeps
// matching when the round cap (not the wall clock) is what tripped.
var ErrMaxRounds = errors.New("congest: exceeded MaxRounds")

// ErrBudgetExceeded matches any budget abort — round cap or wall-clock
// deadline. Use errors.As with *BudgetError to see which tripped and
// how far the run got.
var ErrBudgetExceeded = errors.New("congest: budget exceeded")

// BudgetError is the abort cause when a run exhausts its round budget
// (Options.MaxRounds) or wall-clock deadline (Options.Deadline). It
// carries how far the run got so callers can report partial progress.
type BudgetError struct {
	// RoundLimit is the MaxRounds cap when the round budget tripped,
	// zero when the wall clock did.
	RoundLimit int
	// Deadline is the wall-clock deadline when it tripped, zero
	// otherwise.
	Deadline time.Time
	// Rounds and Messages are the simulated round and cumulative
	// delivered-message count at the abort boundary.
	Rounds   int
	Messages int64
}

func (e *BudgetError) Error() string {
	if e.RoundLimit > 0 {
		return fmt.Sprintf("congest: exceeded MaxRounds (%d) at %d messages", e.RoundLimit, e.Messages)
	}
	return fmt.Sprintf("congest: deadline exceeded at round %d (%d messages)", e.Rounds, e.Messages)
}

// Is makes errors.Is(err, ErrBudgetExceeded) match every BudgetError
// and keeps errors.Is(err, ErrMaxRounds) matching round-cap trips.
func (e *BudgetError) Is(target error) bool {
	if target == ErrBudgetExceeded {
		return true
	}
	return target == ErrMaxRounds && e.RoundLimit > 0
}

// ErrInterrupted is returned when Options.Interrupt fired and the run
// aborted at a round boundary.
var ErrInterrupted = errors.New("congest: run interrupted")

// PanicError wraps a panic raised by a node program.
type PanicError struct {
	Node  graph.NodeID
	Value any
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("congest: node %d panicked: %v", e.Node, e.Value)
}

// Engine is a reusable round-synchronous CONGEST simulator. Create one
// with NewEngine and call Run once per simulation; the engine retains
// its slabs (node structs, queue headers, message rings, wake channels)
// and port tables between runs, so a warm engine's per-run setup is a
// handful of dirty-region resets instead of allocating and re-zeroing
// hundreds of megabytes. Repeat runs on the same *graph.Graph skip the
// port-table rebuild entirely; runs on a different graph reuse every
// slab whose capacity suffices. Close releases the retained slabs back
// to the process-wide pools (the engine stays usable — the next Run
// simply re-acquires them). An Engine runs one simulation at a time;
// none of its methods are safe for concurrent use. The one-shot
// package-level Run wraps NewEngine + Run + Close.
//
// Node goroutines start lazily: a node's goroutine is spawned at its
// first activation and a node's wake channel is created at its first
// park, so programs that exit without parking (sparse workloads,
// early-terminating protocol phases) never pay a wake channel — and,
// in lane mode (Options.Workers > 0), effectively no stack either:
// chained activations let each exiting program free its goroutine
// before the next spawns, so a million-node graph whose programs exit
// immediately keeps only ~Workers stacks live at once instead of
// faulting in a million.
//
// The scheduler's round loop allocates nothing in steady state: the
// sender registry, receiver set, wake list, and park notifications all
// live in reusable per-engine buffers, every queue's initial ring is
// carved out of one retained message slab, and grown rings come from a
// shared size-class pool. Per round the coordinator (1) merges newly
// registered senders into per-shard registries, (2) runs the delivery
// phase — serially, or fanned out over Options.DeliveryShards worker
// goroutines, each moving whole ring spans per port and stamping
// receivers into its own epoch-numbered generation array — then merges
// per-shard delivered counts and receiver sets, (3) computes the wake
// list from satisfied Recv predicates (evaluated in parallel over the
// same shards when the receiver set is large) and due sleepers, and
// (4) dispatches it — either waking every node at once or releasing
// Options.Workers lane permits that parking nodes chain forward.
type Engine struct {
	g    *graph.Graph
	opts Options
	// Exactly one of program / stepProg is set per run, from Run's
	// dispatch on the Program's dynamic type: program hosts the blocking
	// goroutine path, stepProg the compiled step path (see step.go).
	program  func(*Node)
	stepProg StepProgram
	nodes    []*Node

	round     int
	delivered int64
	wakeups   int64
	aborted   atomic.Bool

	// runGen numbers the engine's runs; per-node RNGs compare it to
	// reseed lazily on their first use in each run.
	runGen uint32

	// needFullInit forces the next Run to rebuild port tables, recarve
	// every queue, and reinitialize every node: set on engine creation,
	// graph change, Close, and after any aborted run (an abort can
	// leave traffic in arbitrary queues, beyond what the dirty-node
	// list covers).
	needFullInit bool

	// setupNanos is the wall time the last Run spent in per-run setup
	// (everything before the first node activation); surfaced as
	// Stats.SetupNanos.
	setupNanos int64

	// Observer support (all dead weight when opts.Observer is nil).
	// runStart anchors Mark.Nanos and RoundRecord.Nanos to Run entry;
	// timing caches the observer-enabled decision so the delivery path
	// reads one bool instead of an interface; obsDelivered is the
	// cumulative delivered count at the previous observed round (for
	// per-round deltas); deliverNs and shardNs are the last round's
	// delivery timings (shardNs is the scratch RoundRecord.ShardNanos
	// aliases).
	runStart     time.Time
	timing       bool
	obsDelivered int64
	deliverNs    int64
	shardNs      []int64

	// revPort[portOff[u]+p] is the port index at the peer for port p of
	// node u, precomputed flat so delivery is O(1) per message with no
	// per-node slice headers.
	revPort []int32
	portOff []int32

	// Sender registry: nodes stage themselves exactly once on their
	// first Send after being drained (guarded by Node.outDirty), so
	// delivery touches only nodes with traffic instead of scanning all
	// n every round. newSenders is written lock-free by node goroutines
	// via the newCount cursor; the coordinator distributes it over the
	// per-shard registries between rounds.
	newSenders  []*Node
	newCount    atomic.Int32
	senderCount int

	// dirtyNodes lists every node that registered as a sender at least
	// once this run. Between runs on the same graph only these nodes'
	// queues (their send rings plus the receive rings they fed at their
	// peers) need resetting — the dirty-region alternative to recarving
	// all 2·ports queue headers.
	dirtyNodes []*Node

	// Delivery shards. Serial mode is the one-shard special case run
	// inline on the coordinator; with a resolved shard count >= 2 each
	// shard owns a node-ID range of the sender registry and its own
	// epoch-stamped receiver state, merged after every delivery. Shard
	// worker goroutines are spawned per run (they are few) while the
	// shard structs and their generation arrays are retained.
	shards    []*deliveryShard
	shardDone chan struct{}

	// Merged receiver set: recvGen[v] == curGen marks v as already
	// collected this round — an epoch-numbered flat array in place of a
	// per-round map, with receivers as the reusable collection order.
	// Serial mode aliases receivers to the single shard's list.
	recvGen   []uint32
	curGen    uint32
	receivers []*Node
	wake      []*Node

	// qSlab holds every per-port queue header in one dense allocation
	// (kept small so delivery can hold it in cache); msgSlab backs the
	// initial ring of every queue (one bulk carve instead of 2*ports
	// small allocations; nil when the graph is too large and rings are
	// pooled lazily); wakeChs is the slab of per-node wake channels,
	// filled lazily as nodes first park. All three are retained by the
	// engine across runs and recycled through global pools on Close, so
	// repeated runs allocate none of them. Message slots are never
	// zeroed: Message holds no pointers and ring slots are written
	// before they are read.
	qSlab    []queue
	msgSlab  []Message
	wakeChs  []chan struct{}
	nodeSlab []Node

	// Park barrier: every dispatched node ends its activation in
	// notifyPark, which counts running down and signals roundDone at
	// zero. In lane mode (Options.Workers > 0) a parking node first
	// chains its lane to the next scheduled node — spawning that node's
	// goroutine if this is its first activation — so a round costs one
	// batch of Workers wake permits instead of a per-node handshake
	// with pool goroutines. Nodes that parked in Sleep or exited are
	// queued on notified for the coordinator (Recv parks need no
	// attention).
	running   atomic.Int32
	roundDone chan struct{}
	notifyMu  sync.Mutex
	notified  []*Node

	// Lane mode state (Options.Workers > 0).
	workers int
	curWake []*Node
	wakeIdx atomic.Int32

	sleepers sleepHeap
	termWG   sync.WaitGroup

	marksMu sync.Mutex
	marks   []Mark
}

// deliveryShard owns one node-ID range of the sender registry plus the
// scratch state the delivery and matching phases need, so shards never
// write shared memory: delivered counts, receiver sets, and wake
// sublists are merged by the coordinator in shard order after each
// phase. Queue mutations need no synchronization because each (sender,
// port) pair feeds exactly one per-port FIFO at its peer, and a sender
// belongs to exactly one shard.
type deliveryShard struct {
	eng     *Engine
	senders []*Node
	scratch []*Node // merge buffer keeping senders ordered by node ID

	// Delivery-phase state: an epoch-stamped receiver set private to
	// this shard, plus the count of messages it moved this round.
	recvGen   []uint32
	curGen    uint32
	receivers []*Node
	delivered int64

	// Matching-phase state: the [lo, hi) chunk of the merged receiver
	// list this shard evaluates, and the wake sublist it produces.
	lo, hi int
	wake   []*Node

	// Step-dispatch state (step programs only): the [stepLo, stepHi)
	// chunk of the current wake list this shard activates, and the
	// sleep/done notifications its activations produced (merged by the
	// coordinator in shard order, like wake sublists).
	stepLo, stepHi int
	stepNotified   []*Node

	// nanos is the shard's self-measured delivery wall time for the
	// current round; written only when the engine's observer timing is
	// armed.
	nanos int64

	taskCh chan shardTask // nil in serial mode (phases run inline)
}

type shardTask uint8

const (
	taskDeliver shardTask = iota
	taskMatch
	taskStep
)

// maxPreallocMessages caps the per-run message slab (in messages, 40 B
// each): graphs up to ~6M ports (≈3M edges) get every initial ring from
// one bulk allocation; larger graphs fall back to lazy per-queue
// allocation so slab size never exceeds ~2.7 GB.
const maxPreallocMessages = 1 << 26

// qSlabPool, msgSlabPool, wakeChPool, and nodeSlabPool recycle the
// per-engine slabs across engines (one-shot runs via the package-level
// Run acquire and release them per call, so even independent engines
// stop paying for slab allocation after the first run). Each is
// bucketed by power-of-two capacity class so engines of different
// sizes never evict each other's slabs (a pooled slab is always big
// enough for any request of its class). Queue headers and node structs
// are fully re-initialized on reuse; message slots need no zeroing
// since Message holds no pointers and ring slots are written before
// they are read; wake channels are always drained when a run ends.
var (
	qSlabPool    [48]sync.Pool
	msgSlabPool  [48]sync.Pool
	wakeChPool   [48]sync.Pool
	nodeSlabPool [48]sync.Pool
)

// slabClass is the pool bucket for a request of n elements: slabs in
// bucket c have capacity exactly 1<<c >= n.
func slabClass(n int) int {
	if n < 2 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

func getQSlab(n int) []queue {
	c := slabClass(n)
	if v := qSlabPool[c].Get(); v != nil {
		return v.([]queue)[:n]
	}
	return make([]queue, 1<<c)[:n]
}

func getMsgSlab(n int) []Message {
	c := slabClass(n)
	if v := msgSlabPool[c].Get(); v != nil {
		return v.([]Message)[:n]
	}
	return make([]Message, 1<<c)[:n]
}

// getWakeSlab returns a wake-channel slab. Slots may hold drained
// channels from a previous engine (reused as-is) or nil (a channel is
// created the first time that node parks).
func getWakeSlab(n int) []chan struct{} {
	c := slabClass(n)
	if v := wakeChPool[c].Get(); v != nil {
		return v.([]chan struct{})[:n]
	}
	return make([]chan struct{}, 1<<c)[:n]
}

func getNodeSlab(n int) []Node {
	c := slabClass(n)
	if v := nodeSlabPool[c].Get(); v != nil {
		return v.([]Node)[:n]
	}
	return make([]Node, 1<<c)[:n]
}

// putNodeSlab releases a node slab, clearing every field that points
// outside the slab's own reusable state (graph adjacency, engine,
// queue and wake-channel slices, match closures) so a pooled slab
// cannot pin the last run's graph or engine until sync.Pool eviction.
// Per-node RNGs are deliberately kept: they reference only their own
// generator state and are reseeded on reuse.
func putNodeSlab(slab []Node) {
	slab = slab[:cap(slab)]
	for i := range slab {
		nd := &slab[i]
		nd.eng = nil
		nd.adj = nil
		nd.outQ = nil
		nd.inQ = nil
		nd.wakeCh = nil
		nd.match = nil
		nd.panicVal = nil
	}
	nodeSlabPool[slabClass(cap(slab))].Put(slab) //nolint:staticcheck // slice header cost is amortized over the slab
}

// NewEngine creates a reusable engine with the given options. The
// engine allocates nothing until its first Run.
func NewEngine(opts Options) *Engine {
	return &Engine{
		opts:         normalize(opts),
		roundDone:    make(chan struct{}, 1),
		needFullInit: true,
	}
}

// SetOptions replaces the engine's options between runs. Structural
// knobs (DeliveryShards) take effect at the next Run; per-run knobs
// (Seed, Interrupt, Progress, ...) apply exactly as if the engine had
// been created with them. Must not be called while a Run is in flight.
func (e *Engine) SetOptions(opts Options) {
	e.opts = normalize(opts)
}

// Close releases the engine's retained slabs back to the process-wide
// pools. The engine remains usable: a later Run re-acquires fresh
// slabs. Closing between runs is how the one-shot package-level Run
// keeps slab reuse working across independent engines.
func (e *Engine) Close() {
	if e.qSlab != nil {
		qSlabPool[slabClass(cap(e.qSlab))].Put(e.qSlab) //nolint:staticcheck // slice header cost is amortized over the slab
		e.qSlab = nil
	}
	if e.msgSlab != nil {
		msgSlabPool[slabClass(cap(e.msgSlab))].Put(e.msgSlab) //nolint:staticcheck
		e.msgSlab = nil
	}
	if e.wakeChs != nil {
		wakeChPool[slabClass(cap(e.wakeChs))].Put(e.wakeChs) //nolint:staticcheck
		e.wakeChs = nil
	}
	if e.nodeSlab != nil {
		putNodeSlab(e.nodeSlab)
		e.nodeSlab = nil
	}
	e.g = nil
	e.nodes = nil
	e.dirtyNodes = nil // pointers into the released node slab
	e.needFullInit = true
}

// Run simulates program on every node of g and returns run statistics.
// The graph must be connected and have deterministic port numbering
// (generators call SortAdjacency; see graph docs). The program is
// either a blocking func(*Node) or a compiled StepProgram (see
// Program). One-shot form of (*Engine).Run; see Engine for the
// reusable lifecycle.
func Run(g *graph.Graph, opts Options, program Program) (*Stats, error) {
	e := NewEngine(opts)
	defer e.Close()
	return e.Run(g, program)
}

// Run executes program — a blocking func(*Node) or a compiled
// StepProgram (see Program) — on every node of g. Stats are
// bit-identical to a fresh engine's for the same graph, options, and
// seed — reuse never leaks state between runs, and an engine may
// alternate freely between blocking and step programs. The graph must
// not be mutated between runs that share it.
func (e *Engine) Run(g *graph.Graph, program Program) (*Stats, error) {
	start := time.Now()
	e.runStart = start
	switch p := program.(type) {
	case func(*Node):
		e.program, e.stepProg = p, nil
	case StepProgram:
		e.program, e.stepProg = nil, p
	default:
		return nil, fmt.Errorf("congest: program must be a func(*congest.Node) or a congest.StepProgram, got %T", program)
	}
	e.setupRun(g)
	if e.stepProg != nil {
		e.stepProg.InitRun(g.N())
	}
	e.setupNanos = time.Since(start).Nanoseconds()
	err := e.coordinate()
	e.termWG.Wait()
	for _, sh := range e.shards {
		if sh.taskCh != nil {
			close(sh.taskCh)
			sh.taskCh = nil
		}
	}
	stats := e.collectAndReset()
	if err != nil {
		// An abort can strand messages in arbitrary queues; recarve
		// everything next time rather than trusting the dirty list.
		e.needFullInit = true
	}
	// Drop the program references so a retained engine does not pin the
	// caller's closures or state slabs between runs.
	e.program, e.stepProg = nil, nil
	return stats, err
}

// setupRun prepares the engine for one run: per-run counters, shard
// reconciliation, and either a full (re)build of the port tables,
// slabs, and node structs — first run, new graph, or after an abort —
// or the warm path, which resets only the queues the previous run
// dirtied.
func (e *Engine) setupRun(g *graph.Graph) {
	n := g.N()
	e.workers = e.opts.Workers
	e.round = 0
	e.delivered = 0
	e.wakeups = 0
	e.aborted.Store(false)
	e.runGen++
	e.marks = nil
	e.timing = e.opts.Observer != nil
	e.obsDelivered = 0
	e.deliverNs = 0
	e.notified = e.notified[:0]
	e.receivers = e.receivers[:0]
	e.newCount.Store(0)
	e.senderCount = 0
	e.sleepers = e.sleepers[:0]

	full := e.needFullInit || g != e.g
	e.g = g
	if full {
		e.buildRevPorts()
	}
	ports := len(e.revPort)

	// Shard reconciliation: the resolved count is min(option, n) so
	// tiny graphs never pay per-round task fan-out for idle shards.
	// Generation arrays are retained with their shard structs.
	want := e.opts.DeliveryShards
	if want > n {
		want = n
	}
	if len(e.shards) != want {
		e.shards = make([]*deliveryShard, want)
		for s := range e.shards {
			e.shards[s] = &deliveryShard{eng: e, recvGen: make([]uint32, n)}
		}
		if want > 1 {
			e.shardDone = make(chan struct{}, want)
		}
	}
	for _, sh := range e.shards {
		sh.senders = sh.senders[:0]
		sh.receivers = sh.receivers[:0]
		sh.delivered = 0
		if len(sh.recvGen) < n {
			sh.recvGen = make([]uint32, n)
			sh.curGen = 0
		}
	}
	if len(e.shards) > 1 {
		if len(e.recvGen) < n {
			e.recvGen = make([]uint32, n)
			e.curGen = 0
		}
		for _, sh := range e.shards {
			sh.taskCh = make(chan shardTask, 1)
			go sh.loop(sh.taskCh)
		}
	}

	if !full {
		// Warm path: everything structural is already in place; node
		// fields were reset when the previous run ended. Only the
		// queues dirtied last run need restoring to their carved state.
		e.resetDirtyQueues()
		return
	}

	if cap(e.newSenders) < n {
		e.newSenders = make([]*Node, n)
	} else {
		e.newSenders = e.newSenders[:n]
	}
	if cap(e.nodes) < n {
		e.nodes = make([]*Node, n)
	} else {
		e.nodes = e.nodes[:n]
	}
	e.dirtyNodes = e.dirtyNodes[:0]

	// Acquire or right-size the slabs. A slab whose capacity suffices
	// is reused in place; an undersized one returns to its pool and a
	// larger one is drawn (possibly from another engine's release).
	if cap(e.qSlab) < 2*ports {
		if e.qSlab != nil {
			qSlabPool[slabClass(cap(e.qSlab))].Put(e.qSlab) //nolint:staticcheck
		}
		e.qSlab = getQSlab(2 * ports)
	} else {
		e.qSlab = e.qSlab[:2*ports]
	}
	if want := ports * (slabOutCap + slabInCap); want <= maxPreallocMessages {
		if cap(e.msgSlab) < want {
			if e.msgSlab != nil {
				msgSlabPool[slabClass(cap(e.msgSlab))].Put(e.msgSlab) //nolint:staticcheck
			}
			e.msgSlab = getMsgSlab(want)
		} else {
			e.msgSlab = e.msgSlab[:want]
		}
	} else if e.msgSlab != nil {
		msgSlabPool[slabClass(cap(e.msgSlab))].Put(e.msgSlab) //nolint:staticcheck
		e.msgSlab = nil
	}
	if cap(e.wakeChs) < n {
		if e.wakeChs != nil {
			wakeChPool[slabClass(cap(e.wakeChs))].Put(e.wakeChs) //nolint:staticcheck
		}
		e.wakeChs = getWakeSlab(n)
	} else {
		e.wakeChs = e.wakeChs[:n]
	}
	if cap(e.nodeSlab) < n {
		if e.nodeSlab != nil {
			putNodeSlab(e.nodeSlab)
		}
		e.nodeSlab = getNodeSlab(n)
	} else {
		e.nodeSlab = e.nodeSlab[:n]
	}

	// Carve each queue's initial ring from the slab: send queues get
	// slabOutCap slots, receive queues slabInCap (see queue.go). The
	// layout is segregated, not interleaved — qSlab[0:ports] holds
	// every send-queue header in port order and qSlab[ports:] every
	// receive-queue header, with rings carved in the same two passes
	// — so the randomly-addressed receive-side state that delivery
	// hits (headers + small rings) is compact enough to stay
	// cache-resident instead of being strewn through the whole slab.
	qSlab := e.qSlab
	if e.msgSlab != nil {
		for i := 0; i < ports; i++ {
			off := i * slabOutCap
			qSlab[i] = queue{buf: e.msgSlab[off : off+slabOutCap : off+slabOutCap]}
		}
		inBase := ports * slabOutCap
		for i := 0; i < ports; i++ {
			off := inBase + i*slabInCap
			qSlab[ports+i] = queue{buf: e.msgSlab[off : off+slabInCap : off+slabInCap]}
		}
	} else {
		for i := range qSlab {
			qSlab[i] = queue{}
		}
	}
	for i := 0; i < n; i++ {
		adj := g.Adj(graph.NodeID(i))
		off := int(e.portOff[i])
		nd := &e.nodeSlab[i]
		rng := nd.rng // survives reinit; reseeded lazily via runGen
		*nd = Node{
			id:       graph.NodeID(i),
			eng:      e,
			adj:      adj,
			rng:      rng,
			outQ:     qSlab[off : off+len(adj)],
			inQ:      qSlab[ports+off : ports+off+len(adj)],
			wakeCh:   e.wakeChs[i],
			hintPort: -1,
		}
		e.nodes[i] = nd
	}
	e.needFullInit = false
}

// resetDirtyQueues restores the carved state of every queue the last
// run touched: each dirty node's send rings plus, via the reverse port
// table, the exact receive rings those sends fed at its peers. Grown
// rings return to the shared pool. Clean queues — the vast majority on
// sparse or early-terminating workloads — are left exactly as the
// carve pass wrote them.
func (e *Engine) resetDirtyQueues() {
	ports := len(e.revPort)
	for _, nd := range e.dirtyNodes {
		off := int(e.portOff[nd.id])
		for p := range nd.adj {
			q := &e.qSlab[off+p]
			if e.msgSlab != nil {
				if len(q.buf) != slabOutCap {
					msgBufPool.put(q.buf)
					mo := (off + p) * slabOutCap
					q.buf = e.msgSlab[mo : mo+slabOutCap : mo+slabOutCap]
				}
				q.head, q.n = 0, 0
			} else {
				msgBufPool.put(q.buf)
				*q = queue{}
			}
			po := int(e.portOff[nd.adj[p].Peer]) + int(e.revPort[off+p])
			iq := &e.qSlab[ports+po]
			if e.msgSlab != nil {
				if len(iq.buf) != slabInCap {
					msgBufPool.put(iq.buf)
					mo := ports*slabOutCap + po*slabInCap
					iq.buf = e.msgSlab[mo : mo+slabInCap : mo+slabInCap]
				}
				iq.head, iq.n = 0, 0
			} else {
				msgBufPool.put(iq.buf)
				*iq = queue{}
			}
		}
		nd.nonEmptyOut = 0
		nd.outDirty = false
		nd.everDirty = false
	}
	e.dirtyNodes = e.dirtyNodes[:0]
}

// collectAndReset assembles the run's Stats and resets the sent
// counters the run mutated. The walk is proportional to traffic, not
// graph size: only dirty nodes (those that sent at least once) carry a
// sent count, and undelivered leftovers can only sit in receive queues
// a dirty sender fed — each (sender, port) pair feeds exactly one
// per-port FIFO at its peer, so summing over the dirty nodes' fed
// queues counts every leftover exactly once. The other per-node run
// state needs no teardown pass at all: phase and match are cleared at
// the node's next spawn (see activate), a consumed hint always resets
// itself, and panics force a full reinitialization. Called after every
// node goroutine has exited.
func (e *Engine) collectAndReset() *Stats {
	// An abort between round barriers can leave senders registered but
	// not yet merged into the dirty list; fold them in so their sent
	// counts are included (and reset) like everyone else's.
	if k := int(e.newCount.Swap(0)); k > 0 {
		for _, nd := range e.newSenders[:k] {
			if !nd.everDirty {
				nd.everDirty = true
				e.dirtyNodes = append(e.dirtyNodes, nd)
			}
		}
	}
	var sent, leftover int64
	ports := len(e.revPort)
	for _, nd := range e.dirtyNodes {
		sent += nd.sent
		nd.sent = 0
		off := int(e.portOff[nd.id])
		for p := range nd.adj {
			po := int(e.portOff[nd.adj[p].Peer]) + int(e.revPort[off+p])
			leftover += int64(e.qSlab[ports+po].n)
		}
	}
	return &Stats{
		Rounds:     e.round,
		Sent:       sent,
		Delivered:  e.delivered,
		Wakeups:    e.wakeups,
		Leftover:   leftover,
		DirtyNodes: len(e.dirtyNodes),
		Marks:      e.marks,
		SetupNanos: e.setupNanos,
	}
}

// runNode hosts one node program, spawned at the node's first
// activation (the program starts executing immediately; there is no
// initial wake handshake).
func (e *Engine) runNode(nd *Node) {
	defer e.termWG.Done()
	defer func() {
		if r := recover(); r != nil && r != errAborted {
			nd.panicVal = &PanicError{Node: nd.id, Value: r, Stack: string(debug.Stack())}
		}
		nd.phase = phaseDone
		e.notifyPark(nd)
	}()
	e.program(nd)
}

func (e *Engine) buildRevPorts() {
	n := e.g.N()
	if cap(e.portOff) < n+1 {
		e.portOff = make([]int32, n+1)
	} else {
		e.portOff = e.portOff[:n+1]
	}
	for u := 0; u < n; u++ {
		e.portOff[u+1] = e.portOff[u] + int32(len(e.g.Adj(graph.NodeID(u))))
	}
	ports := int(e.portOff[n])
	if cap(e.revPort) < ports {
		e.revPort = make([]int32, ports)
	} else {
		e.revPort = e.revPort[:ports]
	}
	for u := 0; u < n; u++ {
		off := e.portOff[u]
		for p, h := range e.g.Adj(graph.NodeID(u)) {
			e.revPort[off+int32(p)] = int32(e.g.PortOf(h.Peer, h.EdgeID))
		}
	}
}

// addSender registers nd in the sender set; called by node goroutines
// on the first Send after being drained.
func (e *Engine) addSender(nd *Node) {
	e.newSenders[e.newCount.Add(1)-1] = nd
}

// notifyPark ends a node activation. Called from node goroutines. In
// lane mode the parking node first chains its lane to the next
// scheduled node — spawning its goroutine if this is the node's first
// activation — so the round's wake list drains through Workers
// concurrent chains with one channel operation per activation instead
// of a wake/park handshake against pool goroutines.
func (e *Engine) notifyPark(nd *Node) {
	if e.aborted.Load() {
		return // teardown: the coordinator only waits on termWG now
	}
	if nd.phase != phaseRecv {
		e.notifyMu.Lock()
		e.notified = append(e.notified, nd)
		e.notifyMu.Unlock()
	}
	if e.workers > 0 {
		if i := int(e.wakeIdx.Add(1)) - 1; i < len(e.curWake) {
			e.activate(e.curWake[i])
		}
	}
	if e.running.Add(-1) == 0 {
		e.roundDone <- struct{}{}
	}
}

// activate runs one activation of nd: the first of a run spawns the
// node's goroutine (the lazy start), later ones send a wake permit to
// its parked goroutine. The spawn decision compares the node's spawn
// generation to the engine's run counter, so per-node run state left
// behind by a previous clean run (phase, a pinned match closure) is
// cleared here, at the node's first activation, instead of by an O(n)
// teardown pass.
func (e *Engine) activate(nd *Node) {
	if nd.spawnGen != e.runGen {
		nd.spawnGen = e.runGen
		nd.phase = phaseRunning
		nd.match = nil
		e.termWG.Add(1)
		go e.runNode(nd)
		return
	}
	nd.phase = phaseRunning
	nd.wakeCh <- struct{}{}
}

// dispatch runs one activation of every node in wake and returns when
// all of them have parked or exited. Step programs run as direct calls
// (see dispatchStep). For blocking programs, direct mode activates
// every scheduled node; lane mode releases one batch of Workers wake
// permits and lets parking nodes chain the rest (see notifyPark).
func (e *Engine) dispatch(wake []*Node) {
	if e.stepProg != nil {
		e.dispatchStep(wake)
		return
	}
	if len(wake) == 0 {
		return
	}
	e.running.Store(int32(len(wake)))
	if e.workers > 0 {
		w := e.workers
		if w > len(wake) {
			w = len(wake)
		}
		e.curWake = wake
		e.wakeIdx.Store(int32(w))
		for _, nd := range wake[:w] {
			e.activate(nd)
		}
	} else {
		for _, nd := range wake {
			e.activate(nd)
		}
	}
	<-e.roundDone
}

// coordinate is the engine main loop; it runs on the caller goroutine.
// It returns nil on clean completion and the abort cause otherwise;
// stats are assembled by the caller once every node goroutine exited.
func (e *Engine) coordinate() error {
	n := len(e.nodes)
	done := 0
	var firstPanic error

	// Initial activation: every node starts (not counted in Wakeups,
	// matching the historical accounting of the engine).
	e.wake = append(e.wake[:0], e.nodes...)
	for {
		e.dispatch(e.wake)
		for _, nd := range e.notified {
			if nd.phase == phaseDone {
				done++
				if pe, ok := nd.panicVal.(*PanicError); ok && firstPanic == nil {
					firstPanic = pe
				}
			} else { // phaseSleep
				heap.Push(&e.sleepers, sleepEntry{at: nd.wakeAt, gen: nd.parkGen, nd: nd})
			}
		}
		e.notified = e.notified[:0]
		if firstPanic != nil {
			return e.abort(firstPanic)
		}
		// Every node is parked here, so an interrupt abort is clean.
		if ch := e.opts.Interrupt; ch != nil {
			select {
			case <-ch:
				return e.abort(ErrInterrupted)
			default:
			}
		}
		chaos.Inject(chaos.SiteEngineRound)
		if d := e.opts.Deadline; !d.IsZero() && !time.Now().Before(d) {
			return e.abort(&BudgetError{Deadline: d, Rounds: e.round, Messages: e.delivered})
		}
		e.mergeSenders()
		if done == n && e.senderCount == 0 {
			return nil
		}
		// Decide the next round: the immediate next one if traffic is in
		// flight, otherwise fast-forward to the earliest sleep deadline.
		if e.senderCount > 0 {
			e.round++
		} else {
			e.purgeStaleSleepers()
			if e.sleepers.Len() == 0 {
				return e.abort(e.deadlockError(done))
			}
			e.round = e.sleepers[0].at
		}
		if e.round > e.opts.MaxRounds {
			return e.abort(&BudgetError{RoundLimit: e.opts.MaxRounds, Rounds: e.round, Messages: e.delivered})
		}
		if e.timing {
			t0 := time.Now()
			e.deliver()
			e.deliverNs = time.Since(t0).Nanoseconds()
		} else {
			e.deliver()
		}
		if pg := e.opts.Progress; pg != nil {
			pg.round.Store(int64(e.round))
			pg.delivered.Store(e.delivered)
		}
		e.buildWakeSet()
		e.wakeups += int64(len(e.wake))
		if e.opts.Observer != nil {
			e.observeRound()
		}
	}
}

// observeRound assembles and delivers the round barrier's RoundRecord
// (see Options.Observer). Out of line so the round loop stays small;
// only reached when an observer is set.
func (e *Engine) observeRound() {
	e.shardNs = e.shardNs[:0]
	for _, sh := range e.shards {
		e.shardNs = append(e.shardNs, sh.nanos)
	}
	rec := RoundRecord{
		Round:          e.round,
		Delivered:      e.delivered - e.obsDelivered,
		TotalDelivered: e.delivered,
		Woken:          len(e.wake),
		DirtyNodes:     len(e.dirtyNodes),
		Nanos:          time.Since(e.runStart).Nanoseconds(),
		DeliveryNanos:  e.deliverNs,
		ShardNanos:     e.shardNs,
	}
	e.obsDelivered = e.delivered
	e.opts.Observer.ObserveRound(rec)
}

// mergeSenders distributes nodes registered during the last activations
// over the per-shard sender registries (by node-ID range, so every
// sender is delivered by exactly one shard) and refreshes the total
// sender count the round-advance decision uses. Registries are kept
// ordered by node ID: delivery order is semantically irrelevant (see
// the package docs), but ID order makes the delivery phase stream
// sequentially through the node and queue slabs instead of hopping in
// goroutine-registration order, which is worth a large constant factor
// in cache hits on big graphs. First-time registrations also join the
// run's dirty-node list, which is what the warm-reuse reset walks.
func (e *Engine) mergeSenders() {
	k := int(e.newCount.Swap(0))
	if k > 0 {
		for _, nd := range e.newSenders[:k] {
			if !nd.everDirty {
				nd.everDirty = true
				e.dirtyNodes = append(e.dirtyNodes, nd)
			}
		}
		if len(e.shards) == 1 {
			e.shards[0].addSenders(e.newSenders[:k])
		} else {
			p, n := int64(len(e.shards)), int64(len(e.nodes))
			lo := 0
			// newSenders entries for one shard form a contiguous run
			// only after grouping; partition by shard, then bulk-add.
			sort.Slice(e.newSenders[:k], func(i, j int) bool {
				return e.newSenders[i].id < e.newSenders[j].id
			})
			for s, sh := range e.shards {
				hi := lo
				for hi < k && int64(e.newSenders[hi].id)*p/n == int64(s) {
					hi++
				}
				if hi > lo {
					sh.addSenders(e.newSenders[lo:hi])
					lo = hi
				}
			}
		}
	}
	e.senderCount = 0
	for _, sh := range e.shards {
		e.senderCount += len(sh.senders)
	}
}

// addSenders appends batch (which the caller has sorted by node ID) to
// the shard's registry and restores ID order with one backward in-place
// merge — O(len + |batch|), no full re-sort.
func (sh *deliveryShard) addSenders(batch []*Node) {
	if !sort.SliceIsSorted(batch, func(i, j int) bool { return batch[i].id < batch[j].id }) {
		// Serial mode hands the raw registration-order batch over.
		sort.Slice(batch, func(i, j int) bool { return batch[i].id < batch[j].id })
	}
	old := len(sh.senders)
	if old == 0 {
		sh.senders = append(sh.senders, batch...)
		return
	}
	if sh.senders[old-1].id <= batch[0].id {
		sh.senders = append(sh.senders, batch...)
		return
	}
	sh.scratch = append(sh.scratch[:0], batch...)
	sh.senders = append(sh.senders, batch...)
	i, j, w := old-1, len(sh.scratch)-1, len(sh.senders)-1
	for j >= 0 && i >= 0 {
		if sh.scratch[j].id > sh.senders[i].id {
			sh.senders[w] = sh.scratch[j]
			j--
		} else {
			sh.senders[w] = sh.senders[i]
			i--
		}
		w--
	}
	for j >= 0 {
		sh.senders[w] = sh.scratch[j]
		j--
		w--
	}
}

// deliver runs the delivery phase. Serial mode runs the single shard
// inline; sharded mode fans the shards out over their worker goroutines
// and then merges the per-shard delivered counts and receiver sets in
// shard order, deduplicating receivers through the engine's own
// epoch-stamped generation array so the wake phase sees each receiver
// exactly once. Both paths produce identical message state because
// delivery is order-independent across (sender, port) pairs.
func (e *Engine) deliver() {
	if len(e.shards) == 1 {
		sh := e.shards[0]
		sh.deliver()
		e.delivered += sh.delivered
		sh.delivered = 0
		e.receivers = sh.receivers
		e.orderReceivers(sh.recvGen, sh.curGen)
		sh.receivers = e.receivers
	} else {
		for _, sh := range e.shards {
			sh.taskCh <- taskDeliver
		}
		for range e.shards {
			<-e.shardDone
		}
		e.curGen++
		if e.curGen == 0 { // generation wrapped: restart the epoch space
			for i := range e.recvGen {
				e.recvGen[i] = 0
			}
			e.curGen = 1
		}
		e.receivers = e.receivers[:0]
		for _, sh := range e.shards {
			e.delivered += sh.delivered
			sh.delivered = 0
			for _, nd := range sh.receivers {
				if e.recvGen[nd.id] != e.curGen {
					e.recvGen[nd.id] = e.curGen
					e.receivers = append(e.receivers, nd)
				}
			}
		}
		e.orderReceivers(e.recvGen, e.curGen)
	}
}

// orderReceivers rewrites e.receivers in node-ID order: a dense set is
// rebuilt with one sequential sweep of the generation array, a sparse
// one is sorted directly. Receiver order never affects Stats (matching
// is a pure per-node predicate and wake order is semantically free), but
// ID order makes the matching phase and the woken nodes' first Recv
// stream through the node and queue slabs instead of chasing the random
// peer order delivery produced.
func (e *Engine) orderReceivers(gen []uint32, cur uint32) {
	r := e.receivers
	if len(r) <= 1 {
		return
	}
	if len(r)*4 >= len(e.nodes) {
		r = r[:0]
		for i, nd := range e.nodes {
			if gen[i] == cur {
				r = append(r, nd)
			}
		}
		e.receivers = r
	} else {
		sort.Slice(r, func(i, j int) bool { return r[i].id < r[j].id })
	}
}

// loop is one shard worker: it executes delivery and matching tasks for
// its shard until the engine's run ends. The channel is passed by value
// so the goroutine never touches the taskCh field, which the
// coordinator rewrites between runs.
func (sh *deliveryShard) loop(tasks <-chan shardTask) {
	for task := range tasks {
		switch task {
		case taskDeliver:
			sh.deliver()
		case taskMatch:
			sh.match()
		case taskStep:
			sh.stepRange()
		}
		sh.eng.shardDone <- struct{}{}
	}
}

// deliver transmits the head (or, in Unbounded mode, the whole span) of
// every staged edge queue owned by this shard, collects the shard-local
// receiver set, and compacts the shard's sender registry in place. The
// single-message transfer is inlined — one ring read, one ring write —
// and multi-message rounds move whole ring spans with bulk copies.
func (sh *deliveryShard) deliver() {
	e := sh.eng
	var t0 time.Time
	if e.timing {
		t0 = time.Now()
	}
	unbounded := e.opts.Unbounded
	// Hot-path locals: the peer's inQ ring is addressed straight through
	// the flat port tables and the segregated queue slab (the receive
	// queue for port rp of node v is inSlab[portOff[v]+rp]), so
	// delivering a message never touches the peer's Node struct — only
	// its queue header and ring.
	inSlab := e.qSlab[len(e.revPort):]
	portOff, revPort := e.portOff, e.revPort
	sh.curGen++
	if sh.curGen == 0 { // generation wrapped: restart the epoch space
		for i := range sh.recvGen {
			sh.recvGen[i] = 0
		}
		sh.curGen = 1
	}
	sh.receivers = sh.receivers[:0]
	kept := sh.senders[:0]
	for _, nd := range sh.senders {
		off := int(portOff[nd.id])
		rev := revPort[off : off+len(nd.adj)]
		for p := range nd.outQ {
			q := &nd.outQ[p]
			if q.n == 0 {
				continue
			}
			v := nd.adj[p].Peer
			inq := &inSlab[int(portOff[v])+int(rev[p])]
			if unbounded {
				k := q.n
				q.moveTo(&msgBufPool, inq, k)
				sh.delivered += int64(k)
				nd.nonEmptyOut--
			} else {
				m := q.buf[q.head]
				q.head = (q.head + 1) & (len(q.buf) - 1)
				q.n--
				if q.n == 0 {
					q.maybeRelease(&msgBufPool)
					nd.nonEmptyOut--
				}
				if inq.n == len(inq.buf) {
					inq.grow(&msgBufPool)
				}
				inq.buf[(inq.head+inq.n)&(len(inq.buf)-1)] = m
				inq.n++
				sh.delivered++
			}
			if sh.recvGen[v] != sh.curGen {
				sh.recvGen[v] = sh.curGen
				sh.receivers = append(sh.receivers, e.nodes[v])
			}
		}
		if nd.nonEmptyOut > 0 {
			kept = append(kept, nd)
		} else {
			nd.outDirty = false
		}
	}
	sh.senders = kept
	if e.timing {
		sh.nanos = time.Since(t0).Nanoseconds()
	}
}

// match evaluates the Recv predicates of the [lo, hi) chunk of the
// merged receiver list and collects the satisfied ones into the shard's
// wake sublist. Reads queue state only; the single write per receiver
// (the match hint) goes to a node this chunk exclusively owns.
func (sh *deliveryShard) match() {
	e := sh.eng
	sh.wake = sh.wake[:0]
	for _, nd := range e.receivers[sh.lo:sh.hi] {
		if nd.phase != phaseRecv {
			continue // running sleeper accounting separately; done nodes keep leftovers
		}
		if e.matches(nd) {
			sh.wake = append(sh.wake, nd)
		}
	}
}

// parallelMatchMin is the receiver-count threshold below which the
// matching phase stays on the coordinator even when shards exist.
const parallelMatchMin = 64

// buildWakeSet fills e.wake with receivers whose Recv predicate is now
// satisfied plus sleepers whose deadline has passed. With shards and a
// large receiver set, predicate evaluation fans out over the shard
// workers in contiguous chunks whose wake sublists concatenate in chunk
// order (wake-list order never affects Stats; see the package docs).
func (e *Engine) buildWakeSet() {
	e.wake = e.wake[:0]
	if len(e.shards) > 1 && len(e.receivers) >= parallelMatchMin {
		per := (len(e.receivers) + len(e.shards) - 1) / len(e.shards)
		for i, sh := range e.shards {
			sh.lo = i * per
			if sh.lo > len(e.receivers) {
				sh.lo = len(e.receivers)
			}
			sh.hi = sh.lo + per
			if sh.hi > len(e.receivers) {
				sh.hi = len(e.receivers)
			}
			sh.taskCh <- taskMatch
		}
		for range e.shards {
			<-e.shardDone
		}
		for _, sh := range e.shards {
			e.wake = append(e.wake, sh.wake...)
		}
	} else {
		for _, nd := range e.receivers {
			if nd.phase != phaseRecv {
				continue // running sleeper accounting separately; done nodes keep leftovers
			}
			if e.matches(nd) {
				e.wake = append(e.wake, nd)
			}
		}
	}
	for e.sleepers.Len() > 0 && e.sleepers[0].at <= e.round {
		entry := heap.Pop(&e.sleepers).(sleepEntry)
		if entry.live() {
			e.wake = append(e.wake, entry.nd)
		}
	}
}

// purgeStaleSleepers drops heap entries whose node has since been woken
// and re-parked, so fast-forward targets are always live deadlines.
func (e *Engine) purgeStaleSleepers() {
	for e.sleepers.Len() > 0 && !e.sleepers[0].live() {
		heap.Pop(&e.sleepers)
	}
}

// matches reports whether nd's pending Recv predicate is satisfied,
// recording the matching (port, index) as a hint so the woken node's
// Recv can consume the message directly instead of rescanning. The scan
// order (lowest port, FIFO within a port) is exactly TryRecv's, so the
// hint is the message TryRecv would find.
func (e *Engine) matches(nd *Node) bool {
	for p := range nd.inQ {
		q := &nd.inQ[p]
		n := q.n
		if n == 0 {
			continue
		}
		mask := len(q.buf) - 1
		for i := 0; i < n; i++ {
			if nd.match(p, q.buf[(q.head+i)&mask]) {
				nd.hintPort, nd.hintIdx = int32(p), int32(i)
				return true
			}
		}
	}
	return false
}

// abort wakes every parked node so its goroutine unwinds via the
// errAborted panic and returns the causing error; never-activated
// nodes have no goroutine to unwind, and step programs have no
// goroutines at all — their parked nodes are plain state and need no
// teardown. It must only be called from coordinate, i.e. while every
// started node is parked; the caller waits for the unwind via termWG.
func (e *Engine) abort(cause error) error {
	e.aborted.Store(true)
	if e.stepProg != nil {
		return cause
	}
	for _, nd := range e.nodes {
		if nd.phase == phaseRecv || nd.phase == phaseSleep {
			nd.wakeCh <- struct{}{}
		}
	}
	return cause
}

func (e *Engine) deadlockError(done int) error {
	var stuck []graph.NodeID
	for _, nd := range e.nodes {
		if nd.phase == phaseRecv {
			stuck = append(stuck, nd.id)
			if len(stuck) >= 8 {
				break
			}
		}
	}
	return fmt.Errorf("%w at round %d: %d/%d nodes done, first stuck nodes %v",
		ErrDeadlock, e.round, done, len(e.nodes), stuck)
}

func (e *Engine) mark(label string, id graph.NodeID) {
	e.marksMu.Lock()
	defer e.marksMu.Unlock()
	e.marks = append(e.marks, Mark{
		Label:     label,
		Round:     e.round,
		Node:      id,
		Delivered: e.delivered,
		Nanos:     time.Since(e.runStart).Nanoseconds(),
	})
}

// sleepEntry and sleepHeap implement the sleeper priority queue.
type sleepEntry struct {
	at  int
	gen int
	nd  *Node
}

// live reports whether the entry still refers to the node's current
// park (the node has not been woken and re-parked since).
func (s sleepEntry) live() bool {
	return s.nd.phase == phaseSleep && s.nd.parkGen == s.gen
}

type sleepHeap []sleepEntry

func (h sleepHeap) Len() int           { return len(h) }
func (h sleepHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h sleepHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *sleepHeap) Push(x any)        { *h = append(*h, x.(sleepEntry)) }
func (h *sleepHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

var _ heap.Interface = (*sleepHeap)(nil)
