package congest

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"distmincut/internal/graph"
)

// Options configures a simulation run.
type Options struct {
	// Seed derives every node's private RNG. Runs with equal seeds are
	// bit-identical. Zero means seed 1.
	Seed int64
	// MaxRounds aborts runs that exceed this many rounds (safety net
	// against protocol bugs). Zero means DefaultMaxRounds.
	MaxRounds int
	// Unbounded, if set, delivers the entire per-edge send queue each
	// round instead of one message, i.e. a LOCAL-model network with
	// unbounded bandwidth. Used only by the pipelining ablation (E9).
	Unbounded bool
}

// DefaultMaxRounds is the default safety cap on simulated rounds.
const DefaultMaxRounds = 20_000_000

// ErrDeadlock is returned when every node is parked in Recv, nothing is
// in flight, and no sleep deadline is pending.
var ErrDeadlock = errors.New("congest: deadlock")

// ErrMaxRounds is returned when the round cap is exceeded.
var ErrMaxRounds = errors.New("congest: exceeded MaxRounds")

// PanicError wraps a panic raised by a node program.
type PanicError struct {
	Node  graph.NodeID
	Value any
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("congest: node %d panicked: %v", e.Node, e.Value)
}

// Engine drives one simulation. Create with Run; it is not reusable.
type Engine struct {
	g     *graph.Graph
	opts  Options
	nodes []*Node

	round      int
	parked     chan *Node
	outPending outPendingCounter
	sent       atomic.Int64
	delivered  int64
	wakeups    int64
	aborted    atomic.Bool

	// revPort[u][p] is the port index at the peer for port p of node u,
	// precomputed so delivery is O(1) per message.
	revPort [][]int

	sleepers sleepHeap

	marksMu sync.Mutex
	marks   []Mark
}

// Run simulates program on every node of g and returns run statistics.
// The graph must be connected and have deterministic port numbering
// (generators call SortAdjacency; see graph docs).
func Run(g *graph.Graph, opts Options, program func(*Node)) (*Stats, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = DefaultMaxRounds
	}
	n := g.N()
	e := &Engine{
		g:      g,
		opts:   opts,
		nodes:  make([]*Node, n),
		parked: make(chan *Node, n),
	}
	e.buildRevPorts()
	for i := 0; i < n; i++ {
		adj := g.Adj(graph.NodeID(i))
		e.nodes[i] = &Node{
			id:     graph.NodeID(i),
			eng:    e,
			adj:    adj,
			rng:    rand.New(rand.NewSource(opts.Seed*1_000_003 + int64(i))),
			outQ:   make([]queue, len(adj)),
			inQ:    make([]queue, len(adj)),
			wakeCh: make(chan struct{}, 1),
			phase:  phaseRunning,
		}
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for _, nd := range e.nodes {
		go func(nd *Node) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil && r != errAborted {
					nd.panicVal = &PanicError{Node: nd.id, Value: r, Stack: string(debug.Stack())}
				}
				nd.phase = phaseDone
				e.parked <- nd
			}()
			program(nd)
		}(nd)
	}
	stats, err := e.coordinate()
	wg.Wait()
	return stats, err
}

func (e *Engine) buildRevPorts() {
	n := e.g.N()
	e.revPort = make([][]int, n)
	for u := 0; u < n; u++ {
		adj := e.g.Adj(graph.NodeID(u))
		e.revPort[u] = make([]int, len(adj))
		for p, h := range adj {
			e.revPort[u][p] = e.g.PortOf(h.Peer, h.EdgeID)
		}
	}
}

// coordinate is the engine main loop; it runs on the caller goroutine.
func (e *Engine) coordinate() (*Stats, error) {
	running := len(e.nodes)
	done := 0
	var firstPanic error

	waitAllParked := func() {
		for running > 0 {
			nd := <-e.parked
			running--
			if nd.phase == phaseDone {
				done++
				if pe, ok := nd.panicVal.(*PanicError); ok && firstPanic == nil {
					firstPanic = pe
				}
			} else if nd.phase == phaseSleep {
				heap.Push(&e.sleepers, sleepEntry{at: nd.wakeAt, gen: nd.parkGen, nd: nd})
			}
		}
	}

	abort := func(cause error) (*Stats, error) {
		e.aborted.Store(true)
		// Wake every parked non-done node so its goroutine unwinds.
		for _, nd := range e.nodes {
			if nd.phase == phaseRecv || nd.phase == phaseSleep {
				running++
				nd.wakeCh <- struct{}{}
			}
		}
		waitAllParked()
		return e.stats(), cause
	}

	for {
		waitAllParked()
		if firstPanic != nil {
			return abort(firstPanic)
		}
		pending := e.outPending.Load()
		if done == len(e.nodes) && pending == 0 {
			return e.stats(), nil
		}
		// Decide the next round: the immediate next one if traffic is in
		// flight, otherwise fast-forward to the earliest sleep deadline.
		if pending > 0 {
			e.round++
		} else {
			e.purgeStaleSleepers()
			if e.sleepers.Len() == 0 {
				return abort(e.deadlockError(done))
			}
			e.round = e.sleepers[0].at
		}
		if e.round > e.opts.MaxRounds {
			return abort(fmt.Errorf("%w (%d)", ErrMaxRounds, e.opts.MaxRounds))
		}
		receivers := e.deliver()
		wake := e.wakeSet(receivers)
		running = len(wake)
		e.wakeups += int64(running)
		for _, nd := range wake {
			nd.phase = phaseRunning
			nd.wakeCh <- struct{}{}
		}
	}
}

// deliver transmits the head (or, in Unbounded mode, the entirety) of
// every non-empty send queue and returns the set of nodes that received
// at least one message, in ascending ID order.
func (e *Engine) deliver() []*Node {
	var receivers []*Node
	seen := make(map[graph.NodeID]bool)
	for _, nd := range e.nodes {
		if nd.nonEmptyOut == 0 {
			continue
		}
		for p := range nd.outQ {
			q := &nd.outQ[p]
			if q.len() == 0 {
				continue
			}
			k := 1
			if e.opts.Unbounded {
				k = q.len()
			}
			peer := e.nodes[nd.adj[p].Peer]
			rp := e.revPort[nd.id][p]
			for i := 0; i < k; i++ {
				m, _ := q.pop()
				peer.inQ[rp].push(m)
				e.delivered++
			}
			if q.len() == 0 {
				nd.nonEmptyOut--
				e.outPending.Add(-1)
			}
			if !seen[peer.id] {
				seen[peer.id] = true
				receivers = append(receivers, peer)
			}
		}
	}
	sort.Slice(receivers, func(i, j int) bool { return receivers[i].id < receivers[j].id })
	return receivers
}

// wakeSet returns receivers whose Recv predicate is now satisfied plus
// sleepers whose deadline has passed.
func (e *Engine) wakeSet(receivers []*Node) []*Node {
	var wake []*Node
	for _, nd := range receivers {
		if nd.phase != phaseRecv {
			continue // running sleeper accounting separately; done nodes keep leftovers
		}
		if e.matches(nd) {
			wake = append(wake, nd)
		}
	}
	for e.sleepers.Len() > 0 && e.sleepers[0].at <= e.round {
		entry := heap.Pop(&e.sleepers).(sleepEntry)
		if entry.live() {
			wake = append(wake, entry.nd)
		}
	}
	return wake
}

// purgeStaleSleepers drops heap entries whose node has since been woken
// and re-parked, so fast-forward targets are always live deadlines.
func (e *Engine) purgeStaleSleepers() {
	for e.sleepers.Len() > 0 && !e.sleepers[0].live() {
		heap.Pop(&e.sleepers)
	}
}

func (e *Engine) matches(nd *Node) bool {
	for p := range nd.inQ {
		q := &nd.inQ[p]
		for i := 0; i < q.len(); i++ {
			if nd.match(p, q.at(i)) {
				return true
			}
		}
	}
	return false
}

func (e *Engine) deadlockError(done int) error {
	var stuck []graph.NodeID
	for _, nd := range e.nodes {
		if nd.phase == phaseRecv {
			stuck = append(stuck, nd.id)
			if len(stuck) >= 8 {
				break
			}
		}
	}
	return fmt.Errorf("%w at round %d: %d/%d nodes done, first stuck nodes %v",
		ErrDeadlock, e.round, done, len(e.nodes), stuck)
}

func (e *Engine) mark(label string, id graph.NodeID) {
	e.marksMu.Lock()
	defer e.marksMu.Unlock()
	e.marks = append(e.marks, Mark{Label: label, Round: e.round, Node: id})
}

func (e *Engine) stats() *Stats {
	var leftover int64
	for _, nd := range e.nodes {
		leftover += nd.leftover()
	}
	return &Stats{
		Rounds:    e.round,
		Sent:      e.sent.Load(),
		Delivered: e.delivered,
		Wakeups:   e.wakeups,
		Leftover:  leftover,
		Marks:     e.marks,
	}
}

// sleepEntry and sleepHeap implement the sleeper priority queue.
type sleepEntry struct {
	at  int
	gen int
	nd  *Node
}

// live reports whether the entry still refers to the node's current
// park (the node has not been woken and re-parked since).
func (s sleepEntry) live() bool {
	return s.nd.phase == phaseSleep && s.nd.parkGen == s.gen
}

type sleepHeap []sleepEntry

func (h sleepHeap) Len() int           { return len(h) }
func (h sleepHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h sleepHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *sleepHeap) Push(x any)        { *h = append(*h, x.(sleepEntry)) }
func (h *sleepHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

var _ heap.Interface = (*sleepHeap)(nil)
