package congest

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"distmincut/internal/graph"
)

// Options configures a simulation run.
type Options struct {
	// Seed derives every node's private RNG. Runs with equal seeds are
	// bit-identical. Zero means seed 1.
	Seed int64
	// MaxRounds aborts runs that exceed this many rounds (safety net
	// against protocol bugs). Zero means DefaultMaxRounds.
	MaxRounds int
	// Unbounded, if set, delivers the entire per-edge send queue each
	// round instead of one message, i.e. a LOCAL-model network with
	// unbounded bandwidth. Used only by the pipelining ablation (E9).
	Unbounded bool
	// Workers, when positive, bounds how many node programs execute
	// concurrently: scheduled nodes are multiplexed over this many lane
	// workers instead of all being made runnable at once, so huge
	// graphs stop thrashing the Go scheduler with n simultaneously
	// runnable goroutines. Zero (the default) wakes every scheduled
	// node at once. Stats are identical in both modes for a given seed.
	Workers int
}

// DefaultMaxRounds is the default safety cap on simulated rounds.
const DefaultMaxRounds = 20_000_000

// ErrDeadlock is returned when every node is parked in Recv, nothing is
// in flight, and no sleep deadline is pending.
var ErrDeadlock = errors.New("congest: deadlock")

// ErrMaxRounds is returned when the round cap is exceeded.
var ErrMaxRounds = errors.New("congest: exceeded MaxRounds")

// PanicError wraps a panic raised by a node program.
type PanicError struct {
	Node  graph.NodeID
	Value any
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("congest: node %d panicked: %v", e.Node, e.Value)
}

// Engine drives one simulation with a round-synchronous scheduler.
// Create with Run; it is not reusable.
//
// The scheduler's round loop allocates nothing in steady state: the
// sender registry, receiver set, wake list, and park notifications all
// live in reusable per-engine buffers, and message rings come from a
// shared pool. Per round the coordinator (1) merges newly registered
// senders, (2) delivers the head of every staged edge queue, stamping
// receivers into an epoch-numbered generation array instead of a
// per-round map, (3) computes the wake list from satisfied Recv
// predicates and due sleepers, and (4) dispatches it — either waking
// every node at once or funneling them through Options.Workers lanes.
type Engine struct {
	g     *graph.Graph
	opts  Options
	nodes []*Node

	round     int
	delivered int64
	wakeups   int64
	aborted   atomic.Bool

	// revPort[portOff[u]+p] is the port index at the peer for port p of
	// node u, precomputed flat so delivery is O(1) per message with no
	// per-node slice headers.
	revPort []int32
	portOff []int32

	// Sender registry: nodes stage themselves exactly once on their
	// first Send after being drained (guarded by Node.outDirty), so
	// delivery touches only nodes with traffic instead of scanning all
	// n every round. newSenders is written lock-free by node goroutines
	// via the newCount cursor; the coordinator merges it into senders
	// between rounds.
	senders    []*Node
	newSenders []*Node
	newCount   atomic.Int32

	// Receiver set: recvGen[v] == curGen marks v as already collected
	// this round — an epoch-numbered flat array in place of a per-round
	// map, with receivers as the reusable collection order.
	recvGen   []uint32
	curGen    uint32
	receivers []*Node
	wake      []*Node

	// Park barrier: every dispatched node ends its activation in
	// notifyPark. Direct mode counts activations down in running and
	// signals roundDone at zero; worker mode signals per-node park
	// channels so lane workers can chain to the next node. Nodes that
	// parked in Sleep or exited are queued on notified for the
	// coordinator (Recv parks need no attention).
	running   atomic.Int32
	roundDone chan struct{}
	notifyMu  sync.Mutex
	notified  []*Node

	// Worker-pool mode state (Options.Workers > 0).
	workers    int
	workCh     chan struct{}
	curWake    []*Node
	wakeIdx    atomic.Int32
	workerBusy atomic.Int32

	sleepers sleepHeap
	termWG   sync.WaitGroup

	marksMu sync.Mutex
	marks   []Mark
}

// Run simulates program on every node of g and returns run statistics.
// The graph must be connected and have deterministic port numbering
// (generators call SortAdjacency; see graph docs).
func Run(g *graph.Graph, opts Options, program func(*Node)) (*Stats, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = DefaultMaxRounds
	}
	if opts.Workers < 0 {
		opts.Workers = 0
	}
	n := g.N()
	e := &Engine{
		g:          g,
		opts:       opts,
		nodes:      make([]*Node, n),
		newSenders: make([]*Node, n),
		recvGen:    make([]uint32, n),
		roundDone:  make(chan struct{}, 1),
		workers:    opts.Workers,
	}
	e.buildRevPorts()
	// All per-node queues share two slab allocations; Node structs share
	// one more. Only the wake (and, in worker mode, park) channels are
	// allocated per node.
	nodeSlab := make([]Node, n)
	qSlab := make([]queue, 2*len(e.revPort))
	for i := 0; i < n; i++ {
		adj := g.Adj(graph.NodeID(i))
		off := int(e.portOff[i])
		nd := &nodeSlab[i]
		*nd = Node{
			id:     graph.NodeID(i),
			eng:    e,
			adj:    adj,
			outQ:   qSlab[2*off : 2*off+len(adj)],
			inQ:    qSlab[2*off+len(adj) : 2*off+2*len(adj)],
			wakeCh: make(chan struct{}, 1),
			phase:  phaseRunning,
		}
		if e.workers > 0 {
			nd.parkCh = make(chan struct{}, 1)
		}
		e.nodes[i] = nd
	}
	if e.workers > 0 {
		e.workCh = make(chan struct{}, e.workers)
		for i := 0; i < e.workers; i++ {
			go e.workerLoop()
		}
	}
	e.termWG.Add(n)
	for _, nd := range e.nodes {
		go e.nodeMain(nd, program)
	}
	stats, err := e.coordinate()
	e.termWG.Wait()
	if e.workCh != nil {
		close(e.workCh)
	}
	return stats, err
}

// nodeMain hosts one node program. The goroutine blocks until the
// scheduler dispatches its initial activation, so worker-pool mode
// bounds concurrency from the very first instruction.
func (e *Engine) nodeMain(nd *Node, program func(*Node)) {
	defer e.termWG.Done()
	defer func() {
		if r := recover(); r != nil && r != errAborted {
			nd.panicVal = &PanicError{Node: nd.id, Value: r, Stack: string(debug.Stack())}
		}
		nd.phase = phaseDone
		e.notifyPark(nd)
	}()
	<-nd.wakeCh
	if e.aborted.Load() {
		panic(errAborted)
	}
	program(nd)
}

func (e *Engine) buildRevPorts() {
	n := e.g.N()
	e.portOff = make([]int32, n+1)
	for u := 0; u < n; u++ {
		e.portOff[u+1] = e.portOff[u] + int32(len(e.g.Adj(graph.NodeID(u))))
	}
	e.revPort = make([]int32, e.portOff[n])
	for u := 0; u < n; u++ {
		off := e.portOff[u]
		for p, h := range e.g.Adj(graph.NodeID(u)) {
			e.revPort[off+int32(p)] = int32(e.g.PortOf(h.Peer, h.EdgeID))
		}
	}
}

// addSender registers nd in the sender set; called by node goroutines
// on the first Send after being drained.
func (e *Engine) addSender(nd *Node) {
	e.newSenders[e.newCount.Add(1)-1] = nd
}

// notifyPark ends a node activation. Called from node goroutines.
func (e *Engine) notifyPark(nd *Node) {
	if e.aborted.Load() {
		return // teardown: the coordinator only waits on termWG now
	}
	if nd.phase != phaseRecv {
		e.notifyMu.Lock()
		e.notified = append(e.notified, nd)
		e.notifyMu.Unlock()
	}
	if nd.parkCh != nil {
		nd.parkCh <- struct{}{}
	} else if e.running.Add(-1) == 0 {
		e.roundDone <- struct{}{}
	}
}

// dispatch runs one activation of every node in wake and returns when
// all of them have parked or exited.
func (e *Engine) dispatch(wake []*Node) {
	if len(wake) == 0 {
		return
	}
	if e.workers > 0 {
		e.curWake = wake
		e.wakeIdx.Store(0)
		w := e.workers
		if w > len(wake) {
			w = len(wake)
		}
		e.workerBusy.Store(int32(w))
		for i := 0; i < w; i++ {
			e.workCh <- struct{}{}
		}
	} else {
		e.running.Store(int32(len(wake)))
		for _, nd := range wake {
			nd.phase = phaseRunning
			nd.wakeCh <- struct{}{}
		}
	}
	<-e.roundDone
}

// workerLoop is one lane of the worker pool: it claims scheduled nodes
// off the shared wake cursor and runs each to its next park before
// taking another, so at most Options.Workers node programs are runnable
// at any instant.
func (e *Engine) workerLoop() {
	for range e.workCh {
		for {
			i := int(e.wakeIdx.Add(1)) - 1
			if i >= len(e.curWake) {
				break
			}
			nd := e.curWake[i]
			nd.phase = phaseRunning
			nd.wakeCh <- struct{}{}
			<-nd.parkCh
		}
		if e.workerBusy.Add(-1) == 0 {
			e.roundDone <- struct{}{}
		}
	}
}

// coordinate is the engine main loop; it runs on the caller goroutine.
func (e *Engine) coordinate() (*Stats, error) {
	n := len(e.nodes)
	done := 0
	var firstPanic error

	// Initial activation: every node starts (not counted in Wakeups,
	// matching the historical accounting of the engine).
	e.wake = append(e.wake[:0], e.nodes...)
	for {
		e.dispatch(e.wake)
		for _, nd := range e.notified {
			if nd.phase == phaseDone {
				done++
				if pe, ok := nd.panicVal.(*PanicError); ok && firstPanic == nil {
					firstPanic = pe
				}
			} else { // phaseSleep
				heap.Push(&e.sleepers, sleepEntry{at: nd.wakeAt, gen: nd.parkGen, nd: nd})
			}
		}
		e.notified = e.notified[:0]
		if firstPanic != nil {
			return e.abort(firstPanic)
		}
		e.mergeSenders()
		if done == n && len(e.senders) == 0 {
			return e.stats(), nil
		}
		// Decide the next round: the immediate next one if traffic is in
		// flight, otherwise fast-forward to the earliest sleep deadline.
		if len(e.senders) > 0 {
			e.round++
		} else {
			e.purgeStaleSleepers()
			if e.sleepers.Len() == 0 {
				return e.abort(e.deadlockError(done))
			}
			e.round = e.sleepers[0].at
		}
		if e.round > e.opts.MaxRounds {
			return e.abort(fmt.Errorf("%w (%d)", ErrMaxRounds, e.opts.MaxRounds))
		}
		e.deliver()
		e.buildWakeSet()
		e.wakeups += int64(len(e.wake))
	}
}

// mergeSenders folds nodes registered during the last activations into
// the coordinator's sender set.
func (e *Engine) mergeSenders() {
	k := int(e.newCount.Swap(0))
	e.senders = append(e.senders, e.newSenders[:k]...)
}

// deliver transmits the head (or, in Unbounded mode, the entirety) of
// every staged edge queue, collects the receiver set, and compacts the
// sender set in place. Only nodes with traffic are touched; the
// resulting message state is independent of sender order because each
// (sender, port) pair feeds its own per-port FIFO at the peer.
func (e *Engine) deliver() {
	e.curGen++
	e.receivers = e.receivers[:0]
	kept := e.senders[:0]
	for _, nd := range e.senders {
		off := e.portOff[nd.id]
		for p := range nd.outQ {
			q := &nd.outQ[p]
			if q.n == 0 {
				continue
			}
			k := 1
			if e.opts.Unbounded {
				k = q.n
			}
			peer := e.nodes[nd.adj[p].Peer]
			inq := &peer.inQ[e.revPort[off+int32(p)]]
			for i := 0; i < k; i++ {
				m, _ := q.pop(&msgBufPool)
				inq.push(&msgBufPool, m)
			}
			e.delivered += int64(k)
			if q.n == 0 {
				nd.nonEmptyOut--
			}
			if e.recvGen[peer.id] != e.curGen {
				e.recvGen[peer.id] = e.curGen
				e.receivers = append(e.receivers, peer)
			}
		}
		if nd.nonEmptyOut > 0 {
			kept = append(kept, nd)
		} else {
			nd.outDirty = false
		}
	}
	e.senders = kept
}

// buildWakeSet fills e.wake with receivers whose Recv predicate is now
// satisfied plus sleepers whose deadline has passed.
func (e *Engine) buildWakeSet() {
	e.wake = e.wake[:0]
	for _, nd := range e.receivers {
		if nd.phase != phaseRecv {
			continue // running sleeper accounting separately; done nodes keep leftovers
		}
		if e.matches(nd) {
			e.wake = append(e.wake, nd)
		}
	}
	for e.sleepers.Len() > 0 && e.sleepers[0].at <= e.round {
		entry := heap.Pop(&e.sleepers).(sleepEntry)
		if entry.live() {
			e.wake = append(e.wake, entry.nd)
		}
	}
}

// purgeStaleSleepers drops heap entries whose node has since been woken
// and re-parked, so fast-forward targets are always live deadlines.
func (e *Engine) purgeStaleSleepers() {
	for e.sleepers.Len() > 0 && !e.sleepers[0].live() {
		heap.Pop(&e.sleepers)
	}
}

func (e *Engine) matches(nd *Node) bool {
	for p := range nd.inQ {
		q := &nd.inQ[p]
		for i := 0; i < q.len(); i++ {
			if nd.match(p, q.at(i)) {
				return true
			}
		}
	}
	return false
}

// abort wakes every parked node so its goroutine unwinds via the
// errAborted panic, waits for all of them to exit, and returns stats
// with the causing error. It must only be called from coordinate, i.e.
// while every node is parked.
func (e *Engine) abort(cause error) (*Stats, error) {
	e.aborted.Store(true)
	for _, nd := range e.nodes {
		if nd.phase == phaseRecv || nd.phase == phaseSleep {
			nd.wakeCh <- struct{}{}
		}
	}
	e.termWG.Wait()
	return e.stats(), cause
}

func (e *Engine) deadlockError(done int) error {
	var stuck []graph.NodeID
	for _, nd := range e.nodes {
		if nd.phase == phaseRecv {
			stuck = append(stuck, nd.id)
			if len(stuck) >= 8 {
				break
			}
		}
	}
	return fmt.Errorf("%w at round %d: %d/%d nodes done, first stuck nodes %v",
		ErrDeadlock, e.round, done, len(e.nodes), stuck)
}

func (e *Engine) mark(label string, id graph.NodeID) {
	e.marksMu.Lock()
	defer e.marksMu.Unlock()
	e.marks = append(e.marks, Mark{Label: label, Round: e.round, Node: id})
}

func (e *Engine) stats() *Stats {
	var sent, leftover int64
	for _, nd := range e.nodes {
		sent += nd.sent
		leftover += nd.leftover()
	}
	return &Stats{
		Rounds:    e.round,
		Sent:      sent,
		Delivered: e.delivered,
		Wakeups:   e.wakeups,
		Leftover:  leftover,
		Marks:     e.marks,
	}
}

// sleepEntry and sleepHeap implement the sleeper priority queue.
type sleepEntry struct {
	at  int
	gen int
	nd  *Node
}

// live reports whether the entry still refers to the node's current
// park (the node has not been woken and re-parked since).
func (s sleepEntry) live() bool {
	return s.nd.phase == phaseSleep && s.nd.parkGen == s.gen
}

type sleepHeap []sleepEntry

func (h sleepHeap) Len() int           { return len(h) }
func (h sleepHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h sleepHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *sleepHeap) Push(x any)        { *h = append(*h, x.(sleepEntry)) }
func (h *sleepHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

var _ heap.Interface = (*sleepHeap)(nil)
