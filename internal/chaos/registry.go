//go:build chaos

package chaos

import "sync"

// Enabled reports whether this build carries the fault-injection
// registry (it does: this file is compiled under the chaos tag).
const Enabled = true

var (
	mu    sync.RWMutex
	hooks = map[string]func(){}
	fired = map[string]int{}
)

// Arm installs hook at site: the next Inject(site) calls it (every
// Inject, until Disarm). Hooks run on the injecting goroutine — a
// panic propagates exactly as a real fault at that site would.
func Arm(site string, hook func()) {
	mu.Lock()
	defer mu.Unlock()
	hooks[site] = hook
}

// Disarm removes the hook at site.
func Disarm(site string) {
	mu.Lock()
	defer mu.Unlock()
	delete(hooks, site)
}

// Reset disarms every site and clears fire counts.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	hooks = map[string]func(){}
	fired = map[string]int{}
}

// Fired reports how many times Inject has run a hook at site since the
// last Reset. Injections at unarmed sites are not counted.
func Fired(site string) int {
	mu.RLock()
	defer mu.RUnlock()
	return fired[site]
}

// Inject runs the armed hook at site, if any.
func Inject(site string) {
	mu.RLock()
	h := hooks[site]
	mu.RUnlock()
	if h == nil {
		return
	}
	mu.Lock()
	fired[site]++
	mu.Unlock()
	h()
}
