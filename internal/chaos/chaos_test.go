//go:build chaos

package chaos_test

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distmincut/internal/chaos"
	"distmincut/internal/service"
)

// The chaos suite drives panic, stall, and delayed-cancel injections at
// every fault site and asserts the invariants overload handling must
// keep: the process never dies (an injected panic fails one job),
// drains stay clean and bounded, and the content-addressed cache stays
// consistent (post-fault reruns produce the canonical bytes).

func req(seed int64) service.JobRequest {
	return service.JobRequest{
		Graph: service.GraphSpec{Family: "planted", N1: 16, N2: 16, K: 2, InP: 0.5, Seed: seed},
		Mode:  "exact",
	}
}

func bigReq(seed int64) service.JobRequest {
	return service.JobRequest{
		Graph: service.GraphSpec{Family: "planted", N1: 128, N2: 128, K: 3, InP: 0.2, Seed: seed},
		Mode:  "exact",
	}
}

// armPanicOnce arms site with a hook that panics exactly once; later
// injections at the site are no-ops.
func armPanicOnce(site string) {
	var once sync.Once
	chaos.Arm(site, func() {
		fired := false
		once.Do(func() { fired = true })
		if fired {
			panic("chaos: injected fault at " + site)
		}
	})
}

func waitTerminal(t *testing.T, s *service.Service, id string, timeout time.Duration) service.JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		switch v.State {
		case service.StateDone, service.StateFailed, service.StateCanceled, service.StateDeadline:
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, v.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func drain(t *testing.T, s *service.Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// cleanResult computes the canonical result bytes for r on a pristine
// service, for cache-consistency comparisons after injected faults.
func cleanResult(t *testing.T, r service.JobRequest) []byte {
	t.Helper()
	s := service.New(service.Options{PoolSize: 1})
	defer drain(t, s)
	v, err := s.Submit(r)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, v.ID, 2*time.Minute)
	if final.State != service.StateDone {
		t.Fatalf("clean run ended %s: %s", final.State, final.Error)
	}
	return final.Result
}

func TestPanicAtWorkerExecuteFailsOnlyTheJob(t *testing.T) {
	defer chaos.Reset()
	s := service.New(service.Options{PoolSize: 1})
	defer drain(t, s)
	armPanicOnce(chaos.SiteWorkerExecute)
	v, err := s.Submit(req(101))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, v.ID, 2*time.Minute)
	if final.State != service.StateFailed || final.Error == "" {
		t.Fatalf("injected panic: state %s (error %q), want failed", final.State, final.Error)
	}
	if chaos.Fired(chaos.SiteWorkerExecute) != 1 {
		t.Fatalf("fault fired %d times, want 1", chaos.Fired(chaos.SiteWorkerExecute))
	}
	// Process alive, worker alive, cache consistent: the same spec now
	// completes with the canonical bytes.
	retry, err := s.Submit(req(101))
	if err != nil {
		t.Fatal(err)
	}
	rf := waitTerminal(t, s, retry.ID, 2*time.Minute)
	if rf.State != service.StateDone {
		t.Fatalf("retry after panic: %s (%s)", rf.State, rf.Error)
	}
	if want := cleanResult(t, req(101)); !bytes.Equal(rf.Result, want) {
		t.Fatal("post-fault result differs from a clean run")
	}
}

func TestPanicAtWorkerFinalizeFailsOnlyTheJob(t *testing.T) {
	defer chaos.Reset()
	s := service.New(service.Options{PoolSize: 1})
	defer drain(t, s)
	armPanicOnce(chaos.SiteWorkerFinalize)
	v, err := s.Submit(req(102))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, v.ID, 2*time.Minute)
	if final.State != service.StateFailed {
		t.Fatalf("finalize panic: state %s, want failed", final.State)
	}
	retry, err := s.Submit(req(102))
	if err != nil {
		t.Fatal(err)
	}
	if rf := waitTerminal(t, s, retry.ID, 2*time.Minute); rf.State != service.StateDone {
		t.Fatalf("retry after finalize panic: %s (%s)", rf.State, rf.Error)
	}
}

// A per-round stall slows the engine far below real time; the
// wall-clock watchdog must still kill the run at a round boundary.
func TestStallAtEngineRoundStillHitsDeadline(t *testing.T) {
	defer chaos.Reset()
	s := service.New(service.Options{PoolSize: 1})
	defer drain(t, s)
	chaos.Arm(chaos.SiteEngineRound, func() { time.Sleep(2 * time.Millisecond) })
	r := req(103)
	r.DeadlineMS = 150
	v, err := s.Submit(r)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	final := waitTerminal(t, s, v.ID, 2*time.Minute)
	if final.State != service.StateDeadline {
		t.Fatalf("stalled run ended %s, want deadline", final.State)
	}
	if took := time.Since(start); took > 30*time.Second {
		t.Fatalf("deadline enforcement took %v under stall", took)
	}
	if chaos.Fired(chaos.SiteEngineRound) == 0 {
		t.Fatal("stall hook never fired")
	}
	chaos.Disarm(chaos.SiteEngineRound)
	r.DeadlineMS = 0 // same spec (the deadline is not part of the key), no budget
	retry, err := s.Submit(r)
	if err != nil {
		t.Fatal(err)
	}
	if rf := waitTerminal(t, s, retry.ID, 2*time.Minute); rf.State != service.StateDone {
		t.Fatalf("retry without stall: %s (%s)", rf.State, rf.Error)
	}
}

// A delayed cancellation races the run's own completion; both orders
// must leave a clean terminal state and a drainable service.
func TestDelayedCancelRacesCompletion(t *testing.T) {
	defer chaos.Reset()
	s := service.New(service.Options{PoolSize: 1})
	defer drain(t, s)
	chaos.Arm(chaos.SiteCancel, func() { time.Sleep(30 * time.Millisecond) })
	v, err := s.Submit(bigReq(104))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Cancel(v.ID); !ok {
		t.Fatal("cancel reported unknown job")
	}
	final := waitTerminal(t, s, v.ID, 2*time.Minute)
	if final.State != service.StateCanceled && final.State != service.StateDone {
		t.Fatalf("delayed cancel left state %s", final.State)
	}
}

// A stalled drain hook must not break the drain: the deadline is
// enforced against the pool wait, and the service still exits.
func TestStallAtDrainStaysBounded(t *testing.T) {
	defer chaos.Reset()
	s := service.New(service.Options{PoolSize: 1})
	chaos.Arm(chaos.SiteDrain, func() { time.Sleep(100 * time.Millisecond) })
	v, err := s.Submit(bigReq(105))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = s.Shutdown(ctx)
	if took := time.Since(start); took > 30*time.Second {
		t.Fatalf("stalled drain took %v", took)
	}
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain error %v", err)
	}
	if final, _ := s.Job(v.ID); final.State == service.StateRunning || final.State == service.StateQueued {
		t.Fatalf("job left non-terminal after drain: %s", final.State)
	}
}

// An admission pre-pass fault must fail open: the request is admitted
// and served, never dropped by the controller that was meant to
// protect it.
func TestPanicAtAdmissionFailsOpen(t *testing.T) {
	defer chaos.Reset()
	s := service.New(service.Options{
		PoolSize:  1,
		Admission: service.AdmissionOptions{CeilingRounds: 1}, // would reject everything
	})
	defer drain(t, s)
	chaos.Arm(chaos.SiteAdmission, func() { panic("chaos: admission fault") })
	v, err := s.Submit(req(106))
	if err != nil {
		t.Fatalf("fault in admission dropped the request: %v", err)
	}
	if final := waitTerminal(t, s, v.ID, 2*time.Minute); final.State != service.StateDone {
		t.Fatalf("admitted job ended %s (%s)", final.State, final.Error)
	}
	if m := s.Metrics(); m.AdmissionRejected != 0 {
		t.Fatalf("rejected = %d after fail-open, want 0", m.AdmissionRejected)
	}
}

// Concurrent submitters under injected worker faults: no fault may
// leak past its job, and every record reaches a typed terminal state.
func TestConcurrentLoadUnderInjectedFaults(t *testing.T) {
	defer chaos.Reset()
	s := service.New(service.Options{PoolSize: 2, QueueDepth: 64})
	defer drain(t, s)
	var odd atomic.Int64
	chaos.Arm(chaos.SiteWorkerExecute, func() {
		if odd.Add(1)%2 == 1 {
			panic("chaos: periodic worker fault")
		}
	})
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			v, err := s.Submit(req(200 + seed))
			if err != nil {
				errs <- err.Error()
				return
			}
			final := waitTerminal(t, s, v.ID, 2*time.Minute)
			if final.State != service.StateDone && final.State != service.StateFailed {
				errs <- "unexpected terminal state " + string(final.State)
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	chaos.Reset()
	// Cache consistency after the storm: a previously failed spec
	// reruns to the canonical bytes.
	v, err := s.Submit(req(200))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, v.ID, 2*time.Minute)
	if final.State != service.StateDone {
		t.Fatalf("post-storm rerun: %s (%s)", final.State, final.Error)
	}
	if want := cleanResult(t, req(200)); !bytes.Equal(final.Result, want) {
		t.Fatal("post-storm result differs from a clean run")
	}
}
