//go:build !chaos

package chaos

// Enabled reports whether this build carries the fault-injection
// registry. Without the chaos build tag every Inject call is an empty
// function the compiler inlines away.
const Enabled = false

// Inject is a no-op in production builds.
func Inject(site string) {}
