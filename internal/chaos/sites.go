// Package chaos is the repository's fault-injection seam: named fault
// points ("sites") compiled into the engine and the service at the
// places overload and failure handling must hold — worker execution,
// job finalization, cancellation, drain, admission, and the engine's
// round boundary. A production build (no build tag) compiles every
// Inject call to an empty function that the compiler inlines away, so
// the hot path carries no cost. Builds with `-tags chaos` get a real
// registry: tests Arm a site with a hook (panic, stall, delayed
// cancel, ...) and the next Inject at that site runs it.
//
// The chaos test suite (this package's tests, build-tagged chaos)
// drives panic, stall, and delayed-cancellation injections at every
// site under -race and asserts the process never dies, drains stay
// clean, and caches stay consistent. CI runs it as
//
//	go test -race -tags chaos ./internal/chaos/... ./internal/service/...
package chaos

// Fault sites. Each names one Inject call; the comments say where it
// sits and which injections make sense there. Sites inside a recover
// barrier tolerate panic hooks (the job fails, the process lives);
// sites outside a barrier are for stalls and delays only.
const (
	// SiteEngineRound fires at every engine round boundary, while all
	// nodes are parked (congest.Engine coordinate loop). Stall hooks
	// here simulate slow rounds; the wall-clock deadline watchdog must
	// still kill the run at the next boundary.
	SiteEngineRound = "engine.round"

	// SiteWorkerExecute fires inside a service worker's panic barrier,
	// after the context fast-fail and before the graph build. Panic
	// hooks here must fail the one job, never the process.
	SiteWorkerExecute = "service.execute"

	// SiteWorkerFinalize fires after the protocol run, still inside the
	// worker's panic barrier, before job records are finalized. A panic
	// here fails the job (its result is discarded); a stall delays
	// finalization past cancels and drains.
	SiteWorkerFinalize = "service.finalize"

	// SiteCancel fires at the top of Service.Cancel, before the
	// caller's record detaches. Stall hooks model delayed
	// cancellations racing the run's own completion.
	SiteCancel = "service.cancel"

	// SiteDrain fires at the start of Service.Shutdown, after new
	// submissions are refused. Stall hooks model slow drains; the
	// drain deadline must still be honored.
	SiteDrain = "service.drain"

	// SiteAdmission fires inside the admission pre-pass barrier. Panic
	// hooks here must fail open (the submission is admitted and the
	// real run reports the real error).
	SiteAdmission = "service.admission"

	// SiteGatewayForward fires in the replica gateway before every
	// upstream attempt (submits, polls, result fetches, replays). Stall
	// hooks model a black-holed or slow connection: the per-attempt
	// timeout must expire and the request fail over to the next ring
	// replica inside its wall-clock budget.
	SiteGatewayForward = "gateway.forward"

	// SiteGatewayProbe fires before each health probe of one replica.
	// Stall hooks model a slow or unresponsive health endpoint; the
	// probe timeout bounds the sweep and repeated failures must eject
	// the replica.
	SiteGatewayProbe = "gateway.probe"

	// SiteGatewayReplay fires before one tracked job is replayed off a
	// draining or ejected replica. Stall hooks model replays racing the
	// client's own polls and resubmissions — both paths are idempotent,
	// so either winning must yield the same content-addressed result.
	SiteGatewayReplay = "gateway.replay"
)
