package verify

import (
	"testing"
	"testing/quick"

	"distmincut/internal/graph"
	"distmincut/internal/tree"
)

// spanning builds a random spanning tree of g rooted at 0.
func spanning(t *testing.T, g *graph.Graph, seed int64) *tree.Tree {
	t.Helper()
	parent, parentEdge := graph.RandomSpanningTree(g, 0, seed)
	tr, err := tree.New(0, parent, parentEdge)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestLemma22Identity: C(v↓) computed via δ↓ − 2ρ↓ must equal the
// brute-force cut weight of the subtree side, for every node — this is
// the paper's Lemma 2.2 (Karger's Lemma 5.9).
func TestLemma22Identity(t *testing.T) {
	workloads := []*graph.Graph{
		graph.Cycle(12),
		graph.Complete(8),
		graph.Grid(4, 5),
		graph.GNP(25, 0.25, 3),
		graph.AssignWeights(graph.GNP(20, 0.3, 4), 1, 10, 5),
		graph.Hypercube(4),
	}
	for wi, g := range workloads {
		tr := spanning(t, g, int64(wi)+10)
		q := OneRespectOracle(g, tr)
		for v := 0; v < g.N(); v++ {
			want := SubtreeCutDirect(g, tr, graph.NodeID(v))
			if q.Cut[v] != want {
				t.Fatalf("workload %d node %d: Lemma 2.2 gives %d, direct %d", wi, v, q.Cut[v], want)
			}
		}
		if q.Cut[tr.Root()] != 0 {
			t.Fatalf("workload %d: C(root↓) = %d, want 0", wi, q.Cut[tr.Root()])
		}
	}
}

// Property: the identity holds on arbitrary random weighted graphs and
// random spanning trees.
func TestLemma22Property(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%25) + 3
		g := graph.AssignWeights(graph.GNP(n, 0.3, seed), 1, 7, seed+1)
		parent, parentEdge := graph.RandomSpanningTree(g, 0, seed+2)
		tr, err := tree.New(0, parent, parentEdge)
		if err != nil {
			return false
		}
		q := OneRespectOracle(g, tr)
		for v := 0; v < n; v++ {
			if q.Cut[v] != SubtreeCutDirect(g, tr, graph.NodeID(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBestOneRespectFindsPlantedBridge(t *testing.T) {
	// A bridge graph: any spanning tree contains the bridge, and the
	// 1-respecting minimum equals 1.
	g := graph.Barbell(6, 0)
	tr := spanning(t, g, 9)
	q := OneRespectOracle(g, tr)
	best, v := BestOneRespect(q, tr)
	if best != 1 {
		t.Fatalf("best 1-respecting cut %d, want 1 (bridge)", best)
	}
	if v < 0 {
		t.Fatal("no argmin returned")
	}
}

func TestSpanningTreeOfValidation(t *testing.T) {
	g := graph.GNP(20, 0.3, 6)
	tr := spanning(t, g, 7)
	if err := SpanningTreeOf(g, tr); err != nil {
		t.Fatalf("valid spanning tree rejected: %v", err)
	}
	// A tree of a different graph must fail.
	other := graph.Path(20)
	badTree, err := tree.FromGraphTree(other, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 1) {
		t.Skip("path edges coincide with g; pick a different seed")
	}
	if err := SpanningTreeOf(g, badTree); err == nil {
		t.Fatal("foreign tree accepted")
	}
}

func TestCutSidesRejectsDegenerate(t *testing.T) {
	g := graph.Cycle(5)
	if _, err := CutSides(g, make([]bool, 5)); err == nil {
		t.Fatal("empty side accepted")
	}
	all := []bool{true, true, true, true, true}
	if _, err := CutSides(g, all); err == nil {
		t.Fatal("full side accepted")
	}
	one := []bool{true, false, false, false, false}
	w, err := CutSides(g, one)
	if err != nil || w != 2 {
		t.Fatalf("singleton side: w=%d err=%v, want 2,nil", w, err)
	}
}
