// Package verify provides sequential reference computations and
// invariant checks used to validate every distributed result in the
// repository: the 1-respecting-cut oracle (Karger's Lemma 5.9 computed
// centrally), cut re-evaluation from node sides, and structural
// validators for partitions and packings.
package verify

import (
	"fmt"

	"distmincut/internal/graph"
	"distmincut/internal/tree"
)

// Quantities holds, for every node v of a rooted spanning tree, the
// paper's per-node quantities: δ(v) (weighted degree), ρ(v) (total
// weight of edges whose endpoint LCA is v), their subtree accumulations
// δ↓(v), ρ↓(v), and the resulting cut values C(v↓) = δ↓(v) − 2ρ↓(v)
// (Lemma 2.2 / Karger Lemma 5.9).
type Quantities struct {
	Delta     []int64
	Rho       []int64
	DeltaDown []int64
	RhoDown   []int64
	Cut       []int64
}

// OneRespectOracle computes Quantities sequentially. The tree must span
// g. Edges of the tree itself are included in ρ (their LCA is the upper
// endpoint), exactly as in Karger's definition.
func OneRespectOracle(g *graph.Graph, t *tree.Tree) *Quantities {
	n := g.N()
	q := &Quantities{
		Delta: make([]int64, n),
		Rho:   make([]int64, n),
	}
	for v := 0; v < n; v++ {
		q.Delta[v] = g.WeightedDegree(graph.NodeID(v))
	}
	for _, e := range g.Edges() {
		q.Rho[t.LCA(e.U, e.V)] += e.W
	}
	q.DeltaDown = t.SubtreeSum(q.Delta)
	q.RhoDown = t.SubtreeSum(q.Rho)
	q.Cut = make([]int64, n)
	for v := 0; v < n; v++ {
		q.Cut[v] = q.DeltaDown[v] - 2*q.RhoDown[v]
	}
	return q
}

// BestOneRespect returns the minimum of C(v↓) over all non-root v and
// the smallest such v (ties toward lower ID, matching the distributed
// algorithm's tie-breaking).
func BestOneRespect(q *Quantities, t *tree.Tree) (int64, graph.NodeID) {
	var best int64
	bestV := graph.NodeID(-1)
	for v := 0; v < len(q.Cut); v++ {
		if graph.NodeID(v) == t.Root() {
			continue
		}
		if bestV == -1 || q.Cut[v] < best {
			best = q.Cut[v]
			bestV = graph.NodeID(v)
		}
	}
	return best, bestV
}

// SubtreeCutDirect recomputes C(v↓) by brute force: the total weight of
// graph edges with exactly one endpoint in v↓. Tests use it to confirm
// the Lemma 2.2 identity independently.
func SubtreeCutDirect(g *graph.Graph, t *tree.Tree, v graph.NodeID) int64 {
	side := make([]bool, g.N())
	for u := 0; u < g.N(); u++ {
		side[u] = t.IsAncestor(v, graph.NodeID(u))
	}
	return g.CutWeight(side)
}

// SpanningTreeOf checks that t's parent edges all exist in g and span
// it; returns an error otherwise.
func SpanningTreeOf(g *graph.Graph, t *tree.Tree) error {
	if t.N() != g.N() {
		return fmt.Errorf("verify: tree has %d nodes, graph %d", t.N(), g.N())
	}
	for v := 0; v < t.N(); v++ {
		nv := graph.NodeID(v)
		if nv == t.Root() {
			continue
		}
		eid := t.ParentEdge(nv)
		if eid < 0 || eid >= g.M() {
			return fmt.Errorf("verify: node %d parent edge %d out of range", v, eid)
		}
		e := g.Edge(eid)
		if !(e.U == nv && e.V == t.Parent(nv)) && !(e.V == nv && e.U == t.Parent(nv)) {
			return fmt.Errorf("verify: node %d parent edge %d is {%d,%d}, want {%d,%d}",
				v, eid, e.U, e.V, v, t.Parent(nv))
		}
	}
	return nil
}

// CutSides checks that side is a proper nonempty cut (both sides
// nonempty) and returns its weight.
func CutSides(g *graph.Graph, side []bool) (int64, error) {
	if len(side) != g.N() {
		return 0, fmt.Errorf("verify: side length %d != n %d", len(side), g.N())
	}
	in, out := 0, 0
	for _, s := range side {
		if s {
			in++
		} else {
			out++
		}
	}
	if in == 0 || out == 0 {
		return 0, fmt.Errorf("verify: degenerate cut (%d,%d)", in, out)
	}
	return g.CutWeight(side), nil
}
