package baseline

import (
	"errors"
	"testing"
	"testing/quick"

	"distmincut/internal/graph"
	"distmincut/internal/verify"
)

func TestStoerWagnerKnownCuts(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"cycle", graph.Cycle(10), 2},
		{"complete", graph.Complete(7), 6},
		{"star", graph.Star(8), 1},
		{"hypercube", graph.Hypercube(4), 4},
		{"barbell", graph.Barbell(5, 3), 1},
		{"planted3", graph.PlantedCut(12, 14, 3, 0.6, 1), 3},
		{"planted5", graph.PlantedCut(10, 10, 5, 0.7, 2), 5},
		{"cliquepath", graph.CliquePath(4, 6, 2), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, side, err := StoerWagner(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if w != tc.want {
				t.Fatalf("min cut = %d, want %d", w, tc.want)
			}
			got, err := verify.CutSides(tc.g, side)
			if err != nil {
				t.Fatal(err)
			}
			if got != w {
				t.Fatalf("returned side has weight %d, reported %d", got, w)
			}
		})
	}
}

func TestStoerWagnerWeighted(t *testing.T) {
	// Two triangles joined by one heavy edge: min cut is min(heavy,
	// lightest node isolation).
	g := graph.New(6)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 2, 10)
	g.MustAddEdge(0, 2, 10)
	g.MustAddEdge(3, 4, 10)
	g.MustAddEdge(4, 5, 10)
	g.MustAddEdge(3, 5, 10)
	g.MustAddEdge(2, 3, 7)
	g.SortAdjacency()
	w, _, err := StoerWagner(g)
	if err != nil {
		t.Fatal(err)
	}
	if w != 7 {
		t.Fatalf("weighted min cut = %d, want 7", w)
	}
}

func TestStoerWagnerTooSmall(t *testing.T) {
	if _, _, err := StoerWagner(graph.New(1)); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("err = %v, want ErrTooSmall", err)
	}
}

func TestStoerWagnerDisconnected(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(2, 3, 5)
	w, side, err := StoerWagner(g)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0 {
		t.Fatalf("disconnected min cut = %d, want 0", w)
	}
	if got, err := verify.CutSides(g, side); err != nil || got != 0 {
		t.Fatalf("side weight %d err %v", got, err)
	}
}

// TestKargerAgreesWithStoerWagner: two independent exact algorithms
// must agree (Karger run with enough trials to succeed w.h.p.).
func TestKargerAgreesWithStoerWagner(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%14) + 4
		g := graph.AssignWeights(graph.GNP(n, 0.4, seed), 1, 6, seed+1)
		sw, _, err := StoerWagner(g)
		if err != nil {
			return false
		}
		kc, side, err := KargerContract(g, DefaultKargerTrials(n), seed+2)
		if err != nil {
			return false
		}
		if kc != sw {
			t.Logf("n=%d seed=%d: karger %d vs stoer-wagner %d", n, seed, kc, sw)
			return false
		}
		got, err := verify.CutSides(g, side)
		return err == nil && got == kc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: Stoer–Wagner never exceeds the minimum weighted degree
// (isolating one node is always a cut), and is positive on connected
// graphs.
func TestStoerWagnerBounds(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%20) + 3
		g := graph.AssignWeights(graph.GNP(n, 0.3, seed), 1, 9, seed+3)
		w, _, err := StoerWagner(g)
		if err != nil {
			return false
		}
		return w >= 1 && w <= graph.MinDegree(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
