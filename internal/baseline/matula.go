package baseline

import (
	"math"
	"sort"

	"distmincut/internal/graph"
)

// Matula computes a (2+ε)-approximation of the minimum cut
// sequentially, in the style of Matula [1993] as used by
// Ghaffari–Kuhn's distributed algorithm: repeatedly take a sparse
// certificate (a union of k ≈ λ̂/(2+ε) spanning forests, Nagamochi–
// Ibaraki style), contract every non-certificate edge, and track the
// minimum degree seen. Contraction never decreases the minimum cut, so
// the returned value never falls below λ; the certificate/contraction
// interplay keeps it within (2+ε)·λ (measured in experiment E5).
//
// Certificate depth is capped (weighted graphs can have huge λ̂); the
// cap only costs precision above it, which the experiments avoid.
func Matula(g *graph.Graph, eps float64) (int64, error) {
	if g.N() < 2 {
		return 0, ErrTooSmall
	}
	if eps <= 0 {
		eps = 0.1
	}
	const maxForests = 4096

	// Mutable supernode multigraph: adjacency with aggregated weights.
	adj := make([]map[int]int64, g.N())
	for i := range adj {
		adj[i] = make(map[int]int64)
	}
	for _, e := range g.Edges() {
		adj[e.U][int(e.V)] += e.W
		adj[e.V][int(e.U)] += e.W
	}
	alive := make([]bool, g.N())
	for i := range alive {
		alive[i] = true
	}
	nAlive := g.N()

	minDegree := func() int64 {
		best := int64(math.MaxInt64)
		for v, ok := range alive {
			if !ok {
				continue
			}
			var d int64
			for _, w := range adj[v] {
				d += w
			}
			if d < best {
				best = d
			}
		}
		return best
	}

	lambdaHat := minDegree()
	for nAlive > 2 {
		k := int64(math.Ceil(float64(lambdaHat)/(2+eps))) + 1
		if k > maxForests {
			k = maxForests
		}
		contracted := contractOutsideCertificate(adj, alive, k)
		if contracted == 0 {
			break
		}
		nAlive -= contracted
		if nAlive < 2 {
			break
		}
		if d := minDegree(); d < lambdaHat {
			lambdaHat = d
		}
	}
	return lambdaHat, nil
}

// contractOutsideCertificate builds a k-deep forest certificate of the
// current supernode graph and contracts every edge with residual
// weight outside it. Returns the number of supernodes eliminated.
func contractOutsideCertificate(adj []map[int]int64, alive []bool, k int64) int {
	type edge struct {
		u, v int
		w    int64
	}
	var edges []edge
	for u, ok := range alive {
		if !ok {
			continue
		}
		for v, w := range adj[u] {
			if u < v {
				edges = append(edges, edge{u, v, w})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	// k rounds of forest extraction; used[e] counts how many forests
	// took a unit of e.
	used := make([]int64, len(edges))
	n := len(alive)
	for round := int64(0); round < k; round++ {
		uf := newUnionFind(n)
		took := false
		for i, e := range edges {
			if used[i] >= e.w {
				continue // capacity exhausted
			}
			if uf.union(e.u, e.v) {
				used[i]++
				took = true
			}
		}
		if !took {
			break
		}
	}
	// Contract edges entirely untouched by the certificate.
	uf := newUnionFind(n)
	contracted := 0
	for i, e := range edges {
		if used[i] == 0 {
			if uf.union(e.u, e.v) {
				contracted++
			}
		}
	}
	if contracted == 0 {
		return 0
	}
	// Rebuild adjacency over representatives from the edge list (each
	// undirected edge exactly once).
	newAdj := make([]map[int]int64, n)
	for _, e := range edges {
		ru, rv := uf.find(e.u), uf.find(e.v)
		if ru == rv {
			continue // self loop after contraction
		}
		if newAdj[ru] == nil {
			newAdj[ru] = make(map[int]int64)
		}
		if newAdj[rv] == nil {
			newAdj[rv] = make(map[int]int64)
		}
		newAdj[ru][rv] += e.w
		newAdj[rv][ru] += e.w
	}
	for u := range adj {
		if !alive[u] {
			continue
		}
		if uf.find(u) != u {
			alive[u] = false
			adj[u] = make(map[int]int64)
			continue
		}
		if newAdj[u] == nil {
			newAdj[u] = make(map[int]int64)
		}
		adj[u] = newAdj[u]
	}
	return contracted
}

// unionFind here is a local copy (baseline must not depend on mst).
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	u.parent[rb] = ra
	return true
}
