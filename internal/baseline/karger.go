package baseline

import (
	"math"
	"math/rand"

	"distmincut/internal/graph"
)

// KargerContract runs Karger's randomized contraction algorithm with
// the given number of independent trials and returns the best cut
// found. With trials = Θ(n² log n) the result is the exact minimum cut
// with high probability; tests use it as an independent cross-check of
// Stoer–Wagner on small graphs. Weighted edges are contracted with
// probability proportional to weight.
func KargerContract(g *graph.Graph, trials int, seed int64) (int64, []bool, error) {
	n := g.N()
	if n < 2 {
		return 0, nil, ErrTooSmall
	}
	rng := rand.New(rand.NewSource(seed))
	best := int64(-1)
	var bestSide []bool
	for trial := 0; trial < trials; trial++ {
		w, side := contractOnce(g, rng)
		if best < 0 || w < best {
			best = w
			bestSide = side
		}
	}
	return best, bestSide, nil
}

// DefaultKargerTrials returns a trial count giving >= 1-1/n success
// probability (n² ln n, capped for tiny graphs).
func DefaultKargerTrials(n int) int {
	if n < 2 {
		return 1
	}
	t := int(float64(n) * float64(n) * math.Log(float64(n)+1))
	if t < 10 {
		t = 10
	}
	return t
}

// contractOnce contracts uniformly at random (weight-proportional)
// until two supernodes remain.
func contractOnce(g *graph.Graph, rng *rand.Rand) (int64, []bool) {
	n := g.N()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	// Live edge list with weights; pick by cumulative weight.
	edges := make([]liveEdge, 0, g.M())
	for _, e := range g.Edges() {
		edges = append(edges, liveEdge{int(e.U), int(e.V), e.W})
	}
	remaining := n
	for remaining > 2 {
		var total int64
		for _, e := range edges {
			total += e.w
		}
		if total == 0 {
			break // disconnected remainder
		}
		r := rng.Int63n(total)
		var pick liveEdge
		for _, e := range edges {
			if r < e.w {
				pick = e
				break
			}
			r -= e.w
		}
		ru, rv := find(pick.u), find(pick.v)
		if ru == rv {
			// Stale edge; filter and retry.
			edges = filterLive(edges, find)
			continue
		}
		parent[rv] = ru
		remaining--
		edges = filterLive(edges, find)
	}
	// Cut weight = total weight of edges between the two supernodes.
	var cut int64
	root0 := find(0)
	for _, e := range g.Edges() {
		if find(int(e.U)) != find(int(e.V)) {
			cut += e.W
		}
	}
	side := make([]bool, n)
	for v := 0; v < n; v++ {
		side[v] = find(v) == root0
	}
	return cut, side
}

// liveEdge is an edge between supernodes during contraction.
type liveEdge struct {
	u, v int
	w    int64
}

func filterLive(edges []liveEdge, find func(int) int) []liveEdge {
	out := edges[:0]
	for _, e := range edges {
		if find(e.u) != find(e.v) {
			out = append(out, e)
		}
	}
	return out
}
