package baseline

import (
	"sync"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
	"distmincut/internal/proto"
)

// Centralize is the trivial distributed algorithm the sublinear one is
// measured against: every edge is shipped to the BFS root (pipelined
// AllGather, Θ(m + D) rounds), which reconstructs the whole graph and
// solves min cut locally with Stoer–Wagner. Exact, simple — and paying
// Θ(m) rounds where the paper's algorithm pays Õ(√n + D).
//
// Returns the cut value (identical at every node) and the run stats.
func Centralize(g *graph.Graph, seed int64) (int64, *congest.Stats, error) {
	var mu sync.Mutex
	var value int64 = -1
	stats, err := congest.Run(g, congest.Options{Seed: seed}, func(nd *congest.Node) {
		bfs := proto.BuildBFS(nd, 0, 1)
		// Each edge reported once, by its lower-ID endpoint.
		var mine []proto.Item
		for p := 0; p < nd.Degree(); p++ {
			if nd.ID() < nd.Peer(p) {
				mine = append(mine, proto.Item{
					A: int64(nd.ID()), B: int64(nd.Peer(p)), C: nd.EdgeWeight(p),
				})
			}
		}
		items := proto.Gather(nd, bfs, 10, mine)
		var cut int64
		if bfs.Root {
			h := graph.New(nd.N())
			for _, it := range items {
				h.MustAddEdge(graph.NodeID(it.A), graph.NodeID(it.B), it.C)
			}
			h.SortAdjacency()
			w, _, err := StoerWagner(h)
			if err != nil {
				panic(err)
			}
			cut = w
		}
		cut = proto.Broadcast(nd, bfs, 20, cut)
		mu.Lock()
		value = cut
		mu.Unlock()
	})
	if err != nil {
		return 0, nil, err
	}
	return value, stats, nil
}
