package baseline

import (
	"testing"

	"distmincut/internal/graph"
)

func TestCentralizeExact(t *testing.T) {
	workloads := []*graph.Graph{
		graph.Cycle(20),
		graph.PlantedCut(12, 12, 3, 0.5, 3),
		graph.AssignWeights(graph.GNP(24, 0.3, 4), 1, 9, 5),
	}
	for i, g := range workloads {
		want, _, err := StoerWagner(g)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := Centralize(g, 7)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workload %d: centralize %d, want %d", i, got, want)
		}
		// Round cost is Θ(m + D): must be at least m/maxdeg-ish; just
		// assert it is at least m/2 here (each edge crosses the root's
		// incident link region pipelined).
		if stats.Rounds < g.M()/g.N() {
			t.Fatalf("workload %d: %d rounds suspiciously low for m=%d", i, stats.Rounds, g.M())
		}
		if stats.Leftover != 0 {
			t.Fatalf("workload %d: leftover %d", i, stats.Leftover)
		}
	}
}
