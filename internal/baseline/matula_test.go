package baseline

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
	"distmincut/internal/proto"
)

// TestMatulaRatioBand: Matula must return a value in [λ, (2+ε)λ] on
// every workload (the lower bound is unconditional — contraction never
// decreases the min cut; the upper bound is the algorithm's guarantee).
func TestMatulaRatioBand(t *testing.T) {
	const eps = 0.5
	workloads := map[string]*graph.Graph{
		"cycle":      graph.Cycle(20),
		"clique":     graph.Complete(12),
		"planted2":   graph.PlantedCut(12, 14, 2, 0.5, 3),
		"planted5":   graph.PlantedCut(10, 10, 5, 0.7, 4),
		"hypercube":  graph.Hypercube(4),
		"barbell":    graph.Barbell(7, 3),
		"cliquepath": graph.CliquePath(4, 6, 2),
		"weighted":   graph.AssignWeights(graph.GNP(20, 0.4, 5), 1, 8, 6),
		"gnp":        graph.GNP(40, 0.2, 7),
	}
	for name, g := range workloads {
		t.Run(name, func(t *testing.T) {
			lambda, _, err := StoerWagner(g)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Matula(g, eps)
			if err != nil {
				t.Fatal(err)
			}
			if got < lambda {
				t.Fatalf("Matula %d below λ %d — impossible by contraction safety", got, lambda)
			}
			if float64(got) > (2+eps)*float64(lambda)+1e-9 {
				t.Fatalf("Matula %d exceeds (2+ε)λ = %.1f", got, (2+eps)*float64(lambda))
			}
		})
	}
}

func TestMatulaProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%25) + 4
		g := graph.GNP(n, 0.3, seed)
		lambda, _, err := StoerWagner(g)
		if err != nil {
			return false
		}
		got, err := Matula(g, 0.25)
		if err != nil {
			return false
		}
		return got >= lambda && float64(got) <= 2.25*float64(lambda)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatulaTooSmall(t *testing.T) {
	if _, err := Matula(graph.New(1), 0.5); !errors.Is(err, ErrTooSmall) {
		t.Fatal("singleton accepted")
	}
}

func TestGhaffariKuhnEmulated(t *testing.T) {
	g := graph.PlantedCut(12, 12, 3, 0.6, 9)
	lambda, _, err := StoerWagner(g)
	if err != nil {
		t.Fatal(err)
	}
	v, rounds, err := GhaffariKuhnEmulated(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if v < lambda || float64(v) > 2.5*float64(lambda) {
		t.Fatalf("GK emulation value %d outside [λ, 2.5λ], λ=%d", v, lambda)
	}
	if rounds <= 0 {
		t.Fatal("GK emulation must bill rounds")
	}
}

// TestSuApproximation: Su's algorithm must return a valid cut within
// (1+ε)-ish of λ but reports via sampling (level >= 1) even for tiny
// cuts — the paper's stated drawback versus the exact algorithm.
func TestSuApproximation(t *testing.T) {
	g := graph.PlantedCut(14, 14, 3, 0.7, 11)
	lambda, _, err := StoerWagner(g)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	results := make([]*SuResult, g.N())
	stats, err := congest.Run(g, congest.Options{Seed: 5}, func(nd *congest.Node) {
		bfs := proto.BuildBFS(nd, 0, 1)
		r := Su(nd, bfs, g, 0.5, 7, 8, 1000)
		mu.Lock()
		results[nd.ID()] = r
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Leftover != 0 {
		t.Fatalf("Su left %d messages unconsumed", stats.Leftover)
	}
	r := results[0]
	if r.Value < lambda {
		t.Fatalf("Su cut %d below λ %d — not a real cut", r.Value, lambda)
	}
	if float64(r.Value) > 2.0*float64(lambda) {
		t.Fatalf("Su cut %d more than 2λ (λ=%d) — quality off", r.Value, lambda)
	}
	side := make([]bool, g.N())
	for v := range side {
		side[v] = results[v].Side
	}
	if got := g.CutWeight(side); got != r.Value {
		t.Fatalf("Su side weighs %d, reported %d", got, r.Value)
	}
}
