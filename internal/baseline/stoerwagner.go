// Package baseline implements the comparison algorithms the paper
// measures itself against, plus sequential ground-truth solvers:
//
//   - Stoer–Wagner: exact deterministic global minimum cut, the ground
//     truth every distributed result is checked against.
//   - Karger's randomized contraction: an independent probabilistic
//     exact solver, used to cross-check Stoer–Wagner in tests.
//   - Matula-style (2+ε) approximation via sparse certificates, the
//     sequential core of Ghaffari–Kuhn's distributed algorithm
//     [DISC 2013].
//   - A Ghaffari–Kuhn emulation: Matula's answer priced with GK13's
//     published round complexity (see DESIGN.md §4 on substitutions).
//   - Su's concurrent algorithm [SPAA 2014]: tree packing plus edge
//     sampling plus per-tree bridge detection, run distributedly.
package baseline

import (
	"errors"

	"distmincut/internal/graph"
)

// ErrTooSmall is returned for graphs with fewer than two nodes, where
// no cut exists.
var ErrTooSmall = errors.New("baseline: graph has no nonempty cut")

// StoerWagner computes the exact global minimum cut of a connected
// weighted graph in O(n³) time and O(n²) space. It returns the cut
// weight and one side of an optimal cut. Disconnected graphs return 0
// and one component.
func StoerWagner(g *graph.Graph) (int64, []bool, error) {
	n := g.N()
	if n < 2 {
		return 0, nil, ErrTooSmall
	}
	if comp, k := graph.Components(g); k > 1 {
		side := make([]bool, n)
		for v := 0; v < n; v++ {
			side[v] = comp[v] == 0
		}
		return 0, side, nil
	}
	// Dense weight matrix over active supernodes.
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
	}
	for _, e := range g.Edges() {
		w[e.U][e.V] += e.W
		w[e.V][e.U] += e.W
	}
	// members[i] is the set of original nodes merged into supernode i.
	members := make([][]int, n)
	for i := range members {
		members[i] = []int{i}
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	bestWeight := int64(-1)
	var bestSide []bool

	inA := make([]bool, n)
	weightTo := make([]int64, n)
	for len(active) > 1 {
		// Minimum cut phase (maximum adjacency order).
		for _, v := range active {
			inA[v] = false
			weightTo[v] = 0
		}
		prev, last := -1, -1
		for i := 0; i < len(active); i++ {
			// Pick the most tightly connected unvisited supernode.
			sel := -1
			for _, v := range active {
				if !inA[v] && (sel == -1 || weightTo[v] > weightTo[sel]) {
					sel = v
				}
			}
			inA[sel] = true
			prev, last = last, sel
			for _, v := range active {
				if !inA[v] {
					weightTo[v] += w[sel][v]
				}
			}
		}
		// Cut-of-the-phase: last supernode alone versus the rest.
		phaseCut := weightTo[last]
		if bestWeight < 0 || phaseCut < bestWeight {
			bestWeight = phaseCut
			bestSide = make([]bool, n)
			for _, orig := range members[last] {
				bestSide[orig] = true
			}
		}
		// Merge last into prev.
		members[prev] = append(members[prev], members[last]...)
		for _, v := range active {
			if v != last && v != prev {
				w[prev][v] += w[last][v]
				w[v][prev] = w[prev][v]
			}
		}
		for i, v := range active {
			if v == last {
				active = append(active[:i], active[i+1:]...)
				break
			}
		}
	}
	return bestWeight, bestSide, nil
}
