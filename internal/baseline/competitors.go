package baseline

import (
	"math"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
	"distmincut/internal/packing"
	"distmincut/internal/proto"
	"distmincut/internal/sampling"
)

// GhaffariKuhnEmulated is the comparison point the paper improves on:
// the (2+ε)-approximation of Ghaffari & Kuhn [DISC 2013]. Implementing
// their full distributed machinery (random layering, distributed
// Matula) is a paper-sized project orthogonal to this one, so — per
// DESIGN.md §4 — the *answer* comes from the sequential Matula core
// their algorithm distributes, and the *round bill* from their
// published complexity Õ((√n + D)·poly(1/ε)), instantiated with unit
// constants as (√n + D)·ln²n/ε. Both coordinates of the comparison
// (approximation ratio, round scaling) are thereby preserved; absolute
// round constants are not claimed.
func GhaffariKuhnEmulated(g *graph.Graph, eps float64) (value int64, rounds int, err error) {
	value, err = Matula(g, eps)
	if err != nil {
		return 0, 0, err
	}
	n := float64(g.N())
	d := float64(graph.DiameterLowerBound(g))
	ln := math.Log(n + 2)
	rounds = int(math.Ceil((math.Sqrt(n) + d) * ln * ln / eps))
	return value, rounds, nil
}

// SuResult reports one node's view of Su's algorithm.
type SuResult struct {
	Value       int64 // cut weight in the original graph
	SkeletonCut int64
	Level       int
	Trees       int
	Side        bool
}

// Su runs the concurrent algorithm of Su [SPAA 2014] distributedly: it
// shares the paper's starting point (Thorup packing) but works on a
// Karger skeleton sampled with p = min(1, Θ(log n/(ε²λ))) — descending
// p until the skeleton's packed cut falls below the threshold κ(ε) —
// and packs a fixed tree budget per level with a bridge-style check
// rather than the exact algorithm's certified doubling. It therefore
// never certifies exactness, even when λ is small (the drawback the
// paper notes). The found cut is evaluated under the original weights.
//
// The per-edge sampled weights reuse the shared deterministic
// randomness of internal/sampling; per-tree cut detection is the
// crossing-count aggregation — both Su's Thurimella-based procedure
// and ours are Õ(√n + D) tree aggregations (DESIGN.md §4).
func Su(nd *congest.Node, bfs *proto.Overlay, g *graph.Graph, eps float64, seed int64, tauMax int, tagBase uint32) *SuResult {
	if tauMax <= 0 {
		tauMax = 16
	}
	kappa := sampling.Kappa(eps, nd.N())
	const levelSpan = uint32(40_000_000)
	weightAt := func(level int) func(p int) int64 {
		if level == 0 {
			return nil
		}
		return func(p int) int64 {
			e := g.Edge(nd.EdgeID(p))
			return sampling.SampleWeight(seed, int64(e.U)<<31|int64(e.V), level, e.W)
		}
	}
	var res *packing.Result
	level := 0
	trees := 0
	for ; level < 62; level++ {
		loads := make(map[int]int64, nd.Degree())
		cur := packing.Pack(nd, bfs, tauMax, loads,
			packing.Options{Weight: weightAt(level)},
			tagBase+uint32(level)*levelSpan, nil)
		trees += cur.Trees
		if !cur.Connected {
			// Oversampled: keep the previous level's result.
			level--
			break
		}
		res = cur
		if cur.Cut <= kappa {
			break
		}
	}
	side := packing.MarkSide(nd, bfs, res, tagBase+100)
	value := packing.EvaluateCut(nd, bfs, side, tagBase+200)
	return &SuResult{
		Value:       value,
		SkeletonCut: res.Cut,
		Level:       level,
		Trees:       trees,
		Side:        side,
	}
}
