package sampling

import (
	"math"
	"strconv"

	"distmincut/internal/congest"
	"distmincut/internal/proto"
)

// Message kinds for the bracket tier (0x78 range; see proto for the
// cross-package kind-range convention).
const (
	kindReach uint8 = 0x78 + iota // sampled-connectivity flood marker
)

// TrialSeed derives the deterministic per-trial seed for one bracket
// connectivity trial. Trials must be independent of each other and of
// the (1+ε) tier's skeleton stream, but identical at both endpoints of
// every edge; hashing (seed, trial) through splitmix64 gives exactly
// that under the same public-coins assumption as SampleWeight.
func TrialSeed(seed int64, trial int) int64 {
	h := splitmix64(uint64(seed) ^ 0xa076_1d64_78bd_642f)
	h = splitmix64(h ^ uint64(trial+1)*0x9e3779b97f4a7c15)
	return int64(h >> 1)
}

// BracketConfig tunes the bracket program. The zero value is ready to
// use.
type BracketConfig struct {
	// Seed drives the shared sampling coins (zero means 1).
	Seed int64
	// Trials is the number of independent skeletons tested per level
	// (default 3). More trials sharpen the lower bound — a level only
	// counts as "connected" if every trial's skeleton is connected.
	Trials int
	// ChunkRounds is how many flood rounds run between global
	// termination checks (default 8). Larger chunks trade convergecast
	// barriers for idle rounds on skeletons of small diameter.
	ChunkRounds int
	// MaxLevel caps the descent (default: two levels past the bit
	// length of the minimum weighted degree — sampling far below the
	// cheapest singleton cut's survival threshold is pointless).
	MaxLevel int
}

// BracketOutcome is the bracket program's result, identical at every
// node.
type BracketOutcome struct {
	// Level is the first sampling level 2^-level at which some trial's
	// skeleton was disconnected (0 if none up to the level cap).
	Level int
	// Lo and Hi bracket the minimum cut, λ ∈ [Lo, Hi]. Hi is the
	// tighter of the certified degree bound (MinDegree, the weight of a
	// real singleton cut) and the sampling-implied bound
	// 2^Level·O(log n); Lo holds with high probability (every cut kept
	// at least one sampled edge in every trial of every level below
	// Level). λ ≤ MinDegree always holds even when Hi is the sampled
	// bound.
	Lo, Hi int64
	// MinDegree is the minimum weighted degree and MinDegreeNode the
	// lowest-ID node attaining it; that singleton is the witness cut
	// behind Hi.
	MinDegree     int64
	MinDegreeNode int64
	// Trials echoes the per-level trial count used.
	Trials int
}

// Bracket is the cheap serving tier: iterated edge sampling at rate
// 2^-i with a connectivity test per level, after the synchronous
// sampler of Karger [arXiv:0912.1200] as used by Ghaffari–Kuhn
// [arXiv:1305.5520]. A cut of weight c keeps no sampled edge at level
// i with probability ≈ e^{-c·2^-i}, so the first level whose skeleton
// disconnects locates log₂ λ to within a constant plus O(log log n):
// λ ≳ 2^(Level-2) w.h.p. (the graph survived every coarser level) and
// λ ≤ min weighted degree always. The program needs no tree packing at
// all — each level is a flood plus a few convergecasts — which is what
// makes it the O(levels · (D + chunk)) front tier ahead of the (1+ε)
// and exact tiers.
//
// All branch decisions are functions of globally agreed values
// (convergecast totals), so every node follows the same schedule in
// lockstep. The tag range [tagBase, tagBase+4+4·Trials·MaxLevel) is
// consumed.
func Bracket(nd *congest.Node, bfs *proto.Overlay, cfg BracketConfig, tagBase uint32) BracketOutcome {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 3
	}
	if cfg.ChunkRounds <= 0 {
		cfg.ChunkRounds = 8
	}

	mark := nd.ID() == 0 // node 0 records the phase spans for observability

	// Certified upper bound: the cheapest singleton cut. Two
	// convergecasts — the minimum weighted degree, then the lowest node
	// ID attaining it.
	if mark {
		nd.Mark("begin:mindeg")
	}
	var deg int64
	for p := 0; p < nd.Degree(); p++ {
		deg += nd.EdgeWeight(p)
	}
	minDeg := proto.ConvergeBroadcast(nd, bfs, tagBase, deg, proto.Min)
	cand := int64(math.MaxInt64)
	if deg == minDeg {
		cand = int64(nd.ID())
	}
	minNode := proto.ConvergeBroadcast(nd, bfs, tagBase+2, cand, proto.Min)
	if mark {
		nd.Mark("end:mindeg")
	}

	maxLevel := cfg.MaxLevel
	if maxLevel <= 0 {
		maxLevel = 2
		for d := minDeg; d > 1; d /= 2 {
			maxLevel++
		}
	}
	if maxLevel > 60 {
		maxLevel = 60
	}

	out := BracketOutcome{MinDegree: minDeg, MinDegreeNode: minNode, Trials: cfg.Trials}
	keep := make([]bool, nd.Degree())
	for level := 1; level <= maxLevel; level++ {
		if mark {
			nd.Mark("begin:bracket:" + strconv.Itoa(level))
		}
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := TrialSeed(cfg.Seed, trial)
			for p := range keep {
				keep[p] = SampleWeight(seed, packPeers(nd, p), level, nd.EdgeWeight(p)) > 0
			}
			tag := tagBase + 4 + 4*uint32((level-1)*cfg.Trials+trial)
			if !sampledConnected(nd, bfs, keep, cfg.ChunkRounds, tag) {
				out.Level = level
				break
			}
		}
		if mark {
			nd.Mark("end:bracket:" + strconv.Itoa(level))
		}
		if out.Level != 0 {
			break
		}
	}

	lnN := int64(math.Ceil(math.Log(float64(nd.N()) + 2)))
	switch {
	case out.Level > 0:
		out.Lo = (int64(1) << (out.Level - 1)) / 2
		out.Hi = (int64(1) << out.Level) * 2 * lnN
	default:
		// Never disconnected up to the cap: λ sits near the degree bound.
		out.Lo = (int64(1) << (maxLevel - 1)) / 2
		out.Hi = minDeg
	}
	if out.Hi > minDeg {
		out.Hi = minDeg
	}
	if out.Lo > out.Hi {
		out.Lo = out.Hi
	}
	if out.Lo < 1 {
		out.Lo = 1
	}
	return out
}

// packPeers packs the sorted endpoint pair of the edge at port p into
// one word, so both endpoints derive identical sampling coins.
func packPeers(nd *congest.Node, p int) int64 {
	u, v := int64(nd.ID()), int64(nd.Peer(p))
	if u > v {
		u, v = v, u
	}
	return u<<32 | v
}

// sampledConnected floods reachability from node 0 over the kept edges
// and reports whether every node was reached. The flood advances one
// hop per round for ChunkRounds rounds, then a convergecast sums the
// nodes newly reached in the chunk; a chunk that reaches nobody is a
// global fixed point. Every reach message is consumed (reached or
// not), so no traffic is left over in either outcome. Tags tag (reach)
// and tag+1, tag+2 (termination convergecast) are used; round cost is
// O((ecc/chunk + 1) · (chunk + height)) for the eccentricity of node
// 0's component in the skeleton.
func sampledConnected(nd *congest.Node, bfs *proto.Overlay, keep []bool, chunk int, tag uint32) bool {
	reached := nd.ID() == 0
	newly := int64(0)
	match := congest.MatchKindTag(kindReach, tag)
	announce := func() {
		for p, k := range keep {
			if k {
				nd.Send(p, congest.Message{Kind: kindReach, Tag: tag})
			}
		}
	}
	if reached {
		newly = 1
		announce()
	}
	var total int64
	for {
		for r := 0; r < chunk; r++ {
			nd.Sleep(1)
			for {
				_, _, ok := nd.TryRecv(match)
				if !ok {
					break
				}
				if !reached {
					reached = true
					newly++
					announce()
				}
			}
		}
		sum := proto.ConvergeBroadcast(nd, bfs, tag+1, newly, proto.Sum)
		total += sum
		newly = 0
		if sum == 0 {
			return total == int64(nd.N())
		}
	}
}
