// Package sampling implements Karger's skeleton sampling [Kar94], the
// reduction the paper uses to turn its exact small-λ algorithm into a
// (1+ε)-approximation: sample each unit of edge weight independently
// with probability p = 2^-level; once p·λ ≈ κ(ε) = Θ(log n / ε²),
// every cut of the skeleton is within (1±ε) of p times its true
// weight, so a minimum cut of the skeleton is a (1+O(ε))-minimum cut
// of the original graph and the skeleton's cut value rescales to a
// (1±ε) estimate of λ.
//
// Both endpoints of an edge must sample identically without
// communication; SampleWeight therefore derives its randomness from a
// splitmix64 hash of (seed, packed endpoints, level) — shared
// deterministic randomness, the standard public-coins assumption.
//
// The same sampling machinery also powers the bracket serving tier
// (Bracket): instead of packing trees on a skeleton, it only tests
// skeleton connectivity level by level. A skeleton sampled at rate
// 2^-i stays connected w.h.p. while 2^i ≪ λ/log n and is disconnected
// once 2^i ≫ λ, so the first disconnected level brackets λ within an
// O(log n) factor [GK13 arXiv:1305.5520, Kar99 arXiv:0912.1200] — in a
// handful of rounds, with no tree ever built. The returned upper bound
// is additionally capped by the minimum weighted degree, a certified
// singleton cut that doubles as the bracket's witness.
package sampling

import (
	"math"
	"math/rand"
)

// Kappa returns the skeleton threshold κ(ε, n): descent stops when the
// sampled graph's minimum cut is at most κ. The ln n factor is
// Karger's union bound over cuts; the constant is the practical choice
// validated by experiment E4 (theoretical analyses use larger
// constants; only the measured approximation quality matters here).
func Kappa(eps float64, n int) int64 {
	if eps <= 0 || eps >= 1 {
		eps = 0.5
	}
	k := int64(math.Ceil(math.Log(float64(n)+2)/(eps*eps))) + 3
	return k
}

// splitmix64 is the standard 64-bit mixer; good avalanche behavior for
// seed derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// edgeSeed derives a deterministic per-(edge, level) RNG seed shared by
// both endpoints.
func edgeSeed(seed int64, uv int64, level int) int64 {
	h := splitmix64(uint64(seed))
	h = splitmix64(h ^ uint64(uv))
	h = splitmix64(h ^ uint64(level)<<32)
	return int64(h >> 1)
}

// SampleWeight draws Binomial(w, 2^-level): the skeleton weight of an
// edge of weight w at the given sampling level. Level <= 0 returns w
// unchanged. The draw is identical for both endpoints (it depends only
// on seed, the packed endpoint pair uv, and the level) and runs in
// O(successes+1) expected time via geometric skipping, so heavy edges
// at aggressive levels stay cheap.
func SampleWeight(seed int64, uv int64, level int, w int64) int64 {
	if level <= 0 || w <= 0 {
		if w < 0 {
			return 0
		}
		return w
	}
	p := math.Ldexp(1, -level)
	rng := rand.New(rand.NewSource(edgeSeed(seed, uv, level)))
	// Geometric skipping: jump log(1-U)/log(1-p) failed trials at a time.
	logq := math.Log1p(-p)
	var successes, pos int64
	for {
		u := rng.Float64()
		skip := int64(math.Floor(math.Log1p(-u) / logq))
		pos += skip + 1
		if pos > w {
			return successes
		}
		successes++
	}
}
