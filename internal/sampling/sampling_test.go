package sampling

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleWeightDeterministic(t *testing.T) {
	f := func(seed int64, uv int64, rawLevel uint8, rawW uint16) bool {
		level := int(rawLevel % 10)
		w := int64(rawW)
		a := SampleWeight(seed, uv, level, w)
		b := SampleWeight(seed, uv, level, w)
		return a == b && a >= 0 && a <= w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWeightLevelZeroIdentity(t *testing.T) {
	for _, w := range []int64{0, 1, 7, 1000} {
		if got := SampleWeight(1, 2, 0, w); got != w {
			t.Fatalf("level 0 sample of %d = %d", w, got)
		}
	}
	if SampleWeight(1, 2, 3, -5) != 0 {
		t.Fatal("negative weight must sample to 0")
	}
}

// TestSampleWeightMean: the empirical mean over many edges must
// concentrate near w·2^-level.
func TestSampleWeightMean(t *testing.T) {
	const (
		w     = 64
		level = 2 // p = 1/4
		edges = 4000
	)
	var total int64
	for i := 0; i < edges; i++ {
		total += SampleWeight(42, int64(i)<<31|int64(i+1), level, w)
	}
	mean := float64(total) / edges
	want := float64(w) * math.Ldexp(1, -level)
	if math.Abs(mean-want) > 0.5 {
		t.Fatalf("empirical mean %.3f, want %.1f +- 0.5", mean, want)
	}
}

// TestSampleWeightVariance: the variance must match Binomial(w,p)
// within a loose band (distinguishes true binomial sampling from, say,
// deterministic rounding).
func TestSampleWeightVariance(t *testing.T) {
	const (
		w     = 32
		level = 1 // p = 1/2
		edges = 4000
	)
	var sum, sumsq float64
	for i := 0; i < edges; i++ {
		x := float64(SampleWeight(7, int64(i)<<31|int64(2*i+3), level, w))
		sum += x
		sumsq += x * x
	}
	mean := sum / edges
	variance := sumsq/edges - mean*mean
	want := float64(w) * 0.5 * 0.5 // w·p·(1-p)
	if variance < want*0.7 || variance > want*1.3 {
		t.Fatalf("variance %.2f outside [%.2f, %.2f]", variance, want*0.7, want*1.3)
	}
}

func TestSampleWeightDiffersAcrossEdgesAndLevels(t *testing.T) {
	// Not all edges may sample identically (sanity against a broken
	// seed derivation).
	distinct := map[int64]bool{}
	for i := 0; i < 50; i++ {
		distinct[SampleWeight(3, int64(i)<<31|int64(i+100), 1, 40)] = true
	}
	if len(distinct) < 5 {
		t.Fatalf("only %d distinct samples across 50 edges", len(distinct))
	}
	a := SampleWeight(3, 5<<31|9, 1, 40)
	b := SampleWeight(3, 5<<31|9, 2, 40)
	c := SampleWeight(4, 5<<31|9, 1, 40)
	if a == b && b == c {
		t.Fatal("samples identical across levels and seeds")
	}
}

func TestKappaMonotonicity(t *testing.T) {
	if Kappa(0.25, 100) <= Kappa(0.5, 100) {
		t.Fatal("smaller epsilon must need larger kappa")
	}
	if Kappa(0.5, 10000) <= Kappa(0.5, 10) {
		t.Fatal("kappa must grow with n")
	}
	if Kappa(-1, 100) != Kappa(0.5, 100) {
		t.Fatal("invalid epsilon must fall back to 0.5")
	}
}
