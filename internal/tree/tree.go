// Package tree provides sequential rooted-tree machinery: construction
// from parent arrays, ancestry queries via Euler intervals, LCA via
// binary lifting, and subtree aggregation. It is the reference
// implementation the distributed algorithms are verified against, and
// the input representation for spanning trees handed to the pipeline.
package tree

import (
	"errors"
	"fmt"

	"distmincut/internal/graph"
)

// ErrNotATree is returned when a parent array does not describe a tree.
var ErrNotATree = errors.New("tree: parent array is not a tree")

// Tree is a rooted tree on nodes 0..n-1.
type Tree struct {
	root       graph.NodeID
	parent     []graph.NodeID // -1 at root
	parentEdge []int          // graph edge ID toward parent; -1 at root
	children   [][]graph.NodeID
	depth      []int
	order      []graph.NodeID // preorder
	tin, tout  []int          // Euler interval: u is an ancestor of v iff tin[u] <= tin[v] < tout[u]
	up         [][]int32      // binary lifting table; up[0][v] = parent
}

// New builds a rooted tree from a parent array. parent[root] must be
// -1; parentEdge may be nil if edge IDs are not needed (it is then
// filled with -1).
func New(root graph.NodeID, parent []graph.NodeID, parentEdge []int) (*Tree, error) {
	n := len(parent)
	if int(root) < 0 || int(root) >= n {
		return nil, fmt.Errorf("%w: root %d out of range", ErrNotATree, root)
	}
	if parent[root] != -1 {
		return nil, fmt.Errorf("%w: parent[root] = %d, want -1", ErrNotATree, parent[root])
	}
	if parentEdge == nil {
		parentEdge = make([]int, n)
		for i := range parentEdge {
			parentEdge[i] = -1
		}
	}
	if len(parentEdge) != n {
		return nil, fmt.Errorf("%w: parentEdge length %d != n %d", ErrNotATree, len(parentEdge), n)
	}
	t := &Tree{
		root:       root,
		parent:     append([]graph.NodeID(nil), parent...),
		parentEdge: append([]int(nil), parentEdge...),
		children:   make([][]graph.NodeID, n),
		depth:      make([]int, n),
		order:      make([]graph.NodeID, 0, n),
		tin:        make([]int, n),
		tout:       make([]int, n),
	}
	for v := 0; v < n; v++ {
		p := parent[v]
		if graph.NodeID(v) == root {
			continue
		}
		if p < 0 || int(p) >= n || p == graph.NodeID(v) {
			return nil, fmt.Errorf("%w: parent[%d] = %d", ErrNotATree, v, p)
		}
		t.children[p] = append(t.children[p], graph.NodeID(v))
	}
	// Iterative preorder DFS from the root; children in ascending ID
	// order (they were appended in ascending v).
	timer := 0
	type frame struct {
		v    graph.NodeID
		next int
	}
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{v: root})
	t.tin[root] = timer
	timer++
	t.order = append(t.order, root)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(t.children[f.v]) {
			c := t.children[f.v][f.next]
			f.next++
			t.depth[c] = t.depth[f.v] + 1
			t.tin[c] = timer
			timer++
			t.order = append(t.order, c)
			stack = append(stack, frame{v: c})
			continue
		}
		t.tout[f.v] = timer
		stack = stack[:len(stack)-1]
	}
	if len(t.order) != n {
		return nil, fmt.Errorf("%w: %d of %d nodes reachable from root (cycle or forest)", ErrNotATree, len(t.order), n)
	}
	t.buildLifting()
	return t, nil
}

// FromGraphTree roots an (unrooted) tree-shaped graph at root.
func FromGraphTree(g *graph.Graph, root graph.NodeID) (*Tree, error) {
	if g.M() != g.N()-1 {
		return nil, fmt.Errorf("%w: %d edges on %d nodes", ErrNotATree, g.M(), g.N())
	}
	dist, parent := graph.BFS(g, root)
	parentEdge := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		parentEdge[v] = -1
		if dist[v] == -1 {
			return nil, fmt.Errorf("%w: node %d unreachable", ErrNotATree, v)
		}
		if graph.NodeID(v) != root {
			for _, h := range g.Adj(graph.NodeID(v)) {
				if h.Peer == parent[v] {
					parentEdge[v] = h.EdgeID
					break
				}
			}
		}
	}
	return New(root, parent, parentEdge)
}

func (t *Tree) buildLifting() {
	n := len(t.parent)
	levels := 1
	for 1<<levels < n {
		levels++
	}
	t.up = make([][]int32, levels+1)
	t.up[0] = make([]int32, n)
	for v := 0; v < n; v++ {
		if t.parent[v] < 0 {
			t.up[0][v] = int32(v)
		} else {
			t.up[0][v] = int32(t.parent[v])
		}
	}
	for l := 1; l <= levels; l++ {
		t.up[l] = make([]int32, n)
		for v := 0; v < n; v++ {
			t.up[l][v] = t.up[l-1][t.up[l-1][v]]
		}
	}
}

// N returns the number of nodes.
func (t *Tree) N() int { return len(t.parent) }

// Root returns the root node.
func (t *Tree) Root() graph.NodeID { return t.root }

// Parent returns v's parent (-1 at the root).
func (t *Tree) Parent(v graph.NodeID) graph.NodeID { return t.parent[v] }

// ParentEdge returns the graph edge ID of the edge {v, parent(v)}, or
// -1 at the root or when the tree was built without edge IDs.
func (t *Tree) ParentEdge(v graph.NodeID) int { return t.parentEdge[v] }

// Children returns v's children in ascending ID order. Callers must not
// mutate the slice.
func (t *Tree) Children(v graph.NodeID) []graph.NodeID { return t.children[v] }

// Depth returns v's distance from the root.
func (t *Tree) Depth(v graph.NodeID) int { return t.depth[v] }

// Height returns the maximum depth.
func (t *Tree) Height() int {
	h := 0
	for _, d := range t.depth {
		if d > h {
			h = d
		}
	}
	return h
}

// PreOrder returns nodes in preorder. Callers must not mutate it.
func (t *Tree) PreOrder() []graph.NodeID { return t.order }

// IsAncestor reports whether a is an ancestor of v (inclusive: every
// node is its own ancestor, matching the paper's convention that A(v)
// contains v).
func (t *Tree) IsAncestor(a, v graph.NodeID) bool {
	return t.tin[a] <= t.tin[v] && t.tin[v] < t.tout[a]
}

// LCA returns the lowest common ancestor of u and v.
func (t *Tree) LCA(u, v graph.NodeID) graph.NodeID {
	if t.IsAncestor(u, v) {
		return u
	}
	if t.IsAncestor(v, u) {
		return v
	}
	for l := len(t.up) - 1; l >= 0; l-- {
		a := graph.NodeID(t.up[l][u])
		if !t.IsAncestor(a, v) {
			u = a
		}
	}
	return t.parent[u]
}

// SubtreeSize returns |v↓|, the number of nodes in v's subtree
// including v.
func (t *Tree) SubtreeSize(v graph.NodeID) int {
	return t.tout[v] - t.tin[v]
}

// SubtreeSum returns, for every v, the sum of vals over v↓ (the
// subtree rooted at v, inclusive). This is the sequential analogue of
// the paper's δ↓ and ρ↓ accumulations.
func (t *Tree) SubtreeSum(vals []int64) []int64 {
	out := make([]int64, len(vals))
	copy(out, vals)
	// Reverse preorder visits children before parents.
	for i := len(t.order) - 1; i >= 0; i-- {
		v := t.order[i]
		if p := t.parent[v]; p >= 0 {
			out[p] += out[v]
		}
	}
	return out
}

// AncestorChain returns v's ancestors from v (inclusive) up to and
// including stop, or up to the root if stop is -1.
func (t *Tree) AncestorChain(v graph.NodeID, stop graph.NodeID) []graph.NodeID {
	var chain []graph.NodeID
	for u := v; ; u = t.parent[u] {
		chain = append(chain, u)
		if u == stop || t.parent[u] < 0 {
			break
		}
	}
	return chain
}
