package tree

import (
	"testing"

	"distmincut/internal/graph"
)

func TestHeight(t *testing.T) {
	tr := figureTree(t)
	if h := tr.Height(); h != 5 {
		t.Fatalf("height = %d, want 5", h)
	}
	single, err := New(0, []graph.NodeID{-1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if single.Height() != 0 {
		t.Fatal("single-node height must be 0")
	}
}

func TestLCAIdentityAndRoot(t *testing.T) {
	tr := figureTree(t)
	if tr.LCA(9, 9) != 9 {
		t.Fatal("LCA(v,v) != v")
	}
	if tr.LCA(10, 15) != 0 {
		t.Fatalf("LCA(10,15) = %d, want 0", tr.LCA(10, 15))
	}
	if tr.LCA(0, 12) != 0 {
		t.Fatal("LCA with root must be root")
	}
}

func TestSubtreeSizeLeaf(t *testing.T) {
	tr := figureTree(t)
	for _, leaf := range []graph.NodeID{10, 11, 12, 13, 14, 15, 8, 9} {
		if len(tr.Children(leaf)) == 0 && tr.SubtreeSize(leaf) != 1 {
			t.Fatalf("leaf %d subtree size %d", leaf, tr.SubtreeSize(leaf))
		}
	}
}

func TestFromGraphTreeSingleNode(t *testing.T) {
	tr, err := FromGraphTree(graph.Path(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 1 || tr.Root() != 0 || tr.Parent(0) != -1 {
		t.Fatal("single-node tree malformed")
	}
}

func TestSubtreeSumNegativeValues(t *testing.T) {
	tr := figureTree(t)
	vals := make([]int64, tr.N())
	for i := range vals {
		vals[i] = -int64(i)
	}
	sums := tr.SubtreeSum(vals)
	var want int64
	for i := range vals {
		want += vals[i]
	}
	if sums[0] != want {
		t.Fatalf("root sum %d, want %d", sums[0], want)
	}
}
