package tree

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"distmincut/internal/graph"
)

// fixed example: the 16-node tree of the paper's Figure 1(a).
//
//	        0
//	   1         4
//	2     3
//	5 6 7 (children rearranged: see figureTree)
//
// We encode a concrete 16-node tree matching the figure's shape.
func figureTree(t *testing.T) *Tree {
	t.Helper()
	parent := []graph.NodeID{-1, 0, 1, 2, 0, 2, 3, 4, 5, 5, 6, 6, 7, 7, 7, 4}
	tr, err := New(0, parent, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewRejectsBadParents(t *testing.T) {
	cases := []struct {
		name   string
		root   graph.NodeID
		parent []graph.NodeID
	}{
		{"cycle", 0, []graph.NodeID{-1, 2, 1}},
		{"self parent", 0, []graph.NodeID{-1, 1}},
		{"root has parent", 0, []graph.NodeID{1, -1}},
		{"out of range", 0, []graph.NodeID{-1, 9}},
		{"root out of range", 5, []graph.NodeID{-1, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.root, tc.parent, nil); !errors.Is(err, ErrNotATree) {
				t.Fatalf("err = %v, want ErrNotATree", err)
			}
		})
	}
}

func TestDepthAndChildren(t *testing.T) {
	tr := figureTree(t)
	if tr.Depth(0) != 0 || tr.Depth(1) != 1 || tr.Depth(3) != 3 || tr.Depth(14) != 3 || tr.Depth(10) != 5 {
		t.Fatalf("depths wrong: %d %d %d %d %d", tr.Depth(0), tr.Depth(1), tr.Depth(3), tr.Depth(14), tr.Depth(10))
	}
	if len(tr.Children(7)) != 3 {
		t.Fatalf("children(7) = %v", tr.Children(7))
	}
	if tr.SubtreeSize(0) != 16 {
		t.Fatalf("subtree size of root = %d", tr.SubtreeSize(0))
	}
}

func TestIsAncestorInclusive(t *testing.T) {
	tr := figureTree(t)
	if !tr.IsAncestor(0, 14) || !tr.IsAncestor(2, 10) || !tr.IsAncestor(7, 7) {
		t.Fatal("ancestor relation wrong")
	}
	if tr.IsAncestor(1, 4) || tr.IsAncestor(14, 7) {
		t.Fatal("non-ancestors reported as ancestors")
	}
}

// naiveLCA walks parents upward.
func naiveLCA(tr *Tree, u, v graph.NodeID) graph.NodeID {
	seen := map[graph.NodeID]bool{}
	for x := u; ; x = tr.Parent(x) {
		seen[x] = true
		if tr.Parent(x) < 0 {
			break
		}
	}
	for x := v; ; x = tr.Parent(x) {
		if seen[x] {
			return x
		}
	}
}

func TestLCAMatchesNaive(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%80) + 2
		g := graph.RandomTree(n, seed)
		tr, err := FromGraphTree(g, 0)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 7))
		for trial := 0; trial < 30; trial++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			if tr.LCA(u, v) != naiveLCA(tr, u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSubtreeSumMatchesNaive(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%60) + 2
		g := graph.RandomTree(n, seed)
		tr, err := FromGraphTree(g, 0)
		if err != nil {
			return false
		}
		vals := make([]int64, n)
		rng := rand.New(rand.NewSource(seed * 3))
		for i := range vals {
			vals[i] = rng.Int63n(100) - 50
		}
		got := tr.SubtreeSum(vals)
		for v := 0; v < n; v++ {
			var want int64
			for u := 0; u < n; u++ {
				if tr.IsAncestor(graph.NodeID(v), graph.NodeID(u)) {
					want += vals[u]
				}
			}
			if got[v] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFromGraphTreeRejectsNonTree(t *testing.T) {
	if _, err := FromGraphTree(graph.Cycle(5), 0); !errors.Is(err, ErrNotATree) {
		t.Fatalf("cycle accepted as tree: %v", err)
	}
}

func TestFromGraphTreeParentEdges(t *testing.T) {
	g := graph.RandomTree(25, 3)
	tr, err := FromGraphTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < g.N(); v++ {
		e := g.Edge(tr.ParentEdge(graph.NodeID(v)))
		if e.Other(graph.NodeID(v)) != tr.Parent(graph.NodeID(v)) {
			t.Fatalf("parent edge of %d inconsistent", v)
		}
	}
}

func TestAncestorChain(t *testing.T) {
	tr := figureTree(t)
	chain := tr.AncestorChain(10, -1)
	want := []graph.NodeID{10, 6, 3, 2, 1, 0}
	if len(chain) != len(want) {
		t.Fatalf("chain = %v, want %v", chain, want)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain = %v, want %v", chain, want)
		}
	}
	part := tr.AncestorChain(10, 2)
	if len(part) != 4 || part[3] != 2 {
		t.Fatalf("partial chain = %v", part)
	}
}

func TestPreOrderParentBeforeChild(t *testing.T) {
	g := graph.RandomTree(50, 11)
	tr, err := FromGraphTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, tr.N())
	for i, v := range tr.PreOrder() {
		pos[v] = i
	}
	for v := 1; v < tr.N(); v++ {
		if pos[v] <= pos[tr.Parent(graph.NodeID(v))] {
			t.Fatalf("node %d before its parent in preorder", v)
		}
	}
}
