package service

import (
	"encoding/json"
	"time"

	"distmincut"
	"distmincut/internal/congest"
)

// traceEvent is one entry in a job's event timeline. Lifecycle events
// (queued, degraded, started, refining, done, ...) are instants; phase
// events (build, run:<tier>, and the reconstructed protocol phase
// spans) carry a duration; round events are the flight-recorder tail a
// deadline or budget abort leaves behind. The timeline is kept in
// emission order — a deadline trace deliberately ends with its round
// tail, after the terminal lifecycle event.
type traceEvent struct {
	name string
	cat  string // "lifecycle", "phase", or "round"
	at   time.Time
	dur  time.Duration // zero for instant events
	args map[string]any
}

// spanEvents flattens a phase-span tree into phase trace events
// anchored at the engine run's start time. Children become their own
// events; the Chrome trace viewer nests complete events on one thread
// by containment, so the tree renders as stacked phase bars.
func spanEvents(anchor time.Time, spans []*distmincut.Span, out []traceEvent) []traceEvent {
	for _, sp := range spans {
		out = append(out, traceEvent{
			name: sp.Name,
			cat:  "phase",
			at:   anchor.Add(time.Duration(sp.StartNanos)),
			dur:  time.Duration(sp.Nanos()),
			args: map[string]any{
				"rounds":   sp.Rounds(),
				"messages": sp.Messages(),
				"group":    distmincut.PhaseGroup(sp.Name),
			},
		})
		out = spanEvents(anchor, sp.Children, out)
	}
	return out
}

// flightEvents converts a flight-recorder tail into round trace
// events anchored at the aborted run's start time: one instant per
// retained round, carrying that round's delivery accounting.
func flightEvents(anchor time.Time, tail []congest.RoundRecord) []traceEvent {
	out := make([]traceEvent, 0, len(tail))
	for _, r := range tail {
		out = append(out, traceEvent{
			name: "round",
			cat:  "round",
			at:   anchor.Add(time.Duration(r.Nanos)),
			args: map[string]any{
				"round":       r.Round,
				"delivered":   r.Delivered,
				"woken":       r.Woken,
				"dirty_nodes": r.DirtyNodes,
				"delivery_ns": r.DeliveryNanos,
			},
		})
	}
	return out
}

// addPhaseTotals folds the leaf spans of a run's phase tree into the
// service-wide per-phase counters, keyed by phase group so dynamic
// names (level:3, bracket:7) stay bounded-cardinality. Leaves only:
// a parent span's rounds include its children's, and the counters must
// sum a run at most once.
func addPhaseTotals(rounds, messages map[string]int64, spans []*distmincut.Span) {
	for _, sp := range spans {
		if len(sp.Children) == 0 {
			g := distmincut.PhaseGroup(sp.Name)
			rounds[g] += int64(sp.Rounds())
			messages[g] += sp.Messages()
			continue
		}
		addPhaseTotals(rounds, messages, sp.Children)
	}
}

// chromeEvent is one entry of the Chrome trace-event JSON array
// (chrome://tracing, Perfetto). Timestamps and durations are
// microseconds; ph "X" is a complete event, "i" an instant, "M"
// metadata.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace carries the top-level trace-event JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// Thread IDs of the rendered trace: lifecycle instants, phase spans,
// and flight-recorder rounds each get their own named track.
const (
	tidLifecycle = 1
	tidPhases    = 2
	tidRounds    = 3
)

// renderTrace encodes a job's timeline as Chrome trace-event JSON.
// Timestamps are microseconds relative to the job's creation, so the
// queue wait is visible as the gap before the started instant. Event
// order follows the timeline's emission order (Chrome sorts by ts
// itself); a deadline trace therefore ends with its flight-recorder
// round tail.
func renderTrace(id string, created time.Time, events []traceEvent) []byte {
	evs := []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: 1, Args: map[string]any{"name": "mincutd"}},
		{Name: "thread_name", Ph: "M", Pid: 1, Tid: tidLifecycle, Args: map[string]any{"name": "job"}},
		{Name: "thread_name", Ph: "M", Pid: 1, Tid: tidPhases, Args: map[string]any{"name": "phases"}},
		{Name: "thread_name", Ph: "M", Pid: 1, Tid: tidRounds, Args: map[string]any{"name": "rounds"}},
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.name,
			Cat:  ev.cat,
			Ts:   float64(ev.at.Sub(created).Nanoseconds()) / 1e3,
			Pid:  1,
			Args: ev.args,
		}
		switch ev.cat {
		case "phase":
			d := float64(ev.dur.Nanoseconds()) / 1e3
			ce.Ph, ce.Tid, ce.Dur = "X", tidPhases, &d
		case "round":
			ce.Ph, ce.Tid, ce.S = "i", tidRounds, "t"
		default:
			ce.Ph, ce.Tid, ce.S = "i", tidLifecycle, "t"
		}
		evs = append(evs, ce)
	}
	data, err := json.Marshal(chromeTrace{
		TraceEvents:     evs,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"job_id": id},
	})
	if err != nil { // unreachable: every args value is a plain scalar
		return []byte(`{"traceEvents":[]}`)
	}
	return data
}

// Trace renders the job's event timeline as Chrome trace-event JSON
// (load it in chrome://tracing or Perfetto). A finished job's trace is
// complete — every lifecycle transition, the per-tier run and protocol
// phase spans, and on a deadline or budget abort the flight-recorder
// tail of the last rounds before the kill. A still-running job yields
// the timeline so far. Unknown IDs report false.
func (s *Service) Trace(id string) ([]byte, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	events := make([]traceEvent, 0, len(j.trace)+8)
	events = append(events, j.trace...)
	if j.exec != nil {
		// In flight: the shared execution's events follow the job's own.
		events = append(events, j.exec.trace...)
	}
	created := j.created
	s.mu.Unlock()
	return renderTrace(id, created, events), true
}
