package service

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"distmincut"
	"distmincut/internal/chaos"
	"distmincut/internal/congest"
	"distmincut/internal/graph"
)

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued: accepted, waiting for a pool worker.
	StateQueued State = "queued"
	// StateRunning: a worker is executing the protocol.
	StateRunning State = "running"
	// StateRefining is the tiered tier's intermediate phase: the job's
	// approximate answer is already published (JobView.Approx) while
	// the exact certified cut is still being computed. Canceling or
	// draining a refining job keeps the published approximate payload
	// on the job record.
	StateRefining State = "refining"
	// StateDone: finished with a result (terminal).
	StateDone State = "done"
	// StateFailed: finished with an error (terminal).
	StateFailed State = "failed"
	// StateCanceled: canceled by request or drain deadline (terminal).
	StateCanceled State = "canceled"
	// StateDeadline: the job's wall-clock deadline or round budget
	// expired and the run was killed at an engine round boundary
	// (terminal). Partial progress (rounds/messages at the abort) stays
	// on the record, a tiered job keeps its published approximate
	// payload, and the view carries a Retry-After hint.
	StateDeadline State = "deadline"
)

// ErrBusy is returned by Submit when the job queue is full.
var ErrBusy = errors.New("service: queue full")

// ErrClosed is returned by Submit after Shutdown has begun.
var ErrClosed = errors.New("service: shutting down")

// CostEstimate is the admission controller's verdict on an exact or
// tiered submission: the ~100-round bracket pre-pass brackets λ in
// [LambdaLo, LambdaHi], and EstRounds extrapolates the poly(λ) exact
// pipeline from the upper bracket. It is the body of an admission
// rejection (HTTP 429).
type CostEstimate struct {
	LambdaLo      int64 `json:"lambda_lo"`
	LambdaHi      int64 `json:"lambda_hi"`
	BracketRounds int   `json:"bracket_rounds"`
	// EstRounds ~ (√n + bracket rounds) · λhi²: τ(λ)=O(λ) trees at
	// O(√n + D) rounds each, times O(λ) doubling guesses.
	EstRounds int64 `json:"est_rounds"`
	// Ceiling is the configured admission ceiling EstRounds exceeded.
	Ceiling int64 `json:"ceiling"`
	// HintTier is the tier the client should retry at (always served:
	// its cost does not grow with λ).
	HintTier string `json:"hint_tier"`
}

// AdmissionError is returned by Submit when the admission controller
// rejects an exact/tiered request whose estimated round cost exceeds
// the configured ceiling. The HTTP layer renders it as 429 with the
// CostEstimate as a typed body. The bracket pre-pass that produced the
// estimate is already cached, so the suggested bracket/approx retry is
// cheap.
type AdmissionError struct {
	Est CostEstimate
}

// Error renders the rejection with the bracketed λ and the retry hint.
func (e *AdmissionError) Error() string {
	return fmt.Sprintf("service: admission rejected: estimated %d rounds exceeds ceiling %d (λ ∈ [%d, %d]); retry at tier %q",
		e.Est.EstRounds, e.Est.Ceiling, e.Est.LambdaLo, e.Est.LambdaHi, e.Est.HintTier)
}

// AdmissionOptions configure cost-based admission control for exact
// and tiered submissions. Zero CeilingRounds disables admission.
type AdmissionOptions struct {
	// CeilingRounds is the estimated-round budget above which an
	// exact/tiered submission is rejected (or down-tiered). The
	// estimate is (√n + bracket rounds) · λhi² from a ~100-round
	// bracket pre-pass whose result is cached under the bracket tier
	// key, byte-identical to a direct bracket submission.
	CeilingRounds int64
	// Downtier, when set, serves over-ceiling submissions at the approx
	// tier (recorded as JobView.DegradedFrom) instead of rejecting
	// them.
	Downtier bool
}

// DegradeOptions configure queue-pressure load shedding: as queue
// depth crosses each threshold (a fraction of queue capacity in
// (0, 1]), new submissions above the named tier are served at that
// tier instead, stepping exact → tiered → approx → bracket. Zero
// thresholds are off; the respect tier is never degraded (it is an
// explicit diagnostics request, not a cost choice).
type DegradeOptions struct {
	// TieredAt caps new work at the tiered tier (exact submissions
	// become tiered) once len(queue)/cap(queue) ≥ TieredAt.
	TieredAt float64
	// ApproxAt caps new work at the approx tier.
	ApproxAt float64
	// BracketAt caps new work at the bracket tier.
	BracketAt float64
}

// tierRank orders the degradable tiers cheapest-first. The respect
// tier is absent: it is never a degradation source or target.
var tierRank = map[string]int{
	TierBracket: 0,
	TierApprox:  1,
	TierTiered:  2,
	TierExact:   3,
}

// Options configures a Service. The zero value is ready to use.
type Options struct {
	// PoolSize bounds how many jobs execute protocols concurrently
	// (default GOMAXPROCS, at least 2).
	PoolSize int
	// QueueDepth bounds jobs accepted but not yet running (default
	// 256). Submit returns ErrBusy beyond it.
	QueueDepth int
	// CacheEntries bounds the result cache (default 4096).
	CacheEntries int
	// JobRetention bounds how many finished job records are kept for
	// polling (default 4096). Beyond it the oldest finished records
	// are dropped and their IDs answer 404; results stay reachable via
	// the content-addressed cache. In-flight jobs are never dropped.
	JobRetention int
	// Limits bounds accepted specs (zero fields take DefaultLimits).
	Limits Limits
	// EngineWorkers and DeliveryShards are passed to every run
	// (distmincut.Options); they never affect results, only speed.
	// Zero DeliveryShards resolves to serial delivery here — the
	// worker pool already runs PoolSize jobs in parallel, and letting
	// every job also fan delivery out one-shard-per-CPU (the runtime's
	// single-run default) would oversubscribe the machine PoolSize-
	// fold. Set it explicitly to opt a mostly-idle pool into sharded
	// delivery.
	EngineWorkers  int
	DeliveryShards int
	// CheckPayload enables the runtime's payload-overflow guard on
	// every run.
	CheckPayload bool
	// DefaultDeadline bounds every job whose request carries no
	// deadline_ms of its own. Zero means no default: only explicit
	// per-job deadlines apply.
	DefaultDeadline time.Duration
	// MaxJobRounds caps the simulated rounds of any single protocol
	// run (per phase for tiered jobs); a run that trips it is killed at
	// the round boundary and reported as StateDeadline. Zero applies
	// only the runtime's own safety cap.
	MaxJobRounds int
	// Admission configures cost-based admission control for
	// exact/tiered submissions (off when zero).
	Admission AdmissionOptions
	// Degrade configures queue-pressure tier degradation (off when
	// zero).
	Degrade DegradeOptions
	// Logger receives the service's structured log events (admission,
	// degradation, shedding, job outcomes, drain). Nil discards them.
	Logger *slog.Logger
	// FlightRounds sizes the per-execution flight recorder: the ring of
	// last-K round records appended to a job's trace when a deadline or
	// round budget kills the run. Zero takes
	// congest.DefaultFlightRounds; negative disables the recorder (runs
	// observe nothing, traces of aborted jobs carry no round tail).
	FlightRounds int
	// Replica names this service instance in a multi-replica
	// deployment. It is incidental identity, never job identity: it
	// appears on JobView.Replica and in /healthz so a gateway or client
	// can tell which instance answered, and is deliberately absent from
	// the canonical Result bytes, which stay byte-identical across
	// replicas. Empty means single-instance (the field is omitted).
	Replica string
}

func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = runtime.GOMAXPROCS(0)
		if o.PoolSize < 2 {
			o.PoolSize = 2
		}
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 4096
	}
	if o.JobRetention <= 0 {
		o.JobRetention = 4096
	}
	if o.DeliveryShards == 0 {
		o.DeliveryShards = -1 // serial per job: the pool is the parallelism
	}
	o.Limits = o.Limits.withDefaults()
	return o
}

// Result is the canonical, cacheable outcome of one job. It contains
// no timestamps or per-run incidentals: its JSON encoding is a pure
// function of the canonical request, which is what makes cached bytes
// reusable verbatim.
type Result struct {
	Key string `json:"key"`
	// Mode mirrors Tier (it predates tiers and is kept for clients
	// reading the original field).
	Mode string `json:"mode"`
	// Tier names the serving tier that produced this result: exact,
	// approx, bracket, or respect. A tiered job never appears here —
	// its phases are cached as their own tiers.
	Tier string `json:"tier"`
	N    int    `json:"n"`
	M    int    `json:"m"`
	// Value is the weight of the returned cut. For the bracket tier it
	// is the certified witness cut (minimum weighted degree) and Lo/Hi
	// bracket the true λ; for other tiers Lo/Hi are omitted.
	Value       int64 `json:"value"`
	Lo          int64 `json:"lo,omitempty"`
	Hi          int64 `json:"hi,omitempty"`
	Exact       bool  `json:"exact"`
	BestNode    int64 `json:"best_node"`
	TreesPacked int   `json:"trees_packed"`
	Levels      int   `json:"levels"`
	Rounds      int   `json:"rounds"`
	Messages    int64 `json:"messages"`
	// SideIn is the size of the cut side marked true; Side is the full
	// side assignment as a base64 bitset (node i = bit i%8 of byte
	// i/8).
	SideIn int    `json:"side_in"`
	Side   string `json:"side"`
}

// job is one submitter's record; all mutable fields are guarded by the
// service mutex except the progress gauge (atomic by construction).
// Submissions coalesced onto the same canonical key each get their own
// job record, all attached to one shared exec.
type job struct {
	id       string
	key      string
	tier     string
	state    State
	cacheHit bool
	err      string
	result   []byte
	approx   []byte // tiered: the published approximate-phase result
	setupNs  int64  // engine setup time of the completed run (0 for cache hits)
	progress *congest.Progress
	exec     *exec // nil once terminal (or for cache-hit records)
	// degradedFrom is the originally requested tier when overload
	// degraded this submission (queue pressure or admission downtier);
	// empty when the job runs at its requested tier.
	degradedFrom string
	// budget is the job's wall-clock allowance (deadline_ms or the
	// server default); it sizes the Retry-After hint on a deadline.
	budget   time.Duration
	created  time.Time
	started  time.Time
	finished time.Time
	// trace is the job's event timeline (see traceEvent), served by
	// Service.Trace. Job-local events (queued, degraded, terminal state,
	// flight-recorder tail) live here; while the job is attached to an
	// execution the shared execution's events are appended at snapshot
	// time, and at finalization they are merged in permanently.
	trace []traceEvent
}

// exec is one protocol execution, shared by every job record coalesced
// onto its canonical key. Canceling a job only detaches that record;
// the execution itself is canceled when its last waiter detaches. All
// fields are guarded by the service mutex except the progress gauge.
type exec struct {
	key      string
	req      JobRequest
	tier     string
	state    State // StateQueued, StateRunning or StateRefining; terminal states live on jobs
	progress *congest.Progress
	cancel   context.CancelFunc // set once running
	waiters  []*job             // attached, non-terminal job records
	// Tiered executions address each phase under the key a direct
	// submission of that tier would get (see TierKey); approx carries
	// the published phase-1 bytes once the execution is refining.
	approxKey string
	exactKey  string
	approx    []byte
	// budget/deadlineAt are the first submitter's wall-clock allowance;
	// coalesced joiners inherit it (one execution, one deadline).
	// deadlineAt counts from submission, so queue wait spends budget.
	budget     time.Duration
	deadlineAt time.Time
	// trace is the execution's shared event timeline (started, build,
	// per-tier runs with their phase spans, refining); guarded by the
	// service mutex like the rest of the record.
	trace []traceEvent
	// recorder is the execution's flight recorder (nil when disabled);
	// runStart anchors its round records — and the run's phase spans —
	// to the wall clock. Both are touched only by the worker goroutine
	// that owns the execution.
	recorder *congest.FlightRecorder
	runStart time.Time
}

// JobView is an immutable snapshot of a job for API responses.
type JobView struct {
	ID       string `json:"job_id"`
	Key      string `json:"key"`
	Tier     string `json:"tier,omitempty"`
	State    State  `json:"state"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	// Rounds and Delivered report live protocol progress while the job
	// runs and final totals once it is done.
	Rounds    int64 `json:"rounds"`
	Delivered int64 `json:"delivered"`
	// Replica names the service instance that owns this job record
	// (Options.Replica); empty on single-instance deployments. A
	// gateway rewrites the job ID it hands clients but leaves this
	// field as the upstream's identity.
	Replica string `json:"replica,omitempty"`
	// SetupNs is the wall time the completed run spent in engine setup
	// (congest.Stats.SetupNanos): a cold worker pays slab allocation
	// here, a warm one near nothing, so the field makes per-worker
	// engine reuse observable. Zero for cache hits and unfinished jobs.
	// Incidental timing, deliberately kept out of the cacheable Result.
	SetupNs int64  `json:"setup_ns,omitempty"`
	Error   string `json:"error,omitempty"`
	// Approx is the tiered tier's published approximate-phase result:
	// populated from the moment the job enters state "refining" and
	// retained through done, canceled, drained, and deadline outcomes.
	Approx json.RawMessage `json:"approx,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	// DegradedFrom is the originally requested tier when overload made
	// the service serve this job at a cheaper one (queue-pressure
	// degradation or admission downtier); Tier is the tier actually
	// served. Empty when the job ran as requested.
	DegradedFrom string `json:"degraded_from,omitempty"`
	// RetryAfterMS, on a deadline outcome, hints how long a client
	// should wait before resubmitting (2× the job's budget: enough for
	// the backlog that ate the budget to drain, cheap to recompute
	// against the warm cache).
	RetryAfterMS int64     `json:"retry_after_ms,omitempty"`
	CreatedAt    time.Time `json:"created_at"`
}

// Metrics is a point-in-time snapshot of service health.
type Metrics struct {
	UptimeSec     float64 `json:"uptime_sec"`
	PoolSize      int     `json:"pool_size"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	Running       int     `json:"running"`
	// Refining counts executions that have published an approximate
	// answer and are still computing the exact one.
	Refining  int   `json:"refining"`
	Submitted int64 `json:"jobs_submitted"`
	Completed int64 `json:"jobs_completed"`
	Failed    int64 `json:"jobs_failed"`
	Canceled  int64 `json:"jobs_canceled"`
	// Deadlined counts jobs killed by their wall-clock deadline or
	// round budget; Degraded counts submissions served below their
	// requested tier by queue pressure; Shed counts submissions turned
	// away with ErrBusy (503) on a full queue.
	Deadlined int64 `json:"jobs_deadline"`
	Degraded  int64 `json:"jobs_degraded"`
	Shed      int64 `json:"jobs_shed"`
	// AdmissionChecks counts bracket pre-passes run (or served from
	// cache) for admission; AdmissionRejected the resulting 429s;
	// AdmissionDowntiered over-ceiling submissions served at approx.
	AdmissionChecks     int64   `json:"admission_checks"`
	AdmissionRejected   int64   `json:"admission_rejected"`
	AdmissionDowntiered int64   `json:"admission_downtiered"`
	Coalesced           int64   `json:"jobs_coalesced"`
	CacheHits           int64   `json:"cache_hits"`
	CacheMisses         int64   `json:"cache_misses"`
	CacheHitRate        float64 `json:"cache_hit_rate"`
	CacheEntries        int     `json:"cache_entries"`
	// RoundsTotal sums the CONGEST rounds of completed jobs;
	// RoundsPerSec divides it by the pool's cumulative busy time.
	// LiveRounds adds the current gauges of running jobs.
	RoundsTotal  int64   `json:"rounds_total"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	LiveRounds   int64   `json:"live_rounds"`
	// Build identifies the running binary (version, commit, toolchain).
	Build BuildInfo `json:"build"`
	// PhaseRounds and PhaseMessages aggregate completed runs' leaf
	// phase spans by phase group (bfs, mst, respect, pack, certify,
	// level, bracket, ...): CONGEST rounds and delivered messages spent
	// in each protocol phase since the service started.
	PhaseRounds   map[string]int64 `json:"phase_rounds,omitempty"`
	PhaseMessages map[string]int64 `json:"phase_messages,omitempty"`
	// TierLatency holds one job-latency histogram per serving tier,
	// observed at every job that reaches state done (cache hits
	// included, which is what puts mass in the sub-millisecond
	// buckets).
	TierLatency map[string]HistogramSnapshot `json:"tier_latency,omitempty"`
}

// Service is the concurrent min-cut job runner. Create with New,
// submit with Submit, stop with Shutdown.
type Service struct {
	opts  Options
	cache *cache
	queue chan *exec
	start time.Time
	log   *slog.Logger
	durs  map[string]*histogram // per-tier job latency, keyed by tier

	mu            sync.Mutex
	jobs          map[string]*job
	inflight      map[string]*exec // canonical key -> queued/running execution
	retired       []string         // finished job IDs, oldest first, bounded by JobRetention
	phaseRounds   map[string]int64 // per phase group, completed runs only
	phaseMessages map[string]int64
	closed        bool
	nextID        int64

	wg        sync.WaitGroup
	baseCtx   context.Context
	cancelAll context.CancelFunc

	running       atomic.Int64
	completed     atomic.Int64
	failed        atomic.Int64
	canceled      atomic.Int64
	deadlined     atomic.Int64
	degraded      atomic.Int64
	shed          atomic.Int64
	admChecks     atomic.Int64
	admRejected   atomic.Int64
	admDowntiered atomic.Int64
	coalesced     atomic.Int64
	submitted     atomic.Int64
	rounds        atomic.Int64
	busyNanos     atomic.Int64
}

// New starts a Service with opts.PoolSize worker goroutines.
func New(opts Options) *Service {
	o := opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	logger := o.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Service{
		opts:          o,
		cache:         newCache(o.CacheEntries),
		queue:         make(chan *exec, o.QueueDepth),
		start:         time.Now(),
		log:           logger,
		durs:          make(map[string]*histogram, 5),
		jobs:          make(map[string]*job),
		inflight:      make(map[string]*exec),
		phaseRounds:   make(map[string]int64),
		phaseMessages: make(map[string]int64),
		baseCtx:       ctx,
		cancelAll:     cancel,
	}
	for _, tier := range []string{TierBracket, TierApprox, TierExact, TierRespect, TierTiered} {
		s.durs[tier] = newHistogram()
	}
	s.log.Info("service started", "pool_size", o.PoolSize, "queue_depth", o.QueueDepth,
		"version", ReadBuild().Version, "commit", ReadBuild().Commit)
	s.wg.Add(o.PoolSize)
	for i := 0; i < o.PoolSize; i++ {
		go s.worker()
	}
	return s
}

// Submit validates req and returns a job snapshot. Identical canonical
// requests are served from the result cache (state done, no protocol
// run) or coalesced onto the already in-flight execution for that key.
// A coalesced submission still gets its own job ID: every submitter
// polls and cancels an independent record, and only the shared
// execution (one protocol run, one cache fill) is deduplicated.
//
// A tiered request is served from the cache when its exact phase key
// is cached (the exact answer subsumes the approximate one; the cached
// approx-phase bytes ride along when present), and a coalesced tiered
// submission joining a refining execution receives the already
// published approximate payload immediately.
//
// Under overload three mechanisms trigger before a run is queued,
// in order: queue-pressure degradation re-tiers the request at the
// DegradeOptions cap (the cache and in-flight coalescing are retried
// at the cheaper tier); admission control runs the bracket pre-pass on
// exact/tiered requests and rejects (AdmissionError, HTTP 429) or
// down-tiers the ones whose extrapolated poly(λ) cost exceeds the
// ceiling; a still-full queue sheds the submission with ErrBusy.
func (s *Service) Submit(req JobRequest) (JobView, error) {
	canon, key, err := CanonicalRequest(req, s.opts.Limits)
	if err != nil {
		return JobView{}, err
	}
	budget := time.Duration(req.DeadlineMS) * time.Millisecond
	if budget == 0 {
		budget = s.opts.DefaultDeadline
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobView{}, ErrClosed
	}
	if v, ok := s.serveLocked(canon, key, budget, "", true); ok {
		s.mu.Unlock()
		return v, nil
	}
	degradedFrom := ""
	if tcap := s.degradeCap(); tcap != "" && tierRank[canon.Tier] > tierRank[tcap] {
		if c2, k2, err2 := reTier(canon, tcap, s.opts.Limits); err2 == nil {
			degradedFrom, canon, key = canon.Tier, c2, k2
			s.degraded.Add(1)
			s.log.Info("degraded submission", "from", degradedFrom, "to", canon.Tier,
				"queue_depth", len(s.queue), "queue_capacity", cap(s.queue))
			if v, ok := s.serveLocked(canon, key, budget, degradedFrom, false); ok {
				s.mu.Unlock()
				return v, nil
			}
		}
	}
	if len(s.queue) == cap(s.queue) {
		s.mu.Unlock()
		// Deliberately not counted in jobs_submitted: the counter
		// tracks accepted work only (bad specs and 503s are excluded).
		s.shed.Add(1)
		s.log.Warn("shed submission: queue full", "tier", canon.Tier, "depth", cap(s.queue))
		return JobView{}, fmt.Errorf("%w (depth %d)", ErrBusy, cap(s.queue))
	}
	s.mu.Unlock()

	// Admission runs without the lock: the bracket pre-pass is a real
	// (if ~100-round) protocol run on the submitter's goroutine.
	if s.opts.Admission.CeilingRounds > 0 && (canon.Tier == TierExact || canon.Tier == TierTiered) {
		if est, ok := s.admitEstimate(canon); ok && est.EstRounds > est.Ceiling {
			if !s.opts.Admission.Downtier {
				s.admRejected.Add(1)
				s.log.Warn("admission rejected", "tier", canon.Tier,
					"est_rounds", est.EstRounds, "ceiling", est.Ceiling,
					"lambda_lo", est.LambdaLo, "lambda_hi", est.LambdaHi)
				return JobView{}, &AdmissionError{Est: est}
			}
			if c2, k2, err2 := reTier(canon, TierApprox, s.opts.Limits); err2 == nil {
				if degradedFrom == "" {
					degradedFrom = canon.Tier
				}
				canon, key = c2, k2
				s.admDowntiered.Add(1)
				s.log.Info("admission downtiered", "to", TierApprox,
					"est_rounds", est.EstRounds, "ceiling", est.Ceiling)
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobView{}, ErrClosed
	}
	// The lock was dropped for admission: the cache or an in-flight
	// execution may satisfy the (possibly re-tiered) request now.
	if v, ok := s.serveLocked(canon, key, budget, degradedFrom, false); ok {
		return v, nil
	}
	if len(s.queue) == cap(s.queue) {
		s.shed.Add(1)
		return JobView{}, fmt.Errorf("%w (depth %d)", ErrBusy, cap(s.queue))
	}
	approxKey, exactKey, err := phaseKeys(canon, s.opts.Limits)
	if err != nil {
		return JobView{}, err
	}
	s.submitted.Add(1)
	e := &exec{
		key: key, req: canon, tier: canon.Tier, state: StateQueued,
		progress: &congest.Progress{}, approxKey: approxKey, exactKey: exactKey,
		budget: budget,
	}
	if budget > 0 {
		e.deadlineAt = time.Now().Add(budget)
	}
	j := s.newJobLocked(key, canon.Tier)
	j.state = StateQueued
	j.progress = e.progress
	j.exec = e
	j.budget = budget
	markDegraded(j, degradedFrom)
	e.waiters = []*job{j}
	s.inflight[key] = e
	s.queue <- e // cannot block: sends only happen under mu with space checked
	return s.viewLocked(j), nil
}

// phaseKeys derives the tiered tier's phase cache keys; both empty for
// other tiers. Neither derivation can fail after CanonicalRequest
// succeeded on canon.
func phaseKeys(canon JobRequest, limits Limits) (approxKey, exactKey string, err error) {
	if canon.Tier != TierTiered {
		return "", "", nil
	}
	if approxKey, err = TierKey(canon, TierApprox, limits); err != nil {
		return "", "", err
	}
	if exactKey, err = TierKey(canon, TierExact, limits); err != nil {
		return "", "", err
	}
	return approxKey, exactKey, nil
}

// reTier re-canonicalizes an already-canonical request at a cheaper
// tier (degradation or admission downtier). Tier-specific defaults
// (epsilon) apply as if the request had been submitted there.
func reTier(canon JobRequest, tier string, limits Limits) (JobRequest, string, error) {
	c := canon
	c.Mode = ""
	c.Tier = tier
	return CanonicalRequest(c, limits)
}

// degradeCap returns the most expensive tier currently served for new
// work under queue-pressure degradation, or "" when every tier is
// served (degradation off or pressure below every threshold).
func (s *Service) degradeCap() string {
	d := s.opts.Degrade
	p := float64(len(s.queue)) / float64(cap(s.queue))
	switch {
	case d.BracketAt > 0 && p >= d.BracketAt:
		return TierBracket
	case d.ApproxAt > 0 && p >= d.ApproxAt:
		return TierApprox
	case d.TieredAt > 0 && p >= d.TieredAt:
		return TierTiered
	}
	return ""
}

// serveLocked tries to satisfy a submission at (canon, key) without a
// new execution: from the result cache, or by coalescing onto the
// in-flight execution for the key. count selects whether this lookup
// moves the cache hit/miss counters — a submission records exactly one
// cache-effectiveness signal (its first lookup), not one per
// degradation or admission retry. Caller holds mu.
func (s *Service) serveLocked(canon JobRequest, key string, budget time.Duration, degradedFrom string, count bool) (JobView, bool) {
	tiered := canon.Tier == TierTiered
	approxKey, exactKey, err := phaseKeys(canon, s.opts.Limits)
	if err != nil {
		return JobView{}, false
	}
	lookup := key
	if tiered {
		lookup = exactKey
	}
	if data, ok := s.cache.get(lookup, count); ok {
		s.submitted.Add(1)
		j := s.newJobLocked(key, canon.Tier)
		j.state = StateDone
		j.cacheHit = true
		j.result = data
		j.finished = j.created
		markDegraded(j, degradedFrom)
		if tiered {
			// Uncounted: the submit-path cache signal was the exact key.
			j.approx, _ = s.cache.get(approxKey, false)
		}
		j.trace = append(j.trace, traceEvent{
			name: "done", cat: "lifecycle", at: j.finished,
			args: map[string]any{"cache_hit": true},
		})
		s.durs[canon.Tier].observe(0) // a cache hit is a zero-latency done
		s.retireLocked(j)
		return s.viewLocked(j), true
	}
	if e, ok := s.inflight[key]; ok {
		s.submitted.Add(1)
		s.coalesced.Add(1)
		j := s.newJobLocked(key, canon.Tier)
		j.state = e.state
		j.approx = e.approx
		j.progress = e.progress
		j.exec = e
		j.budget = e.budget // inherited: one execution, one deadline
		markDegraded(j, degradedFrom)
		j.trace = append(j.trace, traceEvent{
			name: "coalesced", cat: "lifecycle", at: time.Now(),
			args: map[string]any{"key": key},
		})
		e.waiters = append(e.waiters, j)
		return s.viewLocked(j), true
	}
	return JobView{}, false
}

// admitEstimate prices an exact/tiered submission via the bracket
// pre-pass: λ ∈ [lo, hi] in ~100 rounds (distmincut.BracketMinCut),
// with the result cached under the bracket tier key — byte-identical
// to a direct bracket submission, so pre-passes and bracket traffic
// share cache entries in both directions. Reports ok=false to admit
// unconditionally (fail open) when the pre-pass cannot price the
// request: the real run will surface the real error, and admission
// must never be the component that takes a healthy request down.
func (s *Service) admitEstimate(canon JobRequest) (est CostEstimate, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			est, ok = CostEstimate{}, false
		}
	}()
	s.admChecks.Add(1)
	chaos.Inject(chaos.SiteAdmission)
	bracketKey, err := TierKey(canon, TierBracket, s.opts.Limits)
	if err != nil {
		return CostEstimate{}, false
	}
	data, hit := s.cache.get(bracketKey, false)
	if !hit {
		g, err := Build(canon.Graph)
		if err != nil {
			return CostEstimate{}, false
		}
		br, err := distmincut.BracketMinCutContext(s.baseCtx, g, &distmincut.Options{
			Seed:           canon.Seed,
			Workers:        s.opts.EngineWorkers,
			DeliveryShards: s.opts.DeliveryShards,
			CheckPayload:   s.opts.CheckPayload,
		})
		if err != nil {
			return CostEstimate{}, false
		}
		if data, err = encodeBracket(bracketKey, g.N(), g.M(), br); err != nil {
			return CostEstimate{}, false
		}
		s.cache.put(bracketKey, data)
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return CostEstimate{}, false
	}
	est = CostEstimate{
		LambdaLo:      r.Lo,
		LambdaHi:      r.Hi,
		BracketRounds: r.Rounds,
		Ceiling:       s.opts.Admission.CeilingRounds,
		HintTier:      TierApprox,
	}
	// (√n + bracket rounds) · λhi², in float64 first so a pathological
	// bracket cannot overflow the int64 estimate.
	cost := (math.Sqrt(float64(r.N)) + float64(r.Rounds)) * float64(r.Hi) * float64(r.Hi)
	if cost > math.MaxInt64/2 {
		cost = math.MaxInt64 / 2
	}
	est.EstRounds = int64(cost)
	return est, true
}

// retireLocked marks j finished for retention accounting and drops the
// oldest finished records beyond Options.JobRetention, so the job map
// cannot grow without bound under sustained traffic. Caller holds mu.
func (s *Service) retireLocked(j *job) {
	s.retired = append(s.retired, j.id)
	for len(s.retired) > s.opts.JobRetention {
		delete(s.jobs, s.retired[0])
		s.retired = s.retired[1:]
	}
}

// newJobLocked allocates and registers a job record. Caller holds mu.
func (s *Service) newJobLocked(key, tier string) *job {
	s.nextID++
	j := &job{
		id:      "j" + strconv.FormatInt(s.nextID, 10),
		key:     key,
		tier:    tier,
		created: time.Now(),
	}
	j.trace = append(j.trace, traceEvent{
		name: "queued", cat: "lifecycle", at: j.created,
		args: map[string]any{"tier": tier, "key": key},
	})
	s.jobs[j.id] = j
	return j
}

// markDegraded records a degradation (queue pressure or admission
// downtier) on the job record and its timeline. No-op for an empty
// source tier. Caller holds mu.
func markDegraded(j *job, from string) {
	if from == "" {
		return
	}
	j.degradedFrom = from
	j.trace = append(j.trace, traceEvent{
		name: "degraded", cat: "lifecycle", at: time.Now(),
		args: map[string]any{"from": from, "to": j.tier},
	})
}

// Job returns a snapshot of the job with the given ID.
func (s *Service) Job(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return s.viewLocked(j), true
}

// Cancel cancels a queued or running job. Canceling a finished job is
// a no-op; unknown IDs report false. A canceled job only detaches the
// caller's record from the shared execution: other submitters
// coalesced onto the same key keep their jobs and still receive the
// result. The execution itself is canceled (queued: dropped by the
// worker; running: context-aborted) only when its last waiter
// detaches.
func (s *Service) Cancel(id string) (JobView, bool) {
	chaos.Inject(chaos.SiteCancel)
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	e := j.exec
	if e == nil { // already terminal (or a cache-hit record)
		return s.viewLocked(j), true
	}
	j.state = StateCanceled
	j.err = "canceled by request"
	j.finished = time.Now()
	j.exec = nil
	s.canceled.Add(1)
	s.retireLocked(j)
	for i, w := range e.waiters {
		if w == j {
			e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
			break
		}
	}
	if len(e.waiters) == 0 {
		// Last reference dropped: nobody wants this run anymore. A
		// later identical submission starts a fresh execution.
		delete(s.inflight, e.key)
		if e.cancel != nil {
			e.cancel() // running: the worker observes the aborted context
		}
		// Still queued: the worker pops it, sees no waiters, drops it.
	}
	return s.viewLocked(j), true
}

// ResultByKey returns the cached canonical result bytes for a key.
func (s *Service) ResultByKey(key string) ([]byte, bool) {
	return s.cache.get(key, false)
}

// viewLocked snapshots j. Caller holds mu.
func (s *Service) viewLocked(j *job) JobView {
	v := JobView{
		ID:        j.id,
		Key:       j.key,
		Tier:      j.tier,
		State:     j.state,
		CacheHit:  j.cacheHit,
		Error:     j.err,
		Replica:   s.opts.Replica,
		CreatedAt: j.created,
	}
	if j.progress != nil {
		v.Rounds = int64(j.progress.Round())
		v.Delivered = j.progress.Delivered()
	}
	v.SetupNs = j.setupNs
	if j.approx != nil {
		// Published when the job entered refining; survives cancel,
		// drain, and deadline so the submitter keeps the fast answer
		// either way.
		v.Approx = json.RawMessage(j.approx)
	}
	if j.state == StateDone {
		v.Result = json.RawMessage(j.result)
	}
	v.DegradedFrom = j.degradedFrom
	if j.state == StateDeadline {
		if j.budget > 0 {
			v.RetryAfterMS = 2 * j.budget.Milliseconds()
		} else {
			v.RetryAfterMS = 1000 // round budget without a wall clock: a flat hint
		}
	}
	return v
}

// Metrics snapshots service health.
func (s *Service) Metrics() Metrics {
	hits, misses, entries := s.cache.stats()
	m := Metrics{
		UptimeSec:           time.Since(s.start).Seconds(),
		PoolSize:            s.opts.PoolSize,
		QueueDepth:          len(s.queue),
		QueueCapacity:       cap(s.queue),
		Running:             int(s.running.Load()),
		Submitted:           s.submitted.Load(),
		Completed:           s.completed.Load(),
		Failed:              s.failed.Load(),
		Canceled:            s.canceled.Load(),
		Deadlined:           s.deadlined.Load(),
		Degraded:            s.degraded.Load(),
		Shed:                s.shed.Load(),
		AdmissionChecks:     s.admChecks.Load(),
		AdmissionRejected:   s.admRejected.Load(),
		AdmissionDowntiered: s.admDowntiered.Load(),
		Coalesced:           s.coalesced.Load(),
		CacheHits:           hits,
		CacheMisses:         misses,
		CacheEntries:        entries,
		RoundsTotal:         s.rounds.Load(),
		Build:               ReadBuild(),
		TierLatency:         make(map[string]HistogramSnapshot, len(s.durs)),
	}
	for tier, h := range s.durs {
		m.TierLatency[tier] = h.snapshot()
	}
	if total := hits + misses; total > 0 {
		m.CacheHitRate = float64(hits) / float64(total)
	}
	if busy := s.busyNanos.Load(); busy > 0 {
		m.RoundsPerSec = float64(m.RoundsTotal) / (float64(busy) / 1e9)
	}
	s.mu.Lock()
	for _, e := range s.inflight {
		if e.state == StateRunning || e.state == StateRefining {
			m.LiveRounds += int64(e.progress.Round())
		}
		if e.state == StateRefining {
			m.Refining++
		}
	}
	if len(s.phaseRounds) > 0 {
		m.PhaseRounds = make(map[string]int64, len(s.phaseRounds))
		m.PhaseMessages = make(map[string]int64, len(s.phaseMessages))
		for k, v := range s.phaseRounds {
			m.PhaseRounds[k] = v
		}
		for k, v := range s.phaseMessages {
			m.PhaseMessages[k] = v
		}
	}
	s.mu.Unlock()
	return m
}

// Ready reports whether the service is accepting new submissions, with
// a machine-readable reason when it is not ("draining" once a drain has
// begun, "queue full" while the queue is at 100% fill). Liveness and
// readiness are distinct: a draining instance is alive — it answers
// polls and finishes running jobs — but not ready, which is the signal
// a gateway uses to stop routing new work to it.
func (s *Service) Ready() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, "draining"
	}
	if len(s.queue) == cap(s.queue) {
		return false, "queue full"
	}
	return true, ""
}

// Replica returns this instance's configured replica identity
// (Options.Replica); empty on single-instance deployments.
func (s *Service) Replica() string { return s.opts.Replica }

// BeginDrain flips the service into the draining state without waiting:
// Ready() reports false, Submit returns ErrClosed, and queued plus
// running jobs keep executing. Idempotent. It is the first half of
// Shutdown, split out so a server can stop accepting work while its
// HTTP listener stays up — a gateway observes readiness go false,
// drains routes away, and clients keep polling in-flight jobs until
// Shutdown completes the drain.
func (s *Service) BeginDrain() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue) // safe: sends happen only under mu with closed checked
	s.mu.Unlock()
	s.log.Info("draining", "running", s.running.Load())
	chaos.Inject(chaos.SiteDrain)
}

// Shutdown drains the service: no new submissions are accepted, queued
// and running jobs are given until ctx is done to finish, then every
// remaining run is canceled. Always returns after the pool has exited;
// the error is ctx's if the deadline forced cancellation. Callable
// after BeginDrain (it completes the drain) and idempotent.
func (s *Service) Shutdown(ctx context.Context) error {
	s.BeginDrain()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancelAll()
		return nil
	case <-ctx.Done():
		s.cancelAll()
		<-done
		return ctx.Err()
	}
}

// worker executes queued executions until the queue closes. Each
// worker owns one warm, reusable CONGEST engine: the engine keeps its
// slabs and port tables across jobs, so after the worker's first (cold)
// run every same-scale job skips nearly all engine setup (observable as
// JobView.SetupNs).
func (s *Service) worker() {
	defer s.wg.Done()
	eng := congest.NewEngine(congest.Options{
		Workers:        s.opts.EngineWorkers,
		DeliveryShards: s.opts.DeliveryShards,
		CheckPayload:   s.opts.CheckPayload,
	})
	defer eng.Close()
	for e := range s.queue {
		s.runExec(eng, e)
		// Warm while busy, released when idle: an engine between jobs
		// pins the last job's graph (via its node adjacency slices)
		// until the next full reinit, so when no work is queued the
		// worker returns its slabs to the process-wide pools — the
		// next job re-acquires them without page faults, and an idle
		// pool holds no graph memory.
		if len(s.queue) == 0 {
			eng.Close()
		}
	}
}

// runExec runs one execution end to end and finalizes every job record
// still attached to it.
func (s *Service) runExec(eng *congest.Engine, e *exec) {
	s.mu.Lock()
	if len(e.waiters) == 0 { // every submitter canceled while queued
		s.mu.Unlock()
		return
	}
	// The deadline context derives from baseCtx, so a drain's cancelAll
	// still kills a deadline-bearing run: the deadline can only shorten
	// a job's life, never stall the drain.
	ctx, cancel := context.WithCancel(s.baseCtx)
	if !e.deadlineAt.IsZero() {
		cancel()
		ctx, cancel = context.WithDeadline(s.baseCtx, e.deadlineAt)
	}
	e.state = StateRunning
	e.cancel = cancel
	if s.opts.FlightRounds >= 0 {
		e.recorder = congest.NewFlightRecorder(s.opts.FlightRounds)
	}
	started := time.Now()
	e.trace = append(e.trace, traceEvent{
		name: "started", cat: "lifecycle", at: started,
		args: map[string]any{"tier": e.tier},
	})
	for _, j := range e.waiters {
		j.state = StateRunning
		j.started = started
	}
	s.mu.Unlock()
	s.running.Add(1)
	defer s.running.Add(-1)
	defer cancel()

	res, setupNs, err := s.executeSafe(ctx, eng, e)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[e.key] == e {
		delete(s.inflight, e.key)
	}
	now := time.Now()
	// finalize moves every attached record to its terminal state,
	// merging the execution's shared timeline plus the given trailing
	// events (terminal instant first, so a flight-recorder tail renders
	// after it) into each job's permanent trace.
	finalize := func(state State, errText string, tailEvents []traceEvent) {
		for _, j := range e.waiters {
			j.state = state
			j.err = errText
			j.finished = now
			j.exec = nil
			j.trace = append(j.trace, e.trace...)
			j.trace = append(j.trace, traceEvent{
				name: string(state), cat: "lifecycle", at: now,
				args: map[string]any{"rounds": e.progress.Round(), "delivered": e.progress.Delivered()},
			})
			j.trace = append(j.trace, tailEvents...)
			s.retireLocked(j)
		}
	}
	switch {
	case err == nil:
		if e.tier != TierTiered {
			// Tiered results live under their phase keys only (the
			// execution cached both phases as it produced them); caching
			// the exact bytes under the tiered key too would serve a
			// result whose self-reported key differs from the lookup key.
			s.cache.put(e.key, res)
		}
		s.completed.Add(1)
		s.rounds.Add(int64(e.progress.Round()))
		s.busyNanos.Add(now.Sub(started).Nanoseconds())
		finalize(StateDone, "", nil)
		for _, j := range e.waiters {
			j.result = res
			j.setupNs = setupNs
			s.durs[e.tier].observe(now.Sub(j.created))
		}
		s.log.Debug("job done", "tier", e.tier, "key", e.key,
			"rounds", e.progress.Round(), "elapsed", now.Sub(started))
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, congest.ErrBudgetExceeded):
		// Wall-clock deadline or round budget: terminal StateDeadline.
		// The progress gauge and any published approx payload stay on
		// the records — partial progress is the outcome, not an error —
		// and each trace ends with the flight recorder's last rounds.
		s.deadlined.Add(int64(len(e.waiters)))
		var tail []traceEvent
		if e.recorder != nil {
			tail = flightEvents(e.runStart, e.recorder.Tail())
		}
		finalize(StateDeadline, err.Error(), tail)
		s.log.Warn("job deadline", "tier", e.tier, "key", e.key,
			"rounds", e.progress.Round(), "err", err)
	case errors.Is(err, context.Canceled):
		s.canceled.Add(int64(len(e.waiters)))
		finalize(StateCanceled, err.Error(), nil)
		s.log.Info("job canceled", "tier", e.tier, "key", e.key)
	default:
		s.failed.Add(1)
		finalize(StateFailed, err.Error(), nil)
		s.log.Warn("job failed", "tier", e.tier, "key", e.key, "err", err)
	}
	e.waiters = nil
}

// executeSafe is execute behind a panic barrier: the engine converts
// node-program panics to PanicError itself, but a panic anywhere else
// (graph construction on a spec a validation gap let through, result
// encoding) must fail the one job that triggered it, not take down the
// whole process from a worker goroutine.
func (s *Service) executeSafe(ctx context.Context, eng *congest.Engine, e *exec) (res []byte, setupNs int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, setupNs, err = nil, 0, fmt.Errorf("service: job panicked: %v", r)
		}
	}()
	res, setupNs, err = s.execute(ctx, eng, e)
	// Finalization fault point: still behind this barrier, so an
	// injected panic here fails the one job, never the process.
	chaos.Inject(chaos.SiteWorkerFinalize)
	return res, setupNs, err
}

// execute builds the graph and runs the requested tier on the worker's
// warm engine, returning canonical result bytes plus the engine setup
// time of the run (for JobView.SetupNs).
func (s *Service) execute(ctx context.Context, eng *congest.Engine, e *exec) ([]byte, int64, error) {
	// Fast-fail before the (possibly large) graph build: after a
	// deadline-forced shutdown the queue may still hold jobs, and the
	// drain budget must not be spent constructing graphs that would
	// only be canceled at the first round boundary.
	if err := ctx.Err(); err != nil {
		// A tiered job killed before it could run — deadline spent in
		// the queue, or a drain — still publishes its approx phase when
		// the cache has it: the same fast-answer guarantee a cancel
		// mid-refinement gives, at zero protocol cost.
		if e.tier == TierTiered {
			if approx, ok := s.cache.get(e.approxKey, false); ok {
				s.publishRefining(e, approx)
			}
		}
		return nil, 0, err
	}
	chaos.Inject(chaos.SiteWorkerExecute)
	t0 := time.Now()
	g, err := Build(e.req.Graph)
	s.execTrace(e, traceEvent{
		name: "build", cat: "phase", at: t0, dur: time.Since(t0),
		args: map[string]any{"n": e.req.Graph.N, "m": len(e.req.Graph.Edges)},
	})
	if err != nil {
		return nil, 0, err
	}
	if e.tier == TierTiered {
		return s.executeTiered(ctx, eng, e, g)
	}
	return s.runTier(ctx, eng, e, g, e.tier, e.key)
}

// executeTiered runs the approximation-first flow: the (1+ε) phase is
// computed (or taken from the cache), cached under its own tier key,
// and published to every waiter as state "refining"; then the exact
// phase runs the genuine exact pipeline — never a re-encoding of the
// approx phase, so the bytes cached under the exact tier key are
// byte-identical to a direct exact submission's — and becomes the
// job's final result.
func (s *Service) executeTiered(ctx context.Context, eng *congest.Engine, e *exec, g *graph.Graph) ([]byte, int64, error) {
	var setupNs int64
	approx, ok := s.cache.get(e.approxKey, true)
	if !ok {
		var err error
		var ns int64
		approx, ns, err = s.runTier(ctx, eng, e, g, TierApprox, e.approxKey)
		if err != nil {
			return nil, 0, err
		}
		setupNs += ns
		s.cache.put(e.approxKey, approx)
	}
	s.publishRefining(e, approx)
	exact, ok := s.cache.get(e.exactKey, true)
	if !ok {
		var err error
		var ns int64
		exact, ns, err = s.runTier(ctx, eng, e, g, TierExact, e.exactKey)
		if err != nil {
			return nil, 0, err
		}
		setupNs += ns
		s.cache.put(e.exactKey, exact)
	}
	return exact, setupNs, nil
}

// publishRefining moves a tiered execution into the refining state and
// hands the approximate payload to every attached job record.
func (s *Service) publishRefining(e *exec, approx []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.state = StateRefining
	e.approx = approx
	e.trace = append(e.trace, traceEvent{
		name: "refining", cat: "lifecycle", at: time.Now(),
		args: map[string]any{"approx_bytes": len(approx)},
	})
	for _, j := range e.waiters {
		j.state = StateRefining
		j.approx = approx
	}
}

// execTrace appends one event to the execution's shared timeline.
func (s *Service) execTrace(e *exec, ev traceEvent) {
	s.mu.Lock()
	e.trace = append(e.trace, ev)
	s.mu.Unlock()
}

// recordRun appends one tier run's phase events to the execution's
// timeline — the run:<tier> umbrella span, the engine setup span, and
// the phase-span tree reconstructed from the run's marks — and folds
// the leaf spans into the service-wide per-phase counters. A run
// killed before it produced stats (deadline, budget, cancel) still
// gets its umbrella span, so partial traces show where the wall time
// went even without protocol marks.
func (s *Service) recordRun(e *exec, tier string, t0 time.Time, stats *congest.Stats) {
	evs := make([]traceEvent, 0, 8)
	evs = append(evs, traceEvent{
		name: "run:" + tier, cat: "phase", at: t0, dur: time.Since(t0),
	})
	var spans []*distmincut.Span
	if stats != nil {
		evs = append(evs, traceEvent{
			name: "setup", cat: "phase", at: t0, dur: time.Duration(stats.SetupNanos),
		})
		spans = distmincut.Spans(stats)
		evs = spanEvents(t0, spans, evs)
	}
	s.mu.Lock()
	e.trace = append(e.trace, evs...)
	if spans != nil {
		addPhaseTotals(s.phaseRounds, s.phaseMessages, spans)
	}
	s.mu.Unlock()
}

// runTier runs one serving tier's protocol and encodes its canonical
// result bytes under the given key. The run is observed end to end:
// the execution's flight recorder (reset per run) rides along as the
// engine observer, and the run's phase spans land on the timeline via
// recordRun whether the run finishes or aborts.
func (s *Service) runTier(ctx context.Context, eng *congest.Engine, e *exec, g *graph.Graph, tier, key string) ([]byte, int64, error) {
	opts := &distmincut.Options{
		Seed:           e.req.Seed,
		Epsilon:        e.req.Epsilon,
		MaxRounds:      s.opts.MaxJobRounds,
		Deadline:       e.deadlineAt,
		Workers:        s.opts.EngineWorkers,
		DeliveryShards: s.opts.DeliveryShards,
		Engine:         eng,
		Progress:       e.progress,
		CheckPayload:   s.opts.CheckPayload,
	}
	if e.recorder != nil {
		e.recorder.Reset()
		opts.Observer = e.recorder
	}
	t0 := time.Now()
	e.runStart = t0
	var stats *congest.Stats
	defer func() { s.recordRun(e, tier, t0, stats) }()
	if tier == TierBracket {
		br, err := distmincut.BracketMinCutContext(ctx, g, opts)
		if err != nil {
			return nil, 0, err
		}
		stats = br.Stats
		data, err := encodeBracket(key, g.N(), g.M(), br)
		if err != nil {
			return nil, 0, err
		}
		return data, br.Stats.SetupNanos, nil
	}
	var res *distmincut.Result
	var err error
	switch tier {
	case TierExact:
		res, err = distmincut.MinCutContext(ctx, g, opts)
	case TierApprox:
		res, err = distmincut.ApproxMinCutContext(ctx, g, opts)
	case TierRespect:
		res, _, err = distmincut.OneRespectingCutContext(ctx, g, opts)
	default:
		return nil, 0, bad("unknown tier %q", tier)
	}
	if err != nil {
		return nil, 0, err
	}
	stats = res.Stats
	data, err := encodeResult(key, tier, g.N(), g.M(), res)
	if err != nil {
		return nil, 0, err
	}
	return data, res.Stats.SetupNanos, nil
}

// sideBits packs a side assignment into the canonical base64 bitset.
func sideBits(side []bool) (string, int) {
	bits := make([]byte, (len(side)+7)/8)
	sideIn := 0
	for i, in := range side {
		if in {
			bits[i/8] |= 1 << (i % 8)
			sideIn++
		}
	}
	return base64.StdEncoding.EncodeToString(bits), sideIn
}

// encodeResult renders the canonical result bytes for the cache. The
// tier doubles as the legacy mode field.
func encodeResult(key, tier string, n, m int, res *distmincut.Result) ([]byte, error) {
	side, sideIn := sideBits(res.Side)
	out := Result{
		Key:         key,
		Mode:        tier,
		Tier:        tier,
		N:           n,
		M:           m,
		Value:       res.Value,
		Exact:       res.Exact,
		BestNode:    int64(res.BestNode),
		TreesPacked: res.TreesPacked,
		Levels:      res.Levels,
		Rounds:      res.Rounds,
		Messages:    res.Messages,
		SideIn:      sideIn,
		Side:        side,
	}
	return json.Marshal(&out)
}

// encodeBracket renders the bracket tier's canonical result bytes: the
// certified witness cut (the minimum weighted degree singleton) as the
// value/side, plus the [lo, hi] bracket on λ and the first disconnected
// sampling level.
func encodeBracket(key string, n, m int, br *distmincut.BracketResult) ([]byte, error) {
	side, sideIn := sideBits(br.Side)
	out := Result{
		Key:      key,
		Mode:     TierBracket,
		Tier:     TierBracket,
		N:        n,
		M:        m,
		Value:    br.Value,
		Lo:       br.Lo,
		Hi:       br.Hi,
		BestNode: int64(br.BestNode),
		Levels:   br.Level,
		Rounds:   br.Rounds,
		Messages: br.Messages,
		SideIn:   sideIn,
		Side:     side,
	}
	return json.Marshal(&out)
}
