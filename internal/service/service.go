package service

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"distmincut"
	"distmincut/internal/congest"
	"distmincut/internal/graph"
)

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued: accepted, waiting for a pool worker.
	StateQueued State = "queued"
	// StateRunning: a worker is executing the protocol.
	StateRunning State = "running"
	// StateRefining is the tiered tier's intermediate phase: the job's
	// approximate answer is already published (JobView.Approx) while
	// the exact certified cut is still being computed. Canceling or
	// draining a refining job keeps the published approximate payload
	// on the job record.
	StateRefining State = "refining"
	// StateDone: finished with a result (terminal).
	StateDone State = "done"
	// StateFailed: finished with an error (terminal).
	StateFailed State = "failed"
	// StateCanceled: canceled by request or drain deadline (terminal).
	StateCanceled State = "canceled"
)

// ErrBusy is returned by Submit when the job queue is full.
var ErrBusy = errors.New("service: queue full")

// ErrClosed is returned by Submit after Shutdown has begun.
var ErrClosed = errors.New("service: shutting down")

// Options configures a Service. The zero value is ready to use.
type Options struct {
	// PoolSize bounds how many jobs execute protocols concurrently
	// (default GOMAXPROCS, at least 2).
	PoolSize int
	// QueueDepth bounds jobs accepted but not yet running (default
	// 256). Submit returns ErrBusy beyond it.
	QueueDepth int
	// CacheEntries bounds the result cache (default 4096).
	CacheEntries int
	// JobRetention bounds how many finished job records are kept for
	// polling (default 4096). Beyond it the oldest finished records
	// are dropped and their IDs answer 404; results stay reachable via
	// the content-addressed cache. In-flight jobs are never dropped.
	JobRetention int
	// Limits bounds accepted specs (zero fields take DefaultLimits).
	Limits Limits
	// EngineWorkers and DeliveryShards are passed to every run
	// (distmincut.Options); they never affect results, only speed.
	// Zero DeliveryShards resolves to serial delivery here — the
	// worker pool already runs PoolSize jobs in parallel, and letting
	// every job also fan delivery out one-shard-per-CPU (the runtime's
	// single-run default) would oversubscribe the machine PoolSize-
	// fold. Set it explicitly to opt a mostly-idle pool into sharded
	// delivery.
	EngineWorkers  int
	DeliveryShards int
	// CheckPayload enables the runtime's payload-overflow guard on
	// every run.
	CheckPayload bool
}

func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = runtime.GOMAXPROCS(0)
		if o.PoolSize < 2 {
			o.PoolSize = 2
		}
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 4096
	}
	if o.JobRetention <= 0 {
		o.JobRetention = 4096
	}
	if o.DeliveryShards == 0 {
		o.DeliveryShards = -1 // serial per job: the pool is the parallelism
	}
	o.Limits = o.Limits.withDefaults()
	return o
}

// Result is the canonical, cacheable outcome of one job. It contains
// no timestamps or per-run incidentals: its JSON encoding is a pure
// function of the canonical request, which is what makes cached bytes
// reusable verbatim.
type Result struct {
	Key string `json:"key"`
	// Mode mirrors Tier (it predates tiers and is kept for clients
	// reading the original field).
	Mode string `json:"mode"`
	// Tier names the serving tier that produced this result: exact,
	// approx, bracket, or respect. A tiered job never appears here —
	// its phases are cached as their own tiers.
	Tier string `json:"tier"`
	N    int    `json:"n"`
	M    int    `json:"m"`
	// Value is the weight of the returned cut. For the bracket tier it
	// is the certified witness cut (minimum weighted degree) and Lo/Hi
	// bracket the true λ; for other tiers Lo/Hi are omitted.
	Value       int64 `json:"value"`
	Lo          int64 `json:"lo,omitempty"`
	Hi          int64 `json:"hi,omitempty"`
	Exact       bool  `json:"exact"`
	BestNode    int64 `json:"best_node"`
	TreesPacked int   `json:"trees_packed"`
	Levels      int   `json:"levels"`
	Rounds      int   `json:"rounds"`
	Messages    int64 `json:"messages"`
	// SideIn is the size of the cut side marked true; Side is the full
	// side assignment as a base64 bitset (node i = bit i%8 of byte
	// i/8).
	SideIn int    `json:"side_in"`
	Side   string `json:"side"`
}

// job is one submitter's record; all mutable fields are guarded by the
// service mutex except the progress gauge (atomic by construction).
// Submissions coalesced onto the same canonical key each get their own
// job record, all attached to one shared exec.
type job struct {
	id       string
	key      string
	tier     string
	state    State
	cacheHit bool
	err      string
	result   []byte
	approx   []byte // tiered: the published approximate-phase result
	setupNs  int64  // engine setup time of the completed run (0 for cache hits)
	progress *congest.Progress
	exec     *exec // nil once terminal (or for cache-hit records)
	created  time.Time
	started  time.Time
	finished time.Time
}

// exec is one protocol execution, shared by every job record coalesced
// onto its canonical key. Canceling a job only detaches that record;
// the execution itself is canceled when its last waiter detaches. All
// fields are guarded by the service mutex except the progress gauge.
type exec struct {
	key      string
	req      JobRequest
	tier     string
	state    State // StateQueued, StateRunning or StateRefining; terminal states live on jobs
	progress *congest.Progress
	cancel   context.CancelFunc // set once running
	waiters  []*job             // attached, non-terminal job records
	// Tiered executions address each phase under the key a direct
	// submission of that tier would get (see TierKey); approx carries
	// the published phase-1 bytes once the execution is refining.
	approxKey string
	exactKey  string
	approx    []byte
}

// JobView is an immutable snapshot of a job for API responses.
type JobView struct {
	ID       string `json:"job_id"`
	Key      string `json:"key"`
	Tier     string `json:"tier,omitempty"`
	State    State  `json:"state"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	// Rounds and Delivered report live protocol progress while the job
	// runs and final totals once it is done.
	Rounds    int64 `json:"rounds"`
	Delivered int64 `json:"delivered"`
	// SetupNs is the wall time the completed run spent in engine setup
	// (congest.Stats.SetupNanos): a cold worker pays slab allocation
	// here, a warm one near nothing, so the field makes per-worker
	// engine reuse observable. Zero for cache hits and unfinished jobs.
	// Incidental timing, deliberately kept out of the cacheable Result.
	SetupNs int64  `json:"setup_ns,omitempty"`
	Error   string `json:"error,omitempty"`
	// Approx is the tiered tier's published approximate-phase result:
	// populated from the moment the job enters state "refining" and
	// retained through done, canceled, and drained outcomes.
	Approx    json.RawMessage `json:"approx,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	CreatedAt time.Time       `json:"created_at"`
}

// Metrics is a point-in-time snapshot of service health.
type Metrics struct {
	UptimeSec     float64 `json:"uptime_sec"`
	PoolSize      int     `json:"pool_size"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	Running       int     `json:"running"`
	// Refining counts executions that have published an approximate
	// answer and are still computing the exact one.
	Refining     int     `json:"refining"`
	Submitted    int64   `json:"jobs_submitted"`
	Completed    int64   `json:"jobs_completed"`
	Failed       int64   `json:"jobs_failed"`
	Canceled     int64   `json:"jobs_canceled"`
	Coalesced    int64   `json:"jobs_coalesced"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	CacheEntries int     `json:"cache_entries"`
	// RoundsTotal sums the CONGEST rounds of completed jobs;
	// RoundsPerSec divides it by the pool's cumulative busy time.
	// LiveRounds adds the current gauges of running jobs.
	RoundsTotal  int64   `json:"rounds_total"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	LiveRounds   int64   `json:"live_rounds"`
}

// Service is the concurrent min-cut job runner. Create with New,
// submit with Submit, stop with Shutdown.
type Service struct {
	opts  Options
	cache *cache
	queue chan *exec
	start time.Time

	mu       sync.Mutex
	jobs     map[string]*job
	inflight map[string]*exec // canonical key -> queued/running execution
	retired  []string         // finished job IDs, oldest first, bounded by JobRetention
	closed   bool
	nextID   int64

	wg        sync.WaitGroup
	baseCtx   context.Context
	cancelAll context.CancelFunc

	running   atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	coalesced atomic.Int64
	submitted atomic.Int64
	rounds    atomic.Int64
	busyNanos atomic.Int64
}

// New starts a Service with opts.PoolSize worker goroutines.
func New(opts Options) *Service {
	o := opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		opts:      o,
		cache:     newCache(o.CacheEntries),
		queue:     make(chan *exec, o.QueueDepth),
		start:     time.Now(),
		jobs:      make(map[string]*job),
		inflight:  make(map[string]*exec),
		baseCtx:   ctx,
		cancelAll: cancel,
	}
	s.wg.Add(o.PoolSize)
	for i := 0; i < o.PoolSize; i++ {
		go s.worker()
	}
	return s
}

// Submit validates req and returns a job snapshot. Identical canonical
// requests are served from the result cache (state done, no protocol
// run) or coalesced onto the already in-flight execution for that key.
// A coalesced submission still gets its own job ID: every submitter
// polls and cancels an independent record, and only the shared
// execution (one protocol run, one cache fill) is deduplicated.
//
// A tiered request is served from the cache when its exact phase key
// is cached (the exact answer subsumes the approximate one; the cached
// approx-phase bytes ride along when present), and a coalesced tiered
// submission joining a refining execution receives the already
// published approximate payload immediately.
func (s *Service) Submit(req JobRequest) (JobView, error) {
	canon, key, err := CanonicalRequest(req, s.opts.Limits)
	if err != nil {
		return JobView{}, err
	}
	tiered := canon.Tier == TierTiered
	var approxKey, exactKey string
	if tiered {
		// Phase keys are derived from the canonical request, so neither
		// derivation can fail after CanonicalRequest succeeded.
		if approxKey, err = TierKey(canon, TierApprox, s.opts.Limits); err != nil {
			return JobView{}, err
		}
		if exactKey, err = TierKey(canon, TierExact, s.opts.Limits); err != nil {
			return JobView{}, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobView{}, ErrClosed
	}
	lookup := key
	if tiered {
		lookup = exactKey
	}
	if data, ok := s.cache.get(lookup, true); ok {
		s.submitted.Add(1)
		j := s.newJobLocked(key, canon.Tier)
		j.state = StateDone
		j.cacheHit = true
		j.result = data
		j.finished = j.created
		if tiered {
			// Uncounted: the submit-path cache signal was the exact key.
			j.approx, _ = s.cache.get(approxKey, false)
		}
		s.retireLocked(j)
		return s.viewLocked(j), nil
	}
	if e, ok := s.inflight[key]; ok {
		s.submitted.Add(1)
		s.coalesced.Add(1)
		j := s.newJobLocked(key, canon.Tier)
		j.state = e.state
		j.approx = e.approx
		j.progress = e.progress
		j.exec = e
		e.waiters = append(e.waiters, j)
		return s.viewLocked(j), nil
	}
	if len(s.queue) == cap(s.queue) {
		// Deliberately not counted in jobs_submitted: the counter
		// tracks accepted work only (bad specs and 503s are excluded).
		return JobView{}, fmt.Errorf("%w (depth %d)", ErrBusy, cap(s.queue))
	}
	s.submitted.Add(1)
	e := &exec{
		key: key, req: canon, tier: canon.Tier, state: StateQueued,
		progress: &congest.Progress{}, approxKey: approxKey, exactKey: exactKey,
	}
	j := s.newJobLocked(key, canon.Tier)
	j.state = StateQueued
	j.progress = e.progress
	j.exec = e
	e.waiters = []*job{j}
	s.inflight[key] = e
	s.queue <- e // cannot block: sends only happen under mu with space checked
	return s.viewLocked(j), nil
}

// retireLocked marks j finished for retention accounting and drops the
// oldest finished records beyond Options.JobRetention, so the job map
// cannot grow without bound under sustained traffic. Caller holds mu.
func (s *Service) retireLocked(j *job) {
	s.retired = append(s.retired, j.id)
	for len(s.retired) > s.opts.JobRetention {
		delete(s.jobs, s.retired[0])
		s.retired = s.retired[1:]
	}
}

// newJobLocked allocates and registers a job record. Caller holds mu.
func (s *Service) newJobLocked(key, tier string) *job {
	s.nextID++
	j := &job{
		id:      "j" + strconv.FormatInt(s.nextID, 10),
		key:     key,
		tier:    tier,
		created: time.Now(),
	}
	s.jobs[j.id] = j
	return j
}

// Job returns a snapshot of the job with the given ID.
func (s *Service) Job(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return s.viewLocked(j), true
}

// Cancel cancels a queued or running job. Canceling a finished job is
// a no-op; unknown IDs report false. A canceled job only detaches the
// caller's record from the shared execution: other submitters
// coalesced onto the same key keep their jobs and still receive the
// result. The execution itself is canceled (queued: dropped by the
// worker; running: context-aborted) only when its last waiter
// detaches.
func (s *Service) Cancel(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	e := j.exec
	if e == nil { // already terminal (or a cache-hit record)
		return s.viewLocked(j), true
	}
	j.state = StateCanceled
	j.err = "canceled by request"
	j.finished = time.Now()
	j.exec = nil
	s.canceled.Add(1)
	s.retireLocked(j)
	for i, w := range e.waiters {
		if w == j {
			e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
			break
		}
	}
	if len(e.waiters) == 0 {
		// Last reference dropped: nobody wants this run anymore. A
		// later identical submission starts a fresh execution.
		delete(s.inflight, e.key)
		if e.cancel != nil {
			e.cancel() // running: the worker observes the aborted context
		}
		// Still queued: the worker pops it, sees no waiters, drops it.
	}
	return s.viewLocked(j), true
}

// ResultByKey returns the cached canonical result bytes for a key.
func (s *Service) ResultByKey(key string) ([]byte, bool) {
	return s.cache.get(key, false)
}

// viewLocked snapshots j. Caller holds mu.
func (s *Service) viewLocked(j *job) JobView {
	v := JobView{
		ID:        j.id,
		Key:       j.key,
		Tier:      j.tier,
		State:     j.state,
		CacheHit:  j.cacheHit,
		Error:     j.err,
		CreatedAt: j.created,
	}
	if j.progress != nil {
		v.Rounds = int64(j.progress.Round())
		v.Delivered = j.progress.Delivered()
	}
	v.SetupNs = j.setupNs
	if j.approx != nil {
		// Published when the job entered refining; survives cancel and
		// drain so the submitter keeps the fast answer either way.
		v.Approx = json.RawMessage(j.approx)
	}
	if j.state == StateDone {
		v.Result = json.RawMessage(j.result)
	}
	return v
}

// Metrics snapshots service health.
func (s *Service) Metrics() Metrics {
	hits, misses, entries := s.cache.stats()
	m := Metrics{
		UptimeSec:     time.Since(s.start).Seconds(),
		PoolSize:      s.opts.PoolSize,
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		Running:       int(s.running.Load()),
		Submitted:     s.submitted.Load(),
		Completed:     s.completed.Load(),
		Failed:        s.failed.Load(),
		Canceled:      s.canceled.Load(),
		Coalesced:     s.coalesced.Load(),
		CacheHits:     hits,
		CacheMisses:   misses,
		CacheEntries:  entries,
		RoundsTotal:   s.rounds.Load(),
	}
	if total := hits + misses; total > 0 {
		m.CacheHitRate = float64(hits) / float64(total)
	}
	if busy := s.busyNanos.Load(); busy > 0 {
		m.RoundsPerSec = float64(m.RoundsTotal) / (float64(busy) / 1e9)
	}
	s.mu.Lock()
	for _, e := range s.inflight {
		if e.state == StateRunning || e.state == StateRefining {
			m.LiveRounds += int64(e.progress.Round())
		}
		if e.state == StateRefining {
			m.Refining++
		}
	}
	s.mu.Unlock()
	return m
}

// Shutdown drains the service: no new submissions are accepted, queued
// and running jobs are given until ctx is done to finish, then every
// remaining run is canceled. Always returns after the pool has exited;
// the error is ctx's if the deadline forced cancellation.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.queue) // safe: sends happen only under mu with closed checked
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancelAll()
		return nil
	case <-ctx.Done():
		s.cancelAll()
		<-done
		return ctx.Err()
	}
}

// worker executes queued executions until the queue closes. Each
// worker owns one warm, reusable CONGEST engine: the engine keeps its
// slabs and port tables across jobs, so after the worker's first (cold)
// run every same-scale job skips nearly all engine setup (observable as
// JobView.SetupNs).
func (s *Service) worker() {
	defer s.wg.Done()
	eng := congest.NewEngine(congest.Options{
		Workers:        s.opts.EngineWorkers,
		DeliveryShards: s.opts.DeliveryShards,
		CheckPayload:   s.opts.CheckPayload,
	})
	defer eng.Close()
	for e := range s.queue {
		s.runExec(eng, e)
		// Warm while busy, released when idle: an engine between jobs
		// pins the last job's graph (via its node adjacency slices)
		// until the next full reinit, so when no work is queued the
		// worker returns its slabs to the process-wide pools — the
		// next job re-acquires them without page faults, and an idle
		// pool holds no graph memory.
		if len(s.queue) == 0 {
			eng.Close()
		}
	}
}

// runExec runs one execution end to end and finalizes every job record
// still attached to it.
func (s *Service) runExec(eng *congest.Engine, e *exec) {
	s.mu.Lock()
	if len(e.waiters) == 0 { // every submitter canceled while queued
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	e.state = StateRunning
	e.cancel = cancel
	started := time.Now()
	for _, j := range e.waiters {
		j.state = StateRunning
		j.started = started
	}
	s.mu.Unlock()
	s.running.Add(1)
	defer s.running.Add(-1)
	defer cancel()

	res, setupNs, err := s.executeSafe(ctx, eng, e)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[e.key] == e {
		delete(s.inflight, e.key)
	}
	now := time.Now()
	switch {
	case err == nil:
		if e.tier != TierTiered {
			// Tiered results live under their phase keys only (the
			// execution cached both phases as it produced them); caching
			// the exact bytes under the tiered key too would serve a
			// result whose self-reported key differs from the lookup key.
			s.cache.put(e.key, res)
		}
		s.completed.Add(1)
		s.rounds.Add(int64(e.progress.Round()))
		s.busyNanos.Add(now.Sub(started).Nanoseconds())
		for _, j := range e.waiters {
			j.state = StateDone
			j.result = res
			j.setupNs = setupNs
			j.finished = now
			j.exec = nil
			s.retireLocked(j)
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		for _, j := range e.waiters {
			j.state = StateCanceled
			j.err = err.Error()
			j.finished = now
			j.exec = nil
			s.canceled.Add(1)
			s.retireLocked(j)
		}
	default:
		s.failed.Add(1)
		for _, j := range e.waiters {
			j.state = StateFailed
			j.err = err.Error()
			j.finished = now
			j.exec = nil
			s.retireLocked(j)
		}
	}
	e.waiters = nil
}

// executeSafe is execute behind a panic barrier: the engine converts
// node-program panics to PanicError itself, but a panic anywhere else
// (graph construction on a spec a validation gap let through, result
// encoding) must fail the one job that triggered it, not take down the
// whole process from a worker goroutine.
func (s *Service) executeSafe(ctx context.Context, eng *congest.Engine, e *exec) (res []byte, setupNs int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, setupNs, err = nil, 0, fmt.Errorf("service: job panicked: %v", r)
		}
	}()
	return s.execute(ctx, eng, e)
}

// execute builds the graph and runs the requested tier on the worker's
// warm engine, returning canonical result bytes plus the engine setup
// time of the run (for JobView.SetupNs).
func (s *Service) execute(ctx context.Context, eng *congest.Engine, e *exec) ([]byte, int64, error) {
	// Fast-fail before the (possibly large) graph build: after a
	// deadline-forced shutdown the queue may still hold jobs, and the
	// drain budget must not be spent constructing graphs that would
	// only be canceled at the first round boundary.
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	g, err := Build(e.req.Graph)
	if err != nil {
		return nil, 0, err
	}
	if e.tier == TierTiered {
		return s.executeTiered(ctx, eng, e, g)
	}
	return s.runTier(ctx, eng, e, g, e.tier, e.key)
}

// executeTiered runs the approximation-first flow: the (1+ε) phase is
// computed (or taken from the cache), cached under its own tier key,
// and published to every waiter as state "refining"; then the exact
// phase runs the genuine exact pipeline — never a re-encoding of the
// approx phase, so the bytes cached under the exact tier key are
// byte-identical to a direct exact submission's — and becomes the
// job's final result.
func (s *Service) executeTiered(ctx context.Context, eng *congest.Engine, e *exec, g *graph.Graph) ([]byte, int64, error) {
	var setupNs int64
	approx, ok := s.cache.get(e.approxKey, true)
	if !ok {
		var err error
		var ns int64
		approx, ns, err = s.runTier(ctx, eng, e, g, TierApprox, e.approxKey)
		if err != nil {
			return nil, 0, err
		}
		setupNs += ns
		s.cache.put(e.approxKey, approx)
	}
	s.publishRefining(e, approx)
	exact, ok := s.cache.get(e.exactKey, true)
	if !ok {
		var err error
		var ns int64
		exact, ns, err = s.runTier(ctx, eng, e, g, TierExact, e.exactKey)
		if err != nil {
			return nil, 0, err
		}
		setupNs += ns
		s.cache.put(e.exactKey, exact)
	}
	return exact, setupNs, nil
}

// publishRefining moves a tiered execution into the refining state and
// hands the approximate payload to every attached job record.
func (s *Service) publishRefining(e *exec, approx []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.state = StateRefining
	e.approx = approx
	for _, j := range e.waiters {
		j.state = StateRefining
		j.approx = approx
	}
}

// runTier runs one serving tier's protocol and encodes its canonical
// result bytes under the given key.
func (s *Service) runTier(ctx context.Context, eng *congest.Engine, e *exec, g *graph.Graph, tier, key string) ([]byte, int64, error) {
	opts := &distmincut.Options{
		Seed:           e.req.Seed,
		Epsilon:        e.req.Epsilon,
		Workers:        s.opts.EngineWorkers,
		DeliveryShards: s.opts.DeliveryShards,
		Engine:         eng,
		Progress:       e.progress,
		CheckPayload:   s.opts.CheckPayload,
	}
	if tier == TierBracket {
		br, err := distmincut.BracketMinCutContext(ctx, g, opts)
		if err != nil {
			return nil, 0, err
		}
		data, err := encodeBracket(key, g.N(), g.M(), br)
		if err != nil {
			return nil, 0, err
		}
		return data, br.Stats.SetupNanos, nil
	}
	var res *distmincut.Result
	var err error
	switch tier {
	case TierExact:
		res, err = distmincut.MinCutContext(ctx, g, opts)
	case TierApprox:
		res, err = distmincut.ApproxMinCutContext(ctx, g, opts)
	case TierRespect:
		res, _, err = distmincut.OneRespectingCutContext(ctx, g, opts)
	default:
		return nil, 0, bad("unknown tier %q", tier)
	}
	if err != nil {
		return nil, 0, err
	}
	data, err := encodeResult(key, tier, g.N(), g.M(), res)
	if err != nil {
		return nil, 0, err
	}
	return data, res.Stats.SetupNanos, nil
}

// sideBits packs a side assignment into the canonical base64 bitset.
func sideBits(side []bool) (string, int) {
	bits := make([]byte, (len(side)+7)/8)
	sideIn := 0
	for i, in := range side {
		if in {
			bits[i/8] |= 1 << (i % 8)
			sideIn++
		}
	}
	return base64.StdEncoding.EncodeToString(bits), sideIn
}

// encodeResult renders the canonical result bytes for the cache. The
// tier doubles as the legacy mode field.
func encodeResult(key, tier string, n, m int, res *distmincut.Result) ([]byte, error) {
	side, sideIn := sideBits(res.Side)
	out := Result{
		Key:         key,
		Mode:        tier,
		Tier:        tier,
		N:           n,
		M:           m,
		Value:       res.Value,
		Exact:       res.Exact,
		BestNode:    int64(res.BestNode),
		TreesPacked: res.TreesPacked,
		Levels:      res.Levels,
		Rounds:      res.Rounds,
		Messages:    res.Messages,
		SideIn:      sideIn,
		Side:        side,
	}
	return json.Marshal(&out)
}

// encodeBracket renders the bracket tier's canonical result bytes: the
// certified witness cut (the minimum weighted degree singleton) as the
// value/side, plus the [lo, hi] bracket on λ and the first disconnected
// sampling level.
func encodeBracket(key string, n, m int, br *distmincut.BracketResult) ([]byte, error) {
	side, sideIn := sideBits(br.Side)
	out := Result{
		Key:      key,
		Mode:     TierBracket,
		Tier:     TierBracket,
		N:        n,
		M:        m,
		Value:    br.Value,
		Lo:       br.Lo,
		Hi:       br.Hi,
		BestNode: int64(br.BestNode),
		Levels:   br.Level,
		Rounds:   br.Rounds,
		Messages: br.Messages,
		SideIn:   sideIn,
		Side:     side,
	}
	return json.Marshal(&out)
}
