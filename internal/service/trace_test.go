package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// chromeJSON mirrors the rendered trace shape for assertions.
type chromeJSON struct {
	TraceEvents []chromeJSONEvent `json:"traceEvents"`
	DisplayUnit string            `json:"displayTimeUnit"`
}

type chromeJSONEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// parseTrace fetches and decodes a job's trace.
func parseTrace(t *testing.T, s *Service, id string) chromeJSON {
	t.Helper()
	data, ok := s.Trace(id)
	if !ok {
		t.Fatalf("no trace for job %s", id)
	}
	var ct chromeJSON
	if err := json.Unmarshal(data, &ct); err != nil {
		t.Fatalf("trace for %s is not valid JSON: %v", id, err)
	}
	return ct
}

// eventByName returns the first non-metadata event with the name.
func eventByName(ct chromeJSON, name string) (chromeJSONEvent, bool) {
	for _, e := range ct.TraceEvents {
		if e.Ph != "M" && e.Name == name {
			return e, true
		}
	}
	return chromeJSONEvent{}, false
}

func tierReq(tier string, seed int64) JobRequest {
	return JobRequest{
		Graph: GraphSpec{Family: "planted", N1: 16, N2: 16, K: 2, InP: 0.5, Seed: seed},
		Tier:  tier,
	}
}

// TestTraceAllTiersCoverRunningTime: every serving tier's finished job
// yields a Chrome trace whose lifecycle events bracket phase spans
// covering at least 95% of the job's running wall time, with protocol
// phase spans nested inside their run:<tier> umbrella.
func TestTraceAllTiersCoverRunningTime(t *testing.T) {
	for _, tier := range []string{TierBracket, TierApprox, TierExact, TierRespect, TierTiered} {
		t.Run(tier, func(t *testing.T) {
			s := New(Options{PoolSize: 2})
			defer shutdown(t, s)
			v, err := s.Submit(tierReq(tier, 3))
			if err != nil {
				t.Fatal(err)
			}
			waitState(t, s, v.ID, StateDone, 2*time.Minute)
			ct := parseTrace(t, s, v.ID)

			started, ok := eventByName(ct, "started")
			if !ok {
				t.Fatal("no started lifecycle event")
			}
			done, ok := eventByName(ct, "done")
			if !ok {
				t.Fatal("no done lifecycle event")
			}
			queued, ok := eventByName(ct, "queued")
			if !ok || queued.Ts > started.Ts {
				t.Fatalf("queued event missing or after started (ok=%v)", ok)
			}
			running := done.Ts - started.Ts
			if running <= 0 {
				t.Fatalf("non-positive running time %v", running)
			}

			// The build span plus the run:<tier> umbrellas are the
			// top-level phase coverage; they are disjoint by
			// construction (sequential on the worker).
			covered := 0.0
			runs := 0
			for _, e := range ct.TraceEvents {
				if e.Cat != "phase" {
					continue
				}
				if e.Name == "build" || strings.HasPrefix(e.Name, "run:") {
					covered += e.Dur
				}
				if strings.HasPrefix(e.Name, "run:") {
					runs++
				}
			}
			if runs == 0 {
				t.Fatal("no run:<tier> phase span")
			}
			if wantRuns := 1; tier == TierTiered {
				wantRuns = 2 // approx then exact
				if runs != wantRuns {
					t.Fatalf("tiered job has %d run spans, want 2", runs)
				}
			}
			if frac := covered / running; frac < 0.95 {
				t.Fatalf("phase spans cover %.1f%% of running time, want >= 95%%", 100*frac)
			}

			// Protocol phases (anything beyond build/run/setup) made it in.
			proto := 0
			for _, e := range ct.TraceEvents {
				if e.Cat == "phase" && e.Name != "build" && e.Name != "setup" && !strings.HasPrefix(e.Name, "run:") {
					proto++
				}
			}
			if proto == 0 {
				t.Fatal("no protocol phase spans in trace")
			}
		})
	}
}

// TestTracePhaseSpansNestInsideRuns: every protocol span lies inside
// one of the run:<tier> umbrellas.
func TestTracePhaseSpansNestInsideRuns(t *testing.T) {
	s := New(Options{PoolSize: 2})
	defer shutdown(t, s)
	v, err := s.Submit(tierReq(TierExact, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v.ID, StateDone, 2*time.Minute)
	ct := parseTrace(t, s, v.ID)
	var runs []chromeJSONEvent
	for _, e := range ct.TraceEvents {
		if e.Cat == "phase" && strings.HasPrefix(e.Name, "run:") {
			runs = append(runs, e)
		}
	}
	if len(runs) == 0 {
		t.Fatal("no run umbrellas")
	}
	for _, p := range ct.TraceEvents {
		if p.Cat != "phase" || p.Name == "build" || strings.HasPrefix(p.Name, "run:") {
			continue
		}
		inside := false
		for _, r := range runs {
			// 5µs slack: the umbrella is stamped before the engine
			// clock that anchors the nested spans.
			if p.Ts >= r.Ts-5 && p.Ts+p.Dur <= r.Ts+r.Dur+5 {
				inside = true
				break
			}
		}
		if !inside {
			t.Errorf("phase span %s [%f, %f] outside every run umbrella", p.Name, p.Ts, p.Ts+p.Dur)
		}
	}
}

// TestTraceDeadlineEndsWithFlightTail: a job killed by its round
// budget renders a trace whose terminal deadline event is followed by
// the flight recorder's last rounds — and by nothing else.
func TestTraceDeadlineEndsWithFlightTail(t *testing.T) {
	s := New(Options{PoolSize: 2, MaxJobRounds: 60, FlightRounds: 16})
	defer shutdown(t, s)
	v, err := s.Submit(tierReq(TierExact, 7))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v.ID, StateDeadline, 2*time.Minute)
	ct := parseTrace(t, s, v.ID)
	evs := ct.TraceEvents
	if len(evs) == 0 {
		t.Fatal("empty trace")
	}
	last := evs[len(evs)-1]
	if last.Cat != "round" {
		t.Fatalf("trace ends with %s/%s, want a round event", last.Cat, last.Name)
	}
	rounds := 0
	sawDeadline := false
	for _, e := range evs {
		if e.Cat == "round" {
			rounds++
			if !sawDeadline {
				t.Fatal("round tail appears before the terminal deadline event")
			}
		}
		if e.Name == "deadline" && e.Cat == "lifecycle" {
			sawDeadline = true
		}
	}
	if !sawDeadline {
		t.Fatal("no terminal deadline event")
	}
	if rounds == 0 || rounds > 16 {
		t.Fatalf("flight tail has %d rounds, want 1..16", rounds)
	}
	// Tail rounds are consecutive and end at the abort round.
	prev := -1.0
	for _, e := range evs {
		if e.Cat != "round" {
			continue
		}
		r, ok := e.Args["round"].(float64)
		if !ok {
			t.Fatalf("round event without numeric round arg: %v", e.Args)
		}
		if prev >= 0 && r != prev+1 {
			t.Fatalf("tail rounds not consecutive: %v after %v", r, prev)
		}
		prev = r
	}
}

// TestTraceDisabledFlightRecorder: negative FlightRounds turns the
// recorder off; a deadline trace then carries no round tail but stays
// well-formed.
func TestTraceDisabledFlightRecorder(t *testing.T) {
	s := New(Options{PoolSize: 2, MaxJobRounds: 60, FlightRounds: -1})
	defer shutdown(t, s)
	v, err := s.Submit(tierReq(TierExact, 7))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v.ID, StateDeadline, 2*time.Minute)
	ct := parseTrace(t, s, v.ID)
	for _, e := range ct.TraceEvents {
		if e.Cat == "round" {
			t.Fatal("round events present with the recorder disabled")
		}
	}
	if _, ok := eventByName(ct, "deadline"); !ok {
		t.Fatal("no terminal deadline event")
	}
}

// TestTraceCacheHit: a cache-served job still gets a coherent (if
// short) timeline.
func TestTraceCacheHit(t *testing.T) {
	s := New(Options{PoolSize: 2})
	defer shutdown(t, s)
	v1, err := s.Submit(tierReq(TierApprox, 9))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v1.ID, StateDone, 2*time.Minute)
	v2, err := s.Submit(tierReq(TierApprox, 9))
	if err != nil {
		t.Fatal(err)
	}
	if !v2.CacheHit {
		t.Fatal("second submission was not a cache hit")
	}
	ct := parseTrace(t, s, v2.ID)
	done, ok := eventByName(ct, "done")
	if !ok {
		t.Fatal("cache-hit trace has no done event")
	}
	if hit, _ := done.Args["cache_hit"].(bool); !hit {
		t.Fatalf("done event args %v lack cache_hit", done.Args)
	}
}

// TestTraceUnknownJob: unknown IDs report false.
func TestTraceUnknownJob(t *testing.T) {
	s := New(Options{PoolSize: 2})
	defer shutdown(t, s)
	if _, ok := s.Trace("nope"); ok {
		t.Fatal("trace for unknown job")
	}
}

// TestTraceHTTPEndpoint: the route serves the trace with the right
// content type and 404s unknown jobs; /healthz carries build identity.
func TestTraceHTTPEndpoint(t *testing.T) {
	s := New(Options{PoolSize: 2})
	defer shutdown(t, s)
	ts := httptest.NewServer(NewAPI(s).Handler())
	defer ts.Close()

	v, err := s.Submit(tierReq(TierBracket, 11))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v.ID, StateDone, 2*time.Minute)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	if ctype := resp.Header.Get("Content-Type"); ctype != "application/json" {
		t.Fatalf("trace content type %q", ctype)
	}
	var ct chromeJSON
	if err := json.NewDecoder(resp.Body).Decode(&ct); err != nil {
		t.Fatal(err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("empty traceEvents over HTTP")
	}

	resp404, err := http.Get(ts.URL + "/v1/jobs/zzz/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown-job trace status %d, want 404", resp404.StatusCode)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"status", "version", "commit", "go"} {
		if s, _ := health[k].(string); s == "" {
			t.Errorf("healthz missing %q: %v", k, health)
		}
	}
	if ready, ok := health["ready"].(bool); !ok || !ready {
		t.Errorf("healthz ready = %v, want true on an idle server", health["ready"])
	}
}

// TestMetricsCarryPhaseAndLatency: completed runs populate the phase
// counters and per-tier latency histograms, and the Prometheus
// rendering exposes them with well-formed histogram series.
func TestMetricsCarryPhaseAndLatency(t *testing.T) {
	s := New(Options{PoolSize: 2})
	defer shutdown(t, s)
	v, err := s.Submit(tierReq(TierExact, 13))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v.ID, StateDone, 2*time.Minute)

	m := s.Metrics()
	if m.PhaseRounds["mst"] == 0 || m.PhaseRounds["respect"] == 0 {
		t.Fatalf("phase rounds missing mst/respect: %v", m.PhaseRounds)
	}
	if m.PhaseMessages["mst"] == 0 {
		t.Fatalf("phase messages missing mst: %v", m.PhaseMessages)
	}
	h, ok := m.TierLatency[TierExact]
	if !ok || h.Count == 0 {
		t.Fatalf("exact-tier latency histogram empty: %+v", h)
	}
	if len(h.Counts) != len(h.Bounds)+1 {
		t.Fatalf("histogram has %d counts for %d bounds", len(h.Counts), len(h.Bounds))
	}
	var total int64
	for _, c := range h.Counts {
		total += c
	}
	if total != h.Count {
		t.Fatalf("bucket counts sum to %d, count %d", total, h.Count)
	}
	if m.Build.GoVersion == "" {
		t.Fatal("metrics build info empty")
	}

	var b strings.Builder
	if err := WritePrometheus(&b, m); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE mincutd_job_duration_seconds histogram",
		`mincutd_job_duration_seconds_bucket{tier="exact",le="+Inf"}`,
		`mincutd_job_duration_seconds_count{tier="exact"}`,
		`mincutd_job_duration_seconds_sum{tier="exact"}`,
		`mincutd_phase_rounds_total{phase="mst"}`,
		`mincutd_phase_messages_total{phase="respect"}`,
		"# TYPE mincutd_build_info gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}
