package service

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// bigExactReq is an exact job slow enough on one worker that tests can
// reliably interrupt it mid-protocol.
func bigExactReq(seed int64) JobRequest {
	return JobRequest{
		Graph: GraphSpec{Family: "planted", N1: 128, N2: 128, K: 3, InP: 0.2, Seed: seed},
		Mode:  "exact",
	}
}

func waitRunning(t *testing.T, s *Service, id string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		v, _ := s.Job(id)
		if v.State == StateRunning && v.Rounds > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never showed progress (state %s)", v.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestDeadlineExpiresRunningJob(t *testing.T) {
	s := New(Options{PoolSize: 1})
	defer shutdown(t, s)
	req := bigExactReq(11)
	req.DeadlineMS = 60
	v, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, v.ID, StateDeadline, 2*time.Minute)
	if final.Error == "" {
		t.Fatal("deadline outcome carries no error")
	}
	if final.Rounds <= 0 {
		t.Fatalf("partial progress lost: rounds = %d", final.Rounds)
	}
	if final.RetryAfterMS != 120 {
		t.Fatalf("retry_after_ms = %d, want 120 (2x budget)", final.RetryAfterMS)
	}
	if m := s.Metrics(); m.Deadlined != 1 || m.Canceled != 0 || m.Failed != 0 {
		t.Fatalf("deadlined/canceled/failed = %d/%d/%d, want 1/0/0", m.Deadlined, m.Canceled, m.Failed)
	}
	// The worker survives a deadline kill and serves the next job.
	next, err := s.Submit(cycleReq(64))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, next.ID, StateDone, 2*time.Minute)
}

func TestDefaultDeadlineApplies(t *testing.T) {
	s := New(Options{PoolSize: 1, DefaultDeadline: 60 * time.Millisecond})
	defer shutdown(t, s)
	v, err := s.Submit(bigExactReq(12))
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, v.ID, StateDeadline, 2*time.Minute)
	if final.RetryAfterMS != 120 {
		t.Fatalf("retry_after_ms = %d, want 120", final.RetryAfterMS)
	}
}

func TestMaxJobRoundsBudget(t *testing.T) {
	s := New(Options{PoolSize: 1, MaxJobRounds: 10})
	defer shutdown(t, s)
	v, err := s.Submit(cycleReq(64)) // respect on a 64-cycle needs far more than 10 rounds
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, v.ID, StateDeadline, 2*time.Minute)
	if final.RetryAfterMS != 1000 {
		t.Fatalf("retry_after_ms = %d, want flat 1000 hint without a wall clock", final.RetryAfterMS)
	}
	if m := s.Metrics(); m.Deadlined != 1 {
		t.Fatalf("deadlined = %d, want 1", m.Deadlined)
	}
}

// A deadline that expires while the job is still queued kills it at the
// worker's fast-fail check, before any graph is built.
func TestQueuedJobDeadlineExpires(t *testing.T) {
	s := New(Options{PoolSize: 1})
	defer shutdown(t, s)
	big, err := s.Submit(bigExactReq(13))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, big.ID)
	queued := cycleReq(64)
	queued.DeadlineMS = 30
	q, err := s.Submit(queued)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the queued job's budget lapse
	if _, ok := s.Cancel(big.ID); !ok {
		t.Fatal("cancel returned unknown job")
	}
	waitState(t, s, q.ID, StateDeadline, 2*time.Minute)
}

// The deadline changes when an answer is abandoned, never which answer
// is computed: it must not split the cache key.
func TestDeadlineDoesNotSplitCache(t *testing.T) {
	a := cycleReq(64)
	b := cycleReq(64)
	b.DeadlineMS = 5000
	_, keyA, err := CanonicalRequest(a, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	_, keyB, err := CanonicalRequest(b, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if keyA != keyB {
		t.Fatalf("deadline_ms split the cache: %s != %s", keyA, keyB)
	}

	s := New(Options{PoolSize: 1})
	defer shutdown(t, s)
	v, err := s.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v.ID, StateDone, 2*time.Minute)
	hit, err := s.Submit(b)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit || hit.State != StateDone {
		t.Fatalf("deadline-bearing resubmission missed the cache: %+v", hit)
	}
}

func TestNegativeDeadlineRejected(t *testing.T) {
	s := New(Options{PoolSize: 1})
	defer shutdown(t, s)
	req := cycleReq(64)
	req.DeadlineMS = -1
	if _, err := s.Submit(req); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("negative deadline: %v, want ErrBadSpec", err)
	}
}

func TestAdmissionRejectsExpensiveExact(t *testing.T) {
	s := New(Options{PoolSize: 1, Admission: AdmissionOptions{CeilingRounds: 1}})
	defer shutdown(t, s)
	req := plantedReq(21)
	_, err := s.Submit(req)
	var adm *AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("submit = %v, want AdmissionError", err)
	}
	est := adm.Est
	if est.LambdaLo < 1 || est.LambdaHi < est.LambdaLo || est.BracketRounds <= 0 {
		t.Fatalf("nonsense estimate: %+v", est)
	}
	if est.EstRounds <= est.Ceiling || est.Ceiling != 1 || est.HintTier != TierApprox {
		t.Fatalf("estimate not over ceiling: %+v", est)
	}
	if m := s.Metrics(); m.AdmissionChecks != 1 || m.AdmissionRejected != 1 || m.Submitted != 0 {
		t.Fatalf("checks/rejected/submitted = %d/%d/%d, want 1/1/0",
			m.AdmissionChecks, m.AdmissionRejected, m.Submitted)
	}

	// The pre-pass cached its bracket under the bracket tier key: the
	// hinted cheap retry — and any direct bracket submission — is a hit.
	br := req
	br.Mode = ""
	br.Tier = TierBracket
	hit, err := s.Submit(br)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit || hit.State != StateDone {
		t.Fatalf("bracket after rejection not cache-served: %+v", hit)
	}
}

func TestAdmissionDowntiersWhenConfigured(t *testing.T) {
	s := New(Options{PoolSize: 1, Admission: AdmissionOptions{CeilingRounds: 1, Downtier: true}})
	defer shutdown(t, s)
	v, err := s.Submit(plantedReq(22))
	if err != nil {
		t.Fatal(err)
	}
	if v.Tier != TierApprox || v.DegradedFrom != TierExact {
		t.Fatalf("tier/degraded_from = %s/%s, want approx/exact", v.Tier, v.DegradedFrom)
	}
	final := waitState(t, s, v.ID, StateDone, 2*time.Minute)
	if final.DegradedFrom != TierExact {
		t.Fatalf("degraded_from lost on completion: %+v", final)
	}
	if m := s.Metrics(); m.AdmissionDowntiered != 1 || m.AdmissionRejected != 0 {
		t.Fatalf("downtiered/rejected = %d/%d, want 1/0", m.AdmissionDowntiered, m.AdmissionRejected)
	}
}

func TestAdmissionAdmitsCheapRequests(t *testing.T) {
	s := New(Options{PoolSize: 1, Admission: AdmissionOptions{CeilingRounds: 1 << 40}})
	defer shutdown(t, s)
	v, err := s.Submit(plantedReq(23))
	if err != nil {
		t.Fatal(err)
	}
	if v.DegradedFrom != "" {
		t.Fatalf("admitted job marked degraded: %+v", v)
	}
	waitState(t, s, v.ID, StateDone, 2*time.Minute)
	if m := s.Metrics(); m.AdmissionChecks != 1 || m.AdmissionRejected != 0 || m.AdmissionDowntiered != 0 {
		t.Fatalf("checks/rejected/downtiered = %d/%d/%d, want 1/0/0",
			m.AdmissionChecks, m.AdmissionRejected, m.AdmissionDowntiered)
	}
}

// Exact/tiered admission prices against the bracket result cached by
// earlier bracket traffic (byte-identical keys), so the pre-pass is
// free when the bracket already ran.
func TestAdmissionUsesCachedBracket(t *testing.T) {
	s := New(Options{PoolSize: 1, Admission: AdmissionOptions{CeilingRounds: 1}})
	defer shutdown(t, s)
	br := plantedReq(24)
	br.Mode = ""
	br.Tier = TierBracket
	v, err := s.Submit(br)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v.ID, StateDone, 2*time.Minute)
	var adm *AdmissionError
	if _, err := s.Submit(plantedReq(24)); !errors.As(err, &adm) {
		t.Fatalf("submit = %v, want AdmissionError from cached bracket", err)
	}
	if m := s.Metrics(); m.AdmissionChecks != 1 {
		t.Fatalf("admission checks = %d, want 1", m.AdmissionChecks)
	}
}

func TestDegradeUnderQueuePressure(t *testing.T) {
	s := New(Options{PoolSize: 1, QueueDepth: 4, Degrade: DegradeOptions{ApproxAt: 0.25}})
	defer shutdown(t, s)
	running, err := s.Submit(bigExactReq(31))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, running.ID)
	queued, err := s.Submit(bigExactReq(32)) // occupies 1/4 of the queue
	if err != nil {
		t.Fatal(err)
	}
	// Pressure ≥ ApproxAt: a fresh exact submission is served at approx.
	v, err := s.Submit(plantedReq(33))
	if err != nil {
		t.Fatal(err)
	}
	if v.Tier != TierApprox || v.DegradedFrom != TierExact {
		t.Fatalf("tier/degraded_from = %s/%s, want approx/exact", v.Tier, v.DegradedFrom)
	}
	// The respect tier is diagnostics, never degraded.
	r, err := s.Submit(cycleReq(64))
	if err != nil {
		t.Fatal(err)
	}
	if r.Tier != TierRespect || r.DegradedFrom != "" {
		t.Fatalf("respect degraded: %+v", r)
	}
	if m := s.Metrics(); m.Degraded != 1 {
		t.Fatalf("degraded = %d, want 1", m.Degraded)
	}
	s.Cancel(running.ID)
	s.Cancel(queued.ID)
	waitState(t, s, v.ID, StateDone, 2*time.Minute)
}

func TestShedCounterCountsBusyRejections(t *testing.T) {
	s := New(Options{PoolSize: 1, QueueDepth: 1})
	defer shutdown(t, s)
	running, err := s.Submit(bigExactReq(41))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, running.ID)
	if _, err := s.Submit(bigExactReq(42)); err != nil { // fills the queue
		t.Fatal(err)
	}
	if _, err := s.Submit(bigExactReq(43)); !errors.Is(err, ErrBusy) {
		t.Fatalf("submit on full queue: %v, want ErrBusy", err)
	}
	if m := s.Metrics(); m.Shed != 1 {
		t.Fatalf("shed = %d, want 1", m.Shed)
	}
	s.Cancel(running.ID)
}

// A tiered job whose deadline lapses while queued during a drain still
// publishes its cached approx phase — the same fast-answer guarantee a
// cancel mid-refinement gives — and never stalls the drain.
func TestDrainDeadlinePublishesCachedApprox(t *testing.T) {
	s := New(Options{PoolSize: 1})
	spec := GraphSpec{Family: "planted", N1: 16, N2: 16, K: 2, InP: 0.5, Seed: 51}

	// Seed the approx cache for the spec.
	warm, err := s.Submit(JobRequest{Graph: spec, Tier: TierApprox})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, warm.ID, StateDone, 2*time.Minute)

	// Occupy the single worker with a short-deadline slow job, then
	// queue the tiered job with a deadline that lapses in the queue.
	big := bigExactReq(52)
	big.DeadlineMS = 300
	b, err := s.Submit(big)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, b.ID)
	tiered, err := s.Submit(JobRequest{Graph: spec, Tier: TierTiered, DeadlineMS: 50})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if took := time.Since(start); took > time.Minute {
		t.Fatalf("drain stalled %v on deadline-bearing jobs", took)
	}
	bv, _ := s.Job(b.ID)
	if bv.State != StateDeadline {
		t.Fatalf("slow job state %s, want deadline", bv.State)
	}
	tv, _ := s.Job(tiered.ID)
	if tv.State != StateDeadline {
		t.Fatalf("tiered job state %s, want deadline", tv.State)
	}
	if len(tv.Approx) == 0 {
		t.Fatal("deadline during drain dropped the cached approx phase")
	}
	if tv.RetryAfterMS != 100 {
		t.Fatalf("retry_after_ms = %d, want 100", tv.RetryAfterMS)
	}
	// The published payload is the cached approx bytes, verbatim.
	if approx, ok := s.ResultByKey(mustTierKey(t, spec, TierApprox)); !ok || !bytes.Equal(approx, tv.Approx) {
		t.Fatal("published approx differs from the cached approx phase")
	}
}

func mustTierKey(t *testing.T, spec GraphSpec, tier string) string {
	t.Helper()
	canon, _, err := CanonicalRequest(JobRequest{Graph: spec, Tier: tier}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	key, err := TierKey(canon, tier, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	return key
}
