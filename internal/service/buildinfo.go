package service

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: module version, VCS commit,
// and Go toolchain. It appears in /healthz, in the -version output of
// the commands, and as the mincutd_build_info metric, so a scrape or a
// health probe always says exactly what is deployed.
type BuildInfo struct {
	// Version is the main module version ("(devel)" for a plain
	// `go build` outside a tagged module download).
	Version string `json:"version"`
	// Commit is the VCS revision the binary was built from, shortened
	// to 12 hex digits, with a "+dirty" suffix when the working tree
	// had local modifications. "unknown" when the build carried no VCS
	// stamp (e.g. `go test` binaries).
	Commit string `json:"commit"`
	// GoVersion is the Go toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

var buildOnce = sync.OnceValue(func() BuildInfo {
	b := BuildInfo{Version: "(devel)", Commit: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if bi.Main.Version != "" {
		b.Version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		b.GoVersion = bi.GoVersion
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "+dirty"
		}
		b.Commit = rev
	}
	return b
})

// ReadBuild reports the binary's build identity via
// debug.ReadBuildInfo. The result is computed once and cached; it never
// fails (missing build info degrades to "unknown"/"(devel)" fields).
func ReadBuild() BuildInfo { return buildOnce() }
