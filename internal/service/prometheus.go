package service

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promMetric is one exposition line group: name, type, help, value.
type promMetric struct {
	name  string
	typ   string // "gauge" or "counter"
	help  string
	value string
}

func f64(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
func i64(v int64) string   { return strconv.FormatInt(v, 10) }

// WritePrometheus renders a Metrics snapshot in the Prometheus text
// exposition format (version 0.0.4). Counters keep the conventional
// _total suffix; the JSON field names remain available verbatim at
// /metrics?format=json. Every overload outcome is a first-class
// series: jobs_deadline_total, jobs_degraded_total, jobs_shed_total,
// and the three admission decision counters.
func WritePrometheus(w io.Writer, m Metrics) error {
	ms := []promMetric{
		{"mincutd_uptime_seconds", "gauge", "Seconds since the service started.", f64(m.UptimeSec)},
		{"mincutd_pool_size", "gauge", "Worker pool size.", i64(int64(m.PoolSize))},
		{"mincutd_queue_depth", "gauge", "Jobs accepted but not yet running.", i64(int64(m.QueueDepth))},
		{"mincutd_queue_capacity", "gauge", "Queue capacity (submissions beyond it are shed).", i64(int64(m.QueueCapacity))},
		{"mincutd_jobs_running", "gauge", "Executions currently running a protocol.", i64(int64(m.Running))},
		{"mincutd_jobs_refining", "gauge", "Tiered executions refining past a published approx answer.", i64(int64(m.Refining))},
		{"mincutd_jobs_submitted_total", "counter", "Accepted submissions (bad specs and shed requests excluded).", i64(m.Submitted)},
		{"mincutd_jobs_completed_total", "counter", "Executions finished with a result.", i64(m.Completed)},
		{"mincutd_jobs_failed_total", "counter", "Executions finished with an error.", i64(m.Failed)},
		{"mincutd_jobs_canceled_total", "counter", "Job records canceled by request or drain.", i64(m.Canceled)},
		{"mincutd_jobs_deadline_total", "counter", "Job records killed by wall-clock deadline or round budget.", i64(m.Deadlined)},
		{"mincutd_jobs_degraded_total", "counter", "Submissions served below their requested tier by queue pressure.", i64(m.Degraded)},
		{"mincutd_jobs_shed_total", "counter", "Submissions turned away on a full queue (HTTP 503).", i64(m.Shed)},
		{"mincutd_jobs_coalesced_total", "counter", "Submissions coalesced onto an in-flight execution.", i64(m.Coalesced)},
		{"mincutd_admission_checks_total", "counter", "Bracket pre-passes run (or cache-served) for admission control.", i64(m.AdmissionChecks)},
		{"mincutd_admission_rejected_total", "counter", "Submissions rejected over the admission ceiling (HTTP 429).", i64(m.AdmissionRejected)},
		{"mincutd_admission_downtiered_total", "counter", "Over-ceiling submissions served at the approx tier instead.", i64(m.AdmissionDowntiered)},
		{"mincutd_cache_hits_total", "counter", "Result-cache hits.", i64(m.CacheHits)},
		{"mincutd_cache_misses_total", "counter", "Result-cache misses.", i64(m.CacheMisses)},
		{"mincutd_cache_hit_ratio", "gauge", "Cache hits over lookups since start.", f64(m.CacheHitRate)},
		{"mincutd_cache_entries", "gauge", "Entries resident in the result cache.", i64(int64(m.CacheEntries))},
		{"mincutd_rounds_total", "counter", "CONGEST rounds simulated by completed executions.", i64(m.RoundsTotal)},
		{"mincutd_rounds_per_second", "gauge", "Completed rounds over cumulative pool busy time.", f64(m.RoundsPerSec)},
		{"mincutd_live_rounds", "gauge", "Current round gauges of running executions, summed.", i64(m.LiveRounds)},
	}
	var b strings.Builder
	for _, pm := range ms {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", pm.name, pm.help, pm.name, pm.typ, pm.name, pm.value)
	}
	writeBuildInfo(&b, m.Build)
	writePhaseCounters(&b, "mincutd_phase_rounds_total",
		"CONGEST rounds spent per protocol phase group across completed runs.", m.PhaseRounds)
	writePhaseCounters(&b, "mincutd_phase_messages_total",
		"Messages delivered per protocol phase group across completed runs.", m.PhaseMessages)
	writeHistograms(&b, m.TierLatency)
	_, err := io.WriteString(w, b.String())
	return err
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// writeBuildInfo renders the conventional build-identity gauge: a
// constant 1 whose labels carry the version, commit, and toolchain.
func writeBuildInfo(b *strings.Builder, bi BuildInfo) {
	const name = "mincutd_build_info"
	fmt.Fprintf(b, "# HELP %s Build identity of the running binary (constant 1).\n# TYPE %s gauge\n", name, name)
	fmt.Fprintf(b, "%s{version=%q,commit=%q,goversion=%q} 1\n",
		name, escapeLabel(bi.Version), escapeLabel(bi.Commit), escapeLabel(bi.GoVersion))
}

// writePhaseCounters renders one phase-labeled counter family in
// sorted label order (the exposition format forbids interleaving
// families, and sorted keys keep scrapes diffable).
func writePhaseCounters(b *strings.Builder, name, help string, vals map[string]int64) {
	if len(vals) == 0 {
		return
	}
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%s{phase=%q} %s\n", name, escapeLabel(k), i64(vals[k]))
	}
}

// writeHistograms renders the per-tier job-latency histogram family:
// cumulative le-labeled buckets (with the mandatory +Inf), _sum and
// _count per tier, tiers in sorted order.
func writeHistograms(b *strings.Builder, tiers map[string]HistogramSnapshot) {
	if len(tiers) == 0 {
		return
	}
	const name = "mincutd_job_duration_seconds"
	fmt.Fprintf(b, "# HELP %s Job latency from submission to done, per serving tier (cache hits included).\n# TYPE %s histogram\n", name, name)
	keys := make([]string, 0, len(tiers))
	for k := range tiers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, tier := range keys {
		h := tiers[tier]
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(b, "%s_bucket{tier=%q,le=%q} %s\n", name, escapeLabel(tier), f64(bound), i64(cum))
		}
		cum += h.Counts[len(h.Bounds)]
		fmt.Fprintf(b, "%s_bucket{tier=%q,le=\"+Inf\"} %s\n", name, escapeLabel(tier), i64(cum))
		fmt.Fprintf(b, "%s_sum{tier=%q} %s\n", name, escapeLabel(tier), f64(h.SumSeconds))
		fmt.Fprintf(b, "%s_count{tier=%q} %s\n", name, escapeLabel(tier), i64(h.Count))
	}
}
