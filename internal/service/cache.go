package service

import (
	"container/list"
	"sync"
)

// cache is a bounded, content-addressed LRU mapping canonical request
// keys to canonical result bytes. Entries are immutable: a key derived
// from a deterministic computation has exactly one valid value, so
// eviction is the only form of invalidation.
type cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	hits    int64
	misses  int64
}

type cacheEntry struct {
	key string
	val []byte
}

func newCache(maxEntries int) *cache {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	return &cache{
		max:     maxEntries,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// get returns the cached bytes for key. count selects whether the
// lookup moves the hit/miss counters — the submit path counts (it is
// the cache-effectiveness signal), raw result fetches do not.
func (c *cache) get(key string, count bool) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if ok {
		c.order.MoveToFront(el)
	}
	if count {
		if ok {
			c.hits++
		} else {
			c.misses++
		}
	}
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).val, true
}

func (c *cache) put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el) // immutable value; refresh recency only
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

func (c *cache) stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}
