package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// tieredReq is a tiered job whose exact phase is slow enough (complete
// graph, λ = n-1, hundreds of packed trees across the doubling guesses)
// that polling reliably observes the refining state, while the loose
// ε = 0.9 approx phase caps its packing at a small κ and finishes fast.
func tieredReq() JobRequest {
	return JobRequest{
		Graph:   GraphSpec{Family: "complete", N: 20},
		Tier:    TierTiered,
		Epsilon: 0.9,
		Seed:    7,
	}
}

// waitRefining polls until the job publishes its approximate payload
// (state refining) and returns that view.
func waitRefining(t *testing.T, s *Service, id string, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if v.State == StateRefining {
			return v
		}
		if v.State != StateQueued && v.State != StateRunning {
			t.Fatalf("job %s reached %s (error %q) without refining", id, v.State, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, refining never observed", id, v.State)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTieredJobRefinesToExact is the acceptance test for
// approximation-first serving: a tiered job publishes its approximate
// answer (state refining) before exact certification finishes, refines
// to a certified exact result, and leaves both phases cached under the
// keys direct submissions at those tiers would use.
func TestTieredJobRefinesToExact(t *testing.T) {
	s := New(Options{PoolSize: 2})
	defer shutdown(t, s)

	v, err := s.Submit(tieredReq())
	if err != nil {
		t.Fatal(err)
	}
	if v.Tier != TierTiered {
		t.Fatalf("tier = %q, want %q", v.Tier, TierTiered)
	}

	// The approximate answer must be observable before the job is done.
	ref := waitRefining(t, s, v.ID, time.Minute)
	if ref.Approx == nil {
		t.Fatal("refining view has no approx payload")
	}
	if ref.Result != nil {
		t.Fatal("refining view already has a final result")
	}
	var approx Result
	if err := json.Unmarshal(ref.Approx, &approx); err != nil {
		t.Fatalf("approx payload: %v", err)
	}
	if approx.Tier != TierApprox {
		t.Fatalf("approx payload tier = %q, want %q", approx.Tier, TierApprox)
	}
	if approx.Value < 19 { // λ = n-1 on the complete graph; any cut weighs ≥ λ
		t.Fatalf("approx value %d below λ = 19", approx.Value)
	}

	done := waitState(t, s, v.ID, StateDone, time.Minute)
	if done.Approx == nil {
		t.Fatal("done view dropped the approx payload")
	}
	var exact Result
	if err := json.Unmarshal(done.Result, &exact); err != nil {
		t.Fatalf("final result: %v", err)
	}
	if exact.Tier != TierExact || !exact.Exact || exact.Value != 19 {
		t.Fatalf("final result tier=%q exact=%v value=%d, want certified exact 19",
			exact.Tier, exact.Exact, exact.Value)
	}
	if approx.Key == exact.Key {
		t.Fatal("approx and exact phases share a cache key")
	}

	// Both phase results must now be cache hits for direct submissions
	// at those tiers...
	directApprox := JobRequest{Graph: GraphSpec{Family: "complete", N: 20},
		Tier: TierApprox, Epsilon: 0.9, Seed: 7}
	va, err := s.Submit(directApprox)
	if err != nil {
		t.Fatal(err)
	}
	if va.State != StateDone || !va.CacheHit {
		t.Fatalf("direct approx: state=%s cache_hit=%v, want cached done", va.State, va.CacheHit)
	}
	if !bytes.Equal(va.Result, ref.Approx) {
		t.Fatal("direct approx result differs from the published approx payload")
	}
	directExact := JobRequest{Graph: GraphSpec{Family: "complete", N: 20},
		Tier: TierExact, Seed: 7}
	ve, err := s.Submit(directExact)
	if err != nil {
		t.Fatal(err)
	}
	if ve.State != StateDone || !ve.CacheHit {
		t.Fatalf("direct exact: state=%s cache_hit=%v, want cached done", ve.State, ve.CacheHit)
	}
	if !bytes.Equal(ve.Result, done.Result) {
		t.Fatal("direct exact result differs from the tiered final result")
	}

	// ...and a tiered resubmission is served whole from the cache, with
	// both the exact result and the approx payload attached.
	v2, err := s.Submit(tieredReq())
	if err != nil {
		t.Fatal(err)
	}
	if v2.State != StateDone || !v2.CacheHit {
		t.Fatalf("tiered resubmit: state=%s cache_hit=%v, want cached done", v2.State, v2.CacheHit)
	}
	if !bytes.Equal(v2.Result, done.Result) || !bytes.Equal(v2.Approx, ref.Approx) {
		t.Fatal("tiered resubmit payloads differ from the original run")
	}
}

// TestTieredExactPhaseBytesMatchDirectExact asserts cross-tier cache
// integrity: the bytes a tiered job caches under its exact phase key
// are byte-identical to what a direct exact submission on a fresh
// service produces, so results flow between the two paths verbatim.
func TestTieredExactPhaseBytesMatchDirectExact(t *testing.T) {
	req := JobRequest{Graph: GraphSpec{Family: "planted", N1: 16, N2: 16, K: 2, InP: 0.5, Seed: 4}}

	direct := New(Options{PoolSize: 2})
	defer shutdown(t, direct)
	dv, err := direct.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	dres := waitState(t, direct, dv.ID, StateDone, time.Minute)

	tiered := New(Options{PoolSize: 2})
	defer shutdown(t, tiered)
	treq := req
	treq.Tier = TierTiered
	tv, err := tiered.Submit(treq)
	if err != nil {
		t.Fatal(err)
	}
	tres := waitState(t, tiered, tv.ID, StateDone, time.Minute)
	if !bytes.Equal(dres.Result, tres.Result) {
		t.Fatalf("tiered exact phase bytes differ from direct exact:\n%s\nvs\n%s",
			tres.Result, dres.Result)
	}
	data, ok := tiered.ResultByKey(dv.Key)
	if !ok {
		t.Fatalf("tiered service did not cache the exact phase under the direct key %s", dv.Key)
	}
	if !bytes.Equal(data, dres.Result) {
		t.Fatal("cached exact phase bytes differ from direct exact result")
	}
}

// TestBracketTierServed runs the bracket tier through the service: the
// result carries a [lo, hi] bracket containing the true λ (read off a
// direct exact run of the same spec) and a certified witness cut, and a
// resubmission is a cache hit.
func TestBracketTierServed(t *testing.T) {
	s := New(Options{PoolSize: 2})
	defer shutdown(t, s)
	spec := GraphSpec{Family: "planted", N1: 16, N2: 16, K: 2, InP: 0.5, Seed: 4}

	ev, err := s.Submit(JobRequest{Graph: spec, Tier: TierExact})
	if err != nil {
		t.Fatal(err)
	}
	var exact Result
	if err := json.Unmarshal(waitState(t, s, ev.ID, StateDone, time.Minute).Result, &exact); err != nil {
		t.Fatal(err)
	}

	bv, err := s.Submit(JobRequest{Graph: spec, Tier: TierBracket})
	if err != nil {
		t.Fatal(err)
	}
	bres := waitState(t, s, bv.ID, StateDone, time.Minute)
	var br Result
	if err := json.Unmarshal(bres.Result, &br); err != nil {
		t.Fatal(err)
	}
	if br.Tier != TierBracket || br.Mode != TierBracket {
		t.Fatalf("bracket result tier=%q mode=%q", br.Tier, br.Mode)
	}
	if br.Lo < 1 || br.Lo > br.Hi {
		t.Fatalf("malformed bracket [%d, %d]", br.Lo, br.Hi)
	}
	if exact.Value < br.Lo || exact.Value > br.Hi {
		t.Fatalf("λ = %d outside bracket [%d, %d]", exact.Value, br.Lo, br.Hi)
	}
	if br.Value < exact.Value {
		t.Fatalf("witness cut %d below λ = %d", br.Value, exact.Value)
	}

	bv2, err := s.Submit(JobRequest{Graph: spec, Tier: TierBracket})
	if err != nil {
		t.Fatal(err)
	}
	if bv2.State != StateDone || !bv2.CacheHit {
		t.Fatalf("bracket resubmit: state=%s cache_hit=%v, want cached done", bv2.State, bv2.CacheHit)
	}
	if !bytes.Equal(bv2.Result, bres.Result) {
		t.Fatal("bracket resubmit served different bytes")
	}
}

// TestCancelDuringRefiningKeepsApprox asserts the refinement-aware
// cancellation contract: canceling a tiered job mid-refinement aborts
// the exact phase but the canceled record keeps the already-published
// approximate payload.
func TestCancelDuringRefiningKeepsApprox(t *testing.T) {
	s := New(Options{PoolSize: 2})
	defer shutdown(t, s)
	v, err := s.Submit(tieredReq())
	if err != nil {
		t.Fatal(err)
	}
	ref := waitRefining(t, s, v.ID, time.Minute)
	cv, ok := s.Cancel(v.ID)
	if !ok {
		t.Fatal("cancel: job not found")
	}
	if cv.State != StateCanceled {
		t.Fatalf("state after cancel = %s, want canceled", cv.State)
	}
	if !bytes.Equal(cv.Approx, ref.Approx) {
		t.Fatal("canceled view lost the approx payload")
	}
	// The approx phase was cached before refining began, so a direct
	// approx submission is still a cache hit after the cancellation.
	va, err := s.Submit(JobRequest{Graph: GraphSpec{Family: "complete", N: 20},
		Tier: TierApprox, Epsilon: 0.9, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if va.State != StateDone || !va.CacheHit {
		t.Fatalf("approx after cancel: state=%s cache_hit=%v, want cached done", va.State, va.CacheHit)
	}
}

// TestTierSpecValidation covers the tier/mode agreement table and the
// epsilon gate on the tiers that consume it.
func TestTierSpecValidation(t *testing.T) {
	cycle := GraphSpec{Family: "cycle", N: 8}
	cases := []struct {
		name string
		req  JobRequest
		want string // substring of the error, "" = must be accepted
		tier string // canonical tier when accepted
	}{
		{"default", JobRequest{Graph: cycle}, "", TierExact},
		{"legacy mode", JobRequest{Graph: cycle, Mode: "approx"}, "", TierApprox},
		{"tier only", JobRequest{Graph: cycle, Tier: TierBracket}, "", TierBracket},
		{"agreeing pair", JobRequest{Graph: cycle, Mode: "exact", Tier: TierExact}, "", TierExact},
		{"tiered", JobRequest{Graph: cycle, Tier: TierTiered}, "", TierTiered},
		{"unknown tier", JobRequest{Graph: cycle, Tier: "blended"}, `unknown tier "blended"`, ""},
		{"conflicting pair", JobRequest{Graph: cycle, Mode: "approx", Tier: TierExact},
			`mode "approx" conflicts with tier "exact"`, ""},
		{"tiered with mode", JobRequest{Graph: cycle, Mode: "exact", Tier: TierTiered},
			`tier "tiered" takes no mode`, ""},
		{"bracket with mode", JobRequest{Graph: cycle, Mode: "respect", Tier: TierBracket},
			`tier "bracket" takes no mode`, ""},
		{"tiered bad epsilon", JobRequest{Graph: cycle, Tier: TierTiered, Epsilon: 1.5},
			"epsilon", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			canon, _, err := CanonicalRequest(tc.req, Limits{})
			if tc.want != "" {
				if err == nil || !errors.Is(err, ErrBadSpec) || !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("err = %v, want ErrBadSpec containing %q", err, tc.want)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if canon.Tier != tc.tier {
				t.Fatalf("canonical tier = %q, want %q", canon.Tier, tc.tier)
			}
			if canon.Mode != "" {
				t.Fatalf("canonical form kept legacy mode %q", canon.Mode)
			}
		})
	}
}

// TestTierKeysMatchDirectSubmissions pins the tier-qualified addressing
// scheme: a legacy mode spells the same key as its tier, and a tiered
// request's phase keys equal the keys of direct submissions at those
// tiers (same epsilon for approx; epsilon dropped for exact).
func TestTierKeysMatchDirectSubmissions(t *testing.T) {
	g := GraphSpec{Family: "planted", N1: 16, N2: 16, K: 2, InP: 0.5, Seed: 4}
	keyOf := func(req JobRequest) string {
		t.Helper()
		_, key, err := CanonicalRequest(req, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		return key
	}
	if keyOf(JobRequest{Graph: g, Mode: "approx", Epsilon: 0.9}) !=
		keyOf(JobRequest{Graph: g, Tier: TierApprox, Epsilon: 0.9}) {
		t.Fatal("mode approx and tier approx hash to different keys")
	}
	canon, tieredKey, err := CanonicalRequest(JobRequest{Graph: g, Tier: TierTiered, Epsilon: 0.9}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	approxKey, err := TierKey(canon, TierApprox, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	exactKey, err := TierKey(canon, TierExact, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if approxKey != keyOf(JobRequest{Graph: g, Tier: TierApprox, Epsilon: 0.9}) {
		t.Fatal("tiered approx phase key differs from a direct approx submission")
	}
	if exactKey != keyOf(JobRequest{Graph: g, Tier: TierExact}) {
		t.Fatal("tiered exact phase key differs from a direct exact submission")
	}
	if tieredKey == approxKey || tieredKey == exactKey || approxKey == exactKey {
		t.Fatalf("tier keys collide: tiered=%s approx=%s exact=%s", tieredKey, approxKey, exactKey)
	}
}
