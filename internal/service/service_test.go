package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync"
	"testing"
	"time"

	"distmincut/internal/congest"
)

func plantedReq(seed int64) JobRequest {
	return JobRequest{
		Graph: GraphSpec{Family: "planted", N1: 16, N2: 16, K: 2, InP: 0.5, Seed: seed},
		Mode:  "exact",
	}
}

func cycleReq(n int) JobRequest {
	return JobRequest{Graph: GraphSpec{Family: "cycle", N: n}, Mode: "respect"}
}

// waitState polls until the job reaches a terminal state and returns
// its final view.
func waitState(t *testing.T, s *Service, id string, want State, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if v.State == want {
			return v
		}
		if v.State == StateDone || v.State == StateFailed || v.State == StateCanceled {
			t.Fatalf("job %s reached %s (error %q), want %s", id, v.State, v.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, v.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func shutdown(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

func TestSubmitRunsJobToCompletion(t *testing.T) {
	s := New(Options{PoolSize: 2})
	defer shutdown(t, s)
	v, err := s.Submit(plantedReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateQueued {
		t.Fatalf("fresh job state %s, want queued", v.State)
	}
	final := waitState(t, s, v.ID, StateDone, 2*time.Minute)
	var res Result
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 || !res.Exact {
		t.Fatalf("planted cut value %d (exact %v), want 2 exact", res.Value, res.Exact)
	}
	if res.Rounds <= 0 || res.Messages <= 0 {
		t.Fatalf("degenerate complexity: %+v", res)
	}
	if res.Key != final.Key {
		t.Fatalf("result key %s != job key %s", res.Key, final.Key)
	}
	bits, err := base64.StdEncoding.DecodeString(res.Side)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for i := 0; i < res.N; i++ {
		if bits[i/8]&(1<<(i%8)) != 0 {
			n++
		}
	}
	if n != res.SideIn || n == 0 || n == res.N {
		t.Fatalf("side bitset population %d vs side_in %d (n=%d)", n, res.SideIn, res.N)
	}
}

func TestRepeatSubmissionServedFromCache(t *testing.T) {
	s := New(Options{PoolSize: 2})
	defer shutdown(t, s)
	first, err := s.Submit(plantedReq(7))
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s, first.ID, StateDone, 2*time.Minute)

	second, err := s.Submit(plantedReq(7))
	if err != nil {
		t.Fatal(err)
	}
	if second.State != StateDone || !second.CacheHit {
		t.Fatalf("repeat submission state %s cacheHit %v, want done from cache", second.State, second.CacheHit)
	}
	if second.ID == first.ID {
		t.Fatal("cache hit must mint a fresh job record")
	}
	if !bytes.Equal(second.Result, done.Result) {
		t.Fatal("cached bytes differ from computed bytes")
	}
	m := s.Metrics()
	if m.Completed != 1 {
		t.Fatalf("protocol ran %d times, want 1 (second submission must not re-run)", m.Completed)
	}
	if m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", m.CacheHits, m.CacheMisses)
	}
	if m.CacheHitRate != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", m.CacheHitRate)
	}
}

func TestIdenticalInflightSpecsCoalesce(t *testing.T) {
	// Pool of 1 busy with a slow job keeps the identical submissions
	// queued, so they must coalesce onto one execution — while each
	// submitter still gets an independent job record.
	s := New(Options{PoolSize: 1})
	defer shutdown(t, s)
	slow, err := s.Submit(plantedReq(3))
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.Submit(plantedReq(3))
	if err != nil {
		t.Fatal(err)
	}
	if again.ID == slow.ID {
		t.Fatal("coalesced submission must mint its own job record")
	}
	if again.Key != slow.Key {
		t.Fatalf("coalesced submission changed keys: %s vs %s", again.Key, slow.Key)
	}
	if m := s.Metrics(); m.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", m.Coalesced)
	}
	a := waitState(t, s, slow.ID, StateDone, 2*time.Minute)
	b := waitState(t, s, again.ID, StateDone, 2*time.Minute)
	if !bytes.Equal(a.Result, b.Result) {
		t.Fatal("coalesced jobs received different result bytes")
	}
	// One execution served both records.
	if m := s.Metrics(); m.Completed != 1 {
		t.Fatalf("completed = %d, want 1 (one shared run)", m.Completed)
	}
}

// TestCancelDetachesOnlyCaller: DELETE on one of two coalesced jobs
// must cancel that submitter's record only; the other still receives
// the result from the shared execution.
func TestCancelDetachesOnlyCaller(t *testing.T) {
	s := New(Options{PoolSize: 1})
	defer shutdown(t, s)
	if _, err := s.Submit(plantedReq(40)); err != nil { // occupies the worker
		t.Fatal(err)
	}
	first, err := s.Submit(plantedReq(41))
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Submit(plantedReq(41)) // coalesces onto first's execution
	if err != nil {
		t.Fatal(err)
	}
	v, ok := s.Cancel(second.ID)
	if !ok || v.State != StateCanceled {
		t.Fatalf("cancel coalesced waiter: ok=%v state=%s", ok, v.State)
	}
	final := waitState(t, s, first.ID, StateDone, 2*time.Minute)
	if len(final.Result) == 0 {
		t.Fatal("surviving waiter got no result")
	}
	if v, _ := s.Job(second.ID); v.State != StateCanceled {
		t.Fatalf("canceled waiter reached %s", v.State)
	}
	if m := s.Metrics(); m.Canceled != 1 || m.Completed != 2 {
		t.Fatalf("canceled/completed = %d/%d, want 1/2", m.Canceled, m.Completed)
	}
}

// TestCancelLastWaiterCancelsRun: once every coalesced submitter has
// canceled, the shared execution itself must be abandoned rather than
// run for nobody.
func TestCancelLastWaiterCancelsRun(t *testing.T) {
	s := New(Options{PoolSize: 1})
	defer shutdown(t, s)
	slow, err := s.Submit(plantedReq(44)) // occupies the worker
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Submit(plantedReq(45))
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Submit(plantedReq(45))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{first.ID, second.ID} {
		if v, ok := s.Cancel(id); !ok || v.State != StateCanceled {
			t.Fatalf("cancel %s: ok=%v state=%v", id, ok, v.State)
		}
	}
	waitState(t, s, slow.ID, StateDone, 2*time.Minute)
	m := s.Metrics()
	if m.Canceled != 2 {
		t.Fatalf("canceled = %d, want 2", m.Canceled)
	}
	if m.Completed != 1 {
		t.Fatalf("completed = %d, want 1 — abandoned execution still ran", m.Completed)
	}
}

func TestQueueSaturationReturnsBusy(t *testing.T) {
	s := New(Options{PoolSize: 1, QueueDepth: 2})
	defer shutdown(t, s)
	// A single worker and a depth-2 queue admit at most 3 jobs at
	// once; submitting 8 distinct slow specs back-to-back must accept
	// some and bounce at least one with ErrBusy. (How many land on
	// each side depends on when the worker pops — both outcomes are
	// races this test must tolerate.)
	var ids []string
	busy := 0
	for i := 0; i < 8; i++ {
		v, err := s.Submit(plantedReq(int64(10 + i)))
		switch {
		case err == nil:
			ids = append(ids, v.ID)
		case errors.Is(err, ErrBusy):
			busy++
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if busy == 0 {
		t.Fatal("8 instant submissions against a depth-2 queue never saw ErrBusy")
	}
	if len(ids) == 0 {
		t.Fatal("no submission was accepted")
	}
	for _, id := range ids {
		waitState(t, s, id, StateDone, 5*time.Minute)
	}
}

// TestManyConcurrentInflightJobs is the acceptance gate: at least 64
// jobs in flight at once on a bounded pool, submitted from concurrent
// clients, all completing without deadlock (run under -race in CI).
func TestManyConcurrentInflightJobs(t *testing.T) {
	const jobs = 64
	s := New(Options{PoolSize: 4, QueueDepth: jobs})
	defer shutdown(t, s)
	ids := make([]string, jobs)
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := s.Submit(cycleReq(48 + i)) // distinct specs: no coalescing
			ids[i], errs[i] = v.ID, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for i, id := range ids {
		v := waitState(t, s, id, StateDone, 5*time.Minute)
		var res Result
		if err := json.Unmarshal(v.Result, &res); err != nil {
			t.Fatal(err)
		}
		if res.Value != 2 {
			t.Fatalf("job %d: cycle min cut %d, want 2", i, res.Value)
		}
	}
	m := s.Metrics()
	if m.Completed != jobs {
		t.Fatalf("completed %d, want %d", m.Completed, jobs)
	}
	if m.Running != 0 || m.QueueDepth != 0 {
		t.Fatalf("pool not drained: running %d, queued %d", m.Running, m.QueueDepth)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s := New(Options{PoolSize: 1})
	defer shutdown(t, s)
	slow, err := s.Submit(plantedReq(30))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(plantedReq(31))
	if err != nil {
		t.Fatal(err)
	}
	v, ok := s.Cancel(queued.ID)
	if !ok || v.State != StateCanceled {
		t.Fatalf("cancel queued: ok=%v state=%s", ok, v.State)
	}
	waitState(t, s, slow.ID, StateDone, 2*time.Minute)
	// The canceled job must never run.
	if v, _ := s.Job(queued.ID); v.State != StateCanceled {
		t.Fatalf("canceled job reached %s", v.State)
	}
	if m := s.Metrics(); m.Canceled != 1 || m.Completed != 1 {
		t.Fatalf("canceled/completed = %d/%d, want 1/1", m.Canceled, m.Completed)
	}
}

func TestCancelRunningJobMidProtocol(t *testing.T) {
	s := New(Options{PoolSize: 1})
	defer shutdown(t, s)
	// A job far too big to finish quickly on one worker; cancel as
	// soon as it shows protocol progress.
	big, err := s.Submit(JobRequest{
		Graph: GraphSpec{Family: "planted", N1: 128, N2: 128, K: 3, InP: 0.2, Seed: 5},
		Mode:  "exact",
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		v, _ := s.Job(big.ID)
		if v.State == StateRunning && v.Rounds > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never showed progress (state %s)", v.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, ok := s.Cancel(big.ID); !ok {
		t.Fatal("cancel returned unknown job")
	}
	deadline = time.Now().Add(time.Minute)
	for {
		v, _ := s.Job(big.ID)
		if v.State == StateCanceled {
			if v.Error == "" {
				t.Fatal("canceled job carries no error")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after cancel", v.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The freed worker must still serve new jobs.
	next, err := s.Submit(cycleReq(64))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, next.ID, StateDone, 2*time.Minute)
}

func TestShutdownDrainsQueuedJobs(t *testing.T) {
	s := New(Options{PoolSize: 2})
	ids := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		v, err := s.Submit(cycleReq(50 + i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain shutdown: %v", err)
	}
	for _, id := range ids {
		if v, _ := s.Job(id); v.State != StateDone {
			t.Fatalf("job %s not drained: %s", id, v.State)
		}
	}
	if _, err := s.Submit(cycleReq(99)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after shutdown: %v, want ErrClosed", err)
	}
}

func TestShutdownDeadlineCancelsRunningJobs(t *testing.T) {
	s := New(Options{PoolSize: 1})
	big, err := s.Submit(JobRequest{
		Graph: GraphSpec{Family: "planted", N1: 128, N2: 128, K: 3, InP: 0.2, Seed: 9},
		Mode:  "exact",
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if v, _ := s.Job(big.ID); v.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline shutdown: %v, want DeadlineExceeded", err)
	}
	if v, _ := s.Job(big.ID); v.State != StateCanceled {
		t.Fatalf("running job after forced shutdown: %s", v.State)
	}
}

// TestDeterministicResultsAcrossInstances: identical canonical specs
// must produce byte-identical cached results in two independent
// service processes — the property that makes the cache
// content-addressable.
func TestDeterministicResultsAcrossInstances(t *testing.T) {
	reqs := []JobRequest{
		plantedReq(7),
		{Graph: GraphSpec{Family: "gnp", N: 64, P: 0.1, Seed: 3}, Mode: "respect"},
		{Graph: GraphSpec{Family: "torus", Rows: 5, Cols: 5}, Mode: "approx", Epsilon: 0.4},
	}
	results := make([][][]byte, 2)
	for inst := 0; inst < 2; inst++ {
		// Different pool shapes must not leak into result bytes.
		s := New(Options{PoolSize: 1 + inst*3, EngineWorkers: inst * 2, DeliveryShards: inst * 2})
		for _, req := range reqs {
			v, err := s.Submit(req)
			if err != nil {
				t.Fatal(err)
			}
			final := waitState(t, s, v.ID, StateDone, 5*time.Minute)
			data, ok := s.ResultByKey(final.Key)
			if !ok {
				t.Fatalf("no cached bytes for %s", final.Key)
			}
			results[inst] = append(results[inst], data)
		}
		shutdown(t, s)
	}
	for i := range reqs {
		if !bytes.Equal(results[0][i], results[1][i]) {
			t.Fatalf("request %d: result bytes differ across instances:\n%s\n%s",
				i, results[0][i], results[1][i])
		}
	}
}

func TestBadSpecsRejected(t *testing.T) {
	s := New(Options{PoolSize: 1})
	defer shutdown(t, s)
	cases := []JobRequest{
		{},
		{Graph: GraphSpec{Family: "nope", N: 10}},
		{Graph: GraphSpec{Family: "gnp", N: 1, P: 0.5}},
		{Graph: GraphSpec{Family: "gnp", N: 10, P: 1.5}},
		{Graph: GraphSpec{Family: "gnp", N: 10_000_000, P: 0.5}},
		{Graph: GraphSpec{Family: "cycle", N: 64}, Mode: "telepathy"},
		{Graph: GraphSpec{Family: "cycle", N: 64}, Mode: "approx", Epsilon: 2},
		{Graph: GraphSpec{Family: "edges", N: 4, Edges: [][3]int64{{0, 0, 1}}}},
		{Graph: GraphSpec{Family: "edges", N: 4, Edges: [][3]int64{{0, 1, 1}, {1, 0, 5}}}},
		{Graph: GraphSpec{Family: "edges", N: 4, Edges: [][3]int64{{0, 9, 1}}}},
		{Graph: GraphSpec{Family: "edges", N: 4, Edges: [][3]int64{{0, 1, 0}}}},
		{Graph: GraphSpec{Family: "cycle", N: 64, Weights: &WeightSpec{Lo: 0, Hi: 5}}},
	}
	for i, req := range cases {
		if _, err := s.Submit(req); !errors.Is(err, ErrBadSpec) {
			t.Errorf("case %d: got %v, want ErrBadSpec", i, err)
		}
	}
	if m := s.Metrics(); m.Submitted != 0 {
		// Submitted counts only accepted jobs: validation happens
		// before the counter.
		t.Fatalf("rejected specs counted as submissions: %d", m.Submitted)
	}
}

// TestOverflowingSpecsRejected: dimension products must never wrap
// past the size limits. big is half the platform int width, so
// big*big ≡ 0 mod the int range on both 32- and 64-bit targets — the
// exact shape of the grid {rows: 2^32, cols: 2^32} request that used
// to slip through validation and panic graph construction inside a
// worker.
func TestOverflowingSpecsRejected(t *testing.T) {
	s := New(Options{PoolSize: 1})
	defer shutdown(t, s)
	big := 1 << (bits.UintSize / 2)
	half := math.MaxInt/2 + 1 // n1+n2 wraps negative
	cases := []JobRequest{
		{Graph: GraphSpec{Family: "grid", Rows: big, Cols: big}},
		{Graph: GraphSpec{Family: "torus", Rows: big, Cols: big}},
		{Graph: GraphSpec{Family: "cliquepath", Cliques: big, CliqueSize: big, Bridge: 1}},
		{Graph: GraphSpec{Family: "planted", N1: half, N2: half, K: 1, InP: 0.1}},
	}
	for i, req := range cases {
		if _, err := s.Submit(req); !errors.Is(err, ErrBadSpec) {
			t.Errorf("case %d (%s): got %v, want ErrBadSpec", i, req.Graph.Family, err)
		}
	}
}

// TestWorkerSurvivesPanickingBuild: a panic inside a worker must fail
// the one job that triggered it, never the process. Validation can no
// longer admit a spec whose Build panics, so the test injects one
// directly (graph.Torus panics below 3x3) past the Submit checks.
func TestWorkerSurvivesPanickingBuild(t *testing.T) {
	s := New(Options{PoolSize: 1})
	defer shutdown(t, s)
	s.mu.Lock()
	e := &exec{
		key:      "injected-panic",
		req:      JobRequest{Mode: "exact", Seed: 1, Graph: GraphSpec{Family: "torus", Rows: 2, Cols: 2}},
		state:    StateQueued,
		progress: &congest.Progress{},
	}
	j := s.newJobLocked(e.key, TierExact)
	j.state = StateQueued
	j.progress = e.progress
	j.exec = e
	e.waiters = []*job{j}
	s.inflight[e.key] = e
	s.queue <- e
	s.mu.Unlock()

	deadline := time.Now().Add(time.Minute)
	for {
		v, ok := s.Job(j.id)
		if !ok {
			t.Fatal("injected job disappeared")
		}
		if v.State == StateFailed {
			if !strings.Contains(v.Error, "panicked") {
				t.Fatalf("failed job error %q does not report the panic", v.Error)
			}
			break
		}
		if v.State == StateDone || v.State == StateCanceled {
			t.Fatalf("injected job reached %s", v.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("injected job stuck in %s", v.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if m := s.Metrics(); m.Failed != 1 {
		t.Fatalf("failed = %d, want 1", m.Failed)
	}
	// The worker that recovered must still serve jobs.
	next, err := s.Submit(cycleReq(32))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, next.ID, StateDone, 2*time.Minute)
}

func TestCanonicalizationCollapsesEquivalentRequests(t *testing.T) {
	limits := Limits{}
	// Field noise a family does not consume must not split the key.
	a, ka, err := CanonicalRequest(JobRequest{
		Graph: GraphSpec{Family: "cycle", N: 64, P: 0.7, Dim: 9, Seed: 123},
	}, limits)
	if err != nil {
		t.Fatal(err)
	}
	_, kb, err := CanonicalRequest(JobRequest{
		Graph: GraphSpec{Family: "cycle", N: 64, Rows: 3},
		Mode:  "exact",
		Seed:  1, // the default, spelled out
	}, limits)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("equivalent cycle requests hash differently:\n%+v", a)
	}
	// Epsilon is only identity for approx mode.
	_, ke1, _ := CanonicalRequest(JobRequest{Graph: GraphSpec{Family: "cycle", N: 64}, Epsilon: 0.3}, limits)
	if ka != ke1 {
		t.Fatal("epsilon must not affect exact-mode keys")
	}
	_, kap1, _ := CanonicalRequest(JobRequest{Graph: GraphSpec{Family: "cycle", N: 64}, Mode: "approx", Epsilon: 0.3}, limits)
	_, kap2, _ := CanonicalRequest(JobRequest{Graph: GraphSpec{Family: "cycle", N: 64}, Mode: "approx", Epsilon: 0.4}, limits)
	if kap1 == kap2 {
		t.Fatal("approx epsilon must affect the key")
	}
	// Uploaded edge lists canonicalize order and orientation.
	e1 := [][3]int64{{2, 1, 5}, {0, 1, 1}, {3, 2, 2}}
	e2 := [][3]int64{{1, 0, 1}, {1, 2, 5}, {2, 3, 2}}
	_, k1, err := CanonicalRequest(JobRequest{Graph: GraphSpec{Family: "edges", N: 4, Edges: e1}}, limits)
	if err != nil {
		t.Fatal(err)
	}
	_, k2, err := CanonicalRequest(JobRequest{Graph: GraphSpec{Family: "edges", N: 4, Edges: e2}}, limits)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("reordered/reoriented edge lists hash differently")
	}
	// Different seeds are different computations.
	_, ks1, _ := CanonicalRequest(plantedReq(1), limits)
	_, ks2, _ := CanonicalRequest(plantedReq(2), limits)
	if ks1 == ks2 {
		t.Fatal("seed must affect the key")
	}
}

func TestFailedJobReported(t *testing.T) {
	s := New(Options{PoolSize: 1})
	defer shutdown(t, s)
	// A valid-looking upload that is disconnected fails at Build time,
	// inside the worker.
	v, err := s.Submit(JobRequest{
		Graph: GraphSpec{Family: "edges", N: 4, Edges: [][3]int64{{0, 1, 1}, {2, 3, 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		got, _ := s.Job(v.ID)
		if got.State == StateFailed {
			if got.Error == "" {
				t.Fatal("failed job carries no error")
			}
			break
		}
		if got.State == StateDone {
			t.Fatal("disconnected upload completed")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if m := s.Metrics(); m.Failed != 1 {
		t.Fatalf("failed = %d, want 1", m.Failed)
	}
	// A failed key must not poison the cache.
	if _, ok := s.ResultByKey(v.Key); ok {
		t.Fatal("failed job cached a result")
	}
}

func TestMetricsRoundsAccounting(t *testing.T) {
	s := New(Options{PoolSize: 2})
	defer shutdown(t, s)
	v, err := s.Submit(cycleReq(256))
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, v.ID, StateDone, 2*time.Minute)
	var res Result
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.RoundsTotal != int64(res.Rounds) {
		t.Fatalf("RoundsTotal %d != job rounds %d", m.RoundsTotal, res.Rounds)
	}
	if m.RoundsPerSec <= 0 {
		t.Fatalf("RoundsPerSec %v, want > 0", m.RoundsPerSec)
	}
}

func TestSubmittedCounterCountsAccepted(t *testing.T) {
	s := New(Options{PoolSize: 1})
	defer shutdown(t, s)
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(cycleReq(64 + i)); err != nil {
			t.Fatal(err)
		}
	}
	if m := s.Metrics(); m.Submitted != 3 {
		t.Fatalf("submitted = %d, want 3", m.Submitted)
	}
}

func ExampleCanonicalRequest() {
	_, key, _ := CanonicalRequest(JobRequest{
		Graph: GraphSpec{Family: "planted", N1: 24, N2: 24, K: 3, InP: 0.4, Seed: 7},
	}, Limits{})
	fmt.Println(len(key))
	// Output: 64
}

// TestJobRetentionBoundsMemory: finished job records beyond
// Options.JobRetention are dropped (404 on poll) while results stay
// reachable through the content-addressed cache — the guard against
// unbounded job-map growth under sustained traffic.
func TestJobRetentionBoundsMemory(t *testing.T) {
	s := New(Options{PoolSize: 2, JobRetention: 4})
	defer shutdown(t, s)
	first, err := s.Submit(cycleReq(64))
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, first.ID, StateDone, 2*time.Minute)
	// Ten cache-hit submissions mint ten finished records; retention 4
	// must push the original (and the oldest hits) out.
	for i := 0; i < 10; i++ {
		if _, err := s.Submit(cycleReq(64)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Job(first.ID); ok {
		t.Fatalf("job %s retained beyond JobRetention", first.ID)
	}
	if _, ok := s.ResultByKey(final.Key); !ok {
		t.Fatal("result evicted with the job record; must stay cached")
	}
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n > 4 {
		t.Fatalf("job map holds %d records, retention is 4", n)
	}
}

// TestEdgeUploadRunsEndToEnd: a *valid* uploaded edge list must run
// and report the right cut — the square 0-1-2-3-0 with weights
// 5,1,5,1 has minimum cut 2 (the two weight-1 edges). Guards the
// canonicalization bug where the upload's node count was dropped and
// every upload failed at build time.
func TestEdgeUploadRunsEndToEnd(t *testing.T) {
	s := New(Options{PoolSize: 2})
	defer shutdown(t, s)
	v, err := s.Submit(JobRequest{
		Graph: GraphSpec{Family: "edges", N: 4,
			Edges: [][3]int64{{0, 1, 5}, {1, 2, 1}, {2, 3, 5}, {3, 0, 1}}},
		Mode: "exact",
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, v.ID, StateDone, 2*time.Minute)
	var res Result
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.N != 4 || res.M != 4 || res.Value != 2 {
		t.Fatalf("square upload: n=%d m=%d cut=%d, want 4/4/2", res.N, res.M, res.Value)
	}
	// The declared node count is part of the canonical spec: the same
	// edges on a larger declared n is a different (disconnected, hence
	// invalid at build) computation, not the same key.
	_, k4, err := CanonicalRequest(JobRequest{
		Graph: GraphSpec{Family: "edges", N: 4, Edges: [][3]int64{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}}},
	}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	_, k5, err := CanonicalRequest(JobRequest{
		Graph: GraphSpec{Family: "edges", N: 5, Edges: [][3]int64{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}}},
	}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if k4 == k5 {
		t.Fatal("uploads with different declared n must not share a cache key")
	}
}

// TestSubmittedExcludesBusyRejections: the jobs_submitted counter
// tracks accepted work only, so under saturation it must equal
// completed + failed + canceled + cache hits + coalesced.
func TestSubmittedExcludesBusyRejections(t *testing.T) {
	s := New(Options{PoolSize: 1, QueueDepth: 1})
	defer shutdown(t, s)
	accepted := 0
	for i := 0; i < 8; i++ {
		_, err := s.Submit(plantedReq(int64(50 + i)))
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrBusy):
		default:
			t.Fatal(err)
		}
	}
	if accepted == 8 {
		t.Fatal("test never saturated the queue")
	}
	if m := s.Metrics(); m.Submitted != int64(accepted) {
		t.Fatalf("jobs_submitted %d, accepted %d — 503s leaked into the counter", m.Submitted, accepted)
	}
}
