// Package service turns the distmincut library into a concurrent
// min-cut computation service: a bounded worker pool executing jobs at
// several serving tiers, a content-addressed result cache, job states
// with live round/message progress, cancellation, and graceful drain.
// cmd/mincutd exposes it over HTTP/JSON and cmd/loadgen drives it
// under load.
//
// # Serving tiers
//
// Every job names a tier (JobRequest.Tier, the Tier* constants):
// bracket, approx, exact, respect, or tiered. The tiered tier is
// approximation-first serving — one job that runs the (1+ε) protocol,
// publishes that answer to all its waiters as state StateRefining, and
// then runs the genuine exact pipeline to its final result. Each phase
// is cached under the key a direct submission of that tier would use
// (TierKey), so phase results and direct-tier traffic share cache
// entries in both directions.
//
// # Warm workers
//
// Every pool worker owns one reusable CONGEST engine
// (congest.NewEngine) for its whole lifetime. The engine retains its
// slabs and port tables across jobs, so only a worker's first job pays
// engine allocation; every later job of similar scale starts with a
// near-zero setup phase. The effect is observable per job as
// JobView.SetupNs (the run's congest.Stats.SetupNanos) — deliberately
// an incidental field, never part of the canonical cached Result.
//
// # Cache-key canonicalization
//
// A job is identified by the SHA-256 of its canonical request. The
// canonical form is computed by CanonicalRequest: the legacy mode
// field is folded into the tier (they must agree when both are set;
// the default is tier "exact"), defaults are applied (seed 1, epsilon
// 0.5 on the tiers that consume it), epsilon is kept only for the
// approx and tiered tiers and zeroed elsewhere, every field not
// consumed by the request's graph family is zeroed, and an uploaded
// edge list is rewritten to its canonical order (endpoints u < v,
// edges sorted by (u, v)). The normalized request is serialized as
// JSON with a format-version prefix (specVersion, currently v2: the
// canonical form names a tier, never a mode) and hashed. Two requests
// that describe the same computation — whatever field noise, legacy
// mode spelling, or edge order they arrived with — therefore map to
// the same key, and because every computation in this repository is
// deterministic in (graph, params, seed), a key maps to exactly one
// result byte string: repeat submissions are served from the cache
// without re-running the protocol, and GET /v1/results/{key} is
// immutable.
//
// The tier is part of the key: the same graph served at two tiers is
// two cache entries. TierKey re-addresses a canonical request at
// another tier, which is how a tiered job names its phase results with
// the exact same keys direct approx/exact submissions produce. Engine
// concurrency knobs (worker lanes, delivery shards) are deliberately
// excluded from the key: the runtime guarantees results are identical
// under any setting, so they are service configuration, not job
// identity.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"

	"distmincut"
	"distmincut/internal/graph"
)

// ErrBadSpec is wrapped by every spec validation failure.
var ErrBadSpec = errors.New("service: bad job spec")

// Limits bounds accepted job specs.
type Limits struct {
	// MaxNodes and MaxEdges cap the size of any accepted graph
	// (generated families are checked analytically before generation,
	// uploads by their edge count).
	MaxNodes int
	MaxEdges int
}

// DefaultLimits are the limits used when a Limits field is zero.
var DefaultLimits = Limits{MaxNodes: 200_000, MaxEdges: 2_000_000}

func (l Limits) withDefaults() Limits {
	if l.MaxNodes <= 0 {
		l.MaxNodes = DefaultLimits.MaxNodes
	}
	if l.MaxEdges <= 0 {
		l.MaxEdges = DefaultLimits.MaxEdges
	}
	return l
}

// WeightSpec randomizes edge weights uniformly in [Lo, Hi] (applied
// after generation, graph.AssignWeights).
type WeightSpec struct {
	Lo   int64 `json:"lo"`
	Hi   int64 `json:"hi"`
	Seed int64 `json:"seed,omitempty"`
}

// GraphSpec names either a generator family with its parameters or an
// uploaded edge list. Exactly the fields consumed by the family may be
// set; canonicalization zeroes the rest so they cannot split the cache.
type GraphSpec struct {
	// Family is one of: gnp, planted, torus, grid, cycle, complete,
	// star, hypercube, random_regular, cliquepath, edges.
	Family string `json:"family"`

	// n (gnp, cycle, complete, star, random_regular; node count for
	// edges uploads).
	N int `json:"n,omitempty"`
	// p (gnp edge probability).
	P float64 `json:"p,omitempty"`
	// Generator seed (gnp, planted, random_regular).
	Seed int64 `json:"seed,omitempty"`

	// planted: cluster sizes, cross edges, in-cluster density.
	N1  int     `json:"n1,omitempty"`
	N2  int     `json:"n2,omitempty"`
	K   int     `json:"k,omitempty"`
	InP float64 `json:"in_p,omitempty"`

	// torus / grid.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`

	// hypercube dimension.
	Dim int `json:"dim,omitempty"`

	// random_regular degree.
	Degree int `json:"degree,omitempty"`

	// cliquepath: cliques of size CliqueSize joined by Bridge edges.
	Cliques    int `json:"cliques,omitempty"`
	CliqueSize int `json:"clique_size,omitempty"`
	Bridge     int `json:"bridge,omitempty"`

	// edges: an uploaded [u, v, w] list on nodes 0..n-1.
	Edges [][3]int64 `json:"edges,omitempty"`

	// Weights, when set, randomizes edge weights after generation.
	Weights *WeightSpec `json:"weights,omitempty"`
}

// Serving tiers, cheapest first. A tier names the computation a job
// runs, and is part of the canonical request — results are
// content-addressed under (spec, tier), so the same graph served at
// two tiers occupies two cache keys.
const (
	// TierBracket is the sampled-connectivity bracket
	// (distmincut.BracketMinCut): λ ∈ [lo, hi] in a handful of rounds.
	TierBracket = "bracket"
	// TierApprox is the (1+ε) sampling reduction
	// (distmincut.ApproxMinCut).
	TierApprox = "approx"
	// TierExact is the certified exact pipeline (distmincut.MinCut).
	TierExact = "exact"
	// TierRespect is Theorem 2.1 alone (distmincut.OneRespectingCut).
	TierRespect = "respect"
	// TierTiered is approximation-first serving: the job publishes its
	// (1+ε) answer as soon as it is available (state "refining") and
	// continues to the exact certified cut. Each phase is cached under
	// the key a direct submission of that tier would get (see TierKey),
	// so both phases are cache-hits on resubmission at any tier.
	TierTiered = "tiered"
)

// JobRequest is one min-cut computation request.
type JobRequest struct {
	Graph GraphSpec `json:"graph"`
	// Mode is the legacy protocol selector: exact (default), approx, or
	// respect. When Tier is set, Mode must be empty or name the same
	// computation.
	Mode string `json:"mode,omitempty"`
	// Tier selects the serving tier: exact (default), approx, bracket,
	// respect, or tiered (approximation first, exact refinement in the
	// background). See the Tier* constants.
	Tier string `json:"tier,omitempty"`
	// Epsilon is the approximation parameter (approx and tiered tiers
	// only; default 0.5).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Seed drives the protocol's randomness (default 1).
	Seed int64 `json:"seed,omitempty"`
	// DeadlineMS bounds the job's wall-clock time in milliseconds,
	// measured from submission (queue wait included). A job still
	// unfinished at the deadline is killed at the next engine round
	// boundary and reported as StateDeadline with its partial progress.
	// Zero applies the server's default deadline, if one is configured.
	// Deliberately excluded from the canonical request: the deadline
	// changes when an answer is abandoned, never which answer is
	// computed, so it must not split the cache.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// specVersion prefixes the hashed bytes so a format change can never
// collide with keys of the old format. v2: tier-qualified keys — the
// canonical form names a tier instead of a mode.
const specVersion = "mincutd/v2\n"

func bad(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
}

// resolveTier maps the (Mode, Tier) pair onto the canonical tier. Mode
// is the legacy selector; when both are set they must agree.
func resolveTier(req JobRequest) (string, error) {
	var fromMode string
	switch req.Mode {
	case "":
		fromMode = ""
	case "exact":
		fromMode = TierExact
	case "approx":
		fromMode = TierApprox
	case "respect":
		fromMode = TierRespect
	default:
		return "", bad("unknown mode %q", req.Mode)
	}
	switch req.Tier {
	case "":
		if fromMode == "" {
			return TierExact, nil
		}
		return fromMode, nil
	case TierExact, TierApprox, TierRespect:
		if fromMode != "" && fromMode != req.Tier {
			return "", bad("mode %q conflicts with tier %q", req.Mode, req.Tier)
		}
		return req.Tier, nil
	case TierBracket, TierTiered:
		if req.Mode != "" {
			return "", bad("tier %q takes no mode, got %q", req.Tier, req.Mode)
		}
		return req.Tier, nil
	default:
		return "", bad("unknown tier %q", req.Tier)
	}
}

// CanonicalRequest validates req against limits and returns its
// canonical form plus the content-address key (hex SHA-256). See the
// package docs for the canonicalization contract: the canonical form
// names a tier (Mode is folded into it), keeps Epsilon only for the
// tiers that consume it (approx, tiered), and normalizes the graph
// spec.
func CanonicalRequest(req JobRequest, limits Limits) (JobRequest, string, error) {
	limits = limits.withDefaults()
	c := JobRequest{Seed: req.Seed}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if req.DeadlineMS < 0 {
		return c, "", bad("deadline_ms %d is negative", req.DeadlineMS)
	}
	tier, err := resolveTier(req)
	if err != nil {
		return c, "", err
	}
	c.Tier = tier
	if tier == TierApprox || tier == TierTiered {
		c.Epsilon = req.Epsilon
		if c.Epsilon == 0 {
			c.Epsilon = 0.5
		}
		if c.Epsilon <= 0 || c.Epsilon >= 1 || math.IsNaN(c.Epsilon) {
			return c, "", bad("epsilon %v outside (0, 1)", req.Epsilon)
		}
	}
	g, err := canonicalGraph(req.Graph, limits)
	if err != nil {
		return c, "", err
	}
	c.Graph = g
	blob, err := json.Marshal(c)
	if err != nil {
		return c, "", bad("marshal: %v", err)
	}
	sum := sha256.Sum256(append([]byte(specVersion), blob...))
	return c, hex.EncodeToString(sum[:]), nil
}

// TierKey re-addresses an already-canonical request at another tier
// and returns that tier's content-address key. This is how a tiered
// job names its phase results: the approx phase is cached under
// TierKey(canon, TierApprox) and the exact phase under
// TierKey(canon, TierExact) — exactly the keys direct submissions at
// those tiers produce, so results flow between the tiered path and
// direct-tier traffic in both directions.
func TierKey(canon JobRequest, tier string, limits Limits) (string, error) {
	c := canon
	c.Mode = ""
	c.Tier = tier
	_, key, err := CanonicalRequest(c, limits)
	return key, err
}

// canonicalGraph validates and normalizes one graph spec: only the
// fields the family consumes survive.
func canonicalGraph(in GraphSpec, limits Limits) (GraphSpec, error) {
	out := GraphSpec{Family: in.Family}
	// Every dimension is bounded individually by MaxNodes before any
	// product is formed, and products are computed in int64: a request
	// like rows = cols = 2^32 must be rejected on the factor, never
	// allowed to wrap rows*cols past the size check (which would panic
	// deep inside graph construction).
	checkDim := func(name string, v, min int) error {
		if v < min {
			return bad("%s needs %s >= %d, got %d", in.Family, name, min, v)
		}
		if v > limits.MaxNodes {
			return bad("%s %s %d exceeds MaxNodes %d", in.Family, name, v, limits.MaxNodes)
		}
		return nil
	}
	checkN := func(n int) error { return checkDim("n", n, 2) }
	switch in.Family {
	case "gnp":
		if err := checkN(in.N); err != nil {
			return out, err
		}
		if in.P < 0 || in.P > 1 || math.IsNaN(in.P) {
			return out, bad("gnp p %v outside [0, 1]", in.P)
		}
		if exp := in.P * float64(in.N) * float64(in.N-1) / 2; exp > float64(limits.MaxEdges) {
			return out, bad("gnp expects ~%.0f edges, exceeds MaxEdges %d", exp, limits.MaxEdges)
		}
		out.N, out.P, out.Seed = in.N, in.P, in.Seed
	case "planted":
		if err := checkDim("n1", in.N1, 2); err != nil {
			return out, err
		}
		if err := checkDim("n2", in.N2, 2); err != nil {
			return out, err
		}
		if in.N1+in.N2 > limits.MaxNodes {
			return out, bad("planted n %d exceeds MaxNodes %d", in.N1+in.N2, limits.MaxNodes)
		}
		if in.K < 1 || int64(in.K) > int64(in.N1)*int64(in.N2) {
			return out, bad("planted k %d outside [1, n1*n2]", in.K)
		}
		if in.InP < 0 || in.InP > 1 || math.IsNaN(in.InP) {
			return out, bad("planted in_p %v outside [0, 1]", in.InP)
		}
		e1 := in.InP * float64(in.N1) * float64(in.N1-1) / 2
		e2 := in.InP * float64(in.N2) * float64(in.N2-1) / 2
		if exp := e1 + e2 + float64(in.N1+in.N2+in.K); exp > float64(limits.MaxEdges) {
			return out, bad("planted expects ~%.0f edges, exceeds MaxEdges %d", exp, limits.MaxEdges)
		}
		out.N1, out.N2, out.K, out.InP, out.Seed = in.N1, in.N2, in.K, in.InP, in.Seed
	case "torus":
		if err := checkDim("rows", in.Rows, 3); err != nil {
			return out, err
		}
		if err := checkDim("cols", in.Cols, 3); err != nil {
			return out, err
		}
		if n := int64(in.Rows) * int64(in.Cols); n > int64(limits.MaxNodes) || 2*n > int64(limits.MaxEdges) {
			return out, bad("torus %dx%d exceeds limits", in.Rows, in.Cols)
		}
		out.Rows, out.Cols = in.Rows, in.Cols
	case "grid":
		if err := checkDim("rows", in.Rows, 2); err != nil {
			return out, err
		}
		if err := checkDim("cols", in.Cols, 2); err != nil {
			return out, err
		}
		if int64(in.Rows)*int64(in.Cols) > int64(limits.MaxNodes) {
			return out, bad("grid %dx%d exceeds MaxNodes %d", in.Rows, in.Cols, limits.MaxNodes)
		}
		out.Rows, out.Cols = in.Rows, in.Cols
	case "cycle", "star":
		if err := checkN(in.N); err != nil {
			return out, err
		}
		if in.Family == "cycle" && in.N < 3 {
			return out, bad("cycle needs n >= 3, got %d", in.N)
		}
		out.N = in.N
	case "complete":
		if err := checkN(in.N); err != nil {
			return out, err
		}
		if int64(in.N)*int64(in.N-1)/2 > int64(limits.MaxEdges) {
			return out, bad("complete n %d exceeds MaxEdges %d", in.N, limits.MaxEdges)
		}
		out.N = in.N
	case "hypercube":
		if in.Dim < 1 || in.Dim > 30 {
			return out, bad("hypercube dim %d outside [1, 30]", in.Dim)
		}
		if 1<<in.Dim > int64(limits.MaxNodes) || int64(in.Dim)<<(in.Dim-1) > int64(limits.MaxEdges) {
			return out, bad("hypercube dim %d exceeds limits", in.Dim)
		}
		out.Dim = in.Dim
	case "random_regular":
		if err := checkN(in.N); err != nil {
			return out, err
		}
		if in.Degree < 1 || in.Degree >= in.N || in.N*in.Degree%2 != 0 {
			return out, bad("random_regular (n=%d, degree=%d) infeasible", in.N, in.Degree)
		}
		if int64(in.N)*int64(in.Degree)/2 > int64(limits.MaxEdges) {
			return out, bad("random_regular exceeds MaxEdges %d", limits.MaxEdges)
		}
		out.N, out.Degree, out.Seed = in.N, in.Degree, in.Seed
	case "cliquepath":
		if err := checkDim("cliques", in.Cliques, 2); err != nil {
			return out, err
		}
		if err := checkDim("clique_size", in.CliqueSize, 2); err != nil {
			return out, err
		}
		if in.Bridge < 1 || in.Bridge > in.CliqueSize {
			return out, bad("cliquepath bridge %d outside [1, clique_size]", in.Bridge)
		}
		n := int64(in.Cliques) * int64(in.CliqueSize)
		m := n*int64(in.CliqueSize-1)/2 + int64(in.Cliques-1)*int64(in.Bridge)
		if n > int64(limits.MaxNodes) || m > int64(limits.MaxEdges) {
			return out, bad("cliquepath exceeds limits (n=%d, m=%d)", n, m)
		}
		out.Cliques, out.CliqueSize, out.Bridge = in.Cliques, in.CliqueSize, in.Bridge
	case "edges":
		if err := checkN(in.N); err != nil {
			return out, err
		}
		if len(in.Edges) == 0 {
			return out, bad("edges family needs a non-empty edge list")
		}
		if len(in.Edges) > limits.MaxEdges {
			return out, bad("%d edges exceed MaxEdges %d", len(in.Edges), limits.MaxEdges)
		}
		es := make([][3]int64, len(in.Edges))
		seen := make(map[[2]int64]bool, len(in.Edges))
		for i, e := range in.Edges {
			u, v, w := e[0], e[1], e[2]
			if u > v {
				u, v = v, u
			}
			if u < 0 || v >= int64(in.N) {
				return out, bad("edge %d endpoints (%d, %d) outside [0, n)", i, e[0], e[1])
			}
			if u == v {
				return out, bad("edge %d is a self loop at %d", i, u)
			}
			if w < 1 || w > distmincut.MaxWeight {
				return out, bad("edge %d weight %d outside [1, 2^31)", i, w)
			}
			if seen[[2]int64{u, v}] {
				return out, bad("duplicate edge {%d, %d}", u, v)
			}
			seen[[2]int64{u, v}] = true
			es[i] = [3]int64{u, v, w}
		}
		sort.Slice(es, func(i, j int) bool {
			if es[i][0] != es[j][0] {
				return es[i][0] < es[j][0]
			}
			return es[i][1] < es[j][1]
		})
		out.N, out.Edges = in.N, es
	case "":
		return out, bad("missing graph family")
	default:
		return out, bad("unknown graph family %q", in.Family)
	}
	if in.Weights != nil {
		ws := *in.Weights
		if ws.Lo < 1 || ws.Hi < ws.Lo || ws.Hi > distmincut.MaxWeight {
			return out, bad("weights need 1 <= lo <= hi < 2^31, got [%d, %d]", ws.Lo, ws.Hi)
		}
		if ws.Seed == 0 {
			ws.Seed = 1
		}
		out.Weights = &ws
	}
	return out, nil
}

// Build materializes a canonical graph spec. Generated graphs are
// deterministic in the spec, so Build is a pure function of its
// argument — the foundation of the content-addressed cache.
func Build(spec GraphSpec) (*graph.Graph, error) {
	var g *graph.Graph
	switch spec.Family {
	case "gnp":
		g = graph.GNP(spec.N, spec.P, spec.Seed)
	case "planted":
		g = graph.PlantedCut(spec.N1, spec.N2, spec.K, spec.InP, spec.Seed)
	case "torus":
		g = graph.Torus(spec.Rows, spec.Cols)
	case "grid":
		g = graph.Grid(spec.Rows, spec.Cols)
	case "cycle":
		g = graph.Cycle(spec.N)
	case "star":
		g = graph.Star(spec.N)
	case "complete":
		g = graph.Complete(spec.N)
	case "hypercube":
		g = graph.Hypercube(spec.Dim)
	case "random_regular":
		g = graph.RandomRegular(spec.N, spec.Degree, spec.Seed)
	case "cliquepath":
		g = graph.CliquePath(spec.Cliques, spec.CliqueSize, spec.Bridge)
	case "edges":
		g = graph.New(spec.N)
		for _, e := range spec.Edges {
			if _, err := g.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]), e[2]); err != nil {
				return nil, bad("%v", err)
			}
		}
		g.SortAdjacency()
	default:
		return nil, bad("unknown graph family %q", spec.Family)
	}
	if spec.Weights != nil {
		g = graph.AssignWeights(g, spec.Weights.Lo, spec.Weights.Hi, spec.Weights.Seed)
	}
	if !graph.IsConnected(g) {
		return nil, bad("graph is disconnected (%s family)", spec.Family)
	}
	return g, nil
}
