package service

import (
	"sync/atomic"
	"time"
)

// durationBounds are the upper bucket bounds (seconds) of the per-tier
// job latency histograms. They span sub-millisecond cache hits to the
// 60-second neighborhood of the service's deadline ceilings; +Inf is
// implicit.
var durationBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60,
}

// histogram is a fixed-bound latency histogram with lock-free observe:
// one atomic bucket increment plus two atomic adds per observation, so
// the job-finalization path never contends on metrics.
type histogram struct {
	counts []atomic.Int64 // len(durationBounds)+1; last is +Inf
	sumNs  atomic.Int64
	count  atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(durationBounds)+1)}
}

func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(durationBounds) && sec > durationBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(d.Nanoseconds())
	h.count.Add(1)
}

// HistogramSnapshot is a point-in-time copy of one latency histogram,
// as served in the JSON metrics snapshot. Counts are per-bucket (not
// cumulative) and parallel to Bounds, with one extra final element for
// the +Inf bucket; the Prometheus exposition renders the conventional
// cumulative le-labeled form of the same data.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds in seconds.
	Bounds []float64 `json:"bounds"`
	// Counts holds len(Bounds)+1 per-bucket observation counts; the
	// last is the +Inf overflow bucket.
	Counts []int64 `json:"counts"`
	// SumSeconds is the sum of all observed durations in seconds.
	SumSeconds float64 `json:"sum_seconds"`
	// Count is the total number of observations.
	Count int64 `json:"count"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:     durationBounds,
		Counts:     make([]int64, len(h.counts)),
		SumSeconds: float64(h.sumNs.Load()) / 1e9,
		Count:      h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}
