package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opts Options) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(opts)
	ts := httptest.NewServer(NewAPI(svc).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	return svc, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, JobView) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	data, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(data, &view)
	return resp, view
}

func getJob(t *testing.T, ts *httptest.Server, id string) (int, JobView) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	_ = json.NewDecoder(resp.Body).Decode(&view)
	return resp.StatusCode, view
}

func pollDone(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, view := getJob(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		switch view.State {
		case StateDone:
			return view
		case StateFailed, StateCanceled:
			t.Fatalf("job %s reached %s: %s", id, view.State, view.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, view.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

const plantedBody = `{"graph":{"family":"planted","n1":16,"n2":16,"k":2,"in_p":0.5,"seed":4},"mode":"exact"}`

func TestHTTPSubmitPollFetch(t *testing.T) {
	_, ts := newTestServer(t, Options{PoolSize: 2})

	resp, view := postJob(t, ts, plantedBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	if view.ID == "" || view.Key == "" {
		t.Fatalf("submit response incomplete: %+v", view)
	}

	final := pollDone(t, ts, view.ID, 2*time.Minute)
	var res Result
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 {
		t.Fatalf("cut %d, want planted 2", res.Value)
	}

	// Content-addressed fetch returns the identical bytes.
	rr, err := http.Get(ts.URL + "/v1/results/" + view.Key)
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("results status %d", rr.StatusCode)
	}
	if cc := rr.Header.Get("Cache-Control"); !strings.Contains(cc, "immutable") {
		t.Fatalf("results Cache-Control %q not immutable", cc)
	}
	raw, _ := io.ReadAll(rr.Body)
	if !bytes.Equal(bytes.TrimSpace(raw), []byte(final.Result)) {
		t.Fatal("result endpoint bytes differ from job result")
	}

	// Resubmission: served from cache with 200.
	resp2, view2 := postJob(t, ts, plantedBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached submit status %d, want 200", resp2.StatusCode)
	}
	if view2.State != StateDone || !view2.CacheHit {
		t.Fatalf("cached submit state %s hit %v", view2.State, view2.CacheHit)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{PoolSize: 1})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", `{{{`, http.StatusBadRequest},
		{"unknown field", `{"graph":{"family":"cycle","n":8},"turbo":true}`, http.StatusBadRequest},
		{"unknown family", `{"graph":{"family":"moebius","n":8}}`, http.StatusBadRequest},
		{"bad epsilon", `{"graph":{"family":"cycle","n":8},"mode":"approx","epsilon":7}`, http.StatusBadRequest},
		{"oversized n", `{"graph":{"family":"complete","n":1000000}}`, http.StatusBadRequest},
		{"self loop", `{"graph":{"family":"edges","n":3,"edges":[[0,0,1]]}}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, _ := postJob(t, ts, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
}

func TestHTTPOversizedUpload(t *testing.T) {
	svc := New(Options{PoolSize: 1})
	api := NewAPI(svc)
	api.MaxBody = 1024
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	var sb strings.Builder
	sb.WriteString(`{"graph":{"family":"edges","n":4000,"edges":[`)
	for i := 0; i < 2000; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "[%d,%d,1]", i, i+1)
	}
	sb.WriteString(`]}}`)
	resp, _ := postJob(t, ts, sb.String())
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestHTTPQueueFull(t *testing.T) {
	_, ts := newTestServer(t, Options{PoolSize: 1, QueueDepth: 1})
	// Occupy the worker and the 1-slot queue, then overflow. Retries
	// tolerate the worker popping between submissions.
	got503 := false
	for i := 0; i < 6 && !got503; i++ {
		body := fmt.Sprintf(`{"graph":{"family":"planted","n1":16,"n2":16,"k":2,"in_p":0.5,"seed":%d},"mode":"exact"}`, 40+i)
		resp, _ := postJob(t, ts, body)
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusServiceUnavailable:
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("503 without Retry-After")
			}
			got503 = true
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if !got503 {
		t.Fatal("queue never reported full")
	}
}

func TestHTTPCancel(t *testing.T) {
	_, ts := newTestServer(t, Options{PoolSize: 1})
	_, slow := postJob(t, ts, plantedBody)
	_, queued := postJob(t, ts, `{"graph":{"family":"planted","n1":16,"n2":16,"k":2,"in_p":0.5,"seed":77},"mode":"exact"}`)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	_ = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || view.State != StateCanceled {
		t.Fatalf("cancel: status %d state %s", resp.StatusCode, view.State)
	}
	pollDone(t, ts, slow.ID, 2*time.Minute)
}

func TestHTTPNotFound(t *testing.T) {
	_, ts := newTestServer(t, Options{PoolSize: 1})
	if code, _ := getJob(t, ts, "j999"); code != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", code)
	}
	resp, err := http.Get(ts.URL + "/v1/results/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown result status %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/j999", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown job status %d, want 404", dresp.StatusCode)
	}
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Options{PoolSize: 2})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	_, view := postJob(t, ts, `{"graph":{"family":"cycle","n":64},"mode":"respect"}`)
	pollDone(t, ts, view.ID, 2*time.Minute)
	postJob(t, ts, `{"graph":{"family":"cycle","n":64},"mode":"respect"}`) // cache hit

	mresp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Submitted != 2 || m.Completed != 1 || m.CacheHits != 1 {
		t.Fatalf("metrics submitted/completed/hits = %d/%d/%d, want 2/1/1", m.Submitted, m.Completed, m.CacheHits)
	}
	if m.PoolSize != 2 || m.UptimeSec <= 0 {
		t.Fatalf("metrics shape: %+v", m)
	}
	if m.CacheHitRate != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", m.CacheHitRate)
	}

	// Default format is Prometheus text exposition: the same counters
	// under their mincutd_* names, typed and help-annotated.
	presp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if ct := presp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prometheus content type %q", ct)
	}
	body, err := io.ReadAll(presp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE mincutd_jobs_submitted_total counter",
		"mincutd_jobs_submitted_total 2",
		"mincutd_cache_hits_total 1",
		"mincutd_cache_hit_ratio 0.5",
		"# TYPE mincutd_queue_depth gauge",
		"mincutd_jobs_deadline_total 0",
		"mincutd_jobs_shed_total 0",
		"mincutd_admission_rejected_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus body missing %q:\n%s", want, text)
		}
	}
}
