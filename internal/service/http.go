package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// DefaultMaxBody bounds the request body accepted by the submit
// endpoint (canonical edge uploads at the default limits fit well
// within it).
const DefaultMaxBody int64 = 64 << 20

// API wraps a Service with its HTTP/JSON surface. See docs/API.md for
// the full reference with examples.
//
//	POST   /v1/jobs             submit a JobRequest
//	GET    /v1/jobs/{id}        job state, progress, result when done
//	GET    /v1/jobs/{id}/trace  the job's timeline as Chrome trace-event JSON
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/results/{key}    canonical result bytes by content address
//	GET    /healthz             liveness plus build identity (?check=ready flips to 503 while draining or saturated)
//	GET    /metrics             Prometheus text format (?format=json for the JSON snapshot)
//
// Submissions whose canonical spec matches an in-flight computation
// are coalesced onto that execution but still receive their own job
// ID: DELETE cancels only the caller's job, and the shared protocol
// run is abandoned only when every coalesced submitter has canceled.
//
// A job's tier (JobRequest.Tier) selects the computation served. Jobs
// at tier "tiered" pass through the extra state "refining": the view's
// approx field carries the published (1+ε) result while the exact
// certified cut is still running, and stays on the view through done,
// canceled, drained, and deadline outcomes.
//
// Overload surfaces as typed submit failures: 503 with a Retry-After
// header when the queue is full or the service is draining, and 429
// with a cost_estimate body (see CostEstimate) when admission control
// rejects an exact/tiered request whose bracketed λ prices the run
// over the configured ceiling.
type API struct {
	svc *Service
	// MaxBody bounds the submit request body (DefaultMaxBody if 0).
	MaxBody int64
}

// NewAPI wraps svc.
func NewAPI(svc *Service) *API { return &API{svc: svc} }

// Handler returns the API's route table.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", a.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", a.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", a.handleTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", a.handleCancel)
	mux.HandleFunc("GET /v1/results/{key}", a.handleResult)
	mux.HandleFunc("GET /healthz", a.handleHealth)
	mux.HandleFunc("GET /metrics", a.handleMetrics)
	return mux
}

type apiError struct {
	Error string `json:"error"`
}

// admissionReject is the 429 body: the error line plus the typed cost
// estimate that justified the rejection.
type admissionReject struct {
	Error        string       `json:"error"`
	CostEstimate CostEstimate `json:"cost_estimate"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (a *API) handleSubmit(w http.ResponseWriter, r *http.Request) {
	maxBody := a.MaxBody
	if maxBody <= 0 {
		maxBody = DefaultMaxBody
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				apiError{Error: "request body exceeds limit"})
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request: " + err.Error()})
		return
	}
	view, err := a.svc.Submit(req)
	switch {
	case err == nil:
	case errors.Is(err, ErrBadSpec):
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	case errors.Is(err, ErrBusy), errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		return
	default:
		var adm *AdmissionError
		if errors.As(err, &adm) {
			// The bracket pre-pass is already cached: retrying at the
			// hinted tier costs the client one cache hit.
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, admissionReject{
				Error:        err.Error(),
				CostEstimate: adm.Est,
			})
			return
		}
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	status := http.StatusAccepted
	if view.State == StateDone {
		status = http.StatusOK // served from cache
	}
	writeJSON(w, status, view)
}

func (a *API) handleJob(w http.ResponseWriter, r *http.Request) {
	view, ok := a.svc.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (a *API) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, ok := a.svc.Cancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (a *API) handleResult(w http.ResponseWriter, r *http.Request) {
	data, ok := a.svc.ResultByKey(r.PathValue("key"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no result for key"})
		return
	}
	// Content-addressed results are immutable: cache them hard.
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "public, max-age=31536000, immutable")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (a *API) handleTrace(w http.ResponseWriter, r *http.Request) {
	data, ok := a.svc.Trace(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleHealth serves liveness and readiness from one endpoint,
// backward compatible with the original /healthz shape. The plain GET
// is the liveness probe: it answers 200 whenever the process serves
// HTTP — including all the way through a drain — and its body now
// additionally carries ready/reason/replica next to the build identity.
// With ?check=ready the same body comes back with status 503 whenever
// the service is not accepting new submissions (draining, or the queue
// at 100% fill), which is the probe a gateway health-checks.
func (a *API) handleHealth(w http.ResponseWriter, r *http.Request) {
	b := ReadBuild()
	ready, reason := a.svc.Ready()
	body := map[string]any{
		"status":  "ok",
		"ready":   ready,
		"version": b.Version,
		"commit":  b.Commit,
		"go":      b.GoVersion,
	}
	if reason != "" {
		body["reason"] = reason
	}
	if rep := a.svc.Replica(); rep != "" {
		body["replica"] = rep
	}
	status := http.StatusOK
	if !ready && r.URL.Query().Get("check") == "ready" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := a.svc.Metrics()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, m)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = WritePrometheus(w, m)
}
