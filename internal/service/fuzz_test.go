package service

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzCanonicalRequest feeds arbitrary JSON through the cache-key
// canonicalizer and checks its contract on everything that parses:
//
//   - CanonicalRequest never panics, whatever the request contains;
//   - canonicalization is a fixed point: re-canonicalizing a canonical
//     request changes neither the request nor its key (if it did,
//     repeat submissions could miss the cache or — worse — two
//     spellings of one computation could produce distinct immutable
//     results);
//   - uploaded edge lists are order-independent: permuting the edges
//     of an accepted request never changes its key.
func FuzzCanonicalRequest(f *testing.F) {
	seeds := []string{
		`{"graph":{"family":"gnp","n":50,"p":0.1,"seed":3}}`,
		`{"graph":{"family":"planted","n1":16,"n2":16,"k":3,"in_p":0.4},"tier":"approx","epsilon":0.25}`,
		`{"graph":{"family":"torus","rows":4,"cols":5},"mode":"exact"}`,
		`{"graph":{"family":"edges","n":4,"edges":[[0,1,1],[2,1,5],[3,0,2]]},"tier":"tiered"}`,
		`{"graph":{"family":"hypercube","dim":4},"tier":"bracket","seed":9}`,
		`{"graph":{"family":"random_regular","n":16,"degree":3,"seed":2},"mode":"respect"}`,
		`{"graph":{"family":"cliquepath","cliques":3,"clique_size":4,"bridge":2},"deadline_ms":50}`,
		`{"graph":{"family":"cycle","n":9,"weights":{"lo":1,"hi":7}},"tier":"exact","mode":"exact"}`,
		`{"graph":{"family":"grid","rows":3,"cols":1000000000}}`,
		`{"graph":{"family":"edges","n":3,"edges":[[1,0,1],[0,1,1]]}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req JobRequest
		if json.Unmarshal(data, &req) != nil {
			return
		}
		canon, key, err := CanonicalRequest(req, Limits{})
		if err != nil {
			return // rejected specs only need to not panic
		}
		canon2, key2, err := CanonicalRequest(canon, Limits{})
		if err != nil {
			t.Fatalf("canonical request rejected on re-canonicalization: %v\ncanon: %+v", err, canon)
		}
		if key2 != key {
			t.Fatalf("key not a fixed point: %s -> %s\ncanon: %+v", key, key2, canon)
		}
		if !reflect.DeepEqual(canon, canon2) {
			t.Fatalf("canonical form not a fixed point:\nfirst:  %+v\nsecond: %+v", canon, canon2)
		}
		if req.Graph.Family == "edges" && len(req.Graph.Edges) > 1 {
			perm := req
			perm.Graph.Edges = make([][3]int64, len(req.Graph.Edges))
			for i, e := range req.Graph.Edges {
				perm.Graph.Edges[len(req.Graph.Edges)-1-i] = e
			}
			_, permKey, err := CanonicalRequest(perm, Limits{})
			if err != nil {
				t.Fatalf("edge-reversed request rejected: %v", err)
			}
			if permKey != key {
				t.Fatalf("edge order changed the key: %s vs %s", key, permKey)
			}
		}
	})
}
