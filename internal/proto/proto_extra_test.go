package proto

import (
	"sync"
	"testing"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
)

func TestKeyedSumEmptyKeys(t *testing.T) {
	g := graph.Cycle(8)
	runAll(t, g, func(nd *congest.Node) {
		ov := BuildBFS(nd, 0, 1)
		res := KeyedSum(nd, ov, 10, nil, nil)
		if len(res) != 0 {
			panic("empty key list must give empty result")
		}
	})
}

// TestConvergeItemVecMatchesSequential: the batched vector convergecast
// must compute exactly what sequential Converge/ConvergeItem waves do —
// here a sum, a min, and a max ride one wave.
func TestConvergeItemVecMatchesSequential(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"path": graph.Path(17), "grid": graph.Grid(5, 5), "star": graph.Star(9),
	} {
		var mu sync.Mutex
		var gotVec, want []Item
		stats := runAll(t, g, func(nd *congest.Node) {
			ov := BuildBFS(nd, 0, 1)
			id := int64(nd.ID())
			mine := []Item{{A: 1}, {A: id}, {A: id}}
			vec, root := ConvergeItemVec(nd, ov, 40, mine, func(slot int, a, b Item) Item {
				switch slot {
				case 0:
					return Item{A: a.A + b.A}
				case 1:
					if b.A < a.A {
						return b
					}
					return a
				default:
					if b.A > a.A {
						return b
					}
					return a
				}
			})
			s, _ := Converge(nd, ov, 50, 1, Sum)
			lo, _ := Converge(nd, ov, 51, id, Min)
			hi, _ := Converge(nd, ov, 52, id, Max)
			if root {
				mu.Lock()
				gotVec = vec
				want = []Item{{A: s}, {A: lo}, {A: hi}}
				mu.Unlock()
			}
		})
		if len(gotVec) != 3 {
			t.Fatalf("%s: root published %d slots, want 3", name, len(gotVec))
		}
		for j := range gotVec {
			if gotVec[j] != want[j] {
				t.Fatalf("%s: slot %d = %+v, want %+v", name, j, gotVec[j], want[j])
			}
		}
		if stats.Leftover != 0 {
			t.Fatalf("%s: %d leftover messages", name, stats.Leftover)
		}
	}
}

func TestGatherNoItems(t *testing.T) {
	g := graph.Grid(4, 4)
	runAll(t, g, func(nd *congest.Node) {
		ov := BuildBFS(nd, 0, 1)
		got := Gather(nd, ov, 20, nil)
		if ov.Root && len(got) != 0 {
			panic("phantom items gathered")
		}
	})
}

func TestAllGatherSingleContributor(t *testing.T) {
	g := graph.Path(12)
	var mu sync.Mutex
	counts := make([]int, g.N())
	runAll(t, g, func(nd *congest.Node) {
		ov := BuildBFS(nd, 0, 1)
		var mine []Item
		if nd.ID() == 7 {
			mine = []Item{{A: 42}}
		}
		got := AllGather(nd, ov, 30, mine)
		mu.Lock()
		counts[nd.ID()] = len(got)
		mu.Unlock()
		if len(got) != 1 || got[0].A != 42 {
			panic("single item not disseminated")
		}
	})
	for v, c := range counts {
		if c != 1 {
			t.Fatalf("node %d got %d items", v, c)
		}
	}
}

// TestAdoptWavePartialPorts: the wave must respect the given port
// subset (fragment-internal rooting uses exactly this).
func TestAdoptWavePartialPorts(t *testing.T) {
	// A cycle where the tree ports exclude the closing edge: AdoptWave
	// over the path ports from node 0.
	g := graph.Cycle(10)
	var mu sync.Mutex
	parents := make([]graph.NodeID, g.N())
	runAll(t, g, func(nd *congest.Node) {
		var ports []int
		for p := 0; p < nd.Degree(); p++ {
			peer := int(nd.Peer(p))
			me := int(nd.ID())
			// Path edges are between consecutive IDs.
			if peer == me+1 || peer == me-1 {
				ports = append(ports, p)
			}
		}
		ov := AdoptWave(nd, ports, nd.ID() == 0, 40)
		mu.Lock()
		defer mu.Unlock()
		if ov.Root {
			parents[nd.ID()] = -1
		} else {
			parents[nd.ID()] = nd.Peer(ov.ParentPort)
		}
	})
	for v := 1; v < g.N(); v++ {
		if parents[v] != graph.NodeID(v-1) {
			t.Fatalf("node %d adopted %d, want %d", v, parents[v], v-1)
		}
	}
}

func TestConvergeItemPicksGlobalMin(t *testing.T) {
	g := graph.GNP(30, 0.2, 9)
	better := func(a, b Item) Item {
		if b.A < a.A {
			return b
		}
		return a
	}
	var mu sync.Mutex
	var rootGot Item
	runAll(t, g, func(nd *congest.Node) {
		ov := BuildBFS(nd, 0, 1)
		mine := Item{A: 1000 - int64(nd.ID()), B: int64(nd.ID())}
		got, isRoot := ConvergeItem(nd, ov, 50, mine, better)
		if isRoot {
			mu.Lock()
			rootGot = got
			mu.Unlock()
		}
	})
	if rootGot.A != 1000-29 || rootGot.B != 29 {
		t.Fatalf("root converged %+v, want min item of node 29", rootGot)
	}
}

func TestBroadcastItemFull(t *testing.T) {
	g := graph.Star(9)
	var mu sync.Mutex
	vals := make([]Item, g.N())
	runAll(t, g, func(nd *congest.Node) {
		ov := BuildBFS(nd, 0, 1)
		var it Item
		if ov.Root {
			it = Item{A: 1, B: 2, C: 3, D: 4}
		}
		got := BroadcastItem(nd, ov, 60, it)
		mu.Lock()
		vals[nd.ID()] = got
		mu.Unlock()
	})
	for v, it := range vals {
		if it != (Item{A: 1, B: 2, C: 3, D: 4}) {
			t.Fatalf("node %d got %+v", v, it)
		}
	}
}

func TestSortItemsCanonical(t *testing.T) {
	items := []Item{{A: 2}, {A: 1, B: 5}, {A: 1, B: 2, C: 9}, {A: 1, B: 2, C: 9, D: -1}}
	SortItems(items)
	for i := 1; i < len(items); i++ {
		if itemLess(items[i], items[i-1]) {
			t.Fatalf("not sorted at %d: %+v", i, items)
		}
	}
}
