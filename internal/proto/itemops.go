package proto

import "distmincut/internal/congest"

// ConvergeItem aggregates a full 4-word item up the overlay with an
// arbitrary associative, commutative combiner (typically "better of
// two candidates"). The root returns (total, true); other nodes return
// their subtree aggregate and false. O(height) rounds.
func ConvergeItem(nd *congest.Node, ov *Overlay, tag uint32, mine Item, combine func(a, b Item) Item) (Item, bool) {
	acc := mine
	for range ov.ChildPorts {
		_, m := nd.Recv(func(p int, m congest.Message) bool {
			return m.Kind == kindItem && m.Tag == tag && isChildPort(ov, p)
		})
		acc = combine(acc, Item{m.A, m.B, m.C, m.D})
	}
	if ov.Root {
		return acc, true
	}
	nd.Send(ov.ParentPort, congest.Message{Kind: kindItem, Tag: tag, A: acc.A, B: acc.B, C: acc.C, D: acc.D})
	return acc, false
}

// BroadcastItem sends one 4-word item from the root down the overlay;
// every node returns it. O(height) rounds.
func BroadcastItem(nd *congest.Node, ov *Overlay, tag uint32, it Item) Item {
	if !ov.Root {
		_, m := nd.Recv(func(p int, m congest.Message) bool {
			return m.Kind == kindItem && m.Tag == tag && p == ov.ParentPort
		})
		it = Item{m.A, m.B, m.C, m.D}
	}
	for _, c := range ov.ChildPorts {
		nd.Send(c, congest.Message{Kind: kindItem, Tag: tag, A: it.A, B: it.B, C: it.C, D: it.D})
	}
	return it
}
