package proto

import "distmincut/internal/congest"

// ConvergeItem aggregates a full 4-word item up the overlay with an
// arbitrary associative, commutative combiner (typically "better of
// two candidates"). The root returns (total, true); other nodes return
// their subtree aggregate and false. O(height) rounds.
func ConvergeItem(nd *congest.Node, ov *Overlay, tag uint32, mine Item, combine func(a, b Item) Item) (Item, bool) {
	acc := mine
	for range ov.ChildPorts {
		_, m := nd.Recv(func(p int, m congest.Message) bool {
			return m.Kind == kindItem && m.Tag == tag && isChildPort(ov, p)
		})
		acc = combine(acc, Item{m.A, m.B, m.C, m.D})
	}
	if ov.Root {
		return acc, true
	}
	nd.Send(ov.ParentPort, congest.Message{Kind: kindItem, Tag: tag, A: acc.A, B: acc.B, C: acc.C, D: acc.D})
	return acc, false
}

// ConvergeItemVec aggregates a fixed-width vector of items up the
// overlay in one pipelined wave: slot j's traffic rides tag+j, every
// edge carries the slots back to back, and a node forwards slot j as
// soon as all children delivered their slot j — so k slots cost
// O(height + k) rounds instead of the k·O(height) of k sequential
// ConvergeItem waves. This is the batching primitive behind the MST
// module's single per-iteration fragment wave (size and minimum
// outgoing edge ride together). combine is applied per slot and must be
// associative and commutative in its item arguments; mine must have the
// same (globally agreed) length at every node. The root returns the
// totals with ok=true; other nodes their subtree partials with false.
// Tags [tag, tag+len(mine)) are consumed.
func ConvergeItemVec(nd *congest.Node, ov *Overlay, tag uint32, mine []Item, combine func(slot int, a, b Item) Item) ([]Item, bool) {
	acc := append([]Item(nil), mine...)
	// One closure for the whole wave; the slot tag advances through the
	// captured variable.
	var tj uint32
	match := func(p int, m congest.Message) bool {
		return m.Kind == kindItem && m.Tag == tj && isChildPort(ov, p)
	}
	for j := range acc {
		tj = tag + uint32(j)
		for range ov.ChildPorts {
			_, m := nd.Recv(match)
			acc[j] = combine(j, acc[j], Item{m.A, m.B, m.C, m.D})
		}
		if !ov.Root {
			it := acc[j]
			nd.Send(ov.ParentPort, congest.Message{Kind: kindItem, Tag: tj, A: it.A, B: it.B, C: it.C, D: it.D})
		}
	}
	return acc, ov.Root
}

// BroadcastItem sends one 4-word item from the root down the overlay;
// every node returns it. O(height) rounds.
func BroadcastItem(nd *congest.Node, ov *Overlay, tag uint32, it Item) Item {
	if !ov.Root {
		_, m := nd.Recv(func(p int, m congest.Message) bool {
			return m.Kind == kindItem && m.Tag == tag && p == ov.ParentPort
		})
		it = Item{m.A, m.B, m.C, m.D}
	}
	for _, c := range ov.ChildPorts {
		nd.Send(c, congest.Message{Kind: kindItem, Tag: tag, A: it.A, B: it.B, C: it.C, D: it.D})
	}
	return it
}
