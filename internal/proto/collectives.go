package proto

import (
	"sort"

	"distmincut/internal/congest"
)

// Item is one pipelined stream element: four words of O(log n) bits,
// exactly one CONGEST message. Primitives never interpret the words.
type Item struct {
	A, B, C, D int64
}

func itemLess(x, y Item) bool {
	if x.A != y.A {
		return x.A < y.A
	}
	if x.B != y.B {
		return x.B < y.B
	}
	if x.C != y.C {
		return x.C < y.C
	}
	return x.D < y.D
}

// SortItems sorts items canonically (lexicographic by word).
func SortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool { return itemLess(items[i], items[j]) })
}

// Converge aggregates one word up the overlay: each node combines its
// own value with its children's aggregates and forwards to its parent.
// The root returns (total, true); everyone else returns (its own
// subtree aggregate, false). combine must be associative and
// commutative. O(height) rounds, one message per tree edge.
func Converge(nd *congest.Node, ov *Overlay, tag uint32, value int64, combine func(a, b int64) int64) (int64, bool) {
	acc := value
	for range ov.ChildPorts {
		_, m := nd.Recv(func(p int, m congest.Message) bool {
			return m.Kind == kindWord && m.Tag == tag && isChildPort(ov, p)
		})
		acc = combine(acc, m.A)
	}
	if ov.Root {
		return acc, true
	}
	nd.Send(ov.ParentPort, congest.Message{Kind: kindWord, Tag: tag, A: acc})
	return acc, false
}

// Broadcast sends one word from the root down the overlay; every node
// returns it. O(height) rounds, one message per tree edge.
func Broadcast(nd *congest.Node, ov *Overlay, tag uint32, value int64) int64 {
	if !ov.Root {
		_, m := nd.Recv(func(p int, m congest.Message) bool {
			return m.Kind == kindWord && m.Tag == tag && p == ov.ParentPort
		})
		value = m.A
	}
	for _, c := range ov.ChildPorts {
		nd.Send(c, congest.Message{Kind: kindWord, Tag: tag, A: value})
	}
	return value
}

// ConvergeBroadcast aggregates one word at the root and broadcasts the
// total back; every node returns the global aggregate. 2·height rounds.
// Tags tag and tag+1 are both used.
func ConvergeBroadcast(nd *congest.Node, ov *Overlay, tag uint32, value int64, combine func(a, b int64) int64) int64 {
	total, _ := Converge(nd, ov, tag, value, combine)
	return Broadcast(nd, ov, tag+1, total)
}

// Sum, Min and Max are the standard combiners.
func Sum(a, b int64) int64 { return a + b }
func Min(a, b int64) int64 {
	if b < a {
		return b
	}
	return a
}
func Max(a, b int64) int64 {
	if b > a {
		return b
	}
	return a
}

// Gather streams every node's items to the root (upcast). Items flow up
// concurrently on all tree paths; each edge carries its subtree's items
// followed by one end marker, so the whole gather takes O(height + k)
// rounds for k total items. The root returns all items (unsorted);
// other nodes return nil.
func Gather(nd *congest.Node, ov *Overlay, tag uint32, mine []Item) []Item {
	var collected []Item
	if ov.Root {
		collected = append(collected, mine...)
	} else {
		for _, it := range mine {
			nd.Send(ov.ParentPort, congest.Message{Kind: kindItem, Tag: tag, A: it.A, B: it.B, C: it.C, D: it.D})
		}
	}
	match := func(p int, m congest.Message) bool {
		return (m.Kind == kindItem || m.Kind == kindEnd) && m.Tag == tag && isChildPort(ov, p)
	}
	for ended := 0; ended < len(ov.ChildPorts); {
		_, m := nd.Recv(match)
		if m.Kind == kindEnd {
			ended++
			continue
		}
		if ov.Root {
			collected = append(collected, Item{m.A, m.B, m.C, m.D})
		} else {
			m.Kind = kindItem
			nd.Send(ov.ParentPort, m)
		}
	}
	if !ov.Root {
		nd.Send(ov.ParentPort, congest.Message{Kind: kindEnd, Tag: tag})
		return nil
	}
	return collected
}

// Flood streams items from the root down to every node (downcast with
// pipelining): O(height + k) rounds. The root passes the items; every
// node returns the full list in the root's order.
func Flood(nd *congest.Node, ov *Overlay, tag uint32, items []Item) []Item {
	if ov.Root {
		for _, c := range ov.ChildPorts {
			for _, it := range items {
				nd.Send(c, congest.Message{Kind: kindItem, Tag: tag, A: it.A, B: it.B, C: it.C, D: it.D})
			}
			nd.Send(c, congest.Message{Kind: kindEnd, Tag: tag})
		}
		return items
	}
	var got []Item
	// One closure for the whole stream: allocating it per item made
	// Flood the pipeline's top allocator at the million scale.
	match := func(p int, m congest.Message) bool {
		return (m.Kind == kindItem || m.Kind == kindEnd) && m.Tag == tag && p == ov.ParentPort
	}
	for {
		_, m := nd.Recv(match)
		if m.Kind == kindEnd {
			break
		}
		got = append(got, Item{m.A, m.B, m.C, m.D})
		for _, c := range ov.ChildPorts {
			nd.Send(c, m)
		}
	}
	for _, c := range ov.ChildPorts {
		nd.Send(c, congest.Message{Kind: kindEnd, Tag: tag})
	}
	return got
}

// AllGather gathers every node's items at the root, sorts them
// canonically, and floods the sorted list back down; every node returns
// the identical global list. O(height + k) rounds; uses tags tag and
// tag+1. This is the paper's recurring "broadcast ... to the whole
// network" step (inter-fragment edges, fragment degrees, merging nodes,
// T'_F edges), always with k = O(√n) items.
func AllGather(nd *congest.Node, ov *Overlay, tag uint32, mine []Item) []Item {
	all := Gather(nd, ov, tag, mine)
	if ov.Root {
		SortItems(all)
	}
	return Flood(nd, ov, tag+1, all)
}

// KeyedSum computes, for a globally known sorted key list, the sum over
// all nodes of each node's value for that key, and returns the full
// (key -> total) map at every node. Slot j (the j-th key) is combined
// up the tree in pipelined fashion: a node forwards slot j as soon as
// all children delivered their slot j, so the whole aggregation takes
// O(height + k) rounds, not O(height · k). Tags tag and tag+1 are used.
//
// This implements the paper's Step 5(i): "count the number of messages
// of the form <v> for every merging node v by computing the sum along
// the breadth-first search tree" — the keys are the merging-node IDs,
// known network-wide after Step 4.
func KeyedSum(nd *congest.Node, ov *Overlay, tag uint32, keys []int64, mine map[int64]int64) map[int64]int64 {
	sums := make([]int64, len(keys))
	for j, k := range keys {
		sums[j] = mine[k]
	}
	// Children's slots arrive in order on each port (FIFO); consume
	// slot j from every child, then emit slot j upward. The predicate
	// reads the current (slot, port) through captured variables so one
	// closure serves every receive.
	var slot int64
	var port int
	match := func(p int, m congest.Message) bool {
		return m.Kind == kindSlot && m.Tag == tag && p == port && m.A == slot
	}
	for j := range keys {
		slot = int64(j)
		for _, c := range ov.ChildPorts {
			port = c
			_, m := nd.Recv(match)
			sums[j] += m.B
		}
		if !ov.Root {
			nd.Send(ov.ParentPort, congest.Message{Kind: kindSlot, Tag: tag, A: int64(j), B: sums[j]})
		}
	}
	// Root floods the totals; everyone assembles the map.
	items := make([]Item, 0, len(keys))
	if ov.Root {
		for j, k := range keys {
			items = append(items, Item{A: k, B: sums[j]})
		}
	}
	out := Flood(nd, ov, tag+1, items)
	res := make(map[int64]int64, len(out))
	for _, it := range out {
		res[it.A] = it.B
	}
	return res
}

func isChildPort(ov *Overlay, p int) bool {
	// ChildPorts is sorted and small; binary search keeps predicate
	// evaluation cheap for the coordinator.
	i := sort.SearchInts(ov.ChildPorts, p)
	return i < len(ov.ChildPorts) && ov.ChildPorts[i] == p
}
