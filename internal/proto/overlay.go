// Package proto implements the distributed building blocks the paper's
// pipeline is assembled from, as reusable CONGEST protocols over rooted
// tree overlays: BFS-tree construction, tree rooting (adopt waves),
// convergecast and broadcast of single words, pipelined gather/flood of
// item streams with end markers, and slot-pipelined keyed aggregation.
//
// Every primitive is event-driven: nodes learn completion from explicit
// end markers or exact message counts, never from global round numbers,
// so primitives compose sequentially without global synchronization.
// Each invocation takes a caller-chosen tag; concurrent or consecutive
// instances with distinct tags never confuse each other's traffic.
//
// Round costs (h = overlay height, k = item count): BuildBFS O(D);
// AdoptWave O(h); Converge/Broadcast O(h); Gather/Flood/AllGather
// O(h + k); KeyedSum O(h + k). These are exactly the costs the paper
// charges for its "upcast"/"broadcast"/"pipelined" steps.
package proto

import (
	"sort"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
)

// Message kinds used by this package. Values are package-scoped
// constants; other packages use their own kind ranges (see respect,
// mst) so cross-package traffic is distinguishable in traces.
const (
	kindExplore uint8 = 0x10 + iota // BFS expansion, A = distance
	kindClaim                       // BFS child claim
	kindDecline                     // BFS non-child notice
	kindAdopt                       // tree rooting wave, A = depth
	kindWord                        // single-word converge/broadcast payload
	kindItem                        // stream item (payload = 4 words)
	kindEnd                         // stream end marker, A = item count sent
	kindSlot                        // keyed-sum slot, A = slot index, B = sum
)

// Overlay is one node's local view of a rooted tree: the port toward
// its parent (-1 at the root), the ports toward its children, and its
// depth. An overlay may span the whole network (BFS tree, spanning
// tree) or one fragment of a partition; all primitives work on either.
type Overlay struct {
	Root       bool
	ParentPort int
	ChildPorts []int
	Depth      int
}

// NewOverlay builds an overlay locally when the node already knows its
// parent port and child ports (e.g. after the MST module has oriented
// tree edges).
func NewOverlay(parentPort int, childPorts []int, depth int) *Overlay {
	ov := &Overlay{
		Root:       parentPort < 0,
		ParentPort: parentPort,
		ChildPorts: append([]int(nil), childPorts...),
		Depth:      depth,
	}
	sort.Ints(ov.ChildPorts)
	return ov
}

// BuildBFS constructs a breadth-first spanning tree of the whole
// network rooted at root, in O(D) rounds. Every node returns its
// overlay; ties between equidistant parents break toward the lowest
// port (hence lowest neighbor ID, by sorted adjacency). Exactly one
// message is consumed per incident edge, so no traffic is left over.
func BuildBFS(nd *congest.Node, root graph.NodeID, tag uint32) *Overlay {
	mark := nd.ID() == root // the root records the phase span for observability
	if mark {
		nd.Mark("begin:bfs")
	}
	ov := &Overlay{ParentPort: -1}
	responded := make([]bool, nd.Degree()) // ports we already answered/sent on
	if nd.ID() == root {
		ov.Root = true
		for p := 0; p < nd.Degree(); p++ {
			nd.Send(p, congest.Message{Kind: kindExplore, Tag: tag, A: 0})
		}
	} else {
		// Adopt the first explorer; same-round explorers are already
		// buffered, so drain them to pick the lowest port.
		p, m := nd.Recv(congest.MatchKindTag(kindExplore, tag))
		ov.ParentPort = p
		ov.Depth = int(m.A) + 1
		responded[p] = true
		for {
			q, _, ok := nd.TryRecv(congest.MatchKindTag(kindExplore, tag))
			if !ok {
				break
			}
			responded[q] = true // same round, equidistant: not our child
			if q < ov.ParentPort {
				ov.ParentPort = q
			}
		}
		nd.Send(ov.ParentPort, congest.Message{Kind: kindClaim, Tag: tag})
		for p := 0; p < nd.Degree(); p++ {
			if p != ov.ParentPort && !responded[p] {
				nd.Send(p, congest.Message{Kind: kindExplore, Tag: tag, A: int64(ov.Depth)})
			} else if p != ov.ParentPort {
				// Equidistant neighbor: tell it we are not its child.
				nd.Send(p, congest.Message{Kind: kindDecline, Tag: tag})
			}
		}
	}
	// Consume exactly one closing message per remaining port: a CLAIM
	// (child), a DECLINE (a deeper neighbor that chose another parent),
	// or an EXPLORE (an equidistant neighbor; consumed, never answered —
	// our own explore to it closes its accounting symmetrically). Every
	// edge thus carries exactly one message each way and nothing is left
	// over.
	expect := nd.Degree()
	got := 0
	if !ov.Root {
		expect-- // parent port's explore was consumed during adoption
		for p := range responded {
			if responded[p] && p != ov.ParentPort {
				got++ // non-chosen parent candidate: explore already consumed
			}
		}
	}
	match := func(_ int, m congest.Message) bool {
		if m.Tag != tag {
			return false
		}
		return m.Kind == kindClaim || m.Kind == kindDecline || m.Kind == kindExplore
	}
	for got < expect {
		p, m := nd.Recv(match)
		got++
		if m.Kind == kindClaim {
			ov.ChildPorts = append(ov.ChildPorts, p)
		}
	}
	sort.Ints(ov.ChildPorts)
	if mark {
		nd.Mark("end:bfs")
	}
	return ov
}

// AdoptWave roots a known tree: every node knows which of its ports are
// tree edges (treePorts) and whether it is the root. The root floods an
// adopt message over tree edges; each node's parent is the port the
// wave arrived on and its children are all other tree ports. Takes
// O(tree depth) rounds; used inside fragments (depth O(√n)) and on
// small overlays, never on the full spanning tree.
func AdoptWave(nd *congest.Node, treePorts []int, isRoot bool, tag uint32) *Overlay {
	ov := &Overlay{ParentPort: -1, Root: isRoot}
	if isRoot {
		for _, p := range treePorts {
			nd.Send(p, congest.Message{Kind: kindAdopt, Tag: tag, A: 0})
			ov.ChildPorts = append(ov.ChildPorts, p)
		}
		sort.Ints(ov.ChildPorts)
		return ov
	}
	inTree := make(map[int]bool, len(treePorts))
	for _, p := range treePorts {
		inTree[p] = true
	}
	p, m := nd.Recv(func(p int, m congest.Message) bool {
		return m.Kind == kindAdopt && m.Tag == tag && inTree[p]
	})
	ov.ParentPort = p
	ov.Depth = int(m.A) + 1
	for _, q := range treePorts {
		if q != p {
			nd.Send(q, congest.Message{Kind: kindAdopt, Tag: tag, A: int64(ov.Depth)})
			ov.ChildPorts = append(ov.ChildPorts, q)
		}
	}
	sort.Ints(ov.ChildPorts)
	return ov
}
