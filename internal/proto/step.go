package proto

import (
	"sort"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
)

// This file holds the compiled (step-machine) forms of the package's
// protocols: BuildBFS and the collectives Flood, KeyedSum,
// ConvergeItemVec, and ConvergeBroadcast re-expressed as
// congest.StepPrograms that the engine drives as shard-parallel loops
// over per-node state slabs (see congest.StepProgram). Each step form
// reproduces its blocking twin's activation structure exactly — same
// sends, same park predicates, same park points — so for the same
// graph, seed, and options the two produce bit-identical Stats, marks,
// and results. The differential suite in step_diff_test.go asserts
// exactly that for every program in this file, across all generator
// families and execution configurations.
//
// Step collectives read each node's overlay through an OverlaySource:
// either the StepBFS that just built it (chained with
// congest.NewStepSeq, entering the collective within the same
// activation BFS finishes on that node — just as the blocking drivers
// fall through from BuildBFS into a collective) or a FixedOverlays slab
// for precomputed trees.

// OverlaySource provides each node's rooted-tree overlay to a step
// collective. Implementations must be safe for concurrent NodeOverlay
// calls on distinct IDs.
type OverlaySource interface {
	NodeOverlay(id graph.NodeID) *Overlay
}

// FixedOverlays adapts a precomputed per-node overlay slab (indexed by
// node ID) as an OverlaySource.
type FixedOverlays []*Overlay

// NodeOverlay returns the overlay of node id.
func (f FixedOverlays) NodeOverlay(id graph.NodeID) *Overlay { return f[id] }

// ---------------------------------------------------------------------
// StepBFS

type stepBFSPhase uint8

const (
	bfsStart    stepBFSPhase = iota // not yet activated
	bfsAwait                        // non-root awaiting its first explore
	bfsClosing                      // consuming one closing message per remaining port
	bfsFinished                     // overlay complete
)

type stepBFSState struct {
	pc          stepBFSPhase
	ov          *Overlay
	responded   []bool
	expect, got int
	match       congest.MatchFunc // predicate of the current phase
}

// StepBFS is the compiled form of BuildBFS: a breadth-first spanning
// tree rooted at Root in O(D) rounds, with the same adoption rule
// (first explorer wins, same-round ties to the lowest port), the same
// exact per-edge message accounting, and the same begin:/end: bfs marks
// from the root. After a run, NodeOverlay returns each node's overlay,
// so a StepBFS doubles as the OverlaySource for the collectives chained
// after it.
type StepBFS struct {
	root graph.NodeID
	tag  uint32
	st   []stepBFSState
}

// NewStepBFS returns a BFS-tree builder rooted at root using tag.
func NewStepBFS(root graph.NodeID, tag uint32) *StepBFS {
	return &StepBFS{root: root, tag: tag}
}

// InitRun resets the per-node state slab.
func (b *StepBFS) InitRun(n int) {
	if cap(b.st) < n {
		b.st = make([]stepBFSState, n)
	} else {
		b.st = b.st[:n]
		for i := range b.st {
			b.st[i] = stepBFSState{}
		}
	}
}

// NodeOverlay returns node id's overlay; valid once that node's BFS
// phase finished (in a StepSeq chain, any time a later sub-program
// runs).
func (b *StepBFS) NodeOverlay(id graph.NodeID) *Overlay { return b.st[id].ov }

// Step advances one node's BFS state machine.
func (b *StepBFS) Step(nd *congest.Node) congest.Park {
	st := &b.st[nd.ID()]
	for {
		switch st.pc {
		case bfsStart:
			if nd.ID() == b.root {
				nd.Mark("begin:bfs")
			}
			st.ov = &Overlay{ParentPort: -1}
			st.responded = make([]bool, nd.Degree())
			if nd.ID() == b.root {
				st.ov.Root = true
				for p := 0; p < nd.Degree(); p++ {
					nd.Send(p, congest.Message{Kind: kindExplore, Tag: b.tag, A: 0})
				}
				b.enterClosing(nd, st)
				continue
			}
			st.match = congest.MatchKindTag(kindExplore, b.tag)
			st.pc = bfsAwait
			continue
		case bfsAwait:
			p, m, ok := nd.StepRecv(st.match)
			if !ok {
				return congest.ParkRecv(st.match)
			}
			// Adopt the first explorer; same-round explorers are already
			// buffered, so drain them to pick the lowest port.
			st.ov.ParentPort = p
			st.ov.Depth = int(m.A) + 1
			st.responded[p] = true
			for {
				q, _, ok := nd.TryRecv(congest.MatchKindTag(kindExplore, b.tag))
				if !ok {
					break
				}
				st.responded[q] = true // same round, equidistant: not our child
				if q < st.ov.ParentPort {
					st.ov.ParentPort = q
				}
			}
			nd.Send(st.ov.ParentPort, congest.Message{Kind: kindClaim, Tag: b.tag})
			for p := 0; p < nd.Degree(); p++ {
				if p != st.ov.ParentPort && !st.responded[p] {
					nd.Send(p, congest.Message{Kind: kindExplore, Tag: b.tag, A: int64(st.ov.Depth)})
				} else if p != st.ov.ParentPort {
					// Equidistant neighbor: tell it we are not its child.
					nd.Send(p, congest.Message{Kind: kindDecline, Tag: b.tag})
				}
			}
			b.enterClosing(nd, st)
			continue
		case bfsClosing:
			for st.got < st.expect {
				p, m, ok := nd.StepRecv(st.match)
				if !ok {
					return congest.ParkRecv(st.match)
				}
				st.got++
				if m.Kind == kindClaim {
					st.ov.ChildPorts = append(st.ov.ChildPorts, p)
				}
			}
			sort.Ints(st.ov.ChildPorts)
			if nd.ID() == b.root {
				nd.Mark("end:bfs")
			}
			st.pc = bfsFinished
			return congest.ParkDone()
		default:
			return congest.ParkDone()
		}
	}
}

// enterClosing sets up the closing phase: consume exactly one message
// per remaining port — a CLAIM (child), a DECLINE (a deeper neighbor
// that chose another parent), or an EXPLORE (an equidistant neighbor) —
// the same exact accounting as the blocking BuildBFS.
func (b *StepBFS) enterClosing(nd *congest.Node, st *stepBFSState) {
	st.expect = nd.Degree()
	st.got = 0
	if !st.ov.Root {
		st.expect-- // parent port's explore was consumed during adoption
		for p := range st.responded {
			if st.responded[p] && p != st.ov.ParentPort {
				st.got++ // non-chosen parent candidate: explore already consumed
			}
		}
	}
	tag := b.tag
	st.match = func(_ int, m congest.Message) bool {
		if m.Tag != tag {
			return false
		}
		return m.Kind == kindClaim || m.Kind == kindDecline || m.Kind == kindExplore
	}
	st.pc = bfsClosing
}

// ---------------------------------------------------------------------
// floodCore: the streaming flood state machine shared by StepFlood and
// StepKeyedSum's distribution phase.

type floodCore struct {
	inited bool
	done   bool
	match  congest.MatchFunc
	got    []Item
}

// step advances the flood by one activation: the root sends its whole
// stream (items then end marker, per child) and finishes immediately;
// every other node consumes its parent's stream, forwarding each item
// and finally the end marker to its children — exactly the blocking
// Flood. Returns done=true when the node's flood is complete (fc.got
// then holds the stream); otherwise the Park to return.
func (fc *floodCore) step(nd *congest.Node, ov *Overlay, tag uint32, rootItems []Item) (congest.Park, bool) {
	if !fc.inited {
		fc.inited = true
		if ov.Root {
			for _, c := range ov.ChildPorts {
				for _, it := range rootItems {
					nd.Send(c, congest.Message{Kind: kindItem, Tag: tag, A: it.A, B: it.B, C: it.C, D: it.D})
				}
				nd.Send(c, congest.Message{Kind: kindEnd, Tag: tag})
			}
			fc.got = rootItems
			fc.done = true
			return congest.Park{}, true
		}
		pp := ov.ParentPort
		fc.match = func(p int, m congest.Message) bool {
			return (m.Kind == kindItem || m.Kind == kindEnd) && m.Tag == tag && p == pp
		}
	}
	for {
		_, m, ok := nd.StepRecv(fc.match)
		if !ok {
			return congest.ParkRecv(fc.match), false
		}
		if m.Kind == kindEnd {
			for _, c := range ov.ChildPorts {
				nd.Send(c, congest.Message{Kind: kindEnd, Tag: tag})
			}
			fc.done = true
			return congest.Park{}, true
		}
		fc.got = append(fc.got, Item{m.A, m.B, m.C, m.D})
		for _, c := range ov.ChildPorts {
			nd.Send(c, m)
		}
	}
}

// StepFlood is the compiled form of Flood: the root's item stream is
// pipelined down the overlay in O(height + k) rounds; after the run
// Got returns each node's received list (the root's own items at the
// root), matching the blocking Flood's return value per node.
type StepFlood struct {
	src   OverlaySource
	tag   uint32
	items []Item // the root's stream
	st    []floodCore
}

// NewStepFlood returns a flood of items (the root's stream) over the
// overlays of src using tag.
func NewStepFlood(src OverlaySource, tag uint32, items []Item) *StepFlood {
	return &StepFlood{src: src, tag: tag, items: items}
}

// InitRun resets the per-node state slab.
func (f *StepFlood) InitRun(n int) {
	if cap(f.st) < n {
		f.st = make([]floodCore, n)
	} else {
		f.st = f.st[:n]
		for i := range f.st {
			f.st[i] = floodCore{}
		}
	}
}

// Step advances one node's flood.
func (f *StepFlood) Step(nd *congest.Node) congest.Park {
	park, done := f.st[nd.ID()].step(nd, f.src.NodeOverlay(nd.ID()), f.tag, f.items)
	if !done {
		return park
	}
	return congest.ParkDone()
}

// Got returns the stream node id received (the root's own items at the
// root), valid once that node's flood finished.
func (f *StepFlood) Got(id graph.NodeID) []Item { return f.st[id].got }

// ---------------------------------------------------------------------
// StepConvergeBroadcast

type cbPhase uint8

const (
	cbStart cbPhase = iota
	cbConverge
	cbAwaitBcast
	cbFinished
)

type cbState struct {
	pc    cbPhase
	need  int // children still to deliver their aggregate
	acc   int64
	total int64
	match congest.MatchFunc
}

// StepConvergeBroadcast is the compiled form of ConvergeBroadcast: one
// word per node is aggregated at the root and the total broadcast back
// in 2·height rounds, tags tag and tag+1. value provides each node's
// input (called once per node per run); combine must be associative
// and commutative. After the run, Total returns the global aggregate
// (identical at every node).
type StepConvergeBroadcast struct {
	src     OverlaySource
	tag     uint32
	value   func(nd *congest.Node) int64
	combine func(a, b int64) int64
	st      []cbState
}

// NewStepConvergeBroadcast returns a converge+broadcast of each node's
// value over the overlays of src using tags tag and tag+1.
func NewStepConvergeBroadcast(src OverlaySource, tag uint32, value func(nd *congest.Node) int64, combine func(a, b int64) int64) *StepConvergeBroadcast {
	return &StepConvergeBroadcast{src: src, tag: tag, value: value, combine: combine}
}

// InitRun resets the per-node state slab.
func (c *StepConvergeBroadcast) InitRun(n int) {
	if cap(c.st) < n {
		c.st = make([]cbState, n)
	} else {
		c.st = c.st[:n]
		for i := range c.st {
			c.st[i] = cbState{}
		}
	}
}

// Total returns the global aggregate as seen by node id, valid once
// that node finished.
func (c *StepConvergeBroadcast) Total(id graph.NodeID) int64 { return c.st[id].total }

// Step advances one node's converge+broadcast.
func (c *StepConvergeBroadcast) Step(nd *congest.Node) congest.Park {
	st := &c.st[nd.ID()]
	ov := c.src.NodeOverlay(nd.ID())
	for {
		switch st.pc {
		case cbStart:
			st.acc = c.value(nd)
			st.need = len(ov.ChildPorts)
			tag := c.tag
			st.match = func(p int, m congest.Message) bool {
				return m.Kind == kindWord && m.Tag == tag && isChildPort(ov, p)
			}
			st.pc = cbConverge
			continue
		case cbConverge:
			for st.need > 0 {
				_, m, ok := nd.StepRecv(st.match)
				if !ok {
					return congest.ParkRecv(st.match)
				}
				st.acc = c.combine(st.acc, m.A)
				st.need--
			}
			if ov.Root {
				st.total = st.acc
				for _, p := range ov.ChildPorts {
					nd.Send(p, congest.Message{Kind: kindWord, Tag: c.tag + 1, A: st.total})
				}
				st.pc = cbFinished
				return congest.ParkDone()
			}
			nd.Send(ov.ParentPort, congest.Message{Kind: kindWord, Tag: c.tag, A: st.acc})
			bt := c.tag + 1
			pp := ov.ParentPort
			st.match = func(p int, m congest.Message) bool {
				return m.Kind == kindWord && m.Tag == bt && p == pp
			}
			st.pc = cbAwaitBcast
			continue
		case cbAwaitBcast:
			_, m, ok := nd.StepRecv(st.match)
			if !ok {
				return congest.ParkRecv(st.match)
			}
			st.total = m.A
			for _, p := range ov.ChildPorts {
				nd.Send(p, congest.Message{Kind: kindWord, Tag: c.tag + 1, A: st.total})
			}
			st.pc = cbFinished
			return congest.ParkDone()
		default:
			return congest.ParkDone()
		}
	}
}

// ---------------------------------------------------------------------
// StepConvergeItemVec

type civState struct {
	started bool
	acc     []Item
	j       int // current slot
	left    int // children still to deliver slot j
	tj      uint32
	match   congest.MatchFunc
}

// StepConvergeItemVec is the compiled form of ConvergeItemVec: a
// fixed-width item vector aggregated up the overlay in one pipelined
// wave (slot j rides tag+j), O(height + k) rounds. mine provides each
// node's vector (same globally agreed length everywhere); combine is
// applied per slot. After the run, Acc returns a node's subtree
// partials — the global totals at the root — matching the blocking
// twin's return value per node.
type StepConvergeItemVec struct {
	src     OverlaySource
	tag     uint32
	mine    func(nd *congest.Node) []Item
	combine func(slot int, a, b Item) Item
	st      []civState
}

// NewStepConvergeItemVec returns a pipelined item-vector convergecast
// over the overlays of src; tags [tag, tag+len(mine)) are consumed.
func NewStepConvergeItemVec(src OverlaySource, tag uint32, mine func(nd *congest.Node) []Item, combine func(slot int, a, b Item) Item) *StepConvergeItemVec {
	return &StepConvergeItemVec{src: src, tag: tag, mine: mine, combine: combine}
}

// InitRun resets the per-node state slab.
func (c *StepConvergeItemVec) InitRun(n int) {
	if cap(c.st) < n {
		c.st = make([]civState, n)
	} else {
		c.st = c.st[:n]
		for i := range c.st {
			c.st[i] = civState{}
		}
	}
}

// Acc returns node id's aggregated vector (its subtree partials; the
// global totals at the root), valid once that node finished.
func (c *StepConvergeItemVec) Acc(id graph.NodeID) []Item { return c.st[id].acc }

// Step advances one node's vector convergecast.
func (c *StepConvergeItemVec) Step(nd *congest.Node) congest.Park {
	st := &c.st[nd.ID()]
	ov := c.src.NodeOverlay(nd.ID())
	if !st.started {
		st.started = true
		st.acc = append([]Item(nil), c.mine(nd)...)
		st.j = 0
		st.left = len(ov.ChildPorts)
		st.tj = c.tag
		st.match = func(p int, m congest.Message) bool {
			return m.Kind == kindItem && m.Tag == st.tj && isChildPort(ov, p)
		}
	}
	for st.j < len(st.acc) {
		for st.left > 0 {
			_, m, ok := nd.StepRecv(st.match)
			if !ok {
				return congest.ParkRecv(st.match)
			}
			st.acc[st.j] = c.combine(st.j, st.acc[st.j], Item{m.A, m.B, m.C, m.D})
			st.left--
		}
		if !ov.Root {
			it := st.acc[st.j]
			nd.Send(ov.ParentPort, congest.Message{Kind: kindItem, Tag: st.tj, A: it.A, B: it.B, C: it.C, D: it.D})
		}
		st.j++
		st.tj = c.tag + uint32(st.j)
		st.left = len(ov.ChildPorts)
	}
	return congest.ParkDone()
}

// ---------------------------------------------------------------------
// StepKeyedSum

type ksPhase uint8

const (
	ksStart ksPhase = iota
	ksSlots
	ksFlood
	ksFinished
)

type ksState struct {
	pc    ksPhase
	sums  []int64
	j     int // current slot
	ci    int // index into ChildPorts for slot j
	port  int // the child port currently awaited
	match congest.MatchFunc
	items []Item // root only: the totals to flood
	fc    floodCore
	res   map[int64]int64
}

// StepKeyedSum is the compiled form of KeyedSum: for a globally known
// sorted key list, the per-key sums over all nodes are combined up the
// tree slot-pipelined (O(height + k) rounds) and the totals flooded
// back; tags tag and tag+1 are used. mine provides each node's
// (key -> value) map. After the run, Sums returns the full totals map
// at every node.
type StepKeyedSum struct {
	src  OverlaySource
	tag  uint32
	keys []int64
	mine func(nd *congest.Node) map[int64]int64
	st   []ksState
}

// NewStepKeyedSum returns a keyed aggregation of each node's map over
// the overlays of src using tags tag and tag+1.
func NewStepKeyedSum(src OverlaySource, tag uint32, keys []int64, mine func(nd *congest.Node) map[int64]int64) *StepKeyedSum {
	return &StepKeyedSum{src: src, tag: tag, keys: keys, mine: mine}
}

// InitRun resets the per-node state slab.
func (c *StepKeyedSum) InitRun(n int) {
	if cap(c.st) < n {
		c.st = make([]ksState, n)
	} else {
		c.st = c.st[:n]
		for i := range c.st {
			c.st[i] = ksState{}
		}
	}
}

// Sums returns the (key -> total) map as seen by node id, valid once
// that node finished.
func (c *StepKeyedSum) Sums(id graph.NodeID) map[int64]int64 { return c.st[id].res }

// Step advances one node's keyed sum.
func (c *StepKeyedSum) Step(nd *congest.Node) congest.Park {
	st := &c.st[nd.ID()]
	ov := c.src.NodeOverlay(nd.ID())
	for {
		switch st.pc {
		case ksStart:
			mine := c.mine(nd)
			st.sums = make([]int64, len(c.keys))
			for j, k := range c.keys {
				st.sums[j] = mine[k]
			}
			// Children's slots arrive in order on each port (FIFO):
			// consume slot j from every child in child-port order, then
			// emit slot j upward — the same receive discipline as the
			// blocking KeyedSum, with the predicate reading the current
			// (slot, port) through the state it is stored next to.
			tag := c.tag
			st.match = func(p int, m congest.Message) bool {
				return m.Kind == kindSlot && m.Tag == tag && p == st.port && m.A == int64(st.j)
			}
			st.pc = ksSlots
			continue
		case ksSlots:
			for st.j < len(c.keys) {
				for st.ci < len(ov.ChildPorts) {
					st.port = ov.ChildPorts[st.ci]
					_, m, ok := nd.StepRecv(st.match)
					if !ok {
						return congest.ParkRecv(st.match)
					}
					st.sums[st.j] += m.B
					st.ci++
				}
				if !ov.Root {
					nd.Send(ov.ParentPort, congest.Message{Kind: kindSlot, Tag: c.tag, A: int64(st.j), B: st.sums[st.j]})
				}
				st.j++
				st.ci = 0
			}
			// Root floods the totals; everyone assembles the map.
			st.items = make([]Item, 0, len(c.keys))
			if ov.Root {
				for j, k := range c.keys {
					st.items = append(st.items, Item{A: k, B: st.sums[j]})
				}
			}
			st.pc = ksFlood
			continue
		case ksFlood:
			park, done := st.fc.step(nd, ov, c.tag+1, st.items)
			if !done {
				return park
			}
			out := st.fc.got
			st.res = make(map[int64]int64, len(out))
			for _, it := range out {
				st.res[it.A] = it.B
			}
			st.pc = ksFinished
			return congest.ParkDone()
		default:
			return congest.ParkDone()
		}
	}
}
