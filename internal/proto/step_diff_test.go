package proto

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
)

// This file is the protocol half of the differential determinism layer:
// every step-compiled protocol (StepBFS and the step collectives) is
// run against its blocking twin on the same graphs, seeds, and engine
// configurations, and the two executions must agree bit-for-bit — same
// Stats, same mark stream, same overlays, same per-node results. The
// engine-level half (dual-path chatter/exchange programs) lives in
// internal/congest/determinism_test.go.

// diffFamilies are the generator families both paths are exercised on:
// high diameter (path), low diameter (expander), clustered
// (community), and dense (complete).
func diffFamilies() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":      graph.Path(64),
		"expander":  graph.RandomRegular(64, 6, 11),
		"community": graph.PlantedCut(24, 24, 4, 0.2, 11),
		"complete":  graph.Complete(16),
	}
}

// diffConfigs are the engine configurations each family runs under:
// serial, parallel wake scan, and sharded delivery.
func diffConfigs() map[string]congest.Options {
	return map[string]congest.Options{
		"serial":  {Seed: 5, DeliveryShards: -1},
		"workers": {Seed: 5, Workers: 2, DeliveryShards: -1},
		"shards":  {Seed: 5, DeliveryShards: 3},
	}
}

// statsFingerprint is the deterministic portion of a run's Stats plus
// its normalized mark stream: everything except clock readings.
type statsFingerprint struct {
	Rounds     int
	Sent       int64
	Delivered  int64
	Wakeups    int64
	Leftover   int64
	DirtyNodes int
	Marks      string
}

func fingerprintOf(s *congest.Stats) statsFingerprint {
	marks := append([]congest.Mark(nil), s.Marks...)
	// Marks recorded in the same round by different nodes may be
	// appended in either order under parallel wake scans; canonicalize
	// by (round, node) and drop the wall-clock field.
	sort.SliceStable(marks, func(i, j int) bool {
		if marks[i].Round != marks[j].Round {
			return marks[i].Round < marks[j].Round
		}
		return marks[i].Node < marks[j].Node
	})
	var b []byte
	for _, m := range marks {
		b = fmt.Appendf(b, "%s@r%d/n%d/d%d;", m.Label, m.Round, m.Node, m.Delivered)
	}
	return statsFingerprint{
		Rounds:     s.Rounds,
		Sent:       s.Sent,
		Delivered:  s.Delivered,
		Wakeups:    s.Wakeups,
		Leftover:   s.Leftover,
		DirtyNodes: s.DirtyNodes,
		Marks:      string(b),
	}
}

// overlayKey renders an overlay canonically for comparison.
func overlayKey(ov *Overlay) string {
	if ov == nil {
		return "<nil>"
	}
	return fmt.Sprintf("root=%v parent=%d children=%v depth=%d", ov.Root, ov.ParentPort, ov.ChildPorts, ov.Depth)
}

// forEachCase runs fn under every family × config combination.
func forEachCase(t *testing.T, fn func(t *testing.T, g *graph.Graph, opts congest.Options)) {
	t.Helper()
	for fam, g := range diffFamilies() {
		for cfg, opts := range diffConfigs() {
			t.Run(fam+"/"+cfg, func(t *testing.T) {
				fn(t, g, opts)
			})
		}
	}
}

// runDiff executes the blocking program and the step program on the
// same graph and options and asserts their deterministic fingerprints
// are identical. It returns both runs' stats for extra assertions.
func runDiff(t *testing.T, g *graph.Graph, opts congest.Options, blocking func(*congest.Node), step congest.StepProgram) (*congest.Stats, *congest.Stats) {
	t.Helper()
	bs, err := congest.Run(g, opts, blocking)
	if err != nil {
		t.Fatalf("blocking run: %v", err)
	}
	ss, err := congest.Run(g, opts, step)
	if err != nil {
		t.Fatalf("step run: %v", err)
	}
	if bf, sf := fingerprintOf(bs), fingerprintOf(ss); bf != sf {
		t.Fatalf("step run diverged from blocking run:\n  blocking: %+v\n  step:     %+v", bf, sf)
	}
	return bs, ss
}

// TestDiffBFS: StepBFS vs BuildBFS — identical stats, marks, and
// per-node overlays on every family × config.
func TestDiffBFS(t *testing.T) {
	forEachCase(t, func(t *testing.T, g *graph.Graph, opts congest.Options) {
		var mu sync.Mutex
		blockingOv := make([]*Overlay, g.N())
		blocking := func(nd *congest.Node) {
			ov := BuildBFS(nd, 0, 1)
			mu.Lock()
			blockingOv[nd.ID()] = ov
			mu.Unlock()
		}
		bfs := NewStepBFS(0, 1)
		runDiff(t, g, opts, blocking, bfs)
		for v := 0; v < g.N(); v++ {
			if got, want := overlayKey(bfs.NodeOverlay(graph.NodeID(v))), overlayKey(blockingOv[v]); got != want {
				t.Fatalf("node %d overlay: step %q, blocking %q", v, got, want)
			}
		}
	})
}

// TestDiffFlood: BFS+Flood chained — the step pair must match the
// blocking pair exactly, including each node's received stream.
func TestDiffFlood(t *testing.T) {
	items := []Item{{A: 5, B: 50}, {A: 6, C: 60}, {A: 7, D: 70}}
	forEachCase(t, func(t *testing.T, g *graph.Graph, opts congest.Options) {
		var mu sync.Mutex
		blockingGot := make([][]Item, g.N())
		blocking := func(nd *congest.Node) {
			ov := BuildBFS(nd, 0, 1)
			var in []Item
			if ov.Root {
				in = items
			}
			out := Flood(nd, ov, 40, in)
			mu.Lock()
			blockingGot[nd.ID()] = out
			mu.Unlock()
		}
		bfs := NewStepBFS(0, 1)
		flood := NewStepFlood(bfs, 40, items)
		runDiff(t, g, opts, blocking, congest.NewStepSeq(bfs, flood))
		for v := 0; v < g.N(); v++ {
			if got, want := flood.Got(graph.NodeID(v)), blockingGot[v]; !reflect.DeepEqual(got, want) {
				t.Fatalf("node %d stream: step %v, blocking %v", v, got, want)
			}
		}
	})
}

// TestDiffConvergeBroadcast: BFS+ConvergeBroadcast chained, with every
// node's global total compared.
func TestDiffConvergeBroadcast(t *testing.T) {
	value := func(nd *congest.Node) int64 { return int64(nd.ID())*3 + 1 }
	forEachCase(t, func(t *testing.T, g *graph.Graph, opts congest.Options) {
		var mu sync.Mutex
		blockingTotal := make([]int64, g.N())
		blocking := func(nd *congest.Node) {
			ov := BuildBFS(nd, 0, 1)
			total := ConvergeBroadcast(nd, ov, 20, value(nd), Sum)
			mu.Lock()
			blockingTotal[nd.ID()] = total
			mu.Unlock()
		}
		bfs := NewStepBFS(0, 1)
		cb := NewStepConvergeBroadcast(bfs, 20, value, Sum)
		runDiff(t, g, opts, blocking, congest.NewStepSeq(bfs, cb))
		for v := 0; v < g.N(); v++ {
			if got, want := cb.Total(graph.NodeID(v)), blockingTotal[v]; got != want {
				t.Fatalf("node %d total: step %d, blocking %d", v, got, want)
			}
		}
	})
}

// TestDiffConvergeItemVec: BFS+ConvergeItemVec chained, comparing every
// node's per-slot subtree partials.
func TestDiffConvergeItemVec(t *testing.T) {
	mine := func(nd *congest.Node) []Item {
		id := int64(nd.ID())
		return []Item{{A: id, B: 1}, {A: id * id, B: 1}, {A: -id, B: 1}}
	}
	combine := func(slot int, a, b Item) Item {
		return Item{A: a.A + b.A, B: a.B + b.B, C: a.C + b.C, D: a.D + b.D}
	}
	forEachCase(t, func(t *testing.T, g *graph.Graph, opts congest.Options) {
		var mu sync.Mutex
		blockingAcc := make([][]Item, g.N())
		blocking := func(nd *congest.Node) {
			ov := BuildBFS(nd, 0, 1)
			acc, _ := ConvergeItemVec(nd, ov, 30, mine(nd), combine)
			mu.Lock()
			blockingAcc[nd.ID()] = acc
			mu.Unlock()
		}
		bfs := NewStepBFS(0, 1)
		civ := NewStepConvergeItemVec(bfs, 30, mine, combine)
		runDiff(t, g, opts, blocking, congest.NewStepSeq(bfs, civ))
		for v := 0; v < g.N(); v++ {
			if got, want := civ.Acc(graph.NodeID(v)), blockingAcc[v]; !reflect.DeepEqual(got, want) {
				t.Fatalf("node %d partials: step %v, blocking %v", v, got, want)
			}
		}
	})
}

// TestDiffKeyedSum: BFS+KeyedSum chained, comparing every node's totals
// map. KeyedSum exercises the slot-pipelined in-order child receive and
// embeds a flood, so it is the most demanding port.
func TestDiffKeyedSum(t *testing.T) {
	keys := []int64{3, 7, 11, 20}
	mine := func(nd *congest.Node) map[int64]int64 {
		m := map[int64]int64{}
		for _, k := range keys {
			if int64(nd.ID())%k == 0 {
				m[k] = int64(nd.ID()) + k
			}
		}
		return m
	}
	forEachCase(t, func(t *testing.T, g *graph.Graph, opts congest.Options) {
		var mu sync.Mutex
		blockingRes := make([]map[int64]int64, g.N())
		blocking := func(nd *congest.Node) {
			ov := BuildBFS(nd, 0, 1)
			res := KeyedSum(nd, ov, 70, keys, mine(nd))
			mu.Lock()
			blockingRes[nd.ID()] = res
			mu.Unlock()
		}
		bfs := NewStepBFS(0, 1)
		ks := NewStepKeyedSum(bfs, 70, keys, mine)
		runDiff(t, g, opts, blocking, congest.NewStepSeq(bfs, ks))
		for v := 0; v < g.N(); v++ {
			if got, want := ks.Sums(graph.NodeID(v)), blockingRes[v]; !reflect.DeepEqual(got, want) {
				t.Fatalf("node %d sums: step %v, blocking %v", v, got, want)
			}
		}
	})
}

// TestDiffFixedOverlays: step collectives also run over precomputed
// overlays (no BFS phase), matching the blocking collective run over
// the same NewOverlay-built trees.
func TestDiffFixedOverlays(t *testing.T) {
	g := graph.Path(32)
	// Orient the path as a tree rooted at node 0 by construction.
	overlays := make(FixedOverlays, g.N())
	buildOv := func(nd *congest.Node) *Overlay {
		parent, children := -1, []int(nil)
		for p := 0; p < nd.Degree(); p++ {
			if nd.Peer(p) < nd.ID() {
				parent = p
			} else {
				children = append(children, p)
			}
		}
		return NewOverlay(parent, children, int(nd.ID()))
	}
	var mu sync.Mutex
	blockingTotal := make([]int64, g.N())
	blocking := func(nd *congest.Node) {
		ov := buildOv(nd)
		mu.Lock()
		overlays[nd.ID()] = ov
		mu.Unlock()
		total := ConvergeBroadcast(nd, ov, 20, int64(nd.ID()), Sum)
		mu.Lock()
		blockingTotal[nd.ID()] = total
		mu.Unlock()
	}
	opts := congest.Options{Seed: 5}
	bs, err := congest.Run(g, opts, blocking)
	if err != nil {
		t.Fatal(err)
	}
	cb := NewStepConvergeBroadcast(overlays, 20, func(nd *congest.Node) int64 { return int64(nd.ID()) }, Sum)
	ss, err := congest.Run(g, opts, cb)
	if err != nil {
		t.Fatal(err)
	}
	if bf, sf := fingerprintOf(bs), fingerprintOf(ss); bf != sf {
		t.Fatalf("fixed-overlay step run diverged:\n  blocking: %+v\n  step:     %+v", bf, sf)
	}
	for v := 0; v < g.N(); v++ {
		if got, want := cb.Total(graph.NodeID(v)), blockingTotal[v]; got != want {
			t.Fatalf("node %d total: step %d, blocking %d", v, got, want)
		}
	}
}

// TestDiffWarmEngineRerun: a retained engine re-running a step protocol
// chain must reproduce the fresh run exactly — InitRun and the engine's
// warm-path reset leave no residue in the program state slabs.
func TestDiffWarmEngineRerun(t *testing.T) {
	g := graph.RandomRegular(64, 6, 11)
	keys := []int64{3, 7, 11, 20}
	mine := func(nd *congest.Node) map[int64]int64 {
		return map[int64]int64{keys[int(nd.ID())%len(keys)]: int64(nd.ID())}
	}
	bfs := NewStepBFS(0, 1)
	ks := NewStepKeyedSum(bfs, 70, keys, mine)
	prog := congest.NewStepSeq(bfs, ks)
	e := congest.NewEngine(congest.Options{Seed: 5})
	defer e.Close()
	var first statsFingerprint
	var firstSums map[int64]int64
	for rep := 0; rep < 3; rep++ {
		stats, err := e.Run(g, prog)
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		fp := fingerprintOf(stats)
		sums := ks.Sums(0)
		if rep == 0 {
			first, firstSums = fp, sums
			continue
		}
		if fp != first {
			t.Fatalf("rep %d fingerprint %+v != first %+v", rep, fp, first)
		}
		if !reflect.DeepEqual(sums, firstSums) {
			t.Fatalf("rep %d sums %v != first %v", rep, sums, firstSums)
		}
	}
}
