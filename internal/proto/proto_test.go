package proto

import (
	"sync"
	"testing"
	"testing/quick"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
)

// runAll executes program on every node of g and fails the test on any
// engine error or leftover traffic.
func runAll(t *testing.T, g *graph.Graph, program func(*congest.Node)) *congest.Stats {
	t.Helper()
	stats, err := congest.Run(g, congest.Options{}, program)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Leftover != 0 {
		t.Fatalf("protocol left %d unconsumed messages", stats.Leftover)
	}
	return stats
}

func TestBuildBFSMatchesSequential(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid":    graph.Grid(6, 7),
		"gnp":     graph.GNP(60, 0.1, 2),
		"cycle":   graph.Cycle(30),
		"clique":  graph.Complete(12),
		"barbell": graph.Barbell(8, 5),
		"single":  graph.Path(1),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			dist, _ := graph.BFS(g, 0)
			var mu sync.Mutex
			depth := make([]int, g.N())
			parent := make([]graph.NodeID, g.N())
			childCount := make([]int, g.N())
			stats := runAll(t, g, func(nd *congest.Node) {
				ov := BuildBFS(nd, 0, 1)
				mu.Lock()
				defer mu.Unlock()
				depth[nd.ID()] = ov.Depth
				if ov.Root {
					parent[nd.ID()] = -1
				} else {
					parent[nd.ID()] = nd.Peer(ov.ParentPort)
				}
				childCount[nd.ID()] = len(ov.ChildPorts)
			})
			totalChildren := 0
			for v := 0; v < g.N(); v++ {
				if depth[v] != dist[v] {
					t.Fatalf("node %d depth %d, BFS dist %d", v, depth[v], dist[v])
				}
				if v != 0 && dist[parent[v]] != dist[v]-1 {
					t.Fatalf("node %d parent %d not one level up", v, parent[v])
				}
				totalChildren += childCount[v]
			}
			if totalChildren != g.N()-1 {
				t.Fatalf("child links %d, want %d", totalChildren, g.N()-1)
			}
			ecc := graph.Eccentricity(g, 0)
			if g.N() > 1 && stats.Rounds > ecc+2 {
				t.Fatalf("BFS rounds %d exceed eccentricity+2 = %d", stats.Rounds, ecc+2)
			}
		})
	}
}

func TestAdoptWaveOrientsTree(t *testing.T) {
	g := graph.RandomTree(40, 9)
	var mu sync.Mutex
	parent := make([]graph.NodeID, g.N())
	runAll(t, g, func(nd *congest.Node) {
		ports := make([]int, nd.Degree())
		for p := range ports {
			ports[p] = p // every edge of a tree graph is a tree edge
		}
		ov := AdoptWave(nd, ports, nd.ID() == 0, 3)
		mu.Lock()
		defer mu.Unlock()
		if ov.Root {
			parent[nd.ID()] = -1
		} else {
			parent[nd.ID()] = nd.Peer(ov.ParentPort)
		}
	})
	dist, want := graph.BFS(g, 0)
	for v := 1; v < g.N(); v++ {
		if parent[v] != want[v] {
			t.Fatalf("node %d adopted %d, BFS parent %d (dist %d)", v, parent[v], want[v], dist[v])
		}
	}
}

func TestConvergeAndBroadcast(t *testing.T) {
	g := graph.GNP(50, 0.15, 4)
	var mu sync.Mutex
	results := make([]int64, g.N())
	runAll(t, g, func(nd *congest.Node) {
		ov := BuildBFS(nd, 0, 10)
		total := ConvergeBroadcast(nd, ov, 20, int64(nd.ID()), Sum)
		mu.Lock()
		results[nd.ID()] = total
		mu.Unlock()
	})
	want := int64(g.N()*(g.N()-1)) / 2
	for v, got := range results {
		if got != want {
			t.Fatalf("node %d got sum %d, want %d", v, got, want)
		}
	}
}

func TestConvergeMinMax(t *testing.T) {
	g := graph.Cycle(17)
	var mu sync.Mutex
	mins := make([]int64, g.N())
	maxs := make([]int64, g.N())
	runAll(t, g, func(nd *congest.Node) {
		ov := BuildBFS(nd, 0, 1)
		mn := ConvergeBroadcast(nd, ov, 100, 1000-int64(nd.ID()), Min)
		mx := ConvergeBroadcast(nd, ov, 200, 1000-int64(nd.ID()), Max)
		mu.Lock()
		mins[nd.ID()], maxs[nd.ID()] = mn, mx
		mu.Unlock()
	})
	for v := range mins {
		if mins[v] != 1000-16 || maxs[v] != 1000 {
			t.Fatalf("node %d min/max = %d/%d", v, mins[v], maxs[v])
		}
	}
}

func TestAllGatherEveryNodeSameSortedList(t *testing.T) {
	g := graph.Grid(5, 6)
	var mu sync.Mutex
	lists := make([][]Item, g.N())
	runAll(t, g, func(nd *congest.Node) {
		ov := BuildBFS(nd, 0, 1)
		var mine []Item
		// Odd nodes contribute two items, even nodes one.
		mine = append(mine, Item{A: int64(nd.ID()), B: 1})
		if nd.ID()%2 == 1 {
			mine = append(mine, Item{A: int64(nd.ID()), B: 2})
		}
		all := AllGather(nd, ov, 50, mine)
		mu.Lock()
		lists[nd.ID()] = all
		mu.Unlock()
	})
	want := len(lists[0])
	expected := g.N() + g.N()/2
	if want != expected {
		t.Fatalf("gathered %d items, want %d", want, expected)
	}
	for v := 1; v < g.N(); v++ {
		if len(lists[v]) != want {
			t.Fatalf("node %d has %d items, node 0 has %d", v, len(lists[v]), want)
		}
		for i := range lists[v] {
			if lists[v][i] != lists[0][i] {
				t.Fatalf("node %d item %d differs", v, i)
			}
		}
	}
	// Sorted canonically.
	for i := 1; i < want; i++ {
		if itemLess(lists[0][i], lists[0][i-1]) {
			t.Fatalf("AllGather result not sorted at %d", i)
		}
	}
}

func TestAllGatherPipelinedCost(t *testing.T) {
	// k items through a path of length L must take O(L + k), not O(L·k).
	g := graph.Path(40)
	const perNode = 3
	stats := runAll(t, g, func(nd *congest.Node) {
		ov := BuildBFS(nd, 0, 1)
		mine := make([]Item, perNode)
		for i := range mine {
			mine[i] = Item{A: int64(nd.ID()), B: int64(i)}
		}
		AllGather(nd, ov, 10, mine)
	})
	k := 40 * perNode
	bound := 4*(40+k) + 20
	if stats.Rounds > bound {
		t.Fatalf("AllGather on path took %d rounds, want O(L+k) <= %d", stats.Rounds, bound)
	}
}

func TestKeyedSumMatchesDirectSum(t *testing.T) {
	g := graph.GNP(45, 0.12, 8)
	keys := []int64{3, 7, 11, 20}
	var mu sync.Mutex
	results := make([]map[int64]int64, g.N())
	runAll(t, g, func(nd *congest.Node) {
		ov := BuildBFS(nd, 0, 1)
		mine := map[int64]int64{}
		for _, k := range keys {
			if int64(nd.ID())%k == 0 {
				mine[k] = int64(nd.ID()) + k
			}
		}
		got := KeyedSum(nd, ov, 70, keys, mine)
		mu.Lock()
		results[nd.ID()] = got
		mu.Unlock()
	})
	want := map[int64]int64{}
	for _, k := range keys {
		for v := 0; v < g.N(); v++ {
			if int64(v)%k == 0 {
				want[k] += int64(v) + k
			}
		}
	}
	for v := range results {
		for _, k := range keys {
			if results[v][k] != want[k] {
				t.Fatalf("node %d key %d: got %d want %d", v, k, results[v][k], want[k])
			}
		}
	}
}

// Property: Converge with Sum equals the sequential sum for random
// inputs on random graphs.
func TestConvergeSumProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%30) + 2
		g := graph.GNP(n, 0.2, seed)
		var mu sync.Mutex
		var rootTotal int64
		stats, err := congest.Run(g, congest.Options{}, func(nd *congest.Node) {
			ov := BuildBFS(nd, 0, 1)
			v, isRoot := Converge(nd, ov, 30, int64(nd.ID())*int64(nd.ID()), Sum)
			if isRoot {
				mu.Lock()
				rootTotal = v
				mu.Unlock()
			}
		})
		if err != nil || stats.Leftover != 0 {
			return false
		}
		var want int64
		for v := 0; v < n; v++ {
			want += int64(v) * int64(v)
		}
		return rootTotal == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFloodFromRootOnly(t *testing.T) {
	g := graph.Star(9)
	items := []Item{{A: 5}, {A: 6}, {A: 7}}
	var mu sync.Mutex
	counts := make([]int, g.N())
	runAll(t, g, func(nd *congest.Node) {
		ov := BuildBFS(nd, 0, 1)
		var in []Item
		if ov.Root {
			in = items
		}
		out := Flood(nd, ov, 40, in)
		mu.Lock()
		counts[nd.ID()] = len(out)
		mu.Unlock()
	})
	for v, c := range counts {
		if c != len(items) {
			t.Fatalf("node %d received %d items, want %d", v, c, len(items))
		}
	}
}
