package respect

import (
	"sync"
	"testing"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
	"distmincut/internal/partition"
	"distmincut/internal/proto"
	"distmincut/internal/tree"
)

// TestStep4MatchesSequentialSkeleton cross-checks the distributed
// Step 4 (merging nodes, T'_F) against the sequential reference
// (partition.BuildSkeleton) on externally partitioned trees.
func TestStep4MatchesSequentialSkeleton(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := graph.GNP(60, 0.1, seed)
		parentArr, parentEdge := graph.RandomSpanningTree(g, 0, seed+3)
		tr, err := tree.New(0, parentArr, parentEdge)
		if err != nil {
			t.Fatal(err)
		}
		d := partition.Split(tr, 0)
		sk := partition.BuildSkeleton(tr, d)

		parentPorts := make([]int, g.N())
		childPorts := make([][]int, g.N())
		for v := 0; v < g.N(); v++ {
			nv := graph.NodeID(v)
			parentPorts[v] = -1
			if tr.Parent(nv) >= 0 {
				parentPorts[v] = g.PortOf(nv, tr.ParentEdge(nv))
			}
			for _, c := range tr.Children(nv) {
				childPorts[v] = append(childPorts[v], g.PortOf(nv, tr.ParentEdge(c)))
			}
		}
		var mu sync.Mutex
		outs := make([]*Output, g.N())
		_, err = congest.Run(g, congest.Options{Seed: seed}, func(nd *congest.Node) {
			bfs := proto.BuildBFS(nd, 0, 1)
			in := Bootstrap(nd, bfs, parentPorts[nd.ID()], childPorts[nd.ID()], d.FragOf[nd.ID()], 50)
			out := Run(nd, in, 100)
			mu.Lock()
			outs[nd.ID()] = out
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		// Merging node lists must coincide.
		got := outs[0].MergingNodes
		want := sk.Merging
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d merging nodes distributed, %d sequential (%v vs %v)",
				seed, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: merging[%d] = %d, want %d", seed, i, got[i], want[i])
			}
		}
		// T'_F parent maps must coincide on the common membership.
		if len(outs[0].TPrime) != len(sk.Parent) {
			t.Fatalf("seed %d: |T'F| = %d distributed, %d sequential", seed, len(outs[0].TPrime), len(sk.Parent))
		}
		for v, p := range sk.Parent {
			if gp, ok := outs[0].TPrime[v]; !ok || gp != p {
				t.Fatalf("seed %d: T'F parent of %d = %d, want %d", seed, v, gp, p)
			}
		}
		// Per-node merging flags agree with the list.
		inList := map[graph.NodeID]bool{}
		for _, m := range got {
			inList[m] = true
		}
		for v := 0; v < g.N(); v++ {
			if outs[v].Merging != inList[graph.NodeID(v)] {
				t.Fatalf("seed %d: node %d merging flag %v, list %v", seed, v, outs[v].Merging, inList[graph.NodeID(v)])
			}
		}
	}
}
