package respect

import (
	"math"
	"sort"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
	"distmincut/internal/proto"
)

// interChildPorts returns the tree-child ports that cross into child
// fragments (attachment edges), i.e. ChildPorts minus FragChildPorts.
func (r *respectRun) interChildPorts() []int {
	inFrag := make(map[int]bool, len(r.in.FragChildPorts))
	for _, p := range r.in.FragChildPorts {
		inFrag[p] = true
	}
	var out []int
	for _, p := range r.in.ChildPorts {
		if !inFrag[p] {
			out = append(out, p)
		}
	}
	return out
}

// step2a makes every node know F(v): child-fragment lists are upcast
// within each fragment (pipelined, O(√n + frag diameter) rounds), then
// closed under fragment-tree descendants locally. It also records, per
// tree-child direction, whether that direction contains a fragment —
// the raw material for merging-node detection in step 4.
func (r *respectRun) step2a(out *Output) {
	nd, in := r.nd, r.in
	tag := r.tag + 0

	// Fragments directly attached below me (local knowledge).
	for _, ie := range in.InterEdges {
		if in.FragParent[ie.FragU] == ie.FragV && ie.V == nd.ID() {
			r.directChildFrags = append(r.directChildFrags, ie.FragU)
		}
		if in.FragParent[ie.FragV] == ie.FragU && ie.U == nd.ID() {
			r.directChildFrags = append(r.directChildFrags, ie.FragV)
		}
	}
	sort.Slice(r.directChildFrags, func(i, j int) bool { return r.directChildFrags[i] < r.directChildFrags[j] })

	// Stream my own direct child fragments up immediately, then relay
	// whatever the fragment children deliver.
	if in.FragParentPort >= 0 {
		for _, f := range r.directChildFrags {
			nd.Send(in.FragParentPort, congest.Message{Kind: kindFragList, Tag: tag, A: f})
		}
	}
	r.childDirHasFrag = make(map[int]bool, len(in.ChildPorts))
	subFrags := append([]int64(nil), r.directChildFrags...)
	pending := len(in.FragChildPorts)
	inFragChild := make(map[int]bool, pending)
	for _, p := range in.FragChildPorts {
		inFragChild[p] = true
	}
	for pending > 0 {
		p, m := nd.Recv(func(p int, m congest.Message) bool {
			return m.Tag == tag && (m.Kind == kindFragList || m.Kind == kindFragEnd) && inFragChild[p]
		})
		if m.Kind == kindFragEnd {
			pending--
			continue
		}
		r.childDirHasFrag[p] = true
		subFrags = append(subFrags, m.A)
		if in.FragParentPort >= 0 {
			nd.Send(in.FragParentPort, m)
		}
	}
	if in.FragParentPort >= 0 {
		nd.Send(in.FragParentPort, congest.Message{Kind: kindFragEnd, Tag: tag})
	}
	// Child-fragment attachment directions always contain a fragment.
	for _, p := range r.interChildPorts() {
		r.childDirHasFrag[p] = true
	}
	// F(v): close the gathered child fragments under fragment-tree
	// descendants (global knowledge, local computation).
	out.FragSet = make(map[int64]bool)
	for _, f := range subFrags {
		for _, d := range r.fragDesc[f] {
			out.FragSet[d] = true
		}
	}
}

// step2b makes every node know A(v): each node's ID streams down
// through its own fragment and one level into child fragments. The
// stream is ordered structurally — each node forwards its own ID before
// relaying its parent's stream — so arrival order is exactly
// nearest-to-farthest regardless of timing.
func (r *respectRun) step2b(out *Output) {
	nd, in := r.nd, r.in
	tag := r.tag + 2
	down := in.FragChildPorts
	cross := r.interChildPorts()

	out.Ancestors = []graph.NodeID{nd.ID()}
	r.sameFragAnc = []graph.NodeID{nd.ID()}

	send := func(id int64, crossed int64) {
		for _, p := range down {
			nd.Send(p, congest.Message{Kind: kindAncID, Tag: tag, A: id, B: crossed})
		}
		if crossed == 0 {
			for _, p := range cross {
				nd.Send(p, congest.Message{Kind: kindAncID, Tag: tag, A: id, B: 1})
			}
		}
	}
	// My own ID enters my fragment uncrossed; send() marks it crossed
	// on child-fragment attachment ports.
	send(int64(nd.ID()), 0)

	if in.ParentPort >= 0 {
		for {
			_, m := nd.Recv(func(p int, m congest.Message) bool {
				return m.Tag == tag && (m.Kind == kindAncID || m.Kind == kindAncEnd) && p == in.ParentPort
			})
			if m.Kind == kindAncEnd {
				break
			}
			out.Ancestors = append(out.Ancestors, graph.NodeID(m.A))
			if m.B == 0 {
				r.sameFragAnc = append(r.sameFragAnc, graph.NodeID(m.A))
			}
			send(m.A, m.B)
		}
	}
	for _, p := range down {
		nd.Send(p, congest.Message{Kind: kindAncEnd, Tag: tag})
	}
	for _, p := range cross {
		nd.Send(p, congest.Message{Kind: kindAncEnd, Tag: tag})
	}
}

// step2c makes every node know F(u) for each u ∈ A(v), as increments:
// a pair (u, F') reaches v exactly when u is v's lowest ancestor with
// F' ∈ F(u) (the paper's filter rule), so F(u) = F(v) ∪ {pairs at or
// below u in the chain}.
func (r *respectRun) step2c(out *Output) {
	nd, in := r.nd, r.in
	tag := r.tag + 3
	down := in.FragChildPorts
	cross := r.interChildPorts()

	r.fragOfAncestor = make(map[graph.NodeID]map[int64]bool)

	send := func(u, f, crossed int64) {
		for _, p := range down {
			nd.Send(p, congest.Message{Kind: kindFPair, Tag: tag, A: u, B: f, C: crossed})
		}
		if crossed == 0 {
			for _, p := range cross {
				nd.Send(p, congest.Message{Kind: kindFPair, Tag: tag, A: u, B: f, C: 1})
			}
		}
	}
	// My own pairs, in sorted fragment order for determinism.
	ownFrags := make([]int64, 0, len(out.FragSet))
	for f := range out.FragSet {
		ownFrags = append(ownFrags, f)
	}
	sort.Slice(ownFrags, func(i, j int) bool { return ownFrags[i] < ownFrags[j] })
	for _, f := range ownFrags {
		send(int64(nd.ID()), f, 0)
	}
	if in.ParentPort >= 0 {
		for {
			_, m := nd.Recv(func(p int, m congest.Message) bool {
				return m.Tag == tag && (m.Kind == kindFPair || m.Kind == kindFEnd) && p == in.ParentPort
			})
			if m.Kind == kindFEnd {
				break
			}
			u, f := graph.NodeID(m.A), m.B
			if out.FragSet[f] {
				continue // a lower holder (me or below) covers this fragment
			}
			if r.fragOfAncestor[u] == nil {
				r.fragOfAncestor[u] = make(map[int64]bool)
			}
			r.fragOfAncestor[u][f] = true
			send(m.A, m.B, m.C)
		}
	}
	for _, p := range down {
		nd.Send(p, congest.Message{Kind: kindFEnd, Tag: tag})
	}
	for _, p := range cross {
		nd.Send(p, congest.Message{Kind: kindFEnd, Tag: tag})
	}
}

// lowestAncestorContaining returns the lowest u ∈ A(v) within v's own
// fragment (self included) with target ∈ F(u), or -1.
func (r *respectRun) lowestAncestorContaining(out *Output, target int64) graph.NodeID {
	if out.FragSet[target] {
		return r.nd.ID()
	}
	for _, u := range r.sameFragAnc[1:] {
		if r.fragOfAncestor[u][target] {
			return u
		}
	}
	return -1
}

// step3 computes δ↓(v): an intra-fragment subtree sum plus globally
// gathered fragment totals over F(v).
func (r *respectRun) step3(out *Output) {
	nd, in := r.nd, r.in
	acc, isFragRoot := proto.Converge(nd, r.fragOv, r.tag+4, out.Delta, proto.Sum)
	var mine []proto.Item
	if isFragRoot {
		mine = []proto.Item{{A: in.FragID, B: acc}}
	}
	totals := proto.AllGather(nd, in.BFS, r.tag+5, mine)
	out.DeltaDown = acc
	for _, it := range totals {
		if out.FragSet[it.A] {
			out.DeltaDown += it.B
		}
	}
}

// step4 detects merging nodes locally, makes the list global, and
// builds T'_F (fragment roots + merging nodes, parent = lowest T'F
// ancestor) as global knowledge.
func (r *respectRun) step4(out *Output) {
	nd, in := r.nd, r.in
	dirs := 0
	for _, has := range r.childDirHasFrag {
		if has {
			dirs++
		}
	}
	out.Merging = dirs >= 2

	var mine []proto.Item
	if out.Merging {
		mine = []proto.Item{{A: int64(nd.ID())}}
	}
	mergingItems := proto.AllGather(nd, in.BFS, r.tag+8, mine)
	tpSet := make(map[graph.NodeID]bool, len(mergingItems))
	for _, it := range mergingItems {
		out.MergingNodes = append(out.MergingNodes, graph.NodeID(it.A))
		tpSet[graph.NodeID(it.A)] = true
	}
	// Fragment roots (attachment nodes) are known globally from the
	// fragment tree; the global root (node 0) is always in T'F.
	for _, ie := range in.InterEdges {
		if in.FragParent[ie.FragU] == ie.FragV {
			tpSet[ie.U] = true
		}
		if in.FragParent[ie.FragV] == ie.FragU {
			tpSet[ie.V] = true
		}
	}
	tpSet[0] = true

	// My lowest T'F ancestor (self included) — always within A(v),
	// because my fragment root is in both.
	r.lowestTPrime = -1
	for _, u := range out.Ancestors {
		if tpSet[u] {
			r.lowestTPrime = u
			break
		}
	}

	// T'F edges: each T'F node reports (me, parent in T'F).
	var tpMine []proto.Item
	if tpSet[nd.ID()] {
		parent := int64(-1)
		for _, u := range out.Ancestors[1:] {
			if tpSet[u] {
				parent = int64(u)
				break
			}
		}
		tpMine = []proto.Item{{A: int64(nd.ID()), B: parent}}
	}
	tpEdges := proto.AllGather(nd, in.BFS, r.tag+10, tpMine)
	out.TPrime = make(map[graph.NodeID]graph.NodeID, len(tpEdges))
	for _, it := range tpEdges {
		out.TPrime[graph.NodeID(it.A)] = graph.NodeID(it.B)
	}
}

// tprimeLCA computes the LCA of two T'F nodes locally on the global
// T'F topology.
func tprimeLCA(tp map[graph.NodeID]graph.NodeID, a, b graph.NodeID) graph.NodeID {
	depth := func(x graph.NodeID) int {
		d := 0
		for x != -1 {
			x = tp[x]
			d++
		}
		return d
	}
	da, db := depth(a), depth(b)
	for da > db {
		a = tp[a]
		da--
	}
	for db > da {
		b = tp[b]
		db--
	}
	for a != b {
		a, b = tp[a], tp[b]
	}
	return a
}

// step5 computes ρ(v) (every edge's LCA weight lands at the LCA) and
// then ρ↓(v) with the step-3 machinery.
func (r *respectRun) step5(out *Output) {
	nd, in := r.nd, r.in

	tokens := make(map[graph.NodeID]int64) // type ii: keyed by in-fragment LCA
	globalTokens := make(map[int64]int64)  // type i: keyed by merging node

	// Tree edges are local: the LCA of {me, child} is me.
	for _, p := range in.ChildPorts {
		tokens[nd.ID()] += r.w(p)
	}

	// Non-tree edges present under the current view run the three-case
	// exchange, all ports in parallel. Absent edges (weight <= 0) are
	// skipped symmetrically by both endpoints.
	var nonTree []int
	for p := 0; p < nd.Degree(); p++ {
		if !r.treePortSet[p] && r.w(p) > 0 {
			nonTree = append(nonTree, p)
		}
	}
	for _, p := range nonTree {
		nd.Send(p, congest.Message{Kind: kindLCA1, Tag: r.tag + 12, A: in.FragID})
	}
	peerFrag := make(map[int]int64, len(nonTree))
	for range nonTree {
		p, m := nd.Recv(congest.MatchKindTag(kindLCA1, r.tag+12))
		peerFrag[p] = m.A
	}

	// Same-fragment edges: exchange in-fragment ancestor chains.
	for _, p := range nonTree {
		if peerFrag[p] != in.FragID {
			continue
		}
		for _, u := range r.sameFragAnc {
			nd.Send(p, congest.Message{Kind: kindChain, Tag: r.tag + 13, A: int64(u)})
		}
		nd.Send(p, congest.Message{Kind: kindChainEnd, Tag: r.tag + 13})
	}
	for _, p := range nonTree {
		if peerFrag[p] != in.FragID {
			continue
		}
		peerSet := make(map[graph.NodeID]bool)
		for {
			_, m := nd.Recv(func(q int, m congest.Message) bool {
				return m.Tag == r.tag+13 && (m.Kind == kindChain || m.Kind == kindChainEnd) && q == p
			})
			if m.Kind == kindChainEnd {
				break
			}
			peerSet[graph.NodeID(m.A)] = true
		}
		var z graph.NodeID = -1
		for _, u := range r.sameFragAnc {
			if peerSet[u] {
				z = u
				break
			}
		}
		if z < 0 {
			panic("respect: same-fragment edge with no common in-fragment ancestor")
		}
		// One designated endpoint holds the token.
		if nd.ID() < nd.Peer(p) {
			tokens[z] += r.w(p)
		}
	}

	// Different-fragment edges: exchange (lowest T'F ancestor, case-3
	// answer) and resolve.
	for _, p := range nonTree {
		if peerFrag[p] == in.FragID {
			continue
		}
		c3 := r.lowestAncestorContaining(out, peerFrag[p])
		nd.Send(p, congest.Message{Kind: kindLCA2, Tag: r.tag + 14, A: int64(r.lowestTPrime), B: int64(c3)})
	}
	for _, p := range nonTree {
		if peerFrag[p] == in.FragID {
			continue
		}
		_, m := nd.Recv(func(q int, m congest.Message) bool {
			return m.Kind == kindLCA2 && m.Tag == r.tag+14 && q == p
		})
		myC3 := r.lowestAncestorContaining(out, peerFrag[p])
		peerLowTP, peerC3 := graph.NodeID(m.A), graph.NodeID(m.B)
		switch {
		case myC3 >= 0:
			// LCA is in my fragment; I hold the token (type ii).
			tokens[myC3] += r.w(p)
		case peerC3 >= 0:
			// LCA in the peer's fragment; the peer holds it.
		default:
			// Case 2: LCA is the T'F-LCA, a merging node above both
			// fragments; the smaller-ID endpoint emits a type-i token.
			if nd.ID() < nd.Peer(p) {
				z := tprimeLCA(out.TPrime, r.lowestTPrime, peerLowTP)
				globalTokens[int64(z)] += r.w(p)
			}
		}
	}

	// Type i: keyed global sum over the BFS tree (keys = merging nodes).
	keys := make([]int64, len(out.MergingNodes))
	for i, v := range out.MergingNodes {
		keys[i] = int64(v)
	}
	sums := proto.KeyedSum(nd, in.BFS, r.tag+15, keys, globalTokens)
	out.Rho = sums[int64(nd.ID())] // zero for non-merging nodes

	// Type ii: pipelined intra-fragment ancestor sum.
	out.Rho += r.fragAncestorSum(tokens)

	// ρ↓: same machinery as step 3, on ρ values.
	acc, isFragRoot := proto.Converge(nd, r.fragOv, r.tag+18, out.Rho, proto.Sum)
	var mine []proto.Item
	if isFragRoot {
		mine = []proto.Item{{A: in.FragID, B: acc}}
	}
	totals := proto.AllGather(nd, in.BFS, r.tag+19, mine)
	out.RhoDown = acc
	for _, it := range totals {
		if out.FragSet[it.A] {
			out.RhoDown += it.B
		}
	}
}

// fragAncestorSum implements the paper's pipelined intra-fragment
// count: every node v learns the total of tokens keyed v held inside
// v↓ ∩ F_v. Slot k of a node's upward stream carries the subtree total
// for its (k+1)-st in-fragment ancestor; a child's stream is exactly
// the parent's shifted by one, so slots pipeline with O(√n + depth)
// rounds overall.
func (r *respectRun) fragAncestorSum(tokens map[graph.NodeID]int64) int64 {
	nd, in := r.nd, r.in
	tag := r.tag + 17
	chain := r.sameFragAnc // self first
	nSlots := len(chain)   // children send one slot per element of my chain

	result := tokens[nd.ID()]
	outSlots := make([]int64, len(chain)-1)
	for k := range outSlots {
		outSlots[k] = tokens[chain[k+1]]
	}
	for k := 0; k < nSlots; k++ {
		for _, c := range in.FragChildPorts {
			_, m := nd.Recv(func(q int, m congest.Message) bool {
				return m.Kind == kindSlotFrag && m.Tag == tag && q == c && m.A == int64(k)
			})
			if k == 0 {
				result += m.B
			} else {
				outSlots[k-1] += m.B
			}
		}
		if k > 0 && in.FragParentPort >= 0 {
			nd.Send(in.FragParentPort, congest.Message{Kind: kindSlotFrag, Tag: tag, A: int64(k - 1), B: outSlots[k-1]})
		}
	}
	return result
}

// finish computes C(v↓) and the global minimum.
func (r *respectRun) finish(out *Output) {
	nd, in := r.nd, r.in
	out.CutBelow = out.DeltaDown - 2*out.RhoDown

	mine := proto.Item{A: math.MaxInt64, B: int64(nd.ID())}
	if in.ParentPort >= 0 { // the root's C(v↓) is not a cut
		mine = proto.Item{A: out.CutBelow, B: int64(nd.ID())}
	}
	best, _ := proto.ConvergeItem(nd, in.BFS, r.tag+22, mine, func(a, b proto.Item) proto.Item {
		if b.A < a.A || (b.A == a.A && b.B < a.B) {
			return b
		}
		return a
	})
	best = proto.BroadcastItem(nd, in.BFS, r.tag+23, best)
	out.Best = best.A
	out.BestNode = graph.NodeID(best.B)
}
