package respect

import (
	"sync"
	"testing"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
	"distmincut/internal/partition"
	"distmincut/internal/proto"
	"distmincut/internal/tree"
	"distmincut/internal/verify"
)

// runOnTree exercises Theorem 2.1 on an arbitrary externally supplied
// spanning tree: the test computes the tree and its partition
// centrally, hands every node only its local view, and lets Bootstrap
// reconstruct the global fragment knowledge distributedly.
func runOnTree(t *testing.T, g *graph.Graph, tr *tree.Tree, s int, seed int64) []*Output {
	t.Helper()
	if err := verify.SpanningTreeOf(g, tr); err != nil {
		t.Fatal(err)
	}
	d := partition.Split(tr, s)
	if err := partition.Validate(tr, d); err != nil {
		t.Fatal(err)
	}
	// Local views.
	parentPorts := make([]int, g.N())
	childPorts := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		nv := graph.NodeID(v)
		parentPorts[v] = -1
		if p := tr.Parent(nv); p >= 0 {
			parentPorts[v] = g.PortOf(nv, tr.ParentEdge(nv))
		}
		for _, c := range tr.Children(nv) {
			childPorts[v] = append(childPorts[v], g.PortOf(nv, tr.ParentEdge(c)))
		}
	}
	var mu sync.Mutex
	outs := make([]*Output, g.N())
	stats, err := congest.Run(g, congest.Options{Seed: seed}, func(nd *congest.Node) {
		bfs := proto.BuildBFS(nd, 0, 1)
		in := Bootstrap(nd, bfs, parentPorts[nd.ID()], childPorts[nd.ID()], d.FragOf[nd.ID()], 50)
		out := Run(nd, in, 100)
		mu.Lock()
		outs[nd.ID()] = out
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Leftover != 0 {
		t.Fatalf("left %d unconsumed messages", stats.Leftover)
	}
	return outs
}

func TestTheorem21OnArbitraryTrees(t *testing.T) {
	type testcase struct {
		g    *graph.Graph
		mk   func(g *graph.Graph) *tree.Tree
		name string
	}
	bfsTree := func(g *graph.Graph) *tree.Tree {
		_, parent := graph.BFS(g, 0)
		parentEdge := make([]int, g.N())
		for v := 0; v < g.N(); v++ {
			parentEdge[v] = -1
			if parent[v] >= 0 {
				for _, h := range g.Adj(graph.NodeID(v)) {
					if h.Peer == parent[v] {
						parentEdge[v] = h.EdgeID
					}
				}
			}
		}
		tr, err := tree.New(0, parent, parentEdge)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	randomTree := func(seed int64) func(g *graph.Graph) *tree.Tree {
		return func(g *graph.Graph) *tree.Tree {
			parent, parentEdge := graph.RandomSpanningTree(g, 0, seed)
			tr, err := tree.New(0, parent, parentEdge)
			if err != nil {
				t.Fatal(err)
			}
			return tr
		}
	}
	cases := []testcase{
		{graph.GNP(50, 0.12, 3), bfsTree, "gnp-bfs"},
		{graph.GNP(50, 0.12, 3), randomTree(7), "gnp-random"},
		{graph.AssignWeights(graph.GNP(40, 0.2, 4), 1, 30, 5), randomTree(8), "weighted-random"},
		{graph.Cycle(40), bfsTree, "cycle-bfs"},       // BFS tree of a cycle is a double path
		{graph.Complete(14), randomTree(9), "clique"}, // deep random tree on a dense graph
		{graph.Grid(6, 6), randomTree(10), "grid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := tc.mk(tc.g)
			outs := runOnTree(t, tc.g, tr, 0, 21)
			q := verify.OneRespectOracle(tc.g, tr)
			for v := 0; v < tc.g.N(); v++ {
				if outs[v].CutBelow != q.Cut[v] {
					t.Fatalf("node %d: C(v↓)=%d, oracle %d", v, outs[v].CutBelow, q.Cut[v])
				}
			}
			wantBest, wantNode := verify.BestOneRespect(q, tr)
			if outs[0].Best != wantBest || outs[0].BestNode != wantNode {
				t.Fatalf("best (%d,%d), oracle (%d,%d)", outs[0].Best, outs[0].BestNode, wantBest, wantNode)
			}
		})
	}
}

// TestPathologicalPathTree: a Hamiltonian-path spanning tree has depth
// n-1; the fragment machinery must still deliver the right answer (and
// the rounds must stay far below n·depth).
func TestPathologicalPathTree(t *testing.T) {
	// Build a cycle plus chords; spanning tree = the Hamiltonian path.
	g := graph.Cycle(60)
	tr, err := tree.FromGraphTree(pathSubtree(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reattach edge IDs of g to the path tree.
	parents := make([]graph.NodeID, g.N())
	parentEdge := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		parents[v] = tr.Parent(graph.NodeID(v))
		parentEdge[v] = -1
		if parents[v] >= 0 {
			for _, h := range g.Adj(graph.NodeID(v)) {
				if h.Peer == parents[v] {
					parentEdge[v] = h.EdgeID
				}
			}
		}
	}
	tr2, err := tree.New(0, parents, parentEdge)
	if err != nil {
		t.Fatal(err)
	}
	outs := runOnTree(t, g, tr2, 0, 5)
	q := verify.OneRespectOracle(g, tr2)
	for v := 0; v < g.N(); v++ {
		if outs[v].CutBelow != q.Cut[v] {
			t.Fatalf("node %d: C(v↓)=%d, oracle %d", v, outs[v].CutBelow, q.Cut[v])
		}
	}
}

// pathSubtree returns the path 0-1-...-n-1 as a graph (the cycle minus
// its closing edge).
func pathSubtree(g *graph.Graph) *graph.Graph {
	sub := graph.New(g.N())
	for i := 0; i+1 < g.N(); i++ {
		sub.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	sub.SortAdjacency()
	return sub
}
