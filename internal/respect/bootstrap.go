package respect

import (
	"sort"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
	"distmincut/internal/mst"
	"distmincut/internal/proto"
)

// Message kind for the bootstrap fragment exchange.
const kindBootFrag uint8 = 0x60

// BootTagSpan is the tag range consumed by Bootstrap.
const BootTagSpan = 8

// Bootstrap builds a respect Input for an externally supplied rooted
// spanning tree and fragment assignment (e.g. from partition.Split):
// each node knows its tree parent/child ports and its fragment ID and
// fragment root. One neighbor exchange classifies ports as intra- or
// inter-fragment, and one AllGather publishes the O(√n) inter-fragment
// edges, from which the fragment tree orientation is a local
// computation — exactly the paper's Step 1, in O(√n + D) rounds.
//
// The orientation convention requires the tree to be rooted at node 0
// and each fragment root to be the fragment's topmost node.
func Bootstrap(nd *congest.Node, bfs *proto.Overlay, parentPort int, childPorts []int, fragID int64, tag uint32) *Input {
	in := &Input{
		ParentPort: parentPort,
		ChildPorts: append([]int(nil), childPorts...),
		FragID:     fragID,
		BFS:        bfs,
	}
	sort.Ints(in.ChildPorts)

	// Exchange fragment IDs over tree ports.
	treePorts := append([]int(nil), in.ChildPorts...)
	if parentPort >= 0 {
		treePorts = append(treePorts, parentPort)
	}
	for _, p := range treePorts {
		nd.Send(p, congest.Message{Kind: kindBootFrag, Tag: tag, A: fragID})
	}
	peerFrag := make(map[int]int64, len(treePorts))
	inTree := make(map[int]bool, len(treePorts))
	for _, p := range treePorts {
		inTree[p] = true
	}
	for range treePorts {
		p, m := nd.Recv(func(p int, m congest.Message) bool {
			return m.Kind == kindBootFrag && m.Tag == tag && inTree[p]
		})
		peerFrag[p] = m.A
	}

	// Fragment-internal orientation.
	in.FragParentPort = -1
	if parentPort >= 0 && peerFrag[parentPort] == fragID {
		in.FragParentPort = parentPort
	}
	for _, p := range in.ChildPorts {
		if peerFrag[p] == fragID {
			in.FragChildPorts = append(in.FragChildPorts, p)
		}
	}

	// Publish inter-fragment edges: reported by the child-side
	// endpoint, which knows the orientation directly.
	var mine []proto.Item
	if parentPort >= 0 && peerFrag[parentPort] != fragID {
		mine = []proto.Item{{
			A: int64(nd.ID()),
			B: int64(nd.Peer(parentPort)),
			C: fragID,
			D: peerFrag[parentPort],
		}}
	}
	items := proto.AllGather(nd, bfs, tag+1, mine)
	in.FragParent = make(map[int64]int64, len(items)+1)
	for _, it := range items {
		in.InterEdges = append(in.InterEdges, mst.InterEdge{
			U:     graph.NodeID(it.A),
			V:     graph.NodeID(it.B),
			FragU: it.C,
			FragV: it.D,
		})
		in.FragParent[it.C] = it.D
	}
	// The fragment of node 0 (the BFS and tree root) is the root
	// fragment.
	in.RootFrag = proto.Broadcast(nd, bfs, tag+3, fragID)
	in.FragParent[in.RootFrag] = -1
	return in
}
