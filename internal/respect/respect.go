// Package respect implements the paper's core contribution (Section 2,
// Theorem 2.1): given a rooted spanning tree T of the network, already
// partitioned into O(√n) fragments of Õ(√n) diameter, make every node
// v learn C(v↓) — the weight of the cut that separates v's subtree from
// the rest — and find min_{v≠root} C(v↓), all in Õ(√n + D) rounds.
//
// The algorithm follows the paper's five steps:
//
//  1. The fragment tree T_F is known to every node (delivered by the
//     MST construction, per the paper's footnote 1, or bootstrapped by
//     one AllGather for externally supplied trees).
//  2. Every node v learns A(v), its ancestors within its own and its
//     parent fragment (ordered nearest-first by structural streaming),
//     F(v), the set of fragments fully inside v↓, and F(u) for every
//     u ∈ A(v) via filtered downward streams.
//  3. δ↓(v) = Σ_{u∈v↓} δ(u) from an intra-fragment subtree sum plus
//     globally broadcast fragment totals.
//  4. Merging nodes (≥2 child directions containing whole fragments)
//     and the skeleton tree T'_F (fragment roots + merging nodes) are
//     detected locally and made global knowledge.
//  5. Every edge's endpoint LCA is computed by the paper's three-case
//     exchange over the edge itself; the per-LCA weights ρ(v) are
//     aggregated by a keyed global sum (type i) and a pipelined
//     intra-fragment ancestor sum (type ii); then ρ↓ reuses step 3's
//     machinery, and C(v↓) = δ↓(v) − 2ρ↓(v) (Lemma 2.2).
package respect

import (
	"sort"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
	"distmincut/internal/mst"
	"distmincut/internal/proto"
)

// Message kinds (0x50 range).
const (
	kindFragList uint8 = 0x50 + iota // step 2a: child-fragment upcast item, A=fragID
	kindFragEnd                      // step 2a: end marker
	kindAncID                        // step 2b: ancestor ID stream, A=node ID, B=crossed
	kindAncEnd                       // step 2b: end marker
	kindFPair                        // step 2c: (ancestor, fragment) pair, A=node, B=frag, C=crossed
	kindFEnd                         // step 2c: end marker
	kindLCA1                         // step 5a: first exchange, A=fragID
	kindChain                        // step 5a case 1: ancestor chain item, A=node ID
	kindChainEnd                     // step 5a case 1: end marker
	kindLCA2                         // step 5a: second exchange, A=lowest T'F ancestor, B=case-3 z or -1
	kindSlotFrag                     // step 5b type ii: ancestor-sum slot, A=index, B=value
)

// TagSpan is the tag range reserved by one Run invocation.
const TagSpan = 32

// Input is one node's local view of the rooted, fragmented spanning
// tree. Build it with FromMST (the usual path) or Bootstrap (for
// externally supplied trees + partitions).
type Input struct {
	// Tree orientation (rooted at node 0).
	ParentPort int
	ChildPorts []int
	// Fragment-internal orientation.
	FragID         int64
	FragParentPort int
	FragChildPorts []int
	// Global knowledge: the fragment tree.
	InterEdges []mst.InterEdge
	FragParent map[int64]int64
	RootFrag   int64
	// BFS overlay for global collectives.
	BFS *proto.Overlay
	// Weight optionally overrides per-port edge weights; weight(p) <= 0
	// means the edge at port p is absent (Karger-sampled views). Nil
	// uses the underlying edge weights. The tree and fragments must
	// have been built under the same view.
	Weight func(port int) int64
}

// FromMST adapts the distributed MST result into a respect input.
func FromMST(res *mst.Result, bfs *proto.Overlay) *Input {
	return &Input{
		ParentPort:     res.ParentPort,
		ChildPorts:     res.ChildPorts,
		FragID:         res.FragID,
		FragParentPort: res.FragParentPort,
		FragChildPorts: res.FragChildPorts,
		InterEdges:     res.InterEdges,
		FragParent:     res.FragParent,
		RootFrag:       res.RootFrag,
		BFS:            bfs,
	}
}

// Output is one node's result.
type Output struct {
	// CutBelow is C(v↓) for this node (0 at the root by convention).
	CutBelow int64
	// Best is min_{v≠root} C(v↓); BestNode the smallest minimizer.
	// Identical at every node.
	Best     int64
	BestNode graph.NodeID
	// Intermediate quantities, exposed for verification and reuse.
	Delta        int64
	DeltaDown    int64
	Rho          int64
	RhoDown      int64
	Ancestors    []graph.NodeID // A(v): self first, then nearest to farthest
	FragSet      map[int64]bool // F(v)
	Merging      bool
	MergingNodes []graph.NodeID                // global sorted list
	TPrime       map[graph.NodeID]graph.NodeID // T'F: node -> parent (root maps to -1)
}

// Run executes the five steps. The tag range [tag, tag+TagSpan) must be
// unused elsewhere in the program.
func Run(nd *congest.Node, in *Input, tag uint32) *Output {
	r := &respectRun{nd: nd, in: in, tag: tag}
	r.fragOv = proto.NewOverlay(in.FragParentPort, in.FragChildPorts, 0)
	r.treePortSet = make(map[int]bool, len(in.ChildPorts)+1)
	for _, p := range in.ChildPorts {
		r.treePortSet[p] = true
	}
	if in.ParentPort >= 0 {
		r.treePortSet[in.ParentPort] = true
	}
	r.fragDesc = fragDescendants(in.InterEdges, in.FragParent)

	out := &Output{Delta: r.weightedDegree()}
	r.step2a(out)
	r.step2b(out)
	r.step2c(out)
	r.step3(out)
	r.step4(out)
	r.step5(out)
	r.finish(out)
	return out
}

type respectRun struct {
	nd          *congest.Node
	in          *Input
	tag         uint32
	fragOv      *proto.Overlay
	treePortSet map[int]bool

	// fragDesc[f] = all fragments in f's subtree of the fragment tree,
	// including f itself. Local computation on global knowledge.
	fragDesc map[int64][]int64

	// step 2a results.
	directChildFrags []int64      // fragments attached directly below me
	childDirHasFrag  map[int]bool // tree child port -> subtree contains a fragment
	// step 2b result: the prefix of Ancestors within my own fragment
	// (self first).
	sameFragAnc []graph.NodeID
	// step 2c result: fragment sets of my in-fragment ancestors, as
	// increments along the chain (see step2c).
	fragOfAncestor map[graph.NodeID]map[int64]bool
	// step 5 working state.
	lowestTPrime graph.NodeID
}

// w returns the effective weight of the edge at port p under the
// (possibly sampled) view; <= 0 means absent.
func (r *respectRun) w(port int) int64 {
	if r.in.Weight == nil {
		return r.nd.EdgeWeight(port)
	}
	return r.in.Weight(port)
}

func (r *respectRun) weightedDegree() int64 {
	var s int64
	for p := 0; p < r.nd.Degree(); p++ {
		if w := r.w(p); w > 0 {
			s += w
		}
	}
	return s
}

// fragDescendants computes, for every fragment, the fragments of its
// subtree in the fragment tree (inclusive).
func fragDescendants(inter []mst.InterEdge, fragParent map[int64]int64) map[int64][]int64 {
	children := make(map[int64][]int64, len(fragParent))
	var root int64 = -1
	for f, p := range fragParent {
		if p == -1 {
			root = f
			continue
		}
		children[p] = append(children[p], f)
	}
	for _, c := range children {
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	}
	desc := make(map[int64][]int64, len(fragParent))
	// Post-order accumulation via explicit stack.
	type frame struct {
		f    int64
		next int
	}
	if root == -1 {
		return desc
	}
	stack := []frame{{f: root}}
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		kids := children[fr.f]
		if fr.next < len(kids) {
			c := kids[fr.next]
			fr.next++
			stack = append(stack, frame{f: c})
			continue
		}
		all := []int64{fr.f}
		for _, c := range kids {
			all = append(all, desc[c]...)
		}
		desc[fr.f] = all
		stack = stack[:len(stack)-1]
	}
	_ = inter
	return desc
}
