package respect

import (
	"sync"
	"testing"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
	"distmincut/internal/mst"
	"distmincut/internal/proto"
	"distmincut/internal/tree"
	"distmincut/internal/verify"
)

// runPipeline executes BFS + distributed MST + the respect algorithm
// and returns per-node outputs plus the rooted tree for the oracle.
func runPipeline(t *testing.T, g *graph.Graph, seed int64) ([]*Output, *tree.Tree) {
	t.Helper()
	var mu sync.Mutex
	outs := make([]*Output, g.N())
	parents := make([]graph.NodeID, g.N())
	stats, err := congest.Run(g, congest.Options{Seed: seed}, func(nd *congest.Node) {
		bfs := proto.BuildBFS(nd, 0, 1)
		res := mst.Run(nd, bfs, nil, 0, 100)
		out := Run(nd, FromMST(res, bfs), 100+mst.TagSpan)
		mu.Lock()
		outs[nd.ID()] = out
		if res.ParentPort >= 0 {
			parents[nd.ID()] = nd.Peer(res.ParentPort)
		} else {
			parents[nd.ID()] = -1
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Leftover != 0 {
		t.Fatalf("pipeline left %d unconsumed messages", stats.Leftover)
	}
	tr, err := tree.New(0, parents, nil)
	if err != nil {
		t.Fatalf("MST orientation invalid: %v", err)
	}
	return outs, tr
}

func checkAgainstOracle(t *testing.T, g *graph.Graph, seed int64) {
	t.Helper()
	outs, tr := runPipeline(t, g, seed)
	q := verify.OneRespectOracle(g, tr)
	for v := 0; v < g.N(); v++ {
		o := outs[v]
		if o.Delta != q.Delta[v] {
			t.Fatalf("node %d: delta %d, oracle %d", v, o.Delta, q.Delta[v])
		}
		if o.DeltaDown != q.DeltaDown[v] {
			t.Fatalf("node %d: delta-down %d, oracle %d", v, o.DeltaDown, q.DeltaDown[v])
		}
		if o.Rho != q.Rho[v] {
			t.Fatalf("node %d: rho %d, oracle %d", v, o.Rho, q.Rho[v])
		}
		if o.RhoDown != q.RhoDown[v] {
			t.Fatalf("node %d: rho-down %d, oracle %d", v, o.RhoDown, q.RhoDown[v])
		}
		if o.CutBelow != q.Cut[v] {
			t.Fatalf("node %d: C(v↓) = %d, oracle %d", v, o.CutBelow, q.Cut[v])
		}
	}
	wantBest, wantNode := verify.BestOneRespect(q, tr)
	for v := 0; v < g.N(); v++ {
		if outs[v].Best != wantBest || outs[v].BestNode != wantNode {
			t.Fatalf("node %d: best (%d,%d), oracle (%d,%d)",
				v, outs[v].Best, outs[v].BestNode, wantBest, wantNode)
		}
	}
}

func TestTheorem21AgainstOracle(t *testing.T) {
	workloads := map[string]*graph.Graph{
		"cycle":       graph.Cycle(24),
		"grid":        graph.Grid(6, 6),
		"torus":       graph.Torus(5, 5),
		"gnp-sparse":  graph.GNP(60, 0.08, 3),
		"gnp-dense":   graph.GNP(40, 0.3, 4),
		"weighted":    graph.AssignWeights(graph.GNP(50, 0.15, 5), 1, 40, 6),
		"clique":      graph.Complete(16),
		"star":        graph.Star(20),
		"path":        graph.Path(30),
		"two-nodes":   graph.Path(2),
		"barbell":     graph.Barbell(8, 4),
		"cliquepath":  graph.CliquePath(4, 6, 2),
		"planted":     graph.PlantedCut(20, 25, 3, 0.4, 7),
		"hypercube":   graph.Hypercube(5),
		"weightedbig": graph.AssignWeights(graph.GNP(80, 0.1, 8), 1, 1000, 9),
	}
	for name, g := range workloads {
		t.Run(name, func(t *testing.T) {
			checkAgainstOracle(t, g, 17)
		})
	}
}

func TestAncestorsMatchTree(t *testing.T) {
	g := graph.GNP(70, 0.1, 11)
	outs, tr := runPipeline(t, g, 3)
	for v := 0; v < g.N(); v++ {
		o := outs[v]
		if len(o.Ancestors) == 0 || o.Ancestors[0] != graph.NodeID(v) {
			t.Fatalf("node %d: A(v) must start with self, got %v", v, o.Ancestors)
		}
		// A(v) must be a prefix of the real ancestor chain.
		chain := tr.AncestorChain(graph.NodeID(v), -1)
		if len(o.Ancestors) > len(chain) {
			t.Fatalf("node %d: A(v) longer than the ancestor chain", v)
		}
		for i := range o.Ancestors {
			if o.Ancestors[i] != chain[i] {
				t.Fatalf("node %d: A(v)[%d] = %d, chain %d", v, i, o.Ancestors[i], chain[i])
			}
		}
	}
}

func TestFragSetMatchesSubtrees(t *testing.T) {
	g := graph.GNP(70, 0.1, 13)
	outs, tr := runPipeline(t, g, 5)
	// Reconstruct fragments from outputs: fragment of node v is known
	// via InterEdges? Instead verify the semantics: F(v) are exactly
	// the fragments fully contained in v↓.
	// Build node -> fragment from the pipeline outputs of step 2a by
	// re-running membership: fragment ID is carried in Output via
	// FragSet of fragment roots' parents — simpler: recompute from
	// subtree relation using CutBelow's tree tr and the merging info.
	// Here we check closure: if f ∈ F(v) then f ∈ F(parent(v)).
	for v := 1; v < g.N(); v++ {
		p := tr.Parent(graph.NodeID(v))
		for f := range outs[v].FragSet {
			if !outs[p].FragSet[f] {
				t.Fatalf("F(%d) ∋ %d but F(parent %d) does not", v, f, p)
			}
		}
	}
	// The root's F must contain every fragment except its own.
	rootF := outs[0].FragSet
	distinct := map[int64]bool{}
	for _, o := range outs {
		for f := range o.FragSet {
			distinct[f] = true
		}
	}
	for f := range distinct {
		if !rootF[f] {
			t.Fatalf("root F(v) missing fragment %d", f)
		}
	}
}

func TestMergingNodesAgainstDefinition(t *testing.T) {
	g := graph.GNP(70, 0.1, 19)
	outs, tr := runPipeline(t, g, 7)
	// Definition: v is merging iff at least two children's subtrees
	// contain (whole) fragments. Verify with the oracle's tree and the
	// fragment sets: child x's subtree contains a fragment iff
	// F(x) ≠ ∅ or x is in a different fragment than... x's subtree
	// contains x's own fragment iff x's fragment lies fully in x↓ —
	// equivalently the fragment root of x's fragment is x or below.
	// We use the outputs' own FragSet plus cross-checking the global
	// merging list consistency instead: every node agrees on the list,
	// and every listed node is indeed in the network.
	ref := outs[0].MergingNodes
	for v := 1; v < g.N(); v++ {
		got := outs[v].MergingNodes
		if len(got) != len(ref) {
			t.Fatalf("node %d has %d merging nodes, node 0 has %d", v, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("merging lists differ at %d", i)
			}
		}
	}
	for _, m := range ref {
		if int(m) < 0 || int(m) >= g.N() {
			t.Fatalf("merging node %d out of range", m)
		}
		if !outs[m].Merging {
			t.Fatalf("node %d listed as merging but local flag false", m)
		}
	}
	_ = tr
}

// TestRoundComplexity: the whole pipeline (BFS + MST + respect) must
// scale as Õ(√n + D), clearly below linear in n for a bounded-degree
// workload of growing size.
func TestRoundComplexity(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test is slow")
	}
	rounds := map[int]int{}
	for _, side := range []int{8, 16} {
		g := graph.Torus(side, side)
		stats, err := congest.Run(g, congest.Options{Seed: 23}, func(nd *congest.Node) {
			bfs := proto.BuildBFS(nd, 0, 1)
			res := mst.Run(nd, bfs, nil, 0, 100)
			Run(nd, FromMST(res, bfs), 100+mst.TagSpan)
		})
		if err != nil {
			t.Fatal(err)
		}
		rounds[side] = stats.Rounds
	}
	// n grows 4x (side 2x): Õ(√n + D) predicts ~2x rounds; linear
	// would be 4x. Accept anything at most 3x.
	if ratio := float64(rounds[16]) / float64(rounds[8]); ratio > 3.0 {
		t.Fatalf("rounds grew %.2fx for 4x nodes (8→%d, 16→%d): not sublinear",
			ratio, rounds[8], rounds[16])
	}
}
