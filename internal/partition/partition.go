// Package partition implements the Kutten–Peleg-style tree partition
// the paper's Step 1 consumes: a decomposition of a rooted spanning
// tree into O(n/s) fragments, each a connected subtree of low depth
// (≤ s), where s defaults to √n.
//
// The usual pipeline gets its partition for free from the distributed
// MST (the paper's footnote 1). This package provides the partition
// for *externally supplied* trees — BFS trees, random spanning trees,
// adversarial paths — so Theorem 2.1 can be exercised on any tree. The
// splitter is the classic bottom-up chunking: process nodes in reverse
// preorder, accumulating residual subtree sizes; a node whose residual
// reaches s becomes a fragment root. Every non-root fragment has at
// least s nodes (hence at most n/s + 1 fragments) and every fragment
// has depth at most s (hence diameter ≤ 2s), though high-degree
// fragments may hold many nodes — only depth matters downstream.
package partition

import (
	"fmt"
	"math"

	"distmincut/internal/graph"
	"distmincut/internal/tree"
)

// Decomposition maps every node to its fragment. Fragment IDs are the
// fragment root's node ID.
type Decomposition struct {
	// FragOf[v] is the fragment ID of node v.
	FragOf []int64
	// RootOf[v] is the fragment root of v's fragment.
	RootOf []graph.NodeID
	// Roots lists the fragment roots in increasing ID order.
	Roots []graph.NodeID
	// S is the size parameter used.
	S int
}

// DefaultS returns the paper's √n threshold.
func DefaultS(n int) int {
	s := int(math.Ceil(math.Sqrt(float64(n))))
	if s < 1 {
		s = 1
	}
	return s
}

// Split partitions t into fragments with parameter s (s <= 0 uses √n).
func Split(t *tree.Tree, s int) *Decomposition {
	n := t.N()
	if s <= 0 {
		s = DefaultS(n)
	}
	d := &Decomposition{
		FragOf: make([]int64, n),
		RootOf: make([]graph.NodeID, n),
		S:      s,
	}
	residual := make([]int, n)
	isRoot := make([]bool, n)
	order := t.PreOrder()
	// Reverse preorder: children before parents.
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		size := 1
		for _, c := range t.Children(v) {
			size += residual[c]
		}
		if size >= s || v == t.Root() {
			isRoot[v] = true
			residual[v] = 0
		} else {
			residual[v] = size
		}
	}
	// Top-down assignment: a node joins its parent's fragment unless it
	// is a fragment root.
	for _, v := range order {
		switch {
		case isRoot[v]:
			d.RootOf[v] = v
			d.Roots = append(d.Roots, v)
		default:
			d.RootOf[v] = d.RootOf[t.Parent(v)]
		}
		d.FragOf[v] = int64(d.RootOf[v])
	}
	return d
}

// Validate checks the decomposition invariants: fragments are connected
// subtrees containing their root, fragment depth is at most S, and the
// number of fragments is at most n/S + 1.
func Validate(t *tree.Tree, d *Decomposition) error {
	n := t.N()
	if len(d.FragOf) != n || len(d.RootOf) != n {
		return fmt.Errorf("partition: wrong arity")
	}
	if len(d.Roots) > n/d.S+1 {
		return fmt.Errorf("partition: %d fragments exceed n/s+1 = %d", len(d.Roots), n/d.S+1)
	}
	for v := 0; v < n; v++ {
		nv := graph.NodeID(v)
		root := d.RootOf[v]
		if d.FragOf[v] != int64(root) {
			return fmt.Errorf("partition: node %d frag/root mismatch", v)
		}
		if d.RootOf[root] != root {
			return fmt.Errorf("partition: root of %d's fragment (%d) is not its own root", v, root)
		}
		// Walk up to the fragment root: path must stay in-fragment and
		// have length <= S.
		steps := 0
		for u := nv; u != root; u = t.Parent(u) {
			if u != nv && d.RootOf[u] != root {
				return fmt.Errorf("partition: fragment of %d not connected at %d", v, u)
			}
			if t.Parent(u) == -1 {
				return fmt.Errorf("partition: node %d never reaches its fragment root %d", v, root)
			}
			if steps++; steps > d.S {
				return fmt.Errorf("partition: node %d at depth > s from root %d", v, root)
			}
		}
	}
	// Every non-root-of-tree fragment must have >= S members (count
	// bound); the fragment containing the tree root may be smaller.
	members := map[graph.NodeID]int{}
	for v := 0; v < n; v++ {
		members[d.RootOf[v]]++
	}
	for root, cnt := range members {
		if root != t.Root() && cnt < 1 {
			return fmt.Errorf("partition: empty fragment %d", root)
		}
	}
	return nil
}
