package partition

import (
	"testing"

	"distmincut/internal/graph"
	"distmincut/internal/tree"
)

// figureTree is the paper's 16-node Figure 1(a) shape.
func figureTree(t *testing.T) *tree.Tree {
	t.Helper()
	tr, err := tree.New(0, []graph.NodeID{-1, 0, 1, 2, 0, 2, 3, 4, 5, 5, 6, 6, 7, 7, 7, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildSkeletonFigure1(t *testing.T) {
	tr := figureTree(t)
	d := Split(tr, 4)
	sk := BuildSkeleton(tr, d)
	// Every fragment root must be a member; the tree root always is.
	for _, r := range d.Roots {
		if !sk.Members[r] {
			t.Fatalf("fragment root %d missing from T'F", r)
		}
	}
	if !sk.Members[tr.Root()] {
		t.Fatal("tree root missing from T'F")
	}
	// Parent pointers must be genuine ancestors and members.
	for v, p := range sk.Parent {
		if p == -1 {
			if v != tr.Root() && sk.Members[v] {
				// Only the topmost member may have no parent.
				for u := tr.Parent(v); u >= 0; u = tr.Parent(u) {
					if sk.Members[u] {
						t.Fatalf("member %d has parent -1 but member ancestor %d exists", v, u)
					}
				}
			}
			continue
		}
		if !sk.Members[p] {
			t.Fatalf("T'F parent %d of %d not a member", p, v)
		}
		if !tr.IsAncestor(p, v) || p == v {
			t.Fatalf("T'F parent %d not a proper ancestor of %d", p, v)
		}
		// Lowest: no member strictly between v and p.
		for u := tr.Parent(v); u != p; u = tr.Parent(u) {
			if sk.Members[u] {
				t.Fatalf("member %d between %d and its T'F parent %d", u, v, p)
			}
		}
	}
	// Merging definition check by brute force.
	for v := 0; v < tr.N(); v++ {
		dirs := 0
		for _, c := range tr.Children(graph.NodeID(v)) {
			if subtreeHasFragment(tr, d, c) {
				dirs++
			}
		}
		want := dirs >= 2
		got := false
		for _, m := range sk.Merging {
			if m == graph.NodeID(v) {
				got = true
			}
		}
		if got != want {
			t.Fatalf("node %d merging = %v, want %v", v, got, want)
		}
	}
}

// subtreeHasFragment reports whether some whole fragment lies in v↓.
func subtreeHasFragment(tr *tree.Tree, d *Decomposition, v graph.NodeID) bool {
	for _, r := range d.Roots {
		if r != tr.Root() && tr.IsAncestor(v, r) {
			return true
		}
	}
	return false
}

func TestBuildSkeletonRandomTrees(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := graph.RandomTree(80, seed)
		tr, err := tree.FromGraphTree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		d := Split(tr, 0)
		sk := BuildSkeleton(tr, d)
		// |T'F| <= 2 * fragments (roots + merging; merging count is at
		// most fragment count - 1 since each merging node merges >= 2
		// fragment-bearing branches).
		if len(sk.Members) > 2*len(d.Roots) {
			t.Fatalf("seed %d: |T'F| = %d for %d fragments", seed, len(sk.Members), len(d.Roots))
		}
		if len(sk.Merging) > len(d.Roots) {
			t.Fatalf("seed %d: %d merging nodes for %d fragments", seed, len(sk.Merging), len(d.Roots))
		}
	}
}
