package partition

import (
	"testing"
	"testing/quick"

	"distmincut/internal/graph"
	"distmincut/internal/tree"
)

func mustTree(t *testing.T, g *graph.Graph) *tree.Tree {
	t.Helper()
	tr, err := tree.FromGraphTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSplitValidatesOnFamilies(t *testing.T) {
	cases := map[string]*graph.Graph{
		"path":        graph.Path(100),
		"star":        graph.Star(100),
		"randomtree":  graph.RandomTree(150, 3),
		"caterpillar": graph.RandomTree(64, 9),
		"two":         graph.Path(2),
		"one":         graph.Path(1),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			tr := mustTree(t, g)
			d := Split(tr, 0)
			if err := Validate(tr, d); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSplitPathCounts(t *testing.T) {
	tr := mustTree(t, graph.Path(100))
	d := Split(tr, 10)
	if len(d.Roots) != 10 {
		t.Fatalf("path of 100 with s=10 gave %d fragments, want 10", len(d.Roots))
	}
}

func TestSplitStarDepth(t *testing.T) {
	// A star has depth 1: one fragment regardless of s.
	tr := mustTree(t, graph.Star(50))
	d := Split(tr, 7)
	if len(d.Roots) != 1 {
		t.Fatalf("star split into %d fragments, want 1", len(d.Roots))
	}
}

// Property: Split output always validates and respects the count bound
// on random trees and random s.
func TestSplitProperty(t *testing.T) {
	f := func(seed int64, rawN uint8, rawS uint8) bool {
		n := int(rawN%120) + 2
		s := int(rawS%20) + 1
		g := graph.RandomTree(n, seed)
		tr, err := tree.FromGraphTree(g, 0)
		if err != nil {
			return false
		}
		d := Split(tr, s)
		if err := Validate(tr, d); err != nil {
			t.Logf("n=%d s=%d: %v", n, s, err)
			return false
		}
		// Non-root fragments have at least s members.
		members := map[graph.NodeID]int{}
		for v := 0; v < n; v++ {
			members[d.RootOf[v]]++
		}
		for root, cnt := range members {
			if root != tr.Root() && cnt < s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultS(t *testing.T) {
	if DefaultS(100) != 10 || DefaultS(0) != 1 || DefaultS(101) != 11 {
		t.Fatalf("DefaultS wrong: %d %d %d", DefaultS(100), DefaultS(0), DefaultS(101))
	}
}
