package partition

import (
	"sort"

	"distmincut/internal/graph"
	"distmincut/internal/tree"
)

// Skeleton holds the sequential reference of the paper's Step-4
// structures for a partitioned tree: the merging nodes (nodes with at
// least two child directions whose subtrees contain whole fragments),
// and the skeleton tree T'_F over fragment roots and merging nodes
// (parent = lowest T'_F ancestor). Used by experiment E8 (Figure 1)
// and as an independent cross-check of the distributed Step 4.
type Skeleton struct {
	// Merging lists the merging nodes in increasing ID.
	Merging []graph.NodeID
	// Members is the T'_F node set (fragment roots + merging nodes).
	Members map[graph.NodeID]bool
	// Parent maps every T'_F node to its T'_F parent (root maps to -1).
	Parent map[graph.NodeID]graph.NodeID
}

// BuildSkeleton computes the Step-4 structures sequentially from the
// definitions in the paper.
func BuildSkeleton(t *tree.Tree, d *Decomposition) *Skeleton {
	n := t.N()
	// fragBelow[v]: does v's subtree contain a whole fragment, i.e. the
	// root of some fragment lies in v↓?
	fragBelow := make([]bool, n)
	for _, root := range d.Roots {
		if root == t.Root() {
			continue // the tree root's fragment is never strictly below anyone
		}
		fragBelow[root] = true
	}
	order := t.PreOrder()
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		for _, c := range t.Children(v) {
			if fragBelow[c] {
				fragBelow[v] = true
			}
		}
		if d.RootOf[v] == v && v != t.Root() {
			fragBelow[v] = true
		}
	}
	sk := &Skeleton{Members: make(map[graph.NodeID]bool), Parent: make(map[graph.NodeID]graph.NodeID)}
	for v := 0; v < n; v++ {
		nv := graph.NodeID(v)
		dirs := 0
		for _, c := range t.Children(nv) {
			if fragBelow[c] {
				dirs++
			}
		}
		if dirs >= 2 {
			sk.Merging = append(sk.Merging, nv)
			sk.Members[nv] = true
		}
	}
	sort.Slice(sk.Merging, func(i, j int) bool { return sk.Merging[i] < sk.Merging[j] })
	for _, root := range d.Roots {
		sk.Members[root] = true
	}
	sk.Members[t.Root()] = true
	for v := range sk.Members {
		sk.Parent[v] = -1
		for u := t.Parent(v); u >= 0; u = t.Parent(u) {
			if sk.Members[u] {
				sk.Parent[v] = u
				break
			}
		}
	}
	return sk
}
