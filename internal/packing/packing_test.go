package packing_test

import (
	"sync"
	"testing"

	"distmincut/internal/baseline"
	"distmincut/internal/congest"
	"distmincut/internal/graph"
	"distmincut/internal/packing"
	"distmincut/internal/proto"
	"distmincut/internal/verify"
)

// runExact runs the exact doubling algorithm distributedly and returns
// the common result plus each node's side bit and the evaluated true
// cut weight.
func runExact(t *testing.T, g *graph.Graph, seed int64) (*packing.Result, []bool, int64, *congest.Stats) {
	t.Helper()
	var mu sync.Mutex
	results := make([]*packing.Result, g.N())
	sides := make([]bool, g.N())
	var evaluated int64
	stats, err := congest.Run(g, congest.Options{Seed: seed}, func(nd *congest.Node) {
		bfs := proto.BuildBFS(nd, 0, 1)
		res, exact := packing.ExactDoubling(nd, bfs, nil, 0, packing.Options{}, 1000)
		if !exact {
			panic("packing: expected certified-exact result")
		}
		side := packing.MarkSide(nd, bfs, res, 900)
		ev := packing.EvaluateCut(nd, bfs, side, 950)
		mu.Lock()
		results[nd.ID()] = res
		sides[nd.ID()] = side
		evaluated = ev
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Leftover != 0 {
		t.Fatalf("packing left %d unconsumed messages", stats.Leftover)
	}
	for v := 1; v < g.N(); v++ {
		if results[v].Cut != results[0].Cut || results[v].CutNode != results[0].CutNode ||
			results[v].Trees != results[0].Trees {
			t.Fatalf("node %d disagrees on result", v)
		}
	}
	return results[0], sides, evaluated, stats
}

func TestExactMatchesStoerWagner(t *testing.T) {
	workloads := map[string]*graph.Graph{
		"cycle":      graph.Cycle(16),
		"planted1":   graph.PlantedCut(10, 12, 1, 0.5, 2),
		"planted2":   graph.PlantedCut(10, 12, 2, 0.5, 3),
		"planted3":   graph.PlantedCut(12, 10, 3, 0.6, 4),
		"planted4":   graph.PlantedCut(10, 10, 4, 0.7, 5),
		"barbell":    graph.Barbell(6, 2),
		"cliquepath": graph.CliquePath(3, 5, 2),
		"hypercube":  graph.Hypercube(3),
		"weighted":   graph.AssignWeights(graph.Cycle(12), 1, 5, 6),
		"star":       graph.Star(9),
	}
	for name, g := range workloads {
		t.Run(name, func(t *testing.T) {
			want, _, err := baseline.StoerWagner(g)
			if err != nil {
				t.Fatal(err)
			}
			res, sides, evaluated, _ := runExact(t, g, 7)
			if res.Cut != want {
				t.Fatalf("distributed exact min cut %d, Stoer–Wagner %d", res.Cut, want)
			}
			// The marked side must be a real cut of exactly that weight.
			w, err := verify.CutSides(g, sides)
			if err != nil {
				t.Fatalf("marked side invalid: %v", err)
			}
			if w != want {
				t.Fatalf("marked side weighs %d, want %d", w, want)
			}
			if evaluated != want {
				t.Fatalf("EvaluateCut returned %d, want %d", evaluated, want)
			}
		})
	}
}

func TestSequentialPackingFindsMinCut(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := graph.PlantedCut(14, 14, 2, 0.5, seed)
		want, _, err := baseline.StoerWagner(g)
		if err != nil {
			t.Fatal(err)
		}
		trees, err := packing.GreedySequential(g, packing.PracticalTau(want, g.N()))
		if err != nil {
			t.Fatal(err)
		}
		got, idx := packing.BestOverTrees(g, trees)
		if got != want {
			t.Fatalf("seed %d: packing best %d (tree %d), want %d", seed, got, idx, want)
		}
	}
}

func TestTreesUntilHitWithinPracticalBound(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := graph.PlantedCut(12, 12, 3, 0.6, seed+10)
		lambda, _, err := baseline.StoerWagner(g)
		if err != nil {
			t.Fatal(err)
		}
		bound := packing.PracticalTau(lambda, g.N())
		hit, err := packing.TreesUntilHit(g, lambda, bound)
		if err != nil {
			t.Fatal(err)
		}
		if hit > bound {
			t.Fatalf("seed %d: needed %d trees, practical bound %d", seed, hit, bound)
		}
	}
}

func TestTauPolicies(t *testing.T) {
	if packing.TheoreticalTau(1, 100) < packing.PracticalTau(1, 100) {
		t.Fatal("theoretical bound should dominate at lambda=1")
	}
	if packing.PracticalTau(2, 100) <= packing.PracticalTau(1, 100) {
		t.Fatal("tau must grow with lambda")
	}
	if packing.TheoreticalTau(100, 1000) != 1e7 {
		t.Fatal("theoretical bound must clamp")
	}
}

func TestPackStopBelow(t *testing.T) {
	g := graph.Star(12) // min cut 1; the first tree already 1-respects it
	var trees int
	var mu sync.Mutex
	_, err := congest.Run(g, congest.Options{}, func(nd *congest.Node) {
		bfs := proto.BuildBFS(nd, 0, 1)
		loads := make(map[int]int64)
		res := packing.Pack(nd, bfs, 10, loads, packing.Options{StopBelow: 1}, 1000, nil)
		mu.Lock()
		trees = res.Trees
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if trees != 1 {
		t.Fatalf("StopBelow did not stop early: packed %d trees", trees)
	}
}
