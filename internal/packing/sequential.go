package packing

import (
	"distmincut/internal/graph"
	"distmincut/internal/mst"
	"distmincut/internal/tree"
	"distmincut/internal/verify"
)

// GreedySequential packs tau trees centrally (Kruskal under cumulative
// loads) and returns them rooted at 0. It is the reference
// implementation the distributed packing is verified against, and the
// engine of experiment E7.
func GreedySequential(g *graph.Graph, tau int) ([]*tree.Tree, error) {
	loads := make([]int64, g.M())
	trees := make([]*tree.Tree, 0, tau)
	for i := 0; i < tau; i++ {
		ids, err := mst.Kruskal(g, loads)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			loads[id]++
		}
		t, err := mst.TreeOf(g, ids, 0)
		if err != nil {
			return nil, err
		}
		trees = append(trees, t)
	}
	return trees, nil
}

// BestOverTrees evaluates the best 1-respecting cut over a set of trees
// with the sequential oracle: the minimum cut estimate the packing
// yields, plus the index of the first tree achieving it.
func BestOverTrees(g *graph.Graph, trees []*tree.Tree) (int64, int) {
	best, bestIdx := int64(-1), -1
	for i, t := range trees {
		q := verify.OneRespectOracle(g, t)
		c, _ := verify.BestOneRespect(q, t)
		if bestIdx == -1 || c < best {
			best, bestIdx = c, i
		}
	}
	return best, bestIdx
}

// TreesUntilHit packs trees one at a time until some tree's best
// 1-respecting cut equals the true minimum cut lambda, returning the
// number of trees needed (or maxTrees+1 if never hit). This measures
// the empirical packing requirement for experiment E7.
func TreesUntilHit(g *graph.Graph, lambda int64, maxTrees int) (int, error) {
	loads := make([]int64, g.M())
	for i := 1; i <= maxTrees; i++ {
		ids, err := mst.Kruskal(g, loads)
		if err != nil {
			return 0, err
		}
		for _, id := range ids {
			loads[id]++
		}
		t, err := mst.TreeOf(g, ids, 0)
		if err != nil {
			return 0, err
		}
		q := verify.OneRespectOracle(g, t)
		c, _ := verify.BestOneRespect(q, t)
		if c == lambda {
			return i, nil
		}
	}
	return maxTrees + 1, nil
}
