// Package packing implements Thorup's greedy tree packing [Tho07] and
// the paper's reduction of minimum cut to 1-respecting cuts: pack
// spanning trees T_1, T_2, ... where T_i is the MST with respect to the
// loads induced by T_1..T_{i-1}; by Thorup's theorem, after enough
// trees some T_i shares exactly one edge with a minimum cut, so the
// minimum over trees of the best 1-respecting cut is the minimum cut.
//
// The distributed driver packs trees by alternating the Kutten–Peleg
// MST (internal/mst) and the Section-2 algorithm (internal/respect),
// Õ(√n + D) rounds per tree. The exact algorithm does not know λ in
// advance and doubles a guess λ̂: pack τ(λ̂) trees, and stop as soon as
// the best cut found is ≤ λ̂ (then the packing was provably large
// enough, so the answer is exact).
//
// τ policies: Thorup's theoretical bound is Θ(λ⁷ log³ n) trees —
// correct but intractable beyond tiny λ; the default practical policy
// uses c·λ·ln n trees, validated empirically in experiment E7 (see
// EXPERIMENTS.md). Both are provided.
package packing

import (
	"math"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
	"distmincut/internal/mst"
	"distmincut/internal/proto"
	"distmincut/internal/respect"
)

// TreeTagSpan is the tag range consumed per packed tree.
const TreeTagSpan = mst.TagSpan + respect.TagSpan

// TheoreticalTau is Thorup's packing bound Θ(λ⁷ log³ n) (unit
// constant). Intractable except for λ = 1 on small graphs; provided for
// fidelity and the E7 ablation.
func TheoreticalTau(lambda int64, n int) int {
	ln := math.Log(float64(n) + 2)
	t := math.Pow(float64(lambda), 7) * ln * ln * ln
	if t < 1 {
		return 1
	}
	if t > 1e7 {
		return 1e7
	}
	return int(math.Ceil(t))
}

// PracticalTau is the default policy: c·λ·ln n + 3 trees. Experiment E7
// measures the actual number of trees needed until some tree
// 1-respects a minimum cut; this bound exceeds it with a wide margin on
// every workload family in the suite.
//
// λ = 1 is special-cased to a single tree: with integer weights ≥ 1 a
// cut of weight 1 is a single bridge, every spanning tree contains
// every bridge, so the first packed tree already 1-respects any
// weight-1 cut. This keeps the λ̂ = 1 doubling guess O(1) trees at any
// scale instead of Θ(ln n).
func PracticalTau(lambda int64, n int) int {
	if lambda <= 1 {
		return 1
	}
	return int(math.Ceil(3*float64(lambda)*math.Log(float64(n)+2))) + 3
}

// Options configures a packing run.
type Options struct {
	// Weight optionally overrides per-port weights (sampled views);
	// weight(p) <= 0 means the edge is absent.
	Weight func(port int) int64
	// StopBelow, if positive, stops packing as soon as the best cut
	// found is <= StopBelow (used by the sampling reduction, which only
	// needs the cut once it is below the skeleton threshold).
	StopBelow int64
	// SizeCap overrides the fragment size threshold (default √n); used
	// by the E9 ablation.
	SizeCap int
}

// Result is one node's view of a packing run. Scalar fields are
// identical at every node; BestInput/BestOutput are the node's local
// state under the winning tree (used to mark the cut side).
type Result struct {
	Cut        int64
	CutNode    graph.NodeID
	TreeIndex  int
	Trees      int
	PerTree    []int64
	Connected  bool
	BestInput  *respect.Input
	BestOutput *respect.Output
}

// Pack packs up to tau trees and returns the best 1-respecting cut
// over all of them. loads carries packing loads across calls (pass a
// fresh map for a standalone run); it is updated in place. If the
// (possibly sampled) graph is disconnected, packing aborts with
// Connected=false and Cut untouched. The tag range
// [tagBase, tagBase + tau*TreeTagSpan) is consumed.
func Pack(nd *congest.Node, bfs *proto.Overlay, tau int, loads map[int]int64, opts Options, tagBase uint32, prev *Result) *Result {
	res := prev
	if res == nil {
		res = &Result{Cut: math.MaxInt64, CutNode: -1, TreeIndex: -1, Connected: true}
	}
	mark := nd.ID() == 0 // node 0 records phase spans for observability
	for i := 0; i < tau; i++ {
		tag := tagBase + uint32(i)*TreeTagSpan
		if mark {
			nd.Mark("begin:mst")
		}
		mres := mst.RunWeighted(nd, bfs, loads, opts.Weight, opts.SizeCap, tag)
		if mark {
			nd.Mark("end:mst")
		}
		if !mres.Connected {
			res.Connected = false
			return res
		}
		if mres.ParentPort >= 0 {
			loads[nd.EdgeID(mres.ParentPort)]++
		}
		for _, p := range mres.ChildPorts {
			loads[nd.EdgeID(p)]++
		}
		in := respect.FromMST(mres, bfs)
		in.Weight = opts.Weight
		if mark {
			nd.Mark("begin:respect")
		}
		out := respect.Run(nd, in, tag+mst.TagSpan)
		if mark {
			nd.Mark("end:respect")
		}
		res.PerTree = append(res.PerTree, out.Best)
		if out.Best < res.Cut {
			res.Cut = out.Best
			res.CutNode = out.BestNode
			res.TreeIndex = res.Trees
			res.BestInput = in
			res.BestOutput = out
		}
		res.Trees++
		if opts.StopBelow > 0 && res.Cut <= opts.StopBelow {
			return res
		}
	}
	return res
}

// ExactDoubling runs the paper's main algorithm: double λ̂ and extend
// the greedy packing until the best cut found is ≤ λ̂ with enough trees
// behind it — at that point the packing provably contained a tree
// 1-respecting a minimum cut, so the result is exact.
//
// Each guess packs with StopBelow = λ̂ so the expensive per-tree work
// halts the moment a candidate ≤ λ̂ appears; certification then tops the
// packing up one tree at a time until it holds tauOf(bestCut, n) trees.
// This is sound: bestCut ≥ λ, tauOf is monotone, so tauOf(bestCut) ≥
// tauOf(λ) trees guarantee some packed tree 1-respects a minimum cut
// and the minimum over packed trees is exactly λ. It is also what makes
// the λ̂ = 1 guess O(1) trees on million-edge instances instead of a
// full Θ(λ̂ ln n) schedule.
//
// maxLambda bounds the search (poly(λ) trees are only tractable for
// small λ; larger cuts are handled by the sampling reduction). Returns
// the result and whether it is certified exact.
func ExactDoubling(nd *congest.Node, bfs *proto.Overlay, tauOf func(lambda int64, n int) int, maxLambda int64, opts Options, tagBase uint32) (*Result, bool) {
	if tauOf == nil {
		tauOf = PracticalTau
	}
	if maxLambda < 1 {
		maxLambda = 1 << 20
	}
	loads := make(map[int]int64, nd.Degree())
	res := &Result{Cut: math.MaxInt64, CutNode: -1, TreeIndex: -1, Connected: true}
	tag := tagBase
	mark := nd.ID() == 0 // node 0 records the guess/certify spans for observability
	for lambda := int64(1); ; lambda *= 2 {
		target := tauOf(lambda, nd.N())
		if extra := target - res.Trees; extra > 0 {
			guess := opts
			if guess.StopBelow <= 0 || lambda < guess.StopBelow {
				guess.StopBelow = lambda
			}
			if mark {
				nd.Mark("begin:pack")
			}
			res = Pack(nd, bfs, extra, loads, guess, tag, res)
			if mark {
				nd.Mark("end:pack")
			}
			tag += uint32(extra) * TreeTagSpan
			if !res.Connected {
				return res, false
			}
		}
		// Top up after an early stop: certification needs tauOf(bestCut)
		// trees. One tree per step — the best cut can keep dropping while
		// topping up, which shrinks the requirement.
		certifying := false
		for res.Cut <= lambda && res.Trees < tauOf(res.Cut, nd.N()) {
			if mark && !certifying {
				nd.Mark("begin:certify")
			}
			certifying = true
			res = Pack(nd, bfs, 1, loads, opts, tag, res)
			tag += TreeTagSpan
			if !res.Connected {
				if mark && certifying {
					nd.Mark("end:certify")
				}
				return res, false
			}
		}
		if mark && certifying {
			nd.Mark("end:certify")
		}
		if res.Cut <= lambda {
			return res, true
		}
		if lambda*2 > maxLambda {
			return res, false
		}
	}
}

// Message kinds for side marking and evaluation (0x70 range).
const (
	kindSideBit uint8 = 0x70 + iota // side-membership exchange, A = 0/1
)

// MarkSide makes every node learn whether it lies in the winning cut's
// side X = v*↓ (under the winning tree): v* floods its fragment ID and
// F(v*) — O(√n) items — and each node decides membership locally from
// its snapshotted ancestors. Tags tag, tag+1 are used.
func MarkSide(nd *congest.Node, bfs *proto.Overlay, res *Result, tag uint32) bool {
	mark := nd.ID() == 0 // node 0 records the phase span for observability
	if mark {
		nd.Mark("begin:markside")
	}
	var mine []proto.Item
	if nd.ID() == res.CutNode {
		mine = append(mine, proto.Item{A: 0, B: res.BestInput.FragID})
		for f := range res.BestOutput.FragSet {
			mine = append(mine, proto.Item{A: 1, B: f})
		}
	}
	items := proto.AllGather(nd, bfs, tag, mine)
	if mark {
		nd.Mark("end:markside") // the remaining side decision is local, zero rounds
	}
	var starFrag int64 = -1
	starSet := make(map[int64]bool, len(items))
	for _, it := range items {
		if it.A == 0 {
			starFrag = it.B
		} else {
			starSet[it.B] = true
		}
	}
	if starSet[res.BestInput.FragID] {
		return true // my whole fragment lies below v*
	}
	if res.BestInput.FragID == starFrag {
		for _, u := range res.BestOutput.Ancestors {
			if u == res.CutNode {
				return true // v* is my in-fragment ancestor
			}
		}
	}
	return false
}

// EvaluateCut computes the true weight, under the real edge weights of
// the underlying graph, of the cut defined by each node's side bit: one
// neighbor exchange plus one global sum. Tags tag..tag+2 are used.
func EvaluateCut(nd *congest.Node, bfs *proto.Overlay, inSide bool, tag uint32) int64 {
	mark := nd.ID() == 0 // node 0 records the phase span for observability
	if mark {
		nd.Mark("begin:evalcut")
	}
	bit := int64(0)
	if inSide {
		bit = 1
	}
	nd.SendAll(congest.Message{Kind: kindSideBit, Tag: tag, A: bit})
	var crossing int64
	for i := 0; i < nd.Degree(); i++ {
		p, m := nd.Recv(congest.MatchKindTag(kindSideBit, tag))
		if m.A != bit {
			crossing += nd.EdgeWeight(p)
		}
	}
	// Each crossing edge is counted at both endpoints.
	total := proto.ConvergeBroadcast(nd, bfs, tag+1, crossing, proto.Sum) / 2
	if mark {
		nd.Mark("end:evalcut")
	}
	return total
}
