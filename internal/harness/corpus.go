package harness

import "distmincut/internal/service"

// ServiceCorpus returns a canned request mix for the min-cut service,
// reusing the experiment suite's workload families (the same planted,
// G(n,p), torus, clique-path, and hypercube instances E1–E6 measure)
// as service job specs. cmd/loadgen cycles through it as its request
// stream and the CI smoke test submits from it; the quick variant
// shrinks every instance so a full pass stays in benchmark budgets.
//
// The mix is deliberately cache-friendly: a loadgen pass that wraps
// around the corpus hits the content-addressed cache on every repeat,
// which is the service's intended production profile (identical
// (graph, params, seed) requests are deterministic).
//
// Both variants exercise every serving tier: legacy modes (exact,
// respect, approx) plus the bracket tier and the approximation-first
// tiered flow, so a loadgen pass measures the tier mix the service
// actually offers — including the refining state and the cross-tier
// cache traffic a tiered job's phase keys generate.
func ServiceCorpus(quick bool) []service.JobRequest {
	if quick {
		return []service.JobRequest{
			{Graph: service.GraphSpec{Family: "planted", N1: 16, N2: 16, K: 2, InP: 0.5, Seed: 1}, Mode: "exact"},
			{Graph: service.GraphSpec{Family: "planted", N1: 12, N2: 20, K: 3, InP: 0.5, Seed: 2}, Mode: "respect"},
			{Graph: service.GraphSpec{Family: "gnp", N: 64, P: 0.08, Seed: 1}, Mode: "respect"},
			{Graph: service.GraphSpec{Family: "gnp", N: 48, P: 0.15, Seed: 2,
				Weights: &service.WeightSpec{Lo: 1, Hi: 50, Seed: 3}}, Mode: "respect"},
			{Graph: service.GraphSpec{Family: "torus", Rows: 6, Cols: 7}, Mode: "respect"},
			{Graph: service.GraphSpec{Family: "cliquepath", Cliques: 4, CliqueSize: 8, Bridge: 2}, Mode: "respect"},
			{Graph: service.GraphSpec{Family: "hypercube", Dim: 6}, Mode: "respect"},
			{Graph: service.GraphSpec{Family: "cycle", N: 96}, Mode: "respect"},
			// Serving tiers: a few-rounds bracket, a loose (1+ε), and the
			// approximation-first tiered flow (whose exact phase key
			// collides with the first entry's cache line by design).
			{Graph: service.GraphSpec{Family: "planted", N1: 16, N2: 16, K: 2, InP: 0.5, Seed: 1}, Tier: service.TierBracket},
			{Graph: service.GraphSpec{Family: "hypercube", Dim: 6}, Tier: service.TierApprox, Epsilon: 0.9},
			{Graph: service.GraphSpec{Family: "planted", N1: 16, N2: 16, K: 2, InP: 0.5, Seed: 1}, Tier: service.TierTiered, Epsilon: 0.9},
		}
	}
	return []service.JobRequest{
		// E1 correctness families at experiment scale.
		{Graph: service.GraphSpec{Family: "planted", N1: 24, N2: 24, K: 3, InP: 0.4, Seed: 1}, Mode: "exact"},
		{Graph: service.GraphSpec{Family: "gnp", N: 64, P: 0.08, Seed: 1}, Mode: "exact"},
		{Graph: service.GraphSpec{Family: "gnp", N: 48, P: 0.15, Seed: 2,
			Weights: &service.WeightSpec{Lo: 1, Hi: 50, Seed: 3}}, Mode: "exact"},
		{Graph: service.GraphSpec{Family: "torus", Rows: 6, Cols: 7}, Mode: "exact"},
		{Graph: service.GraphSpec{Family: "cliquepath", Cliques: 4, CliqueSize: 8, Bridge: 2}, Mode: "exact"},
		{Graph: service.GraphSpec{Family: "hypercube", Dim: 6}, Mode: "exact"},
		// E2 scaling shapes under the cheap single-tree bound.
		{Graph: service.GraphSpec{Family: "torus", Rows: 16, Cols: 16}, Mode: "respect"},
		{Graph: service.GraphSpec{Family: "gnp", N: 512, P: 8.0 / 512, Seed: 4}, Mode: "respect"},
		{Graph: service.GraphSpec{Family: "cycle", N: 1024}, Mode: "respect"},
		// E4-style (1+ε) approximations.
		{Graph: service.GraphSpec{Family: "planted", N1: 32, N2: 32, K: 4, InP: 0.3, Seed: 5}, Mode: "approx", Epsilon: 0.5},
		{Graph: service.GraphSpec{Family: "gnp", N: 96, P: 0.1, Seed: 6}, Mode: "approx", Epsilon: 0.25},
		{Graph: service.GraphSpec{Family: "random_regular", N: 64, Degree: 8, Seed: 7}, Mode: "respect"},
		// Serving tiers at experiment scale: brackets on the scaling
		// shapes and an approximation-first tiered job whose exact phase
		// shares a cache key with the first E1 entry.
		{Graph: service.GraphSpec{Family: "torus", Rows: 16, Cols: 16}, Tier: service.TierBracket},
		{Graph: service.GraphSpec{Family: "gnp", N: 512, P: 8.0 / 512, Seed: 4}, Tier: service.TierBracket},
		{Graph: service.GraphSpec{Family: "planted", N1: 24, N2: 24, K: 3, InP: 0.4, Seed: 1}, Tier: service.TierTiered, Epsilon: 0.5},
	}
}

// OverloadCorpus returns a request mix built to saturate a small
// worker pool: mostly expensive exact and tiered runs at sizes where
// the doubling certification dominates, with only a thin stream of
// cheap bracket probes. Unlike ServiceCorpus it is deliberately
// cache-hostile across its own length (every entry is a distinct
// canonical request), so a wrap-around pass still queues real protocol
// runs — pair it with loadgen's -unique flag to defeat the cache
// entirely. The CI overload smoke drives this mix at 2× a one-worker
// pool's sustainable rate and asserts the server sheds, degrades, or
// deadlines the excess instead of dying.
func OverloadCorpus() []service.JobRequest {
	return []service.JobRequest{
		{Graph: service.GraphSpec{Family: "planted", N1: 32, N2: 32, K: 3, InP: 0.3, Seed: 11}, Mode: "exact"},
		{Graph: service.GraphSpec{Family: "planted", N1: 40, N2: 24, K: 4, InP: 0.3, Seed: 12}, Mode: "exact"},
		{Graph: service.GraphSpec{Family: "gnp", N: 96, P: 0.08, Seed: 13}, Mode: "exact"},
		{Graph: service.GraphSpec{Family: "planted", N1: 32, N2: 32, K: 3, InP: 0.3, Seed: 14}, Tier: service.TierTiered, Epsilon: 0.5},
		{Graph: service.GraphSpec{Family: "torus", Rows: 10, Cols: 10}, Mode: "exact"},
		{Graph: service.GraphSpec{Family: "planted", N1: 48, N2: 48, K: 3, InP: 0.25, Seed: 15}, Mode: "exact"},
		{Graph: service.GraphSpec{Family: "hypercube", Dim: 7}, Tier: service.TierTiered, Epsilon: 0.9},
		{Graph: service.GraphSpec{Family: "planted", N1: 24, N2: 24, K: 2, InP: 0.4, Seed: 16}, Tier: service.TierBracket},
	}
}
