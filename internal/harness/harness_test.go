package harness

import (
	"strings"
	"testing"
)

// TestRunAllQuick executes the whole experiment suite in quick mode —
// the strongest integration test in the repository: every experiment
// must complete, produce rows, and report no anomalies in its notes.
func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("suite is slow")
	}
	tables := RunAll(Config{Quick: true, Seed: 3})
	if len(tables) != 9 {
		t.Fatalf("got %d tables, want 9", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s produced no rows", tb.ID)
		}
		md := tb.Markdown()
		if !strings.Contains(md, "| ---") {
			t.Errorf("%s markdown malformed", tb.ID)
		}
		for _, n := range tb.Notes {
			if strings.Contains(n, "error") {
				t.Errorf("%s reported an error note: %s", tb.ID, n)
			}
		}
	}
}

func TestE1NoMismatches(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := E1Correctness(Config{Quick: true, Seed: 5})
	for _, row := range tb.Rows {
		if row[len(row)-1] != "0" {
			t.Fatalf("E1 mismatches in row %v", row)
		}
	}
}

func TestE3AllExact(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb := E3Exact(Config{Quick: true, Seed: 5})
	for _, row := range tb.Rows {
		if row[2] != "true" {
			t.Fatalf("E3 row not exact: %v", row)
		}
		if row[3] != row[4] {
			t.Fatalf("E3 value %s != Stoer–Wagner %s", row[3], row[4])
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := &Table{
		ID: "EX", Title: "T", Header: []string{"a", "b"},
		Rows:  [][]string{{"1", "2"}},
		Notes: []string{"note"},
	}
	md := tb.Markdown()
	for _, want := range []string{"### EX — T", "| a | b |", "| 1 | 2 |", "> note"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}
