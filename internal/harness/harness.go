// Package harness defines the experiment suite that regenerates every
// claim of the paper as a measured table (the paper, a brief
// announcement, has no empirical tables of its own — EXPERIMENTS.md
// maps each theoretical claim and the single figure to an experiment
// here). cmd/bench renders all tables; bench_test.go exposes one
// testing.B benchmark per experiment.
package harness

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
	"distmincut/internal/mst"
	"distmincut/internal/proto"
	"distmincut/internal/respect"
)

// Table is one rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

// Config scopes an experiment run.
type Config struct {
	// Quick shrinks workloads for use inside tests and benchmarks.
	Quick bool
	// Seed drives every randomized workload and protocol.
	Seed int64
	// Workers bounds how many node programs the CONGEST runtime
	// executes concurrently (congest.Options.Workers). Zero wakes every
	// scheduled node at once; results are identical either way.
	Workers int
	// DeliveryShards partitions the runtime's delivery phase over this
	// many worker goroutines (congest.Options.DeliveryShards). Zero
	// resolves to serial delivery here — RunAll already executes
	// experiments concurrently on a GOMAXPROCS-bounded pool, so
	// per-run sharding on top would oversubscribe the machine.
	// Results are identical either way.
	DeliveryShards int
}

// engineOpts assembles the congest options for one run with the given
// seed.
func (c Config) engineOpts(seed int64) congest.Options {
	shards := c.DeliveryShards
	if shards == 0 {
		shards = -1 // serial per run: RunAll is the parallelism
	}
	return congest.Options{Seed: seed, Workers: c.Workers, DeliveryShards: shards}
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// enginePool recycles reusable CONGEST engines across the hundreds of
// sequential runs one experiment performs (and across experiments,
// which run concurrently on the RunAll pool): an engine checked back in
// keeps its slabs warm, so the next run of similar scale skips setup.
// Engines dropped by the GC release nothing the process needs — their
// slabs simply stop circulating.
var enginePool sync.Pool

// runSim is congest.Run on a pooled, reusable engine.
func runSim(g *graph.Graph, opts congest.Options, program func(*congest.Node)) (*congest.Stats, error) {
	var eng *congest.Engine
	if v := enginePool.Get(); v != nil {
		eng = v.(*congest.Engine)
		eng.SetOptions(opts)
	} else {
		eng = congest.NewEngine(opts)
	}
	stats, err := eng.Run(g, program)
	enginePool.Put(eng)
	return stats, err
}

// RunAll executes every experiment and returns the tables in their
// fixed E1..E9 order. The experiments are mutually independent (each
// builds its own graphs and engines from cfg's seed), so they run
// concurrently on a worker pool bounded by GOMAXPROCS; the result order
// — and every table's contents — is deterministic regardless of how the
// pool schedules them.
func RunAll(cfg Config) []*Table {
	experiments := []func(Config) *Table{
		E1Correctness,
		E2Scaling,
		E3Exact,
		E4Approx,
		E5Baselines,
		E6Diameter,
		E7Packing,
		E8Figure1,
		E9Ablation,
	}
	tables := make([]*Table, len(experiments))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(experiments) {
		workers = len(experiments)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				tables[i] = experiments[i](cfg)
			}
		}()
	}
	for i := range experiments {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return tables
}

// pipelineOnce runs BFS + distributed MST + Theorem 2.1 once and
// returns the run stats, the best 1-respecting cut, and the per-node
// parents (for oracle verification).
func pipelineOnce(g *graph.Graph, seed int64, cfg Config) (*congest.Stats, int64, []graph.NodeID, error) {
	var mu sync.Mutex
	parents := make([]graph.NodeID, g.N())
	var best int64
	stats, err := runSim(g, cfg.engineOpts(seed), func(nd *congest.Node) {
		bfs := proto.BuildBFS(nd, 0, 1)
		res := mst.Run(nd, bfs, nil, 0, 100)
		out := respect.Run(nd, respect.FromMST(res, bfs), 100+mst.TagSpan)
		mu.Lock()
		defer mu.Unlock()
		if res.ParentPort >= 0 {
			parents[nd.ID()] = nd.Peer(res.ParentPort)
		} else {
			parents[nd.ID()] = -1
		}
		best = out.Best
	})
	if err != nil {
		return nil, 0, nil, err
	}
	return stats, best, parents, nil
}

// runPipelineCollect runs the Theorem 2.1 pipeline and hands every
// node's C(v↓) to fn (called under a lock).
func runPipelineCollect(g *graph.Graph, seed int64, cfg Config, fn func(v graph.NodeID, cut int64)) error {
	var mu sync.Mutex
	_, err := runSim(g, cfg.engineOpts(seed), func(nd *congest.Node) {
		bfs := proto.BuildBFS(nd, 0, 1)
		res := mst.Run(nd, bfs, nil, 0, 100)
		out := respect.Run(nd, respect.FromMST(res, bfs), 100+mst.TagSpan)
		mu.Lock()
		fn(nd.ID(), out.CutBelow)
		mu.Unlock()
	})
	return err
}

func itoa(v int64) string { return fmt.Sprintf("%d", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
