package harness

import (
	"fmt"
	"math"
	"sync"

	"distmincut"
	"distmincut/internal/baseline"
	"distmincut/internal/congest"
	"distmincut/internal/graph"
	"distmincut/internal/packing"
	"distmincut/internal/partition"
	"distmincut/internal/proto"
	"distmincut/internal/tree"
	"distmincut/internal/verify"
)

// E1Correctness — Theorem 2.1: the distributed C(v↓) of every node on
// every workload matches the sequential oracle (Lemma 2.2) exactly.
func E1Correctness(cfg Config) *Table {
	type family struct {
		name string
		gen  func(seed int64) *graph.Graph
	}
	families := []family{
		{"G(n,p) sparse", func(s int64) *graph.Graph { return graph.GNP(64, 0.08, s) }},
		{"G(n,p) weighted", func(s int64) *graph.Graph {
			return graph.AssignWeights(graph.GNP(48, 0.15, s), 1, 50, s+1)
		}},
		{"torus", func(s int64) *graph.Graph { return graph.Torus(6, 7) }},
		{"planted cut", func(s int64) *graph.Graph { return graph.PlantedCut(24, 24, 3, 0.4, s) }},
		{"clique-path", func(s int64) *graph.Graph { return graph.CliquePath(4, 8, 2) }},
		{"hypercube", func(s int64) *graph.Graph { return graph.Hypercube(6) }},
	}
	instances := 5
	if cfg.Quick {
		families = families[:3]
		instances = 2
	}
	t := &Table{
		ID:     "E1",
		Title:  "Theorem 2.1 correctness: distributed C(v↓) vs sequential oracle",
		Header: []string{"family", "n", "m", "instances", "nodes checked", "mismatches"},
	}
	for _, f := range families {
		var checked, mismatches, n, m int
		for i := 0; i < instances; i++ {
			g := f.gen(cfg.seed() + int64(i)*17)
			n, m = g.N(), g.M()
			_, _, parents, err := pipelineOnce(g, cfg.seed()+int64(i), cfg)
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("%s: run error: %v", f.name, err))
				continue
			}
			tr, err := tree.New(0, parents, nil)
			if err != nil {
				mismatches++
				continue
			}
			q := verify.OneRespectOracle(g, tr)
			outs := collectCuts(g, cfg.seed()+int64(i), cfg)
			for v := 0; v < g.N(); v++ {
				checked++
				if outs[v] != q.Cut[v] {
					mismatches++
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			f.name, itoa(int64(n)), itoa(int64(m)), itoa(int64(instances)),
			itoa(int64(checked)), itoa(int64(mismatches)),
		})
	}
	t.Notes = append(t.Notes, "Paper claim: every node v learns C(v↓) (Theorem 2.1). Expected mismatches: 0.")
	return t
}

// collectCuts reruns the pipeline collecting every node's C(v↓).
func collectCuts(g *graph.Graph, seed int64, cfg Config) []int64 {
	outs := make([]int64, g.N())
	runPipelineCollect(g, seed, cfg, func(v graph.NodeID, cut int64) { outs[v] = cut })
	return outs
}

// E2Scaling — rounds of the full Theorem 2.1 pipeline scale as
// Õ(√n + D), not linearly in n.
func E2Scaling(cfg Config) *Table {
	sides := []int{8, 12, 16, 24}
	gnpSizes := []int{64, 128, 256, 512}
	if cfg.Quick {
		sides = []int{8, 12}
		gnpSizes = []int{64, 128}
	}
	t := &Table{
		ID:     "E2",
		Title:  "Theorem 2.1 round complexity: rounds vs Õ(√n + D)",
		Header: []string{"family", "n", "D", "rounds", "messages", "rounds/(√n+D)", "centralize rounds (Θ(m+D))"},
	}
	addRow := func(name string, g *graph.Graph) {
		d := graph.Diameter(g)
		stats, _, _, err := pipelineOnce(g, cfg.seed(), cfg)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: %v", name, err))
			return
		}
		_, central, err := baseline.Centralize(g, cfg.seed())
		centralRounds := "-"
		if err == nil {
			centralRounds = itoa(int64(central.Rounds))
		}
		norm := math.Sqrt(float64(g.N())) + float64(d)
		t.Rows = append(t.Rows, []string{
			name, itoa(int64(g.N())), itoa(int64(d)), itoa(int64(stats.Rounds)),
			itoa(stats.Delivered), f2(float64(stats.Rounds) / norm), centralRounds,
		})
	}
	for _, s := range sides {
		addRow(fmt.Sprintf("torus %dx%d", s, s), graph.Torus(s, s))
	}
	for _, n := range gnpSizes {
		addRow(fmt.Sprintf("G(%d, 8/n)", n), graph.GNP(n, 8/float64(n), cfg.seed()+3))
	}
	dense := []int{96, 192}
	if cfg.Quick {
		dense = dense[:1]
	}
	for _, n := range dense {
		addRow(fmt.Sprintf("G(%d, 0.5) dense", n), graph.GNP(n, 0.5, cfg.seed()+4))
	}
	t.Notes = append(t.Notes,
		"Paper claim: Õ(√n + D) rounds. The normalized column should stay near-constant (up to polylog) while n grows 4–8x; a linear-round algorithm would double it with every doubling of n.",
		"The last column is the trivial centralize-and-solve baseline at Θ(m + D) rounds: on sparse graphs at this scale its small constant wins, but it scales with m — on the dense rows the sublinear algorithm already beats it, and the gap widens as m/√n grows (the regime the paper targets).")
	return t
}

// E3Exact — the main theorem: exact min cut in Õ((√n+D)·poly(λ)).
func E3Exact(cfg Config) *Table {
	lambdas := []int{1, 2, 3, 4, 5, 6}
	if cfg.Quick {
		lambdas = []int{1, 2, 3}
	}
	t := &Table{
		ID:     "E3",
		Title:  "Exact algorithm: value vs Stoer–Wagner, cost vs λ",
		Header: []string{"λ (planted)", "n", "exact?", "value", "Stoer–Wagner", "trees packed", "rounds", "rounds/(√n+D)"},
	}
	for _, lam := range lambdas {
		g := graph.PlantedCut(24, 24, lam, 0.5, cfg.seed()+int64(lam))
		want, _, err := baseline.StoerWagner(g)
		if err != nil {
			continue
		}
		res, err := distmincut.MinCut(g, &distmincut.Options{Seed: cfg.seed(), Workers: cfg.Workers, DeliveryShards: cfg.DeliveryShards})
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("λ=%d: %v", lam, err))
			continue
		}
		d := graph.Diameter(g)
		norm := math.Sqrt(float64(g.N())) + float64(d)
		t.Rows = append(t.Rows, []string{
			itoa(int64(lam)), itoa(int64(g.N())), fmt.Sprintf("%v", res.Exact),
			itoa(res.Value), itoa(want), itoa(int64(res.TreesPacked)),
			itoa(int64(res.Rounds)), f2(float64(res.Rounds) / norm),
		})
	}
	t.Notes = append(t.Notes,
		"Paper claim: exact λ in Õ((√n + D)·poly(λ)) — value must equal Stoer–Wagner with exact?=true, and rounds grow with λ only through the packed tree count.")
	return t
}

// E4Approx — (1+ε)-approximation quality and cost vs ε.
func E4Approx(cfg Config) *Table {
	epss := []float64{0.5, 0.25, 0.125}
	n := 40
	if cfg.Quick {
		epss = []float64{0.5}
		n = 24
	}
	t := &Table{
		ID:     "E4",
		Title:  "(1+ε)-approximation: measured ratio and cost vs ε",
		Header: []string{"ε", "workload", "λ", "value", "ratio", "levels", "trees", "rounds"},
	}
	for _, eps := range epss {
		// Weighted complete graph: λ large enough to force sampling at
		// every ε in the sweep.
		g := graph.AssignWeights(graph.Complete(n), 8, 12, cfg.seed()+7)
		lambda, _, err := baseline.StoerWagner(g)
		if err != nil {
			continue
		}
		res, err := distmincut.ApproxMinCut(g, &distmincut.Options{Seed: cfg.seed(), Epsilon: eps, Workers: cfg.Workers, DeliveryShards: cfg.DeliveryShards})
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("ε=%.3f: %v", eps, err))
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", eps), fmt.Sprintf("weighted K%d", n), itoa(lambda),
			itoa(res.Value), f2(float64(res.Value) / float64(lambda)),
			itoa(int64(res.Levels)), itoa(int64(res.TreesPacked)), itoa(int64(res.Rounds)),
		})
	}
	t.Notes = append(t.Notes,
		"Paper claim: (1+ε)-approximation in Õ((√n+D)/poly(ε)). The measured ratio must stay ≤ 1+ε; rounds grow as ε shrinks (deeper κ, more trees).")
	return t
}

// E5Baselines — the paper's §1 comparison: this algorithm (1+ε) vs
// Ghaffari–Kuhn (2+ε, emulated) vs Su (concurrent work, distributed).
func E5Baselines(cfg Config) *Table {
	type workload struct {
		name string
		g    *graph.Graph
	}
	workloads := []workload{
		{"planted λ=3", graph.PlantedCut(20, 20, 3, 0.5, cfg.seed())},
		{"weighted K32", graph.AssignWeights(graph.Complete(32), 8, 12, cfg.seed()+1)},
		{"torus 8x8", graph.Torus(8, 8)},
	}
	if cfg.Quick {
		workloads = workloads[:2]
	}
	const eps = 0.5
	t := &Table{
		ID:     "E5",
		Title:  "Comparison at ε=0.5: this paper (1+ε) vs GK13 (2+ε, emulated) vs Su14",
		Header: []string{"workload", "λ", "ours", "ours exact?", "ours rounds", "GK13 value", "GK13 rounds (emul.)", "Su value", "Su rounds"},
	}
	for _, w := range workloads {
		lambda, _, err := baseline.StoerWagner(w.g)
		if err != nil {
			continue
		}
		ours, err := distmincut.ApproxMinCut(w.g, &distmincut.Options{Seed: cfg.seed(), Epsilon: eps, Workers: cfg.Workers, DeliveryShards: cfg.DeliveryShards})
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s ours: %v", w.name, err))
			continue
		}
		gkVal, gkRounds, err := baseline.GhaffariKuhnEmulated(w.g, eps)
		if err != nil {
			continue
		}
		suVal, suRounds := runSu(w.g, eps, cfg.seed(), cfg)
		t.Rows = append(t.Rows, []string{
			w.name, itoa(lambda),
			itoa(ours.Value), fmt.Sprintf("%v", ours.Exact), itoa(int64(ours.Rounds)),
			itoa(gkVal), itoa(int64(gkRounds)),
			itoa(suVal), itoa(int64(suRounds)),
		})
	}
	t.Notes = append(t.Notes,
		"Paper claim: (1+ε) beats GK13's (2+ε) at the same Õ(√n+D) round order; Su matches the approximation but (unlike ours) cannot certify exactness on small cuts. GK13 rounds are billed from their published bound (DESIGN.md §4).")
	return t
}

func runSu(g *graph.Graph, eps float64, seed int64, cfg Config) (int64, int) {
	var mu sync.Mutex
	var value int64
	stats, err := runSim(g, cfg.engineOpts(seed), func(nd *congest.Node) {
		bfs := proto.BuildBFS(nd, 0, 1)
		r := baseline.Su(nd, bfs, g, eps, seed+5, 8, 1000)
		mu.Lock()
		value = r.Value // identical at every node
		mu.Unlock()
	})
	if err != nil {
		return -1, -1
	}
	return value, stats.Rounds
}

// E6Diameter — both terms of √n + D are real: fix n, grow D.
func E6Diameter(cfg Config) *Table {
	configs := []struct{ cliques, size int }{
		{2, 64}, {4, 32}, {8, 16}, {16, 8},
	}
	if cfg.Quick {
		configs = configs[:3]
		for i := range configs {
			configs[i].size /= 2
		}
	}
	t := &Table{
		ID:     "E6",
		Title:  "Diameter dependence at fixed n (clique paths): rounds track √n + D",
		Header: []string{"cliques×size", "n", "D", "rounds", "rounds/(√n+D)"},
	}
	for _, c := range configs {
		g := graph.CliquePath(c.cliques, c.size, 2)
		d := graph.Diameter(g)
		stats, _, _, err := pipelineOnce(g, cfg.seed(), cfg)
		if err != nil {
			continue
		}
		norm := math.Sqrt(float64(g.N())) + float64(d)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d×%d", c.cliques, c.size), itoa(int64(g.N())), itoa(int64(d)),
			itoa(int64(stats.Rounds)), f2(float64(stats.Rounds) / norm),
		})
	}
	t.Notes = append(t.Notes,
		"Lower bound context: Ω̃(√n + D) [Das Sarma et al.]. With n fixed, rounds must grow with D but the normalized column stays near-constant.")
	return t
}

// E7Packing — Thorup's theorem in practice: trees until some tree
// 1-respects a minimum cut, vs the practical and theoretical bounds.
func E7Packing(cfg Config) *Table {
	lambdas := []int{1, 2, 3, 4, 5}
	seeds := 8
	if cfg.Quick {
		lambdas = []int{1, 2, 3}
		seeds = 3
	}
	t := &Table{
		ID:     "E7",
		Title:  "Tree packing: trees until a tree 1-respects a min cut",
		Header: []string{"λ", "n", "mean trees", "max trees", "practical τ", "Thorup τ (λ⁷log³n)", "hits within practical τ"},
	}
	for _, lam := range lambdas {
		g0 := graph.PlantedCut(20, 20, lam, 0.5, cfg.seed())
		var sum, maxv, hits int
		for s := 0; s < seeds; s++ {
			g := graph.PlantedCut(20, 20, lam, 0.5, cfg.seed()+int64(100+s))
			lambda, _, err := baseline.StoerWagner(g)
			if err != nil {
				continue
			}
			bound := packing.PracticalTau(lambda, g.N())
			hit, err := packing.TreesUntilHit(g, lambda, bound)
			if err != nil {
				continue
			}
			sum += hit
			if hit > maxv {
				maxv = hit
			}
			if hit <= bound {
				hits++
			}
		}
		t.Rows = append(t.Rows, []string{
			itoa(int64(lam)), itoa(int64(g0.N())), f2(float64(sum) / float64(seeds)), itoa(int64(maxv)),
			itoa(int64(packing.PracticalTau(int64(lam), g0.N()))),
			itoa(int64(packing.TheoreticalTau(int64(lam), g0.N()))),
			fmt.Sprintf("%d/%d", hits, seeds),
		})
	}
	t.Notes = append(t.Notes,
		"Thorup's theorem guarantees a hit within Θ(λ⁷log³n) trees; the measured requirement is far smaller, justifying the practical τ = 3·λ·ln n policy (ablated here).")
	return t
}

// E8Figure1 — the paper's only figure: fragments, merging nodes and
// T'_F for the Figure-1 example tree, plus the O(√n) structural bounds
// on random trees.
func E8Figure1(cfg Config) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "Figure 1 structures: fragments, merging nodes, T'_F",
		Header: []string{"tree", "n", "s", "fragments (≤ n/s+1)", "max frag depth (≤ s)", "merging nodes", "|T'_F|"},
	}
	addTree := func(name string, tr *tree.Tree, s int) {
		d := partition.Split(tr, s)
		sk := partition.BuildSkeleton(tr, d)
		maxDepth := 0
		for v := 0; v < tr.N(); v++ {
			depth := 0
			for u := graph.NodeID(v); d.RootOf[u] != u; u = tr.Parent(u) {
				depth++
			}
			if depth > maxDepth {
				maxDepth = depth
			}
		}
		t.Rows = append(t.Rows, []string{
			name, itoa(int64(tr.N())), itoa(int64(d.S)),
			fmt.Sprintf("%d (bound %d)", len(d.Roots), tr.N()/d.S+1),
			fmt.Sprintf("%d (bound %d)", maxDepth, d.S),
			itoa(int64(len(sk.Merging))), itoa(int64(len(sk.Members))),
		})
	}
	// The paper's 16-node example (Figure 1a shape).
	fig, err := tree.New(0, []graph.NodeID{-1, 0, 1, 2, 0, 2, 3, 4, 5, 5, 6, 6, 7, 7, 7, 4}, nil)
	if err == nil {
		addTree("Figure 1 example", fig, 4)
	}
	sizes := []int{64, 256}
	if cfg.Quick {
		sizes = []int{64}
	}
	for _, n := range sizes {
		g := graph.RandomTree(n, cfg.seed()+2)
		tr, err := tree.FromGraphTree(g, 0)
		if err != nil {
			continue
		}
		addTree(fmt.Sprintf("random tree n=%d", n), tr, 0)
	}
	t.Notes = append(t.Notes,
		"Reproduces the decomposition Figure 1 illustrates: O(√n) fragments of O(√n) depth, merging nodes where fragment-bearing branches meet, and the skeleton tree T'_F over fragment roots + merging nodes. cmd/figure1 renders the example graphically.")
	return t
}

// E9Ablation — design choices: fragment size s (√n should minimize
// rounds) and CONGEST pipelining vs unbounded bandwidth.
func E9Ablation(cfg Config) *Table {
	side := 16
	if cfg.Quick {
		side = 8
	}
	g := graph.Torus(side, side)
	n := g.N()
	sqrtN := int(math.Sqrt(float64(n)))
	caps := []int{2, sqrtN / 2, sqrtN, 2 * sqrtN, n / 4}
	t := &Table{
		ID:     "E9",
		Title:  fmt.Sprintf("Ablations on torus %dx%d: fragment size cap and pipelining", side, side),
		Header: []string{"variant", "rounds", "messages", "value ok"},
	}
	lambda, _, err := baseline.StoerWagner(g)
	if err != nil {
		return t
	}
	for _, c := range caps {
		if c < 1 {
			continue
		}
		res, err := distmincut.MinCut(g, &distmincut.Options{Seed: cfg.seed(), SizeCap: c, Workers: cfg.Workers, DeliveryShards: cfg.DeliveryShards})
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("cap %d: %v", c, err))
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("s=%d (√n=%d)", c, sqrtN), itoa(int64(res.Rounds)), itoa(res.Messages),
			fmt.Sprintf("%v", res.Value == lambda),
		})
	}
	res, err := distmincut.MinCut(g, &distmincut.Options{Seed: cfg.seed(), Unbounded: true, Workers: cfg.Workers, DeliveryShards: cfg.DeliveryShards})
	if err == nil {
		t.Rows = append(t.Rows, []string{
			"unbounded bandwidth (LOCAL)", itoa(int64(res.Rounds)), itoa(res.Messages),
			fmt.Sprintf("%v", res.Value == lambda),
		})
	}
	t.Notes = append(t.Notes,
		"The paper's s=√n balances the n/s fragment count against the s fragment diameter; extreme caps must cost more rounds. The unbounded-bandwidth run shows how much of the cost is CONGEST pipelining.")
	return t
}
