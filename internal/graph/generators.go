package graph

import (
	"fmt"
	"math/rand"
)

// Generators build the workload families used throughout the experiment
// suite. All randomized generators take an explicit seed and are
// deterministic for a given seed. All generators return unit-weight
// graphs with sorted adjacency; use AssignWeights to randomize weights.

// Path returns the path 0-1-...-n-1 (diameter n-1).
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(NodeID(i), NodeID(i+1), 1)
	}
	g.SortAdjacency()
	return g
}

// Cycle returns the n-cycle (min cut 2 with unit weights).
func Cycle(n int) *Graph {
	g := Path(n)
	if n >= 3 {
		g.MustAddEdge(0, NodeID(n-1), 1)
	}
	g.SortAdjacency()
	return g
}

// Complete returns K_n (min cut n-1 with unit weights).
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(NodeID(i), NodeID(j), 1)
		}
	}
	g.SortAdjacency()
	return g
}

// Star returns a star with center 0 (min cut 1).
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, NodeID(i), 1)
	}
	g.SortAdjacency()
	return g
}

// Grid returns the r x c grid graph.
func Grid(r, c int) *Graph {
	g := New(r * c)
	id := func(i, j int) NodeID { return NodeID(i*c + j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.MustAddEdge(id(i, j), id(i, j+1), 1)
			}
			if i+1 < r {
				g.MustAddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	g.SortAdjacency()
	return g
}

// Torus returns the r x c torus (4-regular for r,c >= 3; min cut 4).
func Torus(r, c int) *Graph {
	if r < 3 || c < 3 {
		panic(fmt.Sprintf("graph: Torus needs r,c >= 3, got %dx%d", r, c))
	}
	g := New(r * c)
	id := func(i, j int) NodeID { return NodeID(((i+r)%r)*c + (j+c)%c) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			g.MustAddEdge(id(i, j), id(i, j+1), 1)
			g.MustAddEdge(id(i, j), id(i+1, j), 1)
		}
	}
	g.SortAdjacency()
	return g
}

// Hypercube returns the d-dimensional hypercube on 2^d nodes
// (min cut d with unit weights).
func Hypercube(d int) *Graph {
	n := 1 << d
	g := New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < d; b++ {
			v := u ^ (1 << b)
			if u < v {
				g.MustAddEdge(NodeID(u), NodeID(v), 1)
			}
		}
	}
	g.SortAdjacency()
	return g
}

// GNP returns an Erdős–Rényi G(n,p) graph, augmented with a uniformly
// random spanning-tree edge between components if the sample is
// disconnected, so the result is always connected.
func GNP(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.MustAddEdge(NodeID(i), NodeID(j), 1)
			}
		}
	}
	connect(g, rng)
	g.SortAdjacency()
	return g
}

// connect adds random edges between connected components until g is
// connected. Each added edge joins a random node of the first component
// with a random node of another.
func connect(g *Graph, rng *rand.Rand) {
	for {
		comp, k := components(g)
		if k <= 1 {
			return
		}
		// Pick one random representative per component and chain them.
		reps := make([][]NodeID, k)
		for u := 0; u < g.n; u++ {
			reps[comp[u]] = append(reps[comp[u]], NodeID(u))
		}
		for c := 1; c < k; c++ {
			u := reps[0][rng.Intn(len(reps[0]))]
			v := reps[c][rng.Intn(len(reps[c]))]
			if !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, 1)
			}
		}
	}
}

// RandomRegular returns a d-regular graph on n nodes via the
// configuration model: stubs are paired uniformly, then loops and
// duplicate pairs are repaired with double-edge swaps against randomly
// chosen accepted pairs (restarting the whole pairing only if a repair
// fails). This converges for large n*d where reject-and-restart never
// would. n*d must be even and d < n.
func RandomRegular(n, d int, seed int64) *Graph {
	if n*d%2 != 0 || d >= n || d < 1 {
		panic(fmt.Sprintf("graph: RandomRegular(%d,%d) infeasible", n, d))
	}
	rng := rand.New(rand.NewSource(seed))
	key := func(u, v NodeID) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)*int64(n) + int64(v)
	}
	stubs := make([]NodeID, 0, n*d)
	for u := 0; u < n; u++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, NodeID(u))
		}
	}
	for attempt := 0; attempt < 1000; attempt++ {
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		edges := make(map[int64]int, n*d/2) // key -> index into pairs
		pairs := make([][2]NodeID, 0, n*d/2)
		var bad [][2]NodeID
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if _, dup := edges[key(u, v)]; u == v || dup {
				bad = append(bad, [2]NodeID{u, v})
				continue
			}
			edges[key(u, v)] = len(pairs)
			pairs = append(pairs, [2]NodeID{u, v})
		}
		if len(pairs) == 0 && len(bad) > 0 {
			continue // nothing to swap against (e.g. tiny n); re-shuffle
		}
		ok := true
		for _, p := range bad {
			// Swap the rejected stub pair (u,v) with an accepted pair
			// (x,y): replace edge {x,y} by {u,x} and {v,y}. Degrees are
			// preserved and the rejected stubs get consumed.
			u, v := p[0], p[1]
			repaired := false
			for try := 0; try < 500 && !repaired; try++ {
				j := rng.Intn(len(pairs))
				x, y := pairs[j][0], pairs[j][1]
				_, dupUX := edges[key(u, x)]
				_, dupVY := edges[key(v, y)]
				if u == x || v == y || dupUX || dupVY || key(u, x) == key(v, y) {
					continue
				}
				delete(edges, key(x, y))
				pairs[j] = [2]NodeID{u, x}
				edges[key(u, x)] = j
				edges[key(v, y)] = len(pairs)
				pairs = append(pairs, [2]NodeID{v, y})
				repaired = true
			}
			if !repaired {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		g := New(n)
		for _, p := range pairs {
			g.MustAddEdge(p[0], p[1], 1)
		}
		if IsConnected(g) {
			g.SortAdjacency()
			return g
		}
	}
	panic("graph: RandomRegular failed to converge")
}

// PlantedCut returns a graph with two dense clusters of sizes n1 and n2
// joined by exactly k unit cross edges. Each cluster is a G(n,inP) kept
// connected. For inP high enough the minimum cut is the k cross edges,
// giving workloads with a known λ=k (verified against Stoer–Wagner in
// tests). Side assignment: nodes 0..n1-1 form cluster A.
func PlantedCut(n1, n2, k int, inP float64, seed int64) *Graph {
	if k > n1*n2 {
		panic("graph: PlantedCut k too large")
	}
	rng := rand.New(rand.NewSource(seed))
	n := n1 + n2
	g := New(n)
	addCluster := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := i + 1; j < hi; j++ {
				if rng.Float64() < inP {
					g.MustAddEdge(NodeID(i), NodeID(j), 1)
				}
			}
		}
		// Spanning cycle to guarantee internal 2-edge-connectivity, so
		// the planted cross cut is the minimum for k <= 2 as well.
		for i := lo; i < hi; i++ {
			j := i + 1
			if j == hi {
				j = lo
			}
			if i != j && !g.HasEdge(NodeID(i), NodeID(j)) {
				g.MustAddEdge(NodeID(i), NodeID(j), 1)
			}
		}
	}
	addCluster(0, n1)
	addCluster(n1, n)
	added := 0
	for added < k {
		u := NodeID(rng.Intn(n1))
		v := NodeID(n1 + rng.Intn(n2))
		if !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, 1)
			added++
		}
	}
	g.SortAdjacency()
	return g
}

// Barbell returns two K_k cliques joined by a path of pathLen
// intermediate nodes (min cut 1).
func Barbell(k, pathLen int) *Graph {
	n := 2*k + pathLen
	g := New(n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.MustAddEdge(NodeID(i), NodeID(j), 1)
			g.MustAddEdge(NodeID(k+pathLen+i), NodeID(k+pathLen+j), 1)
		}
	}
	prev := NodeID(0)
	for i := 0; i < pathLen; i++ {
		g.MustAddEdge(prev, NodeID(k+i), 1)
		prev = NodeID(k + i)
	}
	g.MustAddEdge(prev, NodeID(k+pathLen), 1)
	g.SortAdjacency()
	return g
}

// CliquePath returns cliques of size k arranged on a path, with adjacent
// cliques joined by bridge unit edges. It gives precise diameter control
// (D ≈ 2*numCliques) at fixed n = numCliques*k, used by experiment E6.
// The minimum cut is bridge (the number of edges between adjacent
// cliques) when bridge < k-1.
func CliquePath(numCliques, k, bridge int) *Graph {
	if bridge < 1 || bridge > k {
		panic("graph: CliquePath bridge out of range")
	}
	n := numCliques * k
	g := New(n)
	for c := 0; c < numCliques; c++ {
		base := c * k
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				g.MustAddEdge(NodeID(base+i), NodeID(base+j), 1)
			}
		}
		if c+1 < numCliques {
			for b := 0; b < bridge; b++ {
				g.MustAddEdge(NodeID(base+b), NodeID(base+k+b), 1)
			}
		}
	}
	g.SortAdjacency()
	return g
}

// RandomTree returns a uniformly random recursive tree: node v>0 picks a
// parent uniformly from 0..v-1.
func RandomTree(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(NodeID(rng.Intn(v)), NodeID(v), 1)
	}
	g.SortAdjacency()
	return g
}

// AssignWeights returns a copy of g with each edge weight drawn
// uniformly from [lo, hi].
func AssignWeights(g *Graph, lo, hi int64, seed int64) *Graph {
	if lo < 1 || hi < lo {
		panic("graph: AssignWeights needs 1 <= lo <= hi")
	}
	rng := rand.New(rand.NewSource(seed))
	ws := make([]int64, g.M())
	for i := range ws {
		ws[i] = lo + rng.Int63n(hi-lo+1)
	}
	h, _ := g.Reweight(ws)
	h.SortAdjacency()
	return h
}

// RandomSpanningTree returns a uniformly random spanning tree of g
// (Wilson's algorithm, loop-erased random walks) as a parent map rooted
// at root: parent[root] = -1 and for every other node, parent[v] is the
// neighbor of v on the tree path toward root. The returned edge IDs map
// each non-root v to the graph edge {v, parent[v]}.
func RandomSpanningTree(g *Graph, root NodeID, seed int64) (parent []NodeID, parentEdge []int) {
	rng := rand.New(rand.NewSource(seed))
	n := g.N()
	parent = make([]NodeID, n)
	parentEdge = make([]int, n)
	for i := range parent {
		parent[i] = -2 // not yet in tree
		parentEdge[i] = -1
	}
	parent[root] = -1
	next := make([]int, n) // port chosen during the current walk
	for start := 0; start < n; start++ {
		if parent[start] != -2 {
			continue
		}
		// Random walk from start until hitting the tree, recording the
		// last exit port from each visited node (loop erasure).
		u := NodeID(start)
		for parent[u] == -2 {
			p := rng.Intn(g.Degree(u))
			next[u] = p
			u = g.Adj(u)[p].Peer
		}
		// Retrace the loop-erased path and attach it.
		u = NodeID(start)
		for parent[u] == -2 {
			h := g.Adj(u)[next[u]]
			parent[u] = h.Peer
			parentEdge[u] = h.EdgeID
			u = h.Peer
		}
	}
	return parent, parentEdge
}
