package graph

import (
	"testing"
	"testing/quick"
)

func TestPathProperties(t *testing.T) {
	g := Path(10)
	if g.M() != 9 {
		t.Fatalf("Path(10) has %d edges, want 9", g.M())
	}
	if d := Diameter(g); d != 9 {
		t.Fatalf("Path(10) diameter %d, want 9", d)
	}
}

func TestCycleProperties(t *testing.T) {
	g := Cycle(8)
	if g.M() != 8 {
		t.Fatalf("Cycle(8) has %d edges, want 8", g.M())
	}
	for u := 0; u < 8; u++ {
		if g.Degree(NodeID(u)) != 2 {
			t.Fatalf("Cycle node %d degree %d, want 2", u, g.Degree(NodeID(u)))
		}
	}
	if d := Diameter(g); d != 4 {
		t.Fatalf("Cycle(8) diameter %d, want 4", d)
	}
}

func TestCompleteProperties(t *testing.T) {
	g := Complete(6)
	if g.M() != 15 {
		t.Fatalf("K6 has %d edges, want 15", g.M())
	}
	if d := Diameter(g); d != 1 {
		t.Fatalf("K6 diameter %d, want 1", d)
	}
	if md := MinDegree(g); md != 5 {
		t.Fatalf("K6 min degree %d, want 5", md)
	}
}

func TestStarProperties(t *testing.T) {
	g := Star(7)
	if g.M() != 6 || Diameter(g) != 2 {
		t.Fatalf("Star(7): m=%d D=%d, want 6 and 2", g.M(), Diameter(g))
	}
}

func TestGridTorusProperties(t *testing.T) {
	g := Grid(4, 5)
	if g.M() != 4*4+5*3 {
		t.Fatalf("Grid(4,5) edges %d, want 31", g.M())
	}
	if d := Diameter(g); d != 7 {
		t.Fatalf("Grid(4,5) diameter %d, want 7", d)
	}
	tor := Torus(4, 4)
	for u := 0; u < tor.N(); u++ {
		if tor.Degree(NodeID(u)) != 4 {
			t.Fatalf("Torus node %d degree %d, want 4", u, tor.Degree(NodeID(u)))
		}
	}
	if err := tor.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHypercubeProperties(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4: n=%d m=%d, want 16, 32", g.N(), g.M())
	}
	if d := Diameter(g); d != 4 {
		t.Fatalf("Q4 diameter %d, want 4", d)
	}
}

func TestGNPAlwaysConnected(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := GNP(50, 0.02, seed) // sparse enough to usually be disconnected pre-fix
		if !IsConnected(g) {
			t.Fatalf("GNP seed %d not connected", seed)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandomRegularDegrees(t *testing.T) {
	g := RandomRegular(30, 4, 7)
	for u := 0; u < g.N(); u++ {
		if g.Degree(NodeID(u)) != 4 {
			t.Fatalf("node %d degree %d, want 4", u, g.Degree(NodeID(u)))
		}
	}
	if !IsConnected(g) {
		t.Fatal("RandomRegular disconnected")
	}
}

// TestRandomRegularSmallAndLarge: the double-edge-swap repair must
// handle degenerate shuffles on tiny graphs (where a pairing can
// consist entirely of self-loops, leaving nothing to swap against) and
// converge on sizes where reject-and-restart never would.
func TestRandomRegularSmallAndLarge(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		for _, c := range []struct{ n, d int }{{3, 2}, {4, 2}, {4, 3}, {6, 3}} {
			g := RandomRegular(c.n, c.d, seed)
			for u := 0; u < g.N(); u++ {
				if g.Degree(NodeID(u)) != c.d {
					t.Fatalf("n=%d d=%d seed=%d: node %d degree %d", c.n, c.d, seed, u, g.Degree(NodeID(u)))
				}
			}
		}
	}
	g := RandomRegular(5000, 8, 1)
	for u := 0; u < g.N(); u++ {
		if g.Degree(NodeID(u)) != 8 {
			t.Fatalf("node %d degree %d, want 8", u, g.Degree(NodeID(u)))
		}
	}
	if !IsConnected(g) {
		t.Fatal("large RandomRegular disconnected")
	}
}

func TestPlantedCutCrossEdges(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5} {
		g := PlantedCut(20, 25, k, 0.3, int64(k))
		side := make([]bool, g.N())
		for i := 0; i < 20; i++ {
			side[i] = true
		}
		if c := g.CutWeight(side); c != int64(k) {
			t.Fatalf("PlantedCut k=%d has cross weight %d", k, c)
		}
		if !IsConnected(g) {
			t.Fatalf("PlantedCut k=%d disconnected", k)
		}
	}
}

func TestBarbellBridge(t *testing.T) {
	g := Barbell(6, 3)
	if !IsConnected(g) {
		t.Fatal("Barbell disconnected")
	}
	if md := MinDegree(g); md != 2 {
		t.Fatalf("Barbell path node degree %d, want 2", md)
	}
}

func TestCliquePathDiameter(t *testing.T) {
	g := CliquePath(6, 8, 2)
	if !IsConnected(g) {
		t.Fatal("CliquePath disconnected")
	}
	d := Diameter(g)
	if d < 6 || d > 16 {
		t.Fatalf("CliquePath(6,8) diameter %d out of expected band [6,16]", d)
	}
	side := make([]bool, g.N())
	for i := 0; i < 3*8; i++ {
		side[i] = true
	}
	if c := g.CutWeight(side); c != 2 {
		t.Fatalf("CliquePath middle cut weight %d, want 2", c)
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%60) + 2
		g := RandomTree(n, seed)
		return g.M() == n-1 && IsConnected(g) && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignWeightsRange(t *testing.T) {
	g := AssignWeights(Cycle(12), 3, 9, 42)
	for _, e := range g.Edges() {
		if e.W < 3 || e.W > 9 {
			t.Fatalf("weight %d outside [3,9]", e.W)
		}
	}
}

// Property: RandomSpanningTree returns a spanning tree: n-1 parent
// edges, every node reaches the root, and every tree edge exists in g.
func TestRandomSpanningTreeValid(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%40) + 2
		g := GNP(n, 0.3, seed)
		parent, parentEdge := RandomSpanningTree(g, 0, seed+1)
		if parent[0] != -1 || parentEdge[0] != -1 {
			return false
		}
		for v := 1; v < n; v++ {
			e := g.Edge(parentEdge[v])
			if e.Other(NodeID(v)) != parent[v] {
				return false
			}
			// Walk to root with a step bound to catch cycles.
			u, steps := NodeID(v), 0
			for u != 0 {
				u = parent[u]
				if steps++; steps > n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDiameterMatchesLowerBoundOnTrees(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := RandomTree(40, seed)
		if Diameter(g) != DiameterLowerBound(g) {
			t.Fatalf("two-sweep not exact on tree, seed %d", seed)
		}
	}
}

func TestBFSDistances(t *testing.T) {
	g := Grid(3, 3)
	dist, parent := BFS(g, 0)
	if dist[8] != 4 {
		t.Fatalf("BFS corner-to-corner distance %d, want 4", dist[8])
	}
	// Parent chain from 8 must reach 0 in exactly dist[8] hops.
	u, hops := NodeID(8), 0
	for u != 0 {
		u = parent[u]
		hops++
	}
	if hops != dist[8] {
		t.Fatalf("parent chain length %d != dist %d", hops, dist[8])
	}
}

func TestComponentsCount(t *testing.T) {
	g := New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	_, k := Components(g)
	if k != 4 { // {0,1}, {2,3}, {4}, {5}
		t.Fatalf("Components = %d, want 4", k)
	}
}

// TestGNPSeedCompat pins the edge set GNP produces for a fixed seed
// under the geometric-skip sampler introduced with the mincutd service
// PR. The skip sampler consumes one RNG draw per sampled *edge* instead
// of one per *pair*, so the stream — and hence the graph for a given
// seed — intentionally differs from the original O(n²) implementation.
// This golden test documents the new stream: if it ever fails, the RNG
// contract of every seeded workload built on GNP has changed.
func TestGNPSeedCompat(t *testing.T) {
	g := GNP(16, 0.3, 5)
	want := [][2]NodeID{
		{1, 3}, {1, 4}, {3, 6}, {0, 7}, {2, 7}, {6, 7}, {1, 8}, {7, 8},
		{0, 9}, {6, 10}, {7, 10}, {0, 11}, {3, 11}, {4, 11}, {6, 11},
		{7, 11}, {10, 11}, {1, 12}, {2, 12}, {6, 12}, {7, 12}, {11, 12},
		{3, 13}, {1, 14}, {12, 14}, {3, 15}, {5, 15}, {9, 15}, {13, 15},
	}
	if g.M() != len(want) {
		t.Fatalf("GNP(16, 0.3, 5) has %d edges, want %d", g.M(), len(want))
	}
	for i, e := range g.Edges() {
		if e.U != want[i][0] || e.V != want[i][1] {
			t.Fatalf("edge %d = {%d,%d}, want {%d,%d}", i, e.U, e.V, want[i][0], want[i][1])
		}
	}
}

func TestGNPDeterministic(t *testing.T) {
	a, b := GNP(64, 0.1, 42), GNP(64, 0.1, 42)
	if a.M() != b.M() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.M(), b.M())
	}
	for i := range a.Edges() {
		if a.Edge(i) != b.Edge(i) {
			t.Fatalf("same seed, edge %d differs", i)
		}
	}
}

// TestGNPEdgeCountDistribution checks the skip sampler hits the
// binomial expectation: over several seeds, the mean edge count of
// G(n,p) must land near p·n(n-1)/2. connect() can only add edges, so
// the count is measured before augmentation via a p high enough that
// samples are connected already.
func TestGNPEdgeCountDistribution(t *testing.T) {
	const n, p, seeds = 200, 0.1, 30
	exp := p * float64(n) * float64(n-1) / 2 // 1990
	var sum float64
	for s := int64(0); s < seeds; s++ {
		sum += float64(GNP(n, p, s).M())
	}
	mean := sum / seeds
	// std of one sample ≈ sqrt(N·p(1-p)) ≈ 42.3; the mean of 30 has
	// std ≈ 7.7, so ±5% (≈100) is a > 12σ budget: effectively only a
	// broken sampler fails.
	if mean < 0.95*exp || mean > 1.05*exp {
		t.Fatalf("mean edge count %.1f over %d seeds, want ≈ %.1f", mean, seeds, exp)
	}
}

func TestGNPExtremes(t *testing.T) {
	// p = 0: sampling adds nothing, connect() must still produce a
	// connected graph (a random spanning structure).
	g := GNP(40, 0, 9)
	if !IsConnected(g) {
		t.Fatal("GNP(n, 0) not connected")
	}
	if g.M() < 39 {
		t.Fatalf("GNP(n, 0) has %d edges, want at least a spanning structure", g.M())
	}
	// p = 1: the complete graph, exactly.
	k := GNP(12, 1, 3)
	if k.M() != 12*11/2 {
		t.Fatalf("GNP(n, 1) has %d edges, want %d", k.M(), 12*11/2)
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestGNPLargeSparse is the scale gate for the geometric skip sampler:
// a 100k-node sparse sample must be generated in well under a second
// (the old per-pair loop would need 5·10^9 draws here).
func TestGNPLargeSparse(t *testing.T) {
	if testing.Short() {
		t.Skip("scale workload")
	}
	const n = 100_000
	g := GNP(n, 8/float64(n), 11)
	if !IsConnected(g) {
		t.Fatal("not connected")
	}
	exp := 8 * float64(n) / 2
	if m := float64(g.M()); m < 0.9*exp || m > 1.2*exp {
		t.Fatalf("m = %.0f, want ≈ %.0f", m, exp)
	}
}
