// Package graph provides the weighted undirected graph substrate used by
// every other package in this repository: construction, validation,
// workload generators, and sequential structural analysis (BFS,
// diameter, connectivity).
//
// Graphs are simple (no parallel edges, no self loops) with positive
// integer weights. Integer weights are what the paper's sampling
// reduction needs: a weight-w edge is treated as w parallel unit edges
// when Karger-sampling (see internal/sampling).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node. IDs are dense: 0..N-1. The CONGEST model
// assumes unique IDs; using dense integers loses no generality and keeps
// messages at O(log n) bits.
type NodeID int

// Edge is an undirected weighted edge. Endpoints are stored canonically
// with U < V. ID is the index of the edge in Graph.Edges and is stable
// across subgraph views that share the parent's edge list.
type Edge struct {
	U, V NodeID
	W    int64
	ID   int
}

// Other returns the endpoint of e that is not x.
func (e Edge) Other(x NodeID) NodeID {
	if e.U == x {
		return e.V
	}
	return e.U
}

// Half is one directed half of an edge as seen from a node's adjacency
// list. Port p of node u refers to adj[u][p].
type Half struct {
	Peer   NodeID
	W      int64
	EdgeID int
}

// Graph is a weighted undirected simple graph with dense node IDs.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]Half
}

// New returns an empty graph on n nodes.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{n: n, adj: make([][]Half, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the edge list. Callers must not mutate it.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Adj returns the adjacency list of u. Callers must not mutate it.
// The slice index is the CONGEST "port number" of the edge at u.
func (g *Graph) Adj(u NodeID) []Half { return g.adj[u] }

// Degree returns the number of edges incident to u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// WeightedDegree returns the sum of weights of edges incident to u
// (delta(u) in the paper).
func (g *Graph) WeightedDegree(u NodeID) int64 {
	var s int64
	for _, h := range g.adj[u] {
		s += h.W
	}
	return s
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() int64 {
	var s int64
	for _, e := range g.edges {
		s += e.W
	}
	return s
}

// HasEdge reports whether an edge {u,v} exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u == v {
		return false
	}
	// Scan the smaller adjacency list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, h := range g.adj[u] {
		if h.Peer == v {
			return true
		}
	}
	return false
}

// ErrBadEdge is returned by AddEdge for self loops, duplicate edges,
// out-of-range endpoints, or non-positive weights.
var ErrBadEdge = errors.New("graph: invalid edge")

// AddEdge inserts the undirected edge {u,v} with weight w and returns
// its edge ID.
func (g *Graph) AddEdge(u, v NodeID, w int64) (int, error) {
	if u == v {
		return 0, fmt.Errorf("%w: self loop at %d", ErrBadEdge, u)
	}
	if u < 0 || v < 0 || int(u) >= g.n || int(v) >= g.n {
		return 0, fmt.Errorf("%w: endpoint out of range (%d,%d) with n=%d", ErrBadEdge, u, v, g.n)
	}
	if w <= 0 {
		return 0, fmt.Errorf("%w: weight %d must be positive", ErrBadEdge, w)
	}
	if g.HasEdge(u, v) {
		return 0, fmt.Errorf("%w: duplicate edge {%d,%d}", ErrBadEdge, u, v)
	}
	if u > v {
		u, v = v, u
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, W: w, ID: id})
	g.adj[u] = append(g.adj[u], Half{Peer: v, W: w, EdgeID: id})
	g.adj[v] = append(g.adj[v], Half{Peer: u, W: w, EdgeID: id})
	return id, nil
}

// MustAddEdge is AddEdge that panics on error. Generators use it with
// inputs they construct themselves.
func (g *Graph) MustAddEdge(u, v NodeID, w int64) int {
	id, err := g.AddEdge(u, v, w)
	if err != nil {
		panic(err)
	}
	return id
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.edges = make([]Edge, len(g.edges))
	copy(c.edges, g.edges)
	for u := range g.adj {
		c.adj[u] = make([]Half, len(g.adj[u]))
		copy(c.adj[u], g.adj[u])
	}
	return c
}

// Reweight returns a copy of g where edge i has weight ws[i]. Edges with
// ws[i] <= 0 are dropped. Edge IDs are reassigned densely; the returned
// graph also reports, for each new edge, the originating edge ID of g
// via the second return value (new edge ID -> old edge ID).
func (g *Graph) Reweight(ws []int64) (*Graph, []int) {
	if len(ws) != len(g.edges) {
		panic(fmt.Sprintf("graph: Reweight got %d weights for %d edges", len(ws), len(g.edges)))
	}
	c := New(g.n)
	origin := make([]int, 0, len(g.edges))
	for i, e := range g.edges {
		if ws[i] <= 0 {
			continue
		}
		c.MustAddEdge(e.U, e.V, ws[i])
		origin = append(origin, e.ID)
	}
	return c, origin
}

// Validate checks internal consistency: adjacency lists agree with the
// edge list, canonical endpoint order, positive weights, no loops or
// duplicates. It is used by tests and by generators in debug paths.
func (g *Graph) Validate() error {
	if len(g.adj) != g.n {
		return fmt.Errorf("graph: adj has %d rows for n=%d", len(g.adj), g.n)
	}
	deg := make([]int, g.n)
	seen := make(map[[2]NodeID]bool, len(g.edges))
	for i, e := range g.edges {
		if e.ID != i {
			return fmt.Errorf("graph: edge %d has ID %d", i, e.ID)
		}
		if e.U >= e.V {
			return fmt.Errorf("graph: edge %d endpoints not canonical: (%d,%d)", i, e.U, e.V)
		}
		if e.U < 0 || int(e.V) >= g.n {
			return fmt.Errorf("graph: edge %d out of range: (%d,%d)", i, e.U, e.V)
		}
		if e.W <= 0 {
			return fmt.Errorf("graph: edge %d has non-positive weight %d", i, e.W)
		}
		k := [2]NodeID{e.U, e.V}
		if seen[k] {
			return fmt.Errorf("graph: duplicate edge {%d,%d}", e.U, e.V)
		}
		seen[k] = true
		deg[e.U]++
		deg[e.V]++
	}
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) != deg[u] {
			return fmt.Errorf("graph: node %d adjacency length %d != degree %d", u, len(g.adj[u]), deg[u])
		}
		for p, h := range g.adj[u] {
			e := g.edges[h.EdgeID]
			if e.Other(NodeID(u)) != h.Peer || h.W != e.W {
				return fmt.Errorf("graph: node %d port %d inconsistent with edge %d", u, p, h.EdgeID)
			}
		}
	}
	return nil
}

// PortOf returns the port index at u of the edge with the given ID, or
// -1 if no incident edge has that ID.
func (g *Graph) PortOf(u NodeID, edgeID int) int {
	for p, h := range g.adj[u] {
		if h.EdgeID == edgeID {
			return p
		}
	}
	return -1
}

// SortAdjacency orders every adjacency list by peer ID. Generators call
// it so that port numbering is deterministic regardless of insertion
// order; the CONGEST runtime relies on this for reproducibility.
func (g *Graph) SortAdjacency() {
	for u := range g.adj {
		sort.Slice(g.adj[u], func(i, j int) bool { return g.adj[u][i].Peer < g.adj[u][j].Peer })
	}
}

// CutWeight returns the total weight of edges with exactly one endpoint
// in the set marked true by side. This is the paper's C(X).
func (g *Graph) CutWeight(side []bool) int64 {
	var s int64
	for _, e := range g.edges {
		if side[e.U] != side[e.V] {
			s += e.W
		}
	}
	return s
}
