package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeRejectsBadInput(t *testing.T) {
	g := New(4)
	cases := []struct {
		name    string
		u, v    NodeID
		w       int64
		wantErr bool
	}{
		{"ok", 0, 1, 5, false},
		{"self loop", 2, 2, 1, true},
		{"negative weight", 0, 2, -1, true},
		{"zero weight", 0, 2, 0, true},
		{"out of range", 0, 9, 1, true},
		{"negative node", -1, 2, 1, true},
		{"duplicate", 1, 0, 3, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := g.AddEdge(tc.u, tc.v, tc.w)
			if tc.wantErr && !errors.Is(err, ErrBadEdge) {
				t.Fatalf("AddEdge(%d,%d,%d) err = %v, want ErrBadEdge", tc.u, tc.v, tc.w, err)
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("AddEdge(%d,%d,%d) unexpected error: %v", tc.u, tc.v, tc.w, err)
			}
		})
	}
}

func TestEdgeCanonicalOrder(t *testing.T) {
	g := New(3)
	id := g.MustAddEdge(2, 1, 7)
	e := g.Edge(id)
	if e.U != 1 || e.V != 2 || e.W != 7 {
		t.Fatalf("edge stored as (%d,%d,%d), want (1,2,7)", e.U, e.V, e.W)
	}
	if e.Other(1) != 2 || e.Other(2) != 1 {
		t.Fatalf("Other() inconsistent for edge %+v", e)
	}
}

func TestWeightedDegreeAndTotal(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 3)
	g.MustAddEdge(1, 2, 5)
	if d := g.WeightedDegree(1); d != 8 {
		t.Fatalf("WeightedDegree(1) = %d, want 8", d)
	}
	if tw := g.TotalWeight(); tw != 8 {
		t.Fatalf("TotalWeight = %d, want 8", tw)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Cycle(5)
	c := g.Clone()
	c.MustAddEdge(0, 2, 9)
	if g.M() == c.M() {
		t.Fatal("mutating clone changed original edge count")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("original invalid after clone mutation: %v", err)
	}
}

func TestReweightDropsZeroEdges(t *testing.T) {
	g := Cycle(4)
	ws := []int64{1, 0, 2, 3}
	h, origin := g.Reweight(ws)
	if h.M() != 3 {
		t.Fatalf("Reweight kept %d edges, want 3", h.M())
	}
	for newID, oldID := range origin {
		oe, ne := g.Edge(oldID), h.Edge(newID)
		if oe.U != ne.U || oe.V != ne.V {
			t.Fatalf("origin map wrong: new %v from old %v", ne, oe)
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("reweighted graph invalid: %v", err)
	}
}

func TestPortOf(t *testing.T) {
	g := Path(4)
	e := g.Edges()[1] // {1,2}
	p := g.PortOf(1, e.ID)
	if p < 0 || g.Adj(1)[p].Peer != 2 {
		t.Fatalf("PortOf(1, edge{1,2}) = %d, wrong port", p)
	}
	if g.PortOf(3, e.ID) != -1 {
		t.Fatal("PortOf on non-incident node should be -1")
	}
}

func TestCutWeight(t *testing.T) {
	g := Cycle(6)
	side := make([]bool, 6)
	side[0], side[1], side[2] = true, true, true
	if c := g.CutWeight(side); c != 2 {
		t.Fatalf("CutWeight of contiguous arc on C6 = %d, want 2", c)
	}
	all := make([]bool, 6)
	if c := g.CutWeight(all); c != 0 {
		t.Fatalf("CutWeight of empty side = %d, want 0", c)
	}
}

// Property: for random graphs, Validate passes, every node's weighted
// degree sums to twice the total weight, and adjacency is symmetric.
func TestRandomGraphInvariants(t *testing.T) {
	f := func(seed int64, rawN uint8, rawP uint8) bool {
		n := int(rawN%40) + 2
		p := float64(rawP%90)/100 + 0.05
		g := GNP(n, p, seed)
		if err := g.Validate(); err != nil {
			t.Logf("Validate: %v", err)
			return false
		}
		var degSum int64
		for u := 0; u < n; u++ {
			degSum += g.WeightedDegree(NodeID(u))
		}
		if degSum != 2*g.TotalWeight() {
			t.Logf("handshake lemma violated: %d != 2*%d", degSum, g.TotalWeight())
			return false
		}
		for u := 0; u < n; u++ {
			for _, h := range g.Adj(NodeID(u)) {
				if !g.HasEdge(NodeID(u), h.Peer) {
					return false
				}
			}
		}
		return IsConnected(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: CutWeight(side) == CutWeight(complement of side).
func TestCutWeightComplementSymmetry(t *testing.T) {
	f := func(seed int64, rawN uint8, mask uint64) bool {
		n := int(rawN%30) + 2
		g := GNP(n, 0.3, seed)
		side := make([]bool, n)
		comp := make([]bool, n)
		for i := 0; i < n; i++ {
			side[i] = mask>>(uint(i)%64)&1 == 1
			comp[i] = !side[i]
		}
		return g.CutWeight(side) == g.CutWeight(comp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: cut weights are subadditive under symmetric difference for
// disjoint singleton moves: moving one node changes the cut by exactly
// (crossing delta), checked via direct recomputation.
func TestCutWeightSingleFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(20) + 3
		g := GNP(n, 0.4, rng.Int63())
		side := make([]bool, n)
		for i := range side {
			side[i] = rng.Intn(2) == 0
		}
		before := g.CutWeight(side)
		v := NodeID(rng.Intn(n))
		var toSame, toOther int64
		for _, h := range g.Adj(v) {
			if side[h.Peer] == side[v] {
				toSame += h.W
			} else {
				toOther += h.W
			}
		}
		side[v] = !side[v]
		after := g.CutWeight(side)
		if after != before+toSame-toOther {
			t.Fatalf("flip delta wrong: before=%d after=%d same=%d other=%d", before, after, toSame, toOther)
		}
	}
}
