package graph

// Sequential structural analysis used for workload characterization and
// verification. Nothing here is part of the distributed algorithm; the
// experiment harness uses these to report n, m, D, λ ground truth.

// BFS returns the hop distances from src (-1 for unreachable nodes) and
// a BFS parent array (parent[src] = -1, parent[v] = -1 if unreachable).
func BFS(g *Graph, src NodeID) (dist []int, parent []NodeID) {
	n := g.N()
	dist = make([]int, n)
	parent = make([]NodeID, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, h := range g.Adj(u) {
			if dist[h.Peer] == -1 {
				dist[h.Peer] = dist[u] + 1
				parent[h.Peer] = u
				queue = append(queue, h.Peer)
			}
		}
	}
	return dist, parent
}

// components labels connected components 0..k-1 and returns the label
// array and k.
func components(g *Graph) ([]int, int) {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	k := 0
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		stack := []NodeID{NodeID(s)}
		comp[s] = k
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, h := range g.Adj(u) {
				if comp[h.Peer] == -1 {
					comp[h.Peer] = k
					stack = append(stack, h.Peer)
				}
			}
		}
		k++
	}
	return comp, k
}

// Components labels connected components 0..k-1 and returns the label
// array and the number of components k.
func Components(g *Graph) ([]int, int) { return components(g) }

// IsConnected reports whether g is connected (the empty graph and the
// single-node graph are connected).
func IsConnected(g *Graph) bool {
	if g.N() <= 1 {
		return true
	}
	_, k := components(g)
	return k == 1
}

// Eccentricity returns the maximum hop distance from src to any
// reachable node.
func Eccentricity(g *Graph, src NodeID) int {
	dist, _ := BFS(g, src)
	ecc := 0
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact hop diameter by running a BFS from every
// node. It is O(n·m); intended for n up to a few thousand, which covers
// every workload in the experiment suite. Disconnected graphs return -1.
func Diameter(g *Graph) int {
	if !IsConnected(g) {
		return -1
	}
	d := 0
	for u := 0; u < g.N(); u++ {
		if e := Eccentricity(g, NodeID(u)); e > d {
			d = e
		}
	}
	return d
}

// DiameterLowerBound returns a fast two-sweep lower bound on the hop
// diameter (exact on trees).
func DiameterLowerBound(g *Graph) int {
	if g.N() == 0 {
		return 0
	}
	dist, _ := BFS(g, 0)
	far := NodeID(0)
	for v, d := range dist {
		if d > dist[far] {
			far = NodeID(v)
		}
	}
	return Eccentricity(g, far)
}

// MinDegree returns the minimum weighted degree, a trivial upper bound
// on the minimum cut.
func MinDegree(g *Graph) int64 {
	if g.N() == 0 {
		return 0
	}
	best := g.WeightedDegree(0)
	for u := 1; u < g.N(); u++ {
		if d := g.WeightedDegree(NodeID(u)); d < best {
			best = d
		}
	}
	return best
}
