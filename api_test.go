package distmincut

import (
	"errors"
	"testing"

	"distmincut/internal/baseline"
	"distmincut/internal/graph"
	"distmincut/internal/verify"
)

func TestMinCutExactMatchesStoerWagner(t *testing.T) {
	workloads := map[string]*graph.Graph{
		"planted2":   graph.PlantedCut(12, 14, 2, 0.5, 3),
		"planted4":   graph.PlantedCut(12, 12, 4, 0.7, 4),
		"cycle":      graph.Cycle(18),
		"weighted":   graph.AssignWeights(graph.Cycle(14), 1, 6, 5),
		"cliquepath": graph.CliquePath(3, 6, 2),
	}
	for name, g := range workloads {
		t.Run(name, func(t *testing.T) {
			want, _, err := baseline.StoerWagner(g)
			if err != nil {
				t.Fatal(err)
			}
			res, err := MinCut(g, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Exact {
				t.Fatal("result not certified exact")
			}
			if res.Value != want {
				t.Fatalf("MinCut = %d, Stoer–Wagner %d", res.Value, want)
			}
			w, err := verify.CutSides(g, res.Side)
			if err != nil || w != want {
				t.Fatalf("side invalid: weight %d err %v", w, err)
			}
			if res.Rounds <= 0 || res.Messages <= 0 {
				t.Fatal("missing complexity accounting")
			}
		})
	}
}

func TestApproxMinCutQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("full sampling descent is slow (dominates the -race gate)")
	}
	// λ = 39 exceeds κ(0.5, 40) = 18, forcing at least one sampling
	// level (a planted cut would not do: isolating one node there is
	// cheaper than the planted crossing and falls below κ).
	g := graph.Complete(40)
	want, _, err := baseline.StoerWagner(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ApproxMinCut(g, &Options{Epsilon: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels < 1 {
		t.Fatalf("expected sampling to engage, levels = %d", res.Levels)
	}
	if res.Value < want {
		t.Fatalf("approx cut %d below optimum %d — not a real cut?", res.Value, want)
	}
	if float64(res.Value) > 1.5*float64(want) {
		t.Fatalf("approx cut %d exceeds (1+ε)·λ = %.0f", res.Value, 1.5*float64(want))
	}
	w, err := verify.CutSides(g, res.Side)
	if err != nil || w != res.Value {
		t.Fatalf("side weight %d != reported %d (err %v)", w, res.Value, err)
	}
}

func TestApproxMinCutExactWhenSmall(t *testing.T) {
	g := graph.PlantedCut(12, 12, 2, 0.5, 9)
	res, err := ApproxMinCut(g, &Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Value != 2 || res.Levels != 0 {
		t.Fatalf("small cut should be exact at level 0: %+v", res)
	}
}

func TestOneRespectingCut(t *testing.T) {
	g := graph.PlantedCut(12, 12, 3, 0.5, 11)
	lambda, _, err := baseline.StoerWagner(g)
	if err != nil {
		t.Fatal(err)
	}
	res, perNode, err := OneRespectingCut(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value < lambda {
		t.Fatalf("1-respecting cut %d below λ %d", res.Value, lambda)
	}
	if len(perNode) != g.N() {
		t.Fatalf("perNode has %d entries", len(perNode))
	}
	w, err := verify.CutSides(g, res.Side)
	if err != nil || w != res.Value {
		t.Fatalf("side weight %d != value %d (err %v)", w, res.Value, err)
	}
	// Every node's C(v↓) is at least the best.
	for v, c := range perNode {
		if v != 0 && c < res.Value {
			t.Fatalf("node %d has C(v↓)=%d below reported best %d", v, c, res.Value)
		}
	}
}

func TestBadInput(t *testing.T) {
	if _, err := MinCut(graph.New(1), nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("singleton accepted: %v", err)
	}
	disc := graph.New(4)
	disc.MustAddEdge(0, 1, 1)
	disc.MustAddEdge(2, 3, 1)
	if _, err := MinCut(disc, nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("disconnected accepted: %v", err)
	}
	if _, err := ApproxMinCut(graph.New(0), nil); !errors.Is(err, ErrBadInput) {
		t.Fatal("empty accepted")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g := graph.PlantedCut(10, 12, 3, 0.6, 13)
	a, err := MinCut(g, &Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinCut(g, &Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Rounds != b.Rounds || a.Messages != b.Messages {
		t.Fatalf("same seed, different runs: %+v vs %+v", a, b)
	}
}

func TestUnboundedAblationFasterOrEqual(t *testing.T) {
	g := graph.PlantedCut(10, 12, 2, 0.6, 17)
	bounded, err := MinCut(g, &Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	unbounded, err := MinCut(g, &Options{Seed: 2, Unbounded: true})
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.Value != bounded.Value {
		t.Fatalf("ablation changed the answer: %d vs %d", unbounded.Value, bounded.Value)
	}
	if unbounded.Rounds > bounded.Rounds {
		t.Fatalf("unbounded bandwidth used more rounds (%d > %d)", unbounded.Rounds, bounded.Rounds)
	}
}
