// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, used by `make bench` and CI
// to publish BENCH_engine.json as the perf trajectory artifact.
//
// Usage:
//
//	go test ./internal/congest -bench BenchmarkEngine -benchmem | benchjson > BENCH_engine.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. Metrics maps unit -> value for
// every `value unit` pair after the iteration count (ns/op, B/op,
// allocs/op, plus any custom b.ReportMetric units such as msgs/s).
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Stdin, os.Stdout))
}

func run(in *os.File, out *os.File) int {
	var rep Report
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		return 1
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	return 0
}

func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}
