// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, used by `make bench` and CI
// to publish BENCH_engine.json as the perf trajectory artifact.
//
// It also implements the CI perf-regression gate: -compare checks a new
// report against a committed baseline and exits non-zero when a gated
// metric worsened beyond the threshold on the gated benchmarks. The
// gated metric set is chosen per benchmark from what it reports: service
// latency rows (p50-ns present) gate p50-ns and p95-ns, million-scale
// engine rows (round-ns present) gate round-ns and allocs/op, everything
// else gates ns/op and allocs/op.
//
// With -allow-missing, a -compare run whose baseline has no benchmarks
// matching -match warns and exits 0 instead of 2 — used for gates over
// metrics the base ref may predate (the open-loop service rows), so the
// gate arms itself on the first PR after the metric lands.
//
// Usage:
//
//	go test ./internal/congest -bench BenchmarkEngine -benchmem | benchjson > BENCH_engine.json
//	benchjson -compare BENCH_engine.json new.json [-threshold 0.20] [-match 'BenchmarkEngine(Million)?(Step)?Expander'] [-allow-missing]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. Metrics maps unit -> value for
// every `value unit` pair after the iteration count (ns/op, B/op,
// allocs/op, plus any custom b.ReportMetric units such as msgs/s).
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	compare := flag.Bool("compare", false, "compare two report files (old new) instead of converting stdin")
	threshold := flag.Float64("threshold", 0.20, "relative regression tolerated by -compare (0.20 = 20%)")
	// The default gate covers the expander rows of both execution paths
	// at both scales: BenchmarkEngineExpander*, BenchmarkEngineStepExpander*,
	// BenchmarkEngineMillionExpander*, and BenchmarkEngineMillionStepExpander*.
	match := flag.String("match", "BenchmarkEngine(Million)?(Step)?Expander", "regexp of benchmark names gated by -compare")
	allowMissing := flag.Bool("allow-missing", false, "exit 0 when the baseline has no benchmarks matching -match (new-metric grace)")
	flag.Parse()
	if *compare {
		os.Exit(runCompare(flag.Args(), *threshold, *match, *allowMissing))
	}
	os.Exit(run(os.Stdin, os.Stdout))
}

func run(in *os.File, out *os.File) int {
	var rep Report
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	rep.Benchmarks = dedupeBest(rep.Benchmarks)
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		return 1
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	return 0
}

func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}

// dedupeBest collapses repeated lines for the same benchmark (`go test
// -count N`) into the run with the lowest ns/op. The minimum is the
// standard estimator on machines with noisy co-tenants: external
// interference only ever slows a run down, so the fastest observation
// is the closest to the code's true cost.
func dedupeBest(benchmarks []Benchmark) []Benchmark {
	best := map[string]int{}
	var out []Benchmark
	for _, b := range benchmarks {
		i, seen := best[b.Name]
		if !seen {
			best[b.Name] = len(out)
			out = append(out, b)
			continue
		}
		if b.Metrics["ns/op"] < out[i].Metrics["ns/op"] {
			out[i] = b
		}
	}
	return out
}

// gatedMetrics are the metrics -compare enforces: lower is better for
// all of them, and allocs/op is noise-free so any budget works there.
// When a benchmark reports the round-ns metric (the million workloads,
// which split steady-state round time from engine setup), round-ns
// replaces ns/op as the gated time metric: setup cost at that scale is
// kernel-bound and co-tenant-noisy, while round time is the number the
// engine work actually moves. When a benchmark reports p50-ns (the
// service loadgen rows), the latency percentiles are gated instead:
// mean ns/op on an open-loop run is dominated by the run's tail, while
// p50/p95 are the serving numbers the service PRs actually move. A
// baseline that predates a metric simply leaves that axis ungated for
// the benchmark (missing baseline metrics are skipped, never failed).
var gatedMetrics = []string{"ns/op", "allocs/op"}

var gatedMetricsRound = []string{"round-ns", "allocs/op"}

var gatedMetricsLatency = []string{"p50-ns", "p95-ns"}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// runCompare exits 0 when every gated benchmark present in both reports
// stays within threshold on every gated metric, 1 on regression, 2 on
// usage or I/O errors. Benchmarks present on only one side are reported
// but never fail the gate (they are new or retired workloads); an empty
// intersection is exit 2 unless allowMissing grants the new-metric
// grace.
func runCompare(args []string, threshold float64, match string, allowMissing bool) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "benchjson: -compare wants exactly two arguments: old.json new.json")
		return 2
	}
	re, err := regexp.Compile(match)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: bad -match:", err)
		return 2
	}
	oldRep, err := loadReport(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newRep, err := loadReport(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	oldBy := map[string]Benchmark{}
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}
	failed := false
	compared := 0
	for _, nb := range newRep.Benchmarks {
		if !re.MatchString(nb.Name) {
			continue
		}
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Printf("%-44s new benchmark, not gated\n", nb.Name)
			continue
		}
		delete(oldBy, nb.Name)
		compared++
		metrics := gatedMetrics
		switch {
		case nb.Metrics["p50-ns"] > 0:
			metrics = gatedMetricsLatency
		case nb.Metrics["round-ns"] > 0:
			metrics = gatedMetricsRound
		}
		for _, metric := range metrics {
			ov, nv := ob.Metrics[metric], nb.Metrics[metric]
			if ov <= 0 {
				continue
			}
			ratio := nv/ov - 1
			status := "ok"
			if ratio > threshold {
				status = "REGRESSION"
				failed = true
			}
			fmt.Printf("%-44s %-10s %14.1f -> %14.1f  %+6.1f%%  %s\n",
				nb.Name, metric, ov, nv, 100*ratio, status)
		}
	}
	for name := range oldBy {
		if re.MatchString(name) {
			fmt.Printf("%-44s missing from new report, not gated\n", name)
		}
	}
	if compared == 0 {
		if allowMissing {
			fmt.Fprintf(os.Stderr, "benchjson: baseline has no benchmarks matching %q, gate skipped (-allow-missing)\n", match)
			return 0
		}
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks matched %q in both reports\n", match)
		return 2
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchjson: performance regression beyond %.0f%% threshold\n", 100*threshold)
		return 1
	}
	fmt.Printf("benchjson: %d benchmark(s) within %.0f%% of baseline\n", compared, 100*threshold)
	return 0
}
