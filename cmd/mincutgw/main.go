// Command mincutgw fronts a fleet of mincutd replicas with a
// fault-tolerant routing tier. Every submission is canonicalized and
// routed by its content-address hash — the same key the replicas cache
// results under — onto a consistent-hash ring, so identical specs
// stick to one replica and coalesce or cache-hit there exactly as on a
// single instance.
//
// Because the backend is deterministic and content-addressed, the
// gateway retries freely: connection failures and 5xx responses
// re-route to the next ring replica inside a wall-clock budget, slow
// result fetches can be hedged (-hedge-after), replicas that stop
// answering are ejected and probed back in on exponential backoff, and
// a replica announcing a drain (SIGTERM on mincutd) keeps its running
// jobs while its queued jobs are replayed elsewhere — a rolling
// restart loses nothing.
//
// Usage:
//
//	mincutgw -replicas http://h1:8371,http://h2:8371,http://h3:8371
//	         [-addr :8370] [-vnodes 64]
//	         [-health-interval 500ms] [-health-timeout 1s]
//	         [-eject-after 2] [-reinstate-base 1s] [-reinstate-max 30s]
//	         [-retries 3] [-attempt-timeout 15s] [-budget 30s]
//	         [-hedge-after 0] [-tracked-jobs 8192]
//	         [-max-nodes 0] [-max-edges 0] [-max-body 0]
//	         [-log-level info] [-version]
//
// Each -replicas entry is a base URL, optionally prefixed name= to pin
// the replica's gateway-side name (default r0, r1, ...). The name
// prefixes every job ID the gateway hands out ("r0.j12"), which is how
// polls route back without gateway state. Run each mincutd with
// -replica <name> matching so job views and logs line up across tiers.
//
// -max-nodes/-max-edges must match the replicas' flags: the gateway
// canonicalizes submissions with the same limits to derive the same
// routing key the replica will cache under.
//
// Endpoints mirror mincutd's API (docs/API.md), with job IDs
// namespaced by replica; /healthz and /metrics report the gateway
// itself, including per-replica health and the mincutgw_* series.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"distmincut/internal/gateway"
	"distmincut/internal/service"
)

func main() {
	os.Exit(run())
}

// parseReplicas turns the -replicas flag value into the gateway's
// replica set: comma-separated base URLs, each optionally name=url.
func parseReplicas(s string) ([]gateway.Replica, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("no replicas given (want -replicas url[,url...])")
	}
	var out []gateway.Replica
	for i, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		name := fmt.Sprintf("r%d", i)
		url := ent
		if pre, rest, ok := strings.Cut(ent, "="); ok && !strings.Contains(pre, "/") {
			name, url = pre, rest
		}
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		out = append(out, gateway.Replica{Name: name, BaseURL: url})
	}
	if len(out) == 0 {
		return nil, errors.New("no replicas given (want -replicas url[,url...])")
	}
	return out, nil
}

func run() int {
	addr := flag.String("addr", ":8370", "listen address")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs, each optionally name=url")
	vnodes := flag.Int("vnodes", 64, "virtual nodes per replica on the hash ring")
	healthInterval := flag.Duration("health-interval", 500*time.Millisecond, "health probe period")
	healthTimeout := flag.Duration("health-timeout", time.Second, "health probe timeout")
	ejectAfter := flag.Int("eject-after", 2, "consecutive probe failures before a replica is ejected")
	reinstateBase := flag.Duration("reinstate-base", time.Second, "first re-probe delay after an ejection (doubles per failure)")
	reinstateMax := flag.Duration("reinstate-max", 30*time.Second, "re-probe delay ceiling for ejected replicas")
	retries := flag.Int("retries", 3, "max upstream submit attempts per request")
	attemptTimeout := flag.Duration("attempt-timeout", 15*time.Second, "per-attempt upstream timeout")
	budget := flag.Duration("budget", 30*time.Second, "wall-clock budget per client request across all attempts")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge result fetches on the next replica after this delay (0 = off)")
	trackedJobs := flag.Int("tracked-jobs", 8192, "in-flight jobs retained for replay off a lost replica")
	maxNodes := flag.Int("max-nodes", 0, "max nodes per accepted graph, matching the replicas (0 = default)")
	maxEdges := flag.Int("max-edges", 0, "max edges per accepted graph, matching the replicas (0 = default)")
	maxBody := flag.Int64("max-body", 0, "max submit body bytes (0 = default)")
	logLevel := flag.String("log-level", "info", "stderr log level: debug, info, warn, or error")
	version := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()

	if *version {
		b := service.ReadBuild()
		fmt.Printf("mincutgw %s commit %s %s\n", b.Version, b.Commit, b.GoVersion)
		return 0
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "mincutgw: bad -log-level %q (want debug, info, warn, or error)\n", *logLevel)
		return 2
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	reps, err := parseReplicas(*replicas)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mincutgw:", err)
		return 2
	}
	gw, err := gateway.New(gateway.Options{
		Replicas:       reps,
		VirtualNodes:   *vnodes,
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
		EjectAfter:     *ejectAfter,
		ReinstateBase:  *reinstateBase,
		ReinstateMax:   *reinstateMax,
		Retries:        *retries,
		AttemptTimeout: *attemptTimeout,
		Budget:         *budget,
		HedgeAfter:     *hedgeAfter,
		TrackedJobs:    *trackedJobs,
		Limits:         service.Limits{MaxNodes: *maxNodes, MaxEdges: *maxEdges},
		MaxBody:        *maxBody,
		Logger:         logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mincutgw:", err)
		return 2
	}
	server := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	logger.Info("gateway listening", "addr", *addr, "replicas", len(reps))

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		logger.Error("server failed", "err", err)
		gw.Close()
		return 1
	case sig := <-sigCh:
		logger.Info("signal received, shutting down", "signal", sig.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = server.Shutdown(ctx)
	gw.Close()
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("server failed", "err", err)
		return 1
	}
	logger.Info("gateway stopped")
	return 0
}
