// Command mincutd serves distributed min-cut computations over
// HTTP/JSON: a bounded worker pool runs the CONGEST protocols, a
// content-addressed cache serves repeat submissions without
// recomputing, and jobs are cancellable while the protocol runs.
//
// Answers are served at tiers (the "tier" request field): "bracket"
// ([lo, hi] bounds in a handful of rounds), "approx" ((1+ε)), "exact"
// (certified), "respect" (Theorem 2.1 alone), and "tiered" — the
// approximation-first flow, whose jobs publish their (1+ε) answer in
// state "refining" and then refine to the exact certified cut in the
// same job. See docs/API.md for the full HTTP reference.
//
// Usage:
//
//	mincutd [-addr :8371] [-pool 4] [-queue 256] [-cache 4096]
//	        [-engine-workers 0] [-shards 0] [-checkpayload]
//	        [-max-nodes 200000] [-max-edges 2000000] [-drain 30s]
//	        [-default-deadline 0] [-max-job-rounds 0]
//	        [-admit-ceiling 0] [-admit-downtier]
//	        [-shed-tiered 0] [-shed-approx 0] [-shed-bracket 0]
//	        [-log-level info] [-flight 64] [-pprof ""] [-replica ""]
//	        [-version]
//
// In a multi-replica deployment each instance runs with -replica
// <name> behind cmd/mincutgw: the gateway routes submissions by their
// canonical spec hash, health-checks /healthz?check=ready, and drains
// routes away when SIGTERM flips this instance's readiness false while
// its listener keeps serving polls until running jobs finish.
//
// The overload controls: per-job wall-clock and round budgets (jobs
// that trip them land in state "deadline" with partial progress and a
// Retry-After hint), bracket-based admission control (expensive
// exact/tiered requests get a 429 with a typed cost estimate, or are
// auto-degraded with -admit-downtier), and graceful tier degradation
// under queue pressure (exact→tiered→approx→bracket as the queue
// fills). See docs/ARCHITECTURE.md for how the thresholds compose.
//
// Observability (see docs/OBSERVABILITY.md): structured logs go to
// stderr at -log-level; every job keeps an event timeline served as
// Chrome trace-event JSON at /v1/jobs/{id}/trace; -flight sizes the
// per-run flight recorder whose round tail lands in the traces of
// deadline-killed jobs; -pprof exposes net/http/pprof on a separate
// listener, kept off the service port so profiling is never reachable
// through the public API.
//
// Endpoints:
//
//	POST   /v1/jobs             submit a job (generator spec or edge list)
//	GET    /v1/jobs/{id}        poll state, progress, result
//	GET    /v1/jobs/{id}/trace  job timeline as Chrome trace-event JSON
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/results/{key}    fetch a result by content address
//	GET    /healthz             liveness + build identity (?check=ready for readiness)
//	GET    /metrics             queue depth, cache hit rate, latency histograms
//
// Example session:
//
//	curl -s localhost:8371/v1/jobs -d \
//	  '{"graph":{"family":"planted","n1":24,"n2":24,"k":3,"in_p":0.4,"seed":7}}'
//	curl -s localhost:8371/v1/jobs/j1
//	curl -s localhost:8371/v1/jobs/j1/trace
//	curl -s localhost:8371/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"distmincut/internal/service"
)

func main() {
	os.Exit(run())
}

// parseLevel maps the -log-level flag to a slog level.
func parseLevel(s string) (slog.Level, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", s)
	}
	return l, nil
}

// pprofHandler builds the net/http/pprof route table by hand: the
// side listener must expose exactly the profiling routes, not whatever
// else is registered on http.DefaultServeMux.
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run() int {
	addr := flag.String("addr", ":8371", "listen address")
	pool := flag.Int("pool", 0, "concurrent protocol runs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 256, "max queued jobs before 503")
	cacheEntries := flag.Int("cache", 4096, "result cache entries")
	engineWorkers := flag.Int("engine-workers", 0, "CONGEST runtime worker lanes per run (0 = unbounded)")
	shards := flag.Int("shards", 0, "CONGEST delivery shards per run (0 = serial; the worker pool is the parallelism)")
	checkPayload := flag.Bool("checkpayload", false, "enable the runtime payload-overflow guard on every run")
	maxNodes := flag.Int("max-nodes", 0, "max nodes per accepted graph (0 = default)")
	maxEdges := flag.Int("max-edges", 0, "max edges per accepted graph (0 = default)")
	maxBody := flag.Int64("max-body", 0, "max submit body bytes (0 = default)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
	defaultDeadline := flag.Duration("default-deadline", 0, "wall-clock budget applied to jobs without deadline_ms (0 = none)")
	maxJobRounds := flag.Int("max-job-rounds", 0, "CONGEST round budget per protocol run (0 = unlimited)")
	admitCeiling := flag.Int64("admit-ceiling", 0, "admission cost ceiling in estimated round-cost units (0 = admit everything)")
	admitDowntier := flag.Bool("admit-downtier", false, "degrade over-ceiling exact/tiered requests to approx instead of rejecting with 429")
	shedTiered := flag.Float64("shed-tiered", 0, "queue-pressure fraction above which exact degrades to tiered (0 = off)")
	shedApprox := flag.Float64("shed-approx", 0, "queue-pressure fraction above which exact/tiered degrade to approx (0 = off)")
	shedBracket := flag.Float64("shed-bracket", 0, "queue-pressure fraction above which everything degrades to bracket (0 = off)")
	replica := flag.String("replica", "", "replica identity reported on job views and /healthz (empty = single instance)")
	logLevel := flag.String("log-level", "info", "stderr log level: debug, info, warn, or error")
	flight := flag.Int("flight", 0, "flight-recorder ring size in rounds (0 = default 64, negative = off)")
	pprofAddr := flag.String("pprof", "", "expose net/http/pprof on this side address (empty = off)")
	version := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()

	if *version {
		b := service.ReadBuild()
		fmt.Printf("mincutd %s commit %s %s\n", b.Version, b.Commit, b.GoVersion)
		return 0
	}
	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mincutd:", err)
		return 2
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	svc := service.New(service.Options{
		PoolSize:        *pool,
		QueueDepth:      *queue,
		CacheEntries:    *cacheEntries,
		Limits:          service.Limits{MaxNodes: *maxNodes, MaxEdges: *maxEdges},
		EngineWorkers:   *engineWorkers,
		DeliveryShards:  *shards,
		CheckPayload:    *checkPayload,
		DefaultDeadline: *defaultDeadline,
		MaxJobRounds:    *maxJobRounds,
		Admission:       service.AdmissionOptions{CeilingRounds: *admitCeiling, Downtier: *admitDowntier},
		Degrade:         service.DegradeOptions{TieredAt: *shedTiered, ApproxAt: *shedApprox, BracketAt: *shedBracket},
		Logger:          logger,
		FlightRounds:    *flight,
		Replica:         *replica,
	})
	api := service.NewAPI(svc)
	api.MaxBody = *maxBody
	server := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *pprofAddr != "" {
		pprofServer := &http.Server{
			Addr:              *pprofAddr,
			Handler:           pprofHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := pprofServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "addr", *pprofAddr, "err", err)
			}
		}()
		logger.Info("pprof listening", "addr", *pprofAddr)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	logger.Info("listening", "addr", *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		logger.Error("server failed", "err", err)
		return 1
	case sig := <-sigCh:
		logger.Info("signal received, draining", "signal", sig.String(), "budget", *drain)
	}

	// Drain in two stages so the listener outlives the job drain:
	// readiness flips false immediately (BeginDrain: Submit 503s,
	// /healthz?check=ready answers 503, plain /healthz stays 200), but
	// HTTP keeps serving while queued and running jobs finish — a
	// gateway observes the drain and routes around this replica, and
	// clients keep polling their in-flight jobs. Only once the service
	// drain completes (or the budget expires) does the listener close.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	svc.BeginDrain()
	drainErr := svc.Shutdown(ctx)
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer httpCancel()
	_ = server.Shutdown(httpCtx)
	if drainErr != nil {
		logger.Warn("drain incomplete, running jobs canceled", "err", drainErr)
		return 1
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("server failed", "err", err)
		return 1
	}
	logger.Info("drained cleanly")
	return 0
}
