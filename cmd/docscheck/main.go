// Command docscheck is the documentation gate `make docs-check` runs in
// CI. It enforces two invariants:
//
//   - Markdown hygiene: every relative link in the given markdown files
//     (and directories of them) must resolve to an existing file, and a
//     #fragment pointing into a markdown file must name a real heading
//     (GitHub anchor slugs). External links (with a URL scheme) are not
//     fetched — the gate must pass offline.
//
//   - Doc comments: every exported identifier in the given Go packages
//     must carry a doc comment (a grouped const/var/type block's doc
//     covers its members). The serving surface (package distmincut and
//     internal/service) is gated so the API reference in docs/ never
//     drifts ahead of godoc.
//
// Usage:
//
//	docscheck [-pkgs .,./internal/service] [markdown files or dirs...]
//
// With no positional arguments it checks README.md, ROADMAP.md, and
// docs/. Exit status 1 means violations were printed, 2 a usage or I/O
// error.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	os.Exit(run())
}

func run() int {
	pkgs := flag.String("pkgs", ".,./internal/service", "comma-separated Go package directories to doc-lint")
	flag.Parse()

	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"README.md", "ROADMAP.md", "docs"}
	}
	files, err := collectMarkdown(targets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		return 2
	}

	var problems []string
	for _, f := range files {
		ps, err := checkLinks(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docscheck:", err)
			return 2
		}
		problems = append(problems, ps...)
	}
	for _, dir := range strings.Split(*pkgs, ",") {
		if dir = strings.TrimSpace(dir); dir == "" {
			continue
		}
		ps, err := lintDocs(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docscheck:", err)
			return 2
		}
		problems = append(problems, ps...)
	}

	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		return 1
	}
	fmt.Printf("docscheck: %d markdown file(s) and packages [%s] clean\n", len(files), *pkgs)
	return 0
}

// collectMarkdown expands the targets into a list of .md files,
// walking directories.
func collectMarkdown(targets []string) ([]string, error) {
	var files []string
	for _, t := range targets {
		info, err := os.Stat(t)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, t)
			continue
		}
		err = filepath.WalkDir(t, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return files, nil
}

// linkRE matches inline markdown links [text](target) and
// [text](target "title"); images share the syntax and are checked too.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// fenceRE matches fenced code block delimiters.
var fenceRE = regexp.MustCompile("^\\s*```")

// checkLinks verifies every relative link in one markdown file.
func checkLinks(file string) ([]string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var problems []string
	dir := filepath.Dir(file)
	inFence := false
	for ln, line := range strings.Split(string(data), "\n") {
		if fenceRE.MatchString(line) {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external: not fetched, the gate runs offline
			}
			path, frag, _ := strings.Cut(target, "#")
			if path == "" {
				// Same-file fragment.
				if ok, err := hasAnchor(file, frag); err != nil {
					return nil, err
				} else if !ok {
					problems = append(problems, fmt.Sprintf("%s:%d: broken anchor #%s", file, ln+1, frag))
				}
				continue
			}
			resolved := filepath.Join(dir, path)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: broken link %s", file, ln+1, target))
				continue
			}
			if frag != "" && strings.HasSuffix(path, ".md") {
				if ok, err := hasAnchor(resolved, frag); err != nil {
					return nil, err
				} else if !ok {
					problems = append(problems, fmt.Sprintf("%s:%d: broken anchor %s", file, ln+1, target))
				}
			}
		}
	}
	return problems, nil
}

// hasAnchor reports whether the markdown file has a heading whose
// GitHub anchor slug equals frag.
func hasAnchor(file, frag string) (bool, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return false, err
	}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if fenceRE.MatchString(line) {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimLeft(line, "#")
		if slugify(heading) == strings.ToLower(frag) {
			return true, nil
		}
	}
	return false, nil
}

// slugify reproduces GitHub's heading-anchor slugs: lowercase, spaces
// to dashes, punctuation dropped (backticks, parens, commas, ...).
func slugify(heading string) string {
	s := strings.ToLower(strings.TrimSpace(heading))
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// lintDocs parses one package directory and reports every exported
// identifier without a doc comment. Test files are skipped; struct
// fields and interface methods are not gated (the enclosing type's doc
// is the unit of documentation there).
func lintDocs(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgMap, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgMap {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							if s.Doc != nil || s.Comment != nil || d.Doc != nil {
								continue
							}
							for _, n := range s.Names {
								if n.IsExported() {
									report(n.Pos(), "const/var", n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return problems, nil
}

// exportedRecv reports whether a function's receiver (if any) is an
// exported type — methods on unexported types are not part of the API
// surface.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}
