// Command metricslint validates a Prometheus text exposition (version
// 0.0.4) read from stdin. CI pipes the live /metrics output of a smoke
// deployment through it, so a malformed series, a family missing its
// HELP/TYPE header, or a broken histogram fails the build instead of
// silently breaking scrapes.
//
// Checks:
//
//   - every line is well-formed (comment, blank, or `name{labels} value`)
//   - every sample's family carries both # HELP and # TYPE, and the
//     headers precede the family's first sample
//   - no duplicate series (same name and label set)
//   - every histogram family: le bounds parse and strictly ascend,
//     bucket counts are cumulative (non-decreasing), the +Inf bucket is
//     present, _count equals the +Inf bucket, and _sum is present,
//     per label set
//
// Usage:
//
//	curl -fs localhost:8371/metrics | go run ./cmd/metricslint
//
// Exits 0 and prints a one-line summary on success; exits 1 listing
// every violation otherwise.
package main

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Stdin))
}

// sample is one parsed series line.
type sample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// lint accumulates violations while the exposition streams through.
type lint struct {
	errs    []string
	help    map[string]bool
	typ     map[string]string
	sampled map[string]bool // families that have emitted a sample
	seen    map[string]int  // series identity -> first line
	samples []sample
}

func (l *lint) errf(line int, format string, args ...any) {
	l.errs = append(l.errs, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

func run(in *os.File) int {
	l := &lint{
		help:    make(map[string]bool),
		typ:     make(map[string]string),
		sampled: make(map[string]bool),
		seen:    make(map[string]int),
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	n := 0
	for sc.Scan() {
		n++
		l.scanLine(n, sc.Text())
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "metricslint: read:", err)
		return 1
	}
	l.checkFamilies()
	l.checkHistograms()
	if len(l.errs) > 0 {
		for _, e := range l.errs {
			fmt.Fprintln(os.Stderr, "metricslint:", e)
		}
		fmt.Fprintf(os.Stderr, "metricslint: %d violation(s) in %d series\n", len(l.errs), len(l.samples))
		return 1
	}
	fmt.Printf("metricslint: ok: %d series, %d families\n", len(l.samples), len(l.typ))
	return 0
}

func (l *lint) scanLine(n int, line string) {
	switch {
	case strings.TrimSpace(line) == "":
		return
	case strings.HasPrefix(line, "# HELP "):
		rest := strings.TrimPrefix(line, "# HELP ")
		name, _, _ := strings.Cut(rest, " ")
		if name == "" {
			l.errf(n, "HELP with no metric name")
			return
		}
		if l.sampled[name] {
			l.errf(n, "HELP for %s after its first sample", name)
		}
		if l.help[name] {
			l.errf(n, "duplicate HELP for %s", name)
		}
		l.help[name] = true
	case strings.HasPrefix(line, "# TYPE "):
		rest := strings.TrimPrefix(line, "# TYPE ")
		name, typ, ok := strings.Cut(rest, " ")
		if !ok || name == "" {
			l.errf(n, "TYPE with no metric name or type")
			return
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			l.errf(n, "unknown type %q for %s", typ, name)
		}
		if l.sampled[name] {
			l.errf(n, "TYPE for %s after its first sample", name)
		}
		if _, dup := l.typ[name]; dup {
			l.errf(n, "duplicate TYPE for %s", name)
		}
		l.typ[name] = typ
	case strings.HasPrefix(line, "#"):
		return // other comments are legal and ignored
	default:
		s, err := parseSample(line)
		if err != nil {
			l.errf(n, "%v", err)
			return
		}
		s.line = n
		id := seriesID(s)
		if first, dup := l.seen[id]; dup {
			l.errf(n, "duplicate series %s (first at line %d)", id, first)
		} else {
			l.seen[id] = n
		}
		l.sampled[familyOf(l.typ, s.name)] = true
		l.samples = append(l.samples, s)
	}
}

// familyOf resolves a sample name to its metric family: histogram and
// summary samples use the base name's headers for their _bucket, _sum,
// and _count series.
func familyOf(typ map[string]string, name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suf)
		if !ok {
			continue
		}
		if t := typ[base]; t == "histogram" || t == "summary" {
			return base
		}
	}
	return name
}

// parseSample parses `name{labels} value` (labels optional).
func parseSample(line string) (sample, error) {
	s := sample{labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		end, err := parseLabels(rest, s.labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return s, fmt.Errorf("malformed sample value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.value = v
	return s, nil
}

// parseLabels parses a `{k="v",...}` block starting at in[0] == '{',
// honoring \" escapes, and reports the index just past the closing '}'.
func parseLabels(in string, out map[string]string) (int, error) {
	i := 1
	for {
		for i < len(in) && (in[i] == ',' || in[i] == ' ') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("unterminated label block in %q", in)
		}
		key := in[i : i+eq]
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return 0, fmt.Errorf("unquoted label value for %q", key)
		}
		i++
		var val strings.Builder
		for i < len(in) && in[i] != '"' {
			if in[i] == '\\' && i+1 < len(in) {
				i++
				switch in[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(in[i])
				}
			} else {
				val.WriteByte(in[i])
			}
			i++
		}
		if i >= len(in) {
			return 0, fmt.Errorf("unterminated label value for %q", key)
		}
		i++ // closing quote
		out[key] = val.String()
	}
}

// seriesID is the sample's identity: name plus sorted label pairs.
func seriesID(s sample) string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// checkFamilies asserts every sampled family carries HELP and TYPE.
func (l *lint) checkFamilies() {
	for _, s := range l.samples {
		fam := familyOf(l.typ, s.name)
		if !l.help[fam] {
			l.errf(s.line, "series %s: family %s has no # HELP", s.name, fam)
		}
		if _, ok := l.typ[fam]; !ok {
			l.errf(s.line, "series %s: family %s has no # TYPE", s.name, fam)
		}
	}
}

// histKey groups histogram series by family and labels-minus-le.
func histKey(fam string, s sample) string {
	cp := sample{name: fam, labels: map[string]string{}}
	for k, v := range s.labels {
		if k != "le" {
			cp.labels[k] = v
		}
	}
	return seriesID(cp)
}

// checkHistograms validates bucket structure per histogram label set.
func (l *lint) checkHistograms() {
	type group struct {
		les     []float64
		counts  []float64
		lastLn  int
		count   *float64
		sumSeen bool
	}
	groups := map[string]*group{}
	order := []string{}
	for _, s := range l.samples {
		var fam string
		var kind string
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(s.name, suf); ok && l.typ[base] == "histogram" {
				fam, kind = base, suf
				break
			}
		}
		if fam == "" {
			if l.typ[s.name] == "histogram" {
				l.errf(s.line, "bare sample %s for histogram family (want _bucket/_sum/_count)", s.name)
			}
			continue
		}
		k := histKey(fam, s)
		g := groups[k]
		if g == nil {
			g = &group{}
			groups[k] = g
			order = append(order, k)
		}
		g.lastLn = s.line
		switch kind {
		case "_bucket":
			le, ok := s.labels["le"]
			if !ok {
				l.errf(s.line, "%s bucket without le label", fam)
				continue
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				var err error
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					l.errf(s.line, "%s: unparseable le %q", fam, le)
					continue
				}
			}
			g.les = append(g.les, bound)
			g.counts = append(g.counts, s.value)
		case "_sum":
			g.sumSeen = true
		case "_count":
			v := s.value
			g.count = &v
		}
	}
	for _, k := range order {
		g := groups[k]
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				l.errf(g.lastLn, "%s: le bounds not strictly ascending (%g after %g)", k, g.les[i], g.les[i-1])
			}
			if g.counts[i] < g.counts[i-1] {
				l.errf(g.lastLn, "%s: bucket counts not cumulative (%g after %g)", k, g.counts[i], g.counts[i-1])
			}
		}
		if len(g.les) == 0 || !math.IsInf(g.les[len(g.les)-1], 1) {
			l.errf(g.lastLn, "%s: missing +Inf bucket", k)
			continue
		}
		if g.count == nil {
			l.errf(g.lastLn, "%s: missing _count", k)
		} else if inf := g.counts[len(g.counts)-1]; *g.count != inf {
			l.errf(g.lastLn, "%s: _count %g != +Inf bucket %g", k, *g.count, inf)
		}
		if !g.sumSeen {
			l.errf(g.lastLn, "%s: missing _sum", k)
		}
	}
}
