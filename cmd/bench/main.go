// Command bench regenerates every experiment table (E1–E9, see
// EXPERIMENTS.md) and prints them as markdown.
//
// Usage:
//
//	bench [-quick] [-seed N] [-only E4]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"distmincut/internal/harness"
)

func main() {
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "small workloads (seconds instead of minutes)")
	seed := flag.Int64("seed", 1, "seed for workloads and protocols")
	only := flag.String("only", "", "run a single experiment (E1..E9)")
	workers := flag.Int("workers", 0, "bound concurrently executing node programs (0 = unbounded)")
	shards := flag.Int("shards", 0, "run message delivery on this many shards (0 = serial; experiments already run concurrently)")
	flag.Parse()

	cfg := harness.Config{Quick: *quick, Seed: *seed, Workers: *workers, DeliveryShards: *shards}
	experiments := map[string]func(harness.Config) *harness.Table{
		"E1": harness.E1Correctness,
		"E2": harness.E2Scaling,
		"E3": harness.E3Exact,
		"E4": harness.E4Approx,
		"E5": harness.E5Baselines,
		"E6": harness.E6Diameter,
		"E7": harness.E7Packing,
		"E8": harness.E8Figure1,
		"E9": harness.E9Ablation,
	}

	start := time.Now()
	var tables []*harness.Table
	if *only != "" {
		fn, ok := experiments[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (want E1..E9)\n", *only)
			return 2
		}
		tables = []*harness.Table{fn(cfg)}
	} else {
		tables = harness.RunAll(cfg)
	}
	for _, t := range tables {
		fmt.Print(t.Markdown())
	}
	fmt.Printf("_generated in %s (quick=%v, seed=%d)_\n", time.Since(start).Round(time.Millisecond), *quick, *seed)
	return 0
}
