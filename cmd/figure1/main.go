// Command figure1 reproduces the paper's Figure 1 on its 16-node
// example tree (and optionally on random trees): the fragment
// partition (1a/1b), a node's ancestor set A(v) (1c), and the skeleton
// tree T'_F of fragment roots and merging nodes (1d), rendered as
// ASCII.
//
// Usage:
//
//	figure1 [-n 0] [-s 4] [-seed 1]   (n=0 uses the paper's example)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"distmincut/internal/graph"
	"distmincut/internal/partition"
	"distmincut/internal/tree"
)

func main() {
	os.Exit(run())
}

func run() int {
	n := flag.Int("n", 0, "random tree size (0 = the paper's 16-node example)")
	s := flag.Int("s", 4, "fragment size parameter (0 = √n)")
	seed := flag.Int64("seed", 1, "random tree seed")
	flag.Parse()

	var tr *tree.Tree
	var err error
	if *n == 0 {
		// The shape of Figure 1(a).
		tr, err = tree.New(0, []graph.NodeID{-1, 0, 1, 2, 0, 2, 3, 4, 5, 5, 6, 6, 7, 7, 7, 4}, nil)
	} else {
		tr, err = tree.FromGraphTree(graph.RandomTree(*n, *seed), 0)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	d := partition.Split(tr, *s)
	if err := partition.Validate(tr, d); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	sk := partition.BuildSkeleton(tr, d)

	fmt.Printf("Figure 1(a): tree T on %d nodes, rooted at %d\n", tr.N(), tr.Root())
	printTree(tr, d, sk)

	fmt.Printf("\nFigure 1(b): partition into %d fragments (s=%d)\n", len(d.Roots), d.S)
	byFrag := map[graph.NodeID][]graph.NodeID{}
	for v := 0; v < tr.N(); v++ {
		byFrag[d.RootOf[v]] = append(byFrag[d.RootOf[v]], graph.NodeID(v))
	}
	roots := append([]graph.NodeID(nil), d.Roots...)
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, r := range roots {
		fmt.Printf("  fragment (%d): %v\n", r, byFrag[r])
	}

	v := exampleLeaf(tr)
	fmt.Printf("\nFigure 1(c): A(%d) — ancestors of %d in its own and parent fragment\n", v, v)
	fmt.Printf("  %v\n", ancestors(tr, d, v))

	fmt.Printf("\nFigure 1(d): skeleton tree T'_F (fragment roots ◆, merging nodes ●)\n")
	var members []graph.NodeID
	for m := range sk.Members {
		members = append(members, m)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	for _, m := range members {
		tag := "◆"
		for _, mg := range sk.Merging {
			if mg == m {
				tag = "●"
			}
		}
		if sk.Parent[m] < 0 {
			fmt.Printf("  %s %d (root)\n", tag, m)
		} else {
			fmt.Printf("  %s %d -> %d\n", tag, m, sk.Parent[m])
		}
	}
	fmt.Printf("\nmerging nodes: %v\n", sk.Merging)
	return 0
}

// printTree renders the tree with fragment annotations.
func printTree(tr *tree.Tree, d *partition.Decomposition, sk *partition.Skeleton) {
	var rec func(v graph.NodeID, prefix string, last bool)
	rec = func(v graph.NodeID, prefix string, last bool) {
		connector := "├─"
		next := prefix + "│ "
		if last {
			connector = "└─"
			next = prefix + "  "
		}
		marks := ""
		if d.RootOf[v] == v {
			marks += " ◆frag(" + fmt.Sprint(v) + ")"
		}
		for _, m := range sk.Merging {
			if m == v {
				marks += " ●merge"
			}
		}
		if v == tr.Root() {
			fmt.Printf("%d%s\n", v, marks)
		} else {
			fmt.Printf("%s%s%d%s\n", prefix, connector, v, marks)
		}
		kids := tr.Children(v)
		for i, c := range kids {
			rec(c, next, i == len(kids)-1)
		}
	}
	rec(tr.Root(), "", true)
}

// exampleLeaf picks the deepest node (ties to highest ID) to
// illustrate A(v).
func exampleLeaf(tr *tree.Tree) graph.NodeID {
	best := tr.Root()
	for v := 0; v < tr.N(); v++ {
		if tr.Depth(graph.NodeID(v)) >= tr.Depth(best) {
			best = graph.NodeID(v)
		}
	}
	return best
}

// ancestors reproduces A(v): ancestors within v's fragment and its
// parent fragment, nearest first, self included.
func ancestors(tr *tree.Tree, d *partition.Decomposition, v graph.NodeID) []graph.NodeID {
	myFrag := d.RootOf[v]
	var parentFrag graph.NodeID = -1
	if p := tr.Parent(myFrag); p >= 0 {
		parentFrag = d.RootOf[p]
	}
	out := []graph.NodeID{v}
	for u := tr.Parent(v); u >= 0; u = tr.Parent(u) {
		f := d.RootOf[u]
		if f != myFrag && f != parentFrag {
			break
		}
		out = append(out, u)
	}
	return out
}
