// Command loadgen drives mincutd with a closed-loop workload and
// reports latency and throughput. Each of -conc workers submits a job
// from the canned request corpus (the experiment harness families),
// polls it to completion, records the end-to-end latency, and
// immediately submits the next — so offered load adapts to service
// capacity, the standard closed-loop model.
//
// With -rate R the generator switches to open loop: requests arrive on
// a fixed schedule of R per second regardless of how fast the service
// answers, which is what production traffic does. Latency is measured
// from each request's scheduled arrival time (not its actual launch),
// so queueing delay under overload — including coordinated-omission
// slip when the generator itself falls behind — lands in the reported
// p50/p95/p99 instead of being silently forgiven. -conc is ignored in
// open-loop mode; every in-flight request holds its own goroutine.
//
// The generator is failure-aware: a 503 (queue full) is retried with
// jittered exponential backoff honoring the server's Retry-After hint,
// and when -max-retries is exhausted the request counts as *shed* —
// load the server deliberately refused — not as a failure. A 429
// (admission rejection) sheds immediately: the server has judged the
// request class too expensive, so retrying the same spec cannot help.
// Jobs that end in the deadline state count separately, as do jobs the
// server degraded to a cheaper tier (degraded_from set).
//
// Transport faults are retried, not failed: a connection refused or
// reset on submit (a replica restarting, a gateway failing over) backs
// off exactly like a 503, a failed or 5xx poll backs off and re-polls,
// and a job that vanishes outright (404, or polls that never stop
// failing) is resubmitted from scratch — the backend is deterministic
// and content-addressed, so a resubmission can only cache-hit or
// recompute the identical bytes. Each recovery class is counted
// separately in the report. Only exhausted retries and failed/canceled
// jobs are failures; the exit code is non-zero only when something
// failed or nothing completed.
//
// With no -addr, loadgen self-hosts: it starts an in-process service
// behind a real HTTP listener and drives that, which is what `make
// bench-service` uses to produce BENCH_service.json without
// coordinating background processes.
//
// With -bench, stdout carries `go test -bench`-format lines that
// cmd/benchjson converts to JSON:
//
//	loadgen -conc 8 -requests 128 -bench | benchjson > BENCH_service.json
//
// Two rows are emitted per run: the completion-latency row
// (BenchmarkServiceLoadgen / BenchmarkServiceLoadgenOpen) and a
// first-answer row (BenchmarkServiceFirstAnswer[Open]) measuring time
// to any usable result — for tiered jobs that is the approximate
// answer published in the refining state, ahead of exact
// certification.
//
// The human-readable report always goes to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"distmincut/internal/harness"
	"distmincut/internal/service"
)

func main() {
	os.Exit(run())
}

type options struct {
	addr       string
	conc       int
	requests   int
	corpus     string
	rate       float64
	poll       time.Duration
	timeout    time.Duration
	bench      bool
	pool       int
	queue      int
	deadlineMS int64
	unique     bool
	maxRetries int
}

func run() int {
	var o options
	flag.StringVar(&o.addr, "addr", "", "mincutd base URL (empty = self-host an in-process service)")
	flag.IntVar(&o.conc, "conc", 8, "concurrent closed-loop clients")
	flag.IntVar(&o.requests, "requests", 64, "total requests to issue")
	flag.StringVar(&o.corpus, "corpus", "quick", "request mix: quick | full | overload")
	flag.Float64Var(&o.rate, "rate", 0, "open-loop arrival rate in requests/sec (0 = closed loop)")
	flag.DurationVar(&o.poll, "poll", 2*time.Millisecond, "job poll interval")
	flag.DurationVar(&o.timeout, "timeout", 5*time.Minute, "per-job completion timeout")
	flag.BoolVar(&o.bench, "bench", false, "emit go-bench-format lines on stdout for benchjson")
	flag.IntVar(&o.pool, "pool", 0, "self-hosted service pool size (0 = GOMAXPROCS)")
	flag.IntVar(&o.queue, "queue", 256, "self-hosted service queue depth")
	flag.Int64Var(&o.deadlineMS, "deadline-ms", 0, "per-job deadline_ms attached to every request (0 = none)")
	flag.BoolVar(&o.unique, "unique", false, "perturb each request's protocol seed so no submission is a cache hit")
	flag.IntVar(&o.maxRetries, "max-retries", 10, "503 retries before counting a request as shed")
	version := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()

	if *version {
		b := service.ReadBuild()
		fmt.Printf("loadgen %s commit %s %s\n", b.Version, b.Commit, b.GoVersion)
		return 0
	}

	var corpus []service.JobRequest
	switch o.corpus {
	case "quick":
		corpus = harness.ServiceCorpus(true)
	case "full":
		corpus = harness.ServiceCorpus(false)
	case "overload":
		corpus = harness.OverloadCorpus()
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown corpus %q\n", o.corpus)
		return 2
	}

	base := o.addr
	if base == "" {
		svc := service.New(service.Options{PoolSize: o.pool, QueueDepth: o.queue})
		ts := httptest.NewServer(service.NewAPI(svc).Handler())
		defer func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			_ = svc.Shutdown(ctx)
		}()
		base = ts.URL
		fmt.Fprintf(os.Stderr, "loadgen: self-hosting service at %s (pool %d)\n", base, o.pool)
	}
	base = strings.TrimRight(base, "/")

	var res *outcome
	if o.rate > 0 {
		res = driveOpen(base, corpus, o)
	} else {
		res = drive(base, corpus, o)
	}
	report(os.Stderr, res, o)
	if o.bench {
		emitBench(os.Stdout, res, o)
	}
	if res.failed > 0 || res.completed == 0 {
		return 1
	}
	return 0
}

// request builds the i-th request from the corpus, applying the
// generator-level spec knobs: the per-job deadline and, with -unique,
// a per-request protocol seed perturbation so every submission misses
// the content-addressed cache and forces a real protocol run.
func request(corpus []service.JobRequest, i int, o options) service.JobRequest {
	req := corpus[i%len(corpus)]
	req.DeadlineMS = o.deadlineMS
	if o.unique {
		req.Seed += int64(i)*1_000_003 + 1
	}
	return req
}

type outcome struct {
	latencies []time.Duration // sorted ascending by drive
	mean      time.Duration
	// firsts are first-answer latencies: for a tiered job, the time to
	// the published approximate payload (state refining); for every
	// other tier, identical to the completion latency. Sorted ascending.
	firsts    []time.Duration
	meanFirst time.Duration
	completed int
	failed    int
	shed      int
	deadlined int
	degraded  int
	hits      int64
	// Transport-fault recovery counts: submit connection retries, poll
	// retries, and full resubmissions of jobs lost to a replica failure.
	connRetries int64
	pollRetries int64
	resubmits   int64
	wall        time.Duration
	metrics     service.Metrics
}

// transportRetries tallies client-side fault recovery across all
// worker goroutines; gather folds the totals into the outcome.
var transportRetries struct {
	submit    atomic.Int64
	poll      atomic.Int64
	resubmits atomic.Int64
}

// reqResult is one request's measurements: its status (done, shed,
// deadline, or failed), completion latency, the first-answer latency
// (when the job first had any result payload — a tiered job's
// published approximation or any tier's final result), whether the
// submission was a cache hit, and whether the server degraded it to a
// cheaper tier.
type reqResult struct {
	status   string // "done" | "shed" | "deadline" | "failed"
	total    time.Duration
	first    time.Duration
	hit      bool
	degraded bool
}

// drive runs the closed loop and gathers per-request latencies.
func drive(base string, corpus []service.JobRequest, o options) *outcome {
	client := &http.Client{Timeout: time.Minute}
	var next atomic.Int64
	results := make([]reqResult, o.requests)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < o.conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= o.requests {
					return
				}
				results[i] = oneRequest(client, base, request(corpus, i, o), i, o)
			}
		}()
	}
	wg.Wait()
	return gather(base, client, results, time.Since(start))
}

// driveOpen runs the open-loop generator: request i is due at
// start + i/rate, launched on its own goroutine, and its latency runs
// from that due time to completion — queue wait and generator slip
// included. Offered load never adapts to service speed, so sustained
// overload shows up as unbounded tail growth instead of the closed
// loop's self-throttling.
func driveOpen(base string, corpus []service.JobRequest, o options) *outcome {
	client := &http.Client{Timeout: time.Minute}
	interval := time.Duration(float64(time.Second) / o.rate)
	results := make([]reqResult, o.requests)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < o.requests; i++ {
		due := start.Add(time.Duration(i) * interval)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, due time.Time) {
			defer wg.Done()
			r := oneRequest(client, base, request(corpus, i, o), i, o)
			// Re-anchor latencies to the scheduled arrival: completion
			// from the due time, first answer shifted by the same slip.
			slip := time.Since(due) - r.total
			r.total += slip
			r.first += slip
			results[i] = r
		}(i, due)
	}
	wg.Wait()
	return gather(base, client, results, time.Since(start))
}

// gather folds per-request records into the report outcome (shared by
// the closed- and open-loop drivers). Latency distributions cover only
// completed requests; shed and deadlined requests are counted, not
// timed — their latencies measure the policy, not the service.
func gather(base string, client *http.Client, results []reqResult, wall time.Duration) *outcome {
	res := &outcome{wall: wall}
	for _, r := range results {
		if r.degraded {
			res.degraded++
		}
		switch r.status {
		case "done":
			res.completed++
			res.latencies = append(res.latencies, r.total)
			res.firsts = append(res.firsts, r.first)
			if r.hit {
				res.hits++
			}
		case "shed":
			res.shed++
		case "deadline":
			res.deadlined++
		default:
			res.failed++
		}
	}
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	sort.Slice(res.firsts, func(i, j int) bool { return res.firsts[i] < res.firsts[j] })
	var sum, sumFirst time.Duration
	for _, l := range res.latencies {
		sum += l
	}
	for _, l := range res.firsts {
		sumFirst += l
	}
	if res.completed > 0 {
		res.mean = sum / time.Duration(res.completed)
		res.meanFirst = sumFirst / time.Duration(res.completed)
	}
	res.connRetries = transportRetries.submit.Load()
	res.pollRetries = transportRetries.poll.Load()
	res.resubmits = transportRetries.resubmits.Load()
	if resp, err := client.Get(base + "/metrics?format=json"); err == nil {
		_ = json.NewDecoder(resp.Body).Decode(&res.metrics)
		resp.Body.Close()
	}
	return res
}

// backoff computes the wait before retry attempt (1-based) of a shed
// submission: exponential from 5ms doubling per attempt, capped at
// 500ms, with ±50% jitter to break retry synchronization across
// workers. A Retry-After hint from the server raises the floor — the
// server knows its drain rate better than the client does.
func backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := 5 * time.Millisecond << uint(min(attempt, 7))
	if d > 500*time.Millisecond {
		d = 500 * time.Millisecond
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// retryAfterHint parses a 503/429 response's Retry-After header
// (delta-seconds form only); zero when absent or malformed.
func retryAfterHint(resp *http.Response) time.Duration {
	s := resp.Header.Get("Retry-After")
	if s == "" {
		return 0
	}
	secs, err := strconv.Atoi(s)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// submitJob posts one request until it is accepted, shed, or failed,
// returning the accepted view and "" on success, or ("", outcome) when
// the request is finished without a job. Queue-full 503s and transport
// faults (connection refused/reset while a replica restarts, a
// gateway's 502 while every candidate is mid-failover) both back off
// with the same jittered policy and share the -max-retries budget;
// transport retries are tallied separately for the report.
func submitJob(client *http.Client, base string, body []byte, idx int, start time.Time, o options) (service.JobView, string) {
	var view service.JobView
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			if attempt >= o.maxRetries || time.Since(start) > o.timeout {
				fmt.Fprintf(os.Stderr, "loadgen: request %d: %v\n", idx, err)
				return view, "failed"
			}
			transportRetries.submit.Add(1)
			time.Sleep(backoff(attempt+1, 0))
			continue
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusServiceUnavailable:
			if attempt >= o.maxRetries || time.Since(start) > o.timeout {
				return view, "shed"
			}
			time.Sleep(backoff(attempt+1, retryAfterHint(resp)))
			continue
		case http.StatusTooManyRequests:
			return view, "shed"
		case http.StatusBadGateway:
			if attempt >= o.maxRetries || time.Since(start) > o.timeout {
				fmt.Fprintf(os.Stderr, "loadgen: request %d: submit status %d: %s\n", idx, resp.StatusCode, data)
				return view, "failed"
			}
			transportRetries.submit.Add(1)
			time.Sleep(backoff(attempt+1, retryAfterHint(resp)))
			continue
		case http.StatusAccepted, http.StatusOK:
		default:
			fmt.Fprintf(os.Stderr, "loadgen: request %d: submit status %d: %s\n", idx, resp.StatusCode, data)
			return view, "failed"
		}
		if err := json.Unmarshal(data, &view); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: request %d: %v\n", idx, err)
			return view, "failed"
		}
		return view, ""
	}
}

// oneRequest submits one job and waits for a terminal state. Queue-full
// 503s back off and retry up to -max-retries before counting as shed;
// admission 429s shed immediately. Deadline-state jobs and server-side
// tier degradation are recorded as their own outcomes, not failures.
// Failed or erroring polls back off and re-poll; a job that vanishes
// (404) or whose polls never stop failing is resubmitted from scratch —
// deterministic content-addressed serving makes the resubmission
// either a cache hit or a byte-identical recomputation.
func oneRequest(client *http.Client, base string, req service.JobRequest, idx int, o options) reqResult {
	var r reqResult
	r.status = "failed"
	body, err := json.Marshal(req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: request %d: %v\n", idx, err)
		return r
	}
	start := time.Now()
	deadline := start.Add(o.timeout)
resubmit:
	for submits := 0; ; submits++ {
		view, outcome := submitJob(client, base, body, idx, start, o)
		if outcome != "" {
			r.status = outcome
			return r
		}
		if submits == 0 {
			r.hit = view.CacheHit
		}
		pollFails := 0
		for view.State != service.StateDone {
			if r.first == 0 && len(view.Approx) > 0 {
				r.first = time.Since(start) // tiered: the refining-phase answer
			}
			if view.DegradedFrom != "" {
				r.degraded = true
			}
			switch view.State {
			case service.StateDeadline:
				r.status = "deadline"
				r.total = time.Since(start)
				return r
			case service.StateFailed, service.StateCanceled:
				fmt.Fprintf(os.Stderr, "loadgen: request %d: job %s: %s (%s)\n", idx, view.ID, view.State, view.Error)
				return r
			}
			if time.Now().After(deadline) {
				fmt.Fprintf(os.Stderr, "loadgen: request %d: job %s: timeout in state %s\n", idx, view.ID, view.State)
				return r
			}
			time.Sleep(o.poll)
			resp, err := client.Get(base + "/v1/jobs/" + view.ID)
			if err != nil {
				pollFails++
				if pollFails > o.maxRetries {
					fmt.Fprintf(os.Stderr, "loadgen: request %d: job %s: %v\n", idx, view.ID, err)
					return r
				}
				transportRetries.poll.Add(1)
				time.Sleep(backoff(pollFails, 0))
				continue
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK:
				pollFails = 0
				if err := json.Unmarshal(data, &view); err != nil {
					fmt.Fprintf(os.Stderr, "loadgen: request %d: %v\n", idx, err)
					return r
				}
			case resp.StatusCode == http.StatusNotFound:
				// The job record is gone: a replica died holding it
				// before any failover tier could replay it. Start over.
				if submits >= o.maxRetries || time.Now().After(deadline) {
					fmt.Fprintf(os.Stderr, "loadgen: request %d: job %s lost and retries exhausted\n", idx, view.ID)
					return r
				}
				transportRetries.resubmits.Add(1)
				continue resubmit
			default:
				// 502 while a gateway fails the job's replica over, or a
				// transient 5xx: re-poll, and treat persistent
				// unavailability as job loss.
				pollFails++
				if pollFails > o.maxRetries {
					if submits >= o.maxRetries || time.Now().After(deadline) {
						fmt.Fprintf(os.Stderr, "loadgen: request %d: job %s unreachable (status %d) and retries exhausted\n", idx, view.ID, resp.StatusCode)
						return r
					}
					transportRetries.resubmits.Add(1)
					continue resubmit
				}
				transportRetries.poll.Add(1)
				time.Sleep(backoff(pollFails, retryAfterHint(resp)))
			}
		}
		if view.DegradedFrom != "" {
			r.degraded = true
		}
		r.status = "done"
		r.total = time.Since(start)
		if r.first == 0 {
			r.first = r.total
		}
		return r
	}
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func report(w io.Writer, res *outcome, o options) {
	if o.rate > 0 {
		fmt.Fprintf(w, "\nloadgen report (corpus %s, open loop at %.0f req/s)\n", o.corpus, o.rate)
	} else {
		fmt.Fprintf(w, "\nloadgen report (corpus %s, conc %d)\n", o.corpus, o.conc)
	}
	fmt.Fprintf(w, "  requests:   %d completed, %d failed in %s\n", res.completed, res.failed, res.wall.Round(time.Millisecond))
	fmt.Fprintf(w, "  overload:   %d shed, %d deadline, %d degraded to a cheaper tier\n",
		res.shed, res.deadlined, res.degraded)
	if res.connRetries+res.pollRetries+res.resubmits > 0 {
		fmt.Fprintf(w, "  transport:  %d submit retries, %d poll retries, %d resubmits after job loss\n",
			res.connRetries, res.pollRetries, res.resubmits)
	}
	if o.rate > 0 {
		fmt.Fprintf(w, "  throughput: %.1f jobs/s completed (offered %.1f req/s)\n",
			float64(res.completed)/res.wall.Seconds(), o.rate)
	} else {
		fmt.Fprintf(w, "  throughput: %.1f jobs/s\n", float64(res.completed)/res.wall.Seconds())
	}
	fmt.Fprintf(w, "  latency:    mean %s  p50 %s  p95 %s  p99 %s  max %s\n",
		res.mean.Round(time.Microsecond),
		percentile(res.latencies, 0.50).Round(time.Microsecond),
		percentile(res.latencies, 0.95).Round(time.Microsecond),
		percentile(res.latencies, 0.99).Round(time.Microsecond),
		percentile(res.latencies, 1.0).Round(time.Microsecond))
	fmt.Fprintf(w, "  first ans:  mean %s  p50 %s  p95 %s  (tiered jobs answer at the approx phase)\n",
		res.meanFirst.Round(time.Microsecond),
		percentile(res.firsts, 0.50).Round(time.Microsecond),
		percentile(res.firsts, 0.95).Round(time.Microsecond))
	fmt.Fprintf(w, "  cache:      %d hits at submit (%.0f%% of requests)\n",
		res.hits, 100*float64(res.hits)/float64(max(1, res.completed)))
	m := res.metrics
	fmt.Fprintf(w, "  server:     hit rate %.2f, %d protocol runs, %.0f rounds/s, %d coalesced\n",
		m.CacheHitRate, m.Completed, m.RoundsPerSec, m.Coalesced)
	if m.Shed+m.Deadlined+m.Degraded+m.AdmissionRejected > 0 {
		fmt.Fprintf(w, "  server ovl: %d shed, %d deadline, %d degraded, %d admission-rejected\n",
			m.Shed, m.Deadlined, m.Degraded, m.AdmissionRejected)
	}
}

// emitBench renders the outcome as one `go test -bench`-style line per
// metric family, consumable by cmd/benchjson.
func emitBench(w io.Writer, res *outcome, o options) {
	if res.completed == 0 {
		return
	}
	fmt.Fprintf(w, "goos: %s\n", runtime.GOOS)
	fmt.Fprintf(w, "goarch: %s\n", runtime.GOARCH)
	fmt.Fprintf(w, "pkg: distmincut/cmd/loadgen\n")
	name := fmt.Sprintf("BenchmarkServiceLoadgen/corpus=%s/conc=%d", o.corpus, o.conc)
	first := fmt.Sprintf("BenchmarkServiceFirstAnswer/corpus=%s/conc=%d", o.corpus, o.conc)
	if o.rate > 0 {
		name = fmt.Sprintf("BenchmarkServiceLoadgenOpen/corpus=%s/rate=%.0f", o.corpus, o.rate)
		first = fmt.Sprintf("BenchmarkServiceFirstAnswerOpen/corpus=%s/rate=%.0f", o.corpus, o.rate)
	}
	fmt.Fprintf(w, "%s \t %d \t %d ns/op \t %.2f jobs/s \t %.3f hit-ratio \t %d p50-ns \t %d p95-ns \t %d p99-ns \t %.1f rounds/s\n",
		name, res.completed, res.mean.Nanoseconds(),
		float64(res.completed)/res.wall.Seconds(),
		res.metrics.CacheHitRate,
		percentile(res.latencies, 0.50).Nanoseconds(),
		percentile(res.latencies, 0.95).Nanoseconds(),
		percentile(res.latencies, 0.99).Nanoseconds(),
		res.metrics.RoundsPerSec)
	// The first-answer row is the tiered flow's headline: time to any
	// usable answer, which for tiered jobs is the (1+ε) phase published
	// while exact certification continues in the background.
	fmt.Fprintf(w, "%s \t %d \t %d ns/op \t %d p50-ns \t %d p95-ns \t %d p99-ns\n",
		first, res.completed, res.meanFirst.Nanoseconds(),
		percentile(res.firsts, 0.50).Nanoseconds(),
		percentile(res.firsts, 0.95).Nanoseconds(),
		percentile(res.firsts, 0.99).Nanoseconds())
}
