// Command loadgen drives mincutd with a closed-loop workload and
// reports latency and throughput. Each of -conc workers submits a job
// from the canned request corpus (the experiment harness families),
// polls it to completion, records the end-to-end latency, and
// immediately submits the next — so offered load adapts to service
// capacity, the standard closed-loop model.
//
// With no -addr, loadgen self-hosts: it starts an in-process service
// behind a real HTTP listener and drives that, which is what `make
// bench-service` uses to produce BENCH_service.json without
// coordinating background processes.
//
// With -bench, stdout carries `go test -bench`-format lines that
// cmd/benchjson converts to JSON:
//
//	loadgen -conc 8 -requests 128 -bench | benchjson > BENCH_service.json
//
// The human-readable report always goes to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"distmincut/internal/harness"
	"distmincut/internal/service"
)

func main() {
	os.Exit(run())
}

type options struct {
	addr     string
	conc     int
	requests int
	corpus   string
	poll     time.Duration
	timeout  time.Duration
	bench    bool
	pool     int
	queue    int
}

func run() int {
	var o options
	flag.StringVar(&o.addr, "addr", "", "mincutd base URL (empty = self-host an in-process service)")
	flag.IntVar(&o.conc, "conc", 8, "concurrent closed-loop clients")
	flag.IntVar(&o.requests, "requests", 64, "total requests to issue")
	flag.StringVar(&o.corpus, "corpus", "quick", "request mix: quick | full")
	flag.DurationVar(&o.poll, "poll", 2*time.Millisecond, "job poll interval")
	flag.DurationVar(&o.timeout, "timeout", 5*time.Minute, "per-job completion timeout")
	flag.BoolVar(&o.bench, "bench", false, "emit go-bench-format lines on stdout for benchjson")
	flag.IntVar(&o.pool, "pool", 0, "self-hosted service pool size (0 = GOMAXPROCS)")
	flag.IntVar(&o.queue, "queue", 256, "self-hosted service queue depth")
	flag.Parse()

	var corpus []service.JobRequest
	switch o.corpus {
	case "quick":
		corpus = harness.ServiceCorpus(true)
	case "full":
		corpus = harness.ServiceCorpus(false)
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown corpus %q\n", o.corpus)
		return 2
	}

	base := o.addr
	if base == "" {
		svc := service.New(service.Options{PoolSize: o.pool, QueueDepth: o.queue})
		ts := httptest.NewServer(service.NewAPI(svc).Handler())
		defer func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			_ = svc.Shutdown(ctx)
		}()
		base = ts.URL
		fmt.Fprintf(os.Stderr, "loadgen: self-hosting service at %s (pool %d)\n", base, o.pool)
	}
	base = strings.TrimRight(base, "/")

	res := drive(base, corpus, o)
	report(os.Stderr, res, o)
	if o.bench {
		emitBench(os.Stdout, res, o)
	}
	if res.failed > 0 || res.completed == 0 {
		return 1
	}
	return 0
}

type outcome struct {
	latencies []time.Duration // sorted ascending by drive
	mean      time.Duration
	completed int
	failed    int
	hits      int64
	wall      time.Duration
	metrics   service.Metrics
}

// drive runs the closed loop and gathers per-request latencies.
func drive(base string, corpus []service.JobRequest, o options) *outcome {
	client := &http.Client{Timeout: time.Minute}
	var next atomic.Int64
	var hits atomic.Int64
	lats := make([]time.Duration, o.requests)
	fails := make([]bool, o.requests)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < o.conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= o.requests {
					return
				}
				req := corpus[i%len(corpus)]
				lat, hit, err := oneRequest(client, base, req, o)
				lats[i] = lat
				if err != nil {
					fmt.Fprintf(os.Stderr, "loadgen: request %d: %v\n", i, err)
					fails[i] = true
					continue
				}
				if hit {
					hits.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	res := &outcome{wall: time.Since(start), hits: hits.Load()}
	for i := 0; i < o.requests; i++ {
		if fails[i] {
			res.failed++
		} else {
			res.completed++
			res.latencies = append(res.latencies, lats[i])
		}
	}
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	var sum time.Duration
	for _, l := range res.latencies {
		sum += l
	}
	if res.completed > 0 {
		res.mean = sum / time.Duration(res.completed)
	}
	if resp, err := client.Get(base + "/metrics"); err == nil {
		_ = json.NewDecoder(resp.Body).Decode(&res.metrics)
		resp.Body.Close()
	}
	return res
}

// oneRequest submits one job and waits for a terminal state, retrying
// 503s (queue full) with backoff — in a closed loop that is the
// signal to slow down, not an error.
func oneRequest(client *http.Client, base string, req service.JobRequest, o options) (time.Duration, bool, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, false, err
	}
	start := time.Now()
	var view service.JobView
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			return 0, false, err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if time.Since(start) > o.timeout {
				return 0, false, fmt.Errorf("queue full for %s", o.timeout)
			}
			time.Sleep(time.Duration(attempt+1) * 5 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			return 0, false, fmt.Errorf("submit: status %d: %s", resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &view); err != nil {
			return 0, false, err
		}
		break
	}
	hit := view.CacheHit
	deadline := time.Now().Add(o.timeout)
	for view.State != service.StateDone {
		if view.State == service.StateFailed || view.State == service.StateCanceled {
			return 0, hit, fmt.Errorf("job %s: %s (%s)", view.ID, view.State, view.Error)
		}
		if time.Now().After(deadline) {
			return 0, hit, fmt.Errorf("job %s: timeout in state %s", view.ID, view.State)
		}
		time.Sleep(o.poll)
		resp, err := client.Get(base + "/v1/jobs/" + view.ID)
		if err != nil {
			return 0, hit, err
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return 0, hit, err
		}
	}
	return time.Since(start), hit, nil
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func report(w io.Writer, res *outcome, o options) {
	fmt.Fprintf(w, "\nloadgen report (corpus %s, conc %d)\n", o.corpus, o.conc)
	fmt.Fprintf(w, "  requests:   %d completed, %d failed in %s\n", res.completed, res.failed, res.wall.Round(time.Millisecond))
	fmt.Fprintf(w, "  throughput: %.1f jobs/s\n", float64(res.completed)/res.wall.Seconds())
	fmt.Fprintf(w, "  latency:    mean %s  p50 %s  p95 %s  p99 %s  max %s\n",
		res.mean.Round(time.Microsecond),
		percentile(res.latencies, 0.50).Round(time.Microsecond),
		percentile(res.latencies, 0.95).Round(time.Microsecond),
		percentile(res.latencies, 0.99).Round(time.Microsecond),
		percentile(res.latencies, 1.0).Round(time.Microsecond))
	fmt.Fprintf(w, "  cache:      %d hits at submit (%.0f%% of requests)\n",
		res.hits, 100*float64(res.hits)/float64(max(1, res.completed)))
	m := res.metrics
	fmt.Fprintf(w, "  server:     hit rate %.2f, %d protocol runs, %.0f rounds/s, %d coalesced\n",
		m.CacheHitRate, m.Completed, m.RoundsPerSec, m.Coalesced)
}

// emitBench renders the outcome as one `go test -bench`-style line per
// metric family, consumable by cmd/benchjson.
func emitBench(w io.Writer, res *outcome, o options) {
	if res.completed == 0 {
		return
	}
	fmt.Fprintf(w, "goos: %s\n", runtime.GOOS)
	fmt.Fprintf(w, "goarch: %s\n", runtime.GOARCH)
	fmt.Fprintf(w, "pkg: distmincut/cmd/loadgen\n")
	fmt.Fprintf(w, "BenchmarkServiceLoadgen/corpus=%s/conc=%d \t %d \t %d ns/op \t %.2f jobs/s \t %.3f hit-ratio \t %d p50-ns \t %d p95-ns \t %d p99-ns \t %.1f rounds/s\n",
		o.corpus, o.conc, res.completed, res.mean.Nanoseconds(),
		float64(res.completed)/res.wall.Seconds(),
		res.metrics.CacheHitRate,
		percentile(res.latencies, 0.50).Nanoseconds(),
		percentile(res.latencies, 0.95).Nanoseconds(),
		percentile(res.latencies, 0.99).Nanoseconds(),
		res.metrics.RoundsPerSec)
}
