// Command mincut runs the distributed minimum-cut pipeline on a
// generated workload and reports the cut, its side sizes, and the
// CONGEST complexity, cross-checked against Stoer–Wagner.
//
// Usage:
//
//	mincut -graph planted -n 48 -lambda 3 [-mode exact|approx|respect]
//	       [-eps 0.25] [-seed 7] [-weights 1,50]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"distmincut"
	"distmincut/internal/baseline"
	"distmincut/internal/graph"
)

func main() {
	os.Exit(run())
}

func run() int {
	kind := flag.String("graph", "planted", "workload: planted|gnp|torus|cycle|clique|cliquepath|hypercube")
	n := flag.Int("n", 48, "approximate node count")
	lambda := flag.Int("lambda", 3, "planted cut value (planted graphs)")
	mode := flag.String("mode", "exact", "exact | approx | respect")
	eps := flag.Float64("eps", 0.25, "approximation parameter (approx mode)")
	seed := flag.Int64("seed", 1, "seed")
	workers := flag.Int("workers", 0, "bound concurrently executing node programs (0 = unbounded)")
	shards := flag.Int("shards", 0, "run message delivery on this many shards (0 = one per CPU, negative = serial)")
	weights := flag.String("weights", "", "random edge weights lo,hi (e.g. 1,50)")
	flag.Parse()

	g, err := buildGraph(*kind, *n, *lambda, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *weights != "" {
		parts := strings.Split(*weights, ",")
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "-weights wants lo,hi")
			return 2
		}
		lo, err1 := strconv.ParseInt(parts[0], 10, 64)
		hi, err2 := strconv.ParseInt(parts[1], 10, 64)
		if err1 != nil || err2 != nil {
			fmt.Fprintln(os.Stderr, "-weights wants integers lo,hi")
			return 2
		}
		g = graph.AssignWeights(g, lo, hi, *seed+1)
	}
	d := graph.Diameter(g)
	fmt.Printf("workload: %s  n=%d m=%d D=%d\n", *kind, g.N(), g.M(), d)

	sw, _, err := baseline.StoerWagner(g)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("ground truth (Stoer–Wagner): λ = %d\n\n", sw)

	opts := &distmincut.Options{Seed: *seed, Epsilon: *eps, Workers: *workers, DeliveryShards: *shards}
	var res *distmincut.Result
	switch *mode {
	case "exact":
		res, err = distmincut.MinCut(g, opts)
	case "approx":
		res, err = distmincut.ApproxMinCut(g, opts)
	case "respect":
		res, _, err = distmincut.OneRespectingCut(g, opts)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	inside := 0
	for _, s := range res.Side {
		if s {
			inside++
		}
	}
	norm := math.Sqrt(float64(g.N())) + float64(d)
	fmt.Printf("mode %s: cut value = %d (exact certified: %v)\n", *mode, res.Value, res.Exact)
	fmt.Printf("cut side: %d vs %d nodes, defined by subtree of node %d\n", inside, g.N()-inside, res.BestNode)
	fmt.Printf("trees packed: %d   sampling levels: %d\n", res.TreesPacked, res.Levels)
	fmt.Printf("CONGEST cost: %d rounds (%.1fx (√n+D)), %d messages\n",
		res.Rounds, float64(res.Rounds)/norm, res.Messages)
	if spans := res.Stats.PhaseRounds(); len(spans) > 0 {
		fmt.Printf("round breakdown: MST construction %d, 1-respecting cuts %d, other %d\n",
			spans["mst"], spans["respect"], res.Rounds-spans["mst"]-spans["respect"])
	}
	if *mode == "exact" && res.Value != sw {
		fmt.Println("WARNING: exact mode disagrees with Stoer–Wagner!")
		return 1
	}
	if *mode == "approx" {
		fmt.Printf("approximation ratio: %.3f (budget 1+ε = %.3f)\n", float64(res.Value)/float64(sw), 1+*eps)
	}
	return 0
}

func buildGraph(kind string, n, lambda int, seed int64) (*graph.Graph, error) {
	switch kind {
	case "planted":
		h := n / 2
		return graph.PlantedCut(h, n-h, lambda, 0.5, seed), nil
	case "gnp":
		return graph.GNP(n, 8/float64(n), seed), nil
	case "torus":
		s := int(math.Round(math.Sqrt(float64(n))))
		if s < 3 {
			s = 3
		}
		return graph.Torus(s, s), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "clique":
		return graph.Complete(n), nil
	case "cliquepath":
		k := 8
		c := n / k
		if c < 2 {
			c = 2
		}
		return graph.CliquePath(c, k, 2), nil
	case "hypercube":
		d := 1
		for 1<<d < n {
			d++
		}
		return graph.Hypercube(d), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}
