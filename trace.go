package distmincut

import (
	"strings"

	"distmincut/internal/congest"
)

// Span is one named phase of a distributed computation, reconstructed
// from the begin:/end: marks the protocol's designated node records at
// phase boundaries (see congest.Mark). A span carries the phase's
// CONGEST round span, its delivered-message span, and its wall-clock
// span, and nests: the pipeline's top-level phases (bfs, pack, level:N,
// markside, ...) contain the per-tree spans (mst, respect) they drive,
// which in turn contain the MST parts. Sibling spans tile the run in
// order, so top-level spans sum (up to the inter-phase gaps, which are
// zero rounds) to the run's totals.
type Span struct {
	// Name is the phase label ("bfs", "mst", "level:3", ...). The text
	// up to the first ':' is the phase group (see PhaseGroup).
	Name string
	// StartRound and EndRound delimit the phase in CONGEST rounds;
	// EndRound - StartRound is the phase's round cost.
	StartRound, EndRound int
	// StartMessages and EndMessages are the run's cumulative
	// delivered-message counts at the phase boundaries.
	StartMessages, EndMessages int64
	// StartNanos and EndNanos are wall nanoseconds from the engine
	// Run's entry to the phase boundaries (engine setup included), so
	// spans from one run anchor to the run's wall-clock start.
	StartNanos, EndNanos int64
	// Children are the phases nested inside this one, in order.
	Children []*Span
}

// Rounds is the phase's CONGEST round cost.
func (s *Span) Rounds() int { return s.EndRound - s.StartRound }

// Messages is the number of messages delivered during the phase.
func (s *Span) Messages() int64 { return s.EndMessages - s.StartMessages }

// Nanos is the phase's wall-clock cost in nanoseconds.
func (s *Span) Nanos() int64 { return s.EndNanos - s.StartNanos }

// PhaseGroup maps a span name to its aggregation group: the name up to
// the first ':' ("level:3" → "level", "mst:part1" → "mst", "bfs" →
// "bfs"). Per-phase counters aggregate by group so dynamic labels
// (sampling levels, MST parts) stay bounded-cardinality.
func PhaseGroup(name string) string {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[:i]
	}
	return name
}

// Spans reconstructs the phase-span tree of one run from its marks.
// Marks are recorded in round order under the engine's mutex, and the
// pipeline's phase marks all come from one designated node, so a
// begin:/end: stack recovers the nesting exactly. Unmatched end marks
// are ignored; spans left open (an aborted run) are closed at the run's
// final round, message count, and last observed wall instant, so
// partial traces stay well-formed. Returns the top-level spans in
// order; stats may be nil (returns nil).
func Spans(stats *congest.Stats) []*Span {
	if stats == nil {
		return nil
	}
	var top []*Span
	var stack []*Span
	lastNanos := int64(0)
	attach := func(s *Span) {
		if len(stack) > 0 {
			p := stack[len(stack)-1]
			p.Children = append(p.Children, s)
		} else {
			top = append(top, s)
		}
	}
	for _, m := range stats.Marks {
		if m.Nanos > lastNanos {
			lastNanos = m.Nanos
		}
		switch {
		case strings.HasPrefix(m.Label, "begin:"):
			s := &Span{
				Name:          m.Label[len("begin:"):],
				StartRound:    m.Round,
				EndRound:      m.Round,
				StartMessages: m.Delivered,
				EndMessages:   m.Delivered,
				StartNanos:    m.Nanos,
				EndNanos:      m.Nanos,
			}
			attach(s)
			stack = append(stack, s)
		case strings.HasPrefix(m.Label, "end:"):
			name := m.Label[len("end:"):]
			// Find the matching open span; anything opened above it is
			// implicitly closed at the same boundary.
			at := -1
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].Name == name {
					at = i
					break
				}
			}
			if at < 0 {
				continue // unmatched end mark
			}
			for i := len(stack) - 1; i >= at; i-- {
				stack[i].EndRound = m.Round
				stack[i].EndMessages = m.Delivered
				stack[i].EndNanos = m.Nanos
			}
			stack = stack[:at]
		}
	}
	// Close spans an abort left open at the run's final accounting.
	for _, s := range stack {
		s.EndRound = stats.Rounds
		s.EndMessages = stats.Delivered
		s.EndNanos = lastNanos
	}
	return top
}
