// Package distmincut is a library reproduction of
//
//	Danupon Nanongkai, "Brief Announcement: Almost-Tight Approximation
//	Distributed Algorithm for Minimum Cut", PODC 2014 (arXiv:1403.6188).
//
// It computes minimum cuts of weighted graphs with a distributed
// algorithm in the synchronous CONGEST model, simulated faithfully
// (one goroutine per node, one O(log n)-bit message per edge per
// round): the minimum cut λ exactly in Õ((√n + D)·poly(λ)) rounds, and
// a (1+ε)-approximation in Õ((√n + D)/poly(ε)) rounds via Karger
// sampling — improving the (2+ε) of Ghaffari–Kuhn [DISC 2013] and
// matching the Ω̃(√n + D) lower bound of Das Sarma et al. up to
// polylogs.
//
// The pipeline is Thorup's greedy tree packing (internal/packing) over
// a Kutten–Peleg-style distributed MST (internal/mst), with the
// paper's Section-2 algorithm (internal/respect) finding, for each
// packed tree, the minimum cut that 1-respects it in Õ(√n + D) rounds.
//
// Entry points: MinCut (exact, small λ), ApproxMinCut ((1+ε), any λ),
// BracketMinCut (an O(log n)-factor bracket on λ in a handful of
// cheap rounds, the front tier ahead of the other two), and
// OneRespectingCut (Theorem 2.1 on the MST alone). Each runs the whole
// distributed protocol on the in-process CONGEST runtime and reports
// round/message complexity alongside the cut.
package distmincut

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
	"distmincut/internal/mst"
	"distmincut/internal/packing"
	"distmincut/internal/proto"
	"distmincut/internal/sampling"
)

// ErrBadInput is returned for graphs on which no cut exists or that
// are not connected.
var ErrBadInput = errors.New("distmincut: need a connected graph with at least 2 nodes")

// Options tune a run. The zero value is ready to use.
type Options struct {
	// Seed drives all randomness (engine scheduling is deterministic;
	// the seed affects MST coin flips and sampling). Zero means 1.
	Seed int64
	// Epsilon is the approximation parameter for ApproxMinCut
	// (default 0.5).
	Epsilon float64
	// MaxLambda bounds the exact algorithm's doubling search
	// (default 2^20). Beyond it MinCut returns its best cut found with
	// Exact=false; use ApproxMinCut for large cuts.
	MaxLambda int64
	// TauPolicy picks the packing size for a cut guess; nil uses
	// packing.PracticalTau. packing.TheoreticalTau is Thorup's bound.
	TauPolicy func(lambda int64, n int) int
	// ApproxTauMax caps trees packed per sampling level (default 32).
	ApproxTauMax int
	// BracketTrials is the number of independent skeletons BracketMinCut
	// tests per sampling level (default 3); more trials sharpen the
	// bracket's lower bound.
	BracketTrials int
	// SizeCap overrides the √n fragment size threshold (E9 ablation).
	SizeCap int
	// Unbounded switches the runtime to unbounded per-edge bandwidth
	// (LOCAL-model ablation, E9).
	Unbounded bool
	// MaxRounds overrides the runtime's safety cap. When a run trips
	// it, the error matches congest.ErrBudgetExceeded (and
	// congest.ErrMaxRounds) and carries the partial progress.
	MaxRounds int
	// Deadline, when non-zero, aborts the runtime at the first round
	// boundary past this wall-clock instant with an error matching
	// congest.ErrBudgetExceeded. For the multi-phase entry points the
	// deadline is absolute: every phase's simulation checks it. The
	// context-taking entry points also derive it from the context's own
	// deadline, so a context.WithDeadline context bounds the run even
	// if this field is zero.
	Deadline time.Time
	// Workers bounds how many node programs the runtime executes
	// concurrently (see congest.Options.Workers). Zero wakes every
	// scheduled node at once. Results are identical either way.
	Workers int
	// DeliveryShards partitions the runtime's message-delivery phase
	// over this many worker goroutines (see
	// congest.Options.DeliveryShards). Zero picks the runtime default
	// (one shard per available CPU, serial on a single-CPU machine);
	// negative forces serial delivery. Results are identical either
	// way.
	DeliveryShards int
	// Engine, when non-nil, runs the protocol on this reusable runtime
	// (congest.NewEngine) instead of a one-shot engine. A warm engine
	// retains its slabs and port tables between runs, so repeated
	// computations — same graph or same scale — skip nearly all of the
	// per-run setup (see congest.Engine). The engine's options are
	// overwritten from this struct for every run. The caller must not
	// use one engine from concurrent computations.
	Engine *congest.Engine
	// Progress, when non-nil, is updated by the runtime at every round
	// boundary with the rounds completed and messages delivered so far,
	// so a concurrent observer (e.g. a job-status endpoint) can sample
	// a running computation. See congest.Progress.
	Progress *congest.Progress
	// CheckPayload enables the runtime's payload-overflow guard: any
	// message staged with a payload word outside ±2^62 fails the run
	// loudly instead of corrupting the protocol. See
	// congest.Options.CheckPayload.
	CheckPayload bool
	// Observer, when non-nil, receives one congest.RoundRecord per
	// simulated round at the runtime's round barrier — per-round message
	// and wake counts plus wall-clock delivery timings. Arm a
	// congest.FlightRecorder here to keep a post-mortem tail of the last
	// rounds across deadline or budget aborts. Nil (the default) costs
	// nothing. See congest.Options.Observer.
	Observer congest.Observer
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Epsilon <= 0 || out.Epsilon >= 1 {
		out.Epsilon = 0.5
	}
	if out.MaxLambda <= 0 {
		out.MaxLambda = 1 << 20
	}
	if out.ApproxTauMax <= 0 {
		out.ApproxTauMax = 32
	}
	return out
}

// Result reports a distributed min-cut computation.
type Result struct {
	// Value is the weight of the returned cut; Side marks one side of
	// it (Side[v] == true means node v is inside X).
	Value int64
	Side  []bool
	// Exact reports whether Value is certified to equal λ (the exact
	// algorithm converged, or the approximate one resolved the cut at
	// sampling level 0).
	Exact bool
	// BestNode is the tree node v whose subtree v↓ defines the cut, and
	// TreesPacked how many trees the packing used.
	BestNode    graph.NodeID
	TreesPacked int
	// Levels is the number of sampling levels descended (approx only);
	// SkeletonCut the cut value measured in the final skeleton and
	// SamplingProb its sampling probability.
	Levels       int
	SkeletonCut  int64
	SamplingProb float64
	// Rounds and Messages are the CONGEST complexity of the whole run;
	// Stats has the full accounting.
	Rounds   int
	Messages int64
	Stats    *congest.Stats
}

// engineOpts assembles the runtime options for one run. ctx.Done()
// becomes the runtime's interrupt channel (nil for contexts that can
// never be canceled, which keeps the uncancellable path free).
func (o Options) engineOpts(ctx context.Context) congest.Options {
	deadline := o.Deadline
	if cd, ok := ctx.Deadline(); ok && (deadline.IsZero() || cd.Before(deadline)) {
		deadline = cd
	}
	return congest.Options{
		Seed:           o.Seed,
		Unbounded:      o.Unbounded,
		MaxRounds:      o.MaxRounds,
		Workers:        o.Workers,
		DeliveryShards: o.DeliveryShards,
		Interrupt:      ctx.Done(),
		Deadline:       deadline,
		Progress:       o.Progress,
		CheckPayload:   o.CheckPayload,
		Observer:       o.Observer,
	}
}

// runSim executes one distributed program — a blocking
// func(*congest.Node) or a compiled congest.StepProgram; the engine
// dispatches on the dynamic type — on the caller's reusable engine when
// Options.Engine is set and on a one-shot engine otherwise.
func (o Options) runSim(ctx context.Context, g *graph.Graph, program congest.Program) (*congest.Stats, error) {
	eo := o.engineOpts(ctx)
	if o.Engine != nil {
		o.Engine.SetOptions(eo)
		return o.Engine.Run(g, program)
	}
	return congest.Run(g, eo, program)
}

// ctxErr maps a runtime interrupt caused by ctx back to the context's
// own error (context.Canceled or context.DeadlineExceeded), so callers
// can errors.Is against the standard sentinels.
func ctxErr(ctx context.Context, err error) error {
	if err != nil && errors.Is(err, congest.ErrInterrupted) {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("distmincut: run canceled: %w", cerr)
		}
	}
	return err
}

// collector gathers per-node outputs under a lock.
type collector struct {
	mu    sync.Mutex
	sides []bool
	packs []*packing.Result
	value int64
	extra map[string]int64
}

// MaxWeight bounds edge weights: the MST key comparison packs loads
// and weights into single words and cross-multiplies them in int64, so
// weights must stay below 2^31.
const MaxWeight = 1<<31 - 1

func validate(g *graph.Graph) error {
	if g.N() < 2 {
		return fmt.Errorf("%w: n = %d", ErrBadInput, g.N())
	}
	if !graph.IsConnected(g) {
		return fmt.Errorf("%w: graph is disconnected", ErrBadInput)
	}
	for _, e := range g.Edges() {
		if e.W > MaxWeight {
			return fmt.Errorf("%w: edge {%d,%d} weight %d exceeds MaxWeight %d",
				ErrBadInput, e.U, e.V, e.W, int64(MaxWeight))
		}
	}
	return nil
}

// MinCut computes the minimum cut exactly with the paper's main
// algorithm (tree packing with a doubling guess for λ). For cuts
// beyond Options.MaxLambda the result carries Exact=false; use
// ApproxMinCut there.
func MinCut(g *graph.Graph, opts *Options) (*Result, error) {
	return MinCutContext(context.Background(), g, opts)
}

// MinCutContext is MinCut with cancellation: when ctx is canceled the
// distributed run aborts at the next round boundary and the error wraps
// ctx.Err(). A run that completes is unaffected by a later cancel.
func MinCutContext(ctx context.Context, g *graph.Graph, opts *Options) (*Result, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	col := &collector{sides: make([]bool, g.N()), packs: make([]*packing.Result, g.N())}
	exactAll := true
	stats, err := o.runSim(ctx, g, func(nd *congest.Node) {
		bfs := proto.BuildBFS(nd, 0, 1)
		res, exact := packing.ExactDoubling(nd, bfs, o.TauPolicy, o.MaxLambda,
			packing.Options{SizeCap: o.SizeCap}, 1000)
		side := packing.MarkSide(nd, bfs, res, 100)
		value := packing.EvaluateCut(nd, bfs, side, 200)
		col.mu.Lock()
		defer col.mu.Unlock()
		col.sides[nd.ID()] = side
		col.packs[nd.ID()] = res
		col.value = value
		if !exact {
			exactAll = false
		}
	})
	if err != nil {
		return nil, ctxErr(ctx, err)
	}
	p := col.packs[0]
	return &Result{
		Value:       col.value,
		Side:        col.sides,
		Exact:       exactAll,
		BestNode:    p.CutNode,
		TreesPacked: p.Trees,
		Rounds:      stats.Rounds,
		Messages:    stats.Delivered,
		Stats:       stats,
	}, nil
}

// OneRespectingCut runs Theorem 2.1 alone: build the MST distributedly
// and find the minimum cut that 1-respects it, in Õ(√n + D) rounds.
// The returned value is an upper bound on λ (and at most a factor ~2
// above it for MST trees under Thorup packing's first tree); every
// node also learns C(v↓) — the PerNode slice reports them.
func OneRespectingCut(g *graph.Graph, opts *Options) (*Result, []int64, error) {
	return OneRespectingCutContext(context.Background(), g, opts)
}

// OneRespectingCutContext is OneRespectingCut with cancellation; see
// MinCutContext for the contract.
func OneRespectingCutContext(ctx context.Context, g *graph.Graph, opts *Options) (*Result, []int64, error) {
	if err := validate(g); err != nil {
		return nil, nil, err
	}
	o := opts.withDefaults()
	col := &collector{sides: make([]bool, g.N()), packs: make([]*packing.Result, g.N())}
	perNode := make([]int64, g.N())
	stats, err := o.runSim(ctx, g, func(nd *congest.Node) {
		bfs := proto.BuildBFS(nd, 0, 1)
		loads := make(map[int]int64, nd.Degree())
		res := packing.Pack(nd, bfs, 1, loads, packing.Options{SizeCap: o.SizeCap}, 1000, nil)
		side := packing.MarkSide(nd, bfs, res, 100)
		col.mu.Lock()
		defer col.mu.Unlock()
		col.sides[nd.ID()] = side
		col.packs[nd.ID()] = res
		perNode[nd.ID()] = res.BestOutput.CutBelow
	})
	if err != nil {
		return nil, nil, ctxErr(ctx, err)
	}
	p := col.packs[0]
	return &Result{
		Value:       p.Cut,
		Side:        col.sides,
		BestNode:    p.CutNode,
		TreesPacked: 1,
		Rounds:      stats.Rounds,
		Messages:    stats.Delivered,
		Stats:       stats,
	}, perNode, nil
}

// ApproxMinCut computes a (1+ε)-approximate minimum cut via the
// paper's sampling reduction: descend sampling levels p = 2^-ℓ
// (jumping geometrically using the observed cut) until the skeleton's
// minimum cut falls below κ(ε) = Θ(log n/ε²), find the skeleton's
// minimum cut with the exact machinery, and return that cut's true
// weight in the original graph. If the graph's own cut is already
// below κ the answer is exact.
func ApproxMinCut(g *graph.Graph, opts *Options) (*Result, error) {
	return ApproxMinCutContext(context.Background(), g, opts)
}

// ApproxMinCutContext is ApproxMinCut with cancellation; see
// MinCutContext for the contract.
func ApproxMinCutContext(ctx context.Context, g *graph.Graph, opts *Options) (*Result, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	kappa := sampling.Kappa(o.Epsilon, g.N())
	col := &collector{sides: make([]bool, g.N()), packs: make([]*packing.Result, g.N()), extra: map[string]int64{}}
	stats, err := o.runSim(ctx, g, func(nd *congest.Node) {
		bfs := proto.BuildBFS(nd, 0, 1)
		approxProgram(nd, bfs, g, kappa, o, col)
	})
	if err != nil {
		return nil, ctxErr(ctx, err)
	}
	p := col.packs[0]
	return &Result{
		Value:        col.value,
		Side:         col.sides,
		Exact:        col.extra["level"] == 0 && col.extra["exact"] == 1,
		BestNode:     p.CutNode,
		TreesPacked:  int(col.extra["trees"]),
		Levels:       int(col.extra["level"]),
		SkeletonCut:  p.Cut,
		SamplingProb: 1 / float64(int64(1)<<col.extra["level"]),
		Rounds:       stats.Rounds,
		Messages:     stats.Delivered,
		Stats:        stats,
	}, nil
}

// BracketResult reports a bracket-tier run: a certified upper bound,
// a probabilistic lower bound, and a witness cut for the upper bound.
type BracketResult struct {
	// Lo and Hi bracket the minimum cut, λ ∈ [Lo, Hi]: Hi is the
	// tighter of the certified degree bound (Value, the weight of the
	// witness cut) and the sampling-implied bound 2^Level·O(log n); Lo
	// holds with high probability. λ ≤ Value always holds.
	Lo, Hi int64
	// Value is the weight of the witness cut behind Hi — the minimum
	// weighted degree — and Side marks that cut: the singleton of the
	// lowest-ID node attaining it (Side[v] == true for exactly that v).
	Value int64
	Side  []bool
	// BestNode is the witness node; Level the first sampling level 2^-i
	// whose skeleton disconnected (0 if none before the level cap);
	// Trials the per-level trial count used.
	BestNode graph.NodeID
	Level    int
	Trials   int
	// Rounds and Messages are the CONGEST complexity of the whole run;
	// Stats has the full accounting.
	Rounds   int
	Messages int64
	Stats    *congest.Stats
}

// BracketMinCut runs the cheap bracket tier: iterated edge sampling at
// rate 2^-i with a connectivity test per level — the first level whose
// skeleton disconnects brackets λ within an O(log n) factor (after the
// synchronous sampler of Karger [arXiv:0912.1200] as used by
// Ghaffari–Kuhn [arXiv:1305.5520]). No tree packing runs at all, so
// the whole protocol costs O(levels · (D + chunk)) rounds — a handful
// of floods and convergecasts — which makes it the front tier ahead of
// ApproxMinCut and MinCut. See sampling.Bracket for the protocol.
func BracketMinCut(g *graph.Graph, opts *Options) (*BracketResult, error) {
	return BracketMinCutContext(context.Background(), g, opts)
}

// BracketMinCutContext is BracketMinCut with cancellation; see
// MinCutContext for the contract.
func BracketMinCutContext(ctx context.Context, g *graph.Graph, opts *Options) (*BracketResult, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	var mu sync.Mutex
	var out sampling.BracketOutcome
	stats, err := o.runSim(ctx, g, func(nd *congest.Node) {
		bfs := proto.BuildBFS(nd, 0, 1)
		res := sampling.Bracket(nd, bfs, sampling.BracketConfig{
			Seed:   o.Seed,
			Trials: o.BracketTrials,
		}, 100)
		if nd.ID() == 0 {
			mu.Lock()
			out = res
			mu.Unlock()
		}
	})
	if err != nil {
		return nil, ctxErr(ctx, err)
	}
	side := make([]bool, g.N())
	side[out.MinDegreeNode] = true
	return &BracketResult{
		Lo:       out.Lo,
		Hi:       out.Hi,
		Value:    out.MinDegree,
		Side:     side,
		BestNode: graph.NodeID(out.MinDegreeNode),
		Level:    out.Level,
		Trials:   out.Trials,
		Rounds:   stats.Rounds,
		Messages: stats.Delivered,
		Stats:    stats,
	}, nil
}

// approxProgram is the per-node (1+ε) driver. All branch decisions are
// functions of globally known values, so every node follows the same
// level schedule in lockstep.
func approxProgram(nd *congest.Node, bfs *proto.Overlay, g *graph.Graph, kappa int64, o Options, col *collector) {
	const levelSpan = uint32(80_000_000)
	mark := nd.ID() == 0 // node 0 records the level spans for observability
	weightAt := func(level int) func(p int) int64 {
		if level == 0 {
			return nil
		}
		return func(p int) int64 {
			e := g.Edge(nd.EdgeID(p))
			return sampling.SampleWeight(o.Seed, mst.PackUV(e.U, e.V), level, e.W)
		}
	}
	// packLevel packs one sampling level under its own span, so the
	// trace attributes the descent's cost level by level.
	packLevel := func(level int, tagBase uint32) *packing.Result {
		if mark {
			nd.Mark("begin:level:" + strconv.Itoa(level))
		}
		loads := make(map[int]int64, nd.Degree())
		cur := packing.Pack(nd, bfs, o.ApproxTauMax, loads,
			packing.Options{Weight: weightAt(level), StopBelow: kappa, SizeCap: o.SizeCap},
			tagBase, nil)
		if mark {
			nd.Mark("end:level:" + strconv.Itoa(level))
		}
		return cur
	}

	// Level 0: try the exact algorithm capped at κ. If λ <= κ this is
	// already the exact answer.
	if mark {
		nd.Mark("begin:level:0")
	}
	res, exact := packing.ExactDoubling(nd, bfs, o.TauPolicy, kappa,
		packing.Options{SizeCap: o.SizeCap}, 1000)
	if mark {
		nd.Mark("end:level:0")
	}
	level, trees := 0, res.Trees
	if !exact {
		// Descend: jump to the level where the observed cut would land
		// near κ, then refine one level at a time.
		prev := res
		prevLevel := 0
		for level < 62 {
			jump := 1
			for c := prev.Cut; c > 2*kappa && jump < 40; c /= 2 {
				jump++
			}
			level = prevLevel + jump
			cur := packLevel(level, uint32(level)*levelSpan)
			trees += cur.Trees
			if !cur.Connected {
				// Oversampled: retreat one level and accept it.
				level = prevLevel + jump - 1
				if level == prevLevel {
					res = prev
					level = prevLevel
					break
				}
				cur = packLevel(level, uint32(level)*levelSpan+levelSpan/2)
				trees += cur.Trees
				if !cur.Connected {
					res = prev
					level = prevLevel
					break
				}
				res = cur
				break
			}
			if cur.Cut <= kappa {
				res = cur
				break
			}
			prev, prevLevel = cur, level
		}
	}

	side := packing.MarkSide(nd, bfs, res, 100)
	value := packing.EvaluateCut(nd, bfs, side, 200)
	col.mu.Lock()
	defer col.mu.Unlock()
	col.sides[nd.ID()] = side
	col.packs[nd.ID()] = res
	col.value = value
	col.extra["level"] = int64(level)
	col.extra["trees"] = int64(trees)
	if exact {
		col.extra["exact"] = 1
	}
}
