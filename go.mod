module distmincut

go 1.24
