package distmincut

import (
	"testing"

	"distmincut/internal/graph"
)

func TestPhaseGroup(t *testing.T) {
	cases := map[string]string{
		"bfs":       "bfs",
		"mst:part1": "mst",
		"level:3":   "level",
		"bracket:7": "bracket",
		"certify":   "certify",
	}
	for name, want := range cases {
		if got := PhaseGroup(name); got != want {
			t.Errorf("PhaseGroup(%q) = %q, want %q", name, got, want)
		}
	}
}

// checkSpanTree asserts the structural invariants every span tree must
// satisfy: boundaries ordered within each span, children contained in
// their parent and tiled in order, and siblings non-overlapping.
func checkSpanTree(t *testing.T, spans []*Span, parent *Span) {
	t.Helper()
	prevEnd := -1
	for _, sp := range spans {
		if sp.EndRound < sp.StartRound || sp.EndMessages < sp.StartMessages || sp.EndNanos < sp.StartNanos {
			t.Errorf("span %s runs backwards: rounds [%d,%d] messages [%d,%d]",
				sp.Name, sp.StartRound, sp.EndRound, sp.StartMessages, sp.EndMessages)
		}
		if sp.StartRound < prevEnd {
			t.Errorf("span %s starts at round %d before its sibling ended at %d",
				sp.Name, sp.StartRound, prevEnd)
		}
		prevEnd = sp.EndRound
		if parent != nil {
			if sp.StartRound < parent.StartRound || sp.EndRound > parent.EndRound {
				t.Errorf("span %s [%d,%d] escapes parent %s [%d,%d]",
					sp.Name, sp.StartRound, sp.EndRound, parent.Name, parent.StartRound, parent.EndRound)
			}
		}
		checkSpanTree(t, sp.Children, sp)
	}
}

// names collects the top-level span names in order.
func names(spans []*Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// leafRounds sums Rounds over the tree's leaf spans.
func leafRounds(spans []*Span) int {
	total := 0
	for _, sp := range spans {
		if len(sp.Children) == 0 {
			total += sp.Rounds()
			continue
		}
		total += leafRounds(sp.Children)
	}
	return total
}

// TestExactSpansTileTheRun: the exact pipeline's top-level spans carry
// the expected phase names, nest properly, and account for (nearly)
// every round of the run — the inter-phase gaps are local computation,
// zero rounds, and the only untracked tail is the final result
// broadcast after node 0's last end mark.
func TestExactSpansTileTheRun(t *testing.T) {
	g := graph.PlantedCut(32, 32, 3, 0.4, 7)
	res, err := MinCut(g, &Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	spans := Spans(res.Stats)
	if len(spans) == 0 {
		t.Fatal("no spans reconstructed")
	}
	checkSpanTree(t, spans, nil)
	got := map[string]bool{}
	for _, n := range names(spans) {
		got[n] = true
	}
	for _, want := range []string{"bfs", "pack", "markside", "evalcut"} {
		if !got[want] {
			t.Errorf("missing top-level span %q in %v", want, names(spans))
		}
	}
	// pack must contain mst spans, and mst spans their parts.
	var foundMSTPart bool
	var walk func([]*Span)
	walk = func(sps []*Span) {
		for _, sp := range sps {
			if sp.Name == "mst:part1" {
				foundMSTPart = true
			}
			walk(sp.Children)
		}
	}
	walk(spans)
	if !foundMSTPart {
		t.Error("no mst:part1 span nested anywhere")
	}
	// Top-level spans tile the run: their union covers all but the
	// final broadcast tail.
	covered := 0
	for _, sp := range spans {
		covered += sp.Rounds()
	}
	if covered > res.Stats.Rounds {
		t.Fatalf("spans cover %d rounds, run had %d", covered, res.Stats.Rounds)
	}
	if frac := float64(covered) / float64(res.Stats.Rounds); frac < 0.95 {
		t.Fatalf("top-level spans cover %.1f%% of %d rounds, want >= 95%%",
			100*frac, res.Stats.Rounds)
	}
	// Leaf spans must never over-count the run.
	if lr := leafRounds(spans); lr > res.Stats.Rounds {
		t.Fatalf("leaf spans sum to %d rounds, run had %d", lr, res.Stats.Rounds)
	}
	// Message accounting: top-level spans' message spans are bounded by
	// the run's delivered total.
	for _, sp := range spans {
		if sp.Messages() < 0 || sp.EndMessages > res.Stats.Delivered {
			t.Errorf("span %s message bounds [%d,%d] vs delivered %d",
				sp.Name, sp.StartMessages, sp.EndMessages, res.Stats.Delivered)
		}
	}
}

// TestApproxSpansCarryLevels: the sampling pipeline wraps each
// descent/retreat packing level in a level:N span.
func TestApproxSpansCarryLevels(t *testing.T) {
	g := graph.PlantedCut(32, 32, 4, 0.5, 3)
	res, err := ApproxMinCut(g, &Options{Seed: 2, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	spans := Spans(res.Stats)
	checkSpanTree(t, spans, nil)
	levels := 0
	for _, sp := range spans {
		if PhaseGroup(sp.Name) == "level" {
			levels++
		}
	}
	if levels == 0 {
		t.Fatalf("no level:N spans in %v", names(spans))
	}
}

// TestBracketSpansCarryLevels: the bracket tier records the min-degree
// convergecast plus one span per sampling level.
func TestBracketSpansCarryLevels(t *testing.T) {
	g := graph.PlantedCut(32, 32, 4, 0.5, 3)
	res, err := BracketMinCut(g, &Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	spans := Spans(res.Stats)
	checkSpanTree(t, spans, nil)
	var sawMinDeg, sawBracket bool
	for _, sp := range spans {
		switch PhaseGroup(sp.Name) {
		case "mindeg":
			sawMinDeg = true
		case "bracket":
			sawBracket = true
		}
	}
	if !sawMinDeg || !sawBracket {
		t.Fatalf("bracket run spans %v lack mindeg/bracket phases", names(spans))
	}
}

// TestSpansAbortedRunStaysWellFormed: marks from a run killed by its
// round budget still parse into a well-formed (open spans closed at
// the abort boundary) tree.
func TestSpansAbortedRunStaysWellFormed(t *testing.T) {
	g := graph.PlantedCut(32, 32, 3, 0.4, 7)
	ref, err := MinCut(g, &Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = MinCut(g, &Options{Seed: 2, MaxRounds: ref.Stats.Rounds / 2})
	if err == nil {
		t.Fatal("half-budget run unexpectedly completed")
	}
	// The aborted run returns no stats; rebuild the scenario from the
	// reference by truncating its marks, the way a flight recorder
	// would have seen them.
	half := ref.Stats.Rounds / 2
	truncated := *ref.Stats
	truncated.Marks = nil
	truncated.Rounds = half
	for _, m := range ref.Stats.Marks {
		if m.Round <= half {
			truncated.Marks = append(truncated.Marks, m)
		}
	}
	spans := Spans(&truncated)
	if len(spans) == 0 {
		t.Fatal("no spans from truncated marks")
	}
	checkSpanTree(t, spans, nil)
	for _, sp := range spans {
		if sp.EndRound > half {
			t.Errorf("span %s closed at %d, past the abort at %d", sp.Name, sp.EndRound, half)
		}
	}
}

// TestSpansNilStats: nil stats yield nil spans.
func TestSpansNilStats(t *testing.T) {
	if got := Spans(nil); got != nil {
		t.Fatalf("Spans(nil) = %v", got)
	}
}
