package distmincut

import (
	"context"
	"errors"
	"testing"
	"time"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
)

func TestMinCutContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := graph.PlantedCut(16, 16, 2, 0.5, 1)
	_, err := MinCutContext(ctx, g, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestMinCutContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pg := &congest.Progress{}
	g := graph.PlantedCut(64, 64, 3, 0.3, 7)
	errCh := make(chan error, 1)
	go func() {
		_, err := MinCutContext(ctx, g, &Options{Progress: pg})
		errCh <- err
	}()
	deadline := time.Now().Add(30 * time.Second)
	for pg.Round() < 50 {
		if time.Now().After(deadline) {
			t.Fatal("run never progressed")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled run did not return")
	}
}

func TestContextCompletedRunUnaffected(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := graph.PlantedCut(12, 12, 2, 0.6, 3)
	res, err := MinCutContext(ctx, g, &Options{CheckPayload: true})
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 {
		t.Fatalf("cut = %d, want planted 2", res.Value)
	}
}

func TestApproxAndRespectContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := graph.PlantedCut(16, 16, 2, 0.5, 1)
	if _, err := ApproxMinCutContext(ctx, g, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("approx: want context.Canceled, got %v", err)
	}
	if _, _, err := OneRespectingCutContext(ctx, g, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("respect: want context.Canceled, got %v", err)
	}
}
