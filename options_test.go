package distmincut

import (
	"testing"

	"distmincut/internal/graph"
)

func TestOptionsDefaults(t *testing.T) {
	var o *Options
	d := o.withDefaults()
	if d.Seed != 1 || d.Epsilon != 0.5 || d.MaxLambda != 1<<20 || d.ApproxTauMax != 32 {
		t.Fatalf("nil options defaults wrong: %+v", d)
	}
	bad := &Options{Epsilon: 3}
	if bad.withDefaults().Epsilon != 0.5 {
		t.Fatal("epsilon >= 1 must fall back")
	}
	keep := &Options{Seed: 9, Epsilon: 0.25, MaxLambda: 64, ApproxTauMax: 4}
	k := keep.withDefaults()
	if k.Seed != 9 || k.Epsilon != 0.25 || k.MaxLambda != 64 || k.ApproxTauMax != 4 {
		t.Fatalf("explicit options clobbered: %+v", k)
	}
}

func TestGraphReexport(t *testing.T) {
	g := NewGraph(3)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(0, 2, 1)
	g.SortAdjacency()
	res, err := MinCut(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 3 {
		t.Fatalf("triangle min cut = %d, want 3", res.Value)
	}
	// The alias really is the internal type.
	var _ *graph.Graph = g
}

func TestMinCutMaxLambdaFallback(t *testing.T) {
	// A weighted cycle with λ = 40 but MaxLambda = 4: the exact search
	// must give up gracefully with Exact=false and a valid upper bound.
	g := NewGraph(6)
	for i := 0; i < 6; i++ {
		g.MustAddEdge(NodeID(i), NodeID((i+1)%6), 20)
	}
	g.SortAdjacency()
	res, err := MinCut(g, &Options{MaxLambda: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("certified exact despite MaxLambda cap")
	}
	if res.Value < 40 {
		t.Fatalf("reported value %d below the true min cut 40 — not a cut", res.Value)
	}
}

func TestOneRespectingPerNodeAgainstValue(t *testing.T) {
	g := NewGraph(5)
	g.MustAddEdge(0, 1, 3)
	g.MustAddEdge(1, 2, 3)
	g.MustAddEdge(2, 3, 3)
	g.MustAddEdge(3, 4, 3)
	g.MustAddEdge(4, 0, 1)
	g.SortAdjacency()
	res, perNode, err := OneRespectingCut(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// On a cycle, the best 1-respecting cut is exactly the min cut
	// (both cycle edges closing the cut are counted): λ = 1+3 = 4.
	if res.Value != 4 {
		t.Fatalf("cycle 1-respecting best = %d, want 4", res.Value)
	}
	if perNode[0] != 0 {
		t.Fatalf("root C(v↓) = %d, want 0", perNode[0])
	}
}
