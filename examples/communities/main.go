// Communities: recover a planted bipartition with the minimum cut.
//
// Two dense communities joined by a handful of cross links: the global
// minimum cut is exactly the planted boundary, so the cut side labels
// the communities — computed by the nodes themselves in the CONGEST
// model. This is the motivating "graph clustering from inside the
// network" scenario for distributed min-cut.
//
//	go run ./examples/communities
package main

import (
	"fmt"
	"log"

	"distmincut"
	"distmincut/internal/graph"
)

func main() {
	const a, b, crossing = 26, 22, 4
	g := graph.PlantedCut(a, b, crossing, 0.45, 11)

	res, err := distmincut.MinCut(g, &distmincut.Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: %d nodes, %d edges; planted boundary = %d edges\n", g.N(), g.M(), crossing)
	fmt.Printf("minimum cut found: %d (exact: %v)\n", res.Value, res.Exact)

	// Score the recovery (polarity-free: either side may be "A").
	match, flipped := 0, 0
	for v := 0; v < g.N(); v++ {
		if res.Side[v] == (v < a) {
			match++
		} else {
			flipped++
		}
	}
	if flipped > match {
		match = flipped
	}
	fmt.Printf("community recovery: %d/%d nodes correctly labeled (%.0f%%)\n",
		match, g.N(), 100*float64(match)/float64(g.N()))
	fmt.Printf("cost: %d rounds, %d messages\n", res.Rounds, res.Messages)

	if res.Value == crossing && match == g.N() {
		fmt.Println("=> planted partition recovered perfectly.")
	}
}
