// Sweep: the accuracy/cost trade-off of the (1+ε)-approximation.
//
// On a weighted clique (large λ, so sampling always engages), sweep ε
// and report the measured approximation ratio against the (1+ε)
// budget, the sampling depth, and the round cost — the trade-off the
// paper's Õ((√n + D)/poly(ε)) bound describes.
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"

	"distmincut"
	"distmincut/internal/baseline"
	"distmincut/internal/graph"
)

func main() {
	g := graph.AssignWeights(graph.Complete(36), 8, 12, 5)
	lambda, _, err := baseline.StoerWagner(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weighted K%d: n=%d m=%d λ=%d\n\n", g.N(), g.N(), g.M(), lambda)
	fmt.Printf("%8s %8s %8s %8s %8s %8s %10s\n",
		"ε", "value", "ratio", "budget", "levels", "trees", "rounds")
	for _, eps := range []float64{0.5, 0.25, 0.125} {
		res, err := distmincut.ApproxMinCut(g, &distmincut.Options{Seed: 9, Epsilon: eps})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.3f %8d %8.3f %8.3f %8d %8d %10d\n",
			eps, res.Value, float64(res.Value)/float64(lambda), 1+eps,
			res.Levels, res.TreesPacked, res.Rounds)
	}
	fmt.Println("\nsmaller ε → deeper skeletons and more trees, better ratio — the")
	fmt.Println("Õ((√n+D)/poly(ε)) trade-off of the paper, measured.")
}
