// Quickstart: build a small weighted graph, run the distributed exact
// minimum-cut algorithm, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"distmincut"
	"distmincut/internal/graph"
)

func main() {
	// A 12-node ring of well-connected triangles with one weak link.
	g := graph.New(12)
	for i := 0; i < 12; i += 3 {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), 10)
		g.MustAddEdge(graph.NodeID(i+1), graph.NodeID(i+2), 10)
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+2), 10)
	}
	// Chain the triangles; the 9->0 closure is the weak pair of links.
	g.MustAddEdge(2, 3, 8)
	g.MustAddEdge(5, 6, 8)
	g.MustAddEdge(8, 9, 8)
	g.MustAddEdge(11, 0, 1)
	g.MustAddEdge(9, 1, 2)
	g.SortAdjacency()

	res, err := distmincut.MinCut(g, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("minimum cut: %d (certified exact: %v)\n", res.Value, res.Exact)
	fmt.Print("side X = { ")
	for v, in := range res.Side {
		if in {
			fmt.Printf("%d ", v)
		}
	}
	fmt.Println("}")
	fmt.Printf("found as the subtree of node %d after packing %d trees\n", res.BestNode, res.TreesPacked)
	fmt.Printf("distributed cost: %d rounds, %d messages across %d nodes\n",
		res.Rounds, res.Messages, g.N())
}
