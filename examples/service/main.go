// Service example: run the min-cut service in process, submit jobs
// from concurrent clients, watch one cache hit land, and read the
// service metrics. The same Service type backs cmd/mincutd's HTTP
// API — this example uses it directly as a library.
//
//	go run ./examples/service
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"sync"
	"time"

	"distmincut/internal/service"
)

func main() {
	svc := service.New(service.Options{PoolSize: 4, QueueDepth: 64})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()

	// Three distinct workloads plus one exact repeat of the first: the
	// repeat is served from the content-addressed cache once the
	// original finishes, without running the protocol again.
	reqs := []service.JobRequest{
		{Graph: service.GraphSpec{Family: "planted", N1: 16, N2: 16, K: 2, InP: 0.5, Seed: 7}, Mode: "exact"},
		{Graph: service.GraphSpec{Family: "torus", Rows: 8, Cols: 8}, Mode: "respect"},
		{Graph: service.GraphSpec{Family: "gnp", N: 96, P: 0.08, Seed: 3}, Mode: "respect"},
	}

	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req service.JobRequest) {
			defer wg.Done()
			runOne(svc, i, req)
		}(i, req)
	}
	wg.Wait()

	// The repeat: identical canonical spec, answered from cache.
	view, err := svc.Submit(reqs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat submission: state=%s cache_hit=%v (no protocol run)\n",
		view.State, view.CacheHit)

	m := svc.Metrics()
	fmt.Printf("metrics: %d submitted, %d protocol runs, cache hit rate %.2f, %.0f rounds/s\n",
		m.Submitted, m.Completed, m.CacheHitRate, m.RoundsPerSec)
}

func runOne(svc *service.Service, i int, req service.JobRequest) {
	view, err := svc.Submit(req)
	if err != nil {
		log.Fatal(err)
	}
	for {
		v, ok := svc.Job(view.ID)
		if !ok {
			log.Fatalf("job %s vanished", view.ID)
		}
		if v.State == service.StateDone {
			var res service.Result
			if err := json.Unmarshal(v.Result, &res); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("job %d (%s %s): cut=%d exact=%v rounds=%d messages=%d\n",
				i, req.Graph.Family, req.Mode, res.Value, res.Exact, res.Rounds, res.Messages)
			return
		}
		if v.State == service.StateFailed || v.State == service.StateCanceled {
			log.Fatalf("job %d: %s (%s)", i, v.State, v.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
