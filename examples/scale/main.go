// Scale: how far the CONGEST engine reaches on one machine.
//
// Sweeps random-regular expanders and sparse G(n,p) graphs from tens of
// thousands up through a million edges, runs a full message-exchange
// round on each (every node trades one message with every neighbor —
// the densest uniform load the model admits), and prints rounds,
// messages, wall time, and delivery throughput per size. This is the
// scaling walk behind the BenchmarkEngineMillion* workloads: the same
// engine that replays the paper's experiments on 48-node graphs drives
// million-edge simulations at hardware speed.
//
//	go run ./examples/scale [-max-edges 1000000] [-workers N] [-shards N] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
)

const exchangeKind uint8 = 0x51

// exchange stages one message per port and consumes one per port — a
// single full-bandwidth CONGEST round plus drain.
func exchange(nd *congest.Node) {
	nd.SendAll(congest.Message{Kind: exchangeKind, A: int64(nd.ID())})
	match := congest.MatchKind(exchangeKind)
	for i := nd.Degree(); i > 0; i-- {
		nd.Recv(match)
	}
}

func main() {
	maxEdges := flag.Int("max-edges", 1_000_000, "largest workload size, in edges")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "bound concurrently executing node programs (0 = unbounded)")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "run message delivery on this many shards (0 = one per CPU, negative = serial)")
	seed := flag.Int64("seed", 1, "seed for graph generation and the runtime")
	flag.Parse()

	// One reusable engine drives the whole sweep: each size step reuses
	// (or grows) the previous step's slabs instead of re-allocating
	// them, which is the congest.NewEngine lifecycle production callers
	// use.
	eng := congest.NewEngine(congest.Options{Seed: *seed, Workers: *workers, DeliveryShards: *shards})
	defer eng.Close()
	fmt.Printf("engine sweep: workers=%d shards=%d seed=%d\n\n", *workers, *shards, *seed)
	fmt.Printf("%-22s %10s %10s %8s %12s %10s %12s\n",
		"workload", "n", "m", "rounds", "messages", "wall", "msgs/s")

	run := func(name string, g *graph.Graph) {
		start := time.Now()
		stats, err := eng.Run(g, exchange)
		if err != nil {
			fmt.Printf("%-22s %10d %10d  error: %v\n", name, g.N(), g.M(), err)
			return
		}
		wall := time.Since(start)
		fmt.Printf("%-22s %10d %10d %8d %12d %10s %12.0f\n",
			name, g.N(), g.M(), stats.Rounds, stats.Delivered,
			wall.Round(time.Millisecond), float64(stats.Delivered)/wall.Seconds())
	}

	// 8-regular expanders: m = 4n, the paper's hard instances.
	for _, n := range []int{10_000, 50_000, 100_000, 250_000} {
		if 4*n > *maxEdges {
			break
		}
		run(fmt.Sprintf("regular n=%dk d=8", n/1000), graph.RandomRegular(n, 8, *seed))
	}
	// Sparse G(n, 8/n): expected m ≈ 4n with skewed degrees. The
	// geometric skip sampler generates these in O(n + m), so the arm
	// sweeps to a million edges like the regular one.
	for _, n := range []int{25_000, 100_000, 250_000} {
		if 4*n > *maxEdges {
			break
		}
		run(fmt.Sprintf("gnp n=%dk p=8/n", n/1000), graph.GNP(n, 8/float64(n), *seed+1))
	}

	fmt.Println("\nrounds stay flat while n and m grow 25x: simulation cost is")
	fmt.Println("proportional to messages moved plus nodes woken, never n x rounds.")
}
