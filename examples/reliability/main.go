// Reliability: find the weakest point of a replicated backbone.
//
// A synthetic ISP topology: four regional meshes (dense, high-capacity
// internal links) joined by a sparse backbone whose links have limited
// capacity. The minimum cut is the bottleneck whose failure partitions
// the network, and its weight is the surviving capacity — exactly what
// the CONGEST algorithm lets the routers compute about their own
// network, with no central map.
//
//	go run ./examples/reliability
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distmincut"
	"distmincut/internal/graph"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	const regions = 4
	const perRegion = 12
	g := graph.New(regions * perRegion)

	// Dense regional meshes with 40–60 Gbit links.
	for r := 0; r < regions; r++ {
		base := r * perRegion
		for i := 0; i < perRegion; i++ {
			for j := i + 1; j < perRegion; j++ {
				if rng.Float64() < 0.5 {
					g.MustAddEdge(graph.NodeID(base+i), graph.NodeID(base+j), 40+rng.Int63n(21))
				}
			}
		}
		// Regional ring so every region is internally 2-connected.
		for i := 0; i < perRegion; i++ {
			u, v := graph.NodeID(base+i), graph.NodeID(base+(i+1)%perRegion)
			if !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, 40)
			}
		}
	}
	// Backbone: a ring of regions, two links per adjacency, plus one
	// deliberately under-provisioned pair to region 3.
	link := func(a, b, w int64) {
		g.MustAddEdge(graph.NodeID(a), graph.NodeID(b), w)
	}
	link(0*perRegion+0, 1*perRegion+0, 30)
	link(0*perRegion+1, 1*perRegion+1, 30)
	link(1*perRegion+2, 2*perRegion+2, 30)
	link(1*perRegion+3, 2*perRegion+3, 30)
	link(2*perRegion+4, 3*perRegion+4, 9) // weak
	link(2*perRegion+5, 3*perRegion+5, 8) // weak
	link(3*perRegion+6, 0*perRegion+6, 7) // weak
	g.SortAdjacency()

	res, err := distmincut.MinCut(g, &distmincut.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("backbone: %d routers, %d links, total capacity %d\n", g.N(), g.M(), g.TotalWeight())
	fmt.Printf("weakest cut capacity: %d Gbit (exact: %v)\n", res.Value, res.Exact)
	inside := regionHistogram(res.Side, perRegion)
	fmt.Println("isolated side by region:", inside)
	fmt.Printf("=> region 3 is separable by cutting %d Gbit — the under-provisioned pair plus the return link.\n", res.Value)
	fmt.Printf("computed distributedly in %d rounds / %d messages\n", res.Rounds, res.Messages)

	// What-if: double the weak links and re-check.
	g2 := g.Clone()
	upgrade := func(a, b int) {
		for _, e := range g2.Edges() {
			if (int(e.U) == a && int(e.V) == b) || (int(e.U) == b && int(e.V) == a) {
				ws := make([]int64, g2.M())
				for i, ee := range g2.Edges() {
					ws[i] = ee.W
				}
				ws[e.ID] = e.W * 3
				g2, _ = g2.Reweight(ws)
				g2.SortAdjacency()
				return
			}
		}
	}
	upgrade(2*perRegion+4, 3*perRegion+4)
	upgrade(2*perRegion+5, 3*perRegion+5)
	upgrade(3*perRegion+6, 0*perRegion+6)
	res2, err := distmincut.MinCut(g2, &distmincut.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after upgrading the weak links: weakest cut %d Gbit (%.1fx better)\n",
		res2.Value, float64(res2.Value)/float64(res.Value))
}

func regionHistogram(side []bool, perRegion int) map[int]int {
	h := map[int]int{}
	for v, in := range side {
		if in {
			h[v/perRegion]++
		}
	}
	return h
}
