package distmincut_test

import (
	"math"
	"testing"

	"distmincut/internal/congest"
	"distmincut/internal/graph"
	"distmincut/internal/harness"
	"distmincut/internal/mst"
	"distmincut/internal/packing"
	"distmincut/internal/proto"
	"distmincut/internal/respect"
)

// One benchmark per experiment (E1–E9, see EXPERIMENTS.md). Each
// regenerates its table in quick mode; per-run CONGEST metrics are
// reported through b.ReportMetric so `go test -bench` output carries
// the reproduction's headline numbers, not just wall time.

func benchTable(b *testing.B, fn func(harness.Config) *harness.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t := fn(harness.Config{Quick: true, Seed: 3})
		if len(t.Rows) == 0 {
			b.Fatalf("%s produced no rows", t.ID)
		}
	}
}

func BenchmarkE1OneRespect(b *testing.B) { benchTable(b, harness.E1Correctness) }
func BenchmarkE3Exact(b *testing.B)      { benchTable(b, harness.E3Exact) }
func BenchmarkE4Approx(b *testing.B)     { benchTable(b, harness.E4Approx) }
func BenchmarkE5Baselines(b *testing.B)  { benchTable(b, harness.E5Baselines) }
func BenchmarkE6Diameter(b *testing.B)   { benchTable(b, harness.E6Diameter) }
func BenchmarkE7Packing(b *testing.B)    { benchTable(b, harness.E7Packing) }
func BenchmarkE8Figure1(b *testing.B)    { benchTable(b, harness.E8Figure1) }
func BenchmarkE9Ablation(b *testing.B)   { benchTable(b, harness.E9Ablation) }

// BenchmarkE2Scaling reports the headline complexity measurement
// directly: rounds and rounds/(√n+D) of the full Theorem 2.1 pipeline
// on a 16x16 torus.
func BenchmarkE2Scaling(b *testing.B) {
	g := graph.Torus(16, 16)
	d := graph.Diameter(g)
	var rounds, messages int64
	for i := 0; i < b.N; i++ {
		stats, err := congest.Run(g, congest.Options{Seed: 3}, func(nd *congest.Node) {
			bfs := proto.BuildBFS(nd, 0, 1)
			res := mst.Run(nd, bfs, nil, 0, 100)
			respect.Run(nd, respect.FromMST(res, bfs), 100+mst.TagSpan)
		})
		if err != nil {
			b.Fatal(err)
		}
		rounds = int64(stats.Rounds)
		messages = stats.Delivered
	}
	norm := math.Sqrt(float64(g.N())) + float64(d)
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(rounds)/norm, "rounds/(√n+D)")
	b.ReportMetric(float64(messages), "messages")
}

// BenchmarkTheorem21PerTree measures one MST+1-respect iteration (the
// packing's inner loop) on a mid-size sparse graph.
func BenchmarkTheorem21PerTree(b *testing.B) {
	g := graph.GNP(256, 0.04, 5)
	var rounds int64
	for i := 0; i < b.N; i++ {
		stats, err := congest.Run(g, congest.Options{Seed: 4}, func(nd *congest.Node) {
			bfs := proto.BuildBFS(nd, 0, 1)
			loads := make(map[int]int64, nd.Degree())
			packing.Pack(nd, bfs, 1, loads, packing.Options{}, 1000, nil)
		})
		if err != nil {
			b.Fatal(err)
		}
		rounds = int64(stats.Rounds)
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkEngineThroughput measures raw simulator speed: delivered
// messages per second on an all-to-all exchange.
func BenchmarkEngineThroughput(b *testing.B) {
	g := graph.Complete(64)
	b.ReportAllocs()
	var delivered int64
	for i := 0; i < b.N; i++ {
		stats, err := congest.Run(g, congest.Options{}, func(nd *congest.Node) {
			const kind = 0x7f
			for r := 0; r < 20; r++ {
				nd.SendAll(congest.Message{Kind: kind, Tag: uint32(r)})
				for j := 0; j < nd.Degree(); j++ {
					nd.Recv(congest.MatchKindTag(kind, uint32(r)))
				}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		delivered += stats.Delivered
	}
	b.ReportMetric(float64(delivered)/b.Elapsed().Seconds(), "msgs/s")
}
