package distmincut

import (
	"testing"
	"testing/quick"

	"distmincut/internal/baseline"
	"distmincut/internal/graph"
	"distmincut/internal/verify"
)

// TestMinCutPropertyAgainstStoerWagner is the repository's end-to-end
// property: on arbitrary random weighted graphs, the full distributed
// pipeline (BFS + MST + packing + Theorem 2.1 + side marking) returns
// exactly the Stoer–Wagner minimum cut with a valid side.
func TestMinCutPropertyAgainstStoerWagner(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed int64, rawN uint8, rawW uint8) bool {
		n := int(rawN%18) + 4
		wHi := int64(rawW%6) + 1
		g := graph.AssignWeights(graph.GNP(n, 0.35, seed), 1, wHi, seed+1)
		want, _, err := baseline.StoerWagner(g)
		if err != nil {
			return false
		}
		res, err := MinCut(g, &Options{Seed: seed + 2})
		if err != nil {
			t.Logf("n=%d seed=%d: %v", n, seed, err)
			return false
		}
		if !res.Exact || res.Value != want {
			t.Logf("n=%d seed=%d: got %d (exact=%v), want %d", n, seed, res.Value, res.Exact, want)
			return false
		}
		w, err := verify.CutSides(g, res.Side)
		return err == nil && w == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightCapRejected(t *testing.T) {
	g := NewGraph(2)
	g.MustAddEdge(0, 1, MaxWeight+1)
	if _, err := MinCut(g, nil); err == nil {
		t.Fatal("oversized weight accepted")
	}
}
